//! Closed-form communication costs of the baselines (Table 3 of the paper).
//!
//! Rows 1–3 of Table 3: the 2D (SUMMA/Cannon), 2.5D (CTF) and recursive
//! (CARMA) decompositions. The `table3` experiment prints these next to the
//! measured plan volumes; tests check the measured values track the models.

use cosma::problem::MmmProblem;

/// Table 3, 2D row: `Q = k(m+n)/√p + mn/p`.
pub fn summa_io(prob: &MmmProblem) -> f64 {
    let (m, n, k, p) = (prob.m as f64, prob.n as f64, prob.k as f64, prob.p as f64);
    k * (m + n) / p.sqrt() + m * n / p
}

/// Table 3, 2D row latency: `L = 2k·log2(√p)` (panel broadcasts).
pub fn summa_latency(prob: &MmmProblem) -> f64 {
    let (k, p) = (prob.k as f64, prob.p as f64);
    2.0 * k * p.sqrt().log2().max(0.0)
}

/// The replication factor `c = pS/(mk + nk)` of the 2.5D algorithm,
/// clamped to `[1, p^(1/3)]` like Solomonik & Demmel.
pub fn p25d_replication(prob: &MmmProblem) -> f64 {
    let (m, n, k, p, s) = (prob.m as f64, prob.n as f64, prob.k as f64, prob.p as f64, prob.mem_words as f64);
    (p * s / (m * k + n * k)).clamp(1.0, p.cbrt())
}

/// Table 3, 2.5D row: `Q = (k(m+n))^(3/2)/(p√S) + mnS/(k(m+n))`.
pub fn p25d_io(prob: &MmmProblem) -> f64 {
    let (m, n, k, p, s) = (prob.m as f64, prob.n as f64, prob.k as f64, prob.p as f64, prob.mem_words as f64);
    (k * (m + n)).powf(1.5) / (p * s.sqrt()) + m * n * s / (k * (m + n))
}

/// Table 3, recursive row:
/// `Q = 2·min{√3·mnk/(p√S), (mnk/p)^(2/3)} + (mnk/p)^(2/3)`.
///
/// As with Theorem 2 (see `pebbles::bounds`), the `min` is regime-selected:
/// in the limited-memory regime (`mnk/p ≥ S^(3/2)`) a cubic local domain
/// does not fit and the bandwidth branch `√3·mnk/(p√S)` applies — this is
/// where CARMA's `√3` penalty over COSMA lives (§6.2 and Table 3's square
/// limited-memory special case). With extra memory the published arithmetic
/// min reproduces Table 3's tall-matrix special case (`≈ 3p/4`).
pub fn carma_io(prob: &MmmProblem) -> f64 {
    let (m, n, k, p, s) = (prob.m as f64, prob.n as f64, prob.k as f64, prob.p as f64, prob.mem_words as f64);
    let d = m * n * k / p;
    let bandwidth = 3f64.sqrt() * d / s.sqrt();
    let cubic = d.powf(2.0 / 3.0);
    if d >= s.powf(1.5) {
        2.0 * bandwidth + cubic
    } else {
        2.0 * bandwidth.min(cubic) + cubic
    }
}

/// Table 3, recursive row latency: `3^(3/2)·mnk/(p·S^(3/2)) + 3·log2(p)`.
pub fn carma_latency(prob: &MmmProblem) -> f64 {
    let (m, n, k, p, s) = (prob.m as f64, prob.n as f64, prob.k as f64, prob.p as f64, prob.mem_words as f64);
    27f64.sqrt() * m * n * k / (p * s.powf(1.5)) + 3.0 * p.log2()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosma::analysis::io_cost;

    fn square(p: usize, s: usize) -> MmmProblem {
        MmmProblem::new(4096, 4096, 4096, p, s)
    }

    #[test]
    fn summa_model_tracks_plan() {
        let prob = MmmProblem::new(256, 256, 256, 16, 1 << 16);
        let plan = crate::summa::plan(&prob).unwrap();
        let model = summa_io(&prob);
        let measured = plan.max_comm_words() as f64;
        // The model counts the full k(m+n)/sqrt(p) inputs; the measured plan
        // excludes the rank's own slices ((g-1)/g of the model).
        assert!(measured <= model * 1.05, "measured {measured} above model {model}");
        assert!(measured >= model * 0.6, "measured {measured} far below model {model}");
    }

    #[test]
    fn carma_model_tracks_plan() {
        // Square, power-of-two everything, limited memory.
        let prob = MmmProblem::new(1024, 1024, 1024, 64, 1 << 16);
        let plan = crate::carma::plan(&prob).unwrap();
        let model = carma_io(&prob);
        let measured = plan.max_comm_words() as f64;
        assert!(measured <= model * 1.5 && measured >= model * 0.2, "measured {measured} vs model {model}");
    }

    #[test]
    fn cosma_beats_2d_with_extra_memory() {
        // With ample memory the 2D algorithm wastes it; COSMA's cost drops.
        let prob = square(64, 1 << 24);
        assert!(io_cost(&prob) < summa_io(&prob));
    }

    #[test]
    fn cosma_never_above_carma_model_limited_memory() {
        // In the limited-memory regime (mnk/p >= S^(3/2)) CARMA pays the
        // sqrt(3) constant of §6.2; COSMA's model must win.
        for &(m, n, k) in &[(4096, 4096, 4096), (256, 256, 1 << 20), (1 << 18, 256, 256)] {
            for &s in &[1usize << 14, 1 << 16] {
                let prob = MmmProblem::new(m, n, k, 64, s);
                let d = prob.volume() as f64 / prob.p as f64;
                assert!(d >= (s as f64).powf(1.5), "scenario not limited-memory");
                let q_cosma = io_cost(&prob);
                let q_carma = carma_io(&prob);
                assert!(
                    q_cosma <= q_carma * 1.001,
                    "({m},{n},{k},S={s}): COSMA {q_cosma} above CARMA {q_carma}"
                );
                // And the gap approaches the paper's sqrt(3) on the leading term.
                assert!(q_carma / q_cosma < 3f64.sqrt() + 0.2);
            }
        }
    }

    #[test]
    fn p25d_replication_regimes() {
        // Tiny memory: c = 1 (degenerates to 2D/Cannon).
        let tight = square(64, 4096 * 4096 / 32);
        assert!((p25d_replication(&tight) - 1.0).abs() < 0.6);
        // Huge memory: c capped at p^(1/3).
        let roomy = square(64, 1 << 30);
        assert!((p25d_replication(&roomy) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn table3_tall_case_ordering() {
        // Table 3's "tall matrices, extra memory" special case:
        // m = n = sqrt(p), k = p^(3/2)/4, S = 2nk/p^(2/3):
        // 2D ~ p^(3/2)/2, 2.5D ~ p^(4/3)/2, CARMA ~ 3p/4, COSMA ~ 0.69p.
        let p = 4096usize;
        let sq = (p as f64).sqrt() as usize; // 64
        let k = (p as f64).powf(1.5) as usize / 4;
        let s = 2 * sq * k / (p as f64).powf(2.0 / 3.0) as usize;
        let prob = MmmProblem::new(sq, sq, k, p, s);
        let q2d = summa_io(&prob);
        let q25 = p25d_io(&prob);
        let qrec = carma_io(&prob);
        let qcosma = io_cost(&prob);
        let pf = p as f64;
        assert!((q2d / (pf.powf(1.5) / 2.0) - 1.0).abs() < 0.2, "2D {q2d}");
        assert!((q25 / (pf.powf(4.0 / 3.0) / 2.0) - 1.0).abs() < 0.3, "2.5D {q25}");
        assert!((qrec / (0.75 * pf) - 1.0).abs() < 0.2, "CARMA {qrec}");
        // COSMA and CARMA land at Θ(p) with constants within a small factor
        // of each other (the paper quotes 0.69p vs 0.75p; our Eq. 33
        // evaluation and the published CARMA formula agree to ~2x), while 2D
        // and 2.5D are asymptotically worse.
        assert!(qcosma > 0.4 * pf && qcosma < 1.5 * pf, "COSMA {qcosma}");
        assert!(q2d > q25, "2D must lose to 2.5D");
        assert!(q25 > qrec.max(qcosma), "2.5D must lose to the optimal pair");
    }
}
