//! Cannon's algorithm (1969): the classical 2D shift algorithm.
//!
//! Requires a perfect-square rank count `p = q²`. Matrices are split into
//! `q × q` blocks; after an initial *skew* (rank `(i, j)` fetches
//! `A(i, i+j mod q)` and `B(i+j mod q, j)`), the algorithm performs `q`
//! multiply-shift steps: multiply the held blocks, then pass the A block one
//! step left and the B block one step up along ring fibers. With balanced
//! (ceil/floor) splits the shifted blocks vary slightly in size; the plan
//! accounts for the exact sizes of the blocks each rank receives.

use cosma::algorithm::{even_range, CPart};
use cosma::api::{AlgoId, MmmAlgorithm, PlanError, RankFuture, RankRequirement};
use cosma::plan::{Brick, DistPlan, RankPlan, Round};
use cosma::problem::MmmProblem;
use densemat::gemm::gemm_packed;
use densemat::matrix::Matrix;
use mpsim::comm::RankComm;
use mpsim::cost::CostModel;
use mpsim::stats::Phase;

/// The square grid edge for `p` ranks, if `p` is a perfect square.
pub fn grid_edge(p: usize) -> Option<usize> {
    let q = (p as f64).sqrt().round() as usize;
    (q * q == p).then_some(q)
}

/// Build the Cannon [`DistPlan`].
///
/// Fails with [`PlanError::UnsupportedRanks`] unless `p` is a perfect
/// square, and with [`PlanError::NoFeasibleGrid`] if the three blocks plus a
/// double buffer do not fit in `S`.
pub fn plan(prob: &MmmProblem) -> Result<DistPlan, PlanError> {
    RankRequirement::PerfectSquare.check(AlgoId::Cannon, prob.p)?;
    let q = grid_edge(prob.p).expect("perfect square checked");
    if q > prob.m.min(prob.n).min(prob.k) {
        return Err(PlanError::NoFeasibleGrid);
    }
    let lm_max = prob.m.div_ceil(q);
    let ln_max = prob.n.div_ceil(q);
    let lk_max = prob.k.div_ceil(q);
    if lm_max * ln_max + 2 * (lm_max * lk_max + lk_max * ln_max) > prob.mem_words {
        return Err(PlanError::NoFeasibleGrid);
    }
    let mut ranks = Vec::with_capacity(prob.p);
    for rank in 0..prob.p {
        let (i, j) = (rank / q, rank % q);
        let rows = even_range(prob.m, q, i);
        let cols = even_range(prob.n, q, j);
        let (lm, ln) = (rows.len(), cols.len());
        let mut rounds = Vec::with_capacity(q);
        for r in 0..q {
            let t = (i + j + r) % q;
            let lk_t = even_range(prob.k, q, t).len();
            // Round 0 is the skew: a rank whose aligned block is its own
            // original block receives nothing for that matrix.
            let (a_words, b_words, mut msgs) = if r == 0 {
                let a = if t == j { 0 } else { (lm * lk_t) as u64 };
                let b = if t == i { 0 } else { (lk_t * ln) as u64 };
                (a, b, u64::from(t != j) + u64::from(t != i))
            } else {
                ((lm * lk_t) as u64, (lk_t * ln) as u64, 2)
            };
            if q == 1 {
                msgs = 0;
            }
            rounds.push(Round {
                a_words,
                b_words,
                c_words: 0,
                msgs,
                flops: 2 * (lm * ln * lk_t) as u64,
            });
        }
        let mem_words = (lm * ln + 2 * (lm * lk_max + lk_max * ln)) as u64;
        ranks.push(RankPlan {
            rank,
            active: true,
            coords: [i, j, 0],
            bricks: vec![Brick {
                rows,
                cols,
                ks: 0..prob.k,
            }],
            rounds,
            mem_words,
        });
    }
    Ok(DistPlan {
        algo: AlgoId::Cannon,
        problem: *prob,
        grid: [q, q, 1],
        ranks,
    })
}

/// Execute a Cannon plan on the calling rank; returns its C block. A
/// resumable rank body: the skew and every ring shift are `await` points.
pub async fn execute(
    comm: &mut RankComm,
    plan: &DistPlan,
    a: &Matrix,
    b: &Matrix,
) -> (std::ops::Range<usize>, std::ops::Range<usize>, Matrix) {
    assert_eq!(plan.problem.p, comm.size(), "plan/world size mismatch");
    let prob = &plan.problem;
    let q = plan.grid[0];
    let rank = comm.rank();
    let (i, j) = (rank / q, rank % q);
    let rows = even_range(prob.m, q, i);
    let cols = even_range(prob.n, q, j);
    let (lm, ln) = (rows.len(), cols.len());
    let mut c_local = Matrix::zeros(lm, ln);
    comm.track_alloc((lm * ln) as u64);

    // Skew: I own A(i, j) and B(i, j); I need A(i, (i+j)%q), B((i+j)%q, j).
    let t0 = (i + j) % q;
    let mut a_cur = {
        let mine = a.block(rows.clone(), even_range(prob.k, q, j)).into_vec();
        if t0 == j {
            mine
        } else {
            // A(i, j) is needed by (i, j') with (i + j') % q == j.
            let dst = i * q + (j + q - i % q) % q;
            let src = i * q + t0;
            comm.sendrecv(dst, src, 0, mine, Phase::InputA).await
        }
    };
    let mut b_cur = {
        let mine = b.block(even_range(prob.k, q, i), cols.clone()).into_vec();
        if t0 == i {
            mine
        } else {
            // B(i, j) is needed by (i', j) with (i' + j) % q == i.
            let dst = ((i + q - j % q) % q) * q + j;
            let src = t0 * q + j;
            comm.sendrecv(dst, src, 1, mine, Phase::InputB).await
        }
    };

    for r in 0..q {
        let t = (i + j + r) % q;
        let lk_t = even_range(prob.k, q, t).len();
        // Pooled copies of the live panels: the originals keep circulating
        // on the shift rings while the multiply runs, and the copies go
        // back to the arena instead of the allocator every round.
        let ap = Matrix::from_vec(lm, lk_t, comm.pool().take_copy(&a_cur));
        let bp = Matrix::from_vec(lk_t, ln, comm.pool().take_copy(&b_cur));
        gemm_packed(&ap, &bp, &mut c_local);
        comm.record_flops(2 * (lm * ln * lk_t) as u64);
        comm.recycle(ap.into_vec());
        comm.recycle(bp.into_vec());
        if r + 1 < q {
            // Shift A left along the row ring, B up along the column ring.
            let a_dst = i * q + (j + q - 1) % q;
            let a_src = i * q + (j + 1) % q;
            a_cur = comm.sendrecv(a_dst, a_src, 2 + 2 * r as u64, a_cur, Phase::InputA).await;
            let b_dst = ((i + q - 1) % q) * q + j;
            let b_src = ((i + 1) % q) * q + j;
            b_cur = comm.sendrecv(b_dst, b_src, 3 + 2 * r as u64, b_cur, Phase::InputB).await;
        }
    }
    (rows, cols, c_local)
}

/// Cannon's algorithm as an [`MmmAlgorithm`]: requires `p = q²`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CannonAlgorithm;

impl MmmAlgorithm for CannonAlgorithm {
    fn id(&self) -> AlgoId {
        AlgoId::Cannon
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn supports(&self, prob: &MmmProblem) -> Result<(), PlanError> {
        RankRequirement::PerfectSquare.check(AlgoId::Cannon, prob.p)
    }

    fn plan(&self, prob: &MmmProblem, _machine: &CostModel) -> Result<DistPlan, PlanError> {
        plan(prob)
    }

    fn execute_rank<'a>(
        &'a self,
        comm: &'a mut RankComm,
        plan: &'a DistPlan,
        a: &'a Matrix,
        b: &'a Matrix,
    ) -> RankFuture<'a, Vec<CPart>> {
        Box::pin(async move {
            let (rows, cols, c) = execute(comm, plan, a, b).await;
            vec![CPart {
                rows,
                cols,
                offset: 0,
                data: c.into_vec(),
            }]
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use densemat::gemm::matmul;
    use mpsim::exec::{run_spmd_with, ExecBackend};
    use mpsim::machine::MachineSpec;

    fn check_cannon(m: usize, n: usize, k: usize, p: usize, s: usize) {
        let prob = MmmProblem::new(m, n, k, p, s);
        let dplan = plan(&prob).expect("plan");
        dplan.validate().expect("valid plan");
        let a = Matrix::deterministic(m, k, 41);
        let b = Matrix::deterministic(k, n, 42);
        let want = matmul(&a, &b);
        let spec = MachineSpec::piz_daint_with_memory(p, s);
        let (dplan_r, a_r, b_r) = (&dplan, &a, &b);
        let out = run_spmd_with(&spec, ExecBackend::Threaded, |mut comm| async move {
            execute(&mut comm, dplan_r, a_r, b_r).await
        })
        .expect("threaded run accepted");
        let mut c = Matrix::zeros(m, n);
        for (rows, cols, blk) in out.results {
            c.set_block(rows.start, cols.start, &blk);
        }
        assert!(
            want.approx_eq(&c, 1e-9),
            "{m}x{n}x{k} p={p}: wrong product, max diff {}",
            want.max_abs_diff(&c)
        );
        for (r, st) in out.stats.iter().enumerate() {
            assert_eq!(st.total_recv(), dplan.ranks[r].comm_words(), "rank {r} traffic");
        }
    }

    #[test]
    fn cannon_correct_square_grids() {
        check_cannon(16, 16, 16, 4, 4096);
        check_cannon(16, 16, 16, 16, 4096);
        check_cannon(18, 22, 26, 9, 4096); // uneven splits
        check_cannon(15, 17, 19, 4, 4096); // primes
    }

    #[test]
    fn cannon_single_rank() {
        check_cannon(8, 9, 10, 1, 4096);
    }

    #[test]
    fn cannon_rectangular_matrices() {
        check_cannon(32, 8, 16, 4, 4096);
        check_cannon(8, 32, 64, 4, 4096);
    }

    #[test]
    fn non_square_p_rejected() {
        let prob = MmmProblem::new(16, 16, 16, 5, 4096);
        assert!(matches!(
            plan(&prob),
            Err(PlanError::UnsupportedRanks {
                algo: AlgoId::Cannon,
                p: 5,
                ..
            })
        ));
    }

    #[test]
    fn grid_edge_detection() {
        assert_eq!(grid_edge(1), Some(1));
        assert_eq!(grid_edge(4), Some(2));
        assert_eq!(grid_edge(144), Some(12));
        assert_eq!(grid_edge(5), None);
        assert_eq!(grid_edge(8), None);
    }

    #[test]
    fn plan_traffic_matches_2d_model() {
        // Per-rank volume: q rounds (skew + q-1 shifts) of block pairs,
        // i.e. 2n²/√p for square matrices.
        let prob = MmmProblem::new(64, 64, 64, 16, 1 << 14);
        let dplan = plan(&prob).unwrap();
        let q = 4.0;
        let expect = 2.0 * (64.0 * 64.0) / q;
        let got = dplan.max_comm_words() as f64;
        assert!((got / expect - 1.0).abs() < 0.05, "got {got}, expect {expect}");
    }

    #[test]
    fn memory_infeasible_rejected() {
        let prob = MmmProblem::new(64, 64, 64, 4, 100);
        assert_eq!(plan(&prob), Err(PlanError::NoFeasibleGrid));
    }
}
