//! CARMA (Demmel et al. 2013): recursive, memory-oblivious MMM.
//!
//! `p` must be a power of two. At every BFS level the *largest* of the
//! current `m, n, k` is halved and the rank group splits with it:
//!
//! * **m-split** — A and C split with the group; every rank exchanges its
//!   share of B with its partner in the sibling half (B is needed whole by
//!   both halves): `|B|/g` words received;
//! * **n-split** — symmetric: A shares are exchanged, `|A|/g` words;
//! * **k-split** — A and B split for free, but the sibling halves compute
//!   *partial sums* of the same C; on the way back up the partners combine
//!   them pairwise (a recursive-halving reduce-scatter): each receives half
//!   of its current C share, `|C_share|/2` words.
//!
//! At the leaf (`g = 1`) the rank multiplies its `m_l × n_l × k_l` brick.
//! When that leaf working set exceeds `S`, memory-aware CARMA prepends
//! *sequential DFS steps*: the whole machine processes one half of the
//! iteration space after the other (`dfs_leaves`), paying the full BFS
//! communication per DFS leaf — the re-fetching cost behind the `√3` factor
//! of §6.2.
//!
//! Both regimes are fully executable. The streaming executor iterates the
//! DFS leaves in order, re-fetching A/B shares and reducing C per leaf with
//! buffers sized to the *leaf* footprint, so the measured `peak_mem_words`
//! stays within `S` whenever the plan does — runs on a machine with an
//! enforced memory budget (`MachineSpec::with_mem_budget`) certify exactly
//! that. The downward A/B share exchanges move real share-sized payloads
//! (content read from the initially distributed inputs), leaf operands are
//! materialized from the initial distribution exactly as in the other
//! algorithms, and the upward k-split reduction runs on the real partial C
//! data, so the final product is verified end to end while every counted
//! message has the true CARMA size. A rank's k-split DFS leaves yield
//! partial sums of the same C region; `assemble_c` accumulates them.

use cosma::algorithm::CPart;
use cosma::api::{AlgoId, MmmAlgorithm, PlanError, RankFuture, RankRequirement};
use cosma::plan::{Brick, DistPlan, RankPlan, Round};
use cosma::problem::MmmProblem;
use densemat::gemm::gemm_packed;
use densemat::matrix::Matrix;
use mpsim::comm::RankComm;
use mpsim::cost::CostModel;
use mpsim::stats::Phase;

/// Which dimension a recursion level splits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitDim {
    /// Split rows of A/C.
    M,
    /// Split columns of B/C.
    N,
    /// Split the inner dimension.
    K,
}

/// One level of a rank's recursion path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Level {
    /// The dimension split at this level.
    pub dim: SplitDim,
    /// Group size before the split.
    pub group: usize,
    /// Words this rank receives in the downward exchange (0 for k-splits).
    pub down_words: u64,
    /// Whether this rank took the upper half.
    pub upper: bool,
}

/// The full recursion trace of one rank: its path and leaf brick.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Levels from the root down.
    pub levels: Vec<Level>,
    /// Leaf brick.
    pub brick: Brick,
}

/// Balanced length of piece `idx` when `len` words are split `parts` ways.
fn piece_len(len: usize, parts: usize, idx: usize) -> usize {
    let base = len / parts;
    let extra = len % parts;
    base + usize::from(idx < extra)
}

/// Halve `range` and return the half selected by `upper`.
fn half(range: &std::ops::Range<usize>, upper: bool) -> std::ops::Range<usize> {
    let mid = range.start + range.len().div_ceil(2);
    if upper {
        mid..range.end
    } else {
        range.start..mid
    }
}

/// Choose the split dimension: the largest of `(lm, ln, lk)`, preferring
/// `k`, then `n`, then `m` on ties (deterministic; the paper only says
/// "split the largest dimension").
fn split_dim(lm: usize, ln: usize, lk: usize) -> SplitDim {
    if lk >= lm && lk >= ln {
        SplitDim::K
    } else if ln >= lm {
        SplitDim::N
    } else {
        SplitDim::M
    }
}

/// Compute the recursion trace of `rank` among `p = 2^L` ranks.
pub fn trace(prob: &MmmProblem, rank: usize) -> Trace {
    trace_on(0..prob.m, 0..prob.n, 0..prob.k, prob.p, rank)
}

/// BFS recursion trace over an explicit sub-volume (used by the DFS prefix).
///
/// Split decisions are taken on *canonical* dims — the ceiling-halved dims
/// of the recursion root, independent of which halves this rank took. All
/// ranks of a group therefore split the same dimension sequence even when a
/// halved dimension is odd, which keeps k-split partners on identical
/// `(rows, cols)` leaves (the upward reduce-scatter pairs opposite halves of
/// the *same* C block) and makes rank 0 — the all-ceiling path — the rank
/// with the largest leaf working set.
pub fn trace_on(
    rows0: std::ops::Range<usize>,
    cols0: std::ops::Range<usize>,
    ks0: std::ops::Range<usize>,
    p: usize,
    rank: usize,
) -> Trace {
    let mut rows = rows0;
    let mut cols = cols0;
    let mut ks = ks0;
    let (mut cm, mut cn, mut ck) = (rows.len(), cols.len(), ks.len());
    let mut group = p;
    let mut idx = rank; // index within the current group
    let mut levels = Vec::new();
    while group > 1 {
        let dim = split_dim(cm, cn, ck);
        let hsize = group / 2;
        let upper = idx >= hsize;
        let partner_idx = if upper { idx - hsize } else { idx + hsize };
        let down_words = match dim {
            SplitDim::M => piece_len(ks.len() * cols.len(), group, partner_idx) as u64,
            SplitDim::N => piece_len(rows.len() * ks.len(), group, partner_idx) as u64,
            SplitDim::K => 0,
        };
        levels.push(Level {
            dim,
            group,
            down_words,
            upper,
        });
        match dim {
            SplitDim::M => {
                rows = half(&rows, upper);
                cm = cm.div_ceil(2);
            }
            SplitDim::N => {
                cols = half(&cols, upper);
                cn = cn.div_ceil(2);
            }
            SplitDim::K => {
                ks = half(&ks, upper);
                ck = ck.div_ceil(2);
            }
        }
        group = hsize;
        idx = if upper { idx - hsize } else { idx };
    }
    Trace {
        levels,
        brick: Brick { rows, cols, ks },
    }
}

/// The nested C-share range (offset, length) of this rank within its
/// flattened leaf C block after unwinding all k-splits bottom-up.
fn c_share_after_unwind(tr: &Trace) -> (usize, usize) {
    let mut off = 0usize;
    let mut len = tr.brick.rows.len() * tr.brick.cols.len();
    for level in tr.levels.iter().rev() {
        if level.dim == SplitDim::K {
            let lower_len = len.div_ceil(2);
            if level.upper {
                off += lower_len;
                len -= lower_len;
            } else {
                len = lower_len;
            }
        }
    }
    (off, len)
}

/// A `(rows, cols, ks)` sub-volume of the iteration space.
type SubVolume = (std::ops::Range<usize>, std::ops::Range<usize>, std::ops::Range<usize>);

/// Hard ceiling on sequential DFS levels: beyond 24 something is wrong.
const MAX_DFS_DEPTH: usize = 24;

/// The maximum over ranks of the BFS-leaf working set (`|A| + |B| + |C|`
/// words) for the recursion over a sub-volume among `p` ranks. Because
/// split decisions are canonical ([`trace_on`]) and halving puts the
/// ceiling in the lower half, rank 0 — which takes the lower half at every
/// level — holds the coordinate-wise largest leaf, and the footprint is
/// monotone in each dimension, so its leaf is the maximum.
fn max_leaf_footprint(
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
    ks: std::ops::Range<usize>,
    p: usize,
) -> usize {
    let b = trace_on(rows, cols, ks, p, 0).brick;
    let (lm, ln, lk) = (b.rows.len(), b.cols.len(), b.ks.len());
    lm * lk + lk * ln + lm * ln
}

/// The sub-volumes the DFS prefix produces: real (memory-aware) CARMA takes
/// sequential steps — the whole machine processes one half after the other —
/// until every pure-BFS recursion's leaf working set fits in `S`. Each DFS
/// leaf then pays the full BFS communication, which is how CARMA's
/// limited-memory re-fetching cost (the `√3` factor of §6.2) arises.
///
/// The descent is *level-synchronous*: at each sequential level every
/// current sub-volume splits its own largest dimension, mirroring the
/// machine-wide lockstep of the sequential schedule. Two invariants follow
/// (pinned by the property suite): the leaf count is always a power of two,
/// and it is monotone non-increasing in `S`. Fitting is judged by
/// [`max_leaf_footprint`], i.e. against the *worst* rank, so a plan whose
/// leaves fit keeps every rank within `S`.
fn dfs_leaves(prob: &MmmProblem) -> Vec<SubVolume> {
    let fits = |(rows, cols, ks): &SubVolume| {
        max_leaf_footprint(rows.clone(), cols.clone(), ks.clone(), prob.p) <= prob.mem_words
    };
    let splittable = |(rows, cols, ks): &SubVolume| rows.len().max(cols.len()).max(ks.len()) > 1;
    let mut cur: Vec<SubVolume> = vec![(0..prob.m, 0..prob.n, 0..prob.k)];
    for _ in 0..MAX_DFS_DEPTH {
        if cur.iter().all(fits) || !cur.iter().all(splittable) {
            break;
        }
        cur = cur
            .iter()
            .flat_map(|(rows, cols, ks)| {
                let halves = |upper| match split_dim(rows.len(), cols.len(), ks.len()) {
                    SplitDim::M => (half(rows, upper), cols.clone(), ks.clone()),
                    SplitDim::N => (rows.clone(), half(cols, upper), ks.clone()),
                    SplitDim::K => (rows.clone(), cols.clone(), half(ks, upper)),
                };
                [halves(false), halves(true)]
            })
            .collect();
    }
    cur
}

/// Number of sequential (DFS) leaves memory-aware CARMA processes.
pub fn dfs_leaf_count(prob: &MmmProblem) -> usize {
    dfs_leaves(prob).len()
}

/// Build the CARMA [`DistPlan`].
///
/// Fails with [`PlanError::UnsupportedRanks`] unless `p = 2^L`. When the
/// pure-BFS leaf working set exceeds `S`, the plan prepends sequential DFS
/// steps (see [`dfs_leaf_count`]) whose per-leaf re-fetching is priced round
/// by round; [`execute`] streams exactly that schedule, so memory-starved
/// plans execute end-to-end like everything else. Each rank's `mem_words`
/// is its real maximum leaf footprint — within `S` whenever the DFS
/// terminated by fitting, so the plan passes the full `validate()` memory
/// check, not just coverage.
pub fn plan(prob: &MmmProblem) -> Result<DistPlan, PlanError> {
    RankRequirement::PowerOfTwo.check(AlgoId::Carma, prob.p)?;
    let leaves = dfs_leaves(prob);
    let mut ranks = Vec::with_capacity(prob.p);
    for rank in 0..prob.p {
        let mut rounds = Vec::new();
        let mut bricks = Vec::with_capacity(leaves.len());
        let mut mem_words = 0u64;
        for (rows0, cols0, ks0) in &leaves {
            let tr = trace_on(rows0.clone(), cols0.clone(), ks0.clone(), prob.p, rank);
            // Downward exchanges.
            for level in &tr.levels {
                if level.dim != SplitDim::K {
                    rounds.push(Round {
                        a_words: if level.dim == SplitDim::N {
                            level.down_words
                        } else {
                            0
                        },
                        b_words: if level.dim == SplitDim::M {
                            level.down_words
                        } else {
                            0
                        },
                        c_words: 0,
                        msgs: 1,
                        flops: 0,
                    });
                }
            }
            // Leaf multiply.
            let (lm, ln, lk) = (tr.brick.rows.len(), tr.brick.cols.len(), tr.brick.ks.len());
            rounds.push(Round {
                a_words: 0,
                b_words: 0,
                c_words: 0,
                msgs: 0,
                flops: 2 * (lm * ln * lk) as u64,
            });
            // Upward k-split reductions (reverse level order).
            let mut share = lm * ln;
            for level in tr.levels.iter().rev() {
                if level.dim == SplitDim::K {
                    let lower_len = share.div_ceil(2);
                    let keep = if level.upper { share - lower_len } else { lower_len };
                    rounds.push(Round {
                        a_words: 0,
                        b_words: 0,
                        c_words: keep as u64,
                        msgs: 1,
                        flops: keep as u64,
                    });
                    share = keep;
                }
            }
            mem_words = mem_words.max((lm * lk + lk * ln + lm * ln) as u64);
            bricks.push(tr.brick);
        }
        ranks.push(RankPlan {
            rank,
            active: true,
            coords: [0, 0, 0],
            bricks,
            rounds,
            mem_words,
        });
    }
    Ok(DistPlan {
        algo: AlgoId::Carma,
        problem: *prob,
        grid: [prob.p, 1, 1],
        ranks,
    })
}

/// Result of one rank's CARMA execution: its leaf C region, and the slice
/// of the *flattened* (row-major) leaf block it owns after the k-split
/// reduce-scatters, with the summed data.
#[derive(Debug, Clone, PartialEq)]
pub struct CarmaResult {
    /// Leaf rows in C.
    pub rows: std::ops::Range<usize>,
    /// Leaf cols in C.
    pub cols: std::ops::Range<usize>,
    /// Word offset of the owned slice within the flattened leaf block.
    pub offset: usize,
    /// The owned, fully reduced C words.
    pub data: Vec<f64>,
}

/// Execute a CARMA plan on the calling rank — the *streaming* executor. A
/// resumable rank body: every sibling exchange of the BFS descent and the
/// k-split reduce unwinding is an `await` point.
///
/// The rank iterates the plan's sequential DFS leaves in order, running one
/// full BFS recursion per leaf: A/B shares are re-fetched from the initial
/// distribution per leaf (the paper's limited-memory re-fetching cost), and
/// every buffer is sized to the *leaf* footprint, so the measured
/// `peak_mem_words` stays within the plan's per-rank memory figure — a run
/// on a budget-enforcing machine certifies `peak ≤ S`. One [`CarmaResult`]
/// is returned per leaf; results of k-split leaves cover the same C region
/// with partial sums, which `assemble_c` accumulates.
pub async fn execute(comm: &mut RankComm, plan: &DistPlan, a: &Matrix, b: &Matrix) -> Vec<CarmaResult> {
    assert_eq!(plan.problem.p, comm.size(), "plan/world size mismatch");
    let prob = &plan.problem;
    let leaves = dfs_leaves(prob);
    debug_assert_eq!(
        plan.ranks[comm.rank()].bricks.len(),
        leaves.len(),
        "plan and problem disagree on the DFS schedule"
    );
    let mut results = Vec::with_capacity(leaves.len());
    for (leaf, (rows0, cols0, ks0)) in leaves.into_iter().enumerate() {
        results.push(execute_leaf(comm, prob, leaf, rows0, cols0, ks0, a, b).await);
    }
    results
}

/// One DFS leaf of [`execute`]: the full BFS recursion over the leaf
/// sub-volume, with working memory tracked at leaf granularity (buffers are
/// allocated per leaf and released when its reduced share streams back to
/// the output distribution).
#[allow(clippy::too_many_arguments)]
async fn execute_leaf(
    comm: &mut RankComm,
    prob: &MmmProblem,
    leaf: usize,
    rows0: std::ops::Range<usize>,
    cols0: std::ops::Range<usize>,
    ks0: std::ops::Range<usize>,
    a: &Matrix,
    b: &Matrix,
) -> CarmaResult {
    let rank = comm.rank();
    let tr = trace_on(rows0.clone(), cols0.clone(), ks0.clone(), prob.p, rank);

    // Downward: exchange replicated-matrix shares with the partner across
    // the sibling half. Payload contents are the partner's actual share of
    // the replicated matrix (read from the initial distribution); only the
    // share itself is ever buffered, never the full replicated sub-matrix.
    let mut rows = rows0;
    let mut cols = cols0;
    let mut ks = ks0;
    let mut group = prob.p;
    let mut group_lo = 0usize;
    let mut idx = rank - group_lo;
    for (li, level) in tr.levels.iter().enumerate() {
        let hsize = group / 2;
        let upper = level.upper;
        let partner = if upper {
            group_lo + (idx - hsize)
        } else {
            group_lo + idx + hsize
        };
        match level.dim {
            SplitDim::M | SplitDim::N => {
                // My share of the replicated matrix, flattened row-major.
                let (flat_len, payload, phase) = match level.dim {
                    SplitDim::M => {
                        let flat_len = ks.len() * cols.len();
                        let my_off = share_offset(flat_len, group, idx);
                        let my_len = piece_len(flat_len, group, idx);
                        let buf = comm.pool().take_clear(my_len);
                        (flat_len, flat_block_slice(b, &ks, &cols, my_off, my_len, buf), Phase::InputB)
                    }
                    _ => {
                        let flat_len = rows.len() * ks.len();
                        let my_off = share_offset(flat_len, group, idx);
                        let my_len = piece_len(flat_len, group, idx);
                        let buf = comm.pool().take_clear(my_len);
                        (flat_len, flat_block_slice(a, &rows, &ks, my_off, my_len, buf), Phase::InputA)
                    }
                };
                // Send buffer + received share are both resident at the
                // rendezvous; together they are the post-exchange holding of
                // this matrix (my share + partner share), within the leaf
                // footprint the holdings grow into.
                let sent_len = payload.len() as u64;
                comm.track_alloc(sent_len);
                let got = comm.sendrecv(partner, partner, tag(leaf, li), payload, phase).await;
                comm.track_alloc(got.len() as u64);
                // The received share merges into this rank's holdings; leaf
                // operands are re-materialized below, so contents are only
                // checked for size here before the buffers are retired.
                debug_assert_eq!(
                    got.len(),
                    piece_len(flat_len, group, if upper { idx - hsize } else { idx + hsize })
                );
                comm.track_free(sent_len + got.len() as u64);
                comm.recycle(got);
            }
            SplitDim::K => {}
        }
        match level.dim {
            SplitDim::M => rows = half(&rows, upper),
            SplitDim::N => cols = half(&cols, upper),
            SplitDim::K => ks = half(&ks, upper),
        }
        if upper {
            group_lo += hsize;
            idx -= hsize;
        }
        group = hsize;
    }

    // Leaf multiply: the leaf footprint |A| + |B| + |C| is the working set.
    // All three buffers are leased from the world's arena — across DFS
    // leaves (and across jobs on a warm serve pool) the leaf bricks recycle
    // the same storage instead of re-allocating per leaf.
    let brick = &tr.brick;
    let (lm, ln, lk) = (brick.rows.len(), brick.cols.len(), brick.ks.len());
    comm.track_alloc((lm * lk + lk * ln + lm * ln) as u64);
    let leaf_a = a.block_into(brick.rows.clone(), brick.ks.clone(), comm.pool().take_clear(lm * lk));
    let leaf_b = b.block_into(brick.ks.clone(), brick.cols.clone(), comm.pool().take_clear(lk * ln));
    let mut c_leaf = Matrix::from_recycled(lm, ln, comm.pool().take_clear(lm * ln));
    gemm_packed(&leaf_a, &leaf_b, &mut c_leaf);
    comm.record_flops(2 * (lm * ln * lk) as u64);
    comm.recycle(leaf_a.into_vec());
    comm.recycle(leaf_b.into_vec());
    comm.track_free((lm * lk + lk * ln) as u64);

    // Upward: recursive-halving reduce-scatter over the k-splits. Partners
    // across a k-split have the same (rows, cols) leaf and the same nested
    // share structure, so exchanging opposite halves and adding yields the
    // summed share. The received half is the only transient buffer; the
    // sent half is shed from the working set as the share halves.
    let mut data = c_leaf.into_vec();
    let mut off = 0usize;
    // Reconstruct group extents bottom-up: replay the path to know each
    // level's group_lo/size.
    let mut path = Vec::new(); // (group_lo, group, idx) per level, top-down
    {
        let mut g_lo = 0usize;
        let mut g = prob.p;
        let mut ix = rank;
        for level in &tr.levels {
            path.push((g_lo, g, ix));
            let hsize = g / 2;
            if level.upper {
                g_lo += hsize;
                ix -= hsize;
            }
            g = hsize;
        }
    }
    for (li, level) in tr.levels.iter().enumerate().rev() {
        if level.dim != SplitDim::K {
            continue;
        }
        let (g_lo, g, ix) = path[li];
        let hsize = g / 2;
        let partner = if level.upper {
            g_lo + ix - hsize
        } else {
            g_lo + ix + hsize
        };
        let lower_len = data.len().div_ceil(2);
        // Split the share in place — no copies: the sent half leaves the
        // working set with the message, the kept half stays, and the
        // received half is the only transient buffer.
        let (payload, mut kept) = if level.upper {
            let upper_half = data.split_off(lower_len);
            (data, upper_half)
        } else {
            let upper_half = data.split_off(lower_len);
            (upper_half, data)
        };
        comm.track_free(payload.len() as u64);
        let got = comm
            .sendrecv(partner, partner, tag(leaf, li) + 1, payload, Phase::OutputC)
            .await;
        comm.track_alloc(got.len() as u64);
        assert_eq!(got.len(), kept.len(), "k-split reduce share mismatch");
        for (d, s) in kept.iter_mut().zip(&got) {
            *d += *s;
        }
        comm.record_flops(kept.len() as u64);
        comm.track_free(got.len() as u64);
        comm.recycle(got);
        if level.upper {
            off += lower_len;
        }
        data = kept;
    }
    let (expect_off, expect_len) = c_share_after_unwind(&tr);
    debug_assert_eq!((off, data.len()), (expect_off, expect_len));
    // The fully reduced share streams back to the output distribution, so
    // its words leave the working set before the next leaf begins.
    comm.track_free(data.len() as u64);
    CarmaResult {
        rows: brick.rows.clone(),
        cols: brick.cols.clone(),
        offset: off,
        data,
    }
}

/// Word offset of piece `idx` in a balanced `parts`-way split of `len`.
fn share_offset(len: usize, parts: usize, idx: usize) -> usize {
    let base = len / parts;
    let extra = len % parts;
    idx * base + idx.min(extra)
}

/// The `[off, off + len)` words of the row-major flattening of
/// `mat[rows, cols]`, materialized into the (pooled) `buf` without building
/// the whole block — the descent exchanges buffer only the share being sent,
/// which is what keeps the streaming executor's working set at the leaf
/// footprint.
fn flat_block_slice(
    mat: &Matrix,
    rows: &std::ops::Range<usize>,
    cols: &std::ops::Range<usize>,
    off: usize,
    len: usize,
    mut buf: Vec<f64>,
) -> Vec<f64> {
    let w = cols.len();
    buf.extend((off..off + len).map(|f| mat.get(rows.start + f / w, cols.start + f % w)));
    buf
}

/// Tags: disjoint per `(leaf, level)` pair; `+ 1` marks the upward k-split
/// reduce exchange of the same level.
fn tag(leaf: usize, level: usize) -> u64 {
    1_000 + leaf as u64 * 1_000 + 2 * level as u64
}

/// CARMA as an [`MmmAlgorithm`]: requires `p = 2^L`.
///
/// Both memory regimes execute end-to-end: ample-memory problems run the
/// pure-BFS recursion (one leaf, one `CPart`), memory-starved problems
/// stream their sequential DFS leaves with leaf-sized buffers (one `CPart`
/// per leaf), keeping the measured working set within the plan's per-rank
/// memory figure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CarmaAlgorithm;

impl MmmAlgorithm for CarmaAlgorithm {
    fn id(&self) -> AlgoId {
        AlgoId::Carma
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn supports(&self, prob: &MmmProblem) -> Result<(), PlanError> {
        RankRequirement::PowerOfTwo.check(AlgoId::Carma, prob.p)
    }

    fn plan(&self, prob: &MmmProblem, _machine: &CostModel) -> Result<DistPlan, PlanError> {
        plan(prob)
    }

    fn execute_rank<'a>(
        &'a self,
        comm: &'a mut RankComm,
        plan: &'a DistPlan,
        a: &'a Matrix,
        b: &'a Matrix,
    ) -> RankFuture<'a, Vec<CPart>> {
        Box::pin(async move {
            execute(comm, plan, a, b)
                .await
                .into_iter()
                .map(|res| CPart {
                    rows: res.rows,
                    cols: res.cols,
                    offset: res.offset,
                    data: res.data,
                })
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosma::algorithm::assemble_c;
    use densemat::gemm::matmul;
    use mpsim::exec::{run_spmd_with, ExecBackend};
    use mpsim::machine::MachineSpec;

    fn check_carma(m: usize, n: usize, k: usize, p: usize, s: usize) -> DistPlan {
        let prob = MmmProblem::new(m, n, k, p, s);
        let dplan = plan(&prob).expect("plan");
        dplan.validate_coverage().expect("valid coverage");
        let a = Matrix::deterministic(m, k, 61);
        let b = Matrix::deterministic(k, n, 62);
        let want = matmul(&a, &b);
        let spec = MachineSpec::piz_daint_with_memory(p, s);
        let (dplan_r, a_r, b_r) = (&dplan, &a, &b);
        let out = run_spmd_with(&spec, ExecBackend::Threaded, |mut comm| async move {
            execute(&mut comm, dplan_r, a_r, b_r).await
        })
        .expect("threaded run accepted");
        // Reassemble C through the production assembly path, which
        // accumulates: k-split DFS leaves contribute partial sums of the
        // same region.
        let c = assemble_c(
            out.results.into_iter().flatten().map(|res| CPart {
                rows: res.rows,
                cols: res.cols,
                offset: res.offset,
                data: res.data,
            }),
            m,
            n,
        );
        assert!(
            want.approx_eq(&c, 1e-9),
            "{m}x{n}x{k} p={p}: wrong product, max diff {}",
            want.max_abs_diff(&c)
        );
        for (r, st) in out.stats.iter().enumerate() {
            assert_eq!(st.total_recv(), dplan.ranks[r].comm_words(), "rank {r} traffic");
            assert!(
                st.peak_mem_words <= dplan.ranks[r].mem_words.max(1),
                "rank {r} peaked at {} words, plan allows {}",
                st.peak_mem_words,
                dplan.ranks[r].mem_words
            );
        }
        dplan
    }

    #[test]
    fn carma_correct_square() {
        check_carma(16, 16, 16, 4, 1 << 12);
        check_carma(24, 24, 24, 8, 1 << 12);
        check_carma(17, 23, 29, 8, 1 << 12);
    }

    #[test]
    fn carma_correct_largek_all_ksplits() {
        // k >> m, n: every level splits k, exercising the reduce-scatter.
        let dplan = check_carma(4, 4, 256, 8, 1 << 12);
        // All active levels were k-splits: every rank's brick spans k/8.
        for rp in &dplan.ranks {
            assert_eq!(rp.bricks[0].ks.len(), 32);
        }
    }

    #[test]
    fn carma_correct_largem() {
        check_carma(256, 4, 4, 8, 1 << 12);
    }

    #[test]
    fn carma_correct_flat() {
        check_carma(64, 64, 4, 16, 1 << 12);
    }

    #[test]
    fn carma_single_rank() {
        check_carma(8, 9, 10, 1, 1 << 12);
    }

    #[test]
    fn carma_streams_dfs_leaves_under_tight_memory() {
        // 64^3 over 8 ranks: the pure-BFS leaf footprint is 3·32^2 = 3072
        // words, so S = 1024 forces a sequential DFS prefix — and the
        // streaming executor must still produce the exact product, the
        // plan's exact traffic, and a peak within the plan's memory figure.
        let prob = MmmProblem::new(64, 64, 64, 8, 1 << 10);
        assert!(dfs_leaf_count(&prob) > 1, "problem must be memory-starved");
        let dplan = check_carma(64, 64, 64, 8, 1 << 10);
        // The plan is memory-honest: every rank within S, so the *full*
        // validation (not just coverage) passes.
        dplan.validate().expect("streaming CARMA plan respects S");
        for rp in &dplan.ranks {
            assert_eq!(rp.bricks.len(), dfs_leaf_count(&prob));
        }
    }

    #[test]
    fn carma_streams_sequential_k_leaves() {
        // k >> m, n with tight memory: the DFS prefix splits k, so one rank
        // contributes partial sums of the same C region across leaves and
        // the accumulating reassembly is what makes the product right.
        let prob = MmmProblem::new(8, 8, 512, 4, 600);
        assert!(dfs_leaf_count(&prob) > 1);
        check_carma(8, 8, 512, 4, 600);
    }

    #[test]
    fn leaf_count_is_a_power_of_two_and_monotone_in_s() {
        for s_shift in 8..16 {
            let prob = MmmProblem::new(96, 80, 112, 8, 1 << s_shift);
            let leaves = dfs_leaf_count(&prob);
            assert!(leaves.is_power_of_two(), "S=2^{s_shift}: {leaves} leaves");
            let roomier = MmmProblem::new(96, 80, 112, 8, 1 << (s_shift + 1));
            assert!(dfs_leaf_count(&roomier) <= leaves, "more memory must not add DFS steps");
        }
    }

    #[test]
    fn non_power_of_two_rejected() {
        let prob = MmmProblem::new(16, 16, 16, 6, 1 << 12);
        assert!(matches!(
            plan(&prob),
            Err(PlanError::UnsupportedRanks {
                algo: AlgoId::Carma,
                p: 6,
                ..
            })
        ));
    }

    #[test]
    fn trace_halves_largest_dimension() {
        let prob = MmmProblem::new(8, 16, 64, 8, 1 << 12);
        let tr = trace(&prob, 0);
        assert_eq!(tr.levels[0].dim, SplitDim::K); // 64 largest
        assert_eq!(tr.levels[1].dim, SplitDim::K); // still 32 vs 8/16
        assert_eq!(tr.levels[2].dim, SplitDim::K); // tie k = n = 16 prefers k
        assert_eq!(tr.brick.ks.len(), 8);
    }

    #[test]
    fn bricks_tile_iteration_space() {
        for p in [1usize, 2, 4, 8, 16, 32] {
            let prob = MmmProblem::new(13, 21, 34, p, 1 << 12);
            let dplan = plan(&prob).unwrap();
            dplan.validate_coverage().unwrap_or_else(|e| panic!("p={p}: {e:?}"));
        }
    }

    #[test]
    fn share_arithmetic() {
        assert_eq!(piece_len(10, 4, 0), 3);
        assert_eq!(piece_len(10, 4, 1), 3);
        assert_eq!(piece_len(10, 4, 2), 2);
        assert_eq!(share_offset(10, 4, 0), 0);
        assert_eq!(share_offset(10, 4, 1), 3);
        assert_eq!(share_offset(10, 4, 2), 6);
        assert_eq!(share_offset(10, 4, 3), 8);
        let total: usize = (0..4).map(|i| piece_len(10, 4, i)).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn ample_memory_gives_pure_bfs() {
        // With leaf sets fitting S, CARMA is memory-oblivious: volumes are
        // identical across memory sizes and there is exactly one DFS leaf.
        let prob_big = MmmProblem::new(64, 64, 64, 8, 1 << 20);
        let prob_bigger = MmmProblem::new(64, 64, 64, 8, 1 << 24);
        assert_eq!(dfs_leaf_count(&prob_big), 1);
        let a = plan(&prob_big).unwrap();
        let b = plan(&prob_bigger).unwrap();
        assert_eq!(a.max_comm_words(), b.max_comm_words());
    }

    #[test]
    fn tight_memory_forces_dfs_refetching() {
        // The 64^3-over-8-ranks BFS leaf is ~2.3k words; S = 1024 forces
        // sequential DFS steps, which re-communicate and raise the volume.
        let tight = MmmProblem::new(64, 64, 64, 8, 1 << 10);
        let roomy = MmmProblem::new(64, 64, 64, 8, 1 << 20);
        assert!(dfs_leaf_count(&tight) > 1);
        let a = plan(&tight).unwrap();
        let b = plan(&roomy).unwrap();
        assert!(
            a.max_comm_words() > b.max_comm_words(),
            "DFS re-fetching must cost extra: {} vs {}",
            a.max_comm_words(),
            b.max_comm_words()
        );
        // Coverage still exact: DFS leaves tile the volume, and memory is
        // now respected.
        a.validate().unwrap();
    }
}
