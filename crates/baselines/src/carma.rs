//! CARMA (Demmel et al. 2013): recursive, memory-oblivious MMM.
//!
//! `p` must be a power of two. At every BFS level the *largest* of the
//! current `m, n, k` is halved and the rank group splits with it:
//!
//! * **m-split** — A and C split with the group; every rank exchanges its
//!   share of B with its partner in the sibling half (B is needed whole by
//!   both halves): `|B|/g` words received;
//! * **n-split** — symmetric: A shares are exchanged, `|A|/g` words;
//! * **k-split** — A and B split for free, but the sibling halves compute
//!   *partial sums* of the same C; on the way back up the partners combine
//!   them pairwise (a recursive-halving reduce-scatter): each receives half
//!   of its current C share, `|C_share|/2` words.
//!
//! At the leaf (`g = 1`) the rank multiplies its `m_l × n_l × k_l` brick; if
//! the leaf working set exceeds `S`, real CARMA keeps splitting sequentially
//! (a local blocking decision that moves no network words), so the plan's
//! memory figure is the leaf footprint capped at the sequential-blocking
//! working set.
//!
//! Execution realism: the downward A/B share exchanges move real share-sized
//! payloads (content read from the initially distributed inputs); leaf
//! operands are materialized from the initial distribution exactly as in the
//! other algorithms, and the upward k-split reduction is performed with the
//! real partial C data, so the final product is verified end to end while
//! every counted message has the true CARMA size.

use cosma::algorithm::CPart;
use cosma::api::{AlgoId, MmmAlgorithm, PlanError, RankFuture, RankRequirement};
use cosma::plan::{Brick, DistPlan, RankPlan, Round};
use cosma::problem::MmmProblem;
use densemat::gemm::gemm_tiled;
use densemat::matrix::Matrix;
use mpsim::comm::RankComm;
use mpsim::cost::CostModel;
use mpsim::stats::Phase;

/// Which dimension a recursion level splits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitDim {
    /// Split rows of A/C.
    M,
    /// Split columns of B/C.
    N,
    /// Split the inner dimension.
    K,
}

/// One level of a rank's recursion path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Level {
    /// The dimension split at this level.
    pub dim: SplitDim,
    /// Group size before the split.
    pub group: usize,
    /// Words this rank receives in the downward exchange (0 for k-splits).
    pub down_words: u64,
    /// Whether this rank took the upper half.
    pub upper: bool,
}

/// The full recursion trace of one rank: its path and leaf brick.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Levels from the root down.
    pub levels: Vec<Level>,
    /// Leaf brick.
    pub brick: Brick,
}

/// Balanced length of piece `idx` when `len` words are split `parts` ways.
fn piece_len(len: usize, parts: usize, idx: usize) -> usize {
    let base = len / parts;
    let extra = len % parts;
    base + usize::from(idx < extra)
}

/// Halve `range` and return the half selected by `upper`.
fn half(range: &std::ops::Range<usize>, upper: bool) -> std::ops::Range<usize> {
    let mid = range.start + range.len().div_ceil(2);
    if upper {
        mid..range.end
    } else {
        range.start..mid
    }
}

/// Choose the split dimension: the largest of `(lm, ln, lk)`, preferring
/// `k`, then `n`, then `m` on ties (deterministic; the paper only says
/// "split the largest dimension").
fn split_dim(lm: usize, ln: usize, lk: usize) -> SplitDim {
    if lk >= lm && lk >= ln {
        SplitDim::K
    } else if ln >= lm {
        SplitDim::N
    } else {
        SplitDim::M
    }
}

/// Compute the recursion trace of `rank` among `p = 2^L` ranks.
pub fn trace(prob: &MmmProblem, rank: usize) -> Trace {
    trace_on(0..prob.m, 0..prob.n, 0..prob.k, prob.p, rank)
}

/// BFS recursion trace over an explicit sub-volume (used by the DFS prefix).
pub fn trace_on(
    rows0: std::ops::Range<usize>,
    cols0: std::ops::Range<usize>,
    ks0: std::ops::Range<usize>,
    p: usize,
    rank: usize,
) -> Trace {
    let mut rows = rows0;
    let mut cols = cols0;
    let mut ks = ks0;
    let mut group = p;
    let mut idx = rank; // index within the current group
    let mut levels = Vec::new();
    while group > 1 {
        let dim = split_dim(rows.len(), cols.len(), ks.len());
        let hsize = group / 2;
        let upper = idx >= hsize;
        let partner_idx = if upper { idx - hsize } else { idx + hsize };
        let down_words = match dim {
            SplitDim::M => piece_len(ks.len() * cols.len(), group, partner_idx) as u64,
            SplitDim::N => piece_len(rows.len() * ks.len(), group, partner_idx) as u64,
            SplitDim::K => 0,
        };
        levels.push(Level {
            dim,
            group,
            down_words,
            upper,
        });
        match dim {
            SplitDim::M => rows = half(&rows, upper),
            SplitDim::N => cols = half(&cols, upper),
            SplitDim::K => ks = half(&ks, upper),
        }
        group = hsize;
        idx = if upper { idx - hsize } else { idx };
    }
    Trace {
        levels,
        brick: Brick { rows, cols, ks },
    }
}

/// The nested C-share range (offset, length) of this rank within its
/// flattened leaf C block after unwinding all k-splits bottom-up.
fn c_share_after_unwind(tr: &Trace) -> (usize, usize) {
    let mut off = 0usize;
    let mut len = tr.brick.rows.len() * tr.brick.cols.len();
    for level in tr.levels.iter().rev() {
        if level.dim == SplitDim::K {
            let lower_len = len.div_ceil(2);
            if level.upper {
                off += lower_len;
                len -= lower_len;
            } else {
                len = lower_len;
            }
        }
    }
    (off, len)
}

/// A `(rows, cols, ks)` sub-volume of the iteration space.
type SubVolume = (std::ops::Range<usize>, std::ops::Range<usize>, std::ops::Range<usize>);

/// Predicate deciding whether a sub-volume's BFS leaf working set fits `S`.
type FitsFn<'a> =
    &'a dyn Fn(&std::ops::Range<usize>, &std::ops::Range<usize>, &std::ops::Range<usize>, usize) -> bool;

/// The sub-volumes the DFS prefix produces: real (memory-aware) CARMA takes
/// sequential steps — the whole machine processes one half after the other —
/// until a pure-BFS recursion's leaf working set fits in `S`. Each DFS leaf
/// then pays the full BFS communication, which is how CARMA's limited-memory
/// re-fetching cost (the `√3` factor of §6.2) arises.
fn dfs_leaves(prob: &MmmProblem) -> Vec<SubVolume> {
    let mut out = Vec::new();
    let fits = |rows: &std::ops::Range<usize>,
                cols: &std::ops::Range<usize>,
                ks: &std::ops::Range<usize>,
                p: usize| {
        // Leaf working set of the BFS recursion below: dims shrink by the
        // BFS halvings; compute the actual rank-0 leaf.
        let tr = trace_on(rows.clone(), cols.clone(), ks.clone(), p, 0);
        let (lm, ln, lk) = (tr.brick.rows.len(), tr.brick.cols.len(), tr.brick.ks.len());
        lm * lk + lk * ln + lm * ln <= prob.mem_words
    };
    // Bounded recursion depth: beyond 24 DFS levels something is wrong.
    fn rec(
        rows: std::ops::Range<usize>,
        cols: std::ops::Range<usize>,
        ks: std::ops::Range<usize>,
        p: usize,
        depth: usize,
        fits: FitsFn,
        out: &mut Vec<SubVolume>,
    ) {
        if depth >= 24 || (rows.len().max(cols.len()).max(ks.len()) <= 1) || fits(&rows, &cols, &ks, p) {
            out.push((rows, cols, ks));
            return;
        }
        match split_dim(rows.len(), cols.len(), ks.len()) {
            SplitDim::M => {
                rec(half(&rows, false), cols.clone(), ks.clone(), p, depth + 1, fits, out);
                rec(half(&rows, true), cols, ks, p, depth + 1, fits, out);
            }
            SplitDim::N => {
                rec(rows.clone(), half(&cols, false), ks.clone(), p, depth + 1, fits, out);
                rec(rows, half(&cols, true), ks, p, depth + 1, fits, out);
            }
            SplitDim::K => {
                rec(rows.clone(), cols.clone(), half(&ks, false), p, depth + 1, fits, out);
                rec(rows, cols, half(&ks, true), p, depth + 1, fits, out);
            }
        }
    }
    rec(0..prob.m, 0..prob.n, 0..prob.k, prob.p, 0, &fits, &mut out);
    out
}

/// Number of sequential (DFS) leaves memory-aware CARMA processes.
pub fn dfs_leaf_count(prob: &MmmProblem) -> usize {
    dfs_leaves(prob).len()
}

/// Build the CARMA [`DistPlan`].
///
/// Fails with [`PlanError::UnsupportedRanks`] unless `p = 2^L`. When the
/// pure-BFS leaf working set exceeds `S`, the plan prepends sequential DFS
/// steps (see [`dfs_leaf_count`]); the executable path only supports the
/// all-BFS case, which every execution test uses.
pub fn plan(prob: &MmmProblem) -> Result<DistPlan, PlanError> {
    RankRequirement::PowerOfTwo.check(AlgoId::Carma, prob.p)?;
    let leaves = dfs_leaves(prob);
    let mut ranks = Vec::with_capacity(prob.p);
    for rank in 0..prob.p {
        let mut rounds = Vec::new();
        let mut bricks = Vec::with_capacity(leaves.len());
        let mut mem_words = 0u64;
        for (rows0, cols0, ks0) in &leaves {
            let tr = trace_on(rows0.clone(), cols0.clone(), ks0.clone(), prob.p, rank);
            // Downward exchanges.
            for level in &tr.levels {
                if level.dim != SplitDim::K {
                    rounds.push(Round {
                        a_words: if level.dim == SplitDim::N {
                            level.down_words
                        } else {
                            0
                        },
                        b_words: if level.dim == SplitDim::M {
                            level.down_words
                        } else {
                            0
                        },
                        c_words: 0,
                        msgs: 1,
                        flops: 0,
                    });
                }
            }
            // Leaf multiply.
            let (lm, ln, lk) = (tr.brick.rows.len(), tr.brick.cols.len(), tr.brick.ks.len());
            rounds.push(Round {
                a_words: 0,
                b_words: 0,
                c_words: 0,
                msgs: 0,
                flops: 2 * (lm * ln * lk) as u64,
            });
            // Upward k-split reductions (reverse level order).
            let mut share = lm * ln;
            for level in tr.levels.iter().rev() {
                if level.dim == SplitDim::K {
                    let lower_len = share.div_ceil(2);
                    let keep = if level.upper { share - lower_len } else { lower_len };
                    rounds.push(Round {
                        a_words: 0,
                        b_words: 0,
                        c_words: keep as u64,
                        msgs: 1,
                        flops: keep as u64,
                    });
                    share = keep;
                }
            }
            mem_words = mem_words.max((lm * lk + lk * ln + lm * ln) as u64);
            bricks.push(tr.brick);
        }
        ranks.push(RankPlan {
            rank,
            active: true,
            coords: [0, 0, 0],
            bricks,
            rounds,
            mem_words: mem_words.min(prob.mem_words as u64),
        });
    }
    Ok(DistPlan {
        algo: AlgoId::Carma,
        problem: *prob,
        grid: [prob.p, 1, 1],
        ranks,
    })
}

/// Result of one rank's CARMA execution: its leaf C region, and the slice
/// of the *flattened* (row-major) leaf block it owns after the k-split
/// reduce-scatters, with the summed data.
#[derive(Debug, Clone, PartialEq)]
pub struct CarmaResult {
    /// Leaf rows in C.
    pub rows: std::ops::Range<usize>,
    /// Leaf cols in C.
    pub cols: std::ops::Range<usize>,
    /// Word offset of the owned slice within the flattened leaf block.
    pub offset: usize,
    /// The owned, fully reduced C words.
    pub data: Vec<f64>,
}

/// Execute a CARMA plan on the calling rank. A resumable rank body: every
/// sibling exchange of the BFS descent and the k-split reduce unwinding is
/// an `await` point.
pub async fn execute(comm: &mut RankComm, plan: &DistPlan, a: &Matrix, b: &Matrix) -> CarmaResult {
    assert_eq!(plan.problem.p, comm.size(), "plan/world size mismatch");
    let prob = &plan.problem;
    assert_eq!(
        plan.ranks[0].bricks.len(),
        1,
        "executable CARMA supports the all-BFS case only (give ranks enough memory)"
    );
    let rank = comm.rank();
    let tr = trace(prob, rank);

    // Downward: exchange replicated-matrix shares with the partner across
    // the sibling half. Payload contents are the partner's actual share of
    // the replicated matrix (read from the initial distribution).
    let mut rows = 0..prob.m;
    let mut cols = 0..prob.n;
    let mut ks = 0..prob.k;
    let mut group = prob.p;
    let mut group_lo = 0usize;
    let mut idx = rank - group_lo;
    for (li, level) in tr.levels.iter().enumerate() {
        let hsize = group / 2;
        let upper = level.upper;
        let partner = if upper {
            group_lo + (idx - hsize)
        } else {
            group_lo + idx + hsize
        };
        match level.dim {
            SplitDim::M | SplitDim::N => {
                // My share of the replicated matrix, flattened row-major.
                let (flat, phase) = match level.dim {
                    SplitDim::M => (b.block(ks.clone(), cols.clone()).into_vec(), Phase::InputB),
                    _ => (a.block(rows.clone(), ks.clone()).into_vec(), Phase::InputA),
                };
                let my_off = share_offset(flat.len(), group, idx);
                let my_len = piece_len(flat.len(), group, idx);
                let payload = flat[my_off..my_off + my_len].to_vec();
                let got = comm.sendrecv(partner, partner, tag(li), payload, phase).await;
                // The received share merges into this rank's holdings; leaf
                // operands are re-materialized below, so contents are only
                // checked for size here.
                debug_assert_eq!(
                    got.len(),
                    piece_len(flat.len(), group, if upper { idx - hsize } else { idx + hsize })
                );
                let _ = got;
            }
            SplitDim::K => {}
        }
        match level.dim {
            SplitDim::M => rows = half(&rows, upper),
            SplitDim::N => cols = half(&cols, upper),
            SplitDim::K => ks = half(&ks, upper),
        }
        if upper {
            group_lo += hsize;
            idx -= hsize;
        }
        group = hsize;
    }

    // Leaf multiply.
    let brick = &tr.brick;
    let (lm, ln) = (brick.rows.len(), brick.cols.len());
    let leaf_a = a.block(brick.rows.clone(), brick.ks.clone());
    let leaf_b = b.block(brick.ks.clone(), brick.cols.clone());
    let mut c_leaf = Matrix::zeros(lm, ln);
    comm.track_alloc((lm * ln) as u64);
    gemm_tiled(&leaf_a, &leaf_b, &mut c_leaf);
    comm.record_flops(2 * (lm * ln * brick.ks.len()) as u64);

    // Upward: recursive-halving reduce-scatter over the k-splits. Partners
    // across a k-split have the same (rows, cols) leaf and the same nested
    // share structure, so exchanging opposite halves and adding yields the
    // summed share.
    let mut data = c_leaf.into_vec();
    let mut off = 0usize;
    // Reconstruct group extents bottom-up: replay the path to know each
    // level's group_lo/size.
    let mut path = Vec::new(); // (group_lo, group, idx) per level, top-down
    {
        let mut g_lo = 0usize;
        let mut g = prob.p;
        let mut ix = rank;
        for level in &tr.levels {
            path.push((g_lo, g, ix));
            let hsize = g / 2;
            if level.upper {
                g_lo += hsize;
                ix -= hsize;
            }
            g = hsize;
        }
    }
    for (li, level) in tr.levels.iter().enumerate().rev() {
        if level.dim != SplitDim::K {
            continue;
        }
        let (g_lo, g, ix) = path[li];
        let hsize = g / 2;
        let partner = if level.upper {
            g_lo + ix - hsize
        } else {
            g_lo + ix + hsize
        };
        let lower_len = data.len().div_ceil(2);
        let (keep_rng, send_rng) = if level.upper {
            (lower_len..data.len(), 0..lower_len)
        } else {
            (0..lower_len, lower_len..data.len())
        };
        let payload = data[send_rng].to_vec();
        let got = comm.sendrecv(partner, partner, tag(li) + 1, payload, Phase::OutputC).await;
        assert_eq!(got.len(), keep_rng.len(), "k-split reduce share mismatch");
        let mut kept: Vec<f64> = data[keep_rng.clone()].to_vec();
        for (d, s) in kept.iter_mut().zip(&got) {
            *d += *s;
        }
        comm.record_flops(kept.len() as u64);
        if level.upper {
            off += lower_len;
        }
        data = kept;
    }
    let (expect_off, expect_len) = c_share_after_unwind(&tr);
    debug_assert_eq!((off, data.len()), (expect_off, expect_len));
    CarmaResult {
        rows: brick.rows.clone(),
        cols: brick.cols.clone(),
        offset: off,
        data,
    }
}

/// Word offset of piece `idx` in a balanced `parts`-way split of `len`.
fn share_offset(len: usize, parts: usize, idx: usize) -> usize {
    let base = len / parts;
    let extra = len % parts;
    idx * base + idx.min(extra)
}

fn tag(level: usize) -> u64 {
    1000 + 10 * level as u64
}

/// CARMA as an [`MmmAlgorithm`]: requires `p = 2^L`.
///
/// The executable path supports the all-BFS case (leaf working sets within
/// `S`); memory-starved plans gain sequential DFS steps and are analysed at
/// plan level only, like the paper's CARMA comparison.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CarmaAlgorithm;

impl MmmAlgorithm for CarmaAlgorithm {
    fn id(&self) -> AlgoId {
        AlgoId::Carma
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn supports(&self, prob: &MmmProblem) -> Result<(), PlanError> {
        RankRequirement::PowerOfTwo.check(AlgoId::Carma, prob.p)
    }

    fn plan(&self, prob: &MmmProblem, _machine: &CostModel) -> Result<DistPlan, PlanError> {
        plan(prob)
    }

    fn execute_rank<'a>(
        &'a self,
        comm: &'a mut RankComm,
        plan: &'a DistPlan,
        a: &'a Matrix,
        b: &'a Matrix,
    ) -> RankFuture<'a, Option<CPart>> {
        Box::pin(async move {
            let res = execute(comm, plan, a, b).await;
            Some(CPart {
                rows: res.rows,
                cols: res.cols,
                offset: res.offset,
                data: res.data,
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use densemat::gemm::matmul;
    use mpsim::exec::run_spmd;
    use mpsim::machine::MachineSpec;

    fn check_carma(m: usize, n: usize, k: usize, p: usize, s: usize) -> DistPlan {
        let prob = MmmProblem::new(m, n, k, p, s);
        let dplan = plan(&prob).expect("plan");
        dplan.validate_coverage().expect("valid coverage");
        let a = Matrix::deterministic(m, k, 61);
        let b = Matrix::deterministic(k, n, 62);
        let want = matmul(&a, &b);
        let spec = MachineSpec::piz_daint_with_memory(p, s);
        let (dplan_r, a_r, b_r) = (&dplan, &a, &b);
        let out = run_spmd(&spec, |mut comm| async move { execute(&mut comm, dplan_r, a_r, b_r).await });
        // Reassemble C from the scattered shares.
        let mut c = Matrix::zeros(m, n);
        for res in &out.results {
            let flat_cols = res.cols.len();
            for (w, &v) in res.data.iter().enumerate() {
                let flat = res.offset + w;
                let (li, lj) = (flat / flat_cols, flat % flat_cols);
                c.set(res.rows.start + li, res.cols.start + lj, v);
            }
        }
        assert!(
            want.approx_eq(&c, 1e-9),
            "{m}x{n}x{k} p={p}: wrong product, max diff {}",
            want.max_abs_diff(&c)
        );
        for (r, st) in out.stats.iter().enumerate() {
            assert_eq!(st.total_recv(), dplan.ranks[r].comm_words(), "rank {r} traffic");
        }
        dplan
    }

    #[test]
    fn carma_correct_square() {
        check_carma(16, 16, 16, 4, 1 << 12);
        check_carma(24, 24, 24, 8, 1 << 12);
        check_carma(17, 23, 29, 8, 1 << 12);
    }

    #[test]
    fn carma_correct_largek_all_ksplits() {
        // k >> m, n: every level splits k, exercising the reduce-scatter.
        let dplan = check_carma(4, 4, 256, 8, 1 << 12);
        // All active levels were k-splits: every rank's brick spans k/8.
        for rp in &dplan.ranks {
            assert_eq!(rp.bricks[0].ks.len(), 32);
        }
    }

    #[test]
    fn carma_correct_largem() {
        check_carma(256, 4, 4, 8, 1 << 12);
    }

    #[test]
    fn carma_correct_flat() {
        check_carma(64, 64, 4, 16, 1 << 12);
    }

    #[test]
    fn carma_single_rank() {
        check_carma(8, 9, 10, 1, 1 << 12);
    }

    #[test]
    fn non_power_of_two_rejected() {
        let prob = MmmProblem::new(16, 16, 16, 6, 1 << 12);
        assert!(matches!(
            plan(&prob),
            Err(PlanError::UnsupportedRanks {
                algo: AlgoId::Carma,
                p: 6,
                ..
            })
        ));
    }

    #[test]
    fn trace_halves_largest_dimension() {
        let prob = MmmProblem::new(8, 16, 64, 8, 1 << 12);
        let tr = trace(&prob, 0);
        assert_eq!(tr.levels[0].dim, SplitDim::K); // 64 largest
        assert_eq!(tr.levels[1].dim, SplitDim::K); // still 32 vs 8/16
        assert_eq!(tr.levels[2].dim, SplitDim::K); // tie k = n = 16 prefers k
        assert_eq!(tr.brick.ks.len(), 8);
    }

    #[test]
    fn bricks_tile_iteration_space() {
        for p in [1usize, 2, 4, 8, 16, 32] {
            let prob = MmmProblem::new(13, 21, 34, p, 1 << 12);
            let dplan = plan(&prob).unwrap();
            dplan.validate_coverage().unwrap_or_else(|e| panic!("p={p}: {e:?}"));
        }
    }

    #[test]
    fn share_arithmetic() {
        assert_eq!(piece_len(10, 4, 0), 3);
        assert_eq!(piece_len(10, 4, 1), 3);
        assert_eq!(piece_len(10, 4, 2), 2);
        assert_eq!(share_offset(10, 4, 0), 0);
        assert_eq!(share_offset(10, 4, 1), 3);
        assert_eq!(share_offset(10, 4, 2), 6);
        assert_eq!(share_offset(10, 4, 3), 8);
        let total: usize = (0..4).map(|i| piece_len(10, 4, i)).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn ample_memory_gives_pure_bfs() {
        // With leaf sets fitting S, CARMA is memory-oblivious: volumes are
        // identical across memory sizes and there is exactly one DFS leaf.
        let prob_big = MmmProblem::new(64, 64, 64, 8, 1 << 20);
        let prob_bigger = MmmProblem::new(64, 64, 64, 8, 1 << 24);
        assert_eq!(dfs_leaf_count(&prob_big), 1);
        let a = plan(&prob_big).unwrap();
        let b = plan(&prob_bigger).unwrap();
        assert_eq!(a.max_comm_words(), b.max_comm_words());
    }

    #[test]
    fn tight_memory_forces_dfs_refetching() {
        // The 64^3-over-8-ranks BFS leaf is ~2.3k words; S = 1024 forces
        // sequential DFS steps, which re-communicate and raise the volume.
        let tight = MmmProblem::new(64, 64, 64, 8, 1 << 10);
        let roomy = MmmProblem::new(64, 64, 64, 8, 1 << 20);
        assert!(dfs_leaf_count(&tight) > 1);
        let a = plan(&tight).unwrap();
        let b = plan(&roomy).unwrap();
        assert!(
            a.max_comm_words() > b.max_comm_words(),
            "DFS re-fetching must cost extra: {} vs {}",
            a.max_comm_words(),
            b.max_comm_words()
        );
        // Coverage still exact: DFS leaves tile the volume, and memory is
        // now respected.
        a.validate().unwrap();
    }
}
