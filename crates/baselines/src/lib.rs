//! # baselines — the comparison algorithms of the paper's evaluation (§2.4, §9)
//!
//! Every algorithm produces the same [`cosma::plan::DistPlan`] structure as
//! COSMA and executes on the same [`mpsim`] machine, so the evaluation
//! figures compare like with like:
//!
//! * [`summa`] — SUMMA [van de Geijn & Watts '97], the 2D panel-broadcast
//!   algorithm inside ScaLAPACK's `pdgemm`. Stands in for "ScaLAPACK" in the
//!   experiments (we auto-tune its grid, as the paper manually did).
//! * [`cannon`] — Cannon's algorithm ['69]: square 2D grid, skew + ring
//!   shifts. The classical communication-optimal 2D algorithm for square
//!   matrices and square grids.
//! * [`p25d`] — the 2.5D decomposition [Solomonik & Demmel '11] with `c`
//!   replicated layers (3D as the special case `c = q`); the decomposition
//!   CTF uses. Stands in for "CTF".
//! * [`carma`] — CARMA [Demmel et al. '13]: BFS recursive splitting of the
//!   largest dimension, `p` a power of two; memory-oblivious and
//!   asymptotically optimal, but up to `√3` off in constants (§6.2).
//!
//! Every algorithm implements [`cosma::api::MmmAlgorithm`] —
//! [`SummaAlgorithm`], [`CannonAlgorithm`], [`P25dAlgorithm`],
//! [`CarmaAlgorithm`] — and [`registry`] returns the full five-algorithm
//! [`AlgorithmRegistry`] (COSMA included) that the bench harness, the
//! examples and the conformance tests consume. Planning failures and
//! rank-count constraints are reported through the unified
//! [`cosma::api::PlanError`] (the former `BaselineError` is gone).

use std::sync::OnceLock;

use cosma::api::AlgorithmRegistry;

pub mod analysis;
pub mod cannon;
pub mod carma;
pub mod p25d;
pub mod summa;

pub use cannon::CannonAlgorithm;
pub use carma::CarmaAlgorithm;
pub use p25d::P25dAlgorithm;
pub use summa::SummaAlgorithm;

/// The full algorithm registry of the paper's evaluation: COSMA plus the
/// four baselines, each with its default configuration.
///
/// Built once per process and shared: [`AlgorithmRegistry`] is `Arc`-backed,
/// so every call returns an O(1) handle to the same algorithm list instead
/// of re-instantiating the five algorithms. Callers that `register` onto
/// their copy split off privately (copy-on-write) without affecting anyone
/// else.
///
/// ```
/// use cosma::api::AlgoId;
/// let reg = baselines::registry();
/// assert_eq!(reg.ids().len(), 5);
/// assert!(reg.by_id(AlgoId::Carma).is_ok());
/// ```
pub fn registry() -> AlgorithmRegistry {
    static REGISTRY: OnceLock<AlgorithmRegistry> = OnceLock::new();
    REGISTRY
        .get_or_init(|| {
            let mut r = AlgorithmRegistry::core();
            r.register(SummaAlgorithm);
            r.register(CannonAlgorithm);
            r.register(P25dAlgorithm::default());
            r.register(CarmaAlgorithm);
            r
        })
        .clone()
}

#[cfg(test)]
mod tests {
    use cosma::api::AlgoId;

    #[test]
    fn registry_contains_all_five() {
        let reg = super::registry();
        let ids = reg.ids();
        for id in AlgoId::ALL {
            assert!(ids.contains(&id), "{id} missing from registry");
        }
        assert_eq!(ids.len(), 5);
    }

    #[test]
    fn registry_ids_match_instances() {
        for algo in super::registry().all() {
            let by_id = super::registry().by_id(algo.id()).unwrap();
            assert_eq!(by_id.id(), algo.id());
        }
    }
}
