//! # baselines — the comparison algorithms of the paper's evaluation (§2.4, §9)
//!
//! Every algorithm produces the same [`cosma::plan::DistPlan`] structure as
//! COSMA and executes on the same [`mpsim`] machine, so the evaluation
//! figures compare like with like:
//!
//! * [`summa`] — SUMMA [van de Geijn & Watts '97], the 2D panel-broadcast
//!   algorithm inside ScaLAPACK's `pdgemm`. Stands in for "ScaLAPACK" in the
//!   experiments (we auto-tune its grid, as the paper manually did).
//! * [`cannon`] — Cannon's algorithm ['69]: square 2D grid, skew + ring
//!   shifts. The classical communication-optimal 2D algorithm for square
//!   matrices and square grids.
//! * [`p25d`] — the 2.5D decomposition [Solomonik & Demmel '11] with `c`
//!   replicated layers (3D as the special case `c = q`); the decomposition
//!   CTF uses. Stands in for "CTF".
//! * [`carma`] — CARMA [Demmel et al. '13]: BFS recursive splitting of the
//!   largest dimension, `p` a power of two; memory-oblivious and
//!   asymptotically optimal, but up to `√3` off in constants (§6.2).
//!
//! Each module provides `plan()` (exact per-rank traffic) and `execute()`
//! (real messages on `mpsim`); integration tests assert the two agree.

pub mod cannon;
pub mod carma;
pub mod p25d;
pub mod summa;
pub mod analysis;

/// Errors the baseline planners can report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineError {
    /// Cannon requires a perfect-square rank count.
    NotSquare,
    /// CARMA requires a power-of-two rank count.
    NotPowerOfTwo,
    /// No feasible decomposition fits the per-rank memory.
    NoFeasibleGrid,
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::NotSquare => write!(f, "algorithm requires a perfect-square rank count"),
            BaselineError::NotPowerOfTwo => write!(f, "algorithm requires a power-of-two rank count"),
            BaselineError::NoFeasibleGrid => write!(f, "no feasible decomposition fits per-rank memory"),
        }
    }
}

impl std::error::Error for BaselineError {}
