//! The 2.5D decomposition (Solomonik & Demmel 2011) — the CTF stand-in.
//!
//! `p = q² · c` ranks form a `q × q × c` grid: `c` replicated "layers", each
//! a Cannon-style `q × q` grid. Layer 0 owns the inputs; they are broadcast
//! along the k-fibers (replication), then each layer executes `q/c` of the
//! `q` alignment positions (one long alignment shift + `q/c − 1` unit
//! shifts), and finally the partial C blocks are reduced back onto layer 0.
//! `c = 1` degenerates to Cannon's 2D algorithm, `c = q` to the 3D
//! algorithm of Agarwal et al.
//!
//! Like CTF, the planner accepts any rank count: it searches the feasible
//! `(q, c)` pairs with `q²c ≤ p` (idling the remainder) and picks the
//! modeled-time optimum — which, as the paper observes (§1, §9), may still
//! be far from the optimal decomposition for non-square problems.

use cosma::algorithm::{even_range, CPart};
use cosma::api::{AlgoId, MmmAlgorithm, PlanError, RankFuture};
use cosma::plan::{Brick, DistPlan, RankPlan, Round};
use cosma::problem::MmmProblem;
use cosma::treecount;
use densemat::gemm::gemm_packed;
use densemat::matrix::Matrix;
use mpsim::collectives::{bcast, reduce_sum};
use mpsim::comm::RankComm;
use mpsim::cost::CostModel;
use mpsim::stats::Phase;

/// The chosen 2.5D geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry25 {
    /// Layer grid edge.
    pub q: usize,
    /// Number of replicated layers.
    pub c: usize,
}

impl Geometry25 {
    /// Ranks used: `q² · c`.
    pub fn used(&self) -> usize {
        self.q * self.q * self.c
    }

    /// Alignment positions per layer.
    pub fn steps(&self) -> usize {
        self.q / self.c
    }

    fn rank_of(&self, i: usize, j: usize, l: usize) -> usize {
        (i * self.q + j) * self.c + l
    }

    fn coords_of(&self, rank: usize) -> (usize, usize, usize) {
        let l = rank % self.c;
        let ij = rank / self.c;
        (ij / self.q, ij % self.q, l)
    }

    fn k_fiber(&self, i: usize, j: usize) -> Vec<usize> {
        (0..self.c).map(|l| self.rank_of(i, j, l)).collect()
    }
}

/// Search the feasible `(q, c)` pairs for the modeled-time optimum.
pub fn choose_geometry(prob: &MmmProblem) -> Result<Geometry25, PlanError> {
    // The selection metric uses Piz-Daint-like constants; only the *ratio*
    // of compute to bandwidth matters for the choice.
    let model = CostModel::piz_daint_two_sided();
    let mut best: Option<(f64, Geometry25)> = None;
    let qmax = (prob.p as f64).sqrt().floor() as usize;
    for q in 1..=qmax {
        if q > prob.m || q > prob.n || q > prob.k {
            continue;
        }
        for c in cosma::grid::divisors(q) {
            let geo = Geometry25 { q, c };
            if geo.used() > prob.p {
                continue;
            }
            let lm = prob.m.div_ceil(q);
            let ln = prob.n.div_ceil(q);
            let lk = prob.k.div_ceil(q);
            // The C tile plus panel-streamed shift buffers must fit; block
            // exchanges can always be subdivided into panels, so the buffer
            // floor is one double-buffered column/row pair (like COSMA and
            // SUMMA). Replication (c > 1) additionally keeps this rank's
            // copy of the A and B blocks resident — the memory cost that
            // bounds c at pS/(mk+nk).
            if lm * ln + 2 * (lm + ln) > prob.mem_words {
                continue;
            }
            if c > 1 && lm * ln + lm * lk + lk * ln + 2 * (lm + ln) > prob.mem_words {
                continue;
            }
            let block_in = (lm * lk + lk * ln) as u64;
            let repl = if c > 1 { block_in + (lm * ln) as u64 } else { 0 };
            let comm = geo.steps() as u64 * block_in + repl;
            let msgs = 2 * geo.steps() as u64 + 3;
            let flops = 2 * (lm * ln) as u64 * (lk * geo.steps()) as u64;
            let score = model.compute_time(flops) + model.comm_time(comm, msgs);
            if best.is_none_or(|(s, _)| score < s) {
                best = Some((score, geo));
            }
        }
    }
    best.map(|(_, g)| g).ok_or(PlanError::NoFeasibleGrid)
}

/// Build the 2.5D [`DistPlan`] with the automatically chosen geometry.
pub fn plan(prob: &MmmProblem) -> Result<DistPlan, PlanError> {
    plan_with_geometry(prob, choose_geometry(prob)?)
}

/// Build the 2.5D [`DistPlan`] for an explicit geometry (used by the Fig. 3
/// experiment to measure the *naive* top-down 3D decomposition `c = q`
/// under exactly the same accounting as COSMA).
///
/// # Panics
/// Panics if the geometry does not satisfy `q²c ≤ p` and `c | q`.
pub fn plan_with_geometry(prob: &MmmProblem, geo: Geometry25) -> Result<DistPlan, PlanError> {
    assert!(geo.used() <= prob.p, "geometry exceeds rank count");
    assert!(geo.c >= 1 && geo.q.is_multiple_of(geo.c), "c must divide q");
    let (q, c, step) = (geo.q, geo.c, geo.steps());
    let mut ranks = Vec::with_capacity(prob.p);
    for rank in 0..prob.p {
        if rank >= geo.used() {
            ranks.push(RankPlan::idle(rank));
            continue;
        }
        let (i, j, l) = geo.coords_of(rank);
        let rows = even_range(prob.m, q, i);
        let cols = even_range(prob.n, q, j);
        let (lm, ln) = (rows.len(), cols.len());
        let own_lk_j = even_range(prob.k, q, j).len();
        let own_lk_i = even_range(prob.k, q, i).len();
        let mut rounds = Vec::new();
        let mut bricks = Vec::with_capacity(step);
        // Replication of layer 0's blocks along the k-fiber.
        if c > 1 {
            let recv = if l == 0 {
                0
            } else {
                (lm * own_lk_j + own_lk_i * ln) as u64
            };
            rounds.push(Round {
                a_words: if l == 0 { 0 } else { (lm * own_lk_j) as u64 },
                b_words: if l == 0 { 0 } else { (own_lk_i * ln) as u64 },
                c_words: 0,
                msgs: if recv == 0 { 0 } else { 2 },
                flops: 0,
            });
        }
        for s in 0..step {
            let t = (i + j + l * step + s) % q;
            let lk_t = even_range(prob.k, q, t).len();
            let (a_words, b_words, msgs) = if s == 0 {
                // Alignment permutation within the layer.
                let a = if t == j { 0 } else { (lm * lk_t) as u64 };
                let b = if t == i { 0 } else { (lk_t * ln) as u64 };
                (a, b, u64::from(t != j) + u64::from(t != i))
            } else {
                ((lm * lk_t) as u64, (lk_t * ln) as u64, 2)
            };
            bricks.push(Brick {
                rows: rows.clone(),
                cols: cols.clone(),
                ks: even_range(prob.k, q, t),
            });
            rounds.push(Round {
                a_words,
                b_words,
                c_words: 0,
                msgs,
                flops: 2 * (lm * ln * lk_t) as u64,
            });
        }
        // Reduction of partial C onto layer 0.
        if c > 1 {
            let recvs = treecount::reduce_recv_count(l, c);
            let c_words = recvs * (lm * ln) as u64;
            rounds.push(Round {
                a_words: 0,
                b_words: 0,
                c_words,
                msgs: recvs,
                flops: c_words,
            });
        }
        let lk_max = prob.k.div_ceil(q);
        // Panel-streamed working set (execution at test scale exchanges
        // whole blocks, but at paper scale the shifts are subdivided).
        let replica = if c > 1 { lm * lk_max + lk_max * ln } else { 0 };
        let mem_words = (lm * ln + replica + 2 * (lm + ln)) as u64;
        ranks.push(RankPlan {
            rank,
            active: true,
            coords: [i, j, l],
            bricks,
            rounds,
            mem_words,
        });
    }
    Ok(DistPlan {
        algo: AlgoId::P25d,
        problem: *prob,
        grid: [q, q, c],
        ranks,
    })
}

/// Execute a 2.5D plan on the calling rank. Layer-0 ranks return their C
/// block; others (and idle ranks) return `None`.
pub async fn execute(
    comm: &mut RankComm,
    plan: &DistPlan,
    a: &Matrix,
    b: &Matrix,
) -> Option<(std::ops::Range<usize>, std::ops::Range<usize>, Matrix)> {
    assert_eq!(plan.problem.p, comm.size(), "plan/world size mismatch");
    let prob = &plan.problem;
    let geo = Geometry25 {
        q: plan.grid[0],
        c: plan.grid[2],
    };
    let (q, c, step) = (geo.q, geo.c, geo.steps());
    let rank = comm.rank();
    if rank >= geo.used() {
        return None;
    }
    let (i, j, l) = geo.coords_of(rank);
    let rows = even_range(prob.m, q, i);
    let cols = even_range(prob.n, q, j);
    let (lm, ln) = (rows.len(), cols.len());

    // Replication: layer 0 materializes its blocks, then broadcasts along
    // the k-fiber.
    let mut a_cur = if l == 0 {
        a.block(rows.clone(), even_range(prob.k, q, j)).into_vec()
    } else {
        Vec::new()
    };
    let mut b_cur = if l == 0 {
        b.block(even_range(prob.k, q, i), cols.clone()).into_vec()
    } else {
        Vec::new()
    };
    if c > 1 {
        let fiber = geo.k_fiber(i, j);
        bcast(comm, &fiber, 0, &mut a_cur, 0, Phase::InputA).await;
        bcast(comm, &fiber, 0, &mut b_cur, 1, Phase::InputB).await;
    }

    // Alignment permutation within the layer.
    let off = l * step;
    let t0 = (i + j + off) % q;
    if t0 != j {
        // My A(i, j) is needed by (i, j') with (i + j' + off) % q == j.
        let jp = (j + 2 * q - i % q - off % q) % q;
        let dst = geo.rank_of(i, jp, l);
        let src = geo.rank_of(i, t0, l);
        a_cur = comm.sendrecv(dst, src, 2, a_cur, Phase::InputA).await;
    }
    if t0 != i {
        let ip = (i + 2 * q - j % q - off % q) % q;
        let dst = geo.rank_of(ip, j, l);
        let src = geo.rank_of(t0, j, l);
        b_cur = comm.sendrecv(dst, src, 3, b_cur, Phase::InputB).await;
    }

    let mut c_local = Matrix::zeros(lm, ln);
    comm.track_alloc((lm * ln) as u64);
    for s in 0..step {
        let t = (i + j + off + s) % q;
        let lk_t = even_range(prob.k, q, t).len();
        // Pooled copies of the live panels: the originals keep circulating
        // on the shift rings while the multiply runs, and the copies go
        // back to the arena instead of the allocator every step.
        let ap = Matrix::from_vec(lm, lk_t, comm.pool().take_copy(&a_cur));
        let bp = Matrix::from_vec(lk_t, ln, comm.pool().take_copy(&b_cur));
        gemm_packed(&ap, &bp, &mut c_local);
        comm.record_flops(2 * (lm * ln * lk_t) as u64);
        comm.recycle(ap.into_vec());
        comm.recycle(bp.into_vec());
        if s + 1 < step {
            let a_dst = geo.rank_of(i, (j + q - 1) % q, l);
            let a_src = geo.rank_of(i, (j + 1) % q, l);
            a_cur = comm.sendrecv(a_dst, a_src, 4 + 2 * s as u64, a_cur, Phase::InputA).await;
            let b_dst = geo.rank_of((i + q - 1) % q, j, l);
            let b_src = geo.rank_of((i + 1) % q, j, l);
            b_cur = comm.sendrecv(b_dst, b_src, 5 + 2 * s as u64, b_cur, Phase::InputB).await;
        }
    }

    // Reduce partial C onto layer 0.
    if c > 1 {
        let fiber = geo.k_fiber(i, j);
        let mut data = c_local.into_vec();
        reduce_sum(comm, &fiber, 0, &mut data, 99, Phase::OutputC).await;
        let recvs = treecount::reduce_recv_count(l, c);
        comm.record_flops(recvs * (lm * ln) as u64);
        if l != 0 {
            return None;
        }
        c_local = Matrix::from_vec(lm, ln, data);
    }
    Some((rows, cols, c_local))
}

/// The 2.5D decomposition as an [`MmmAlgorithm`].
///
/// By default the `(q, c)` geometry is auto-tuned like CTF; a forced
/// geometry (used by the Figure 3 experiment to measure the naive top-down
/// 3D split `c = q` under identical accounting) can be injected with
/// [`P25dAlgorithm::with_geometry`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct P25dAlgorithm {
    /// Forced geometry; `None` auto-tunes.
    pub geometry: Option<Geometry25>,
}

impl P25dAlgorithm {
    /// A 2.5D instance with a pinned `(q, c)` geometry.
    pub fn with_geometry(geo: Geometry25) -> Self {
        P25dAlgorithm { geometry: Some(geo) }
    }
}

impl MmmAlgorithm for P25dAlgorithm {
    fn id(&self) -> AlgoId {
        AlgoId::P25d
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn plan(&self, prob: &MmmProblem, _machine: &CostModel) -> Result<DistPlan, PlanError> {
        match self.geometry {
            None => plan(prob),
            Some(geo) => {
                if geo.q == 0 || geo.c == 0 || geo.used() > prob.p || geo.q % geo.c != 0 {
                    return Err(PlanError::InvalidConfig {
                        algo: AlgoId::P25d,
                        reason: "forced geometry needs q ≥ 1, q²c ≤ p and c | q",
                    });
                }
                plan_with_geometry(prob, geo)
            }
        }
    }

    fn execute_rank<'a>(
        &'a self,
        comm: &'a mut RankComm,
        plan: &'a DistPlan,
        a: &'a Matrix,
        b: &'a Matrix,
    ) -> RankFuture<'a, Vec<CPart>> {
        Box::pin(async move {
            match execute(comm, plan, a, b).await {
                Some((rows, cols, c)) => vec![CPart {
                    rows,
                    cols,
                    offset: 0,
                    data: c.into_vec(),
                }],
                // Idle ranks and non-root replica layers hold no output.
                None => Vec::new(),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use densemat::gemm::matmul;
    use mpsim::exec::{run_spmd_with, ExecBackend};
    use mpsim::machine::MachineSpec;

    fn check_p25d(m: usize, n: usize, k: usize, p: usize, s: usize) -> DistPlan {
        let prob = MmmProblem::new(m, n, k, p, s);
        let dplan = plan(&prob).expect("plan");
        dplan.validate().expect("valid plan");
        let a = Matrix::deterministic(m, k, 51);
        let b = Matrix::deterministic(k, n, 52);
        let want = matmul(&a, &b);
        let spec = MachineSpec::piz_daint_with_memory(p, s);
        let (dplan_r, a_r, b_r) = (&dplan, &a, &b);
        let out = run_spmd_with(&spec, ExecBackend::Threaded, |mut comm| async move {
            execute(&mut comm, dplan_r, a_r, b_r).await
        })
        .expect("threaded run accepted");
        let mut c = Matrix::zeros(m, n);
        for (rows, cols, blk) in out.results.into_iter().flatten() {
            c.set_block(rows.start, cols.start, &blk);
        }
        assert!(
            want.approx_eq(&c, 1e-9),
            "{m}x{n}x{k} p={p}: wrong product, max diff {}",
            want.max_abs_diff(&c)
        );
        for (r, st) in out.stats.iter().enumerate() {
            assert_eq!(st.total_recv(), dplan.ranks[r].comm_words(), "rank {r} traffic");
        }
        dplan
    }

    #[test]
    fn p25d_correct_with_replication() {
        // p = 8 with ample memory: 2x2x2 replicated geometry must appear.
        let dplan = check_p25d(16, 16, 16, 8, 1 << 14);
        assert!(dplan.grid[2] >= 1);
    }

    #[test]
    fn p25d_correct_various() {
        check_p25d(24, 20, 28, 8, 1 << 14);
        check_p25d(16, 16, 16, 12, 1 << 14); // q=2,c=2 uses 8 of 12
        check_p25d(17, 19, 23, 16, 1 << 14);
        check_p25d(9, 9, 81, 27, 1 << 12); // 3D-ish
    }

    #[test]
    fn p25d_single_rank() {
        check_p25d(8, 9, 10, 1, 1 << 12);
    }

    #[test]
    fn limited_memory_forces_c1() {
        // Memory for the q = 4 blocks only: any c > 1 would shrink q and
        // blow the block working set past S.
        let prob = MmmProblem::new(64, 64, 64, 16, 1400);
        let geo = choose_geometry(&prob).unwrap();
        assert_eq!(geo.c, 1, "tight memory must disable replication, got {geo:?}");
    }

    #[test]
    fn extra_memory_enables_replication() {
        // Replication amortizes at scale: p = 4096 square with huge memory.
        let prob = MmmProblem::new(4096, 4096, 4096, 4096, 1 << 26);
        let geo = choose_geometry(&prob).unwrap();
        assert!(geo.c > 1, "ample memory should replicate, got {geo:?}");
    }

    #[test]
    fn geometry_covers_alignments_exactly() {
        // For fixed (i, j), the layers' alignment positions partition 0..q.
        let geo = Geometry25 { q: 6, c: 2 };
        let (i, j) = (2, 3);
        let mut seen = [false; 6];
        for l in 0..geo.c {
            for s in 0..geo.steps() {
                let t = (i + j + l * geo.steps() + s) % geo.q;
                assert!(!seen[t], "alignment {t} covered twice");
                seen[t] = true;
            }
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn forced_degenerate_geometry_is_an_error_not_a_panic() {
        use cosma::api::{MmmAlgorithm, PlanError};
        let prob = MmmProblem::new(16, 16, 16, 8, 1 << 14);
        let model = mpsim::cost::CostModel::piz_daint_two_sided();
        for geo in [
            Geometry25 { q: 0, c: 1 },
            Geometry25 { q: 4, c: 3 },
            Geometry25 { q: 4, c: 1 },
        ] {
            let algo = P25dAlgorithm::with_geometry(geo);
            if geo.q == 4 && geo.c == 1 {
                continue; // q²c = 16 > p = 8 is covered below
            }
            assert!(
                matches!(algo.plan(&prob, &model), Err(PlanError::InvalidConfig { .. })),
                "{geo:?} must be rejected"
            );
        }
        let too_big = P25dAlgorithm::with_geometry(Geometry25 { q: 4, c: 1 });
        assert!(matches!(too_big.plan(&prob, &model), Err(PlanError::InvalidConfig { .. })));
    }

    #[test]
    fn infeasible_memory_reported() {
        let prob = MmmProblem::new(1000, 1000, 1000, 4, 50);
        assert_eq!(plan(&prob), Err(PlanError::NoFeasibleGrid));
    }
}
