//! SUMMA — the ScaLAPACK-style 2D algorithm (van de Geijn & Watts 1997).
//!
//! The matrices live on a `g_m × g_n` process grid: rank `(i, j)` owns
//! `A[rows_i, kslice_j]`, `B[kslice_i, cols_j]` and computes
//! `C[rows_i, cols_j]` locally (no reduction — the 2D algorithm's defining
//! property). The k dimension is walked in panels: for each panel, the
//! owning column broadcasts its `A` panel along the rows and the owning row
//! broadcasts its `B` panel along the columns. Panels never straddle
//! ownership boundaries, so every broadcast has a single root and the
//! per-rank traffic is exact: a rank receives all of `A[rows_i, ·]` and
//! `B[·, cols_j]` except the slices it owns.
//!
//! Grid selection mimics a *well-tuned* ScaLAPACK (the paper hand-tuned it):
//! among all factor pairs `g_m · g_n = p` we pick the one minimizing modeled
//! communication, subject to the C tile + panel buffers fitting in `S`.

use cosma::algorithm::{even_range, CPart};
use cosma::api::{AlgoId, MmmAlgorithm, PlanError, RankFuture};
use cosma::plan::{Brick, DistPlan, RankPlan, Round};
use cosma::problem::MmmProblem;
use densemat::gemm::gemm_packed;
use densemat::layout::even_splits;
use densemat::matrix::Matrix;
use mpsim::collectives::{bcast_pipelined, bcast_pipelined_recv_msgs};
use mpsim::comm::RankComm;
use mpsim::cost::CostModel;
use mpsim::stats::Phase;

/// A 2D grid choice for SUMMA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid2 {
    /// Parts along m.
    pub gm: usize,
    /// Parts along n.
    pub gn: usize,
}

impl Grid2 {
    fn rank_of(&self, i: usize, j: usize) -> usize {
        i * self.gn + j
    }

    fn coords_of(&self, rank: usize) -> (usize, usize) {
        (rank / self.gn, rank % self.gn)
    }

    fn row_group(&self, i: usize) -> Vec<usize> {
        (0..self.gn).map(|j| self.rank_of(i, j)).collect()
    }

    fn col_group(&self, j: usize) -> Vec<usize> {
        (0..self.gm).map(|i| self.rank_of(i, j)).collect()
    }
}

/// Pick the best 2D grid: all `p` ranks, minimal modeled traffic, memory
/// feasible.
pub fn choose_grid(prob: &MmmProblem) -> Result<Grid2, PlanError> {
    let mut best: Option<(u128, Grid2)> = None;
    for gm in cosma::grid::divisors(prob.p) {
        let gn = prob.p / gm;
        if gm > prob.m || gn > prob.n {
            continue;
        }
        let lm = prob.m.div_ceil(gm);
        let ln = prob.n.div_ceil(gn);
        // C tile + one double-buffered panel pair must fit.
        if lm * ln + 2 * (lm + ln) > prob.mem_words {
            continue;
        }
        // Received words: all of A[rows, .] and B[., cols] except own slices.
        let cost = (lm as u128) * (prob.k as u128) * (gn as u128 - 1) / gn as u128
            + (ln as u128) * (prob.k as u128) * (gm as u128 - 1) / gm as u128;
        if best.is_none_or(|(c, _)| cost < c) {
            best = Some((cost, Grid2 { gm, gn }));
        }
    }
    best.map(|(_, g)| g).ok_or(PlanError::NoFeasibleGrid)
}

/// Panel boundaries along k: ownership cuts (both A's `g_n`-split and B's
/// `g_m`-split) refined to at most `nb`-wide panels.
fn panels(prob: &MmmProblem, grid: Grid2, nb: usize) -> Vec<std::ops::Range<usize>> {
    let mut cuts: Vec<usize> = even_splits(prob.k, grid.gn);
    cuts.extend(even_splits(prob.k, grid.gm));
    cuts.sort_unstable();
    cuts.dedup();
    let mut out = Vec::new();
    for w in cuts.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        let mut x = lo;
        while x < hi {
            let end = (x + nb).min(hi);
            out.push(x..end);
            x = end;
        }
    }
    out
}

/// The panel width that fills the memory slack, like COSMA's step size.
fn panel_width(prob: &MmmProblem, lm: usize, ln: usize) -> usize {
    let slack = prob.mem_words.saturating_sub(lm * ln);
    (slack / (2 * (lm + ln))).clamp(1, prob.k)
}

/// Owner of a k-coordinate under an `parts`-way balanced split.
fn k_owner(k: usize, parts: usize, t: usize) -> usize {
    let base = k / parts;
    let extra = k % parts;
    let long = (base + 1) * extra;
    if t < long {
        t / (base + 1)
    } else {
        extra + (t - long) / base
    }
}

/// Build the SUMMA [`DistPlan`].
///
/// Prefer [`SummaAlgorithm`] through the registry; this free function is the
/// implementation it calls.
pub fn plan(prob: &MmmProblem) -> Result<DistPlan, PlanError> {
    let grid = choose_grid(prob)?;
    let lm_max = prob.m.div_ceil(grid.gm);
    let ln_max = prob.n.div_ceil(grid.gn);
    let nb = panel_width(prob, lm_max, ln_max);
    let panel_list = panels(prob, grid, nb);
    let mut ranks = Vec::with_capacity(prob.p);
    for rank in 0..prob.p {
        let (i, j) = grid.coords_of(rank);
        let rows = even_range(prob.m, grid.gm, i);
        let cols = even_range(prob.n, grid.gn, j);
        let (lm, ln) = (rows.len(), cols.len());
        // Group panels into at most MAX_PLAN_ROUNDS buckets at paper scale
        // (totals exact, pipeline granularity coarsened).
        let buckets = panel_list.len().clamp(1, cosma::algorithm::MAX_PLAN_ROUNDS);
        let per_bucket = panel_list.len().div_ceil(buckets);
        let mut rounds = Vec::with_capacity(buckets);
        for chunk in panel_list.chunks(per_bucket) {
            let mut acc = Round::default();
            for panel in chunk {
                let w = panel.len();
                let a_root = k_owner(prob.k, grid.gn, panel.start);
                let b_root = k_owner(prob.k, grid.gm, panel.start);
                if j != a_root {
                    acc.a_words += (lm * w) as u64;
                }
                if i != b_root {
                    acc.b_words += (w * ln) as u64;
                }
                acc.msgs += bcast_pipelined_recv_msgs(rel(j, a_root, grid.gn), grid.gn, lm * w)
                    + bcast_pipelined_recv_msgs(rel(i, b_root, grid.gm), grid.gm, w * ln);
                acc.flops += 2 * (lm * ln * w) as u64;
            }
            rounds.push(acc);
        }
        let mem_words = (lm * ln + 2 * nb * (lm + ln)) as u64;
        ranks.push(RankPlan {
            rank,
            active: true,
            coords: [i, j, 0],
            bricks: vec![Brick {
                rows,
                cols,
                ks: 0..prob.k,
            }],
            rounds,
            mem_words,
        });
    }
    Ok(DistPlan {
        algo: AlgoId::Summa,
        problem: *prob,
        grid: [grid.gm, grid.gn, 1],
        ranks,
    })
}

fn rel(pos: usize, root: usize, g: usize) -> usize {
    (pos + g - root) % g
}

/// Execute a SUMMA plan on the calling rank; returns its C block. A
/// resumable rank body: every broadcast wait is an `await` point.
pub async fn execute(
    comm: &mut RankComm,
    plan: &DistPlan,
    a: &Matrix,
    b: &Matrix,
) -> (std::ops::Range<usize>, std::ops::Range<usize>, Matrix) {
    assert_eq!(plan.problem.p, comm.size(), "plan/world size mismatch");
    let prob = &plan.problem;
    let grid = Grid2 {
        gm: plan.grid[0],
        gn: plan.grid[1],
    };
    let rank = comm.rank();
    let (i, j) = grid.coords_of(rank);
    let rp = &plan.ranks[rank];
    let brick = &rp.bricks[0];
    let (rows, cols) = (brick.rows.clone(), brick.cols.clone());
    let (lm, ln) = (rows.len(), cols.len());
    let nb = panel_width(prob, prob.m.div_ceil(grid.gm), prob.n.div_ceil(grid.gn));
    let mut c_local = Matrix::zeros(lm, ln);
    comm.track_alloc((lm * ln) as u64);
    for (round, panel) in panels(prob, grid, nb).into_iter().enumerate() {
        let w = panel.len();
        let a_root = k_owner(prob.k, grid.gn, panel.start);
        let b_root = k_owner(prob.k, grid.gm, panel.start);
        // Panel broadcasts use the §7.2 pipelined binomial trees: serialized
        // whole-panel forwarding was what held PR 5's measured SUMMA time at
        // 2.1–2.4× plan. Segments are tagged `base + s`, so round bases are
        // spaced far apart (and A/B separated) to keep tags disjoint.
        let a_tag = (round as u64) << 33;
        let b_tag = ((round as u64) << 33) | (1 << 32);
        // A panel broadcast along my row (every member shares `rows`, so the
        // payload length lm·w is known group-wide).
        let mut a_panel = if j == a_root {
            a.block(rows.clone(), panel.clone()).into_vec()
        } else {
            Vec::new()
        };
        bcast_pipelined(comm, &grid.row_group(i), a_root, &mut a_panel, lm * w, a_tag, Phase::InputA).await;
        // B panel broadcast along my column.
        let mut b_panel = if i == b_root {
            b.block(panel.clone(), cols.clone()).into_vec()
        } else {
            Vec::new()
        };
        bcast_pipelined(comm, &grid.col_group(j), b_root, &mut b_panel, w * ln, b_tag, Phase::InputB).await;
        let ap = Matrix::from_vec(lm, w, a_panel);
        let bp = Matrix::from_vec(w, ln, b_panel);
        gemm_packed(&ap, &bp, &mut c_local);
        comm.record_flops(2 * (lm * ln * w) as u64);
    }
    (rows, cols, c_local)
}

/// SUMMA as an [`MmmAlgorithm`]: no configuration — the 2D grid is
/// auto-tuned like the paper's hand-tuned ScaLAPACK.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SummaAlgorithm;

impl MmmAlgorithm for SummaAlgorithm {
    fn id(&self) -> AlgoId {
        AlgoId::Summa
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn plan(&self, prob: &MmmProblem, _machine: &CostModel) -> Result<DistPlan, PlanError> {
        plan(prob)
    }

    fn execute_rank<'a>(
        &'a self,
        comm: &'a mut RankComm,
        plan: &'a DistPlan,
        a: &'a Matrix,
        b: &'a Matrix,
    ) -> RankFuture<'a, Vec<CPart>> {
        Box::pin(async move {
            let (rows, cols, c) = execute(comm, plan, a, b).await;
            vec![CPart {
                rows,
                cols,
                offset: 0,
                data: c.into_vec(),
            }]
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use densemat::gemm::matmul;
    use mpsim::exec::{run_spmd_with, ExecBackend};
    use mpsim::machine::MachineSpec;

    fn check_summa(m: usize, n: usize, k: usize, p: usize, s: usize) {
        let prob = MmmProblem::new(m, n, k, p, s);
        let dplan = plan(&prob).expect("plan");
        dplan.validate().expect("valid plan");
        let a = Matrix::deterministic(m, k, 31);
        let b = Matrix::deterministic(k, n, 32);
        let want = matmul(&a, &b);
        let spec = MachineSpec::piz_daint_with_memory(p, s);
        let (dplan_r, a_r, b_r) = (&dplan, &a, &b);
        let out = run_spmd_with(&spec, ExecBackend::Threaded, |mut comm| async move {
            execute(&mut comm, dplan_r, a_r, b_r).await
        })
        .expect("threaded run accepted");
        let mut c = Matrix::zeros(m, n);
        for (rows, cols, blk) in out.results {
            c.set_block(rows.start, cols.start, &blk);
        }
        assert!(
            want.approx_eq(&c, 1e-9),
            "{m}x{n}x{k} p={p}: wrong product, max diff {}",
            want.max_abs_diff(&c)
        );
        for (r, st) in out.stats.iter().enumerate() {
            assert_eq!(st.total_recv(), dplan.ranks[r].comm_words(), "rank {r} traffic");
        }
    }

    #[test]
    fn summa_correct_various_shapes() {
        check_summa(16, 16, 16, 4, 4096);
        check_summa(18, 24, 30, 6, 4096);
        check_summa(17, 19, 23, 4, 4096);
        check_summa(32, 32, 8, 8, 4096); // flat
        check_summa(8, 8, 128, 4, 4096); // largeK: 2D must still be correct
    }

    #[test]
    fn summa_single_rank() {
        check_summa(10, 12, 14, 1, 4096);
    }

    #[test]
    fn summa_tight_memory_many_panels() {
        check_summa(16, 16, 64, 4, 8 * 8 + 2 * 16 * 2);
    }

    #[test]
    fn grid_choice_prefers_matrix_aspect() {
        // m >> n: the grid must put more parts along m.
        let prob = MmmProblem::new(1 << 14, 64, 4096, 16, 1 << 22);
        let g = choose_grid(&prob).unwrap();
        assert!(g.gm > g.gn, "grid {g:?} ignores the aspect ratio");
    }

    #[test]
    fn panels_respect_ownership_and_width() {
        let prob = MmmProblem::new(64, 64, 100, 6, 1 << 16);
        let grid = Grid2 { gm: 2, gn: 3 };
        let ps = panels(&prob, grid, 7);
        // Cover exactly 0..k with no overlaps.
        assert_eq!(ps.first().unwrap().start, 0);
        assert_eq!(ps.last().unwrap().end, 100);
        for w in ps.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        // No panel straddles an ownership cut of either split.
        for panel in &ps {
            assert!(panel.len() <= 7);
            assert_eq!(k_owner(100, 3, panel.start), k_owner(100, 3, panel.end - 1));
            assert_eq!(k_owner(100, 2, panel.start), k_owner(100, 2, panel.end - 1));
        }
    }

    #[test]
    fn plan_volume_is_2d() {
        // SUMMA's per-rank volume ~ k(m+n)/sqrt(p) for square problems.
        let prob = MmmProblem::new(256, 256, 256, 16, 1 << 16);
        let dplan = plan(&prob).unwrap();
        let expect = 2.0 * 256.0 * 256.0 / 4.0 * (3.0 / 4.0);
        let got = dplan.max_comm_words() as f64;
        assert!((got / expect - 1.0).abs() < 0.1, "volume {got} vs 2D model {expect}");
    }

    #[test]
    fn infeasible_memory_is_reported() {
        let prob = MmmProblem::new(1000, 1000, 10, 2, 100);
        assert_eq!(plan(&prob), Err(PlanError::NoFeasibleGrid));
    }
}
