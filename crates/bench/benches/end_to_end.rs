//! End-to-end executed multiplications on the threaded simulator: every
//! registry algorithm at a fixed small scale, COSMA under both §7.4
//! backends, all driven through the [`MmmAlgorithm`] trait — plus the
//! plan-predicted-vs-executed ablation (planning alone, and the cost-model
//! analysis of a plan, against the threaded execution above).

use bench::micro::Group;
use cosma::algorithm::Backend;
use cosma::api::{execute_boxed, AlgoId, CosmaAlgorithm, MmmAlgorithm};
use cosma::problem::MmmProblem;
use cosma::CosmaConfig;
use densemat::matrix::Matrix;
use mpsim::cost::CostModel;
use mpsim::machine::MachineSpec;

fn main() {
    let (m, n, k, p, s) = (128usize, 128usize, 128usize, 16usize, 1usize << 13);
    let prob = MmmProblem::new(m, n, k, p, s);
    let model = CostModel::piz_daint_two_sided();
    let a = Matrix::deterministic(m, k, 1);
    let b = Matrix::deterministic(k, n, 2);
    let spec = MachineSpec::piz_daint_with_memory(p, s);

    let group = Group::new("executed-128cube-p16");
    for backend in [Backend::TwoSided, Backend::OneSided] {
        let algo = CosmaAlgorithm::with_config(CosmaConfig { delta: 0.03, backend });
        let plan = algo.plan(&prob, &model).unwrap();
        group.bench(&format!("cosma-{backend:?}"), || algo.execute(&plan, &spec, &a, &b).unwrap());
    }
    let registry = baselines::registry();
    for id in [AlgoId::Summa, AlgoId::Cannon, AlgoId::P25d, AlgoId::Carma] {
        let algo = registry.by_id(id).unwrap();
        let plan = algo.plan(&prob, &model).unwrap();
        group.bench(id.as_str(), || execute_boxed(algo.as_ref(), &plan, &spec, &a, &b).unwrap());
    }

    // Ablation: planning alone vs cost-model analysis vs the threaded
    // execution timed above.
    let group = Group::new("plan-vs-execute");
    let algo = registry.by_id(AlgoId::Cosma).unwrap();
    group.bench("plan-only", || algo.plan(&prob, &model).unwrap());
    let plan = algo.plan(&prob, &model).unwrap();
    group.bench("plan-analyze", || plan.simulate(&model, true));
}
