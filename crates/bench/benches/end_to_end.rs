//! End-to-end executed multiplications on the threaded simulator: COSMA
//! (both backends) against the baselines at a fixed small scale, plus the
//! plan-predicted-vs-executed ablation (the two paths must cost the same
//! words; this measures their wall-clock difference).

use cosma::algorithm::{execute as cosma_execute, plan as cosma_plan, Backend, CosmaConfig};
use cosma::problem::MmmProblem;
use criterion::{criterion_group, criterion_main, Criterion};
use densemat::matrix::Matrix;
use mpsim::cost::CostModel;
use mpsim::exec::run_spmd;
use mpsim::machine::MachineSpec;

fn bench_end_to_end(c: &mut Criterion) {
    let (m, n, k, p, s) = (128usize, 128usize, 128usize, 16usize, 1usize << 13);
    let prob = MmmProblem::new(m, n, k, p, s);
    let model = CostModel::piz_daint_two_sided();
    let a = Matrix::deterministic(m, k, 1);
    let b = Matrix::deterministic(k, n, 2);
    let spec = MachineSpec::piz_daint_with_memory(p, s);

    let mut group = c.benchmark_group("executed-128cube-p16");
    group.sample_size(10);
    for backend in [Backend::TwoSided, Backend::OneSided] {
        let cfg = CosmaConfig { delta: 0.03, backend };
        let plan = cosma_plan(&prob, &cfg, &model).unwrap();
        let name = format!("cosma-{backend:?}");
        group.bench_function(&name, |bch| {
            bch.iter(|| run_spmd(&spec, |comm| cosma_execute(comm, &plan, &cfg, &a, &b)))
        });
    }
    let plan = baselines::summa::plan(&prob).unwrap();
    group.bench_function("scalapack", |bch| {
        bch.iter(|| run_spmd(&spec, |comm| baselines::summa::execute(comm, &plan, &a, &b)))
    });
    let plan = baselines::cannon::plan(&prob).unwrap();
    group.bench_function("cannon", |bch| {
        bch.iter(|| run_spmd(&spec, |comm| baselines::cannon::execute(comm, &plan, &a, &b)))
    });
    let plan = baselines::p25d::plan(&prob).unwrap();
    group.bench_function("ctf", |bch| {
        bch.iter(|| run_spmd(&spec, |comm| baselines::p25d::execute(comm, &plan, &a, &b)))
    });
    let plan = baselines::carma::plan(&prob).unwrap();
    group.bench_function("carma", |bch| {
        bch.iter(|| run_spmd(&spec, |comm| baselines::carma::execute(comm, &plan, &a, &b)))
    });
    group.finish();

    // Ablation: planning alone vs planning + threaded execution.
    let mut group = c.benchmark_group("plan-vs-execute");
    group.sample_size(10);
    let cfg = CosmaConfig::default();
    group.bench_function("plan-only", |bch| {
        bch.iter(|| cosma_plan(&prob, &cfg, &model).unwrap())
    });
    group.bench_function("plan-analyze", |bch| {
        let plan = cosma_plan(&prob, &cfg, &model).unwrap();
        bch.iter(|| plan.simulate(&model, true))
    });
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
