//! Local GEMM kernel microbenchmarks: the naive, tiled, packed and parallel
//! kernels that replace vendor BLAS, across the block shapes the distributed
//! algorithms actually multiply (square tiles, thin slabs).

use bench::micro::Group;
use densemat::gemm::{gemm_naive, gemm_packed, gemm_parallel, gemm_tiled};
use densemat::matrix::Matrix;

fn main() {
    let group = Group::new("gemm-square");
    for &n in &[64usize, 128, 256] {
        let a = Matrix::deterministic(n, n, 1);
        let b = Matrix::deterministic(n, n, 2);
        group.bench(&format!("naive/{n}"), || {
            let mut cmat = Matrix::zeros(n, n);
            gemm_naive(&a, &b, &mut cmat);
            cmat
        });
        group.bench(&format!("tiled/{n}"), || {
            let mut cmat = Matrix::zeros(n, n);
            gemm_tiled(&a, &b, &mut cmat);
            cmat
        });
        group.bench(&format!("packed/{n}"), || {
            let mut cmat = Matrix::zeros(n, n);
            gemm_packed(&a, &b, &mut cmat);
            cmat
        });
        group.bench(&format!("parallel4/{n}"), || {
            let mut cmat = Matrix::zeros(n, n);
            gemm_parallel(&a, &b, &mut cmat, 4);
            cmat
        });
    }

    // COSMA's actual local shape: a C tile times a thin k-slab.
    let group = Group::new("gemm-slab");
    for &s in &[8usize, 32, 128] {
        let (mn, k) = (256, s);
        let a = Matrix::deterministic(mn, k, 3);
        let b = Matrix::deterministic(k, mn, 4);
        group.bench(&format!("tiled/{s}"), || {
            let mut cmat = Matrix::zeros(mn, mn);
            gemm_tiled(&a, &b, &mut cmat);
            cmat
        });
        group.bench(&format!("packed/{s}"), || {
            let mut cmat = Matrix::zeros(mn, mn);
            gemm_packed(&a, &b, &mut cmat);
            cmat
        });
    }
}
