//! Local GEMM kernel microbenchmarks: the naive, tiled and parallel kernels
//! that replace vendor BLAS, across the block shapes the distributed
//! algorithms actually multiply (square tiles, thin slabs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use densemat::gemm::{gemm_naive, gemm_parallel, gemm_tiled, mmm_flops};
use densemat::matrix::Matrix;

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm-square");
    for &n in &[64usize, 128, 256] {
        let a = Matrix::deterministic(n, n, 1);
        let b = Matrix::deterministic(n, n, 2);
        group.throughput(Throughput::Elements(mmm_flops(n, n, n)));
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |bch, _| {
            bch.iter(|| {
                let mut cmat = Matrix::zeros(n, n);
                gemm_naive(&a, &b, &mut cmat);
                cmat
            })
        });
        group.bench_with_input(BenchmarkId::new("tiled", n), &n, |bch, _| {
            bch.iter(|| {
                let mut cmat = Matrix::zeros(n, n);
                gemm_tiled(&a, &b, &mut cmat);
                cmat
            })
        });
        group.bench_with_input(BenchmarkId::new("parallel4", n), &n, |bch, _| {
            bch.iter(|| {
                let mut cmat = Matrix::zeros(n, n);
                gemm_parallel(&a, &b, &mut cmat, 4);
                cmat
            })
        });
    }
    group.finish();

    // COSMA's actual local shape: a C tile times a thin k-slab.
    let mut group = c.benchmark_group("gemm-slab");
    for &s in &[8usize, 32, 128] {
        let (mn, k) = (256, s);
        let a = Matrix::deterministic(mn, k, 3);
        let b = Matrix::deterministic(k, mn, 4);
        group.throughput(Throughput::Elements(mmm_flops(mn, mn, k)));
        group.bench_with_input(BenchmarkId::new("tiled", s), &s, |bch, _| {
            bch.iter(|| {
                let mut cmat = Matrix::zeros(mn, mn);
                gemm_tiled(&a, &b, &mut cmat);
                cmat
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
