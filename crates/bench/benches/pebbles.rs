//! Pebble-game engine benchmarks: schedule generation, move validation, and
//! the closed-form bound evaluations the planner calls in its inner loops.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pebbles::bounds::{aopt_bopt_enumerated, best_engine_tile, theorem1_lower_bound};
use pebbles::game::validate_complete;
use pebbles::greedy::{near_optimal_moves, tiled_capacity, tiled_moves};
use pebbles::mmm::MmmCdag;

fn bench_pebbles(c: &mut Criterion) {
    let mut group = c.benchmark_group("pebble-game");
    for &(m, n, k) in &[(8usize, 8usize, 8usize), (16, 16, 16), (24, 24, 24)] {
        group.bench_with_input(BenchmarkId::new("build-cdag", m), &m, |b, _| {
            b.iter(|| MmmCdag::new(m, n, k))
        });
        let g = MmmCdag::new(m, n, k);
        group.bench_with_input(BenchmarkId::new("gen-schedule", m), &m, |b, _| {
            b.iter(|| tiled_moves(&g, 4, 4))
        });
        let moves = tiled_moves(&g, 4, 4);
        group.bench_with_input(BenchmarkId::new("validate-schedule", m), &m, |b, _| {
            b.iter(|| validate_complete(g.graph(), tiled_capacity(4, 4), &moves).unwrap())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("bounds");
    group.bench_function("theorem1", |b| {
        b.iter(|| theorem1_lower_bound(criterion::black_box(4096), 4096, 4096, 1 << 20))
    });
    group.bench_function("aopt-enumerated-S=1M", |b| {
        b.iter(|| aopt_bopt_enumerated(criterion::black_box(1 << 20)))
    });
    group.bench_function("best-engine-tile-S=1M", |b| {
        b.iter(|| best_engine_tile(criterion::black_box(1 << 20)))
    });
    group.bench_function("near-optimal-schedule-16", |b| {
        let g = MmmCdag::new(16, 16, 16);
        b.iter(|| near_optimal_moves(&g, 64))
    });
    group.finish();
}

criterion_group!(benches, bench_pebbles);
criterion_main!(benches);
