//! Pebble-game engine benchmarks: schedule generation, move validation, and
//! the closed-form bound evaluations the planner calls in its inner loops.

use bench::micro::{black_box, Group};
use pebbles::bounds::{aopt_bopt_enumerated, best_engine_tile, theorem1_lower_bound};
use pebbles::game::validate_complete;
use pebbles::greedy::{near_optimal_moves, tiled_capacity, tiled_moves};
use pebbles::mmm::MmmCdag;

fn main() {
    let group = Group::new("pebble-game");
    for &(m, n, k) in &[(8usize, 8usize, 8usize), (16, 16, 16), (24, 24, 24)] {
        group.bench(&format!("build-cdag/{m}"), || MmmCdag::new(m, n, k));
        let g = MmmCdag::new(m, n, k);
        group.bench(&format!("gen-schedule/{m}"), || tiled_moves(&g, 4, 4));
        let moves = tiled_moves(&g, 4, 4);
        group.bench(&format!("validate-schedule/{m}"), || {
            validate_complete(g.graph(), tiled_capacity(4, 4), &moves).unwrap()
        });
    }

    let group = Group::new("bounds");
    group.bench("theorem1", || theorem1_lower_bound(black_box(4096), 4096, 4096, 1 << 20));
    group.bench("aopt-enumerated-S=1M", || aopt_bopt_enumerated(black_box(1 << 20)));
    group.bench("best-engine-tile-S=1M", || best_engine_tile(black_box(1 << 20)));
    let g = MmmCdag::new(16, 16, 16);
    group.bench("near-optimal-schedule-16", || near_optimal_moves(&g, 64));
}
