//! Planner benchmarks: FitRanks grid search and full plan construction at
//! paper-scale rank counts (the per-figure sweeps call these hundreds of
//! times), plus the delta ablation of §7.1.

use bench::scenarios;
use cosma::algorithm::{plan as cosma_plan, CosmaConfig};
use cosma::grid::fit_ranks;
use cosma::problem::MmmProblem;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpsim::cost::CostModel;

fn bench_planning(c: &mut Criterion) {
    let model = CostModel::piz_daint_two_sided();

    let mut group = c.benchmark_group("fit-ranks");
    // Adversarial rank counts: prime, off-by-one, power of two.
    for &p in &[65usize, 127, 1000, 4096, 18432] {
        let prob = MmmProblem::new(16384, 16384, 16384, p, scenarios::S_WORDS);
        group.bench_with_input(BenchmarkId::new("delta3%", p), &p, |b, _| {
            b.iter(|| fit_ranks(&prob, 0.03, &model).unwrap())
        });
    }
    // Ablation: delta = 0 forces exact factorizations (Figure 5's bad grids).
    let prob65 = MmmProblem::new(16384, 16384, 16384, 65, scenarios::S_WORDS);
    group.bench_function("delta0%-p65", |b| b.iter(|| fit_ranks(&prob65, 0.0, &model).unwrap()));
    group.finish();

    let mut group = c.benchmark_group("full-plan");
    group.sample_size(10);
    for &p in &[1024usize, 4096, 18432] {
        let prob = MmmProblem::new(16384, 16384, 16384, p, scenarios::S_WORDS);
        group.bench_with_input(BenchmarkId::new("cosma", p), &p, |b, _| {
            b.iter(|| cosma_plan(&prob, &CosmaConfig::default(), &model).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("scalapack", p), &p, |b, _| {
            b.iter(|| baselines::summa::plan(&prob).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("ctf", p), &p, |b, _| {
            b.iter(|| baselines::p25d::plan(&prob).unwrap())
        });
        if p.is_power_of_two() {
            group.bench_with_input(BenchmarkId::new("carma", p), &p, |b, _| {
                b.iter(|| baselines::carma::plan(&prob).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_planning);
criterion_main!(benches);
