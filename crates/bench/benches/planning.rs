//! Planner benchmarks: FitRanks grid search and full plan construction at
//! paper-scale rank counts (the per-figure sweeps call these hundreds of
//! times), plus the delta ablation of §7.1. All planning goes through the
//! [`cosma::api::MmmAlgorithm`] registry entries.

use bench::micro::Group;
use bench::scenarios;
use cosma::api::AlgoId;
use cosma::grid::fit_ranks;
use cosma::problem::MmmProblem;
use mpsim::cost::CostModel;

fn main() {
    let model = CostModel::piz_daint_two_sided();
    let registry = baselines::registry();

    let group = Group::new("fit-ranks");
    // Adversarial rank counts: prime, off-by-one, power of two.
    for &p in &[65usize, 127, 1000, 4096, 18432] {
        let prob = MmmProblem::new(16384, 16384, 16384, p, scenarios::S_WORDS);
        group.bench(&format!("delta3%/{p}"), || fit_ranks(&prob, 0.03, &model).unwrap());
    }
    // Ablation: delta = 0 forces exact factorizations (Figure 5's bad grids).
    let prob65 = MmmProblem::new(16384, 16384, 16384, 65, scenarios::S_WORDS);
    group.bench("delta0%-p65", || fit_ranks(&prob65, 0.0, &model).unwrap());

    let group = Group::new("full-plan");
    for &p in &[1024usize, 4096, 18432] {
        let prob = MmmProblem::new(16384, 16384, 16384, p, scenarios::S_WORDS);
        for id in [AlgoId::Cosma, AlgoId::Summa, AlgoId::P25d, AlgoId::Carma] {
            if id == AlgoId::Carma && !p.is_power_of_two() {
                continue;
            }
            let algo = registry.by_id(id).unwrap();
            group.bench(&format!("{id}/{p}"), || algo.plan(&prob, &model).unwrap());
        }
    }
}
