//! Simulator substrate benchmarks: point-to-point message rate, collectives,
//! and the cost-model evaluation used by every figure.

use bench::micro::Group;
use mpsim::collectives::{allgather_bruck, allgather_ring, bcast, reduce_scatter_ring, reduce_sum};
use mpsim::cost::{simulate_rounds, CostModel, RoundCost};
use mpsim::exec::{run_spmd_with, ExecBackend};
use mpsim::machine::MachineSpec;
use mpsim::stats::Phase;

fn main() {
    let group = Group::new("collectives-p16");
    let spec = MachineSpec::test_machine(16, 1 << 20);
    let words = 4096usize;
    group.bench("bcast", || {
        run_spmd_with(&spec, ExecBackend::Threaded, |mut comm| async move {
            let group: Vec<usize> = (0..comm.size()).collect();
            let mut data = if comm.rank() == 0 {
                vec![1.0; words]
            } else {
                vec![]
            };
            bcast(&mut comm, &group, 0, &mut data, 1, Phase::InputA).await;
        })
        .expect("threaded run accepted")
    });
    group.bench("reduce", || {
        run_spmd_with(&spec, ExecBackend::Threaded, |mut comm| async move {
            let group: Vec<usize> = (0..comm.size()).collect();
            let mut data = vec![1.0; words];
            reduce_sum(&mut comm, &group, 0, &mut data, 1, Phase::OutputC).await;
        })
        .expect("threaded run accepted")
    });
    group.bench("allgather-ring", || {
        run_spmd_with(&spec, ExecBackend::Threaded, |mut comm| async move {
            let group: Vec<usize> = (0..comm.size()).collect();
            allgather_ring(&mut comm, &group, vec![1.0; words / 16], 1, Phase::InputA).await
        })
        .expect("threaded run accepted")
    });
    group.bench("allgather-bruck", || {
        run_spmd_with(&spec, ExecBackend::Threaded, |mut comm| async move {
            let group: Vec<usize> = (0..comm.size()).collect();
            let sizes = vec![words / 16; 16];
            allgather_bruck(&mut comm, &group, vec![1.0; words / 16], &sizes, 1, Phase::InputA).await
        })
        .expect("threaded run accepted")
    });
    group.bench("reduce-scatter", || {
        run_spmd_with(&spec, ExecBackend::Threaded, |mut comm| async move {
            let group: Vec<usize> = (0..comm.size()).collect();
            let mut data = vec![1.0; words];
            reduce_scatter_ring(&mut comm, &group, &mut data, 1, Phase::OutputC).await
        })
        .expect("threaded run accepted")
    });
    // The same collective workload on the event-driven stackless executor:
    // collectives park in the matching table instead of on threads.
    let event_group = Group::new("collectives-p16-event");
    event_group.bench("bcast", || {
        run_spmd_with(&spec, ExecBackend::event(), |mut comm| async move {
            let group: Vec<usize> = (0..comm.size()).collect();
            let mut data = if comm.rank() == 0 {
                vec![1.0; words]
            } else {
                vec![]
            };
            bcast(&mut comm, &group, 0, &mut data, 1, Phase::InputA).await;
        })
        .expect("event run accepted")
    });

    let group = Group::new("cost-model");
    let model = CostModel::piz_daint_two_sided();
    for &rounds in &[16usize, 256, 4096] {
        let rs: Vec<RoundCost> = (0..rounds)
            .map(|i| RoundCost {
                words: 1000 + i as u64,
                msgs: 4,
                flops: 1_000_000,
            })
            .collect();
        group.bench(&format!("overlap/{rounds}"), || simulate_rounds(&rs, &model, true));
    }
}
