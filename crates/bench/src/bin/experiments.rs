//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p bench --bin experiments -- <id> [<id> ...]
//! cargo run --release -p bench --bin experiments -- all
//! ```
//!
//! Ids: `fig1 fig3 fig5 fig6 fig7 fig7m fig7f fig8 fig9 fig10 fig11 fig12
//! fig13 fig14 table3 table4 exec exec-xl timed topo mem-sweep serve
//! faults`. Each
//! experiment prints its table(s) and writes CSVs to `results/`. See
//! `EXPERIMENTS.md` for the paper-vs-measured record. `--backend
//! <threaded|sharded|sharded(N)|event>` pins the execution backend of the
//! experiments that would otherwise pick one automatically (`exec`,
//! `serve`).
//!
//! Additional maintenance commands (not part of `all`):
//!
//! * `bench-smoke` — the CI perf-regression gate: runs a small executed
//!   subset, writes the rows to `results/bench-smoke.json`, and exits
//!   non-zero if any row's measured traffic deviates from its plan, an
//!   event-backend row's measured virtual time disagrees with
//!   `DistPlan::simulate` beyond the stated band (or overlap-on beats
//!   overlap-off), or a scenario's measured MB / simulated wall-clock
//!   regresses > 10% against the committed
//!   `results/bench-smoke-baseline.csv`. A `topo-smoke` section re-executes
//!   the timed world under the congested fat-tree preset and fails on any
//!   bitwise divergence of the flat rows or a > 10% simulated wall-clock
//!   regression of the fat-tree rows against the committed
//!   `results/topo-smoke-baseline.csv`. The gate ends with the
//!   `serve-smoke` row: a 64-job mixed stream through `crates/serve` that
//!   must match serial execution bitwise, answer cached planning >= 10x
//!   faster than cold, hit the cache, auto-select >= 3 algorithms, and hold
//!   machine-normalized jobs/s (per cold-plan/s, so shared-box speed swings
//!   cancel) within 10% of the committed
//!   `results/serve-smoke-baseline.csv`. A closing `fault-smoke` section
//!   arms a fixed-seed `FaultPlan` (15 of 64 ranks die mid-run) and fails
//!   unless the job completes via the retry policy on the surviving
//!   p′ = 49 with measured traffic and virtual clock bitwise-equal to the
//!   committed `results/fault-smoke-baseline.csv`, and unless a quiescent
//!   fault plan leaves the zero-fault run bitwise-untouched. A closing
//!   `gemm-smoke` section times the default packed local kernel against the
//!   naive reference and fails unless it matches bitwise on integer
//!   matrices and beats it by the committed factor (the measured flop rate
//!   also feeds `CostModel::calibrated_gamma` — the printed γ is the
//!   machine's real %-peak denominator).
//! * `bench-smoke-baseline` — regenerate all four committed baselines.
//! * `exec-rss <sharded|event>` — run the square p = 4096 executed
//!   scenario on one backend and report the process peak RSS (`VmHWM`), for
//!   the per-backend memory table in `EXPERIMENTS.md`.

use baselines::p25d::Geometry25;
use baselines::P25dAlgorithm;
use bench::output::{fmt, Table};
use bench::runner::{self, cosma_speedup, five_numbers, geomean, run_all, AlgoRow, COMPARED};
use bench::scenarios::{self, Scenario};
use cosma::api::{AlgoId, RunSession};
use cosma::problem::{MmmProblem, Shape};
use mpsim::cost::CostModel;
use mpsim::exec::{ExecBackend, MAX_THREADED_RANKS};
use mpsim::machine::{Placement, Topology};

fn model() -> CostModel {
    CostModel::piz_daint_two_sided()
}

/// The `--backend <name>` flag: when set, experiments that would pick a
/// backend automatically run on this one instead (worlds the pinned backend
/// cannot hold are skipped with a note).
static BACKEND_OVERRIDE: std::sync::OnceLock<ExecBackend> = std::sync::OnceLock::new();

fn backend_override() -> Option<ExecBackend> {
    BACKEND_OVERRIDE.get().copied()
}

fn find(rows: &[AlgoRow], algo: AlgoId) -> Option<&AlgoRow> {
    rows.iter().find(|r| r.algo == algo)
}

/// Sweep one scenario over core counts, returning (p, rows) pairs.
fn sweep(sc: &Scenario, cores: &[usize]) -> Vec<(usize, Vec<AlgoRow>)> {
    let m = model();
    let min_p = scenarios::strong_scaling_min_cores(sc);
    cores
        .iter()
        .filter(|&&p| p >= min_p)
        .map(|&p| (p, run_all(&(sc.problem)(p), &m)))
        .collect()
}

// ---------------------------------------------------------------------------
// Figures 6/7 and their largeM/flat analogues: communication volume per core
// ---------------------------------------------------------------------------

fn comm_volume_figure(fig: &str, shape_prefix: &str) {
    println!("== {fig}: communication volume per core, {shape_prefix} scenarios ==");
    for regime in ["strong", "limited", "extra"] {
        let id = format!("{shape_prefix}-{regime}");
        let Some(sc) = scenarios::by_id(&id) else { continue };
        println!("\n-- {id} --");
        let mut t = Table::new(&[
            "cores",
            "cosma MB",
            "summa MB",
            "p25d MB",
            "carma MB",
            "best/cosma",
        ]);
        for (p, rows) in sweep(&sc, &scenarios::comm_core_counts()) {
            let get = |a: AlgoId| find(&rows, a).map(|r| r.mean_mb);
            let cosma = get(AlgoId::Cosma).unwrap_or(f64::NAN);
            let others_best = COMPARED[1..].iter().filter_map(|&a| get(a)).fold(f64::INFINITY, f64::min);
            t.row(vec![
                p.to_string(),
                fmt(cosma, 1),
                get(AlgoId::Summa).map_or("-".into(), |x| fmt(x, 1)),
                get(AlgoId::P25d).map_or("-".into(), |x| fmt(x, 1)),
                get(AlgoId::Carma).map_or("-".into(), |x| fmt(x, 1)),
                fmt(others_best / cosma, 2),
            ]);
        }
        t.print();
        t.write_csv(&format!("{fig}-{id}")).expect("write csv");
    }
    println!("\nexpectation (paper): COSMA has the lowest curve in every panel.\n");
}

// ---------------------------------------------------------------------------
// Figures 8-11: % of peak and runtime
// ---------------------------------------------------------------------------

fn perf_figure(fig: &str, shape_prefix: &str, metric: &str) {
    println!("== {fig}: {metric}, {shape_prefix} scenarios ==");
    for regime in ["strong", "limited", "extra"] {
        let id = format!("{shape_prefix}-{regime}");
        let Some(sc) = scenarios::by_id(&id) else { continue };
        println!("\n-- {id} --");
        let mut t = Table::new(&["cores", "cosma", "summa", "p25d", "carma"]);
        for (p, rows) in sweep(&sc, &scenarios::perf_core_counts()) {
            let get = |a: AlgoId| -> String {
                find(&rows, a).map_or("-".into(), |r| {
                    if metric == "percent-peak" {
                        fmt(r.percent_peak, 1)
                    } else {
                        fmt(r.time_s * 1e3, 1)
                    }
                })
            };
            t.row(vec![
                p.to_string(),
                get(AlgoId::Cosma),
                get(AlgoId::Summa),
                get(AlgoId::P25d),
                get(AlgoId::Carma),
            ]);
        }
        t.print();
        t.write_csv(&format!("{fig}-{id}")).expect("write csv");
    }
    println!();
}

// ---------------------------------------------------------------------------
// Figure 1: summary bars (max and geometric-mean % peak per algorithm)
// ---------------------------------------------------------------------------

fn fig1() {
    println!("== fig1: % of peak flop/s across all experiments (max / geomean) ==\n");
    let mut samples: std::collections::HashMap<AlgoId, Vec<f64>> = Default::default();
    for sc in scenarios::all() {
        for (_, rows) in sweep(&sc, &scenarios::perf_core_counts()) {
            for r in &rows {
                samples.entry(r.algo).or_default().push(r.percent_peak);
            }
        }
    }
    let mut t = Table::new(&["algorithm", "max %peak", "geomean %peak", "samples"]);
    for algo in COMPARED {
        let xs = samples.remove(&algo).unwrap_or_default();
        let max = xs.iter().copied().fold(0.0, f64::max);
        t.row(vec![
            algo.to_string(),
            fmt(max, 1),
            fmt(geomean(&xs), 1),
            xs.len().to_string(),
        ]);
    }
    t.print();
    t.write_csv("fig1").expect("write csv");
    println!("\nexpectation (paper): COSMA leads both columns.\n");
}

// ---------------------------------------------------------------------------
// Figure 3: bottom-up vs top-down decomposition at p = 8
// ---------------------------------------------------------------------------

fn fig3() {
    println!("== fig3: COSMA bottom-up vs naive 3D top-down at p = 8 ==\n");
    // Both decompositions are measured under identical accounting: the naive
    // top-down 3D split is the forced q = 2, c = 2 replicated geometry;
    // COSMA derives its grid from the sequential schedule. Memory sits
    // between the 2D and cubic regimes so the optimal domain is not cubic.
    let prob = MmmProblem::new(4096, 4096, 4096, 8, 3_000_000);
    let m = model();
    let cosma_plan = runner::plan_for(AlgoId::Cosma, &prob, &m).expect("cosma plan");
    // The naive top-down split is 2.5D with a *forced* c = q geometry: a
    // re-configured registry entry, measured through the same trait API.
    let mut forced = runner::registry();
    forced.register(P25dAlgorithm::with_geometry(Geometry25 { q: 2, c: 2 }));
    let naive = RunSession::new(prob)
        .machine(m)
        .registry(forced)
        .algorithm(AlgoId::P25d)
        .plan()
        .expect("3D plan");
    let mut t = Table::new(&["decomposition", "mean MB/rank", "grid"]);
    t.row(vec![
        "3D top-down".into(),
        fmt(naive.mean_comm_words() * 8.0 / 1e6, 1),
        "2x2x2".into(),
    ]);
    t.row(vec![
        "COSMA bottom-up".into(),
        fmt(cosma_plan.mean_comm_words() * 8.0 / 1e6, 1),
        format!("{}x{}x{}", cosma_plan.grid[0], cosma_plan.grid[1], cosma_plan.grid[2]),
    ]);
    t.print();
    let reduction = 1.0 - cosma_plan.mean_comm_words() / naive.mean_comm_words();
    println!("\nmeasured reduction: {:.0}% (paper's example: 17%)\n", reduction * 100.0);
    t.write_csv("fig3").expect("write csv");
}

// ---------------------------------------------------------------------------
// Figure 5: processor-grid optimization at p = 65
// ---------------------------------------------------------------------------

fn fig5() {
    println!("== fig5: grid fitting at p = 65 (square matrices) ==\n");
    let prob = MmmProblem::new(16_384, 16_384, 16_384, 65, scenarios::S_WORDS);
    let m = model();
    let strict = cosma::grid::fit_ranks(&prob, 0.0, &m).expect("strict fit");
    let relaxed = cosma::grid::fit_ranks(&prob, 0.03, &m).expect("relaxed fit");
    let mut t = Table::new(&["delta", "grid", "used", "comm words/rank", "compute/rank"]);
    for (name, fit) in [("0%", strict), ("3%", relaxed)] {
        t.row(vec![
            name.into(),
            format!("{}x{}x{}", fit.grid.gm, fit.grid.gn, fit.grid.gk),
            fit.used.to_string(),
            fit.comm_words.to_string(),
            (2 * fit.local[0] as u64 * fit.local[1] as u64 * fit.local[2] as u64).to_string(),
        ]);
    }
    t.print();
    let comm_saving = 1.0 - relaxed.comm_words as f64 / strict.comm_words as f64;
    let compute_penalty = (relaxed.local.iter().product::<usize>() as f64)
        / (strict.local.iter().product::<usize>() as f64)
        - 1.0;
    println!(
        "\ncomm saving {:.0}%, compute penalty {:.1}% (paper: 36% / 1.5%)\n",
        comm_saving * 100.0,
        compute_penalty * 100.0
    );
    t.write_csv("fig5").expect("write csv");
}

// ---------------------------------------------------------------------------
// Figure 12: communication/computation breakdown, overlap on/off
// ---------------------------------------------------------------------------

fn fig12() {
    println!("== fig12: COSMA time breakdown (A+B input, C output, compute) ==\n");
    let m = model();
    let mut t = Table::new(&[
        "scenario",
        "cores",
        "overlap",
        "input A+B %",
        "output C %",
        "compute %",
        "total ms",
    ]);
    for shape in ["square", "largek", "largem", "flat"] {
        let sc = scenarios::by_id(&format!("{shape}-strong")).expect("scenario");
        for p in [2048usize, 18432] {
            if p < scenarios::strong_scaling_min_cores(&sc) {
                continue;
            }
            let prob = (sc.problem)(p);
            let Some(plan) = runner::plan_for(AlgoId::Cosma, &prob, &m) else {
                continue;
            };
            // Word-level phase split of the busiest rank.
            let crit = plan.ranks.iter().max_by_key(|r| r.comm_words()).expect("non-empty plan");
            let ab: u64 = crit.rounds.iter().map(|r| r.a_words + r.b_words).sum();
            let c: u64 = crit.rounds.iter().map(|r| r.c_words).sum();
            for overlap in [false, true] {
                let rep = plan.simulate(&m, overlap);
                let comm_s = rep.critical.exposed_comm_s;
                let comp_s = rep.critical.compute_s;
                let total = comm_s + comp_s;
                let words = (ab + c).max(1) as f64;
                let input_share = comm_s * (ab as f64 / words) / total;
                let output_share = comm_s * (c as f64 / words) / total;
                t.row(vec![
                    format!("{shape}-strong"),
                    p.to_string(),
                    if overlap { "yes" } else { "no" }.into(),
                    fmt(input_share * 100.0, 1),
                    fmt(output_share * 100.0, 1),
                    fmt(comp_s / total * 100.0, 1),
                    fmt(rep.time_s * 1e3, 1),
                ]);
            }
        }
    }
    t.print();
    t.write_csv("fig12").expect("write csv");
    println!("\nexpectation (paper): comm share grows with p; overlap hides most of it.\n");
}

// ---------------------------------------------------------------------------
// Figures 13/14: % peak distributions
// ---------------------------------------------------------------------------

fn distribution_figure(fig: &str, shapes: [&str; 2]) {
    println!("== {fig}: distribution of % peak across core counts ==\n");
    let mut t = Table::new(&["scenario", "algorithm", "min", "q1", "median", "q3", "max"]);
    for shape in shapes {
        for regime in ["strong", "limited", "extra"] {
            let id = format!("{shape}-{regime}");
            let Some(sc) = scenarios::by_id(&id) else { continue };
            let swept = sweep(&sc, &scenarios::perf_core_counts());
            for algo in COMPARED {
                let xs: Vec<f64> = swept
                    .iter()
                    .filter_map(|(_, rows)| find(rows, algo).map(|r| r.percent_peak))
                    .collect();
                if xs.is_empty() {
                    continue;
                }
                let f = five_numbers(&xs);
                t.row(vec![
                    id.clone(),
                    algo.to_string(),
                    fmt(f[0], 1),
                    fmt(f[1], 1),
                    fmt(f[2], 1),
                    fmt(f[3], 1),
                    fmt(f[4], 1),
                ]);
            }
        }
    }
    t.print();
    t.write_csv(fig).expect("write csv");
    println!();
}

// ---------------------------------------------------------------------------
// Table 3: complexity comparison
// ---------------------------------------------------------------------------

fn table3() {
    println!("== table3: analytic communication costs vs measured plans ==\n");
    let m = model();

    println!("-- general case: square 8192^3, p = 512, S = 2^22 --");
    let prob = MmmProblem::new(8192, 8192, 8192, 512, 1 << 22);
    let mut t = Table::new(&[
        "algorithm",
        "analytic Q (words)",
        "measured mean (words)",
        "measured/analytic",
    ]);
    let measured = |id: AlgoId| runner::plan_for(id, &prob, &m).map(|p| p.mean_comm_words());
    let entries: [(&str, f64, Option<f64>); 4] = [
        ("2D (SUMMA)", baselines::analysis::summa_io(&prob), measured(AlgoId::Summa)),
        ("2.5D (CTF)", baselines::analysis::p25d_io(&prob), measured(AlgoId::P25d)),
        ("recursive (CARMA)", baselines::analysis::carma_io(&prob), measured(AlgoId::Carma)),
        ("COSMA", cosma::analysis::io_cost(&prob), measured(AlgoId::Cosma)),
    ];
    for (name, analytic, measured) in entries {
        let meas = measured.unwrap_or(f64::NAN);
        t.row(vec![
            name.into(),
            fmt(analytic, 0),
            fmt(meas, 0),
            fmt(meas / analytic, 2),
        ]);
    }
    t.print();
    t.write_csv("table3-general").expect("write csv");

    println!("\n-- special case: square, limited memory (S = 2n^2/p), p = 1024, n = 8192 --");
    let n = 8192usize;
    let p = 1024usize;
    let prob = MmmProblem::new(n, n, n, p, 2 * n * n / p);
    let mut t = Table::new(&["algorithm", "analytic Q", "x (2n^2/sqrt(p))"]);
    let base = 2.0 * (n * n) as f64 / (p as f64).sqrt();
    for (name, q) in [
        ("2D", baselines::analysis::summa_io(&prob)),
        ("2.5D", baselines::analysis::p25d_io(&prob)),
        ("recursive", baselines::analysis::carma_io(&prob)),
        ("COSMA", cosma::analysis::io_cost(&prob)),
    ] {
        t.row(vec![name.into(), fmt(q, 0), fmt(q / base, 3)]);
    }
    t.print();
    println!(
        "expectation: 2D/2.5D near 1x of 2n^2/sqrt(p); recursive ~sqrt(3)/sqrt(2) = 1.22x higher \
         than COSMA, which sits at sqrt(2)/2 = 0.71x by Eq. 33's accounting."
    );
    t.write_csv("table3-square-limited").expect("write csv");

    println!(
        "\n-- special case: tall matrices, extra memory (m=n=sqrt(p), k=p^1.5/4, S=2nk/p^(2/3)), p = 4096 --"
    );
    let p = 4096usize;
    let sq = 64usize;
    let k = (p as f64).powf(1.5) as usize / 4;
    let s = (2.0 * sq as f64 * k as f64 / (p as f64).powf(2.0 / 3.0)) as usize;
    let prob = MmmProblem::new(sq, sq, k, p, s);
    let mut t = Table::new(&["algorithm", "analytic Q", "x p"]);
    for (name, q) in [
        ("2D", baselines::analysis::summa_io(&prob)),
        ("2.5D", baselines::analysis::p25d_io(&prob)),
        ("recursive", baselines::analysis::carma_io(&prob)),
        ("COSMA", cosma::analysis::io_cost(&prob)),
    ] {
        t.row(vec![name.into(), fmt(q, 0), fmt(q / p as f64, 3)]);
    }
    t.print();
    println!("expectation (paper): 2D ~ p^1.5/2, 2.5D ~ p^4/3/2, CARMA ~ 0.75p, COSMA ~ O(p).\n");
    t.write_csv("table3-tall-extra").expect("write csv");
}

// ---------------------------------------------------------------------------
// Table 4: volume summary and speedups over all twelve scenarios
// ---------------------------------------------------------------------------

fn table4() {
    println!("== table4: mean comm volume per rank (MB) and COSMA speedup ==\n");
    let mut t = Table::new(&[
        "scenario",
        "summa MB",
        "p25d MB",
        "carma MB",
        "cosma MB",
        "speedup min",
        "speedup geomean",
        "speedup max",
    ]);
    let mut all_speedups: Vec<f64> = Vec::new();
    for sc in scenarios::all() {
        let swept = sweep(&sc, &scenarios::comm_core_counts());
        if swept.is_empty() {
            continue;
        }
        let avg = |algo: AlgoId| -> f64 {
            let xs: Vec<f64> = swept
                .iter()
                .filter_map(|(_, rows)| find(rows, algo).map(|r| r.mean_mb))
                .collect();
            if xs.is_empty() {
                f64::NAN
            } else {
                xs.iter().sum::<f64>() / xs.len() as f64
            }
        };
        let speedups: Vec<f64> = swept.iter().filter_map(|(_, rows)| cosma_speedup(rows)).collect();
        all_speedups.extend(&speedups);
        let (mn, gm, mx) = if speedups.is_empty() {
            (f64::NAN, f64::NAN, f64::NAN)
        } else {
            (
                speedups.iter().copied().fold(f64::INFINITY, f64::min),
                geomean(&speedups),
                speedups.iter().copied().fold(0.0, f64::max),
            )
        };
        t.row(vec![
            sc.id.into(),
            fmt(avg(AlgoId::Summa), 0),
            fmt(avg(AlgoId::P25d), 0),
            fmt(avg(AlgoId::Carma), 0),
            fmt(avg(AlgoId::Cosma), 0),
            fmt(mn, 2),
            fmt(gm, 2),
            fmt(mx, 2),
        ]);
    }
    t.print();
    println!(
        "\noverall speedup: min {:.2} geomean {:.2} max {:.2} (paper: 1.07 / 2.17 / 12.81)\n",
        all_speedups.iter().copied().fold(f64::INFINITY, f64::min),
        geomean(&all_speedups),
        all_speedups.iter().copied().fold(0.0, f64::max)
    );
    t.write_csv("table4").expect("write csv");
}

// ---------------------------------------------------------------------------
// exec: end-to-end executed runs (real messages) certifying the plans
// ---------------------------------------------------------------------------

fn executed_table() -> Table {
    // New columns only ever append so the bench-smoke baseline parser's
    // fixed column indices (scenario..measured MB at 0..5, measured ms at
    // 11) stay stable.
    Table::new(&[
        "shape",
        "cores",
        "backend",
        "algorithm",
        "planned MB",
        "measured MB",
        "exact",
        "wall s",
        "peak words",
        "within S",
        "planned ms",
        "meas ms",
        "meas %peak",
        "allocs",
        "pool hit %",
    ])
}

fn push_executed_rows(t: &mut Table, name: &str, p: usize, rows: &[runner::ExecutedRow]) {
    for row in rows {
        t.row(vec![
            name.into(),
            p.to_string(),
            row.backend.to_string(),
            row.algo.to_string(),
            fmt(row.planned_mb, 2),
            fmt(row.measured_mb, 2),
            if row.exact { "yes" } else { "NO" }.into(),
            fmt(row.wall_s, 2),
            row.peak_mem_words.to_string(),
            if row.within_mem { "yes" } else { "NO" }.into(),
            fmt(row.planned_time_s * 1e3, 4),
            // Blocking backends keep no virtual clock: measured ms is 0.
            fmt(row.measured_time_s * 1e3, 4),
            fmt(row.measured_percent_peak, 2),
            // Arena counters: observability only (the hit/miss split depends
            // on scheduling order), so they never enter a bitwise gate.
            row.allocs.to_string(),
            fmt(row.pool_hit_rate * 100.0, 1),
        ]);
    }
}

fn exec_experiment() {
    println!("== exec: end-to-end execution, plan vs measured traffic ==\n");
    println!(
        "(auto backend escalates threaded -> sharded -> event by world size; \
         every world additionally runs on the event-driven stackless executor, \
         which must measure identically)\n"
    );
    let m = model();
    let mut t = executed_table();
    for (shape, name) in [(Shape::Square, "square"), (Shape::LargeK, "largek")] {
        for &p in &scenarios::exec_core_counts() {
            // Keep the sweep bounded: the largeK shape only at the largest
            // sharded world, the square shape across all regimes.
            if shape == Shape::LargeK && p != 4096 {
                continue;
            }
            let prob = scenarios::exec_problem(shape, p);
            let auto = backend_override().unwrap_or_else(|| ExecBackend::auto(p));
            if auto == ExecBackend::Threaded && p > MAX_THREADED_RANKS {
                println!("(skipping {name} p={p}: threaded caps at {MAX_THREADED_RANKS} ranks)");
                continue;
            }
            push_executed_rows(&mut t, name, p, &runner::execute_all(&prob, &m, auto));
            if !matches!(auto, ExecBackend::Event { .. }) && backend_override().is_none() {
                push_executed_rows(&mut t, name, p, &runner::execute_all(&prob, &m, ExecBackend::event()));
            }
        }
    }
    t.print();
    t.write_csv("exec").expect("write csv");
    println!("\nexpectation: every row exact — executed traffic equals the plan word for word.\n");
}

// ---------------------------------------------------------------------------
// exec-xl: 100k-rank worlds on the event-driven stackless executor
// ---------------------------------------------------------------------------

fn exec_xl() {
    println!("== exec-xl: event-driven execution at 16384-131072 ranks ==\n");
    println!(
        "(COSMA only: every rank is a stackless resumable state machine on one \
         scheduler thread — no carrier-thread backend can hold these worlds)\n"
    );
    let m = model();
    let cosma = runner::registry().by_id(AlgoId::Cosma).expect("registry has COSMA");
    let mut t = executed_table();
    for &p in &scenarios::exec_xl_core_counts() {
        let prob = scenarios::exec_xl_problem(p);
        let rows = runner::execute_with(std::slice::from_ref(&cosma), &prob, &m, ExecBackend::event());
        push_executed_rows(&mut t, "square", p, &rows);
    }
    t.print();
    t.write_csv("exec-xl").expect("write csv");
    println!("\nexpectation: every row exact, wall-time bounded — the stackless executor scales.\n");
}

// ---------------------------------------------------------------------------
// exec-xxl: million-rank worlds on the parallel event scheduler
// ---------------------------------------------------------------------------

fn exec_xxl() {
    println!("== exec-xxl: parallel event scheduler at 262144-1048576 ranks ==\n");
    println!(
        "(COSMA only: the event scheduler sharded across 1/2/4/8 OS threads — \
         rank regions advance conservative virtual-time windows bounded by the \
         link latency alpha, exchanging cross-region messages at window \
         boundaries; every thread count must measure bitwise-identically, so \
         the interesting column is wall s)\n"
    );
    let m = model();
    let cosma = runner::registry().by_id(AlgoId::Cosma).expect("registry has COSMA");
    let mut t = executed_table();
    for &p in &scenarios::exec_xxl_core_counts() {
        let prob = scenarios::exec_xl_problem(p);
        let mut reference: Option<(f64, f64)> = None;
        for &threads in &scenarios::exec_xxl_thread_counts() {
            let rows =
                runner::execute_with(std::slice::from_ref(&cosma), &prob, &m, ExecBackend::Event { threads });
            for row in &rows {
                // The determinism contract, asserted on the spot: whatever
                // the thread count, measured traffic and the virtual clock
                // must equal the single-threaded run bit for bit.
                let (ref_mb, ref_time) = *reference.get_or_insert((row.measured_mb, row.measured_time_s));
                assert!(
                    row.measured_mb == ref_mb && row.measured_time_s == ref_time,
                    "p={p} threads={threads}: parallel run diverged from the single-threaded scheduler"
                );
            }
            push_executed_rows(&mut t, "square", p, &rows);
        }
    }
    t.print();
    t.write_csv("exec-xxl").expect("write csv");
    println!(
        "\nexpectation: every row exact and bitwise-stable across thread counts — \
         only wall s may vary.\n"
    );
}

// ---------------------------------------------------------------------------
// timed: planned vs measured virtual time (the paper's time axis, closed)
// ---------------------------------------------------------------------------

fn timed() {
    println!("== timed: planned vs measured alpha-beta-gamma time, event backend ==\n");
    println!(
        "(every algorithm executes twice on the discrete-event executor — overlap \
         on and off — and the virtual clock is held against DistPlan::simulate; \
         the gate band is x{:.1} either way, overlap-on <= overlap-off on every row)\n",
        runner::TIME_AGREEMENT_FACTOR
    );
    let m = model();
    let mut t = Table::new(&[
        "cores",
        "algorithm",
        "planned ms",
        "meas ms",
        "meas/plan",
        "planned ms (no ovl)",
        "meas ms (no ovl)",
        "overlap gap %",
        "meas %peak",
        "agrees",
    ]);
    for &p in &scenarios::timed_core_counts() {
        let prob = scenarios::exec_problem(Shape::Square, p);
        for row in runner::time_all(&prob, &m) {
            let gap = 100.0 * (1.0 - row.measured_s / row.measured_no_overlap_s);
            t.row(vec![
                p.to_string(),
                row.algo.to_string(),
                fmt(row.planned_s * 1e3, 4),
                fmt(row.measured_s * 1e3, 4),
                fmt(row.ratio(), 2),
                fmt(row.planned_no_overlap_s * 1e3, 4),
                fmt(row.measured_no_overlap_s * 1e3, 4),
                fmt(gap, 1),
                fmt(row.measured_percent_peak, 2),
                if row.agrees() { "yes" } else { "NO" }.into(),
            ]);
        }
    }
    t.print();
    t.write_csv("timed").expect("write csv");
    println!(
        "\nexpectation: every row agrees — the measured time axis matches the \
         planned one the way measured MB matches planned MB.\n"
    );
}

// ---------------------------------------------------------------------------
// topo: the timed comparison under a congested fat-tree (network contention)
// ---------------------------------------------------------------------------

/// The topology experiment's scenario matrix: every executed shape at two
/// event-backend world sizes — wide enough to span the paper's shape
/// spectrum, bounded enough that flat + fat-tree + the placement sweep stay
/// in CI-scale wall time.
fn topo_matrix() -> Vec<(&'static str, Shape, usize)> {
    let shapes = [
        ("square", Shape::Square),
        ("largek", Shape::LargeK),
        ("largem", Shape::LargeM),
        ("flat", Shape::Flat),
        ("irregular", Shape::Irregular),
    ];
    let mut out = Vec::new();
    for (name, shape) in shapes {
        for p in [256usize, 1024] {
            out.push((name, shape, p));
        }
    }
    out
}

fn speedup_summary(xs: &[f64]) -> (f64, f64, f64) {
    (
        xs.iter().copied().fold(f64::INFINITY, f64::min),
        geomean(xs),
        xs.iter().copied().fold(0.0, f64::max),
    )
}

fn topo() {
    // Part 1: table4's time axis, re-simulated under the congested fat-tree.
    // Plans (and so the MB columns) are topology-blind and reproduce table4;
    // only β is scaled by the fat-tree's uniform-traffic contention
    // multiplier (`Network::mean_contention` — the plan-level mean-field
    // view of the event backend's shared-link serialization). COSMA moves
    // the fewest words, so congestion charges it the least.
    println!("== topo: table4 rerun under a congested fat-tree ==\n");
    println!(
        "(Topology::congested_fat_tree(): 4 ranks/node, 4 nodes/switch, NICs \
         provisioned for full node injection, spine 4x oversubscribed; plans stay \
         topology-blind — the time axis is re-simulated with beta scaled by the \
         fat-tree's mean-field contention multiplier, so every algorithm pays per \
         word moved and the speedup tail reopens)\n"
    );
    let m = model();
    let fat = Topology::congested_fat_tree();
    for p in [256usize, 1024, 3456] {
        let mult = mpsim::Network::compile(p, &fat, Placement::Block).mean_contention();
        println!("  contention multiplier at p = {p}: {mult:.2}x beta");
    }
    println!();
    let mut t = Table::new(&[
        "scenario",
        "summa MB",
        "p25d MB",
        "carma MB",
        "cosma MB",
        "cosma s (fat)",
        "speedup min",
        "speedup geomean",
        "speedup max",
    ]);
    // The sweep doubles table4's: its power-of-two core counts (the
    // baselines' best case — CARMA and 2.5D never pad) plus realistic whole-
    // node allocations (multiples of 36 cores, none a power of two or a
    // perfect g²·c), where the paper's §1 point bites: padded baselines idle
    // ranks and contention charges the survivors' higher per-rank volume.
    let sweeps: [(&str, Vec<usize>); 2] = [
        ("power-of-two", scenarios::comm_core_counts()),
        ("whole-node allocations", scenarios::allocation_core_counts()),
    ];
    let mut flat_by_sweep: Vec<Vec<f64>> = vec![Vec::new(); sweeps.len()];
    let mut fat_by_sweep: Vec<Vec<f64>> = vec![Vec::new(); sweeps.len()];
    for sc in scenarios::all() {
        let min_p = scenarios::strong_scaling_min_cores(&sc);
        let mut vols: Vec<Vec<f64>> = vec![Vec::new(); COMPARED.len()];
        let mut cosma_times: Vec<f64> = Vec::new();
        let mut fat_sp: Vec<f64> = Vec::new();
        for (s, (_, counts)) in sweeps.iter().enumerate() {
            for &p in counts.iter().filter(|&&p| p >= min_p) {
                let prob = (sc.problem)(p);
                let flat_rows = run_all(&prob, &m);
                let fat_rows = runner::run_all_contended(&prob, &m, &fat, Placement::Block);
                if let (Some(fs), Some(cs)) = (cosma_speedup(&flat_rows), cosma_speedup(&fat_rows)) {
                    flat_by_sweep[s].push(fs);
                    fat_by_sweep[s].push(cs);
                    fat_sp.push(cs);
                }
                for (i, &algo) in COMPARED.iter().enumerate() {
                    if let Some(r) = find(&fat_rows, algo) {
                        vols[i].push(r.mean_mb);
                    }
                }
                if let Some(r) = find(&fat_rows, AlgoId::Cosma) {
                    cosma_times.push(r.time_s);
                }
            }
        }
        if fat_sp.is_empty() {
            continue;
        }
        let avg = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
        let col = |algo: AlgoId| avg(&vols[COMPARED.iter().position(|&a| a == algo).unwrap()]);
        let (mn, gm, mx) = speedup_summary(&fat_sp);
        t.row(vec![
            sc.id.into(),
            fmt(col(AlgoId::Summa), 0),
            fmt(col(AlgoId::P25d), 0),
            fmt(col(AlgoId::Carma), 0),
            fmt(col(AlgoId::Cosma), 0),
            fmt(avg(&cosma_times), 2),
            fmt(mn, 2),
            fmt(gm, 2),
            fmt(mx, 2),
        ]);
    }
    t.print();
    t.write_csv("topo").expect("write csv");
    println!("\noverall cosma speedup (simulated time over best other):");
    for (s, (name, _)) in sweeps.iter().enumerate() {
        let (fmn, fgm, fmx) = speedup_summary(&flat_by_sweep[s]);
        let (cmn, cgm, cmx) = speedup_summary(&fat_by_sweep[s]);
        println!("  {name}:");
        println!("    flat:     min {fmn:.2} geomean {fgm:.2} max {fmx:.2}");
        println!("    fat-tree: min {cmn:.2} geomean {cgm:.2} max {cmx:.2}");
    }
    let all_flat: Vec<f64> = flat_by_sweep.concat();
    let all_fat: Vec<f64> = fat_by_sweep.concat();
    let (fmn, fgm, fmx) = speedup_summary(&all_flat);
    let (cmn, cgm, cmx) = speedup_summary(&all_fat);
    println!("  all points:");
    println!("    flat:     min {fmn:.2} geomean {fgm:.2} max {fmx:.2}");
    println!("    fat-tree: min {cmn:.2} geomean {cgm:.2} max {cmx:.2} (paper: 1.07 / 2.17 / 12.81)");
    println!(
        "\nexpectation: the fat-tree geomean clears 1.3 over all points and sits \
         above the flat geomean on every sweep — contention amplifies COSMA's \
         volume advantage instead of compressing it.\n"
    );

    // Part 2: the executed cross-check — the same contention charged for
    // real by the event backend's per-link virtual clocks, on the bounded
    // executable matrix. These worlds are latency-dominated (tiny per-rank
    // blocks), so the columns validate the machinery — flat reproduced
    // bitwise elsewhere, fat-tree strictly slower — rather than the paper's
    // bandwidth-regime speedups.
    println!("-- executed: event backend, flat vs congested fat-tree --\n");
    let mut et = Table::new(&["scenario", "cores", "algorithm", "flat ms", "fat ms", "fat/flat"]);
    for (name, shape, p) in topo_matrix() {
        let prob = scenarios::exec_problem(shape, p);
        let flat_rows = runner::time_all(&prob, &m);
        let fat_rows = runner::time_all_topo(&prob, &m, &fat, Placement::Block);
        for (f, c) in flat_rows.iter().zip(&fat_rows) {
            assert_eq!(f.algo, c.algo, "row sets must align");
            et.row(vec![
                name.into(),
                p.to_string(),
                f.algo.to_string(),
                fmt(f.measured_s * 1e3, 4),
                fmt(c.measured_s * 1e3, 4),
                fmt(c.measured_s / f.measured_s, 2),
            ]);
        }
    }
    et.print();
    et.write_csv("topo-executed").expect("write csv");
    println!("\nexpectation: fat/flat > 1 on every row — contention only ever costs time.\n");

    // The placement sweep: the same fat-tree, Block vs RoundRobin. Block
    // packs consecutive ranks onto a node (grid neighbours share injection
    // links but most row/column traffic stays intra-node); RoundRobin
    // spreads consecutive ranks across nodes (neighbour traffic all crosses
    // the NICs). The gap between the two columns is the placement signal.
    println!("-- placement sweep: square p = 1024, congested fat-tree --\n");
    let prob = scenarios::exec_problem(Shape::Square, 1024);
    let mut pt = Table::new(&["algorithm", "block ms", "round-robin ms", "rr/block"]);
    let block = runner::time_all_topo(&prob, &m, &fat, Placement::Block);
    let rr = runner::time_all_topo(&prob, &m, &fat, Placement::RoundRobin);
    for (b, r) in block.iter().zip(&rr) {
        assert_eq!(b.algo, r.algo, "row sets must align");
        pt.row(vec![
            b.algo.to_string(),
            fmt(b.measured_s * 1e3, 4),
            fmt(r.measured_s * 1e3, 4),
            fmt(r.measured_s / b.measured_s, 2),
        ]);
    }
    pt.print();
    pt.write_csv("topo-placement").expect("write csv");
    println!(
        "\nexpectation: placement moves every algorithm's measured time — rank \
         layout is a first-class knob once links are shared.\n"
    );
}

// ---------------------------------------------------------------------------
// mem-sweep: CARMA traffic vs per-rank memory S (the limited-memory regime)
// ---------------------------------------------------------------------------

fn mem_sweep() {
    println!("== mem-sweep: executed CARMA under a shrinking memory budget S ==\n");
    println!(
        "(fixed 128^3 problem at p = 64; every run enforces S as a hard per-rank \
         budget — the DFS prefix re-fetches inputs per sequential leaf, so \
         traffic rises as S falls while the measured peak stays within S)\n"
    );
    let m = model();
    let p = 64;
    let carma = runner::registry().by_id(AlgoId::Carma).expect("registry has CARMA");
    let mut t = Table::new(&[
        "S words",
        "dfs leaves",
        "planned MB",
        "measured MB",
        "exact",
        "peak words",
        "within S",
    ]);
    for &s in &scenarios::mem_sweep_budgets() {
        let prob = scenarios::mem_starved_problem(p, s);
        let leaves = baselines::carma::dfs_leaf_count(&prob);
        let rows =
            runner::execute_budgeted_with(std::slice::from_ref(&carma), &prob, &m, ExecBackend::Threaded);
        let row = rows
            .iter()
            .find(|r| r.algo == AlgoId::Carma)
            .unwrap_or_else(|| panic!("CARMA must execute budgeted at S = {s}"));
        t.row(vec![
            s.to_string(),
            leaves.to_string(),
            fmt(row.planned_mb, 2),
            fmt(row.measured_mb, 2),
            if row.exact { "yes" } else { "NO" }.into(),
            row.peak_mem_words.to_string(),
            if row.within_mem { "yes" } else { "NO" }.into(),
        ]);
    }
    t.print();
    t.write_csv("mem-sweep").expect("write csv");
    println!(
        "\nexpectation (paper §6.2): halving S past the pure-BFS leaf footprint \
         doubles the DFS leaf count and raises traffic toward the sqrt(3) \
         re-fetching factor, with peak <= S on every row.\n"
    );
}

// ---------------------------------------------------------------------------
// serve: the planning-as-a-service benchmark
// ---------------------------------------------------------------------------

fn serve_metrics_table(metrics: &bench::serve_bench::ServeMetrics) -> Table {
    let algos = metrics.algos_selected.iter().map(|a| a.as_str()).collect::<Vec<_>>().join("+");
    let mut t = Table::new(&["metric", "value"]);
    t.row(vec!["jobs".into(), metrics.jobs.to_string()]);
    t.row(vec!["unique plan keys".into(), metrics.unique_keys.to_string()]);
    t.row(vec!["cold plans/s".into(), fmt(metrics.cold_plans_per_s, 0)]);
    t.row(vec!["cached plans/s".into(), fmt(metrics.cached_plans_per_s, 0)]);
    t.row(vec![
        "plan speedup (cached/cold)".into(),
        fmt(metrics.plan_speedup(), 1),
    ]);
    t.row(vec!["jobs/s (concurrent)".into(), fmt(metrics.jobs_per_s, 1)]);
    t.row(vec!["jobs/s (serial)".into(), fmt(metrics.serial_jobs_per_s, 1)]);
    t.row(vec![
        "concurrency speedup".into(),
        fmt(metrics.jobs_per_s / metrics.serial_jobs_per_s, 2),
    ]);
    t.row(vec!["cache hits".into(), metrics.hits.to_string()]);
    t.row(vec!["cache misses".into(), metrics.misses.to_string()]);
    t.row(vec!["hit rate".into(), fmt(metrics.hit_rate, 3)]);
    t.row(vec!["algorithms selected".into(), algos]);
    t.row(vec!["all match serial".into(), metrics.all_match_serial.to_string()]);
    t
}

fn serve_experiment() {
    println!("== serve: planning-as-a-service — cold vs cached plans/s, concurrent jobs/s ==\n");
    println!(
        "(mixed stream over {} unique (problem, choice) keys: auto selection over \
         the full registry plus tenant-restricted subsets; every concurrent result \
         compared bitwise against a serial run)\n",
        bench::serve_bench::unique_combos().len()
    );
    let metrics = bench::serve_bench::measure(96, backend_override());
    let t = serve_metrics_table(&metrics);
    t.print();
    t.write_csv("serve").expect("write csv");
    println!(
        "\nexpectation: cached planning orders of magnitude above cold, hit rate > 0, \
         >= 3 algorithms selected, every result bitwise-identical to serial.\n"
    );
}

// ---------------------------------------------------------------------------
// faults: completion rate and recovery overhead under injected rank death
// ---------------------------------------------------------------------------

/// The `faults` experiment: a fixed 64-rank COSMA world served under seeded
/// [`serve::FaultPlan`]s of increasing severity. Every severity level runs
/// a batch of seeds twice — once without a retry policy (completion means
/// the run happened to survive its faults) and once under
/// `RetryPolicy::attempts(3)`, where the driver catches the typed
/// `RankFailed`, re-fits the problem to the surviving p′ and re-runs clean.
/// Reported per level: both completion rates, mean attempts, the degraded
/// fraction, and the recovered run's virtual-clock overhead over the clean
/// 64-rank world (fewer ranks doing the same work).
fn faults_experiment() {
    use densemat::matrix::Matrix;
    use serve::{FaultPlan, JobRequest, RetryPolicy, Server, ServerConfig};

    println!("== faults: injected rank death, recovery by replanning the survivors ==\n");
    let p = 64;
    let prob = MmmProblem::new(96, 96, 96, p, 1 << 14);
    let a = Matrix::deterministic(prob.m, prob.k, 21);
    let b = Matrix::deterministic(prob.k, prob.n, 22);
    let server = Server::new(baselines::registry(), ServerConfig::default()).unwrap();

    // The zero-fault reference clock. Fault horizons derive from it (half
    // the clean makespan, deaths landing in its middle 80%), so the
    // scheduled deaths fall squarely mid-run whatever the cost model says.
    let clean = server
        .run_sync(JobRequest::new(0, prob, a.clone(), b.clone()).backend(ExecBackend::event()))
        .outcome
        .expect("the clean reference run is feasible");
    let t_clean = clean.report.measured_time_s();
    assert!(t_clean > 0.0, "the event backend measures a virtual clock");
    let horizon = t_clean / 2.0;
    println!(
        "(square {}^3, p = {p}, event backend; clean virtual makespan {} ms, fault \
         horizon {} ms; 8 seeds per level, each served without and with retry)\n",
        prob.m,
        fmt(t_clean * 1e3, 4),
        fmt(horizon * 1e3, 4)
    );

    let seeds_per_level: u64 = 8;
    let mut t = Table::new(&[
        "kills",
        "survivors",
        "ok no-retry",
        "ok retry",
        "mean attempts",
        "degraded",
        "time overhead",
    ]);
    let mut next_id = 1u64;
    for kills in [0usize, 1, 2, 4, 8, 16] {
        let mut ok_plain = 0usize;
        let mut ok_retry = 0usize;
        let mut attempts_sum = 0usize;
        let mut degraded = 0usize;
        let mut overhead_sum = 0.0;
        let mut overhead_n = 0usize;
        for s in 0..seeds_per_level {
            let plan = FaultPlan::new(0xFA57 + 101 * s).kill_exactly(kills, horizon);
            let plain = server.run_sync(JobRequest::new(next_id, prob, a.clone(), b.clone()).faults(plan));
            next_id += 1;
            if plain.outcome.is_ok() {
                ok_plain += 1;
            }
            let retried = server.run_sync(
                JobRequest::new(next_id, prob, a.clone(), b.clone())
                    .faults(plan)
                    .retry(RetryPolicy::attempts(3)),
            );
            next_id += 1;
            attempts_sum += retried.attempts;
            if retried.degraded {
                degraded += 1;
            }
            if let Ok(out) = &retried.outcome {
                ok_retry += 1;
                overhead_sum += out.report.measured_time_s() / t_clean;
                overhead_n += 1;
            }
        }
        let n = seeds_per_level as usize;
        t.row(vec![
            kills.to_string(),
            (p - kills).to_string(),
            format!("{ok_plain}/{n}"),
            format!("{ok_retry}/{n}"),
            fmt(attempts_sum as f64 / n as f64, 2),
            format!("{degraded}/{n}"),
            fmt(overhead_sum / overhead_n.max(1) as f64, 3),
        ]);
    }
    t.print();
    t.write_csv("faults").expect("write csv");
    println!(
        "\nexpectation: without a retry policy completion collapses the moment any rank \
         dies; with recovery every job completes on the surviving world, one extra \
         attempt, at a modest virtual-time overhead.\n"
    );
    let _ = server.shutdown();
}

// ---------------------------------------------------------------------------
// bench-smoke: the CI perf-regression gate
// ---------------------------------------------------------------------------

/// The gate's scenario subset: small enough for every CI run, wide enough to
/// cover all three executors, both a threaded and a large world, and one
/// memory-starved world run under an enforced budget.
fn smoke_rows() -> Vec<(String, usize, runner::ExecutedRow)> {
    let m = model();
    let mut out = Vec::new();
    // A fixed sharded pool size keeps the row keys (and so the committed
    // baseline) stable across machines with different core counts.
    for (name, p, backend) in [
        ("square", 64, ExecBackend::Threaded),
        ("square", 512, ExecBackend::Threaded),
        ("square", 1024, ExecBackend::Sharded { workers: 2 }),
        ("square", 1024, ExecBackend::event()),
    ] {
        let prob = scenarios::exec_problem(Shape::Square, p);
        for row in runner::execute_all(&prob, &m, backend) {
            out.push((name.to_string(), p, row));
        }
    }
    // The memory-starved conformance case: S enforced as a hard budget, so
    // only memory-honest plans run (DFS-streaming CARMA) and a budget
    // regression fails the gate before it ever reaches the baseline diff.
    let tight = scenarios::mem_starved_problem(64, 1 << 10);
    for row in runner::execute_budgeted(&tight, &m, ExecBackend::Threaded) {
        out.push(("square-tight".to_string(), 64, row));
    }
    // The exec-xxl proxy rows: COSMA on the exec-xl shape at a CI-sized
    // world, once on the single-threaded event scheduler and once sharded
    // across 4 regions. bench_smoke holds the pair bitwise-identical on
    // measured MB *and* the virtual clock — the parallel scheduler's
    // determinism contract, gated on every CI run.
    let cosma = runner::registry().by_id(AlgoId::Cosma).expect("registry has COSMA");
    let xxl = scenarios::exec_xl_problem(4096);
    for backend in [ExecBackend::event(), ExecBackend::Event { threads: 4 }] {
        for row in runner::execute_with(std::slice::from_ref(&cosma), &xxl, &m, backend) {
            out.push(("square-xxl".to_string(), 4096, row));
        }
    }
    out
}

fn smoke_key(name: &str, p: usize, row: &runner::ExecutedRow) -> String {
    format!("{name}/{p}/{}/{}", row.backend, row.algo)
}

fn smoke_table(rows: &[(String, usize, runner::ExecutedRow)]) -> Table {
    let mut t = executed_table();
    for (name, p, row) in rows {
        push_executed_rows(&mut t, name, *p, std::slice::from_ref(row));
    }
    t
}

/// Write the smoke rows as a JSON array (the CI artifact). No external JSON
/// dependency in the container, so the writer is hand-rolled; keys and the
/// flat shape are stable for downstream tooling.
fn write_smoke_json(rows: &[(String, usize, runner::ExecutedRow)]) -> std::path::PathBuf {
    use std::io::Write as _;
    let dir = bench::output::results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("bench-smoke.json");
    let mut f = std::fs::File::create(&path).expect("create bench-smoke.json");
    writeln!(f, "[").unwrap();
    for (i, (name, p, row)) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        writeln!(
            f,
            "  {{\"scenario\": \"{name}\", \"cores\": {p}, \"backend\": \"{}\", \
             \"algorithm\": \"{}\", \"planned_mb\": {:.6}, \"measured_mb\": {:.6}, \
             \"exact\": {}, \"wall_s\": {:.3}, \"peak_mem_words\": {}, \
             \"within_mem\": {}, \"planned_time_s\": {:.9}, \"measured_time_s\": {:.9}, \
             \"measured_percent_peak\": {:.4}, \"allocs\": {}, \"pool_hit_rate\": {:.4}}}{comma}",
            row.backend,
            row.algo,
            row.planned_mb,
            row.measured_mb,
            row.exact,
            row.wall_s,
            row.peak_mem_words,
            row.within_mem,
            row.planned_time_s,
            row.measured_time_s,
            row.measured_percent_peak,
            row.allocs,
            row.pool_hit_rate
        )
        .unwrap();
    }
    writeln!(f, "]").unwrap();
    path
}

/// A committed baseline row: measured MB and measured virtual ms (0 for
/// blocking-backend rows, which keep no virtual clock).
struct BaselineRow {
    measured_mb: f64,
    measured_ms: f64,
}

/// Parse the committed baseline CSV (`scenario,cores,backend,algorithm,...`
/// with `measured MB` in column 5 and `meas ms` in column 11) into
/// key -> baseline row.
fn read_smoke_baseline() -> Option<std::collections::HashMap<String, BaselineRow>> {
    let path = bench::output::results_dir().join("bench-smoke-baseline.csv");
    let content = std::fs::read_to_string(&path).ok()?;
    let mut map = std::collections::HashMap::new();
    for line in content.lines().skip(1) {
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() < 6 {
            continue;
        }
        let key = format!("{}/{}/{}/{}", cells[0], cells[1], cells[2], cells[3]);
        if let Ok(measured_mb) = cells[5].parse::<f64>() {
            let measured_ms = cells.get(11).and_then(|c| c.parse::<f64>().ok()).unwrap_or(0.0);
            map.insert(
                key,
                BaselineRow {
                    measured_mb,
                    measured_ms,
                },
            );
        }
    }
    Some(map)
}

/// The topo-smoke scenario: the gate's timed event world (square p = 1024)
/// re-executed under the congested fat-tree preset with Block placement.
fn topo_smoke_fat_rows(m: &CostModel) -> Vec<runner::TimedRow> {
    let prob = scenarios::exec_problem(Shape::Square, 1024);
    runner::time_all_topo(&prob, m, &Topology::congested_fat_tree(), Placement::Block)
}

fn topo_smoke_table(flat: &[runner::TimedRow], fat: &[runner::TimedRow]) -> Table {
    let mut t = Table::new(&["algorithm", "flat ms", "fat ms", "fat/flat"]);
    for (f, c) in flat.iter().zip(fat) {
        t.row(vec![
            f.algo.to_string(),
            fmt(f.measured_s * 1e3, 4),
            fmt(c.measured_s * 1e3, 4),
            fmt(c.measured_s / f.measured_s, 2),
        ]);
    }
    t
}

/// Write the committed topo-smoke baseline. The flat column is printed with
/// 17 significant digits so parsing it back recovers the exact f64 — the
/// flat gate is *bitwise*, not a tolerance band.
fn write_topo_baseline(flat: &[runner::TimedRow], fat: &[runner::TimedRow]) {
    let mut t = Table::new(&["algorithm", "flat ms", "fat ms"]);
    for (f, c) in flat.iter().zip(fat) {
        t.row(vec![
            f.algo.to_string(),
            format!("{:.17e}", f.measured_s * 1e3),
            format!("{:.17e}", c.measured_s * 1e3),
        ]);
    }
    t.write_csv("topo-smoke-baseline").expect("write topo baseline csv");
}

/// Parse the committed topo-smoke baseline into
/// `algorithm -> (flat ms, fat ms)`.
fn read_topo_baseline() -> Option<std::collections::HashMap<String, (f64, f64)>> {
    let path = bench::output::results_dir().join("topo-smoke-baseline.csv");
    let content = std::fs::read_to_string(&path).ok()?;
    let mut map = std::collections::HashMap::new();
    for line in content.lines().skip(1) {
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() < 3 {
            continue;
        }
        if let (Ok(flat), Ok(fat)) = (cells[1].parse::<f64>(), cells[2].parse::<f64>()) {
            map.insert(cells[0].to_string(), (flat, fat));
        }
    }
    Some(map)
}

/// The serve-smoke stream: smaller than the `serve` experiment's, same
/// roster — 64 jobs is enough to exercise repeats, auto-selection variety
/// and concurrency.
///
/// Wall-clock throughput on a shared CI box is noisy (the stream takes tens
/// of milliseconds), so the gated quantity is the best normalized
/// throughput (jobs/s per cold-plan/s) of three reps — while the
/// correctness bit must hold on *every* rep.
fn serve_smoke_metrics() -> bench::serve_bench::ServeMetrics {
    let mut reps: Vec<_> = (0..3).map(|_| bench::serve_bench::measure(64, None)).collect();
    let all_match = reps.iter().all(|m| m.all_match_serial);
    let best_at = reps
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| {
            (a.jobs_per_s / a.cold_plans_per_s).total_cmp(&(b.jobs_per_s / b.cold_plans_per_s))
        })
        .map(|(i, _)| i)
        .expect("three reps");
    let mut best = reps.swap_remove(best_at);
    best.all_match_serial = all_match;
    best
}

/// Parse the committed serve baseline (`metric,value` CSV) into the
/// baselined machine-normalized throughput: jobs/s per cold-plan/s.
///
/// Raw wall-clock jobs/s swings with whatever else shares the CI box, but
/// it tracks the same run's single-threaded cold planning throughput almost
/// exactly (both scale with effective machine speed), so their ratio
/// isolates serving-layer regressions — driver overhead, lock contention,
/// pool scheduling — from the machine being slow that minute.
fn read_serve_baseline() -> Option<f64> {
    let path = bench::output::results_dir().join("serve-smoke-baseline.csv");
    let content = std::fs::read_to_string(&path).ok()?;
    let field = |name: &str| {
        content.lines().find_map(|line| {
            let (metric, value) = line.split_once(',')?;
            (metric == name).then(|| value.parse::<f64>().ok())?
        })
    };
    Some(field("jobs_per_s")? / field("cold_plans_per_s")?)
}

fn write_serve_baseline(metrics: &bench::serve_bench::ServeMetrics) {
    let mut t = Table::new(&["metric", "value"]);
    t.row(vec!["jobs_per_s".into(), format!("{:.3}", metrics.jobs_per_s)]);
    t.row(vec![
        "cold_plans_per_s".into(),
        format!("{:.1}", metrics.cold_plans_per_s),
    ]);
    t.row(vec![
        "cached_plans_per_s".into(),
        format!("{:.1}", metrics.cached_plans_per_s),
    ]);
    t.write_csv("serve-smoke-baseline").expect("write serve baseline csv");
}

/// What the fault-smoke section of the gate measured.
struct FaultSmoke {
    /// Whether arming a quiescent fault plan left the clean run's product
    /// and per-rank stats bitwise-untouched.
    zero_fault_bitwise: bool,
    /// Whether the faulted job completed via recovery.
    recovered_ok: bool,
    /// Executions the recovered job took (injected failure + clean re-run).
    attempts: usize,
    /// Whether the job completed on fewer ranks than requested.
    degraded: bool,
    /// The surviving world size the recovery replanned for.
    p_prime: usize,
    /// The recovered run's measured traffic, MB.
    measured_mb: f64,
    /// The recovered run's measured virtual clock, ms.
    measured_ms: f64,
}

/// The fault-smoke scenario: the serve-conformance world (96×80×112,
/// p = 64) under a fixed-seed `FaultPlan` felling 15 ranks mid-run,
/// recovered under `RetryPolicy::attempts(2)` by replanning the surviving
/// p′ = 49. The recovery re-run is a *clean* event run at p′, so its
/// measured traffic and virtual clock are exactly reproducible — the
/// committed baseline holds them bitwise.
fn fault_smoke_run() -> FaultSmoke {
    use densemat::matrix::Matrix;
    use serve::{FaultPlan, JobRequest, RetryPolicy, Server, ServerConfig};

    let prob = MmmProblem::new(96, 80, 112, 64, 1 << 14);
    let a = Matrix::deterministic(prob.m, prob.k, 5);
    let b = Matrix::deterministic(prob.k, prob.n, 6);
    let server = Server::new(baselines::registry(), ServerConfig::default()).unwrap();

    // The pre-fault clock, and the same job with a quiescent plan armed —
    // the latter must change nothing, bit for bit.
    let clean = server
        .run_sync(JobRequest::new(0, prob, a.clone(), b.clone()).backend(ExecBackend::event()))
        .outcome
        .expect("clean run");
    let quiet = server
        .run_sync(JobRequest::new(1, prob, a.clone(), b.clone()).faults(FaultPlan::new(7)))
        .outcome
        .expect("a quiescent fault plan cannot fail a run");
    let zero_fault_bitwise = quiet.report.c == clean.report.c && quiet.report.stats == clean.report.stats;

    let horizon = clean.report.measured_time_s() / 2.0;
    let plan = FaultPlan::new(7).kill_exactly(15, horizon);
    let recovered =
        server.run_sync(JobRequest::new(2, prob, a, b).faults(plan).retry(RetryPolicy::attempts(2)));
    let (recovered_ok, p_prime, measured_mb, measured_ms) = match &recovered.outcome {
        Ok(out) => (
            true,
            out.plan.problem.p,
            mpsim::stats::aggregate::total_volume(&out.report.stats) as f64 * 8.0 / 1e6,
            out.report.measured_time_s() * 1e3,
        ),
        Err(_) => (false, 0, 0.0, 0.0),
    };
    let smoke = FaultSmoke {
        zero_fault_bitwise,
        recovered_ok,
        attempts: recovered.attempts,
        degraded: recovered.degraded,
        p_prime,
        measured_mb,
        measured_ms,
    };
    let _ = server.shutdown();
    smoke
}

fn fault_smoke_table(fs: &FaultSmoke) -> Table {
    let mut t = Table::new(&["metric", "value"]);
    t.row(vec!["zero-fault bitwise".into(), fs.zero_fault_bitwise.to_string()]);
    t.row(vec!["recovered".into(), fs.recovered_ok.to_string()]);
    t.row(vec!["attempts".into(), fs.attempts.to_string()]);
    t.row(vec!["degraded".into(), fs.degraded.to_string()]);
    t.row(vec!["p'".into(), fs.p_prime.to_string()]);
    t.row(vec!["measured MB".into(), fmt(fs.measured_mb, 4)]);
    t.row(vec!["measured ms".into(), fmt(fs.measured_ms, 4)]);
    t
}

/// Write the committed fault-smoke baseline. Floats carry 17 significant
/// digits so parsing them back recovers the exact f64 — the gate is
/// *bitwise*, not a tolerance band (the recovery re-run is clean at p′).
fn write_fault_baseline(fs: &FaultSmoke) {
    let mut t = Table::new(&["metric", "value"]);
    t.row(vec!["p_prime".into(), fs.p_prime.to_string()]);
    t.row(vec!["attempts".into(), fs.attempts.to_string()]);
    t.row(vec!["measured_mb".into(), format!("{:.17e}", fs.measured_mb)]);
    t.row(vec!["measured_ms".into(), format!("{:.17e}", fs.measured_ms)]);
    t.write_csv("fault-smoke-baseline").expect("write fault baseline csv");
}

/// Parse the committed fault-smoke baseline into
/// `(p_prime, attempts, measured MB, measured ms)`.
fn read_fault_baseline() -> Option<(usize, usize, f64, f64)> {
    let path = bench::output::results_dir().join("fault-smoke-baseline.csv");
    let content = std::fs::read_to_string(&path).ok()?;
    let field = |name: &str| {
        content.lines().find_map(|line| {
            let (metric, value) = line.split_once(',')?;
            (metric == name).then(|| value.parse::<f64>().ok())?
        })
    };
    Some((
        field("p_prime")? as usize,
        field("attempts")? as usize,
        field("measured_mb")?,
        field("measured_ms")?,
    ))
}

// ---------------------------------------------------------------------------
// gemm-smoke: the local-kernel half of the gate (§7 local tuning)
// ---------------------------------------------------------------------------

/// The committed local-kernel speedup floor: on the gate's 320³ multiply,
/// `gemm_packed` must beat `gemm_naive` by at least this factor. With the
/// workspace's `target-cpu=native` build the packed kernel measures ~2.3×
/// naive; the floor is set low enough to absorb noisy CI neighbours while
/// still failing if the default kernel silently decays to naive speed.
const GEMM_SMOKE_MIN_SPEEDUP: f64 = 1.5;

/// What the gemm-smoke section of the gate measured.
struct GemmSmoke {
    /// Whether packed and naive agreed bit for bit on the integer matrices.
    bitwise: bool,
    /// Best per-multiply seconds of the naive kernel.
    naive_s: f64,
    /// Best per-multiply seconds of the packed kernel.
    packed_s: f64,
    /// The packed kernel's sustained flop rate.
    packed_flops_per_s: f64,
    /// That rate as a percent of the cost model's single-core peak.
    percent_peak: f64,
    /// γ after [`CostModel::calibrated_gamma`] on the measured rate.
    calibrated_gamma_flops: f64,
}

/// Best per-iteration seconds of three adaptive reps (one warm-up call
/// sizes the iteration count to ~120 ms per rep). The minimum over reps is
/// the least-contended estimate — the standard noisy-neighbour defence.
fn best_time_s(mut f: impl FnMut()) -> f64 {
    use std::time::Instant;
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().max(std::time::Duration::from_nanos(1));
    let iters = (120_000_000u128 / once.as_nanos()).clamp(1, 100_000) as u32;
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t.elapsed().as_secs_f64() / iters as f64);
    }
    best
}

fn gemm_smoke_run(m: &CostModel) -> GemmSmoke {
    use bench::micro::black_box;
    use densemat::gemm::{gemm_naive, gemm_packed, mmm_flops};
    use densemat::matrix::Matrix;
    let n = 320;
    // Small-integer entries: every product and partial sum is exact, so the
    // bitwise comparison cannot hide behind rounding noise (the kernels
    // share the k-order on arbitrary f64 anyway — §7's kernel swap is
    // contracted to be invisible, and this row gates that on every CI run).
    let ints = |s: usize| Matrix::from_fn(n, n, move |i, j| ((i * 31 + j * 7 + s) % 8 + 1) as f64);
    let a = ints(1);
    let b = ints(2);
    let mut c_naive = Matrix::zeros(n, n);
    gemm_naive(&a, &b, &mut c_naive);
    let mut c_packed = Matrix::zeros(n, n);
    gemm_packed(&a, &b, &mut c_packed);
    let bitwise = c_naive
        .as_slice()
        .iter()
        .zip(c_packed.as_slice())
        .all(|(x, y)| x.to_bits() == y.to_bits());
    // The kernels accumulate into C, so reusing one sink across timed
    // iterations is safe (the values grow, the work does not change).
    let mut sink = Matrix::zeros(n, n);
    let naive_s = best_time_s(|| gemm_naive(black_box(&a), black_box(&b), black_box(&mut sink)));
    let mut sink = Matrix::zeros(n, n);
    let packed_s = best_time_s(|| gemm_packed(black_box(&a), black_box(&b), black_box(&mut sink)));
    let packed_flops_per_s = mmm_flops(n, n, n) as f64 / packed_s;
    GemmSmoke {
        bitwise,
        naive_s,
        packed_s,
        packed_flops_per_s,
        percent_peak: 100.0 * packed_flops_per_s / m.peak_flops,
        calibrated_gamma_flops: m.calibrated_gamma(packed_flops_per_s).gamma_flops(),
    }
}

fn gemm_smoke_table(gs: &GemmSmoke) -> Table {
    let mut t = Table::new(&["metric", "value"]);
    t.row(vec!["bitwise vs naive".into(), gs.bitwise.to_string()]);
    t.row(vec!["naive ms".into(), fmt(gs.naive_s * 1e3, 3)]);
    t.row(vec!["packed ms".into(), fmt(gs.packed_s * 1e3, 3)]);
    t.row(vec!["speedup".into(), fmt(gs.naive_s / gs.packed_s, 2)]);
    t.row(vec!["packed Gflop/s".into(), fmt(gs.packed_flops_per_s / 1e9, 2)]);
    t.row(vec!["% of model peak".into(), fmt(gs.percent_peak, 1)]);
    t.row(vec![
        "calibrated gamma Gflop/s".into(),
        fmt(gs.calibrated_gamma_flops / 1e9, 2),
    ]);
    t
}

fn bench_smoke_baseline() {
    println!("== bench-smoke-baseline: (re)recording the committed gate baseline ==\n");
    let rows = smoke_rows();
    let t = smoke_table(&rows);
    t.print();
    t.write_csv("bench-smoke-baseline").expect("write baseline csv");
    println!("\nrecording the topo-smoke rows (square/1024, congested fat-tree)...\n");
    let m = model();
    let timed_prob = scenarios::exec_problem(Shape::Square, 1024);
    let flat_timed = runner::time_all(&timed_prob, &m);
    let fat_timed = topo_smoke_fat_rows(&m);
    topo_smoke_table(&flat_timed, &fat_timed).print();
    write_topo_baseline(&flat_timed, &fat_timed);
    println!("\nrecording the serve-smoke stream...\n");
    let metrics = serve_smoke_metrics();
    serve_metrics_table(&metrics).print();
    write_serve_baseline(&metrics);
    println!("\nrecording the fault-smoke row (96x80x112/64, seed 7, 15 kills)...\n");
    let fs = fault_smoke_run();
    fault_smoke_table(&fs).print();
    assert!(
        fs.recovered_ok && fs.zero_fault_bitwise && fs.attempts == 2 && fs.degraded,
        "fault-smoke must recover cleanly before its baseline is recorded"
    );
    write_fault_baseline(&fs);
    println!(
        "\nwrote results/bench-smoke-baseline.csv, results/topo-smoke-baseline.csv, \
         results/serve-smoke-baseline.csv and results/fault-smoke-baseline.csv — \
         commit all four to update the gate.\n"
    );
}

fn bench_smoke() {
    println!("== bench-smoke: executed perf-regression gate ==\n");
    let m = model();
    let rows = smoke_rows();
    let t = smoke_table(&rows);
    t.print();
    let json = write_smoke_json(&rows);
    println!("\nwrote {}", json.display());
    let mut failures: Vec<String> = Vec::new();
    // Gate 1: planned-vs-measured divergence is always a failure (`exact`
    // compares the underlying word counts rank by rank), and so is a rank
    // peaking past the problem's per-rank memory S. The *time* axis is held
    // the same way on every row that measured it (event backend): the
    // virtual clock must agree with DistPlan::simulate within the stated
    // TIME_AGREEMENT_FACTOR band.
    for (name, p, row) in &rows {
        if !row.exact {
            failures.push(format!(
                "{}: measured {} MB deviates from planned {} MB",
                smoke_key(name, *p, row),
                fmt(row.measured_mb, 4),
                fmt(row.planned_mb, 4)
            ));
        }
        if !row.within_mem {
            failures.push(format!(
                "{}: peak working set {} words exceeds the per-rank memory S",
                smoke_key(name, *p, row),
                row.peak_mem_words
            ));
        }
        if row.measured_time_s > 0.0 {
            let f = runner::TIME_AGREEMENT_FACTOR;
            if row.measured_time_s > row.planned_time_s * f || row.measured_time_s < row.planned_time_s / f {
                failures.push(format!(
                    "{}: measured {} ms disagrees with planned {} ms beyond x{f}",
                    smoke_key(name, *p, row),
                    fmt(row.measured_time_s * 1e3, 4),
                    fmt(row.planned_time_s * 1e3, 4)
                ));
            }
        }
    }
    // Gate 1d: the parallel scheduler's determinism contract — the
    // square-xxl pair (event vs event(4)) must agree *bitwise* on measured
    // traffic and the measured virtual clock. Not a tolerance band: region
    // sharding is an implementation detail of wall-clock, so any divergence
    // is a scheduler-semantics bug.
    {
        let xxl: Vec<_> = rows.iter().filter(|(name, _, _)| name == "square-xxl").collect();
        let single = xxl
            .iter()
            .find(|(_, _, r)| matches!(r.backend, ExecBackend::Event { threads: 1 }));
        for (name, p, row) in &xxl {
            let Some((_, _, base)) = single else {
                failures.push("square-xxl: no single-threaded reference row produced".into());
                break;
            };
            if row.measured_mb != base.measured_mb || row.measured_time_s != base.measured_time_s {
                failures.push(format!(
                    "{}: measured {} MB / {:.17e} ms diverges bitwise from the single-threaded \
                     scheduler's {} MB / {:.17e} ms — parallel determinism broken",
                    smoke_key(name, *p, row),
                    fmt(row.measured_mb, 6),
                    row.measured_time_s * 1e3,
                    fmt(base.measured_mb, 6),
                    base.measured_time_s * 1e3
                ));
            }
        }
        if xxl.len() < 2 {
            failures.push("square-xxl: expected both the event and event(4) rows".into());
        }
    }
    // Gate 1b: overlap semantics on the event scenario — double buffering
    // may only help: measured overlap-on <= overlap-off for every compared
    // algorithm, and both modes inside the agreement band.
    let timed_prob = scenarios::exec_problem(Shape::Square, 1024);
    let flat_timed = runner::time_all(&timed_prob, &m);
    for row in &flat_timed {
        if !row.agrees() {
            failures.push(format!(
                "timed/1024/{}: measured {}/{} ms (ovl on/off) vs planned {}/{} ms breaks \
                 the overlap/agreement contract",
                row.algo,
                fmt(row.measured_s * 1e3, 4),
                fmt(row.measured_no_overlap_s * 1e3, 4),
                fmt(row.planned_s * 1e3, 4),
                fmt(row.planned_no_overlap_s * 1e3, 4)
            ));
        }
    }
    // Gate 1c: topo-smoke — the same timed world re-executed under the
    // congested fat-tree preset. Three contracts: (a) the flat rows must
    // match the committed `results/topo-smoke-baseline.csv` *bitwise* (the
    // flat topology is required to reproduce the pre-topology virtual clock
    // float-op for float-op, so any flat drift is a semantics change, never
    // noise); (b) fat-tree simulated wall-clock must not regress > 10% over
    // the baseline; (c) contention may only hurt — fat-tree time >= flat
    // time on every row, baseline or not.
    println!("\n-- topo-smoke (square/1024, congested fat-tree) --");
    let fat_timed = topo_smoke_fat_rows(&m);
    topo_smoke_table(&flat_timed, &fat_timed).print();
    for (f, c) in flat_timed.iter().zip(&fat_timed) {
        if c.measured_s < f.measured_s || c.measured_no_overlap_s < f.measured_no_overlap_s {
            failures.push(format!(
                "topo-smoke/{}: fat-tree measured {}/{} ms (ovl on/off) beats flat {}/{} ms — \
                 contention decreased a measured time",
                f.algo,
                fmt(c.measured_s * 1e3, 4),
                fmt(c.measured_no_overlap_s * 1e3, 4),
                fmt(f.measured_s * 1e3, 4),
                fmt(f.measured_no_overlap_s * 1e3, 4)
            ));
        }
    }
    match read_topo_baseline() {
        Some(base) => {
            for (f, c) in flat_timed.iter().zip(&fat_timed) {
                match base.get(&f.algo.to_string()) {
                    Some(&(base_flat_ms, base_fat_ms)) => {
                        if f.measured_s * 1e3 != base_flat_ms {
                            failures.push(format!(
                                "topo-smoke/{}: flat measured {:.17e} ms diverges from baseline \
                                 {:.17e} ms — the flat topology must stay bitwise-identical",
                                f.algo,
                                f.measured_s * 1e3,
                                base_flat_ms
                            ));
                        }
                        if c.measured_s * 1e3 > base_fat_ms * 1.10 + 1e-9 {
                            failures.push(format!(
                                "topo-smoke/{}: fat-tree measured {} ms regresses >10% over \
                                 baseline {} ms (simulated wall-clock)",
                                c.algo,
                                fmt(c.measured_s * 1e3, 4),
                                fmt(base_fat_ms, 4)
                            ));
                        }
                    }
                    None => failures.push(format!(
                        "topo-smoke/{}: no baseline entry — run `experiments \
                         bench-smoke-baseline` and commit it",
                        f.algo
                    )),
                }
            }
        }
        None => failures.push(
            "results/topo-smoke-baseline.csv missing — run `experiments bench-smoke-baseline` and commit it"
                .into(),
        ),
    }
    // Gate 2: measured MB must not regress > 10% against the committed
    // baseline (more traffic than recorded = a perf regression), and
    // neither may the measured virtual wall-clock on rows that time
    // (simulated-time regressions are schedule regressions: more exposed
    // stalls for the same words). Rows the baseline does not know are fatal
    // too: they mean the subset or the key format changed without
    // `bench-smoke-baseline` being re-committed, and ignoring them would
    // let the gate pass vacuously.
    match read_smoke_baseline() {
        Some(base) => {
            // Coverage must not shrink either: a baseline row the current
            // run no longer produces means a scenario was silently dropped
            // (e.g. a planner started erroring), which would otherwise make
            // the gate pass vacuously.
            let produced: std::collections::HashSet<String> =
                rows.iter().map(|(name, p, row)| smoke_key(name, *p, row)).collect();
            for key in base.keys() {
                if !produced.contains(key) {
                    failures.push(format!(
                        "{key}: in the baseline but not produced by this run — scenario dropped?"
                    ));
                }
            }
            for (name, p, row) in &rows {
                let key = smoke_key(name, *p, row);
                match base.get(&key) {
                    Some(b) => {
                        if row.measured_mb > b.measured_mb * 1.10 + 1e-9 {
                            failures.push(format!(
                                "{key}: measured {} MB regresses >10% over baseline {} MB",
                                fmt(row.measured_mb, 2),
                                fmt(b.measured_mb, 2)
                            ));
                        }
                        // Time-regression gate: only on rows where both the
                        // run and the baseline measured a virtual clock.
                        if b.measured_ms > 0.0 && row.measured_time_s * 1e3 > b.measured_ms * 1.10 + 1e-9 {
                            failures.push(format!(
                                "{key}: measured {} ms regresses >10% over baseline {} ms \
                                 (simulated wall-clock)",
                                fmt(row.measured_time_s * 1e3, 4),
                                fmt(b.measured_ms, 4)
                            ));
                        }
                    }
                    // A key the baseline lacks means the subset (or the key
                    // format itself) changed without regenerating the
                    // baseline — fatal, or the gate would pass vacuously.
                    None => failures.push(format!(
                        "{key}: no baseline entry — run `experiments bench-smoke-baseline` and commit it"
                    )),
                }
            }
        }
        None => failures.push(
            "results/bench-smoke-baseline.csv missing — run `experiments bench-smoke-baseline` and commit it"
                .into(),
        ),
    }
    // Gate 3: the serve-smoke row — the serving layer's own contract. A
    // mixed 64-job stream must (a) produce results bitwise-identical to
    // serial execution (concurrency may change throughput, never answers),
    // (b) answer cached planning at least 10x faster than cold planning,
    // (c) actually hit the cache, (d) auto-select at least 3 algorithms,
    // and (e) hold machine-normalized jobs/s (per cold-plan/s, see
    // read_serve_baseline) within 10% of the committed serve baseline.
    println!("\n-- serve-smoke --");
    let sm = serve_smoke_metrics();
    serve_metrics_table(&sm).print();
    if !sm.all_match_serial {
        failures.push("serve-smoke: concurrent results diverge from serial execution".into());
    }
    if sm.cached_plans_per_s < 10.0 * sm.cold_plans_per_s {
        failures.push(format!(
            "serve-smoke: cached planning {} plans/s is not 10x cold {} plans/s",
            fmt(sm.cached_plans_per_s, 0),
            fmt(sm.cold_plans_per_s, 0)
        ));
    }
    if sm.hit_rate <= 0.0 {
        failures.push("serve-smoke: the mixed stream never hit the plan cache".into());
    }
    if sm.algos_selected.len() < 3 {
        failures
            .push(format!("serve-smoke: only {:?} auto-selected (want >= 3 algorithms)", sm.algos_selected));
    }
    match read_serve_baseline() {
        Some(base_ratio) => {
            let ratio = sm.jobs_per_s / sm.cold_plans_per_s;
            if ratio < base_ratio * 0.90 {
                failures.push(format!(
                    "serve-smoke: normalized throughput {} jobs per 1000 cold plans \
                     regresses >10% under baseline {}",
                    fmt(ratio * 1000.0, 2),
                    fmt(base_ratio * 1000.0, 2)
                ));
            }
        }
        None => failures.push(
            "results/serve-smoke-baseline.csv missing — run `experiments bench-smoke-baseline` and commit it"
                .into(),
        ),
    }
    // Gate 4: fault-smoke — the failure-recovery contract. A fixed-seed
    // FaultPlan fells 15 of 64 ranks mid-run; the job must complete via the
    // retry policy by replanning the surviving p' = 49, one injected
    // failure plus one clean re-run. The recovered run's measured traffic
    // and virtual clock must match the committed
    // `results/fault-smoke-baseline.csv` *bitwise* (the recovery re-run is
    // clean at p', so nothing about it may drift), and arming a quiescent
    // fault plan must leave the pre-fault clock bitwise-untouched.
    println!("\n-- fault-smoke --");
    let fs = fault_smoke_run();
    fault_smoke_table(&fs).print();
    if !fs.zero_fault_bitwise {
        failures.push(
            "fault-smoke: a quiescent fault plan perturbed the zero-fault run — \
             arming faults must be bitwise a no-op"
                .into(),
        );
    }
    if !fs.recovered_ok {
        failures.push("fault-smoke: the faulted job did not complete via recovery".into());
    } else {
        if fs.attempts != 2 || !fs.degraded {
            failures.push(format!(
                "fault-smoke: expected one injected failure + one degraded clean re-run, \
                 got attempts = {}, degraded = {}",
                fs.attempts, fs.degraded
            ));
        }
        match read_fault_baseline() {
            Some((p_prime, attempts, mb, ms)) => {
                if fs.p_prime != p_prime || fs.attempts != attempts {
                    failures.push(format!(
                        "fault-smoke: recovered at p' = {} in {} attempts vs baseline \
                         p' = {p_prime} in {attempts} — the casualty schedule moved",
                        fs.p_prime, fs.attempts
                    ));
                }
                if fs.measured_mb != mb || fs.measured_ms != ms {
                    failures.push(format!(
                        "fault-smoke: recovered run measured {:.17e} MB / {:.17e} ms diverges \
                         bitwise from baseline {mb:.17e} MB / {ms:.17e} ms — the clean p' \
                         re-run must be exactly reproducible",
                        fs.measured_mb, fs.measured_ms
                    ));
                }
            }
            None => failures.push(
                "results/fault-smoke-baseline.csv missing — run `experiments bench-smoke-baseline` and commit it"
                    .into(),
            ),
        }
    }
    // Gate 5: gemm-smoke — the local-kernel contract (§7 local tuning).
    // The default `gemm_packed` must (a) agree bit for bit with the naive
    // reference on integer matrices, and (b) beat it by the committed
    // GEMM_SMOKE_MIN_SPEEDUP factor, so the data-plane kernel can neither
    // drift numerically nor silently decay to naive speed. The measured
    // rate also feeds `CostModel::calibrated_gamma` — the printed γ is the
    // machine's actual single-core γ, the paper's %-peak denominator.
    println!("\n-- gemm-smoke (packed vs naive, 320^3) --");
    let gs = gemm_smoke_run(&m);
    gemm_smoke_table(&gs).print();
    if !gs.bitwise {
        failures.push("gemm-smoke: gemm_packed diverges bitwise from gemm_naive on integer matrices".into());
    }
    let speedup = gs.naive_s / gs.packed_s;
    if speedup < GEMM_SMOKE_MIN_SPEEDUP {
        failures.push(format!(
            "gemm-smoke: packed is only {}x naive (committed floor {}x)",
            fmt(speedup, 2),
            fmt(GEMM_SMOKE_MIN_SPEEDUP, 2)
        ));
    }
    if failures.is_empty() {
        println!(
            "\nbench-smoke gate: PASS ({} rows + serve-smoke + fault-smoke + gemm-smoke)\n",
            rows.len()
        );
    } else {
        eprintln!("\nbench-smoke gate: FAIL");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}

// ---------------------------------------------------------------------------
// exec-rss: per-backend peak RSS at p = 4096
// ---------------------------------------------------------------------------

/// Peak resident set of this process in KiB (`VmHWM` from
/// `/proc/self/status`); `None` off Linux.
fn peak_rss_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()
}

fn exec_rss(backend_name: &str) {
    let p = 4096;
    let backend = match backend_name {
        "threaded" => {
            eprintln!("threaded caps at 512 ranks; p = {p} needs sharded or event");
            std::process::exit(2);
        }
        "sharded" => ExecBackend::Sharded {
            workers: ExecBackend::default_workers(),
        },
        "event" => ExecBackend::event(),
        other => {
            eprintln!("unknown backend {other:?} (want sharded | event)");
            std::process::exit(2);
        }
    };
    println!("== exec-rss: COSMA square p = {p} on {backend} ==\n");
    let m = model();
    let cosma = runner::registry().by_id(AlgoId::Cosma).expect("registry has COSMA");
    let prob = scenarios::exec_problem(Shape::Square, p);
    let before = peak_rss_kib().unwrap_or(0);
    let rows = runner::execute_with(&[cosma], &prob, &m, backend);
    let after = peak_rss_kib().unwrap_or(0);
    let mut t = executed_table();
    push_executed_rows(&mut t, "square", p, &rows);
    t.print();
    println!(
        "\npeak RSS: {:.1} MiB (baseline before run {:.1} MiB; ~{:.1} KiB per rank)\n",
        after as f64 / 1024.0,
        before as f64 / 1024.0,
        (after.saturating_sub(before)) as f64 / p as f64
    );
}

fn run(id: &str) {
    match id {
        "fig1" => fig1(),
        "fig3" => fig3(),
        "fig5" => fig5(),
        "fig6" => comm_volume_figure("fig6", "square"),
        "fig7" => comm_volume_figure("fig7", "largek"),
        "fig7m" => comm_volume_figure("fig7m", "largem"),
        "fig7f" => comm_volume_figure("fig7f", "flat"),
        "fig8" => perf_figure("fig8", "square", "percent-peak"),
        "fig9" => perf_figure("fig9", "square", "runtime-ms"),
        "fig10" => perf_figure("fig10", "largek", "percent-peak"),
        "fig11" => perf_figure("fig11", "largek", "runtime-ms"),
        "fig12" => fig12(),
        "fig13" => distribution_figure("fig13", ["flat", "square"]),
        "fig14" => distribution_figure("fig14", ["largek", "largem"]),
        "table3" => table3(),
        "table4" => table4(),
        "exec" => exec_experiment(),
        "exec-xl" => exec_xl(),
        "exec-xxl" => exec_xxl(),
        "timed" => timed(),
        "topo" => topo(),
        "mem-sweep" => mem_sweep(),
        "serve" => serve_experiment(),
        "faults" => faults_experiment(),
        "bench-smoke" => bench_smoke(),
        "bench-smoke-baseline" => bench_smoke_baseline(),
        other => {
            eprintln!("unknown experiment id: {other}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `--backend <threaded|sharded(N)|event>` pins the execution backend of
    // the experiments that would otherwise pick one automatically.
    if let Some(i) = args.iter().position(|a| a == "--backend") {
        let Some(name) = args.get(i + 1) else {
            eprintln!("--backend needs a value (threaded | sharded | sharded(N) | event)");
            std::process::exit(2);
        };
        match name.parse::<ExecBackend>() {
            Ok(backend) => {
                let _ = BACKEND_OVERRIDE.set(backend);
            }
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
        args.drain(i..=i + 1);
    }
    if args.is_empty() {
        eprintln!(
            "usage: experiments [--backend <name>] <id>...  (ids: fig1 fig3 fig5 fig6 fig7 \
             fig7m fig7f fig8 fig9 fig10 fig11 fig12 fig13 fig14 table3 table4 exec exec-xl \
             exec-xxl timed topo mem-sweep serve faults | all | bench-smoke | \
             bench-smoke-baseline | exec-rss <sharded|event>)"
        );
        std::process::exit(2);
    }
    // exec-xxl is deliberately not in `all`: its million-rank worlds take
    // tens of minutes per row — run it explicitly.
    let all_ids = [
        "fig3",
        "fig5",
        "table3",
        "exec",
        "exec-xl",
        "timed",
        "topo",
        "mem-sweep",
        "serve",
        "faults",
        "fig6",
        "fig7",
        "fig7m",
        "fig7f",
        "fig12",
        "table4",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "fig13",
        "fig14",
        "fig1",
    ];
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "all" {
            for id in all_ids {
                run(id);
            }
        } else if arg == "exec-rss" {
            let backend = it.next().map(String::as_str).unwrap_or("event");
            exec_rss(backend);
        } else {
            run(arg);
        }
    }
}
