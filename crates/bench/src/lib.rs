//! # bench — experiment harness for the paper's evaluation (§8–§9)
//!
//! [`scenarios`] defines the twelve benchmark scenarios of the paper
//! (4 matrix shapes × {strong scaling, limited memory, extra memory}),
//! [`runner`] evaluates every algorithm's plan on a scenario instance and
//! produces the measured rows (per-rank communication volume, simulated
//! time, % of peak), and [`output`] renders tables and CSV files.
//!
//! The `experiments` binary (`src/bin/experiments.rs`) maps each paper
//! table/figure to a subcommand; see `EXPERIMENTS.md` for the index and the
//! recorded paper-vs-measured comparison.

//! [`serve_bench`] measures the serving layer (`crates/serve`): cold vs
//! cached planning throughput and executed-jobs/s under a mixed concurrent
//! stream.

pub mod micro;
pub mod output;
pub mod runner;
pub mod scenarios;
pub mod serve_bench;
