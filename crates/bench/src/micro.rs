//! Minimal self-contained micro-benchmark harness.
//!
//! The container this reproduction builds in has no registry access, so the
//! usual external harness (criterion) is unavailable; this module provides
//! the small subset the `benches/` targets need: named groups, an adaptive
//! timing loop, and an opaque [`black_box`]. Run with `cargo bench`; set
//! `COSMA_BENCH_BUDGET_MS` to trade precision for wall-clock time (default
//! 200 ms per benchmark).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// A named group of benchmarks with a shared time budget per entry.
pub struct Group {
    name: String,
    budget: Duration,
}

impl Group {
    /// Start a group and print its header.
    pub fn new(name: &str) -> Self {
        let ms = std::env::var("COSMA_BENCH_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(200);
        println!("\n== {name} ==");
        Group {
            name: name.to_string(),
            budget: Duration::from_millis(ms),
        }
    }

    /// Time `f` adaptively: one warm-up call sizes the iteration count so
    /// the measurement fills the group budget, then the mean per-iteration
    /// time is printed.
    pub fn bench<T>(&self, name: &str, mut f: impl FnMut() -> T) {
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (self.budget.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u32;
        let t1 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let per_iter = t1.elapsed() / iters;
        println!(
            "  {:<40} {:>14}  ({} iters)",
            format!("{}/{}", self.name, name),
            format_duration(per_iter),
            iters
        );
    }
}

/// Render a duration with a unit suited to its magnitude.
pub fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_closure_and_formats() {
        std::env::set_var("COSMA_BENCH_BUDGET_MS", "1");
        let g = Group::new("smoke");
        let mut calls = 0u64;
        g.bench("count", || {
            calls += 1;
            calls
        });
        assert!(calls >= 2, "warm-up + at least one timed iteration");
        assert_eq!(format_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(format_duration(Duration::from_micros(50)), "50.00 µs");
        assert_eq!(format_duration(Duration::from_millis(50)), "50.00 ms");
        assert_eq!(format_duration(Duration::from_secs(50)), "50.00 s");
    }
}
