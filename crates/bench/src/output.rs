//! Table rendering and CSV persistence for the experiment harness.
//!
//! Every experiment prints a human-readable table and writes a CSV under
//! `results/` so the numbers in `EXPERIMENTS.md` can be regenerated and
//! diffed.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// A simple column-aligned table.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Render to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            let parts: Vec<String> =
                cells.iter().zip(&widths).map(|(c, w)| format!("{c:>w$}", w = w)).collect();
            println!("  {}", parts.join("  "));
        };
        line(&self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        println!("  {}", "-".repeat(total));
        for row in &self.rows {
            line(row);
        }
    }

    /// Write as CSV to `results/<name>.csv` under the workspace root.
    pub fn write_csv(&self, name: &str) -> std::io::Result<PathBuf> {
        let dir = results_dir();
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut f = fs::File::create(&path)?;
        writeln!(f, "{}", self.headers.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(path)
    }
}

/// The `results/` directory next to the workspace manifest.
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR of the bench crate is crates/bench; results live at
    // the workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root exists")
        .join("results")
}

/// Format a float with the given precision, trimming to a compact cell.
pub fn fmt(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_and_persists() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into(), "2.5".into()]);
        t.row(vec!["10".into(), "x".into()]);
        t.print();
        let path = t.write_csv("test-table").unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,b\n1,2.5\n10,x\n");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn fmt_precision() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(fmt(10.0, 0), "10");
    }
}
