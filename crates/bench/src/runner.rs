//! Evaluate every algorithm's plan on a problem instance and collect the
//! measured rows of the paper's figures and tables.
//!
//! CARMA only supports power-of-two rank counts (a limitation the paper
//! calls out in §1); like the paper's comparison we run it on the largest
//! `2^x ≤ p` ranks and idle the rest, charging the idle cores against its
//! %-of-peak exactly as the machine would.

use cosma::algorithm::{plan as cosma_plan, CosmaConfig};
use cosma::plan::{DistPlan, RankPlan};
use cosma::problem::MmmProblem;
use mpsim::cost::CostModel;

/// One algorithm's measured outcome on one problem instance.
#[derive(Debug, Clone)]
pub struct AlgoRow {
    /// Algorithm id: `cosma`, `scalapack` (SUMMA), `ctf` (2.5D), `carma`.
    pub algo: &'static str,
    /// Cores of the machine (including idled ones).
    pub p: usize,
    /// Mean received words per rank (the Table-4/Fig-6 metric), in MB.
    pub mean_mb: f64,
    /// Maximum received words over ranks, in MB.
    pub max_mb: f64,
    /// Simulated wall-clock seconds (with communication overlap).
    pub time_s: f64,
    /// Simulated wall-clock seconds without overlap.
    pub time_no_overlap_s: f64,
    /// Percent of machine peak flop/s (with overlap).
    pub percent_peak: f64,
    /// The processor grid used.
    pub grid: [usize; 3],
    /// Active (non-idle) ranks.
    pub active: usize,
}

fn words_to_mb(w: f64) -> f64 {
    w * 8.0 / 1e6
}

fn row_from_plan(algo: &'static str, plan: &DistPlan, model: &CostModel) -> AlgoRow {
    let with = plan.simulate(model, true);
    let without = plan.simulate(model, false);
    // Communication–computation overlap (§7.3) is COSMA's implementation
    // edge: the published ScaLAPACK/CTF/CARMA implementations do not overlap
    // (the paper additionally notes CARMA's per-step dynamic buffer
    // allocation, §7.5), so their reported time is the non-overlapped one.
    let reported = if algo == "cosma" { &with } else { &without };
    AlgoRow {
        algo,
        p: plan.problem.p,
        mean_mb: words_to_mb(plan.mean_comm_words()),
        max_mb: words_to_mb(plan.max_comm_words() as f64),
        time_s: reported.time_s,
        time_no_overlap_s: without.time_s,
        percent_peak: reported.percent_peak,
        grid: plan.grid,
        active: plan.active_ranks(),
    }
}

/// Plan COSMA for `prob`.
pub fn plan_cosma(prob: &MmmProblem, model: &CostModel) -> Option<DistPlan> {
    cosma_plan(prob, &CosmaConfig::default(), model).ok()
}

/// Plan the ScaLAPACK stand-in (SUMMA).
pub fn plan_scalapack(prob: &MmmProblem) -> Option<DistPlan> {
    baselines::summa::plan(prob).ok()
}

/// Plan the CTF stand-in (2.5D).
pub fn plan_ctf(prob: &MmmProblem) -> Option<DistPlan> {
    baselines::p25d::plan(prob).ok()
}

/// Plan CARMA on the largest power-of-two subset of the machine, padding the
/// plan back to `p` ranks with idles.
pub fn plan_carma(prob: &MmmProblem) -> Option<DistPlan> {
    let p2 = if prob.p.is_power_of_two() {
        prob.p
    } else {
        prob.p.next_power_of_two() / 2
    };
    let sub = MmmProblem::new(prob.m, prob.n, prob.k, p2, prob.mem_words);
    let mut plan = baselines::carma::plan(&sub).ok()?;
    plan.problem = *prob;
    for rank in p2..prob.p {
        plan.ranks.push(RankPlan::idle(rank));
    }
    Some(plan)
}

/// Evaluate the four compared algorithms on `prob`. Inapplicable or
/// infeasible algorithms are skipped (reported by absence).
pub fn run_all(prob: &MmmProblem, model: &CostModel) -> Vec<AlgoRow> {
    let mut rows = Vec::with_capacity(4);
    if let Some(pl) = plan_cosma(prob, model) {
        rows.push(row_from_plan("cosma", &pl, model));
    }
    if let Some(pl) = plan_scalapack(prob) {
        rows.push(row_from_plan("scalapack", &pl, model));
    }
    if let Some(pl) = plan_ctf(prob) {
        rows.push(row_from_plan("ctf", &pl, model));
    }
    if let Some(pl) = plan_carma(prob) {
        rows.push(row_from_plan("carma", &pl, model));
    }
    rows
}

/// Speedup of COSMA over the fastest other algorithm (> 1 means COSMA wins).
pub fn cosma_speedup(rows: &[AlgoRow]) -> Option<f64> {
    let cosma = rows.iter().find(|r| r.algo == "cosma")?;
    let best_other = rows
        .iter()
        .filter(|r| r.algo != "cosma")
        .map(|r| r.time_s)
        .fold(f64::INFINITY, f64::min);
    best_other.is_finite().then(|| best_other / cosma.time_s)
}

/// Geometric mean helper.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Quartile summary (min, q1, median, q3, max) of a sample.
pub fn five_numbers(xs: &[f64]) -> [f64; 5] {
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let q = |f: f64| -> f64 {
        if v.is_empty() {
            return f64::NAN;
        }
        let idx = f * (v.len() - 1) as f64;
        let lo = idx.floor() as usize;
        let hi = idx.ceil() as usize;
        v[lo] + (v[hi] - v[lo]) * (idx - lo as f64)
    };
    [q(0.0), q(0.25), q(0.5), q(0.75), q(1.0)]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::piz_daint_two_sided()
    }

    #[test]
    fn run_all_produces_all_four_on_friendly_p() {
        let prob = MmmProblem::new(4096, 4096, 4096, 1024, 1 << 22);
        let rows = run_all(&prob, &model());
        let algos: Vec<&str> = rows.iter().map(|r| r.algo).collect();
        assert!(algos.contains(&"cosma"));
        assert!(algos.contains(&"scalapack"));
        assert!(algos.contains(&"ctf"));
        assert!(algos.contains(&"carma"));
        for r in &rows {
            assert!(r.mean_mb > 0.0 && r.time_s > 0.0 && r.percent_peak > 0.0, "{r:?}");
            assert!(r.time_no_overlap_s >= r.time_s);
        }
    }

    #[test]
    fn carma_padding_on_non_power_of_two() {
        let prob = MmmProblem::new(2048, 2048, 2048, 1500, 1 << 22);
        let plan = plan_carma(&prob).unwrap();
        assert_eq!(plan.ranks.len(), 1500);
        assert_eq!(plan.active_ranks(), 1024);
        assert!(plan.validate_coverage().is_ok());
    }

    #[test]
    fn cosma_speedup_positive() {
        let prob = MmmProblem::new(4096, 4096, 4096, 512, 1 << 20);
        let rows = run_all(&prob, &model());
        let s = cosma_speedup(&rows).unwrap();
        assert!(s > 0.5, "speedup {s}");
    }

    #[test]
    fn geomean_and_quartiles() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        let f = five_numbers(&[3.0, 1.0, 2.0, 4.0, 5.0]);
        assert_eq!(f, [1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!(geomean(&[]).is_nan());
    }
}
