//! Evaluate every algorithm's plan on a problem instance and collect the
//! measured rows of the paper's figures and tables.
//!
//! All planning goes through the [`MmmAlgorithm`] trait and the full
//! [`baselines::registry`] — the runner knows no per-algorithm entry points.
//! Algorithms with rank-count constraints (a limitation the paper calls out
//! in §1 for CARMA) are run on the largest supported subset of the machine
//! and the rest of the ranks idle, charged against %-of-peak exactly as the
//! machine would charge them.

use std::sync::Arc;
use std::time::Instant;

use cosma::api::{execute_boxed_with, AlgoId, AlgorithmRegistry, MmmAlgorithm, PlanError};
use cosma::plan::DistPlan;
use cosma::problem::MmmProblem;
use densemat::gemm::matmul;
use densemat::matrix::Matrix;
use mpsim::cost::CostModel;
use mpsim::exec::ExecBackend;
use mpsim::machine::{MachineSpec, Placement, Topology};
use mpsim::stats::aggregate;

/// The algorithms of the paper's comparison figures, in presentation order
/// (Cannon is covered by the correctness suite but, as in the paper, not by
/// the evaluation figures).
pub const COMPARED: [AlgoId; 4] = [AlgoId::Cosma, AlgoId::Summa, AlgoId::P25d, AlgoId::Carma];

/// One algorithm's measured outcome on one problem instance.
#[derive(Debug, Clone)]
pub struct AlgoRow {
    /// The measured algorithm.
    pub algo: AlgoId,
    /// Cores of the machine (including idled ones).
    pub p: usize,
    /// Mean received words per rank (the Table-4/Fig-6 metric), in MB.
    pub mean_mb: f64,
    /// Maximum received words over ranks, in MB.
    pub max_mb: f64,
    /// Simulated wall-clock seconds (with communication overlap).
    pub time_s: f64,
    /// Simulated wall-clock seconds without overlap.
    pub time_no_overlap_s: f64,
    /// Percent of machine peak flop/s (with overlap).
    pub percent_peak: f64,
    /// The processor grid used.
    pub grid: [usize; 3],
    /// Active (non-idle) ranks.
    pub active: usize,
}

fn words_to_mb(w: f64) -> f64 {
    w * 8.0 / 1e6
}

fn row_from_plan(plan: &DistPlan, model: &CostModel) -> AlgoRow {
    let with = plan.simulate(model, true);
    let without = plan.simulate(model, false);
    // Communication–computation overlap (§7.3) is COSMA's implementation
    // edge: the published ScaLAPACK/CTF/CARMA implementations do not overlap
    // (the paper additionally notes CARMA's per-step dynamic buffer
    // allocation, §7.5), so their reported time is the non-overlapped one.
    let reported = if plan.algo == AlgoId::Cosma {
        &with
    } else {
        &without
    };
    AlgoRow {
        algo: plan.algo,
        p: plan.problem.p,
        mean_mb: words_to_mb(plan.mean_comm_words()),
        max_mb: words_to_mb(plan.max_comm_words() as f64),
        time_s: reported.time_s,
        time_no_overlap_s: without.time_s,
        percent_peak: reported.percent_peak,
        grid: plan.grid,
        active: plan.active_ranks(),
    }
}

/// The registry the bench harness draws from: all five algorithms with
/// their default configurations.
pub fn registry() -> AlgorithmRegistry {
    baselines::registry()
}

/// Plan `prob` with `algo`, idling ranks the algorithm cannot use.
///
/// When `algo.supports(prob)` rejects the rank count, the largest `p' < p`
/// the algorithm accepts is planned instead and the plan is padded back to
/// `p` ranks with idles (the paper's treatment of CARMA on non-power-of-two
/// machines).
pub fn plan_padded(
    algo: &dyn MmmAlgorithm,
    prob: &MmmProblem,
    model: &CostModel,
) -> Result<DistPlan, PlanError> {
    if algo.supports(prob).is_ok() {
        return algo.plan(prob, model);
    }
    let sub = |p: usize| MmmProblem::new(prob.m, prob.n, prob.k, p, prob.mem_words);
    let p2 = (1..prob.p)
        .rev()
        .find(|&p| algo.supports(&sub(p)).is_ok())
        .ok_or_else(|| algo.supports(prob).unwrap_err())?;
    Ok(algo.plan(&sub(p2), model)?.padded_to(prob.p))
}

/// Plan `prob` with the registry's `id` entry (padding unsupported rank
/// counts), or `None` if the problem is infeasible for the algorithm.
pub fn plan_for(id: AlgoId, prob: &MmmProblem, model: &CostModel) -> Option<DistPlan> {
    let algo = registry().by_id(id).ok()?;
    plan_padded(algo.as_ref(), prob, model).ok()
}

/// Evaluate the compared algorithms on `prob`. Inapplicable or infeasible
/// algorithms are skipped (reported by absence).
pub fn run_all(prob: &MmmProblem, model: &CostModel) -> Vec<AlgoRow> {
    run_with(&compared_algorithms(), prob, model)
}

/// The [`COMPARED`] subset of the registry, in presentation order.
pub fn compared_algorithms() -> Vec<Arc<dyn MmmAlgorithm>> {
    let reg = registry();
    COMPARED
        .iter()
        .map(|&id| reg.by_id(id).expect("registry is complete"))
        .collect()
}

/// [`run_all`] on a machine with a real network shape: every plan is laid
/// out under the *flat* `model` (planning is topology-blind — the paper's
/// decompositions optimize volume, not routes), then simulated with β
/// scaled by the topology's uniform-traffic contention multiplier
/// ([`mpsim::Network::mean_contention`]). Congestion charges every
/// algorithm per word moved, so lower-volume plans gain exactly where the
/// paper's speedup tail lives. The flat topology's multiplier is exactly
/// `1.0`, making this bitwise-identical to [`run_all`].
pub fn run_all_contended(
    prob: &MmmProblem,
    model: &CostModel,
    topology: &Topology,
    placement: Placement,
) -> Vec<AlgoRow> {
    let mult = mpsim::Network::compile(prob.p, topology, placement).mean_contention();
    let contended = model.with_contention(mult);
    compared_algorithms()
        .iter()
        .filter_map(|algo| {
            // Plan under the flat model, evaluate under the contended one.
            let plan = plan_padded(algo.as_ref(), prob, model).ok()?;
            Some(row_from_plan(&plan, &contended))
        })
        .collect()
}

/// Evaluate an explicit algorithm set on `prob`.
pub fn run_with(algos: &[Arc<dyn MmmAlgorithm>], prob: &MmmProblem, model: &CostModel) -> Vec<AlgoRow> {
    algos
        .iter()
        .filter_map(|algo| {
            let plan = plan_padded(algo.as_ref(), prob, model).ok()?;
            Some(row_from_plan(&plan, model))
        })
        .collect()
}

/// One algorithm's end-to-end *executed* outcome on one problem instance:
/// the plan's word-exact prediction next to what the executor actually
/// measured with real messages — the row form of the conformance contract.
#[derive(Debug, Clone)]
pub struct ExecutedRow {
    /// The executed algorithm.
    pub algo: AlgoId,
    /// World size.
    pub p: usize,
    /// Executor that ran the world.
    pub backend: ExecBackend,
    /// Total communication the plan predicts, in MB.
    pub planned_mb: f64,
    /// Total words actually received across ranks, in MB.
    pub measured_mb: f64,
    /// Whether every single rank's measured traffic equals its plan.
    pub exact: bool,
    /// Host wall-clock seconds of the executed run.
    pub wall_s: f64,
    /// Maximum measured per-rank peak working set, in words.
    pub peak_mem_words: u64,
    /// Whether every rank's measured peak stayed within the problem's
    /// per-rank memory `S` — the paper's limited-memory contract.
    pub within_mem: bool,
    /// Simulated wall-clock the plan predicts under the α-β-γ model
    /// (overlap on), in seconds.
    pub planned_time_s: f64,
    /// *Measured* virtual wall-clock of the executed run: the slowest
    /// rank's virtual finish time on the event backend's discrete-event
    /// clock. Zero on the blocking backends, which keep no virtual clock.
    pub measured_time_s: f64,
    /// Measured percent of machine peak (Figures 8/10/13/14's metric, taken
    /// from the virtual clock). Zero when no time was measured.
    pub measured_percent_peak: f64,
    /// Fresh heap allocations the run's buffer arena performed (pool
    /// misses). Observability only — never part of a bitwise gate, because
    /// the hit/miss split depends on scheduling order.
    pub allocs: u64,
    /// Fraction of buffer requests served from the arena's free lists,
    /// in `[0, 1]`. Observability only, like [`ExecutedRow::allocs`].
    pub pool_hit_rate: f64,
}

/// Execute every registry algorithm on `prob` with real data under
/// `backend`, comparing measured traffic against each plan. Algorithms whose
/// rank-count constraints reject `prob.p`, or whose planning reports
/// infeasibility, are skipped (reported by absence, like [`run_all`]).
///
/// # Panics
/// Panics if an accepted execution fails or produces a wrong product —
/// executed rows exist to certify the plans, so a mismatch is a bug, not a
/// data point.
pub fn execute_all(prob: &MmmProblem, model: &CostModel, backend: ExecBackend) -> Vec<ExecutedRow> {
    execute_with(registry().all(), prob, model, backend)
}

/// [`execute_all`] over an explicit algorithm set — e.g. COSMA alone for the
/// `exec_xl` 100k-rank scenario, where running every baseline would
/// multiply the wall-time without adding coverage.
pub fn execute_with(
    algos: &[Arc<dyn MmmAlgorithm>],
    prob: &MmmProblem,
    model: &CostModel,
    backend: ExecBackend,
) -> Vec<ExecutedRow> {
    execute_rows(algos, prob, model, backend, false)
}

/// [`execute_with`] on a machine that *enforces* the problem's `S` as a
/// hard per-rank budget ([`MachineSpec::with_mem_budget`]): only algorithms
/// whose plan passes the full memory validation run, and a run in which any
/// rank's measured peak exceeded `S` (checked on the counters once the
/// world finishes) turns the executor's typed `MemBudgetExceeded` into a
/// panic (executed rows exist to certify the plans). This is the paper's
/// limited-memory regime taken literally — the row set for memory-starved
/// problems, where DFS-streaming CARMA is typically the only entrant.
pub fn execute_budgeted(prob: &MmmProblem, model: &CostModel, backend: ExecBackend) -> Vec<ExecutedRow> {
    execute_rows(registry().all(), prob, model, backend, true)
}

/// [`execute_budgeted`] over an explicit algorithm set — e.g. CARMA alone
/// for the `mem-sweep` budget curve, where executing the other entrants at
/// every budget would multiply the wall-time without adding data points.
pub fn execute_budgeted_with(
    algos: &[Arc<dyn MmmAlgorithm>],
    prob: &MmmProblem,
    model: &CostModel,
    backend: ExecBackend,
) -> Vec<ExecutedRow> {
    execute_rows(algos, prob, model, backend, true)
}

fn execute_rows(
    algos: &[Arc<dyn MmmAlgorithm>],
    prob: &MmmProblem,
    model: &CostModel,
    backend: ExecBackend,
    enforce_mem: bool,
) -> Vec<ExecutedRow> {
    let a = Matrix::deterministic(prob.m, prob.k, 61);
    let b = Matrix::deterministic(prob.k, prob.n, 62);
    let want = matmul(&a, &b);
    let mut spec = MachineSpec::new(prob.p, prob.mem_words, *model);
    if enforce_mem {
        spec = spec.enforcing_memory();
    }
    algos
        .iter()
        .filter_map(|algo| {
            algo.supports(prob).ok()?;
            let plan = algo.plan(prob, model).ok()?;
            if enforce_mem {
                // A budgeted run only admits memory-honest plans.
                plan.validate().ok()?;
            }
            let start = Instant::now();
            let report = execute_boxed_with(algo.as_ref(), &plan, &spec, backend, &a, &b)
                .unwrap_or_else(|e| panic!("{} on p={}: {e}", algo.id(), prob.p));
            let wall_s = start.elapsed().as_secs_f64();
            assert!(
                want.approx_eq(&report.c, 1e-9),
                "{} on p={}: product off by {}",
                algo.id(),
                prob.p,
                want.max_abs_diff(&report.c)
            );
            let exact = report
                .stats
                .iter()
                .enumerate()
                .all(|(r, st)| st.total_recv() == plan.ranks[r].comm_words());
            let peak_mem_words = aggregate::max_peak_mem(&report.stats);
            let measured_time_s = aggregate::machine_time_s(&report.stats);
            Some(ExecutedRow {
                algo: algo.id(),
                p: prob.p,
                backend,
                planned_mb: words_to_mb(plan.total_comm_words() as f64),
                measured_mb: words_to_mb(aggregate::total_volume(&report.stats) as f64),
                exact,
                wall_s,
                peak_mem_words,
                within_mem: peak_mem_words <= prob.mem_words as u64,
                planned_time_s: plan.simulate(model, spec.overlap).time_s,
                measured_time_s,
                measured_percent_peak: mpsim::cost::percent_peak(
                    aggregate::total_flops(&report.stats),
                    prob.p,
                    measured_time_s,
                    model,
                ),
                allocs: report.pool.allocs(),
                pool_hit_rate: report.pool.hit_rate(),
            })
        })
        .collect()
}

/// The stated planned-vs-measured time tolerance: an event-backend run's
/// measured virtual wall-clock must lie within this multiplicative factor
/// of `DistPlan::simulate`'s prediction under the same overlap mode
/// (`planned / FACTOR ≤ measured ≤ planned · FACTOR`).
///
/// Why a factor and not an epsilon: the plan model pipelines each rank's
/// rounds independently, while the discrete-event clock adds the real
/// dependency structure — waiting for late senders, link serialization,
/// barrier skew — and conversely lets transfers hide behind stalls the plan
/// model charges. Both effects are bounded by the round structure, so the
/// two stay within a small constant of each other: on the timed comparison
/// matrix (p ∈ {64, 1024, 16384}) COSMA/CARMA/2.5D measure 1.0–1.45× of
/// plan, and SUMMA — once its panel broadcasts were routed through the
/// pipelined §7.2 binomial trees instead of serialized whole-panel
/// forwarding — sits in the same band. The factor leaves headroom without
/// letting either model drift silently; the >10% regression gate against
/// the committed baseline is the sharp instrument.
pub const TIME_AGREEMENT_FACTOR: f64 = 3.0;

/// One algorithm's planned-vs-measured *time* on one problem instance: the
/// α-β-γ simulation of the plan next to the event backend's virtual clock,
/// in both overlap modes — the row form of the paper's Figures 8–11 closed
/// into a measured loop.
#[derive(Debug, Clone)]
pub struct TimedRow {
    /// The executed algorithm.
    pub algo: AlgoId,
    /// World size.
    pub p: usize,
    /// `DistPlan::simulate` with communication–computation overlap, seconds.
    pub planned_s: f64,
    /// `DistPlan::simulate` without overlap, seconds.
    pub planned_no_overlap_s: f64,
    /// Measured virtual wall-clock with overlap (double buffering), seconds.
    pub measured_s: f64,
    /// Measured virtual wall-clock without overlap, seconds.
    pub measured_no_overlap_s: f64,
    /// Measured percent of machine peak (overlap on).
    pub measured_percent_peak: f64,
}

impl TimedRow {
    /// Measured-over-planned ratio in the overlap mode the paper reports.
    pub fn ratio(&self) -> f64 {
        self.measured_s / self.planned_s
    }

    /// Does the row honour the stated [`TIME_AGREEMENT_FACTOR`] band in
    /// both overlap modes, with overlap-on never slower than overlap-off?
    pub fn agrees(&self) -> bool {
        let within = |measured: f64, planned: f64| {
            measured <= planned * TIME_AGREEMENT_FACTOR && measured >= planned / TIME_AGREEMENT_FACTOR
        };
        within(self.measured_s, self.planned_s)
            && within(self.measured_no_overlap_s, self.planned_no_overlap_s)
            && self.measured_s <= self.measured_no_overlap_s * (1.0 + 1e-9)
    }
}

/// Execute the [`COMPARED`] algorithms on `prob` twice on the event backend
/// (overlap on and off) and put the measured virtual time next to the
/// plan's α-β-γ simulation. Algorithms whose constraints reject `prob.p`
/// are skipped, like [`execute_all`].
///
/// # Panics
/// Panics if an accepted execution fails or produces a wrong product.
pub fn time_all(prob: &MmmProblem, model: &CostModel) -> Vec<TimedRow> {
    time_all_topo(prob, model, &Topology::Flat, Placement::Block)
}

/// [`time_all`] under an explicit [`Topology`]/[`Placement`]: the measured
/// columns carry that machine shape's contention; the planned columns are
/// still the flat α-β-γ simulation (the plan model is topology-blind — the
/// gap between the two *is* the contention signal the `topo` experiment
/// reports).
pub fn time_all_topo(
    prob: &MmmProblem,
    model: &CostModel,
    topology: &Topology,
    placement: Placement,
) -> Vec<TimedRow> {
    let a = Matrix::deterministic(prob.m, prob.k, 61);
    let b = Matrix::deterministic(prob.k, prob.n, 62);
    compared_algorithms()
        .iter()
        .filter_map(|algo| {
            algo.supports(prob).ok()?;
            let plan = algo.plan(prob, model).ok()?;
            let mut measured = [0.0f64; 2];
            let mut peak = 0.0f64;
            for (i, overlap) in [true, false].into_iter().enumerate() {
                let spec = MachineSpec::new(prob.p, prob.mem_words, *model)
                    .with_overlap(overlap)
                    .with_topology(topology.clone())
                    .with_placement(placement);
                let report = execute_boxed_with(algo.as_ref(), &plan, &spec, ExecBackend::event(), &a, &b)
                    .unwrap_or_else(|e| panic!("{} on p={}: {e}", algo.id(), prob.p));
                measured[i] = aggregate::machine_time_s(&report.stats);
                if overlap {
                    peak = mpsim::cost::percent_peak(
                        aggregate::total_flops(&report.stats),
                        prob.p,
                        measured[i],
                        model,
                    );
                }
            }
            Some(TimedRow {
                algo: algo.id(),
                p: prob.p,
                planned_s: plan.simulate(model, true).time_s,
                planned_no_overlap_s: plan.simulate(model, false).time_s,
                measured_s: measured[0],
                measured_no_overlap_s: measured[1],
                measured_percent_peak: peak,
            })
        })
        .collect()
}

/// Speedup of COSMA over the fastest other algorithm (> 1 means COSMA wins).
pub fn cosma_speedup(rows: &[AlgoRow]) -> Option<f64> {
    let cosma = rows.iter().find(|r| r.algo == AlgoId::Cosma)?;
    let best_other = rows
        .iter()
        .filter(|r| r.algo != AlgoId::Cosma)
        .map(|r| r.time_s)
        .fold(f64::INFINITY, f64::min);
    best_other.is_finite().then(|| best_other / cosma.time_s)
}

/// Geometric mean helper.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Quartile summary (min, q1, median, q3, max) of a sample.
pub fn five_numbers(xs: &[f64]) -> [f64; 5] {
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let q = |f: f64| -> f64 {
        if v.is_empty() {
            return f64::NAN;
        }
        let idx = f * (v.len() - 1) as f64;
        let lo = idx.floor() as usize;
        let hi = idx.ceil() as usize;
        v[lo] + (v[hi] - v[lo]) * (idx - lo as f64)
    };
    [q(0.0), q(0.25), q(0.5), q(0.75), q(1.0)]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::piz_daint_two_sided()
    }

    #[test]
    fn run_all_produces_all_four_on_friendly_p() {
        let prob = MmmProblem::new(4096, 4096, 4096, 1024, 1 << 22);
        let rows = run_all(&prob, &model());
        let algos: Vec<AlgoId> = rows.iter().map(|r| r.algo).collect();
        assert_eq!(algos, COMPARED.to_vec());
        for r in &rows {
            assert!(r.mean_mb > 0.0 && r.time_s > 0.0 && r.percent_peak > 0.0, "{r:?}");
            assert!(r.time_no_overlap_s >= r.time_s);
        }
    }

    #[test]
    fn carma_padding_on_non_power_of_two() {
        let prob = MmmProblem::new(2048, 2048, 2048, 1500, 1 << 22);
        let plan = plan_for(AlgoId::Carma, &prob, &model()).unwrap();
        assert_eq!(plan.ranks.len(), 1500);
        assert_eq!(plan.active_ranks(), 1024);
        assert!(plan.validate_coverage().is_ok());
    }

    #[test]
    fn cannon_padding_on_non_square() {
        // plan_padded is algorithm-agnostic: Cannon pads to the largest
        // perfect square the same way CARMA pads to the power of two.
        let prob = MmmProblem::new(512, 512, 512, 30, 1 << 18);
        let algo = registry().by_id(AlgoId::Cannon).unwrap();
        let plan = plan_padded(algo.as_ref(), &prob, &model()).unwrap();
        assert_eq!(plan.ranks.len(), 30);
        assert_eq!(plan.active_ranks(), 25);
        assert!(plan.validate_coverage().is_ok());
    }

    #[test]
    fn executed_rows_certify_plans_on_both_backends() {
        let prob = MmmProblem::new(48, 48, 48, 16, 1 << 14);
        for backend in [ExecBackend::Threaded, ExecBackend::Sharded { workers: 3 }] {
            let rows = execute_all(&prob, &model(), backend);
            assert!(!rows.is_empty(), "{backend}: no algorithm executed");
            for r in &rows {
                assert!(r.exact, "{backend}: {} measured traffic deviates from plan", r.algo);
                assert!((r.planned_mb - r.measured_mb).abs() < 1e-12, "{backend}: {}", r.algo);
            }
        }
    }

    #[test]
    fn budgeted_rows_stay_within_s_on_a_memory_starved_problem() {
        // S below the pure-BFS CARMA leaf footprint: the budgeted runner
        // enforces S as a hard limit, and DFS-streaming CARMA completes
        // within it with plan-exact traffic.
        let prob = MmmProblem::new(64, 64, 64, 8, 1 << 10);
        assert!(baselines::carma::dfs_leaf_count(&prob) > 1);
        let rows = execute_budgeted(&prob, &model(), ExecBackend::Threaded);
        let carma = rows.iter().find(|r| r.algo == AlgoId::Carma).expect("CARMA runs budgeted");
        assert!(carma.exact, "budgeted CARMA traffic deviates from plan");
        assert!(carma.within_mem && carma.peak_mem_words <= 1 << 10, "{carma:?}");
    }

    #[test]
    fn executed_rows_report_peak_memory() {
        let prob = MmmProblem::new(48, 48, 48, 16, 1 << 14);
        for row in execute_all(&prob, &model(), ExecBackend::Threaded) {
            assert!(row.peak_mem_words > 0, "{}: no memory tracked", row.algo);
            assert!(row.within_mem, "{}: exceeded ample S", row.algo);
        }
    }

    #[test]
    fn executed_rows_carry_arena_counters() {
        let prob = MmmProblem::new(48, 48, 48, 16, 1 << 14);
        for row in execute_all(&prob, &model(), ExecBackend::Threaded) {
            assert!(row.allocs > 0, "{}: a run always allocates something", row.algo);
            assert!(
                (0.0..=1.0).contains(&row.pool_hit_rate),
                "{}: hit rate {} out of range",
                row.algo,
                row.pool_hit_rate
            );
        }
    }

    #[test]
    fn executed_rows_measure_time_on_the_event_backend() {
        let prob = MmmProblem::new(48, 48, 48, 16, 1 << 14);
        for row in execute_all(&prob, &model(), ExecBackend::event()) {
            assert!(row.measured_time_s > 0.0, "{}: no virtual time measured", row.algo);
            assert!(row.measured_percent_peak > 0.0, "{}", row.algo);
            assert!(row.planned_time_s > 0.0, "{}", row.algo);
        }
        // Blocking backends keep no virtual clock: measured time stays zero.
        for row in execute_all(&prob, &model(), ExecBackend::Threaded) {
            assert_eq!(row.measured_time_s, 0.0, "{}", row.algo);
            assert_eq!(row.measured_percent_peak, 0.0, "{}", row.algo);
        }
    }

    #[test]
    fn timed_rows_agree_with_the_plan_within_the_stated_tolerance() {
        // The in-test form of the bench-smoke time gate: measured virtual
        // time within TIME_AGREEMENT_FACTOR of DistPlan::simulate, overlap
        // on never slower than off, on the whole comparison matrix.
        let prob = MmmProblem::new(64, 64, 64, 16, 1 << 14);
        let rows = time_all(&prob, &model());
        assert_eq!(rows.len(), COMPARED.len(), "all compared algorithms must time");
        for r in &rows {
            assert!(
                r.agrees(),
                "{}: measured {:.3e}/{:.3e} s vs planned {:.3e}/{:.3e} s breaks the band",
                r.algo,
                r.measured_s,
                r.measured_no_overlap_s,
                r.planned_s,
                r.planned_no_overlap_s
            );
        }
    }

    #[test]
    fn contended_rows_flat_is_bitwise_run_all_and_fat_tree_costs_time() {
        let prob = MmmProblem::new(4096, 4096, 4096, 256, 1 << 22);
        let m = model();
        let flat = run_all(&prob, &m);
        let same = run_all_contended(&prob, &m, &Topology::Flat, Placement::Block);
        let fat = run_all_contended(&prob, &m, &Topology::congested_fat_tree(), Placement::Block);
        assert_eq!(flat.len(), same.len());
        assert_eq!(flat.len(), fat.len());
        for ((a, b), c) in flat.iter().zip(&same).zip(&fat) {
            assert_eq!(a.time_s.to_bits(), b.time_s.to_bits(), "{}: flat must be bitwise", a.algo);
            assert_eq!(a.time_no_overlap_s.to_bits(), b.time_no_overlap_s.to_bits(), "{}", a.algo);
            assert!(c.time_s > a.time_s, "{}: contention must cost time", a.algo);
            assert_eq!(a.mean_mb, c.mean_mb, "{}: volume is topology-blind", a.algo);
        }
    }

    #[test]
    fn cosma_speedup_positive() {
        let prob = MmmProblem::new(4096, 4096, 4096, 512, 1 << 20);
        let rows = run_all(&prob, &model());
        let s = cosma_speedup(&rows).unwrap();
        assert!(s > 0.5, "speedup {s}");
    }

    #[test]
    fn geomean_and_quartiles() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        let f = five_numbers(&[3.0, 1.0, 2.0, 4.0, 5.0]);
        assert_eq!(f, [1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!(geomean(&[]).is_nan());
    }
}
