//! The paper's benchmark scenarios (§8): four matrix shapes × three memory
//! regimes, with a Piz-Daint-like per-core memory `S`.
//!
//! * **strong scaling** — fixed problem, growing `p`;
//! * **limited memory** — `pS/I = const` (`I = mn + mk + nk`): the problem
//!   grows with `p` so the input footprint per core stays fixed and no
//!   redundant input copies fit;
//! * **extra memory** — `p^(2/3)·S/I = const`: the footprint per core
//!   *shrinks* with `p`, leaving room for `~p^(1/3)` replicas.
//!
//! The tall-and-skinny dimensions derive from the paper's RPA benchmark
//! (`m = n = 136w`, `k = 228w²`). The largeK scaling-law coefficients below
//! reconstruct the figure captions (`m = n = 979·p^(1/3)`,
//! `k ≈ 1.184·10⁴·p^(2/3)`; the 10⁴ scale is implicit in the paper's text
//! but follows from the strong-scaling instance at `p = 2048`).

use cosma::api::RunSession;
use cosma::problem::{MmmProblem, Shape};
use mpsim::cost::CostModel;

/// Piz-Daint-like per-core memory: 64 GiB per 36-core node in 8-byte words.
pub const S_WORDS: usize = 64 * 1024 * 1024 * 1024 / 36 / 8;

/// Memory regime of a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Regime {
    /// Fixed problem size.
    StrongScaling,
    /// `pS/I` constant.
    LimitedMemory,
    /// `p^(2/3)·S/I` constant.
    ExtraMemory,
}

impl Regime {
    /// Short id used in CSV files.
    pub fn id(&self) -> &'static str {
        match self {
            Regime::StrongScaling => "strong",
            Regime::LimitedMemory => "limited",
            Regime::ExtraMemory => "extra",
        }
    }
}

/// One of the paper's twelve benchmark scenarios.
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    /// Short id: `square-strong`, `largek-limited`, …
    pub id: &'static str,
    /// Matrix shape class.
    pub shape: Shape,
    /// Memory regime.
    pub regime: Regime,
    /// Build the problem instance for `p` cores.
    pub problem: fn(usize) -> MmmProblem,
}

impl Scenario {
    /// A [`RunSession`] for this scenario at `p` cores: Piz-Daint-like cost
    /// model, full five-algorithm registry. Chain `.algorithm(..)` and
    /// `.run()` to evaluate.
    pub fn session(&self, p: usize) -> RunSession {
        RunSession::new((self.problem)(p))
            .machine(CostModel::piz_daint_two_sided())
            .registry(baselines::registry())
    }
}

fn isqrt(x: f64) -> usize {
    x.sqrt().floor().max(1.0) as usize
}

// --- square ---------------------------------------------------------------

fn square_strong(p: usize) -> MmmProblem {
    MmmProblem::new(16_384, 16_384, 16_384, p, S_WORDS)
}

fn square_limited(p: usize) -> MmmProblem {
    // n = sqrt(pS/3): the three matrices exactly fill the collective memory.
    let n = isqrt(p as f64 * S_WORDS as f64 / 3.0);
    MmmProblem::new(n, n, n, p, S_WORDS)
}

fn square_extra(p: usize) -> MmmProblem {
    let n = isqrt((p as f64).powf(2.0 / 3.0) * S_WORDS as f64 / 3.0);
    MmmProblem::new(n, n, n, p, S_WORDS)
}

// --- largeK (the RPA tall-and-skinny shape) --------------------------------

fn largek_strong(p: usize) -> MmmProblem {
    MmmProblem::rpa_water(128, p, S_WORDS)
}

fn largek_limited(p: usize) -> MmmProblem {
    let mn = (979.0 * (p as f64).cbrt()) as usize;
    let k = (1.184e4 * (p as f64).powf(2.0 / 3.0)) as usize;
    MmmProblem::new(mn.max(1), mn.max(1), k.max(1), p, S_WORDS)
}

fn largek_extra(p: usize) -> MmmProblem {
    let mn = (979.0 * (p as f64).powf(2.0 / 9.0)) as usize;
    let k = (1.184e4 * (p as f64).powf(4.0 / 9.0)) as usize;
    MmmProblem::new(mn.max(1), mn.max(1), k.max(1), p, S_WORDS)
}

// --- largeM (mirror of largeK) ----------------------------------------------

fn largem_strong(p: usize) -> MmmProblem {
    MmmProblem::new(3_735_552, 17_408, 17_408, p, S_WORDS)
}

fn largem_limited(p: usize) -> MmmProblem {
    let nk = (979.0 * (p as f64).cbrt()) as usize;
    let m = (1.184e4 * (p as f64).powf(2.0 / 3.0)) as usize;
    MmmProblem::new(m.max(1), nk.max(1), nk.max(1), p, S_WORDS)
}

fn largem_extra(p: usize) -> MmmProblem {
    let nk = (979.0 * (p as f64).powf(2.0 / 9.0)) as usize;
    let m = (1.184e4 * (p as f64).powf(4.0 / 9.0)) as usize;
    MmmProblem::new(m.max(1), nk.max(1), nk.max(1), p, S_WORDS)
}

// --- flat (rank-k update) ---------------------------------------------------

fn flat_strong(p: usize) -> MmmProblem {
    MmmProblem::new(131_072, 131_072, 512, p, S_WORDS)
}

fn flat_limited(p: usize) -> MmmProblem {
    let n = isqrt(p as f64 * S_WORDS as f64 / 3.0);
    MmmProblem::new(n, n, 256, p, S_WORDS)
}

fn flat_extra(p: usize) -> MmmProblem {
    let n = isqrt((p as f64).powf(2.0 / 3.0) * S_WORDS as f64 / 3.0);
    MmmProblem::new(n, n, 256, p, S_WORDS)
}

/// All twelve scenarios of the paper's evaluation.
pub fn all() -> Vec<Scenario> {
    use Regime::*;
    vec![
        Scenario {
            id: "square-strong",
            shape: Shape::Square,
            regime: StrongScaling,
            problem: square_strong,
        },
        Scenario {
            id: "square-limited",
            shape: Shape::Square,
            regime: LimitedMemory,
            problem: square_limited,
        },
        Scenario {
            id: "square-extra",
            shape: Shape::Square,
            regime: ExtraMemory,
            problem: square_extra,
        },
        Scenario {
            id: "largek-strong",
            shape: Shape::LargeK,
            regime: StrongScaling,
            problem: largek_strong,
        },
        Scenario {
            id: "largek-limited",
            shape: Shape::LargeK,
            regime: LimitedMemory,
            problem: largek_limited,
        },
        Scenario {
            id: "largek-extra",
            shape: Shape::LargeK,
            regime: ExtraMemory,
            problem: largek_extra,
        },
        Scenario {
            id: "largem-strong",
            shape: Shape::LargeM,
            regime: StrongScaling,
            problem: largem_strong,
        },
        Scenario {
            id: "largem-limited",
            shape: Shape::LargeM,
            regime: LimitedMemory,
            problem: largem_limited,
        },
        Scenario {
            id: "largem-extra",
            shape: Shape::LargeM,
            regime: ExtraMemory,
            problem: largem_extra,
        },
        Scenario {
            id: "flat-strong",
            shape: Shape::Flat,
            regime: StrongScaling,
            problem: flat_strong,
        },
        Scenario {
            id: "flat-limited",
            shape: Shape::Flat,
            regime: LimitedMemory,
            problem: flat_limited,
        },
        Scenario {
            id: "flat-extra",
            shape: Shape::Flat,
            regime: ExtraMemory,
            problem: flat_extra,
        },
    ]
}

/// Look up a scenario by id.
pub fn by_id(id: &str) -> Option<Scenario> {
    all().into_iter().find(|s| s.id == id)
}

/// The core counts of the communication-volume figures (Figures 6–7).
pub fn comm_core_counts() -> Vec<usize> {
    vec![128, 256, 512, 1024, 2048]
}

/// Realistic allocation sizes for the topology experiment: whole Piz Daint
/// XC40 nodes (36 cores each — 2×18-core Xeons, the machine behind
/// [`mpsim::cost::CostModel::piz_daint_two_sided`]) at natural node counts.
/// None is a power of two or a perfect `g²·c`, which is the paper's §1
/// point: real allocations rarely match the baselines' rank-count
/// requirements, so CARMA pads down to a power of two (idling up to half
/// the machine) and 2.5D pads to its nearest grid, while COSMA decomposes
/// any `p` exactly.
pub fn allocation_core_counts() -> Vec<usize> {
    // 6, 12, 24, 48 and 96 nodes of 36 cores.
    vec![216, 432, 864, 1728, 3456]
}

/// End-to-end executable instances of the four shape classes: the same
/// shapes as the paper scenarios, scaled so the full matrices fit in one
/// test process while `p` still reaches paper-like rank counts. Used by the
/// `exec` experiment, which runs them with real messages (threaded backend
/// up to 512 ranks, sharded beyond) and holds the measured counters against
/// the plan.
pub fn exec_problem(shape: Shape, p: usize) -> MmmProblem {
    match shape {
        Shape::Square => MmmProblem::new(256, 256, 256, p, 1 << 20),
        Shape::LargeK => MmmProblem::new(64, 64, 4096, p, 1 << 20),
        Shape::LargeM => MmmProblem::new(4096, 64, 64, p, 1 << 20),
        Shape::Flat => MmmProblem::new(512, 512, 32, p, 1 << 20),
        // No pairwise-close dimension pair: classifies as Irregular.
        Shape::Irregular => MmmProblem::new(320, 80, 1024, p, 1 << 20),
    }
}

/// The core counts of the executed (`exec`) experiment: one per executor
/// regime — small threaded, at-the-cap threaded, and sharded beyond the cap
/// up to the paper's 4096 ranks.
pub fn exec_core_counts() -> Vec<usize> {
    vec![64, 512, 1024, 4096]
}

/// The core counts of the `exec_xl` experiment: worlds only the
/// event-driven stackless executor can hold (every rank is a resumable
/// state machine costing bytes, not a carrier thread). The largest matches
/// the acceptance criterion of the executor redesign: p = 131072
/// end-to-end with real messages.
pub fn exec_xl_core_counts() -> Vec<usize> {
    vec![16_384, 65_536, 131_072]
}

/// The `exec_xl` problem instance at `p` cores: the square executable shape
/// with a per-rank memory small enough that planning stays fast at 100k+
/// ranks while every rank still owns work.
pub fn exec_xl_problem(p: usize) -> MmmProblem {
    MmmProblem::new(256, 256, 256, p, 1 << 12)
}

/// The core counts of the `exec_xxl` experiment: the million-rank regime of
/// the parallel event scheduler. The largest is the acceptance criterion of
/// the scheduler shard-up: p = 2^20 end-to-end with plan-exact traffic.
pub fn exec_xxl_core_counts() -> Vec<usize> {
    vec![262_144, 1_048_576]
}

/// The scheduler thread counts swept by the `exec_xxl` experiment. Thread
/// count 1 is the single-threaded reference every parallel run must match
/// bitwise on counters and virtual times.
pub fn exec_xxl_thread_counts() -> Vec<usize> {
    vec![1, 2, 4, 8]
}

/// A memory-starved executable instance: the square shape with a per-rank
/// `S` small enough that pure-BFS CARMA's leaf working set no longer fits,
/// forcing the sequential DFS prefix. Used by the `mem-sweep` experiment
/// and the bench-smoke gate's budget-enforced conformance case.
pub fn mem_starved_problem(p: usize, mem_words: usize) -> MmmProblem {
    MmmProblem::new(128, 128, 128, p, mem_words)
}

/// The per-rank memory sweep of the `mem-sweep` experiment, ample → starved
/// (words). At p = 64 the pure-BFS leaf footprint of the 128³ instance is
/// 3072 words, so the lower budgets force 2, 4 and 8 sequential DFS leaves
/// — the paper's limited-memory regime in executable miniature.
pub fn mem_sweep_budgets() -> Vec<usize> {
    vec![1 << 14, 1 << 12, 3072, 2048, 1280, 1 << 10]
}

/// The core counts of the `timed` experiment (planned-vs-measured virtual
/// time): one threaded-scale world, one at the paper's mid range, and one
/// only the event executor can hold — every count a power of two and a
/// perfect square, so the whole COSMA / SUMMA / 2.5D / CARMA comparison
/// matrix runs at each.
pub fn timed_core_counts() -> Vec<usize> {
    vec![64, 1024, 16_384]
}

/// The core counts of the performance figures (Figures 8–11), including
/// non-powers-of-two to expose decomposition instability.
pub fn perf_core_counts() -> Vec<usize> {
    vec![256, 512, 1000, 1024, 2048, 3072, 4096, 6000, 9216, 16384, 18432]
}

/// largeK/largeM strong scaling needs at least 2048 cores for the inputs to
/// fit, like the paper (§9, "the minimum number of cores is 2048").
pub fn strong_scaling_min_cores(s: &Scenario) -> usize {
    match (s.shape, s.regime) {
        (Shape::LargeK | Shape::LargeM, Regime::StrongScaling) => 2048,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_scenarios_with_right_shapes() {
        let s = all();
        assert_eq!(s.len(), 12);
        for sc in &s {
            let prob = (sc.problem)(2048);
            assert_eq!(prob.shape(), sc.shape, "{}", sc.id);
            assert!(prob.fits_collective_memory(), "{} does not fit at p=2048", sc.id);
        }
    }

    #[test]
    fn limited_memory_keeps_footprint_per_core_constant() {
        let sc = by_id("square-limited").unwrap();
        let footprint = |p: usize| {
            let prob = (sc.problem)(p);
            let (a, b, c) = prob.matrix_words();
            (a + b + c) as f64 / p as f64
        };
        let f1 = footprint(512);
        let f2 = footprint(4096);
        assert!((f1 / f2 - 1.0).abs() < 0.02, "{f1} vs {f2}");
    }

    #[test]
    fn extra_memory_footprint_shrinks_per_core() {
        let sc = by_id("largek-extra").unwrap();
        let footprint = |p: usize| {
            let prob = (sc.problem)(p);
            let (a, b, c) = prob.matrix_words();
            (a + b + c) as f64 / p as f64
        };
        assert!(footprint(4096) < footprint(512) * 0.6);
    }

    #[test]
    fn strong_scaling_instances_fixed() {
        let sc = by_id("largek-strong").unwrap();
        let p1 = (sc.problem)(2048);
        let p2 = (sc.problem)(18432);
        assert_eq!((p1.m, p1.n, p1.k), (p2.m, p2.n, p2.k));
        assert_eq!(p1.m, 17_408);
        assert_eq!(p1.k, 3_735_552);
    }

    #[test]
    fn sessions_plan_through_the_registry() {
        use cosma::api::AlgoId;
        let sc = by_id("square-strong").unwrap();
        let outcome = sc.session(512).algorithm(AlgoId::Summa).run().unwrap();
        assert_eq!(outcome.plan.algo, AlgoId::Summa);
        assert!(outcome.report.time_s > 0.0);
    }

    #[test]
    fn exec_problems_classify_and_fit() {
        for shape in [
            Shape::Square,
            Shape::LargeK,
            Shape::LargeM,
            Shape::Flat,
            Shape::Irregular,
        ] {
            for &p in &exec_core_counts() {
                let prob = exec_problem(shape, p);
                assert_eq!(prob.shape(), shape, "{shape:?} at p={p}");
                assert!(prob.fits_collective_memory(), "{shape:?} at p={p}");
            }
        }
    }

    #[test]
    fn mem_sweep_spans_both_regimes() {
        let budgets = scenarios_sorted();
        let leaf_counts: Vec<usize> = budgets
            .iter()
            .map(|&s| baselines::carma::dfs_leaf_count(&mem_starved_problem(64, s)))
            .collect();
        // Ample budgets stay pure-BFS; the starved end forces DFS leaves.
        assert_eq!(leaf_counts[0], 1, "largest budget must be ample");
        assert!(*leaf_counts.last().unwrap() > 1, "smallest budget must starve");
        // Monotone: shrinking S never removes DFS steps.
        assert!(leaf_counts.windows(2).all(|w| w[0] <= w[1]), "{leaf_counts:?}");
    }

    fn scenarios_sorted() -> Vec<usize> {
        let mut budgets = mem_sweep_budgets();
        budgets.sort_unstable_by(|a, b| b.cmp(a));
        budgets
    }

    #[test]
    fn ids_resolve() {
        for sc in all() {
            assert_eq!(by_id(sc.id).unwrap().id, sc.id);
        }
        assert!(by_id("nope").is_none());
    }
}
