//! Benchmarks of the serving layer (`crates/serve`): planning throughput
//! cold vs cached, and executed-jobs/s under a mixed concurrent stream.
//!
//! The mixed stream is deterministic: a fixed roster of unique
//! `(problem, AlgoChoice)` combinations — three world sizes × four
//! choice/shape variants, spanning auto selection over the full registry
//! and tenant-restricted subsets, so at least three different algorithms
//! win — cycled to the requested job count. Repeats share a
//! [`PlanKey`], so a served stream exercises both the cold and the cached
//! planning path; every concurrent result is compared bitwise against the
//! same job run serially.

use std::collections::HashSet;
use std::time::Instant;

use cosma::api::AlgoId;
use cosma::problem::MmmProblem;
use densemat::matrix::Matrix;
use mpsim::cost::CostModel;
use mpsim::exec::ExecBackend;
use serve::{AlgoChoice, AutoPlanner, JobRequest, PlanCache, PlanKey, Server, ServerConfig};

/// The unique `(problem, choice)` roster of the mixed stream.
///
/// Twelve combinations: `p ∈ {4, 8, 16}` × four variants — a square and a
/// large-k problem under full auto selection, plus a square problem under
/// two tenant-restricted pairs (the 2D classics, the recursive/replicating
/// pair). The restricted pairs guarantee the stream's winners span at
/// least three algorithms even where COSMA would sweep an open field.
pub fn unique_combos() -> Vec<(MmmProblem, AlgoChoice)> {
    let mut out = Vec::new();
    for p in [4usize, 8, 16] {
        let square = MmmProblem::new(64, 64, 64, p, 1 << 14);
        let largek = MmmProblem::new(32, 32, 256, p, 1 << 14);
        out.push((square, AlgoChoice::Auto));
        out.push((largek, AlgoChoice::Auto));
        out.push((square, AlgoChoice::Among(vec![AlgoId::Summa, AlgoId::Cannon])));
        out.push((square, AlgoChoice::Among(vec![AlgoId::P25d, AlgoId::Carma])));
    }
    out
}

/// The mixed stream: `n` jobs cycling over [`unique_combos`], ids `0..n`,
/// per-job deterministic operand matrices (seeded by id, so repeats of a
/// plan key still multiply different data). `backend` pins every job's
/// execution backend when set (the `--backend` flag).
pub fn mixed_stream(n: usize, backend: Option<ExecBackend>) -> Vec<JobRequest> {
    let combos = unique_combos();
    (0..n as u64)
        .map(|id| {
            let (prob, choice) = combos[id as usize % combos.len()].clone();
            let a = Matrix::deterministic(prob.m, prob.k, 1000 + 2 * id);
            let b = Matrix::deterministic(prob.k, prob.n, 1001 + 2 * id);
            let mut job = JobRequest::new(id, prob, a, b).choice(choice);
            job.backend = backend;
            job
        })
        .collect()
}

/// What one serving benchmark run measured.
#[derive(Debug, Clone)]
pub struct ServeMetrics {
    /// Jobs in the mixed stream.
    pub jobs: usize,
    /// Distinct plan keys in the stream.
    pub unique_keys: usize,
    /// Cold planning throughput: full auto-planner selections per second
    /// (every candidate planned and scored, no cache).
    pub cold_plans_per_s: f64,
    /// Cached planning throughput: plan-cache lookups per second on a warm
    /// cache.
    pub cached_plans_per_s: f64,
    /// Concurrent serving throughput of the mixed stream, jobs per second.
    pub jobs_per_s: f64,
    /// The same stream served one job at a time, jobs per second.
    pub serial_jobs_per_s: f64,
    /// Plan-cache hits during the concurrent stream.
    pub hits: u64,
    /// Plan-cache misses during the concurrent stream.
    pub misses: u64,
    /// Hit rate of the concurrent stream, in `[0, 1]`.
    pub hit_rate: f64,
    /// Every algorithm the auto-planner selected, ascending.
    pub algos_selected: Vec<AlgoId>,
    /// Whether every concurrent job's product and per-rank counters were
    /// bitwise-identical to the same job served serially.
    pub all_match_serial: bool,
}

impl ServeMetrics {
    /// Cached-over-cold planning speedup.
    pub fn plan_speedup(&self) -> f64 {
        self.cached_plans_per_s / self.cold_plans_per_s
    }
}

/// Run the serving benchmark: time cold and cached planning over the
/// roster, then serve an `n_jobs` mixed stream concurrently and serially,
/// comparing every result bitwise.
///
/// # Panics
/// Panics when any job of the stream fails — the stream is sized to be
/// feasible by construction, so a failure is a bug.
pub fn measure(n_jobs: usize, backend: Option<ExecBackend>) -> ServeMetrics {
    let model = CostModel::piz_daint_two_sided();
    let combos = unique_combos();
    let planner = AutoPlanner::new(baselines::registry());

    // Cold planning: full selections (plan + score every candidate), no
    // cache. Enough repetitions to dominate timer noise.
    let cold_reps = 8;
    let start = Instant::now();
    for _ in 0..cold_reps {
        for (prob, choice) in &combos {
            planner.select(prob, &model, true, choice).expect("roster plans");
        }
    }
    let cold_plans_per_s = (cold_reps * combos.len()) as f64 / start.elapsed().as_secs_f64();

    // Cached planning: the same keys on a warm cache.
    let cache = PlanCache::new(8, 256);
    let keys: Vec<PlanKey> = combos
        .iter()
        .map(|(prob, choice)| {
            PlanKey::try_new(
                prob,
                &model,
                true,
                None,
                choice,
                &mpsim::machine::Topology::Flat,
                mpsim::machine::Placement::Block,
            )
            .expect("finite model")
        })
        .collect();
    for (key, (prob, choice)) in keys.iter().zip(&combos) {
        cache
            .get_or_try_insert_with(*key, || planner.select(prob, &model, true, choice))
            .expect("warm the cache");
    }
    let cached_lookups = 50_000;
    let start = Instant::now();
    for i in 0..cached_lookups {
        let hit = cache.get(&keys[i % keys.len()]).expect("warm key");
        assert_eq!(hit.plan.problem.p, combos[i % keys.len()].0.p);
    }
    let cached_plans_per_s = cached_lookups as f64 / start.elapsed().as_secs_f64();

    // The concurrent stream.
    let config = ServerConfig {
        drivers: 4,
        ..ServerConfig::default()
    };
    let server = Server::new(baselines::registry(), config).unwrap();
    let jobs = mixed_stream(n_jobs, backend);
    let start = Instant::now();
    let concurrent = server.run_batch(jobs.clone());
    let jobs_per_s = n_jobs as f64 / start.elapsed().as_secs_f64();
    let stats = server.cache_stats();

    // The same stream, one job at a time on a fresh server (its own cold
    // cache, so the comparison is stream-for-stream).
    let serial_server = Server::new(baselines::registry(), config).unwrap();
    let start = Instant::now();
    let serial: Vec<_> = jobs.into_iter().map(|job| serial_server.run_sync(job)).collect();
    let serial_jobs_per_s = n_jobs as f64 / start.elapsed().as_secs_f64();

    let mut algos_selected: Vec<AlgoId> = Vec::new();
    let mut all_match_serial = true;
    for (c, s) in concurrent.iter().zip(&serial) {
        assert_eq!(c.id, s.id);
        let c = c.outcome.as_ref().expect("stream jobs are feasible");
        let s = s.outcome.as_ref().expect("stream jobs are feasible");
        if !algos_selected.contains(&c.selection.algo) {
            algos_selected.push(c.selection.algo);
        }
        all_match_serial &= c.report.c == s.report.c
            && c.report.stats == s.report.stats
            && c.selection == s.selection
            && *c.plan == *s.plan;
    }
    algos_selected.sort();

    ServeMetrics {
        jobs: n_jobs,
        unique_keys: keys.iter().collect::<HashSet<_>>().len().min(n_jobs),
        cold_plans_per_s,
        cached_plans_per_s,
        jobs_per_s,
        serial_jobs_per_s,
        hits: stats.hits,
        misses: stats.misses,
        hit_rate: stats.hit_rate(),
        algos_selected,
        all_match_serial,
    }
}

/// The plans of the roster, for reuse in tests: each combo's winning
/// algorithm under the default model.
pub fn roster_selections() -> Vec<(MmmProblem, AlgoChoice, AlgoId)> {
    let model = CostModel::piz_daint_two_sided();
    let planner = AutoPlanner::new(baselines::registry());
    unique_combos()
        .into_iter()
        .map(|(prob, choice)| {
            let algo = planner
                .select(&prob, &model, true, &choice)
                .expect("roster plans")
                .selection
                .algo;
            (prob, choice, algo)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_spans_at_least_three_algorithms() {
        let mut winners: Vec<AlgoId> = roster_selections().into_iter().map(|(_, _, algo)| algo).collect();
        winners.sort();
        winners.dedup();
        assert!(winners.len() >= 3, "winners: {winners:?}");
    }

    #[test]
    fn mixed_stream_repeats_keys() {
        let jobs = mixed_stream(64, None);
        assert_eq!(jobs.len(), 64);
        let model = CostModel::piz_daint_two_sided();
        let keys: HashSet<PlanKey> = jobs
            .iter()
            .map(|j| {
                PlanKey::try_new(
                    &j.prob,
                    &model,
                    j.overlap,
                    j.mem_budget,
                    &j.choice,
                    &j.topology,
                    j.placement,
                )
                .expect("finite model")
            })
            .collect();
        assert_eq!(keys.len(), unique_combos().len());
        assert!(keys.len() < 64, "64 jobs over {} keys repeat", keys.len());
    }
}
