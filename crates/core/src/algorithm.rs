//! The executable COSMA algorithm (Algorithm 1 of the paper).
//!
//! [`plan`] materializes the full distributed schedule: grid from
//! [`crate::grid::fit_ranks`], per-rank `[l_m × l_n × l_k]` bricks,
//! latency-optimal round structure from [`crate::schedule::latency_steps`],
//! and exact per-round communication volumes (log-depth all-gathers of A
//! along j-fibers and of B along i-fibers — `DistrData` — plus a balanced ring
//! reduce-scatter of C along k-fibers — `Reduce`; the output stays
//! distributed in COSMA's blocked layout, §7.6).
//!
//! [`execute`] interprets the same schedule on an [`mpsim`] machine with real
//! messages and real matrix blocks. The body is a resumable (`async`) rank
//! program over [`RankComm`], so it runs unchanged on the threaded, sharded
//! and event-driven executors, in either communication backend of §7.4:
//!
//! * **two-sided** — Bruck (log-depth) all-gathers over tagged sends/receives;
//! * **one-sided** — every rank publishes its owned shards in an RMA window
//!   once (one fence for the epoch), then peers `get` exactly the chunks each
//!   round needs; the C reduce-scatter stays message-based (as in the paper,
//!   where collectives remain MPI even in the RMA configuration).
//!
//! Both backends move exactly the words the plan predicts — the integration
//! tests assert equality against the mpiP-style counters.

use densemat::gemm::gemm_packed;
use densemat::layout::even_splits;
use densemat::matrix::Matrix;
use mpsim::collectives::{allgather_bruck, even_chunk_ranges, reduce_scatter_ring};
use mpsim::comm::RankComm;
use mpsim::cost::CostModel;
use mpsim::stats::Phase;

use crate::api::{AlgoId, PlanError};
use crate::grid::{fit_ranks, Grid3};
use crate::plan::{Brick, DistPlan, RankPlan, Round};
use crate::problem::MmmProblem;
use crate::schedule::latency_steps;
use crate::treecount;

/// Communication backend (§7.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Message passing: Bruck all-gathers over send/recv.
    #[default]
    TwoSided,
    /// RMA: publish shards in windows, peers `get` what they need.
    OneSided,
}

/// Tunables of the COSMA run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CosmaConfig {
    /// Maximum fraction of ranks grid fitting may idle (paper: 3%).
    pub delta: f64,
    /// Communication backend.
    pub backend: Backend,
}

impl Default for CosmaConfig {
    fn default() -> Self {
        CosmaConfig {
            delta: 0.03,
            backend: Backend::TwoSided,
        }
    }
}

/// The contiguous range of `idx`-th of `parts` balanced pieces of `0..total`.
pub fn even_range(total: usize, parts: usize, idx: usize) -> std::ops::Range<usize> {
    let splits = even_splits(total, parts);
    splits[idx]..splits[idx + 1]
}

/// Build the COSMA [`DistPlan`] for `prob`.
///
/// Prefer [`crate::api::RunSession`] or [`crate::api::CosmaAlgorithm`]; this
/// free function is the implementation they call.
pub fn plan(prob: &MmmProblem, cfg: &CosmaConfig, model: &CostModel) -> Result<DistPlan, PlanError> {
    let fit = fit_ranks(prob, cfg.delta, model)?;
    let grid = fit.grid;
    let mut ranks = Vec::with_capacity(prob.p);
    for rank in 0..prob.p {
        if rank >= grid.size() {
            ranks.push(RankPlan::idle(rank));
            continue;
        }
        let (im, jn, ik) = grid.coords_of(rank);
        let rows = even_range(prob.m, grid.gm, im);
        let cols = even_range(prob.n, grid.gn, jn);
        let ks = even_range(prob.k, grid.gk, ik);
        let (lm, ln, lk) = (rows.len(), cols.len(), ks.len());
        let sp = latency_steps(lm, ln, lk, prob.mem_words)
            .expect("fit_ranks only returns grids whose ceil domain fits memory");
        // At paper scale a rank can have millions of communication steps;
        // the plan groups consecutive steps into at most MAX_PLAN_ROUNDS
        // buckets. All totals (words, messages, flops) stay exact; only the
        // pipeline granularity of the time model is coarsened.
        let buckets = sp.steps.clamp(1, MAX_PLAN_ROUNDS);
        let per_bucket = sp.steps.div_ceil(buckets);
        let mut rounds = Vec::with_capacity(buckets + 1);
        let mut max_slab = 0usize;
        for chunk in sp.slabs.chunks(per_bucket) {
            let mut acc = Round::default();
            for &w in chunk {
                max_slab = max_slab.max(w);
                // A slab (lm x w): columns owned in balanced chunks along the
                // j-fiber; this rank owns chunk `jn` and receives the rest.
                let a_own_cols = even_range(w, grid.gn, jn).len();
                acc.a_words += (lm * (w - a_own_cols)) as u64;
                // B slab (w x ln): rows owned along the i-fiber.
                let b_own_rows = even_range(w, grid.gm, im).len();
                acc.b_words += ((w - b_own_rows) * ln) as u64;
                acc.msgs +=
                    treecount::allgather_bruck_msgs(grid.gn) + treecount::allgather_bruck_msgs(grid.gm);
                acc.flops += 2 * (lm * ln * w) as u64;
            }
            rounds.push(acc);
        }
        if grid.gk > 1 {
            // Ring reduce-scatter of the C tile along the k-fiber: every
            // member receives the tile minus its own position's chunk and
            // adds each received word once. C stays distributed in COSMA's
            // blocked layout (§7.6) — no tree-root hotspot.
            let tile = lm * ln;
            let own_chunk = even_chunk_ranges(tile, grid.gk)[ik].len();
            let c_words = (tile - own_chunk) as u64;
            rounds.push(Round {
                a_words: 0,
                b_words: 0,
                c_words,
                msgs: (grid.gk - 1) as u64,
                flops: c_words,
            });
        }
        let mem_words = (lm * ln + 2 * max_slab * (lm + ln)) as u64;
        ranks.push(RankPlan {
            rank,
            active: true,
            coords: [im, jn, ik],
            bricks: vec![Brick { rows, cols, ks }],
            rounds,
            mem_words,
        });
    }
    Ok(DistPlan {
        algo: AlgoId::Cosma,
        problem: *prob,
        grid: [grid.gm, grid.gn, grid.gk],
        ranks,
    })
}

/// Maximum number of plan rounds per rank; longer step sequences are grouped
/// (totals exact, pipeline granularity coarsened).
pub const MAX_PLAN_ROUNDS: usize = 4096;

/// Tag layout: rounds are spaced widely enough that the ring steps of
/// adjacent rounds and matrices can never collide.
const TAG_STRIDE: u64 = 1 << 16;
const REDUCE_TAG: u64 = u64::MAX / 2;

/// A rank's share of the output: its C tile region and — when the k-fiber
/// reduce-scattered the tile — the owned slice of the flattened
/// (row-major) tile. [`assemble_c`] recombines shares into a full matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CPart {
    /// Tile rows in C.
    pub rows: std::ops::Range<usize>,
    /// Tile cols in C.
    pub cols: std::ops::Range<usize>,
    /// Word offset of the owned slice within the flattened tile.
    pub offset: usize,
    /// The owned, fully reduced words.
    pub data: Vec<f64>,
}

/// Assemble a full `m × n` C matrix from the ranks' [`CPart`] shares.
///
/// Shares *accumulate*: parts covering the same C words add up. Fully
/// reduced algorithms return disjoint parts (adding into zeros is exact
/// assignment); memory-budgeted CARMA returns one part per sequential DFS
/// leaf, and the k-split leaves of one rank carry partial sums of the same
/// C region that only become the product once summed here.
pub fn assemble_c(parts: impl IntoIterator<Item = CPart>, m: usize, n: usize) -> Matrix {
    let mut c = Matrix::zeros(m, n);
    for part in parts {
        let width = part.cols.len();
        for (w, &v) in part.data.iter().enumerate() {
            let flat = part.offset + w;
            let (i, j) = (part.rows.start + flat / width, part.cols.start + flat % width);
            c.set(i, j, c.get(i, j) + v);
        }
    }
    c
}

/// Execute a COSMA plan on the calling rank.
///
/// Every rank reads its *owned* shards from the globally shared `a`/`b`
/// (modeling the paper's assumption that inputs start distributed in the
/// blocked layout of §7.6 — no communication is charged for them) and then
/// performs the planned rounds with real messages. Returns every active
/// rank's [`CPart`] output share (`None` for idle ranks); C remains
/// distributed in COSMA's blocked layout.
///
/// # Panics
/// Panics if the plan does not belong to this world size.
pub async fn execute(
    comm: &mut RankComm,
    plan: &DistPlan,
    cfg: &CosmaConfig,
    a: &Matrix,
    b: &Matrix,
) -> Option<CPart> {
    assert_eq!(plan.problem.p, comm.size(), "plan/world size mismatch");
    let grid = Grid3 {
        gm: plan.grid[0],
        gn: plan.grid[1],
        gk: plan.grid[2],
    };
    let rp = &plan.ranks[comm.rank()];

    // One-sided backend: a single epoch — everyone (idle ranks included)
    // publishes its shards, fences once, then peers pull chunks on demand.
    if cfg.backend == Backend::OneSided {
        if rp.active {
            let window = build_window(plan, rp, a, b);
            comm.track_alloc(window.len() as u64);
            comm.win_fill(window);
        } else {
            comm.win_resize(0);
        }
        comm.fence().await;
    }
    if !rp.active {
        return None;
    }

    let [im, jn, ik] = rp.coords;
    let brick = &rp.bricks[0];
    let (rows, cols, ks) = (brick.rows.clone(), brick.cols.clone(), brick.ks.clone());
    let (lm, ln, lk) = (rows.len(), cols.len(), ks.len());
    let sp = latency_steps(lm, ln, lk, plan.problem.mem_words).expect("plan was feasible");
    let mut c_local = Matrix::zeros(lm, ln);
    comm.track_alloc((lm * ln) as u64);

    for (round, slab) in sp.slab_ranges().into_iter().enumerate() {
        let w = slab.len();
        let ks_lo = ks.start + slab.start;
        // --- DistrData: assemble the A slab (lm x w) ---
        let a_slab = match cfg.backend {
            Backend::TwoSided => {
                let own = even_range(w, grid.gn, jn);
                let mine = a.block(rows.clone(), ks_lo + own.start..ks_lo + own.end).into_vec();
                let sizes: Vec<usize> = (0..grid.gn).map(|j| lm * even_range(w, grid.gn, j).len()).collect();
                let chunks = allgather_bruck(
                    comm,
                    &grid.j_group(im, ik),
                    mine,
                    &sizes,
                    2 * round as u64 * TAG_STRIDE,
                    Phase::InputA,
                )
                .await;
                assemble_col_chunks(lm, w, grid.gn, &chunks)
            }
            Backend::OneSided => {
                gather_chunks_rma(comm, plan, &grid, GatherWhat::A, im, jn, ik, round, lm, w)
            }
        };
        // --- DistrData: assemble the B slab (w x ln) ---
        let b_slab = match cfg.backend {
            Backend::TwoSided => {
                let own = even_range(w, grid.gm, im);
                let mine = b.block(ks_lo + own.start..ks_lo + own.end, cols.clone()).into_vec();
                let sizes: Vec<usize> = (0..grid.gm).map(|i| even_range(w, grid.gm, i).len() * ln).collect();
                let chunks = allgather_bruck(
                    comm,
                    &grid.i_group(jn, ik),
                    mine,
                    &sizes,
                    (2 * round as u64 + 1) * TAG_STRIDE,
                    Phase::InputB,
                )
                .await;
                assemble_row_chunks(w, ln, grid.gm, &chunks)
            }
            Backend::OneSided => {
                gather_chunks_rma(comm, plan, &grid, GatherWhat::B, im, jn, ik, round, ln, w)
            }
        };
        // --- Multiply ---
        gemm_packed(&a_slab, &b_slab, &mut c_local);
        comm.record_flops(2 * (lm * ln * w) as u64);
    }

    // --- Reduce: ring reduce-scatter of the C tile along the k-fiber ---
    if grid.gk > 1 {
        let group = grid.k_group(im, jn);
        let tile = lm * ln;
        let mut data = c_local.into_vec();
        let (own_idx, chunk) = reduce_scatter_ring(comm, &group, &mut data, REDUCE_TAG, Phase::OutputC).await;
        let own_words = even_chunk_ranges(tile, grid.gk)[ik].len();
        comm.record_flops((tile - own_words) as u64);
        let offset = even_chunk_ranges(tile, grid.gk)[own_idx].start;
        return Some(CPart {
            rows,
            cols,
            offset,
            data: chunk,
        });
    }
    Some(CPart {
        rows,
        cols,
        offset: 0,
        data: c_local.into_vec(),
    })
}

/// Which matrix an RMA gather assembles.
#[derive(Clone, Copy, PartialEq)]
enum GatherWhat {
    A,
    B,
}

/// The RMA window content of one rank: its A chunks for every round, then
/// its B chunks for every round, all row-major flattened.
fn build_window(plan: &DistPlan, rp: &RankPlan, a: &Matrix, b: &Matrix) -> Vec<f64> {
    let grid = Grid3 {
        gm: plan.grid[0],
        gn: plan.grid[1],
        gk: plan.grid[2],
    };
    let [im, jn, _ik] = rp.coords;
    let brick = &rp.bricks[0];
    let (rows, cols, ks) = (brick.rows.clone(), brick.cols.clone(), brick.ks.clone());
    let sp = latency_steps(rows.len(), cols.len(), ks.len(), plan.problem.mem_words).expect("feasible plan");
    let mut window = Vec::new();
    for slab in sp.slab_ranges() {
        let w = slab.len();
        let own = even_range(w, grid.gn, jn);
        let ks_lo = ks.start + slab.start;
        window.extend(a.block(rows.clone(), ks_lo + own.start..ks_lo + own.end).into_vec());
    }
    for slab in sp.slab_ranges() {
        let w = slab.len();
        let own = even_range(w, grid.gm, im);
        let ks_lo = ks.start + slab.start;
        window.extend(b.block(ks_lo + own.start..ks_lo + own.end, cols.clone()).into_vec());
    }
    window
}

/// Byte offset (in words) of a given round's A or B chunk inside a peer's
/// window, mirroring [`build_window`]'s layout.
fn window_offset(
    plan: &DistPlan,
    peer_coords: [usize; 3],
    peer_brick: &Brick,
    what: GatherWhat,
    round: usize,
) -> usize {
    let grid = Grid3 {
        gm: plan.grid[0],
        gn: plan.grid[1],
        gk: plan.grid[2],
    };
    let [im, jn, _] = peer_coords;
    let (lm, ln, lk) = (peer_brick.rows.len(), peer_brick.cols.len(), peer_brick.ks.len());
    let sp = latency_steps(lm, ln, lk, plan.problem.mem_words).expect("feasible plan");
    let mut offset = 0usize;
    let a_total: usize = sp.slabs.iter().map(|&w| lm * even_range(w, grid.gn, jn).len()).sum();
    match what {
        GatherWhat::A => {
            for &w in sp.slabs.iter().take(round) {
                offset += lm * even_range(w, grid.gn, jn).len();
            }
        }
        GatherWhat::B => {
            offset = a_total;
            for &w in sp.slabs.iter().take(round) {
                offset += even_range(w, grid.gm, im).len() * ln;
            }
        }
    }
    offset
}

/// Pull one round's chunks from every fiber peer via RMA `get` and assemble
/// the slab matrix.
#[allow(clippy::too_many_arguments)]
fn gather_chunks_rma(
    comm: &mut RankComm,
    plan: &DistPlan,
    grid: &Grid3,
    what: GatherWhat,
    im: usize,
    jn: usize,
    ik: usize,
    round: usize,
    edge: usize,
    w: usize,
) -> Matrix {
    let (group, parts, phase) = match what {
        GatherWhat::A => (grid.j_group(im, ik), grid.gn, Phase::InputA),
        GatherWhat::B => (grid.i_group(jn, ik), grid.gm, Phase::InputB),
    };
    let my_pos = match what {
        GatherWhat::A => jn,
        GatherWhat::B => im,
    };
    let mut chunks: Vec<Vec<f64>> = Vec::with_capacity(parts);
    for (pos, &peer) in group.iter().enumerate() {
        let own = even_range(w, parts, pos);
        let words = match what {
            GatherWhat::A => edge * own.len(),
            GatherWhat::B => own.len() * edge,
        };
        if pos == my_pos {
            let off = window_offset(plan, plan.ranks[peer].coords, &plan.ranks[peer].bricks[0], what, round);
            chunks.push(comm.win_read_local(off, words));
        } else {
            let off = window_offset(plan, plan.ranks[peer].coords, &plan.ranks[peer].bricks[0], what, round);
            chunks.push(comm.get(peer, off, words, phase));
        }
    }
    match what {
        GatherWhat::A => assemble_col_chunks(edge, w, parts, &chunks),
        GatherWhat::B => assemble_row_chunks(w, edge, parts, &chunks),
    }
}

/// Assemble an `lm x w` matrix from `parts` column-chunk payloads (chunk `j`
/// holds the balanced `j`-th column range, row-major).
fn assemble_col_chunks(lm: usize, w: usize, parts: usize, chunks: &[Vec<f64>]) -> Matrix {
    let mut out = Matrix::zeros(lm, w);
    for (pos, chunk) in chunks.iter().enumerate() {
        let r = even_range(w, parts, pos);
        if r.is_empty() {
            continue;
        }
        let block = Matrix::from_vec(lm, r.len(), chunk.clone());
        out.set_block(0, r.start, &block);
    }
    out
}

/// Assemble a `w x ln` matrix from `parts` row-chunk payloads.
fn assemble_row_chunks(w: usize, ln: usize, parts: usize, chunks: &[Vec<f64>]) -> Matrix {
    let mut out = Matrix::zeros(w, ln);
    for (pos, chunk) in chunks.iter().enumerate() {
        let r = even_range(w, parts, pos);
        if r.is_empty() {
            continue;
        }
        let block = Matrix::from_vec(r.len(), ln, chunk.clone());
        out.set_block(r.start, 0, &block);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use densemat::gemm::matmul;
    use mpsim::exec::{run_spmd_with, ExecBackend};
    use mpsim::machine::MachineSpec;

    fn check_cosma(m: usize, n: usize, k: usize, p: usize, s: usize, backend: Backend) {
        let prob = MmmProblem::new(m, n, k, p, s);
        let model = CostModel::piz_daint_two_sided();
        let cfg = CosmaConfig { delta: 0.03, backend };
        let dplan = plan(&prob, &cfg, &model).expect("plan");
        dplan.validate().expect("valid plan");
        let a = Matrix::deterministic(m, k, 11);
        let b = Matrix::deterministic(k, n, 22);
        let want = matmul(&a, &b);
        let spec = MachineSpec::piz_daint_with_memory(p, s);
        let (dplan_r, cfg_r, a_r, b_r) = (&dplan, &cfg, &a, &b);
        let out = run_spmd_with(&spec, ExecBackend::Threaded, |mut comm| async move {
            execute(&mut comm, dplan_r, cfg_r, a_r, b_r).await
        })
        .expect("threaded run accepted");
        // Assemble C from every active rank's share.
        let parts: Vec<CPart> = out.results.into_iter().flatten().collect();
        assert_eq!(parts.len(), dplan.active_ranks(), "one share per active rank");
        let c = assemble_c(parts, m, n);
        assert!(
            want.approx_eq(&c, 1e-9),
            "{m}x{n}x{k} p={p} S={s} {backend:?}: wrong product, max diff {}",
            want.max_abs_diff(&c)
        );
        // Measured traffic equals the plan, rank by rank.
        for (r, st) in out.stats.iter().enumerate() {
            assert_eq!(
                st.total_recv(),
                dplan.ranks[r].comm_words(),
                "rank {r} traffic mismatch ({backend:?})"
            );
        }
    }

    #[test]
    fn cosma_correct_various_shapes_two_sided() {
        check_cosma(16, 16, 16, 4, 4096, Backend::TwoSided);
        check_cosma(24, 18, 30, 6, 4096, Backend::TwoSided);
        check_cosma(17, 19, 23, 5, 4096, Backend::TwoSided); // primes everywhere
        check_cosma(8, 8, 64, 8, 256, Backend::TwoSided); // largeK, k-split
        check_cosma(64, 8, 8, 8, 4096, Backend::TwoSided); // largeM
        check_cosma(32, 32, 4, 8, 4096, Backend::TwoSided); // flat
    }

    #[test]
    fn cosma_correct_one_sided() {
        check_cosma(16, 16, 16, 4, 4096, Backend::OneSided);
        check_cosma(12, 20, 28, 6, 2048, Backend::OneSided);
        check_cosma(8, 8, 64, 8, 256, Backend::OneSided);
    }

    #[test]
    fn cosma_single_rank_is_local_gemm() {
        check_cosma(10, 12, 14, 1, 4096, Backend::TwoSided);
    }

    #[test]
    fn cosma_tight_memory_multi_round() {
        // Force several communication rounds: tile 8x8=64, slack for few cols.
        check_cosma(16, 16, 32, 4, 64 + 2 * 16 * 2, Backend::TwoSided);
    }

    #[test]
    fn plan_rounds_match_latency_steps() {
        let prob = MmmProblem::new(64, 64, 256, 16, 600);
        let model = CostModel::piz_daint_two_sided();
        let cfg = CosmaConfig::default();
        let dplan = plan(&prob, &cfg, &model).unwrap();
        for rp in dplan.ranks.iter().filter(|r| r.active) {
            let b = &rp.bricks[0];
            let sp = latency_steps(b.rows.len(), b.cols.len(), b.ks.len(), prob.mem_words).unwrap();
            let comm_rounds = rp.rounds.iter().filter(|r| r.c_words == 0).count();
            assert_eq!(comm_rounds, sp.steps, "rank {}", rp.rank);
        }
    }

    #[test]
    fn plan_memory_within_budget() {
        let prob = MmmProblem::new(128, 96, 512, 12, 2000);
        let model = CostModel::piz_daint_two_sided();
        let dplan = plan(&prob, &CosmaConfig::default(), &model).unwrap();
        assert_eq!(dplan.validate(), Ok(()));
        for rp in &dplan.ranks {
            assert!(rp.mem_words <= prob.mem_words as u64, "rank {}", rp.rank);
        }
    }

    #[test]
    fn plan_flops_cover_problem() {
        let prob = MmmProblem::new(40, 40, 40, 8, 4096);
        let model = CostModel::piz_daint_two_sided();
        let dplan = plan(&prob, &CosmaConfig::default(), &model).unwrap();
        let vol: u64 = dplan.ranks.iter().map(|r| r.volume()).sum();
        assert_eq!(vol, prob.volume());
    }

    #[test]
    fn idle_rank_with_prime_p() {
        // p = 7 on a cube: dropping ranks must still compute correctly.
        check_cosma(24, 24, 24, 7, 4096, Backend::TwoSided);
    }
}
