//! Closed-form COSMA costs (Eq. 33, Table 3 row 4, §6.3 trade-off).
//!
//! These are the analytic counterparts of the measured plan volumes; the
//! `table3` experiment prints both side by side, and tests check that the
//! measured plan stays within the analytic envelope.

use crate::problem::MmmProblem;
use crate::schedule::optimal_domain;

/// Eq. 33: COSMA's per-rank I/O cost
/// `Q = min{2mnk/(p√S) + S, 3(mnk/p)^(2/3)}`, selected by regime like the
/// bound of Theorem 2 (`a = min(√S, (mnk/p)^(1/3))` decides the branch).
pub fn io_cost(prob: &MmmProblem) -> f64 {
    let d = optimal_domain(prob);
    // Q = 2ab + a² with the optimal a, b.
    2.0 * d.a * d.b + d.a * d.a
}

/// The latency cost of the I/O-optimal schedule (§6.3):
/// `L = ⌈2ab/(S − a²)⌉` communication rounds (two all-gather waves each).
pub fn latency_cost(prob: &MmmProblem) -> f64 {
    let d = optimal_domain(prob);
    let s = prob.mem_words as f64;
    let denom = (s - d.a * d.a).max(2.0 * d.a); // feasible schedules keep a² < S
    (2.0 * d.a * d.b / denom).ceil()
}

/// The I/O–latency trade-off of §6.3: for a tile edge `a ≤ √S`, the schedule
/// pays `Q(a) = 2·(mnk/p)/a + a²` words and `L(a) = 2·(mnk/p)/(a·(S − a²))`
/// rounds. Returns `(Q, L)`.
pub fn io_latency_tradeoff(prob: &MmmProblem, a: f64) -> (f64, f64) {
    assert!(a > 0.0, "tile edge must be positive");
    let s = prob.mem_words as f64;
    assert!(a * a < s, "tile must leave room for buffers (a² < S)");
    let per_domain = prob.volume() as f64 / prob.p as f64;
    let q = 2.0 * per_domain / a + a * a;
    let l = 2.0 * per_domain / (a * (s - a * a));
    (q, l)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebbles::bounds::theorem2_parallel_bound;

    #[test]
    fn io_cost_matches_theorem2_in_both_regimes() {
        // Limited memory: mnk/p = 2^30 >= S^{3/2} with S = 2^16.
        let limited = MmmProblem::new(1 << 12, 1 << 12, 1 << 12, 64, 1 << 16);
        let q = io_cost(&limited);
        let bound = theorem2_parallel_bound(limited.m, limited.n, limited.k, limited.p, limited.mem_words);
        assert!((q - bound).abs() / bound < 1e-9, "limited: {q} vs {bound}");
        // Extra memory: cubic branch.
        let extra = MmmProblem::new(1 << 12, 1 << 12, 1 << 12, 64, 1 << 26);
        let q = io_cost(&extra);
        let bound = theorem2_parallel_bound(extra.m, extra.n, extra.k, extra.p, extra.mem_words);
        assert!((q - bound).abs() / bound < 1e-9, "extra: {q} vs {bound}");
    }

    #[test]
    fn latency_positive_and_shrinks_with_memory() {
        let tight = MmmProblem::new(1 << 10, 1 << 10, 1 << 10, 8, 1 << 14);
        let roomy = MmmProblem::new(1 << 10, 1 << 10, 1 << 10, 8, 1 << 22);
        assert!(latency_cost(&tight) >= 1.0);
        assert!(latency_cost(&roomy) <= latency_cost(&tight));
    }

    #[test]
    fn tradeoff_monotonicity() {
        // Growing a lowers Q (up to sqrt(S)) and raises... L decreases in a
        // too until a² approaches S, where the shrinking buffer blows L up.
        let prob = MmmProblem::new(1 << 10, 1 << 10, 1 << 10, 8, 10_000);
        let (q1, _l1) = io_latency_tradeoff(&prob, 20.0);
        let (q2, _l2) = io_latency_tradeoff(&prob, 60.0);
        assert!(q2 < q1, "bigger tiles move fewer words");
        // Near the memory limit the latency term explodes.
        let (_, l_edge) = io_latency_tradeoff(&prob, 99.0);
        let (_, l_mid) = io_latency_tradeoff(&prob, 60.0);
        assert!(l_edge > l_mid);
    }

    #[test]
    #[should_panic(expected = "room for buffers")]
    fn tradeoff_rejects_oversized_tile() {
        let prob = MmmProblem::new(64, 64, 64, 2, 100);
        let _ = io_latency_tradeoff(&prob, 10.0);
    }
}
