//! The unified algorithm API: one trait, one error type, one entry point.
//!
//! The paper's whole evaluation method is "every algorithm produces the same
//! [`DistPlan`] and is measured identically" (§9). This module makes that
//! contract a first-class type instead of a convention:
//!
//! * [`MmmAlgorithm`] — the trait every distributed MMM algorithm implements:
//!   typed identity ([`AlgoId`]), capability queries
//!   ([`MmmAlgorithm::supports`]), exact planning
//!   ([`MmmAlgorithm::plan`]) and real execution
//!   ([`MmmAlgorithm::execute`]) with mpiP-style measured counters. Rank
//!   bodies are resumable ([`MmmAlgorithm::execute_rank`] returns a
//!   [`RankFuture`]), so one body runs on every [`ExecBackend`]: threaded
//!   (≤ 512 ranks), sharded worker-pool (a few thousand ranks) or
//!   event-driven stackless state machines (any world size — verified to
//!   p = 131072).
//! * [`PlanError`] — the single error enum for everything that can go wrong
//!   between "here is a problem" and "here is a validated plan": structural
//!   plan defects, grid infeasibility, per-algorithm rank-count constraints
//!   (Cannon's perfect square, CARMA's power of two), registry misses and
//!   configuration mistakes.
//! * [`AlgorithmRegistry`] — a set of boxed algorithms with per-algorithm
//!   default configurations. [`AlgorithmRegistry::core`] holds COSMA alone;
//!   the `baselines` crate's `registry()` adds the four comparison
//!   algorithms of §9.
//! * [`RunSession`] — a builder that takes a problem to a plan, a simulated
//!   [`SimReport`], or a verified threaded execution in one fluent chain:
//!
//! ```
//! use cosma::api::{AlgoId, RunSession};
//! use cosma::problem::MmmProblem;
//! use mpsim::cost::CostModel;
//!
//! let prob = MmmProblem::new(96, 80, 128, 16, 4096);
//! let outcome = RunSession::new(prob)
//!     .machine(CostModel::piz_daint_two_sided())
//!     .algorithm(AlgoId::Cosma)
//!     .run()
//!     .expect("feasible problem");
//! assert!(outcome.report.time_s > 0.0);
//! ```

use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::str::FromStr;
use std::sync::Arc;

use densemat::gemm::matmul;
use densemat::matrix::Matrix;
use mpsim::comm::RankComm;
use mpsim::cost::CostModel;
use mpsim::exec::{run_spmd_pooled, run_spmd_with, ExecBackend, ExecError, SchedulerPool};
use mpsim::machine::{MachineSpec, Placement, Topology};
use mpsim::pool::PoolStats;
use mpsim::stats::RankStats;

use crate::algorithm::{self, assemble_c, Backend, CPart, CosmaConfig};
use crate::grid::FitError;
use crate::plan::{DistPlan, SimReport};
use crate::problem::MmmProblem;

// ---------------------------------------------------------------------------
// Algorithm identity
// ---------------------------------------------------------------------------

/// Typed identifier of a distributed MMM algorithm.
///
/// Replaces the stringly `&'static str` ids that used to float between the
/// plans, the bench runner and the CSV files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AlgoId {
    /// COSMA (§3–§7): schedule first, grid second.
    Cosma,
    /// SUMMA (van de Geijn & Watts '97) — the ScaLAPACK `pdgemm` stand-in.
    Summa,
    /// Cannon's algorithm ('69): square grid, skew + ring shifts.
    Cannon,
    /// The 2.5D decomposition (Solomonik & Demmel '11) — the CTF stand-in.
    P25d,
    /// CARMA (Demmel et al. '13): BFS recursive splitting.
    Carma,
}

impl AlgoId {
    /// Every id, in the paper's presentation order.
    pub const ALL: [AlgoId; 5] = [
        AlgoId::Cosma,
        AlgoId::Summa,
        AlgoId::Cannon,
        AlgoId::P25d,
        AlgoId::Carma,
    ];

    /// Canonical lower-case name (used in tables, CSV files and CLIs).
    pub fn as_str(&self) -> &'static str {
        match self {
            AlgoId::Cosma => "cosma",
            AlgoId::Summa => "summa",
            AlgoId::Cannon => "cannon",
            AlgoId::P25d => "p25d",
            AlgoId::Carma => "carma",
        }
    }

    /// The library the algorithm stands in for in the paper's figures, if
    /// any ("scalapack" for SUMMA, "ctf" for 2.5D).
    pub fn paper_stand_in(&self) -> Option<&'static str> {
        match self {
            AlgoId::Summa => Some("scalapack"),
            AlgoId::P25d => Some("ctf"),
            _ => None,
        }
    }
}

impl fmt::Display for AlgoId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for AlgoId {
    type Err = PlanError;

    /// Parse a canonical name or a paper alias (`scalapack`, `ctf`, `2.5d`).
    fn from_str(s: &str) -> Result<Self, PlanError> {
        match s.to_ascii_lowercase().as_str() {
            "cosma" => Ok(AlgoId::Cosma),
            "summa" | "scalapack" => Ok(AlgoId::Summa),
            "cannon" => Ok(AlgoId::Cannon),
            "p25d" | "2.5d" | "ctf" => Ok(AlgoId::P25d),
            "carma" => Ok(AlgoId::Carma),
            _ => Err(PlanError::UnknownAlgorithm { name: s.to_string() }),
        }
    }
}

// ---------------------------------------------------------------------------
// The unified error type
// ---------------------------------------------------------------------------

/// A rank-count constraint an algorithm imposes on `p`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankRequirement {
    /// `p = q²` (Cannon).
    PerfectSquare,
    /// `p = 2^L` (CARMA).
    PowerOfTwo,
}

impl RankRequirement {
    /// Does `p` satisfy the requirement?
    pub fn accepts(&self, p: usize) -> bool {
        match self {
            RankRequirement::PerfectSquare => {
                let q = (p as f64).sqrt().round() as usize;
                q * q == p
            }
            RankRequirement::PowerOfTwo => p.is_power_of_two(),
        }
    }

    /// [`accepts`](Self::accepts) as a typed check: the single source of
    /// the [`PlanError::UnsupportedRanks`] errors that `supports()` and the
    /// planners report.
    pub fn check(&self, algo: AlgoId, p: usize) -> Result<(), PlanError> {
        if self.accepts(p) {
            Ok(())
        } else {
            Err(PlanError::UnsupportedRanks {
                algo,
                p,
                requires: *self,
            })
        }
    }
}

impl fmt::Display for RankRequirement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RankRequirement::PerfectSquare => write!(f, "a perfect-square rank count"),
            RankRequirement::PowerOfTwo => write!(f, "a power-of-two rank count"),
        }
    }
}

/// Everything that can go wrong between a problem statement and a validated,
/// executable plan.
///
/// Consolidates the former `FitError` (COSMA grid fitting), `BaselineError`
/// (baseline planners) and the structural plan-validation errors into one
/// enum, so every layer of the stack speaks the same error language.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// Some iteration-space point is covered zero or multiple times.
    BadCoverage {
        /// Sum of brick volumes over active ranks.
        covered: u64,
        /// Required volume `m·n·k`.
        required: u64,
    },
    /// Two active ranks' bricks overlap.
    Overlap {
        /// First rank.
        a: usize,
        /// Second rank.
        b: usize,
    },
    /// A brick exceeds the iteration-space bounds.
    OutOfBounds {
        /// Offending rank.
        rank: usize,
    },
    /// A rank's working set exceeds the per-rank memory `S`.
    MemoryExceeded {
        /// Offending rank.
        rank: usize,
        /// Its planned working set.
        need: u64,
        /// The per-rank memory.
        have: u64,
    },
    /// No decomposition of any admissible size fits the per-rank memory.
    NoFeasibleGrid,
    /// The algorithm cannot decompose for this rank count at all.
    UnsupportedRanks {
        /// The constrained algorithm.
        algo: AlgoId,
        /// The offered rank count.
        p: usize,
        /// What the algorithm requires of `p`.
        requires: RankRequirement,
    },
    /// The registry has no implementation for the requested id.
    NotRegistered {
        /// The missing algorithm.
        algo: AlgoId,
    },
    /// A plan was executed on a machine of the wrong size.
    WorldSizeMismatch {
        /// Ranks the plan was built for.
        plan_ranks: usize,
        /// Ranks of the executing machine.
        world_ranks: usize,
    },
    /// A name failed to parse as an [`AlgoId`].
    UnknownAlgorithm {
        /// The unparsable name.
        name: String,
    },
    /// A configuration knob was applied to an algorithm it does not fit.
    InvalidConfig {
        /// The algorithm the knob was applied to.
        algo: AlgoId,
        /// What went wrong.
        reason: &'static str,
    },
    /// The selected execution backend refused the world (e.g. the threaded
    /// executor's rank cap — pick [`ExecBackend::Sharded`],
    /// [`ExecBackend::Event`] or [`ExecBackend::auto`] for larger worlds).
    Execution {
        /// The executor's typed refusal.
        source: ExecError,
    },
    /// A machine parameter (cost-model constant or topology factor) is NaN —
    /// it cannot be canonicalized into a cache key, and no plan objective
    /// could order candidates under it.
    NonFiniteCostModel {
        /// Which parameter was NaN.
        field: &'static str,
    },
    /// The job was abandoned before it could run to completion — e.g. the
    /// serving layer shut down with the job still queued, or its driver
    /// thread died mid-flight. The job may be safely resubmitted.
    Aborted {
        /// Why the job never completed.
        reason: &'static str,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::BadCoverage { covered, required } => {
                write!(f, "bricks cover {covered} of {required} iteration-space points")
            }
            PlanError::Overlap { a, b } => write!(f, "bricks of ranks {a} and {b} overlap"),
            PlanError::OutOfBounds { rank } => {
                write!(f, "rank {rank} has a brick outside the iteration space")
            }
            PlanError::MemoryExceeded { rank, need, have } => {
                write!(f, "rank {rank} needs {need} words but has {have}")
            }
            PlanError::NoFeasibleGrid => write!(f, "no feasible decomposition fits the per-rank memory"),
            PlanError::UnsupportedRanks { algo, p, requires } => {
                write!(f, "{algo} requires {requires}; p = {p} is not")
            }
            PlanError::NotRegistered { algo } => {
                write!(
                    f,
                    "algorithm {algo} is not in the registry (the full set lives in baselines::registry())"
                )
            }
            PlanError::WorldSizeMismatch {
                plan_ranks,
                world_ranks,
            } => {
                write!(f, "plan built for {plan_ranks} ranks executed on a {world_ranks}-rank machine")
            }
            PlanError::UnknownAlgorithm { name } => write!(f, "unknown algorithm name: {name:?}"),
            PlanError::InvalidConfig { algo, reason } => {
                write!(f, "invalid configuration for {algo}: {reason}")
            }
            PlanError::Execution { source } => write!(f, "execution backend refused: {source}"),
            PlanError::NonFiniteCostModel { field } => {
                write!(f, "machine parameter {field} is NaN and cannot be canonicalized")
            }
            PlanError::Aborted { reason } => {
                write!(f, "job aborted before completion: {reason}")
            }
        }
    }
}

impl std::error::Error for PlanError {}

impl From<FitError> for PlanError {
    fn from(e: FitError) -> Self {
        match e {
            FitError::NoFeasibleGrid => PlanError::NoFeasibleGrid,
        }
    }
}

impl From<ExecError> for PlanError {
    fn from(source: ExecError) -> Self {
        PlanError::Execution { source }
    }
}

// ---------------------------------------------------------------------------
// The trait
// ---------------------------------------------------------------------------

/// Measured outcome of a real execution.
///
/// The distributed output shares are assembled into the full product matrix,
/// and every rank's mpiP-style counters are returned so callers can hold the
/// execution against [`DistPlan`]'s word-exact predictions. Runs on the
/// event backend additionally carry each rank's *virtual* α-β-γ time
/// (`RankStats::time`), measured by the discrete-event scheduler — the
/// executed analogue of [`SimReport`]'s planned numbers.
#[derive(Debug, Clone)]
pub struct ExecReport {
    /// The assembled `m × n` product.
    pub c: Matrix,
    /// Per-rank measured statistics, indexed by rank.
    pub stats: Vec<RankStats>,
    /// The network topology the run was measured under — [`Topology::Flat`]
    /// unless the machine was built with one, so callers comparing measured
    /// times know which contention model produced them.
    pub topology: Topology,
    /// Buffer-arena counters of the run (allocations vs. recycled hits).
    /// Display-only observability: recycling is invisible to `c` and
    /// `stats`, and the hit/miss split is not part of the determinism
    /// contract (it depends on scheduling order).
    pub pool: PoolStats,
}

impl ExecReport {
    /// Total words received across all ranks.
    pub fn total_recv_words(&self) -> u64 {
        self.stats.iter().map(RankStats::total_recv).sum()
    }

    /// Maximum words received by any rank.
    pub fn max_recv_words(&self) -> u64 {
        self.stats.iter().map(RankStats::total_recv).max().unwrap_or(0)
    }

    /// Measured machine time: the slowest rank's virtual finish time, in
    /// seconds. Zero on blocking-backend runs, which keep no virtual clock
    /// (use [`ExecBackend::Event`] to measure time).
    pub fn measured_time_s(&self) -> f64 {
        mpsim::stats::aggregate::machine_time_s(&self.stats)
    }

    /// The slowest rank's measured compute / exposed-comm / hidden-comm
    /// breakdown — the executed analogue of `SimReport::critical`.
    pub fn critical_time(&self) -> mpsim::cost::TimeBreakdown {
        mpsim::stats::aggregate::critical_time(&self.stats)
    }

    /// Measured percent of machine peak over `p` ranks under `model` —
    /// the executed analogue of `SimReport::percent_peak` (Figures
    /// 8/10/13/14). Zero when no virtual time was measured.
    pub fn measured_percent_peak(&self, p: usize, model: &CostModel) -> f64 {
        mpsim::cost::percent_peak(
            mpsim::stats::aggregate::total_flops(&self.stats),
            p,
            self.measured_time_s(),
            model,
        )
    }
}

/// A distributed matrix-multiplication algorithm that plans exact per-rank
/// communication and executes the same schedule with real messages.
///
/// The contract every implementation upholds (and the trait-level
/// conformance suite in `tests/trait_conformance.rs` enforces):
///
/// 1. [`supports`](MmmAlgorithm::supports) is *honest*: if it accepts a
///    problem's rank count, [`plan`](MmmAlgorithm::plan) never panics on that
///    problem (it may still report memory infeasibility); if it rejects,
///    `plan` returns the same error.
/// 2. A returned plan passes [`DistPlan::validate_coverage`].
/// 3. Executing the plan moves, rank by rank, exactly the words the plan
///    predicts, and produces the same product as the sequential kernel.
pub trait MmmAlgorithm: Send + Sync + std::any::Any {
    /// The algorithm's typed identity.
    fn id(&self) -> AlgoId;

    /// The implementation as [`std::any::Any`], so callers holding a
    /// `dyn MmmAlgorithm` can recover a concrete configuration (e.g.
    /// [`RunSession`] merging partial COSMA overrides onto a
    /// registry-customized base).
    fn as_any(&self) -> &dyn std::any::Any;

    /// Capability query: can this algorithm decompose for `prob.p` ranks?
    ///
    /// This checks *structural* constraints (Cannon's perfect square, CARMA's
    /// power of two), not memory feasibility — that is [`plan`]'s job, since
    /// it depends on the decomposition search.
    ///
    /// [`plan`]: MmmAlgorithm::plan
    fn supports(&self, _prob: &MmmProblem) -> Result<(), PlanError> {
        Ok(())
    }

    /// Build the exact distributed plan for `prob` under `machine`'s cost
    /// model.
    fn plan(&self, prob: &MmmProblem, machine: &CostModel) -> Result<DistPlan, PlanError>;

    /// Execute the plan on the calling rank with real messages, returning
    /// this rank's shares of the distributed output (empty for ranks that
    /// hold no output — idle ranks, or non-root layers of a reduction).
    /// Most algorithms return one [`CPart`]; memory-budgeted CARMA returns
    /// one per sequential DFS leaf, and parts covering the same C region
    /// carry partial sums that [`assemble_c`] accumulates.
    ///
    /// The body is *resumable*: it returns a [`RankFuture`] whose awaits on
    /// the communicator's wait-states let the event-driven executor park
    /// the rank as a stackless state machine. Implementations wrap their
    /// `async` rank body in `Box::pin(..)`; on the blocking executors the
    /// future completes within a single poll.
    fn execute_rank<'a>(
        &'a self,
        comm: &'a mut RankComm,
        plan: &'a DistPlan,
        a: &'a Matrix,
        b: &'a Matrix,
    ) -> RankFuture<'a, Vec<CPart>>;

    /// Execute the plan on a simulated `machine`, assemble the distributed
    /// output and return it with the measured per-rank counters. The
    /// executor is picked by [`ExecBackend::auto`]: one OS thread per rank
    /// up to the threaded cap, the sharded worker-pool executor up to a few
    /// thousand ranks, the event-driven stackless executor beyond.
    fn execute(
        &self,
        plan: &DistPlan,
        machine: &MachineSpec,
        a: &Matrix,
        b: &Matrix,
    ) -> Result<ExecReport, PlanError>
    where
        Self: Sized,
    {
        execute_boxed(self, plan, machine, a, b)
    }
}

/// The resumable rank-body future of [`MmmAlgorithm::execute_rank`]: a
/// boxed stackless state machine. Not `Send` — each executor polls a rank's
/// future on the thread that created it.
pub type RankFuture<'a, T> = Pin<Box<dyn Future<Output = T> + 'a>>;

/// Object-safe driver behind [`MmmAlgorithm::execute`] — also callable on a
/// `&dyn MmmAlgorithm` (e.g. a registry entry). Picks the execution backend
/// with [`ExecBackend::auto`], so worlds beyond the threaded rank cap
/// escalate to the sharded worker pool and then to the event-driven
/// executor instead of failing.
pub fn execute_boxed(
    algo: &(impl MmmAlgorithm + ?Sized),
    plan: &DistPlan,
    machine: &MachineSpec,
    a: &Matrix,
    b: &Matrix,
) -> Result<ExecReport, PlanError> {
    execute_boxed_with(algo, plan, machine, ExecBackend::auto(machine.p), a, b)
}

/// [`execute_boxed`] on an explicit [`ExecBackend`].
pub fn execute_boxed_with(
    algo: &(impl MmmAlgorithm + ?Sized),
    plan: &DistPlan,
    machine: &MachineSpec,
    backend: ExecBackend,
    a: &Matrix,
    b: &Matrix,
) -> Result<ExecReport, PlanError> {
    if plan.problem.p != machine.p {
        return Err(PlanError::WorldSizeMismatch {
            plan_ranks: plan.problem.p,
            world_ranks: machine.p,
        });
    }
    let out =
        run_spmd_with(
            machine,
            backend,
            |mut comm| async move { algo.execute_rank(&mut comm, plan, a, b).await },
        )?;
    let c = assemble_c(out.results.into_iter().flatten(), plan.problem.m, plan.problem.n);
    Ok(ExecReport {
        c,
        stats: out.stats,
        topology: machine.topology.clone(),
        pool: out.pool,
    })
}

/// [`execute_boxed`] over a *shared* [`SchedulerPool`]: the world's ranks
/// take their runnable slots from `pool` instead of a private per-run gate,
/// so many independent executions (a serving layer's concurrent tenants)
/// jointly respect one machine-wide worker cap. Results and per-rank
/// counters are identical to a solo [`execute_boxed_with`] run — admission
/// order never changes what a rank computes or how many words it moves.
pub fn execute_boxed_pooled(
    algo: &(impl MmmAlgorithm + ?Sized),
    plan: &DistPlan,
    machine: &MachineSpec,
    pool: &SchedulerPool,
    a: &Matrix,
    b: &Matrix,
) -> Result<ExecReport, PlanError> {
    if plan.problem.p != machine.p {
        return Err(PlanError::WorldSizeMismatch {
            plan_ranks: plan.problem.p,
            world_ranks: machine.p,
        });
    }
    let out =
        run_spmd_pooled(
            machine,
            pool,
            |mut comm| async move { algo.execute_rank(&mut comm, plan, a, b).await },
        )?;
    let c = assemble_c(out.results.into_iter().flatten(), plan.problem.m, plan.problem.n);
    Ok(ExecReport {
        c,
        stats: out.stats,
        topology: machine.topology.clone(),
        pool: out.pool,
    })
}

// ---------------------------------------------------------------------------
// COSMA's implementation
// ---------------------------------------------------------------------------

/// COSMA as an [`MmmAlgorithm`]: wraps [`CosmaConfig`] (grid-fitting δ and
/// communication [`Backend`]) around the planner and executor of
/// [`crate::algorithm`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CosmaAlgorithm {
    /// The tunables (δ = 0.03, two-sided backend by default).
    pub cfg: CosmaConfig,
}

impl CosmaAlgorithm {
    /// COSMA with an explicit configuration.
    pub fn with_config(cfg: CosmaConfig) -> Self {
        CosmaAlgorithm { cfg }
    }
}

impl MmmAlgorithm for CosmaAlgorithm {
    fn id(&self) -> AlgoId {
        AlgoId::Cosma
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn plan(&self, prob: &MmmProblem, machine: &CostModel) -> Result<DistPlan, PlanError> {
        algorithm::plan(prob, &self.cfg, machine)
    }

    fn execute_rank<'a>(
        &'a self,
        comm: &'a mut RankComm,
        plan: &'a DistPlan,
        a: &'a Matrix,
        b: &'a Matrix,
    ) -> RankFuture<'a, Vec<CPart>> {
        Box::pin(async move { algorithm::execute(comm, plan, &self.cfg, a, b).await.into_iter().collect() })
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// A set of [`MmmAlgorithm`] implementations, each with its default
/// configuration, addressable by [`AlgoId`].
///
/// The core crate only knows COSMA ([`AlgorithmRegistry::core`]); the
/// `baselines` crate's `registry()` returns the full five-algorithm set used
/// by the bench harness, the examples and the conformance tests.
///
/// The algorithm list is `Arc`-backed with copy-on-write mutation, so
/// `Clone` is O(1) and clones share storage until one of them registers —
/// the serving layer hands one registry to every request without rebuilding
/// it.
#[derive(Clone, Default)]
pub struct AlgorithmRegistry {
    algos: Arc<Vec<Arc<dyn MmmAlgorithm>>>,
}

impl AlgorithmRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        AlgorithmRegistry {
            algos: Arc::new(Vec::new()),
        }
    }

    /// The registry of the core crate: COSMA with its default configuration.
    pub fn core() -> Self {
        let mut r = AlgorithmRegistry::new();
        r.register(CosmaAlgorithm::default());
        r
    }

    /// Add (or replace) an algorithm. Later registrations of the same
    /// [`AlgoId`] win, so callers can override a default configuration.
    /// Copy-on-write: a registry sharing storage with clones splits off its
    /// own copy first; the clones are unaffected.
    pub fn register(&mut self, algo: impl MmmAlgorithm + 'static) -> &mut Self {
        self.register_arc(Arc::new(algo))
    }

    /// [`register`](Self::register) for an already-shared implementation.
    pub fn register_arc(&mut self, algo: Arc<dyn MmmAlgorithm>) -> &mut Self {
        let algos = Arc::make_mut(&mut self.algos);
        algos.retain(|a| a.id() != algo.id());
        algos.push(algo);
        self
    }

    /// Every registered algorithm, in registration order.
    pub fn all(&self) -> &[Arc<dyn MmmAlgorithm>] {
        &self.algos
    }

    /// The registered ids, in registration order.
    pub fn ids(&self) -> Vec<AlgoId> {
        self.algos.iter().map(|a| a.id()).collect()
    }

    /// Look up an algorithm by id.
    pub fn by_id(&self, id: AlgoId) -> Result<Arc<dyn MmmAlgorithm>, PlanError> {
        self.algos
            .iter()
            .find(|a| a.id() == id)
            .cloned()
            .ok_or(PlanError::NotRegistered { algo: id })
    }
}

impl fmt::Debug for AlgorithmRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AlgorithmRegistry").field("ids", &self.ids()).finish()
    }
}

// ---------------------------------------------------------------------------
// RunSession
// ---------------------------------------------------------------------------

/// Outcome of [`RunSession::run`]: the plan and its cost-model evaluation.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The validated distributed plan.
    pub plan: DistPlan,
    /// The α-β-γ simulation of the plan (Figures 8–14 metrics).
    pub report: SimReport,
}

/// The single entry point from a problem statement to a planned, simulated
/// or executed multiplication.
///
/// ```
/// use cosma::api::{AlgoId, RunSession};
/// use cosma::problem::MmmProblem;
///
/// let plan = RunSession::new(MmmProblem::new(64, 64, 64, 8, 1 << 12))
///     .algorithm(AlgoId::Cosma)
///     .plan()
///     .unwrap();
/// assert_eq!(plan.algo, AlgoId::Cosma);
/// ```
#[derive(Debug, Clone)]
pub struct RunSession {
    prob: MmmProblem,
    algo: AlgoId,
    registry: AlgorithmRegistry,
    model: Option<CostModel>,
    backend: Option<Backend>,
    delta: Option<f64>,
    overlap: bool,
    exec: Option<ExecBackend>,
    sched_threads: Option<usize>,
    mem_budget: Option<u64>,
    topology: Option<Topology>,
    placement: Option<Placement>,
    faults: Option<mpsim::FaultPlan>,
}

impl RunSession {
    /// Start a session for `prob`. Defaults: COSMA, the core registry, a
    /// Piz-Daint-like two-sided cost model, communication overlap on.
    pub fn new(prob: MmmProblem) -> Self {
        RunSession {
            prob,
            algo: AlgoId::Cosma,
            registry: AlgorithmRegistry::core(),
            model: None,
            backend: None,
            delta: None,
            overlap: true,
            exec: None,
            sched_threads: None,
            mem_budget: None,
            topology: None,
            placement: None,
            faults: None,
        }
    }

    /// Enforce `words` as a hard per-rank memory budget during
    /// [`execute`](Self::execute)/[`execute_verified`](Self::execute_verified):
    /// a rank whose measured working set peaks above it turns the run into
    /// [`PlanError::Execution`] with
    /// [`ExecError::MemBudgetExceeded`] — on every execution backend.
    pub fn mem_budget(mut self, words: u64) -> Self {
        self.mem_budget = Some(words);
        self
    }

    /// [`mem_budget`](Self::mem_budget) with the problem's own `S` — the
    /// paper's limited-memory regime taken literally.
    pub fn enforce_mem_budget(self) -> Self {
        let s = self.prob.mem_words as u64;
        self.mem_budget(s)
    }

    /// Set the machine cost model (the machine's rank count and memory come
    /// from the problem itself).
    pub fn machine(mut self, model: CostModel) -> Self {
        self.model = Some(model);
        self
    }

    /// Select the algorithm (default: COSMA).
    pub fn algorithm(mut self, id: AlgoId) -> Self {
        self.algo = id;
        self
    }

    /// Use a custom registry (e.g. `baselines::registry()` for the full
    /// five-algorithm set, or one with re-configured defaults).
    pub fn registry(mut self, registry: AlgorithmRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Override COSMA's communication backend (§7.4). Fails at resolution
    /// time when the selected algorithm is not COSMA.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Override COSMA's grid-fitting idle budget δ (§7.1).
    pub fn delta(mut self, delta: f64) -> Self {
        self.delta = Some(delta);
        self
    }

    /// Plan-simulate *and* execute with or without communication–computation
    /// overlap (§7.3). Affects [`run`](Self::run)'s cost-model evaluation
    /// and, through [`machine_spec`](Self::machine_spec), the event
    /// executor's virtual clock, so planned and measured time use the same
    /// overlap semantics.
    pub fn overlap(mut self, overlap: bool) -> Self {
        self.overlap = overlap;
        self
    }

    /// Select the execution backend for [`execute`](Self::execute) /
    /// [`execute_verified`](Self::execute_verified). Default:
    /// [`ExecBackend::auto`] — threaded up to the rank cap, sharded beyond.
    pub fn exec_backend(mut self, backend: ExecBackend) -> Self {
        self.exec = Some(backend);
        self
    }

    /// Run the event scheduler on `threads` OS threads (rank regions with
    /// conservative virtual-time windows; see `mpsim::event`).
    ///
    /// Selects [`ExecBackend::Event`]`{ threads }` when no explicit
    /// [`exec_backend`](Self::exec_backend) was chosen, and upgrades an
    /// explicit `Event` backend's thread count. Explicit blocking backends
    /// (threaded/sharded) have no scheduler to parallelize, so the setting
    /// is ignored for them. Counters and virtual times are bitwise-identical
    /// at every thread count — the scheduler falls back to a single thread
    /// whenever it cannot prove that (shared-link topologies, α = 0).
    pub fn scheduler_threads(mut self, threads: usize) -> Self {
        self.sched_threads = Some(threads.max(1));
        self
    }

    /// Measure executions under `topology`'s contention model (default:
    /// [`Topology::Flat`], the historical per-receiver-link clock). Only the
    /// event backend's virtual clock sees it — word counters and results are
    /// topology-independent.
    ///
    /// # Panics
    /// Panics when the topology's parameters are invalid
    /// ([`Topology::validate`]).
    pub fn topology(mut self, topology: Topology) -> Self {
        if let Err(why) = topology.validate() {
            panic!("invalid topology: {why}");
        }
        self.topology = Some(topology);
        self
    }

    /// Choose the rank→node [`Placement`] for the session's
    /// [`topology`](Self::topology) (default: [`Placement::Block`]).
    pub fn placement(mut self, placement: Placement) -> Self {
        self.placement = Some(placement);
        self
    }

    /// Inject a deterministic [`mpsim::FaultPlan`] into the session's
    /// executions: the event scheduler kills the planned ranks and drops
    /// the planned messages at their scheduled virtual times, surfacing as
    /// [`ExecError::RankFailed`] inside [`PlanError::Execution`]. Only the
    /// event backend consults the plan — blocking backends ignore it — and
    /// a quiescent plan (no kills, no drops) is a bitwise no-op.
    pub fn faults(mut self, plan: mpsim::FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// The execution backend the session will use: the explicit
    /// [`exec_backend`](Self::exec_backend) choice, or [`ExecBackend::auto`]
    /// for the problem's world size. A
    /// [`scheduler_threads`](Self::scheduler_threads) setting forces the
    /// event backend (and sets its thread count) unless an explicit blocking
    /// backend was chosen.
    pub fn effective_exec_backend(&self) -> ExecBackend {
        match (self.exec, self.sched_threads) {
            (Some(ExecBackend::Event { .. }), Some(threads)) | (None, Some(threads)) => {
                ExecBackend::Event { threads }
            }
            (Some(explicit), _) => explicit,
            (None, None) => ExecBackend::auto(self.prob.p),
        }
    }

    /// The effective cost model.
    pub fn cost_model(&self) -> CostModel {
        self.model.unwrap_or_else(CostModel::piz_daint_two_sided)
    }

    /// The simulated machine the session executes on: `prob.p` ranks with
    /// `prob.mem_words` words each under the session's cost model and
    /// [`overlap`](Self::overlap) mode, enforcing the session's
    /// [`mem_budget`](Self::mem_budget) when one is set.
    pub fn machine_spec(&self) -> MachineSpec {
        let mut spec =
            MachineSpec::new(self.prob.p, self.prob.mem_words, self.cost_model()).with_overlap(self.overlap);
        if let Some(words) = self.mem_budget {
            spec = spec.with_mem_budget(words);
        }
        if let Some(topology) = &self.topology {
            spec = spec.with_topology(topology.clone());
        }
        if let Some(placement) = self.placement {
            spec = spec.with_placement(placement);
        }
        if let Some(plan) = self.faults {
            spec = spec.with_faults(plan);
        }
        spec
    }

    /// Resolve the configured algorithm instance.
    pub fn resolve(&self) -> Result<Arc<dyn MmmAlgorithm>, PlanError> {
        if self.backend.is_some() || self.delta.is_some() {
            if self.algo != AlgoId::Cosma {
                return Err(PlanError::InvalidConfig {
                    algo: self.algo,
                    reason: "backend/delta are COSMA knobs",
                });
            }
            // Unset knobs fall back to the registry's (possibly
            // re-configured) COSMA entry, not to hard-coded defaults.
            let base = self
                .registry
                .by_id(AlgoId::Cosma)
                .ok()
                .and_then(|a| a.as_any().downcast_ref::<CosmaAlgorithm>().map(|c| c.cfg))
                .unwrap_or_default();
            return Ok(Arc::new(CosmaAlgorithm::with_config(CosmaConfig {
                delta: self.delta.unwrap_or(base.delta),
                backend: self.backend.unwrap_or(base.backend),
            })));
        }
        self.registry.by_id(self.algo)
    }

    /// Resolve, capability-check, plan and structurally validate in one
    /// step — the shared path behind [`plan`](Self::plan),
    /// [`execute`](Self::execute) and
    /// [`execute_verified`](Self::execute_verified).
    fn resolved_plan(&self) -> Result<(Arc<dyn MmmAlgorithm>, DistPlan), PlanError> {
        let algo = self.resolve()?;
        algo.supports(&self.prob)?;
        let plan = algo.plan(&self.prob, &self.cost_model())?;
        plan.validate_coverage()?;
        Ok((algo, plan))
    }

    /// Plan only: capability check, exact plan, structural validation.
    pub fn plan(&self) -> Result<DistPlan, PlanError> {
        self.resolved_plan().map(|(_, plan)| plan)
    }

    /// [`plan`](Self::plan) behind an [`Arc`], ready for a plan cache:
    /// planning is pure — fully determined by the problem, the algorithm and
    /// the cost model — so the returned plan can be memoized and shared
    /// across sessions with the same inputs.
    pub fn plan_arc(&self) -> Result<Arc<DistPlan>, PlanError> {
        self.plan().map(Arc::new)
    }

    /// Execute an *already-made* plan (e.g. a plan-cache hit) on the
    /// session's machine, skipping the planning step entirely. The plan must
    /// be for this session's resolved algorithm and world size — a cached
    /// plan keyed by the same problem + cost model satisfies both by
    /// construction.
    ///
    /// # Errors
    /// [`PlanError::UnknownAlgorithm`]-family errors from resolution;
    /// [`PlanError::InvalidConfig`] when `plan.algo` is not the session's
    /// algorithm; [`PlanError::WorldSizeMismatch`] when the plan's world
    /// does not match; execution errors as [`execute`](Self::execute).
    pub fn execute_planned(&self, plan: &DistPlan, a: &Matrix, b: &Matrix) -> Result<ExecReport, PlanError> {
        let algo = self.resolve()?;
        if plan.algo != algo.id() {
            return Err(PlanError::InvalidConfig {
                algo: plan.algo,
                reason: "plan was made for a different algorithm than the session resolves",
            });
        }
        execute_boxed_with(algo.as_ref(), plan, &self.machine_spec(), self.effective_exec_backend(), a, b)
    }

    /// [`execute_planned`](Self::execute_planned) over a shared
    /// [`SchedulerPool`] (see [`execute_boxed_pooled`]): the serving layer's
    /// path for running many cached-plan jobs concurrently under one
    /// machine-wide worker cap.
    pub fn execute_planned_pooled(
        &self,
        plan: &DistPlan,
        pool: &SchedulerPool,
        a: &Matrix,
        b: &Matrix,
    ) -> Result<ExecReport, PlanError> {
        let algo = self.resolve()?;
        if plan.algo != algo.id() {
            return Err(PlanError::InvalidConfig {
                algo: plan.algo,
                reason: "plan was made for a different algorithm than the session resolves",
            });
        }
        execute_boxed_pooled(algo.as_ref(), plan, &self.machine_spec(), pool, a, b)
    }

    /// Plan and evaluate under the cost model.
    pub fn run(&self) -> Result<RunOutcome, PlanError> {
        let plan = self.plan()?;
        let report = plan.simulate(&self.cost_model(), self.overlap);
        Ok(RunOutcome { plan, report })
    }

    /// Plan and execute with real messages on the session's simulated
    /// machine, assembling the distributed product. The session's
    /// [`effective_exec_backend`](Self::effective_exec_backend) picks the
    /// executor, so worlds of thousands of ranks run end-to-end.
    pub fn execute(&self, a: &Matrix, b: &Matrix) -> Result<ExecReport, PlanError> {
        let (algo, plan) = self.resolved_plan()?;
        execute_boxed_with(algo.as_ref(), &plan, &self.machine_spec(), self.effective_exec_backend(), a, b)
    }

    /// [`execute`](Self::execute), then verify the product against the
    /// sequential kernel and the measured traffic against the plan, rank by
    /// rank — the reproduction's central consistency contract.
    ///
    /// # Panics
    /// Panics if the product or any rank's traffic deviates from the plan.
    pub fn execute_verified(&self, a: &Matrix, b: &Matrix) -> Result<(DistPlan, ExecReport), PlanError> {
        let (algo, plan) = self.resolved_plan()?;
        let report = execute_boxed_with(
            algo.as_ref(),
            &plan,
            &self.machine_spec(),
            self.effective_exec_backend(),
            a,
            b,
        )?;
        let want = matmul(a, b);
        assert!(
            want.approx_eq(&report.c, 1e-9),
            "{}: product deviates from the sequential kernel by {}",
            plan.algo,
            want.max_abs_diff(&report.c)
        );
        for (r, st) in report.stats.iter().enumerate() {
            assert_eq!(
                st.total_recv(),
                plan.ranks[r].comm_words(),
                "{}: rank {r} measured traffic deviates from the plan",
                plan.algo
            );
        }
        Ok((plan, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algo_id_roundtrips_and_aliases() {
        for id in AlgoId::ALL {
            assert_eq!(id.as_str().parse::<AlgoId>().unwrap(), id);
        }
        assert_eq!("scalapack".parse::<AlgoId>().unwrap(), AlgoId::Summa);
        assert_eq!("CTF".parse::<AlgoId>().unwrap(), AlgoId::P25d);
        assert!(matches!("pdgemm".parse::<AlgoId>(), Err(PlanError::UnknownAlgorithm { .. })));
    }

    #[test]
    fn rank_requirements() {
        assert!(RankRequirement::PerfectSquare.accepts(16));
        assert!(!RankRequirement::PerfectSquare.accepts(8));
        assert!(RankRequirement::PowerOfTwo.accepts(8));
        assert!(!RankRequirement::PowerOfTwo.accepts(12));
    }

    #[test]
    fn core_registry_has_cosma_only() {
        let reg = AlgorithmRegistry::core();
        assert_eq!(reg.ids(), vec![AlgoId::Cosma]);
        assert!(reg.by_id(AlgoId::Cosma).is_ok());
        assert_eq!(reg.by_id(AlgoId::Cannon).err(), Some(PlanError::NotRegistered { algo: AlgoId::Cannon }));
    }

    #[test]
    fn registry_replacement_wins() {
        let mut reg = AlgorithmRegistry::core();
        reg.register(CosmaAlgorithm::with_config(CosmaConfig {
            delta: 0.5,
            backend: Backend::OneSided,
        }));
        assert_eq!(reg.all().len(), 1, "replaced, not duplicated");
    }

    #[test]
    fn registry_clone_is_shared_until_written() {
        let original = AlgorithmRegistry::core();
        let mut clone = original.clone();
        assert!(Arc::ptr_eq(&original.algos, &clone.algos), "clones share the algorithm list");
        clone.register(CosmaAlgorithm::with_config(CosmaConfig {
            delta: 0.5,
            backend: Backend::OneSided,
        }));
        // Copy-on-write: the clone split off; the original still holds the
        // default COSMA configuration.
        assert!(!Arc::ptr_eq(&original.algos, &clone.algos));
        let base = original.by_id(AlgoId::Cosma).unwrap();
        let base = base.as_any().downcast_ref::<CosmaAlgorithm>().unwrap();
        assert_eq!(base.cfg, CosmaConfig::default());
    }

    #[test]
    fn execute_planned_matches_execute_and_checks_the_plan() {
        let prob = MmmProblem::new(24, 20, 28, 6, 4096);
        let a = Matrix::deterministic(prob.m, prob.k, 5);
        let b = Matrix::deterministic(prob.k, prob.n, 6);
        let session = RunSession::new(prob);
        let plan = session.plan_arc().unwrap();
        let cold = session.execute(&a, &b).unwrap();
        let cached = session.execute_planned(&plan, &a, &b).unwrap();
        assert_eq!(cached.c, cold.c, "bitwise-identical product");
        assert_eq!(cached.stats, cold.stats);
        // A plan made for another algorithm is refused, not executed.
        let mut foreign = (*plan).clone();
        foreign.algo = AlgoId::Cannon;
        assert!(matches!(
            session.execute_planned(&foreign, &a, &b),
            Err(PlanError::InvalidConfig {
                algo: AlgoId::Cannon,
                ..
            })
        ));
        // A plan for a different world size is refused.
        let other = RunSession::new(MmmProblem::new(24, 20, 28, 12, 4096)).plan().unwrap();
        assert!(matches!(
            session.execute_planned(&other, &a, &b),
            Err(PlanError::WorldSizeMismatch {
                plan_ranks: 12,
                world_ranks: 6
            })
        ));
    }

    #[test]
    fn execute_planned_pooled_matches_private_run() {
        let prob = MmmProblem::new(24, 20, 28, 6, 4096);
        let a = Matrix::deterministic(prob.m, prob.k, 5);
        let b = Matrix::deterministic(prob.k, prob.n, 6);
        let session = RunSession::new(prob).exec_backend(ExecBackend::Sharded { workers: 2 });
        let plan = session.plan_arc().unwrap();
        let pool = SchedulerPool::new(2).unwrap();
        let pooled = session.execute_planned_pooled(&plan, &pool, &a, &b).unwrap();
        let private = session.execute(&a, &b).unwrap();
        assert_eq!(pooled.c, private.c);
        assert_eq!(pooled.stats, private.stats);
    }

    #[test]
    fn session_plans_and_simulates() {
        let prob = MmmProblem::new(64, 48, 56, 12, 1 << 12);
        let out = RunSession::new(prob).run().unwrap();
        assert_eq!(out.plan.algo, AlgoId::Cosma);
        assert_eq!(out.plan.validate(), Ok(()));
        assert!(out.report.time_s > 0.0);
    }

    #[test]
    fn session_executes_verified() {
        let prob = MmmProblem::new(24, 20, 28, 6, 4096);
        let a = Matrix::deterministic(prob.m, prob.k, 5);
        let b = Matrix::deterministic(prob.k, prob.n, 6);
        let (plan, report) = RunSession::new(prob).execute_verified(&a, &b).unwrap();
        assert_eq!(report.total_recv_words(), plan.total_comm_words());
    }

    #[test]
    fn session_backend_override_works_and_is_cosma_only() {
        let prob = MmmProblem::new(16, 16, 16, 4, 4096);
        let a = Matrix::deterministic(prob.m, prob.k, 1);
        let b = Matrix::deterministic(prob.k, prob.n, 2);
        RunSession::new(prob)
            .backend(Backend::OneSided)
            .execute_verified(&a, &b)
            .unwrap();
        let err = RunSession::new(prob)
            .algorithm(AlgoId::Cannon)
            .backend(Backend::OneSided)
            .plan()
            .unwrap_err();
        assert!(matches!(
            err,
            PlanError::InvalidConfig {
                algo: AlgoId::Cannon,
                ..
            }
        ));
    }

    #[test]
    fn partial_override_keeps_registry_cosma_config() {
        // A registry-customized COSMA base: one-sided backend. A delta-only
        // override must keep that backend rather than resetting it to the
        // hard default.
        let mut reg = AlgorithmRegistry::core();
        reg.register(CosmaAlgorithm::with_config(CosmaConfig {
            delta: 0.1,
            backend: Backend::OneSided,
        }));
        let session = RunSession::new(MmmProblem::new(16, 16, 16, 4, 4096)).registry(reg).delta(0.0);
        let algo = session.resolve().unwrap();
        let cosma = algo.as_any().downcast_ref::<CosmaAlgorithm>().unwrap();
        assert_eq!(cosma.cfg.backend, Backend::OneSided, "registry backend survives");
        assert_eq!(cosma.cfg.delta, 0.0, "delta override applies");
    }

    #[test]
    fn session_execute_rejects_structurally_invalid_plans() {
        // An algorithm whose plan misses part of the iteration space: the
        // session must refuse to execute it, same as plan().
        #[derive(Debug)]
        struct HolePlanner;
        impl MmmAlgorithm for HolePlanner {
            fn id(&self) -> AlgoId {
                AlgoId::Carma
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn plan(&self, prob: &MmmProblem, machine: &CostModel) -> Result<DistPlan, PlanError> {
                let mut plan = CosmaAlgorithm::default().plan(prob, machine)?;
                plan.ranks[0].bricks.clear(); // poke a hole
                Ok(plan)
            }
            fn execute_rank<'a>(
                &'a self,
                comm: &'a mut RankComm,
                plan: &'a DistPlan,
                a: &'a Matrix,
                b: &'a Matrix,
            ) -> RankFuture<'a, Vec<CPart>> {
                Box::pin(async move { CosmaAlgorithm::default().execute_rank(comm, plan, a, b).await })
            }
        }
        let mut reg = AlgorithmRegistry::new();
        reg.register(HolePlanner);
        let prob = MmmProblem::new(8, 8, 8, 2, 4096);
        let a = Matrix::deterministic(prob.m, prob.k, 1);
        let b = Matrix::deterministic(prob.k, prob.n, 2);
        let session = RunSession::new(prob).registry(reg).algorithm(AlgoId::Carma);
        assert!(matches!(session.plan(), Err(PlanError::BadCoverage { .. })));
        assert!(matches!(session.execute(&a, &b), Err(PlanError::BadCoverage { .. })));
    }

    #[test]
    fn session_unregistered_algorithm_reports() {
        let prob = MmmProblem::new(16, 16, 16, 4, 4096);
        let err = RunSession::new(prob).algorithm(AlgoId::Carma).plan().unwrap_err();
        assert_eq!(err, PlanError::NotRegistered { algo: AlgoId::Carma });
    }

    #[test]
    fn world_size_mismatch_is_an_error_not_a_panic() {
        let prob = MmmProblem::new(16, 16, 16, 4, 4096);
        let algo = CosmaAlgorithm::default();
        let plan = algo.plan(&prob, &CostModel::piz_daint_two_sided()).unwrap();
        let wrong = MachineSpec::piz_daint_with_memory(5, prob.mem_words);
        let a = Matrix::deterministic(prob.m, prob.k, 1);
        let b = Matrix::deterministic(prob.k, prob.n, 2);
        let err = algo.execute(&plan, &wrong, &a, &b).unwrap_err();
        assert_eq!(
            err,
            PlanError::WorldSizeMismatch {
                plan_ranks: 4,
                world_ranks: 5
            }
        );
    }

    #[test]
    fn session_sharded_backend_executes_verified() {
        let prob = MmmProblem::new(24, 20, 28, 6, 4096);
        let a = Matrix::deterministic(prob.m, prob.k, 5);
        let b = Matrix::deterministic(prob.k, prob.n, 6);
        let (plan, report) = RunSession::new(prob)
            .exec_backend(ExecBackend::Sharded { workers: 2 })
            .execute_verified(&a, &b)
            .unwrap();
        assert_eq!(report.total_recv_words(), plan.total_comm_words());
    }

    #[test]
    fn session_event_execution_measures_virtual_time() {
        let prob = MmmProblem::new(24, 20, 28, 6, 4096);
        let a = Matrix::deterministic(prob.m, prob.k, 5);
        let b = Matrix::deterministic(prob.k, prob.n, 6);
        let session = RunSession::new(prob).exec_backend(ExecBackend::event());
        let report = session.execute(&a, &b).unwrap();
        assert!(report.measured_time_s() > 0.0, "the event backend must measure time");
        let peak = report.measured_percent_peak(prob.p, &session.cost_model());
        assert!(peak > 0.0 && peak <= 100.0, "measured %peak {peak}");
        let crit = report.critical_time();
        assert!((crit.total_s() - report.measured_time_s()).abs() < 1e-15);
        // The overlap knob reaches the executor through machine_spec():
        // disabling double buffering can only slow the measured run down.
        let off = RunSession::new(prob)
            .overlap(false)
            .exec_backend(ExecBackend::event())
            .execute(&a, &b)
            .unwrap();
        assert!(!RunSession::new(prob).overlap(false).machine_spec().overlap);
        assert!(report.measured_time_s() <= off.measured_time_s() + 1e-15);
        // Blocking backends keep no virtual clock.
        let threaded = RunSession::new(prob).execute(&a, &b).unwrap();
        assert_eq!(threaded.measured_time_s(), 0.0);
    }

    #[test]
    fn session_mem_budget_surfaces_typed_violations() {
        // A one-word budget no algorithm can honour: the executor's typed
        // refusal arrives as PlanError::Execution, on the default backend.
        let prob = MmmProblem::new(16, 16, 16, 4, 4096);
        let a = Matrix::deterministic(prob.m, prob.k, 1);
        let b = Matrix::deterministic(prob.k, prob.n, 2);
        let err = RunSession::new(prob).mem_budget(1).execute(&a, &b).unwrap_err();
        assert!(
            matches!(
                err,
                PlanError::Execution {
                    source: ExecError::MemBudgetExceeded { budget: 1, .. }
                }
            ),
            "{err}"
        );
        // The problem's own S is ample: enforcing it passes.
        let report = RunSession::new(prob).enforce_mem_budget().execute(&a, &b).unwrap();
        assert!(report.stats.iter().all(|st| st.peak_mem_words <= prob.mem_words as u64));
    }

    #[test]
    fn session_threaded_cap_is_a_typed_error() {
        // Forcing the threaded backend past its cap surfaces the executor's
        // refusal through PlanError instead of panicking. The executor
        // refuses before any rank runs, so the input matrices are never read.
        let prob = MmmProblem::new(2048, 2048, 2048, 600, 1 << 22);
        let a = Matrix::deterministic(4, 4, 1);
        let b = Matrix::deterministic(4, 4, 2);
        let session = RunSession::new(prob).exec_backend(ExecBackend::Threaded);
        let err = session.execute(&a, &b).unwrap_err();
        assert!(
            matches!(
                err,
                PlanError::Execution {
                    source: ExecError::WorldTooLarge { p: 600, .. }
                }
            ),
            "{err}"
        );
        assert!(err.to_string().contains("supports at most"));
    }

    #[test]
    fn auto_backend_falls_back_to_sharded_beyond_the_cap() {
        let prob = MmmProblem::new(2048, 2048, 2048, 600, 1 << 22);
        let session = RunSession::new(prob);
        assert!(matches!(session.effective_exec_backend(), ExecBackend::Sharded { .. }));
        let small = RunSession::new(MmmProblem::new(16, 16, 16, 4, 4096));
        assert_eq!(small.effective_exec_backend(), ExecBackend::Threaded);
    }

    #[test]
    fn scheduler_threads_selects_and_upgrades_the_event_backend() {
        let prob = MmmProblem::new(64, 64, 64, 8, 1 << 12);
        // No explicit backend: scheduler_threads forces the event backend.
        let s = RunSession::new(prob).scheduler_threads(4);
        assert_eq!(s.effective_exec_backend(), ExecBackend::Event { threads: 4 });
        // Explicit event backend: the thread count is upgraded.
        let s = RunSession::new(prob).exec_backend(ExecBackend::event()).scheduler_threads(2);
        assert_eq!(s.effective_exec_backend(), ExecBackend::Event { threads: 2 });
        // Explicit blocking backend: nothing to parallelize, setting ignored.
        let s = RunSession::new(prob).exec_backend(ExecBackend::Threaded).scheduler_threads(8);
        assert_eq!(s.effective_exec_backend(), ExecBackend::Threaded);
        // 0 clamps to 1 and Displays as the plain event backend.
        let s = RunSession::new(prob).scheduler_threads(0);
        assert_eq!(s.effective_exec_backend().to_string(), "event");
    }

    #[test]
    fn scheduler_threads_execution_matches_single_thread_bitwise() {
        let prob = MmmProblem::new(48, 48, 48, 8, 1 << 12);
        let a = Matrix::deterministic(48, 48, 7);
        let b = Matrix::deterministic(48, 48, 11);
        let (_, base) = RunSession::new(prob)
            .exec_backend(ExecBackend::event())
            .execute_verified(&a, &b)
            .unwrap();
        let (_, par) = RunSession::new(prob).scheduler_threads(4).execute_verified(&a, &b).unwrap();
        assert_eq!(base.c, par.c);
        assert_eq!(base.stats, par.stats);
    }

    #[test]
    fn plan_error_displays() {
        let msgs = [
            PlanError::NoFeasibleGrid.to_string(),
            PlanError::UnsupportedRanks {
                algo: AlgoId::Cannon,
                p: 5,
                requires: RankRequirement::PerfectSquare,
            }
            .to_string(),
            PlanError::from(FitError::NoFeasibleGrid).to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
        }
    }
}
