//! `FitRanks` — processor-grid optimization (§7.1, Figure 5).
//!
//! Real rank counts are rarely of the form the optimal domain wants
//! (Eq. 32 assumes all divisions come out integer). `FitRanks` searches the
//! integer grids `[g_m × g_n × g_k]` over every admissible used-rank count
//! `p' ∈ [⌈(1−δ)p⌉, p]` and picks the one minimizing modeled time
//! (compute + communication). Dropping a few ranks can shrink communication
//! dramatically: the paper's Figure 5 shows `p = 65` collapsing from a
//! stretched `1 × 5 × 13` grid to `4 × 4 × 4` with one idle rank — ~36% less
//! communication for 1.5% more per-rank compute.

use mpsim::cost::CostModel;

use crate::problem::MmmProblem;
use crate::schedule::latency_steps;

/// A 3D processor grid `[g_m, g_n, g_k]` with row-major rank numbering:
/// `rank = (i_m · g_n + j_n) · g_k + i_k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid3 {
    /// Parts along m.
    pub gm: usize,
    /// Parts along n.
    pub gn: usize,
    /// Parts along k.
    pub gk: usize,
}

impl Grid3 {
    /// Total grid size.
    pub fn size(&self) -> usize {
        self.gm * self.gn * self.gk
    }

    /// Rank of grid coordinates.
    pub fn rank_of(&self, im: usize, jn: usize, ik: usize) -> usize {
        debug_assert!(im < self.gm && jn < self.gn && ik < self.gk);
        (im * self.gn + jn) * self.gk + ik
    }

    /// Grid coordinates of a rank.
    pub fn coords_of(&self, rank: usize) -> (usize, usize, usize) {
        debug_assert!(rank < self.size());
        let ik = rank % self.gk;
        let rest = rank / self.gk;
        (rest / self.gn, rest % self.gn, ik)
    }

    /// The j-fiber through `(im, ·, ik)` — the group that all-gathers A.
    pub fn j_group(&self, im: usize, ik: usize) -> Vec<usize> {
        (0..self.gn).map(|jn| self.rank_of(im, jn, ik)).collect()
    }

    /// The i-fiber through `(·, jn, ik)` — the group that all-gathers B.
    pub fn i_group(&self, jn: usize, ik: usize) -> Vec<usize> {
        (0..self.gm).map(|im| self.rank_of(im, jn, ik)).collect()
    }

    /// The k-fiber through `(im, jn, ·)` — the group that reduces C.
    pub fn k_group(&self, im: usize, jn: usize) -> Vec<usize> {
        (0..self.gk).map(|ik| self.rank_of(im, jn, ik)).collect()
    }
}

/// Result of the grid search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitResult {
    /// The chosen grid.
    pub grid: Grid3,
    /// Ranks actually used (`grid.size()`), at least `⌈(1−δ)p⌉`.
    pub used: usize,
    /// Ceil local-domain extents `[l_m, l_n, l_k]`.
    pub local: [usize; 3],
    /// Modeled per-rank words received (the objective's comm part).
    pub comm_words: u64,
    /// Modeled per-rank time in seconds (the full objective).
    pub score: f64,
}

/// Why no grid was found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FitError {
    /// No factorization of any admissible `p'` fits the per-rank memory.
    NoFeasibleGrid,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "no feasible processor grid fits the per-rank memory")
    }
}

impl std::error::Error for FitError {}

/// Modeled *mean* per-rank received words of a grid: the A and B all-gathers
/// along the grid fibers plus the k-fiber reduction of the C tile. The
/// reduction is a binomial tree whose `g_k − 1` tile-sized messages average
/// `(g_k−1)/g_k · l_m·l_n` received words per fiber member (the paper's `a²`
/// term); the tree root transiently receives `⌈log₂ g_k⌉` tiles, which shows
/// up in the max-volume metric but not here.
fn grid_comm_words(lm: usize, ln: usize, lk: usize, g: Grid3) -> u64 {
    let (lm, ln, lk) = (lm as u64, ln as u64, lk as u64);
    let a_words = lm * lk * (g.gn as u64 - 1) / g.gn as u64;
    let b_words = ln * lk * (g.gm as u64 - 1) / g.gm as u64;
    let c_words = lm * ln * (g.gk as u64 - 1) / g.gk as u64;
    a_words + b_words + c_words
}

/// `FitRanks`: search all factor triples of all admissible used-rank counts,
/// minimizing modeled time. `delta` is the maximum fraction of idle ranks
/// (the paper uses 3% on Piz Daint).
pub fn fit_ranks(prob: &MmmProblem, delta: f64, model: &CostModel) -> Result<FitResult, FitError> {
    assert!((0.0..1.0).contains(&delta), "delta must be in [0, 1)");
    let p = prob.p;
    let min_used = (((1.0 - delta) * p as f64).ceil() as usize).clamp(1, p);
    match fit_ranks_in(prob, min_used, model) {
        Ok(fit) => Ok(fit),
        // δ is a tuning knob, not a hard constraint: when no grid within the
        // idle budget is feasible (e.g. the matrix has fewer cells than the
        // budget demands ranks), fall back to the best grid of any size.
        Err(FitError::NoFeasibleGrid) if min_used > 1 => fit_ranks_in(prob, 1, model),
        Err(e) => Err(e),
    }
}

fn fit_ranks_in(prob: &MmmProblem, min_used: usize, model: &CostModel) -> Result<FitResult, FitError> {
    let p = prob.p;
    let mut best: Option<FitResult> = None;
    for used in min_used..=p {
        for (gm, gn, gk) in factor_triples(used) {
            let grid = Grid3 { gm, gn, gk };
            // Degenerate grids coarser than the matrix are useless.
            if gm > prob.m || gn > prob.n || gk > prob.k {
                continue;
            }
            let lm = prob.m.div_ceil(gm);
            let ln = prob.n.div_ceil(gn);
            let lk = prob.k.div_ceil(gk);
            // Memory feasibility: the C tile plus one double-buffered column/
            // row pair must fit (the step size search needs at least s = 1).
            if latency_steps(lm, ln, lk, prob.mem_words).is_none() {
                continue;
            }
            let comm_words = grid_comm_words(lm, ln, lk, grid);
            let flops = 2 * lm as u64 * ln as u64 * lk as u64;
            // Message count estimate: one ring step per fiber member per
            // round plus the reduction tree depth.
            let steps = latency_steps(lm, ln, lk, prob.mem_words).map(|s| s.steps).unwrap_or(1);
            let log2c = |g: usize| -> u64 {
                if g <= 1 {
                    0
                } else {
                    (usize::BITS - (g - 1).leading_zeros()) as u64
                }
            };
            let msgs = steps as u64 * (log2c(gn) + log2c(gm)) + gk as u64 - 1;
            let score = model.compute_time(flops) + model.comm_time(comm_words, msgs);
            let cand = FitResult {
                grid,
                used,
                local: [lm, ln, lk],
                comm_words,
                score,
            };
            let better = match &best {
                None => true,
                Some(b) => {
                    cand.score < b.score - 1e-15
                        || ((cand.score - b.score).abs() <= 1e-15 && cand.used > b.used)
                }
            };
            if better {
                best = Some(cand);
            }
        }
    }
    best.ok_or(FitError::NoFeasibleGrid)
}

/// All ordered factor triples `(a, b, c)` with `a·b·c = n`.
pub fn factor_triples(n: usize) -> Vec<(usize, usize, usize)> {
    let divs = divisors(n);
    let mut out = Vec::new();
    for &a in &divs {
        let rest = n / a;
        for &b in &divisors(rest) {
            out.push((a, b, rest / b));
        }
    }
    out
}

/// Sorted divisors of `n`.
pub fn divisors(n: usize) -> Vec<usize> {
    let mut small = Vec::new();
    let mut large = Vec::new();
    let mut d = 1;
    while d * d <= n {
        if n.is_multiple_of(d) {
            small.push(d);
            if d != n / d {
                large.push(n / d);
            }
        }
        d += 1;
    }
    large.reverse();
    small.extend(large);
    small
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::piz_daint_two_sided()
    }

    #[test]
    fn divisors_basic() {
        assert_eq!(divisors(12), vec![1, 2, 3, 4, 6, 12]);
        assert_eq!(divisors(1), vec![1]);
        assert_eq!(divisors(13), vec![1, 13]);
    }

    #[test]
    fn factor_triples_complete_and_valid() {
        let triples = factor_triples(12);
        assert!(triples.iter().all(|&(a, b, c)| a * b * c == 12));
        // d(12) summed over divisor chains: Σ_{a|12} d(12/a) = 18.
        assert_eq!(triples.len(), 18);
        assert!(triples.contains(&(2, 3, 2)));
        assert!(triples.contains(&(12, 1, 1)));
    }

    #[test]
    fn grid3_rank_coord_roundtrip() {
        let g = Grid3 { gm: 3, gn: 4, gk: 2 };
        for r in 0..g.size() {
            let (im, jn, ik) = g.coords_of(r);
            assert_eq!(g.rank_of(im, jn, ik), r);
        }
    }

    #[test]
    fn grid3_fibers() {
        let g = Grid3 { gm: 2, gn: 3, gk: 2 };
        assert_eq!(g.j_group(1, 0), vec![g.rank_of(1, 0, 0), g.rank_of(1, 1, 0), g.rank_of(1, 2, 0)]);
        assert_eq!(g.i_group(2, 1), vec![g.rank_of(0, 2, 1), g.rank_of(1, 2, 1)]);
        assert_eq!(g.k_group(1, 2), vec![g.rank_of(1, 2, 0), g.rank_of(1, 2, 1)]);
    }

    #[test]
    fn square_power_of_two_uses_all_ranks() {
        // S = 2^17 leaves room for the 256x256 C tile plus round buffers.
        // (With S = 2^16 the tile alone is exactly S, which a *feasible*
        // schedule cannot use — the √(S+1)−1 attainability gap of §5.2.7.)
        let prob = MmmProblem::new(1024, 1024, 1024, 64, 1 << 17);
        let fit = fit_ranks(&prob, 0.03, &model()).unwrap();
        assert_eq!(fit.used, 64, "64 = 4x4x4 is already ideal");
        assert_eq!(fit.grid.size(), 64);
        // A balanced grid for a cube: no dimension more than 4x another.
        let Grid3 { gm, gn, gk } = fit.grid;
        let mx = gm.max(gn).max(gk);
        let mn = gm.min(gn).min(gk);
        assert!(mx <= 4 * mn, "grid {gm}x{gn}x{gk} is stretched");
    }

    #[test]
    fn figure5_p65_drops_one_rank() {
        // The paper's Figure 5: square matrices, p = 65. Using all 65 ranks
        // forces 1 x 5 x 13; dropping one gives 4 x 4 x 4 and ~36% less
        // communication.
        let prob = MmmProblem::new(4096, 4096, 4096, 65, 1 << 22);
        let strict = fit_ranks(&prob, 0.0, &model()).unwrap();
        assert_eq!(strict.used, 65);
        let relaxed = fit_ranks(&prob, 0.03, &model()).unwrap();
        assert_eq!(relaxed.used, 64, "one rank must be dropped");
        assert_eq!((relaxed.grid.gm, relaxed.grid.gn, relaxed.grid.gk), (4, 4, 4));
        let saved = 1.0 - relaxed.comm_words as f64 / strict.comm_words as f64;
        assert!(saved > 0.25, "comm saving {saved} too small");
        // Compute penalty of idling one rank of 65 is ~1.5%.
        let strict_flops = 2 * (strict.local[0] * strict.local[1] * strict.local[2]) as u64;
        let relaxed_flops = 2 * (relaxed.local[0] * relaxed.local[1] * relaxed.local[2]) as u64;
        let penalty = relaxed_flops as f64 / strict_flops as f64 - 1.0;
        assert!(penalty < 0.05, "compute penalty {penalty} too large");
    }

    #[test]
    fn prime_p_with_delta_zero_gives_degenerate_grid() {
        let prob = MmmProblem::new(512, 512, 512, 13, 1 << 18);
        let fit = fit_ranks(&prob, 0.0, &model()).unwrap();
        assert_eq!(fit.used, 13);
        // 13 is prime: the only grids are permutations of [1, 1, 13].
        let dims = [fit.grid.gm, fit.grid.gn, fit.grid.gk];
        assert!(dims.contains(&13));
    }

    #[test]
    fn delta_never_hurts() {
        for p in [13usize, 65, 100, 127] {
            let prob = MmmProblem::new(1024, 1024, 1024, p, 1 << 18);
            let strict = fit_ranks(&prob, 0.0, &model()).unwrap();
            let relaxed = fit_ranks(&prob, 0.05, &model()).unwrap();
            assert!(relaxed.score <= strict.score + 1e-12, "p={p}: relaxing delta made things worse");
        }
    }

    #[test]
    fn tall_matrices_get_k_heavy_grid() {
        // largeK: m = n = 128, k = 2^20; the grid must parallelize along k.
        let prob = MmmProblem::new(128, 128, 1 << 20, 64, 1 << 16);
        let fit = fit_ranks(&prob, 0.03, &model()).unwrap();
        assert!(fit.grid.gk >= 16, "grid {:?} does not exploit k", fit.grid);
    }

    #[test]
    fn flat_matrices_get_ij_grid() {
        // Rank-k update: m = n = 2^13, k = 64: parallelize in the ij plane.
        let prob = MmmProblem::new(1 << 13, 1 << 13, 64, 64, 1 << 22);
        let fit = fit_ranks(&prob, 0.03, &model()).unwrap();
        assert_eq!(fit.grid.gk, 1, "grid {:?} needlessly splits k", fit.grid);
        assert!(fit.grid.gm >= 4 && fit.grid.gn >= 4);
    }

    #[test]
    fn memory_infeasible_returns_error() {
        // C tile of even the finest 2D split exceeds S=4 words... but a
        // k-only split needs lm*ln = m*n <= S too. With m=n=100, p=2:
        // best tile 100x50 = 5000 words > 4.
        let prob = MmmProblem::new(100, 100, 100, 2, 4);
        assert_eq!(fit_ranks(&prob, 0.0, &model()), Err(FitError::NoFeasibleGrid));
    }

    #[test]
    fn grid_never_exceeds_matrix_dims() {
        let prob = MmmProblem::new(4, 4, 4096, 64, 1 << 14);
        let fit = fit_ranks(&prob, 0.03, &model()).unwrap();
        assert!(fit.grid.gm <= 4 && fit.grid.gn <= 4);
        assert!(fit.grid.size() <= 64);
    }
}
