//! COSMA's blocked data layout and the ScaLAPACK adapter (§7.6).
//!
//! COSMA's schedule induces its optimal initial layout: each rank should
//! start owning exactly the shards it contributes to the all-gathers —
//! then `DistrData` needs no preparatory reshuffling. This module exposes
//! that induced layout as [`densemat::layout::Distribution`]s (element-level
//! owner functions) so that
//!
//! * the executor's `build_window`/chunk extraction and the layout agree
//!   (tested), and
//! * the cost of adapting a ScaLAPACK block-cyclic matrix to COSMA's layout
//!   — the paper's preprocessing phase — can be measured exactly with
//!   [`densemat::layout::relayout_words`].

use densemat::layout::Distribution;

use crate::algorithm::even_range;
use crate::grid::Grid3;
use crate::problem::MmmProblem;
use crate::schedule::latency_steps;

/// Shared geometry of the COSMA layouts.
#[derive(Debug, Clone)]
struct Geometry {
    prob: MmmProblem,
    grid: Grid3,
}

impl Geometry {
    /// Locate coordinate `x` within `parts` balanced pieces of `0..total`:
    /// returns `(piece index, offset range of the piece)`.
    fn piece(total: usize, parts: usize, x: usize) -> (usize, std::ops::Range<usize>) {
        // Balanced split: leading `total % parts` pieces are one longer.
        let base = total / parts;
        let extra = total % parts;
        let long = (base + 1) * extra;
        let idx = if x < long {
            x / (base + 1)
        } else {
            assert!(base > 0, "coordinate beyond all pieces");
            extra + (x - long) / base
        };
        (idx, even_range(total, parts, idx))
    }
}

/// The layout of matrix A induced by a COSMA plan: element `(i, t)` belongs
/// to the rank whose brick covers row `i` and k-range `t`, within the j-fiber
/// to the member owning the balanced chunk of the round slab containing `t`.
#[derive(Debug, Clone)]
pub struct CosmaALayout {
    geo: Geometry,
}

/// The layout of matrix B induced by a COSMA plan (transposed reasoning of
/// [`CosmaALayout`]: ownership chunks run along the i-fiber).
#[derive(Debug, Clone)]
pub struct CosmaBLayout {
    geo: Geometry,
}

/// The layout of the output C: block `(i, j)` lives on the k-fiber root
/// `(i_m, j_n, 0)`.
#[derive(Debug, Clone)]
pub struct CosmaCLayout {
    geo: Geometry,
}

/// Build the three layouts induced by a COSMA grid.
pub fn cosma_layouts(prob: &MmmProblem, grid: Grid3) -> (CosmaALayout, CosmaBLayout, CosmaCLayout) {
    let geo = Geometry { prob: *prob, grid };
    (CosmaALayout { geo: geo.clone() }, CosmaBLayout { geo: geo.clone() }, CosmaCLayout { geo })
}

/// Locate `t` within the round-slab structure of the k-range `ks` and return
/// the owner position along a fiber of `parts` members.
fn chunk_owner(
    prob: &MmmProblem,
    lm: usize,
    ln: usize,
    ks: std::ops::Range<usize>,
    t: usize,
    parts: usize,
) -> usize {
    let sp =
        latency_steps(lm, ln, ks.len(), prob.mem_words).expect("layout queried for an infeasible domain");
    let local_t = t - ks.start;
    for slab in sp.slab_ranges() {
        if slab.contains(&local_t) {
            let within = local_t - slab.start;
            let (pos, _) = Geometry::piece(slab.len(), parts, within);
            return pos;
        }
    }
    unreachable!("t inside ks must fall in a slab");
}

impl Distribution for CosmaALayout {
    fn owner(&self, i: usize, t: usize) -> usize {
        let g = &self.geo;
        let (im, rows) = Geometry::piece(g.prob.m, g.grid.gm, i);
        let (ik, ks) = Geometry::piece(g.prob.k, g.grid.gk, t);
        // ln of the owning fiber is the same for all members (cols split by jn).
        let ln = even_range(g.prob.n, g.grid.gn, 0).len();
        let jn = chunk_owner(&g.prob, rows.len(), ln, ks, t, g.grid.gn);
        g.grid.rank_of(im, jn, ik)
    }

    fn num_ranks(&self) -> usize {
        self.geo.prob.p
    }

    fn shape(&self) -> (usize, usize) {
        (self.geo.prob.m, self.geo.prob.k)
    }
}

impl Distribution for CosmaBLayout {
    fn owner(&self, t: usize, j: usize) -> usize {
        let g = &self.geo;
        let (jn, cols) = Geometry::piece(g.prob.n, g.grid.gn, j);
        let (ik, ks) = Geometry::piece(g.prob.k, g.grid.gk, t);
        let lm = even_range(g.prob.m, g.grid.gm, 0).len();
        let im = chunk_owner(&g.prob, lm, cols.len(), ks, t, g.grid.gm);
        g.grid.rank_of(im, jn, ik)
    }

    fn num_ranks(&self) -> usize {
        self.geo.prob.p
    }

    fn shape(&self) -> (usize, usize) {
        (self.geo.prob.k, self.geo.prob.n)
    }
}

impl Distribution for CosmaCLayout {
    fn owner(&self, i: usize, j: usize) -> usize {
        let g = &self.geo;
        let (im, _) = Geometry::piece(g.prob.m, g.grid.gm, i);
        let (jn, _) = Geometry::piece(g.prob.n, g.grid.gn, j);
        g.grid.rank_of(im, jn, 0)
    }

    fn num_ranks(&self) -> usize {
        self.geo.prob.p
    }

    fn shape(&self) -> (usize, usize) {
        (self.geo.prob.m, self.geo.prob.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use densemat::layout::{relayout_words, BlockCyclic};

    fn setup() -> (MmmProblem, Grid3) {
        (MmmProblem::new(12, 12, 12, 8, 4096), Grid3 { gm: 2, gn: 2, gk: 2 })
    }

    #[test]
    fn piece_locates_balanced_splits() {
        // 10 into 3: pieces [0..4), [4..7), [7..10).
        assert_eq!(Geometry::piece(10, 3, 0).0, 0);
        assert_eq!(Geometry::piece(10, 3, 3).0, 0);
        assert_eq!(Geometry::piece(10, 3, 4).0, 1);
        assert_eq!(Geometry::piece(10, 3, 6).0, 1);
        assert_eq!(Geometry::piece(10, 3, 7).0, 2);
        assert_eq!(Geometry::piece(10, 3, 9).0, 2);
        for x in 0..10 {
            let (idx, r) = Geometry::piece(10, 3, x);
            assert!(r.contains(&x), "x={x} idx={idx} r={r:?}");
        }
    }

    #[test]
    fn a_layout_partitions_a_exactly() {
        let (prob, grid) = setup();
        let (la, _, _) = cosma_layouts(&prob, grid);
        let total: usize = (0..prob.p).map(|r| la.local_len(r)).sum();
        assert_eq!(total, prob.m * prob.k);
        // Every element's owner covers it: row block and k block must match.
        for i in 0..prob.m {
            for t in 0..prob.k {
                let r = la.owner(i, t);
                let (im, jn, ik) = grid.coords_of(r);
                assert!(even_range(prob.m, grid.gm, im).contains(&i));
                assert!(even_range(prob.k, grid.gk, ik).contains(&t));
                assert!(jn < grid.gn);
            }
        }
    }

    #[test]
    fn b_layout_partitions_b_exactly() {
        let (prob, grid) = setup();
        let (_, lb, _) = cosma_layouts(&prob, grid);
        let total: usize = (0..prob.p).map(|r| lb.local_len(r)).sum();
        assert_eq!(total, prob.k * prob.n);
    }

    #[test]
    fn c_layout_lives_on_k_roots() {
        let (prob, grid) = setup();
        let (_, _, lc) = cosma_layouts(&prob, grid);
        for i in 0..prob.m {
            for j in 0..prob.n {
                let (_, _, ik) = grid.coords_of(lc.owner(i, j));
                assert_eq!(ik, 0, "C must live on the k-fiber root");
            }
        }
    }

    #[test]
    fn fiber_members_share_a_block_evenly() {
        // Within one (im, ik) block of A, all gn fiber members own a share.
        let (prob, grid) = setup();
        let (la, _, _) = cosma_layouts(&prob, grid);
        let mut counts = vec![0usize; prob.p];
        for i in 0..prob.m / 2 {
            for t in 0..prob.k / 2 {
                counts[la.owner(i, t)] += 1;
            }
        }
        let owners: Vec<usize> = counts.iter().filter(|&&c| c > 0).copied().collect();
        assert_eq!(owners.len(), grid.gn, "block shared by the j-fiber");
        let (mn, mx) = (owners.iter().min().unwrap(), owners.iter().max().unwrap());
        assert!(mx - mn <= prob.m / 2, "shares roughly balanced: {owners:?}");
    }

    #[test]
    fn scalapack_relayout_cost_is_measurable() {
        let (prob, grid) = setup();
        let (la, _, _) = cosma_layouts(&prob, grid);
        let bc = BlockCyclic::new(prob.m, prob.k, 2, 2, 2, 4);
        let moved = relayout_words(&bc, &la);
        assert!(moved > 0, "layouts differ, words must move");
        assert!(moved <= (prob.m * prob.k) as u64);
    }
}
