//! # cosma — Communication Optimal S-partition-based Matrix multiplication Algorithm
//!
//! The core contribution of the paper: a distributed matrix-multiplication
//! algorithm that *first* derives the near-I/O-optimal sequential schedule
//! (outer products over `√S × √S` C-blocks, §5) and *then* parallelizes it
//! bottom-up (§6), instead of fixing a processor grid top-down and hoping it
//! matches the matrices.
//!
//! Pipeline (Algorithm 1 of the paper):
//!
//! 1. [`schedule::find_seq_schedule`] — `a = min(√S, (mnk/p)^(1/3))`
//!    (`FindSeqSchedule`, sequential I/O optimality, §5);
//! 2. [`schedule::parallelize_schedule`] — `b = max(mnk/(pS), (mnk/p)^(1/3))`
//!    (`ParallelizeSched`, parallel I/O optimality, §6.3);
//! 3. [`grid::fit_ranks`] — fit an integer processor grid to the optimal
//!    local domain, possibly idling up to `δ·p` ranks (`FitRanks`, §7.1);
//! 4. [`plan::DistPlan`] — the materialized schedule: per-rank bricks of the
//!    iteration space and per-round exact communication volumes;
//! 5. [`algorithm::execute`] — run it on an [`mpsim`] machine with real
//!    messages: per-round A/B all-gathers along grid fibers (`DistrData`),
//!    local tiled GEMM (`Multiply`), and a balanced ring reduce-scatter of C
//!    (`Reduce`; the output stays in COSMA's blocked layout), with two-sided
//!    or one-sided (§7.4) backends;
//! 6. [`analysis`] — the closed-form I/O and latency costs (Table 3, Eq. 33)
//!    to compare against the measured plan.
//!
//! Baseline algorithms (`baselines` crate) produce the same [`plan::DistPlan`]
//! structure, so every comparison in the paper's evaluation is a comparison
//! between two plans measured identically. That contract is a first-class
//! type: every algorithm implements [`api::MmmAlgorithm`] (typed
//! [`api::AlgoId`] identity, capability queries, planning and execution
//! behind one unified [`api::PlanError`]), an [`api::AlgorithmRegistry`]
//! collects the implementations, and [`api::RunSession`] is the single
//! builder-style entry point used by the bench harness, the examples and
//! the integration tests.

pub mod algorithm;
pub mod analysis;
pub mod api;
pub mod grid;
pub mod layout;
pub mod plan;
pub mod problem;
pub mod schedule;
pub mod treecount;

pub use algorithm::{execute, plan as cosma_plan, Backend, CosmaConfig};
pub use api::{
    AlgoId, AlgorithmRegistry, CosmaAlgorithm, ExecReport, MmmAlgorithm, PlanError, RankRequirement,
    RunOutcome, RunSession,
};
pub use grid::{fit_ranks, FitResult, Grid3};
pub use plan::{Brick, DistPlan, RankPlan, Round, SimReport};
pub use problem::{MmmProblem, Shape};
