//! Distributed execution plans: per-rank bricks and exact per-round traffic.
//!
//! Every algorithm in this workspace (COSMA and the baselines) materializes a
//! [`DistPlan`]: which brick of the `m × n × k` iteration space each rank
//! computes, and — round by round — exactly how many words and messages it
//! receives for A, B and C. The plan is the single source of truth:
//!
//! * the threaded executor *interprets* the same decomposition with real
//!   messages (integration tests assert measured traffic == plan traffic);
//! * [`DistPlan::simulate`] evaluates the plan under the α-β-γ cost model to
//!   produce the runtimes and %-of-peak numbers of Figures 8–14;
//! * [`DistPlan::validate`] checks the structural invariants the paper's
//!   schedules guarantee: exact tiling of the iteration space, per-rank
//!   memory within `S`, load balance.

use mpsim::cost::{percent_peak, simulate_rounds, CostModel, RoundCost, TimeBreakdown};

use crate::api::AlgoId;
pub use crate::api::PlanError;
use crate::problem::MmmProblem;

/// A rectangular sub-volume of the iteration space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Brick {
    /// Row range (in `0..m`).
    pub rows: std::ops::Range<usize>,
    /// Column range (in `0..n`).
    pub cols: std::ops::Range<usize>,
    /// Inner-dimension range (in `0..k`).
    pub ks: std::ops::Range<usize>,
}

impl Brick {
    /// Number of iteration-space points in the brick.
    pub fn volume(&self) -> u64 {
        self.rows.len() as u64 * self.cols.len() as u64 * self.ks.len() as u64
    }

    /// Do two bricks share at least one point?
    pub fn intersects(&self, other: &Brick) -> bool {
        fn overlap(a: &std::ops::Range<usize>, b: &std::ops::Range<usize>) -> bool {
            a.start < b.end && b.start < a.end
        }
        overlap(&self.rows, &other.rows) && overlap(&self.cols, &other.cols) && overlap(&self.ks, &other.ks)
    }

    /// Does the brick contain the point `(i, j, t)`?
    pub fn contains(&self, i: usize, j: usize, t: usize) -> bool {
        self.rows.contains(&i) && self.cols.contains(&j) && self.ks.contains(&t)
    }
}

/// One communication round of a rank: words/messages received per matrix,
/// and the flops computed with the received data (including reduction adds).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Round {
    /// Words of A received.
    pub a_words: u64,
    /// Words of B received.
    pub b_words: u64,
    /// Words of C (partial results) received.
    pub c_words: u64,
    /// Messages received.
    pub msgs: u64,
    /// Flops executed in this round.
    pub flops: u64,
}

impl Round {
    /// Total words received this round.
    pub fn words(&self) -> u64 {
        self.a_words + self.b_words + self.c_words
    }
}

/// The plan of a single rank.
#[derive(Debug, Clone, PartialEq)]
pub struct RankPlan {
    /// Rank id.
    pub rank: usize,
    /// False for ranks idled by grid fitting (§7.1).
    pub active: bool,
    /// Grid coordinates (algorithm-specific meaning; `[0; 3]` if idle).
    pub coords: [usize; 3],
    /// The iteration-space bricks this rank multiplies (usually one).
    pub bricks: Vec<Brick>,
    /// Communication rounds in execution order.
    pub rounds: Vec<Round>,
    /// Peak working-set words (buffers + partial results) the plan requires.
    pub mem_words: u64,
}

impl RankPlan {
    /// An idle rank's plan.
    pub fn idle(rank: usize) -> Self {
        RankPlan {
            rank,
            active: false,
            coords: [0; 3],
            bricks: Vec::new(),
            rounds: Vec::new(),
            mem_words: 0,
        }
    }

    /// Total words this rank receives over the whole execution — the paper's
    /// "communication volume per rank".
    pub fn comm_words(&self) -> u64 {
        self.rounds.iter().map(Round::words).sum()
    }

    /// Total messages received.
    pub fn comm_msgs(&self) -> u64 {
        self.rounds.iter().map(|r| r.msgs).sum()
    }

    /// Multiplication volume of this rank's bricks.
    pub fn volume(&self) -> u64 {
        self.bricks.iter().map(Brick::volume).sum()
    }

    /// Flops across rounds (multiplications + reduction adds).
    pub fn flops(&self) -> u64 {
        self.rounds.iter().map(|r| r.flops).sum()
    }

    /// Convert to the cost-model round representation.
    pub fn round_costs(&self) -> Vec<RoundCost> {
        self.rounds
            .iter()
            .map(|r| RoundCost {
                words: r.words(),
                msgs: r.msgs,
                flops: r.flops,
            })
            .collect()
    }

    /// This rank's *planned* time under `model` — the per-rank number an
    /// event-backend execution's measured `RankStats::time` is held
    /// against.
    pub fn time_breakdown(&self, model: &CostModel, overlap: bool) -> TimeBreakdown {
        simulate_rounds(&self.round_costs(), model, overlap)
    }
}

/// Simulated outcome of a plan under a cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimReport {
    /// Wall-clock seconds (slowest rank).
    pub time_s: f64,
    /// Percent of machine peak flop/s achieved (Figures 8/10/13/14).
    pub percent_peak: f64,
    /// Time breakdown of the slowest rank.
    pub critical: TimeBreakdown,
    /// Maximum per-rank received words (Figures 6–7).
    pub max_comm_words: u64,
    /// Mean per-rank received words over *all* p ranks (Table 4).
    pub mean_comm_words: f64,
}

/// A complete distributed plan.
#[derive(Debug, Clone, PartialEq)]
pub struct DistPlan {
    /// The algorithm that produced the plan.
    pub algo: AlgoId,
    /// The problem instance.
    pub problem: MmmProblem,
    /// The processor grid actually used (algorithm-specific meaning).
    pub grid: [usize; 3],
    /// Per-rank plans, indexed by rank (length = `problem.p`).
    pub ranks: Vec<RankPlan>,
}

impl DistPlan {
    /// Number of non-idle ranks.
    pub fn active_ranks(&self) -> usize {
        self.ranks.iter().filter(|r| r.active).count()
    }

    /// Pad the plan out to a `p`-rank machine by appending idle ranks — the
    /// paper's policy for algorithms whose rank-count constraints exclude
    /// part of the machine (CARMA on non-powers-of-two, §1): the excluded
    /// cores idle and are charged against %-of-peak exactly as the machine
    /// would charge them.
    ///
    /// # Panics
    /// Panics if the plan already has more ranks than `p`.
    pub fn padded_to(mut self, p: usize) -> DistPlan {
        assert!(self.problem.p <= p, "cannot pad a plan down");
        for rank in self.problem.p..p {
            self.ranks.push(RankPlan::idle(rank));
        }
        self.problem.p = p;
        self
    }

    /// Maximum per-rank communication volume (words received).
    pub fn max_comm_words(&self) -> u64 {
        self.ranks.iter().map(RankPlan::comm_words).max().unwrap_or(0)
    }

    /// Mean per-rank communication volume over all `p` ranks.
    pub fn mean_comm_words(&self) -> f64 {
        if self.ranks.is_empty() {
            return 0.0;
        }
        self.total_comm_words() as f64 / self.ranks.len() as f64
    }

    /// Total received words over all ranks.
    pub fn total_comm_words(&self) -> u64 {
        self.ranks.iter().map(RankPlan::comm_words).sum()
    }

    /// Maximum per-rank latency cost (messages received) — the paper's `L`.
    pub fn max_comm_msgs(&self) -> u64 {
        self.ranks.iter().map(RankPlan::comm_msgs).max().unwrap_or(0)
    }

    /// Structural validation: bricks exactly tile the iteration space, stay
    /// in bounds, and every active rank's working set fits in `S`.
    pub fn validate(&self) -> Result<(), PlanError> {
        self.validate_coverage()?;
        for r in &self.ranks {
            if r.mem_words > self.problem.mem_words as u64 {
                return Err(PlanError::MemoryExceeded {
                    rank: r.rank,
                    need: r.mem_words,
                    have: self.problem.mem_words as u64,
                });
            }
        }
        Ok(())
    }

    /// Coverage-only validation: tiling and bounds, without the memory
    /// check. Memory-oblivious baselines (SUMMA, Cannon, 2.5D) can
    /// legitimately exceed the per-rank budget that COSMA and DFS-streaming
    /// CARMA respect; the experiment harness reports their footprint
    /// separately instead of rejecting the plan.
    pub fn validate_coverage(&self) -> Result<(), PlanError> {
        let prob = &self.problem;
        let mut covered: u64 = 0;
        let mut all_bricks: Vec<(usize, &Brick)> = Vec::new();
        for r in &self.ranks {
            for b in &r.bricks {
                if b.rows.end > prob.m || b.cols.end > prob.n || b.ks.end > prob.k {
                    return Err(PlanError::OutOfBounds { rank: r.rank });
                }
                covered += b.volume();
                all_bricks.push((r.rank, b));
            }
        }
        if covered != prob.volume() {
            return Err(PlanError::BadCoverage {
                covered,
                required: prob.volume(),
            });
        }
        // Pairwise disjointness. With exact total volume, any overlap implies
        // a hole elsewhere, but we check directly when feasible; beyond the
        // quadratic budget we rely on the volume identity plus sampling.
        if all_bricks.len() <= 4096 {
            for (i, (ra, ba)) in all_bricks.iter().enumerate() {
                for (rb, bb) in &all_bricks[i + 1..] {
                    if ba.intersects(bb) {
                        return Err(PlanError::Overlap { a: *ra, b: *rb });
                    }
                }
            }
        } else {
            // Deterministic sample of corner points.
            let probe = |i: usize, j: usize, t: usize| -> usize {
                all_bricks.iter().filter(|(_, b)| b.contains(i, j, t)).count()
            };
            for f in 0..64usize {
                let i = (f * 2654435761) % prob.m;
                let j = (f * 40503) % prob.n;
                let t = (f * 9176) % prob.k;
                if probe(i, j, t) != 1 {
                    return Err(PlanError::BadCoverage {
                        covered,
                        required: prob.volume(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Evaluate the plan under `model`: per-rank pipelined (or back-to-back)
    /// round times; machine time is the slowest rank; %-peak counts all `p`
    /// ranks including idle ones (idle ranks waste peak, as in Figure 5).
    pub fn simulate(&self, model: &CostModel, overlap: bool) -> SimReport {
        let mut worst = TimeBreakdown::default();
        let mut time_s: f64 = 0.0;
        for r in &self.ranks {
            let t = simulate_rounds(&r.round_costs(), model, overlap);
            if t.total_s() > time_s {
                time_s = t.total_s();
                worst = t;
            }
        }
        SimReport {
            time_s,
            percent_peak: percent_peak(self.problem.flops(), self.problem.p, time_s, model),
            critical: worst,
            max_comm_words: self.max_comm_words(),
            mean_comm_words: self.mean_comm_words(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brick(r: std::ops::Range<usize>, c: std::ops::Range<usize>, t: std::ops::Range<usize>) -> Brick {
        Brick {
            rows: r,
            cols: c,
            ks: t,
        }
    }

    fn simple_plan() -> DistPlan {
        // 4x4x4 volume split over 2 ranks along rows.
        let prob = MmmProblem::new(4, 4, 4, 2, 1000);
        let mk_rank = |rank: usize, rows: std::ops::Range<usize>| RankPlan {
            rank,
            active: true,
            coords: [rank, 0, 0],
            bricks: vec![brick(rows, 0..4, 0..4)],
            rounds: vec![
                Round {
                    a_words: 8,
                    b_words: 16,
                    c_words: 0,
                    msgs: 2,
                    flops: 64,
                },
                Round {
                    a_words: 8,
                    b_words: 16,
                    c_words: 0,
                    msgs: 2,
                    flops: 64,
                },
            ],
            mem_words: 100,
        };
        DistPlan {
            algo: AlgoId::Cosma,
            problem: prob,
            grid: [2, 1, 1],
            ranks: vec![mk_rank(0, 0..2), mk_rank(1, 2..4)],
        }
    }

    #[test]
    fn brick_volume_and_intersection() {
        let a = brick(0..2, 0..3, 0..4);
        assert_eq!(a.volume(), 24);
        let b = brick(1..2, 2..5, 3..6);
        assert!(a.intersects(&b));
        let c = brick(2..3, 0..3, 0..4);
        assert!(!a.intersects(&c));
        assert!(a.contains(1, 2, 3));
        assert!(!a.contains(2, 0, 0));
    }

    #[test]
    fn plan_aggregates() {
        let plan = simple_plan();
        assert_eq!(plan.active_ranks(), 2);
        assert_eq!(plan.max_comm_words(), 48);
        assert_eq!(plan.total_comm_words(), 96);
        assert!((plan.mean_comm_words() - 48.0).abs() < 1e-12);
        assert_eq!(plan.max_comm_msgs(), 4);
        assert_eq!(plan.ranks[0].volume(), 32);
        assert_eq!(plan.ranks[0].flops(), 128);
    }

    #[test]
    fn validate_accepts_exact_tiling() {
        assert_eq!(simple_plan().validate(), Ok(()));
    }

    #[test]
    fn validate_detects_hole() {
        let mut plan = simple_plan();
        plan.ranks[1].bricks[0].rows = 2..3; // leaves row 3 uncovered
        assert!(matches!(plan.validate(), Err(PlanError::BadCoverage { .. })));
    }

    #[test]
    fn validate_detects_overlap() {
        let mut plan = simple_plan();
        plan.ranks[1].bricks[0].rows = 1..3; // overlaps row 1, volume 64 again?
                                             // Volume is now 2*32 = 64 = required, but rows 1 overlaps and row 3
                                             // is uncovered -> the pairwise check fires.
        assert!(matches!(
            plan.validate(),
            Err(PlanError::Overlap { .. }) | Err(PlanError::BadCoverage { .. })
        ));
    }

    #[test]
    fn validate_detects_out_of_bounds() {
        let mut plan = simple_plan();
        plan.ranks[1].bricks[0].ks = 0..5;
        assert_eq!(plan.validate(), Err(PlanError::OutOfBounds { rank: 1 }));
    }

    #[test]
    fn validate_detects_memory_blowup() {
        let mut plan = simple_plan();
        plan.ranks[0].mem_words = 10_000;
        assert!(matches!(plan.validate(), Err(PlanError::MemoryExceeded { rank: 0, .. })));
    }

    #[test]
    fn idle_ranks_are_free() {
        let mut plan = simple_plan();
        plan.problem.p = 3;
        plan.ranks.push(RankPlan::idle(2));
        assert_eq!(plan.validate(), Ok(()));
        assert_eq!(plan.active_ranks(), 2);
        assert_eq!(plan.ranks[2].comm_words(), 0);
    }

    #[test]
    fn simulate_reports_positive_time_and_peak() {
        let plan = simple_plan();
        let model = CostModel::piz_daint_two_sided();
        let rep = plan.simulate(&model, false);
        assert!(rep.time_s > 0.0);
        assert!(rep.percent_peak > 0.0 && rep.percent_peak <= 100.0);
        let rep_overlap = plan.simulate(&model, true);
        assert!(rep_overlap.time_s <= rep.time_s);
        assert!(rep_overlap.percent_peak >= rep.percent_peak);
    }

    #[test]
    fn simulate_idle_ranks_lower_percent_peak() {
        let plan = simple_plan();
        let mut with_idle = plan.clone();
        with_idle.problem.p = 4;
        with_idle.ranks.push(RankPlan::idle(2));
        with_idle.ranks.push(RankPlan::idle(3));
        let model = CostModel::piz_daint_two_sided();
        let a = plan.simulate(&model, false);
        let b = with_idle.simulate(&model, false);
        assert!(b.percent_peak < a.percent_peak);
        assert!((b.percent_peak - a.percent_peak / 2.0).abs() < 1e-9);
    }
}
