//! Problem descriptions: matrix dimensions, machine size, shape classes.

/// A distributed matrix-multiplication problem instance:
/// `C = A·B`, `A ∈ R^{m×k}`, `B ∈ R^{k×n}` on `p` ranks with `S` words each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MmmProblem {
    /// Rows of A and C.
    pub m: usize,
    /// Columns of B and C.
    pub n: usize,
    /// Inner dimension.
    pub k: usize,
    /// Number of ranks.
    pub p: usize,
    /// Local memory per rank, in words (the paper's `S`).
    pub mem_words: usize,
}

/// The matrix-shape classes of the paper's evaluation (§8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// `m = n = k` (up to a small factor).
    Square,
    /// One huge inner dimension: `m = n ≪ k` ("tall-and-skinny" A^T·B).
    LargeK,
    /// One huge outer dimension: `m ≫ n = k`.
    LargeM,
    /// Two large outer dimensions, tiny `k`: rank-k update.
    Flat,
    /// Anything else.
    Irregular,
}

impl MmmProblem {
    /// Create a problem instance.
    ///
    /// # Panics
    /// Panics if any dimension or the rank count is zero.
    pub fn new(m: usize, n: usize, k: usize, p: usize, mem_words: usize) -> Self {
        assert!(m > 0 && n > 0 && k > 0, "matrix dimensions must be positive");
        assert!(p > 0, "need at least one rank");
        assert!(mem_words > 0, "ranks need memory");
        MmmProblem {
            m,
            n,
            k,
            p,
            mem_words,
        }
    }

    /// Total multiply-add flops of the classical algorithm: `2·m·n·k`.
    pub fn flops(&self) -> u64 {
        2 * self.m as u64 * self.n as u64 * self.k as u64
    }

    /// The multiplication volume `m·n·k` (iteration-space points).
    pub fn volume(&self) -> u64 {
        self.m as u64 * self.n as u64 * self.k as u64
    }

    /// Words of the three matrices `(|A|, |B|, |C|) = (mk, kn, mn)`.
    pub fn matrix_words(&self) -> (u64, u64, u64) {
        (
            self.m as u64 * self.k as u64,
            self.k as u64 * self.n as u64,
            self.m as u64 * self.n as u64,
        )
    }

    /// The paper's §6 feasibility assumption: all matrices fit in collective
    /// memory, `pS ≥ mn + mk + nk`.
    pub fn fits_collective_memory(&self) -> bool {
        let (a, b, c) = self.matrix_words();
        (self.p as u128) * (self.mem_words as u128) >= (a + b + c) as u128
    }

    /// Classify the shape with the paper's informal taxonomy. A dimension is
    /// "much larger" when it exceeds another by at least 4×.
    pub fn shape(&self) -> Shape {
        let (m, n, k) = (self.m as f64, self.n as f64, self.k as f64);
        let close = |x: f64, y: f64| x / y < 4.0 && y / x < 4.0;
        let much = |x: f64, y: f64| x >= 4.0 * y;
        if close(m, n) && close(n, k) && close(m, k) {
            Shape::Square
        } else if close(m, n) && much(k, m) {
            Shape::LargeK
        } else if close(n, k) && much(m, n) {
            Shape::LargeM
        } else if close(m, n) && much(m, k) {
            Shape::Flat
        } else {
            Shape::Irregular
        }
    }

    /// The RPA water-molecule benchmark dimensions of §8: simulating `w`
    /// molecules gives `m = n = 136·w`, `k = 228·w²` (w = 128 in the paper's
    /// strong-scaling runs: 17,408 × 3,735,552).
    pub fn rpa_water(w: usize, p: usize, mem_words: usize) -> Self {
        MmmProblem::new(136 * w, 136 * w, 228 * w * w, p, mem_words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flops_and_words() {
        let p = MmmProblem::new(4, 5, 6, 2, 100);
        assert_eq!(p.flops(), 240);
        assert_eq!(p.volume(), 120);
        assert_eq!(p.matrix_words(), (24, 30, 20));
    }

    #[test]
    fn collective_memory_check() {
        // mn + mk + nk = 20 + 24 + 30 = 74.
        let fits = MmmProblem::new(4, 5, 6, 2, 37);
        assert!(fits.fits_collective_memory());
        let tight = MmmProblem::new(4, 5, 6, 2, 36);
        assert!(!tight.fits_collective_memory());
    }

    #[test]
    fn shape_classification() {
        assert_eq!(MmmProblem::new(100, 100, 100, 4, 1).shape(), Shape::Square);
        assert_eq!(MmmProblem::new(100, 120, 300, 4, 1).shape(), Shape::Square);
        assert_eq!(MmmProblem::new(100, 100, 10_000, 4, 1).shape(), Shape::LargeK);
        assert_eq!(MmmProblem::new(10_000, 100, 100, 4, 1).shape(), Shape::LargeM);
        assert_eq!(MmmProblem::new(10_000, 10_000, 100, 4, 1).shape(), Shape::Flat);
        assert_eq!(MmmProblem::new(10_000, 100, 10_000, 4, 1).shape(), Shape::Irregular);
    }

    #[test]
    fn rpa_water_dimensions_match_paper() {
        let p = MmmProblem::rpa_water(128, 2048, 1 << 20);
        assert_eq!(p.m, 17_408);
        assert_eq!(p.n, 17_408);
        assert_eq!(p.k, 3_735_552);
        assert_eq!(p.shape(), Shape::LargeK);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dimension_rejected() {
        let _ = MmmProblem::new(0, 1, 1, 1, 1);
    }
}
