//! The optimal sequential → parallel schedule derivation (§5, §6.3).
//!
//! `FindSeqSchedule` (Line 1 of Algorithm 1) and `ParallelizeSched` (Line 2)
//! solve Eq. 32:
//!
//! ```text
//! a = min{ √S, (mnk/p)^(1/3) },   b = max{ mnk/(pS), (mnk/p)^(1/3) }
//! ```
//!
//! giving every rank an `[a × a × b]` local domain: in the *limited memory*
//! regime the C-tile face is pinned at `√S × √S` and the domain grows along
//! k; with *extra memory* the domain is a cube. The latency-minimizing round
//! size `s = ⌊(S − a²)/(2a)⌋` (Line 6) splits the k-extent into
//! `t = ⌈b/s⌉` communication steps (§6.3, I/O–latency trade-off).
//!
//! Memory accounting convention: like the paper's analysis (which allows
//! `a² = S`), the working set counted against `S` is the C tile plus the
//! double-buffered A/B round slabs; the rank's *own* shard of the initial
//! data is charged to the problem's input footprint, not the schedule.

use crate::problem::MmmProblem;

/// The optimal local-domain shape of Eq. 32, as reals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimalDomain {
    /// C-tile edge `a`.
    pub a: f64,
    /// k-extent `b`.
    pub b: f64,
}

/// `FindSeqSchedule`: the sequential tile edge `a = min(√S, (mnk/p)^(1/3))`.
pub fn find_seq_schedule(prob: &MmmProblem) -> f64 {
    let per_domain = prob.volume() as f64 / prob.p as f64;
    (prob.mem_words as f64).sqrt().min(per_domain.cbrt())
}

/// `ParallelizeSched`: the k-extent `b = max(mnk/(pS), (mnk/p)^(1/3))`.
pub fn parallelize_schedule(prob: &MmmProblem) -> f64 {
    let per_domain = prob.volume() as f64 / prob.p as f64;
    (per_domain / prob.mem_words as f64).max(per_domain.cbrt())
}

/// Both halves of Eq. 32 at once.
pub fn optimal_domain(prob: &MmmProblem) -> OptimalDomain {
    OptimalDomain {
        a: find_seq_schedule(prob),
        b: parallelize_schedule(prob),
    }
}

/// The communication-step structure of one rank's local domain (§6.3 and
/// Lines 6–7 of Algorithm 1), for a concrete integer domain `lm × ln × lk`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepPlan {
    /// Number of communication rounds `t`.
    pub steps: usize,
    /// k-extent of each round (balanced split of `lk`; every entry is at
    /// most the latency-optimal `s`).
    pub slabs: Vec<usize>,
}

/// Split a rank's k-extent `lk` into rounds that fit memory: each round
/// holds the `lm × ln` C tile plus double-buffered slabs of `s·lm + s·ln`
/// incoming words, so `s = ⌊(S − lm·ln)/(2(lm + ln))⌋` (the paper's
/// `⌊(S − a²)/(2a)⌋` generalized to rectangles), clamped to `[1, lk]`.
///
/// Returns `None` when even `s = 1` does not fit (the C tile plus one
/// column/row pair exceeds `S`) — the caller must pick a smaller grid tile.
pub fn latency_steps(lm: usize, ln: usize, lk: usize, mem_words: usize) -> Option<StepPlan> {
    let tile = lm.checked_mul(ln)?;
    let per_col = 2 * (lm + ln);
    if tile + per_col > mem_words {
        return None;
    }
    let s = ((mem_words - tile) / per_col).clamp(1, lk.max(1));
    let steps = lk.div_ceil(s);
    // Balanced slabs: sizes differ by at most one and never exceed s.
    let base = lk / steps;
    let extra = lk % steps;
    let slabs = (0..steps).map(|i| base + usize::from(i < extra)).collect();
    Some(StepPlan { steps, slabs })
}

impl StepPlan {
    /// Offsets of each slab within `0..lk`.
    pub fn slab_ranges(&self) -> Vec<std::ops::Range<usize>> {
        let mut out = Vec::with_capacity(self.slabs.len());
        let mut x = 0;
        for &w in &self.slabs {
            out.push(x..x + w);
            x += w;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limited_memory_regime_pins_a_at_sqrt_s() {
        // mnk/p = 2^30, S = 2^16 -> sqrt(S) = 256 < cbrt = 1024.
        let prob = MmmProblem::new(1 << 12, 1 << 12, 1 << 12, 64, 1 << 16);
        let d = optimal_domain(&prob);
        assert!((d.a - 256.0).abs() < 1e-9);
        // b = mnk/(pS) = 2^30 / 2^16 = 2^14.
        assert!((d.b - 16384.0).abs() < 1e-6);
        assert!(d.b > d.a, "limited memory stretches the domain along k");
    }

    #[test]
    fn extra_memory_regime_gives_cubic_domain() {
        // mnk/p = 2^30, S = 2^26 -> sqrt(S) = 2^13 > cbrt = 2^10.
        let prob = MmmProblem::new(1 << 12, 1 << 12, 1 << 12, 64, 1 << 26);
        let d = optimal_domain(&prob);
        assert!((d.a - 1024.0).abs() < 1e-6);
        assert!((d.b - 1024.0).abs() < 1e-6);
    }

    #[test]
    fn domain_volume_is_work_per_rank() {
        for &(m, n, k, p, s) in &[
            (512usize, 512, 512, 8usize, 1usize << 14),
            (100, 3000, 70, 12, 1 << 12),
            (4096, 32, 4096, 64, 1 << 18),
        ] {
            let prob = MmmProblem::new(m, n, k, p, s);
            let d = optimal_domain(&prob);
            let vol = d.a * d.a * d.b;
            let want = prob.volume() as f64 / p as f64;
            assert!((vol / want - 1.0).abs() < 1e-9, "a²b = {vol} must equal mnk/p = {want}");
        }
    }

    #[test]
    fn latency_steps_respect_memory() {
        // Tile 10x10, S = 180: slack 80 words / (2*(10+10)) = 2 columns.
        let sp = latency_steps(10, 10, 50, 180).unwrap();
        assert_eq!(sp.steps, 25);
        assert!(sp.slabs.iter().all(|&w| w <= 2));
        assert_eq!(sp.slabs.iter().sum::<usize>(), 50);
    }

    #[test]
    fn latency_steps_single_round_with_plenty_memory() {
        let sp = latency_steps(10, 10, 50, 1_000_000).unwrap();
        assert_eq!(sp.steps, 1);
        assert_eq!(sp.slabs, vec![50]);
    }

    #[test]
    fn latency_steps_balanced_remainders() {
        // lk = 7 with s = 2 -> 4 rounds of sizes 2,2,2,1 -> balanced to 2,2,2,1.
        let sp = latency_steps(4, 4, 7, 4 * 4 + 2 * (4 + 4) * 2).unwrap();
        assert_eq!(sp.slabs.iter().sum::<usize>(), 7);
        let max = *sp.slabs.iter().max().unwrap();
        let min = *sp.slabs.iter().min().unwrap();
        assert!(max - min <= 1, "slabs {:?} not balanced", sp.slabs);
        let ranges = sp.slab_ranges();
        assert_eq!(ranges.first().unwrap().start, 0);
        assert_eq!(ranges.last().unwrap().end, 7);
    }

    #[test]
    fn latency_steps_infeasible_tile() {
        assert!(latency_steps(100, 100, 10, 100 * 100 + 1).is_none());
        assert!(latency_steps(100, 100, 10, 100 * 100 + 2 * 200).is_some());
    }

    #[test]
    fn more_memory_means_fewer_steps() {
        let tight = latency_steps(32, 32, 1000, 32 * 32 + 2 * 64 * 2).unwrap();
        let roomy = latency_steps(32, 32, 1000, 32 * 32 + 2 * 64 * 50).unwrap();
        assert!(roomy.steps < tight.steps);
    }
}
