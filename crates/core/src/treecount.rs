//! Exact message/word counts of the tree collectives in `mpsim`.
//!
//! The plans in [`crate::plan`] must predict, per rank, exactly the traffic
//! the executed collectives generate — the integration tests assert equality.
//! These helpers mirror the binomial algorithms in `mpsim::collectives`
//! move-for-move.

/// Number of messages a member at relative position `rel` (root = 0)
/// *receives* during a binomial-tree broadcast over `g` members (1 for every
/// non-root, 0 for the root).
pub fn bcast_recv_count(rel: usize, g: usize) -> u64 {
    debug_assert!(rel < g.max(1));
    u64::from(g > 1 && rel != 0)
}

/// Number of messages a member at relative position `rel` *sends* during a
/// binomial-tree broadcast over `g` members (its child count).
pub fn bcast_send_count(rel: usize, g: usize) -> u64 {
    if g <= 1 {
        return 0;
    }
    // Find the bit we (would) receive on; children live below it.
    let mut mask = 1usize;
    while mask < g {
        if rel & mask != 0 {
            break;
        }
        mask <<= 1;
    }
    let mut sends = 0;
    let mut m = mask >> 1;
    while m > 0 {
        if rel + m < g {
            sends += 1;
        }
        m >>= 1;
    }
    sends
}

/// Number of messages a member at relative position `rel` (root = 0)
/// *receives* during a binomial-tree reduction over `g` members.
pub fn reduce_recv_count(rel: usize, g: usize) -> u64 {
    if g <= 1 {
        return 0;
    }
    let mut mask = 1usize;
    let mut recvs = 0;
    while mask < g {
        if rel & mask == 0 {
            if rel | mask < g {
                recvs += 1;
            }
        } else {
            break;
        }
        mask <<= 1;
    }
    recvs
}

/// Number of messages a member at relative position `rel` *sends* during a
/// binomial-tree reduction (1 for every non-root, 0 for the root).
pub fn reduce_send_count(rel: usize, g: usize) -> u64 {
    u64::from(g > 1 && rel != 0)
}

/// Words received by group position `pos` in a ring all-gather where member
/// `i` contributes `chunks[i]` words: everything except one's own chunk.
pub fn allgather_recv_words(pos: usize, chunks: &[u64]) -> u64 {
    chunks.iter().enumerate().filter(|&(i, _)| i != pos).map(|(_, &w)| w).sum()
}

/// Messages received in a ring all-gather over `g` members: `g − 1`.
pub fn allgather_recv_count(g: usize) -> u64 {
    g.saturating_sub(1) as u64
}

/// Messages received in a Bruck all-gather over `g` members: `⌈log₂ g⌉`.
pub fn allgather_bruck_msgs(g: usize) -> u64 {
    if g <= 1 {
        0
    } else {
        (usize::BITS - (g - 1).leading_zeros()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bcast_counts_conserve_messages() {
        // Total sends == total receives == g - 1 for every group size.
        for g in 1..40 {
            let sends: u64 = (0..g).map(|r| bcast_send_count(r, g)).sum();
            let recvs: u64 = (0..g).map(|r| bcast_recv_count(r, g)).sum();
            assert_eq!(sends, recvs, "g={g}");
            assert_eq!(recvs, (g - 1) as u64, "g={g}");
        }
    }

    #[test]
    fn bcast_root_sends_log_children() {
        assert_eq!(bcast_send_count(0, 8), 3);
        assert_eq!(bcast_send_count(0, 5), 3); // children 1, 2, 4
        assert_eq!(bcast_send_count(0, 1), 0);
        assert_eq!(bcast_send_count(4, 8), 2); // children 5, 6
        assert_eq!(bcast_recv_count(0, 8), 0);
        assert_eq!(bcast_recv_count(3, 8), 1);
    }

    #[test]
    fn reduce_counts_conserve_messages() {
        for g in 1..40 {
            let sends: u64 = (0..g).map(|r| reduce_send_count(r, g)).sum();
            let recvs: u64 = (0..g).map(|r| reduce_recv_count(r, g)).sum();
            assert_eq!(sends, recvs, "g={g}");
            assert_eq!(recvs, (g - 1) as u64, "g={g}");
        }
    }

    #[test]
    fn reduce_root_receives_log() {
        assert_eq!(reduce_recv_count(0, 8), 3);
        assert_eq!(reduce_recv_count(0, 5), 3);
        assert_eq!(reduce_recv_count(2, 8), 1); // receives from 3, sends to 0
        assert_eq!(reduce_recv_count(1, 8), 0);
        assert_eq!(reduce_send_count(0, 8), 0);
        assert_eq!(reduce_send_count(5, 8), 1);
    }

    #[test]
    fn allgather_words() {
        let chunks = [10, 20, 30];
        assert_eq!(allgather_recv_words(0, &chunks), 50);
        assert_eq!(allgather_recv_words(1, &chunks), 40);
        assert_eq!(allgather_recv_count(3), 2);
        assert_eq!(allgather_recv_count(1), 0);
        assert_eq!(allgather_bruck_msgs(1), 0);
        assert_eq!(allgather_bruck_msgs(2), 1);
        assert_eq!(allgather_bruck_msgs(5), 3);
        assert_eq!(allgather_bruck_msgs(8), 3);
        assert_eq!(allgather_bruck_msgs(9), 4);
    }
}
