//! Local matrix-multiplication kernels (`C += A * B`).
//!
//! The paper uses vendor BLAS for the per-rank multiplications; this module is
//! the from-scratch substitute. Four kernels are provided:
//!
//! * [`gemm_naive`] — triple loop in `i, k, j` order (row-major friendly);
//!   the correctness reference.
//! * [`gemm_tiled`] — the same computation blocked into cache-sized tiles.
//!   This is exactly the sequential near-I/O-optimal schedule of the paper's
//!   Listing 1 generalized to `a_opt x b_opt` blocks: each tile of C is kept
//!   "red" (hot) while streaming panels of A and B through it.
//! * [`gemm_packed`] — the default: BLIS-style cache blocking with A/B panels
//!   packed into reused (thread-local arena) scratch and an unrolled
//!   `MR x NR` register micro-kernel. This is the §7 "local tuning" story of
//!   the paper — the distributed schedule only pays off when the per-rank
//!   multiply runs near peak.
//! * [`gemm_parallel`] — row-band parallelization using `std::thread::scope`
//!   (the local-domain rows are independent).
//!
//! All kernels *accumulate* into C, matching the distributed algorithms that
//! sum partial products over k-slabs. Every kernel sums each `C[i][j]` over
//! `k` in increasing order with a single accumulator, so packing and register
//! blocking reorder *memory traffic*, never the floating-point reduction —
//! kernels agree bitwise (modulo the sign of exact zeros when an input
//! contains ±0.0 entries).

use crate::matrix::Matrix;
use std::cell::RefCell;

/// Number of floating-point operations of a classical `m x k x n` MMM
/// (one multiply and one add per iteration-space point): `2 m n k`.
#[inline]
pub fn mmm_flops(m: usize, n: usize, k: usize) -> u64 {
    2 * m as u64 * n as u64 * k as u64
}

/// Kernel selector used by the distributed algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Gemm {
    /// Reference triple loop.
    Naive,
    /// Cache-tiled sequential kernel.
    Tiled,
    /// Packed-panel register-blocked kernel (the default).
    #[default]
    Packed,
    /// Multi-threaded tiled kernel with the given number of threads.
    Parallel(usize),
}

impl Gemm {
    /// Run the selected kernel: `c += a * b`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn run(self, a: &Matrix, b: &Matrix, c: &mut Matrix) {
        match self {
            Gemm::Naive => gemm_naive(a, b, c),
            Gemm::Tiled => gemm_tiled(a, b, c),
            Gemm::Packed => gemm_packed(a, b, c),
            Gemm::Parallel(t) => gemm_parallel(a, b, c, t),
        }
    }
}

fn check_dims(a: &Matrix, b: &Matrix, c: &Matrix) -> (usize, usize, usize) {
    let (m, k) = (a.rows(), a.cols());
    let (kb, n) = (b.rows(), b.cols());
    assert_eq!(k, kb, "inner dimensions of A ({k}) and B ({kb}) differ");
    assert_eq!(c.rows(), m, "C has {} rows, expected {m}", c.rows());
    assert_eq!(c.cols(), n, "C has {} cols, expected {n}", c.cols());
    (m, n, k)
}

/// Reference kernel: `c += a * b` with the plain `i, k, j` triple loop.
pub fn gemm_naive(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let (m, n, k) = check_dims(a, b, c);
    let (av, bv) = (a.as_slice(), b.as_slice());
    let cv = c.as_mut_slice();
    for i in 0..m {
        for kk in 0..k {
            let aik = av[i * k + kk];
            if aik == 0.0 {
                continue;
            }
            let brow = &bv[kk * n..(kk + 1) * n];
            let crow = &mut cv[i * n..(i + 1) * n];
            for j in 0..n {
                crow[j] += aik * brow[j];
            }
        }
    }
}

/// Tile edge (in elements) used by the cache-blocked kernel. 64x64 f64 tiles
/// of C (32 KiB) fit comfortably in L1/L2 alongside the streamed panels.
const TILE: usize = 64;

/// Cache-tiled kernel: `c += a * b`.
///
/// Loops over `TILE x TILE` tiles of C; for each, streams `TILE`-wide panels
/// of A and B. This is the "keep the C tile red, load thin panels" schedule
/// that Section 5.2.7 of the paper proves near-optimal sequentially.
pub fn gemm_tiled(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let (m, n, k) = check_dims(a, b, c);
    let (av, bv) = (a.as_slice(), b.as_slice());
    let cv = c.as_mut_slice();
    gemm_tiled_raw(av, bv, cv, m, n, k, 0, m);
}

/// Tiled kernel over a row band `[row0, row1)` of C (and A). Shared by the
/// sequential and parallel drivers.
#[allow(clippy::too_many_arguments)]
fn gemm_tiled_raw(
    av: &[f64],
    bv: &[f64],
    cv: &mut [f64],
    _m: usize,
    n: usize,
    k: usize,
    row0: usize,
    row1: usize,
) {
    let mut i0 = row0;
    while i0 < row1 {
        let i1 = (i0 + TILE).min(row1);
        let mut k0 = 0;
        while k0 < k {
            let k1 = (k0 + TILE).min(k);
            let mut j0 = 0;
            while j0 < n {
                let j1 = (j0 + TILE).min(n);
                // Micro tile: C[i0..i1, j0..j1] += A[i0..i1, k0..k1] * B[k0..k1, j0..j1]
                for i in i0..i1 {
                    let arow = &av[i * k..i * k + k];
                    let crow = &mut cv[i * n + j0..i * n + j1];
                    for kk in k0..k1 {
                        let aik = arow[kk];
                        let brow = &bv[kk * n + j0..kk * n + j1];
                        for (cj, bj) in crow.iter_mut().zip(brow) {
                            *cj += aik * *bj;
                        }
                    }
                }
                j0 = j1;
            }
            k0 = k1;
        }
        i0 = i1;
    }
}

// ---------------------------------------------------------------------------
// Packed kernel (BLIS-style blocking: jc -> pc -> ic -> jr -> ir -> micro)
// ---------------------------------------------------------------------------

/// Rows of the register micro-tile. `MR x NR` accumulators live in registers
/// for the whole k-loop of a panel pair.
const MR: usize = 4;
/// Columns of the register micro-tile.
const NR: usize = 8;
/// Row-block of A packed per inner pass (`MC x KC` panel, ~L2-resident).
const MC: usize = 128;
/// Shared-dimension block (`KC` rows of B / cols of A per packed panel).
const KC: usize = 256;
/// Column-block of B packed per outer pass (`KC x NC` panel, ~L3-resident).
const NC: usize = 2048;

thread_local! {
    /// Reused A/B packing scratch — the crate-local arena. `gemm_packed` is
    /// called once per leaf/step by the distributed algorithms, so reusing
    /// these buffers removes two heap round-trips from every local multiply.
    static PACK_ARENA: RefCell<(Vec<f64>, Vec<f64>)> = const { RefCell::new((Vec::new(), Vec::new())) };
}

/// Packed register-blocked kernel: `c += a * b`.
///
/// Blocks the operands BLIS-style (`NC`/`KC`/`MC` cache levels), copies each
/// A panel into `MR`-interleaved and each B panel into `NR`-interleaved
/// scratch so the micro-kernel streams both with unit stride, and computes
/// `MR x NR` C micro-tiles entirely in registers. Panels are padded with
/// zeros to full `MR`/`NR` width; padded lanes are computed and discarded,
/// which keeps the micro-kernel branch-free.
///
/// Each `C[i][j]` is read once per `KC` block, accumulated over `k` in
/// increasing order, and stored back — the same reduction order as
/// [`gemm_naive`], so switching kernels does not perturb results.
pub fn gemm_packed(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let (m, n, k) = check_dims(a, b, c);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let (av, bv) = (a.as_slice(), b.as_slice());
    let cv = c.as_mut_slice();
    PACK_ARENA.with(|arena| {
        let (apack, bpack) = &mut *arena.borrow_mut();
        let mut jc = 0;
        while jc < n {
            let nc = NC.min(n - jc);
            let mut pc = 0;
            while pc < k {
                let kc = KC.min(k - pc);
                pack_b_panel(bv, bpack, n, pc, kc, jc, nc);
                let mut ic = 0;
                while ic < m {
                    let mc = MC.min(m - ic);
                    pack_a_panel(av, apack, k, ic, mc, pc, kc);
                    macro_kernel(apack, bpack, cv, n, ic, mc, jc, nc, kc);
                    ic += mc;
                }
                pc += kc;
            }
            jc += nc;
        }
    });
}

/// Pack `A[ic..ic+mc, pc..pc+kc]` as `MR`-row micro-panels: element
/// `(ir + i, kk)` of the block lands at `panel_base + kk * MR + i`, zero-padded
/// to a multiple of `MR` rows.
fn pack_a_panel(av: &[f64], apack: &mut Vec<f64>, lda: usize, ic: usize, mc: usize, pc: usize, kc: usize) {
    apack.clear();
    apack.reserve(mc.div_ceil(MR) * MR * kc);
    let mut ir = 0;
    while ir < mc {
        let rows = MR.min(mc - ir);
        for kk in 0..kc {
            for i in 0..MR {
                apack.push(if i < rows {
                    av[(ic + ir + i) * lda + pc + kk]
                } else {
                    0.0
                });
            }
        }
        ir += MR;
    }
}

/// Pack `B[pc..pc+kc, jc..jc+nc]` as `NR`-column micro-panels: element
/// `(kk, jr + j)` of the block lands at `panel_base + kk * NR + j`, zero-padded
/// to a multiple of `NR` columns.
fn pack_b_panel(bv: &[f64], bpack: &mut Vec<f64>, ldb: usize, pc: usize, kc: usize, jc: usize, nc: usize) {
    bpack.clear();
    bpack.reserve(nc.div_ceil(NR) * NR * kc);
    let mut jr = 0;
    while jr < nc {
        let cols = NR.min(nc - jr);
        for kk in 0..kc {
            let brow = &bv[(pc + kk) * ldb + jc + jr..][..cols];
            bpack.extend_from_slice(brow);
            bpack.extend(std::iter::repeat_n(0.0, NR - cols));
        }
        jr += NR;
    }
}

/// Multiply one packed A panel (`mc x kc`) by one packed B panel (`kc x nc`)
/// into `C[ic.., jc..]`, micro-tile by micro-tile.
#[allow(clippy::too_many_arguments)]
fn macro_kernel(
    apack: &[f64],
    bpack: &[f64],
    cv: &mut [f64],
    ldc: usize,
    ic: usize,
    mc: usize,
    jc: usize,
    nc: usize,
    kc: usize,
) {
    let mut jr = 0;
    while jr < nc {
        let nr = NR.min(nc - jr);
        let bpanel = &bpack[(jr / NR) * kc * NR..][..kc * NR];
        let mut ir = 0;
        while ir < mc {
            let mr = MR.min(mc - ir);
            let apanel = &apack[(ir / MR) * kc * MR..][..kc * MR];
            micro_kernel(apanel, bpanel, cv, ldc, (ic + ir) * ldc + jc + jr, kc, mr, nr);
            ir += MR;
        }
        jr += NR;
    }
}

/// The register kernel: `C[mr x nr] += Apanel * Bpanel` over `kc` steps.
///
/// All `MR x NR` accumulators are named locals, so the inner loops unroll
/// fully and vectorize; only the valid `mr x nr` corner is loaded/stored.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn micro_kernel(
    apanel: &[f64],
    bpanel: &[f64],
    cv: &mut [f64],
    ldc: usize,
    c0: usize,
    kc: usize,
    mr: usize,
    nr: usize,
) {
    let mut acc = [[0.0f64; NR]; MR];
    for i in 0..mr {
        let crow = &cv[c0 + i * ldc..c0 + i * ldc + nr];
        acc[i][..nr].copy_from_slice(crow);
    }
    for kk in 0..kc {
        let arow: &[f64; MR] = apanel[kk * MR..kk * MR + MR].try_into().unwrap();
        let brow: &[f64; NR] = bpanel[kk * NR..kk * NR + NR].try_into().unwrap();
        for i in 0..MR {
            let aik = arow[i];
            for j in 0..NR {
                acc[i][j] += aik * brow[j];
            }
        }
    }
    for i in 0..mr {
        let crow = &mut cv[c0 + i * ldc..c0 + i * ldc + nr];
        crow.copy_from_slice(&acc[i][..nr]);
    }
}

/// Multi-threaded kernel: `c += a * b` using `threads` std scoped threads
/// (`std::thread::scope`), each owning a contiguous row band of C.
///
/// Row bands are disjoint, so no synchronization is needed beyond the scope
/// join — the same argument the paper uses for its `P_ij` parallelization
/// (dependencies are parallel to the k dimension only).
pub fn gemm_parallel(a: &Matrix, b: &Matrix, c: &mut Matrix, threads: usize) {
    let (m, n, k) = check_dims(a, b, c);
    let threads = threads.max(1).min(m.max(1));
    if threads == 1 || m == 0 || n == 0 || k == 0 {
        gemm_tiled(a, b, c);
        return;
    }
    let (av, bv) = (a.as_slice(), b.as_slice());
    let cv = c.as_mut_slice();
    // Split C into row bands, one chunk per thread.
    let band = m.div_ceil(threads);
    let mut bands: Vec<(usize, &mut [f64])> = Vec::with_capacity(threads);
    let mut rest = cv;
    let mut row = 0;
    while row < m {
        let rows_here = band.min(m - row);
        let (head, tail) = rest.split_at_mut(rows_here * n);
        bands.push((row, head));
        rest = tail;
        row += rows_here;
    }
    std::thread::scope(|s| {
        for (row0, cband) in bands {
            let rows_here = cband.len() / n;
            s.spawn(move || {
                // Each band is an independent (rows_here x n x k) gemm.
                let asub = &av[row0 * k..(row0 + rows_here) * k];
                gemm_tiled_raw(asub, bv, cband, rows_here, n, k, 0, rows_here);
            });
        }
    });
}

/// Convenience wrapper: allocate C and return `a * b` with the default
/// ([`gemm_packed`]) kernel.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    gemm_packed(a, b, &mut c);
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for kk in 0..a.cols() {
                    acc += a.get(i, kk) * b.get(kk, j);
                }
                c.set(i, j, acc);
            }
        }
        c
    }

    #[test]
    fn flop_count_formula() {
        assert_eq!(mmm_flops(2, 3, 4), 48);
        assert_eq!(mmm_flops(0, 3, 4), 0);
        assert_eq!(mmm_flops(1000, 1000, 1000), 2_000_000_000);
    }

    #[test]
    fn naive_matches_reference_small() {
        let a = Matrix::deterministic(5, 7, 1);
        let b = Matrix::deterministic(7, 4, 2);
        let mut c = Matrix::zeros(5, 4);
        gemm_naive(&a, &b, &mut c);
        assert!(c.approx_eq(&reference(&a, &b), 1e-12));
    }

    #[test]
    fn naive_accumulates_rather_than_overwrites() {
        let a = Matrix::from_fn(2, 2, |i, j| if i == j { 1.0 } else { 0.0 });
        let b = Matrix::from_fn(2, 2, |_, _| 1.0);
        let mut c = Matrix::from_fn(2, 2, |_, _| 10.0);
        gemm_naive(&a, &b, &mut c);
        assert!(c.approx_eq(&Matrix::from_fn(2, 2, |_, _| 11.0), 1e-12));
    }

    #[test]
    fn tiled_matches_naive_on_tile_boundaries() {
        // Sizes straddling the TILE edge exercise remainder handling.
        for &(m, n, k) in &[(64, 64, 64), (65, 63, 64), (1, 130, 7), (130, 1, 129)] {
            let a = Matrix::deterministic(m, k, 3);
            let b = Matrix::deterministic(k, n, 4);
            let mut c1 = Matrix::zeros(m, n);
            let mut c2 = Matrix::zeros(m, n);
            gemm_naive(&a, &b, &mut c1);
            gemm_tiled(&a, &b, &mut c2);
            assert!(c1.approx_eq(&c2, 1e-10), "tiled mismatch at {m}x{n}x{k}: {}", c1.max_abs_diff(&c2));
        }
    }

    #[test]
    fn parallel_matches_tiled_various_thread_counts() {
        let a = Matrix::deterministic(97, 55, 5);
        let b = Matrix::deterministic(55, 83, 6);
        let mut want = Matrix::zeros(97, 83);
        gemm_tiled(&a, &b, &mut want);
        for threads in [1, 2, 3, 4, 8, 97, 200] {
            let mut c = Matrix::zeros(97, 83);
            gemm_parallel(&a, &b, &mut c, threads);
            assert!(want.approx_eq(&c, 1e-10), "parallel({threads}) mismatch: {}", want.max_abs_diff(&c));
        }
    }

    #[test]
    fn parallel_accumulates() {
        let a = Matrix::deterministic(10, 10, 7);
        let b = Matrix::deterministic(10, 10, 8);
        let mut c = Matrix::from_fn(10, 10, |_, _| 5.0);
        let mut want = Matrix::from_fn(10, 10, |_, _| 5.0);
        gemm_naive(&a, &b, &mut want);
        gemm_parallel(&a, &b, &mut c, 4);
        assert!(want.approx_eq(&c, 1e-10));
    }

    #[test]
    fn empty_dimensions_are_noops() {
        let a = Matrix::zeros(0, 5);
        let b = Matrix::zeros(5, 3);
        let mut c = Matrix::zeros(0, 3);
        gemm_naive(&a, &b, &mut c);
        gemm_tiled(&a, &b, &mut c);
        gemm_parallel(&a, &b, &mut c, 4);
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(0, 2);
        let mut c = Matrix::zeros(3, 2);
        gemm_parallel(&a, &b, &mut c, 2);
        assert!(c.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn dimension_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let mut c = Matrix::zeros(2, 2);
        gemm_naive(&a, &b, &mut c);
    }

    #[test]
    fn gemm_enum_dispatch() {
        let a = Matrix::deterministic(20, 30, 9);
        let b = Matrix::deterministic(30, 10, 10);
        let want = reference(&a, &b);
        for g in [Gemm::Naive, Gemm::Tiled, Gemm::Packed, Gemm::Parallel(3)] {
            let mut c = Matrix::zeros(20, 10);
            g.run(&a, &b, &mut c);
            assert!(want.approx_eq(&c, 1e-10), "{g:?} mismatch");
        }
    }

    #[test]
    fn packed_matches_naive_bitwise_across_block_edges() {
        // Sizes straddling MR/NR/MC/KC/NC boundaries exercise every padded
        // corner of the packing; entries avoid exact zeros, so agreement is
        // bitwise, not just approximate.
        for &(m, n, k) in &[
            (1, 1, 1),
            (MR, NR, 4),
            (MR + 1, NR + 3, KC + 1),
            (MC + 5, NR - 1, 3),
            (130, 257, 61),
            (MC, NC.min(96), KC),
        ] {
            let a = Matrix::deterministic(m, k, 21);
            let b = Matrix::deterministic(k, n, 22);
            let mut c1 = Matrix::from_fn(m, n, |i, j| (i + 2 * j) as f64 * 0.25 + 0.125);
            let mut c2 = c1.clone();
            gemm_naive(&a, &b, &mut c1);
            gemm_packed(&a, &b, &mut c2);
            let same = c1.as_slice().iter().zip(c2.as_slice()).all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(same, "packed kernel diverged bitwise at {m}x{n}x{k}: {}", c1.max_abs_diff(&c2));
        }
    }

    #[test]
    fn packed_accumulates_and_handles_empty() {
        let a = Matrix::deterministic(10, 10, 7);
        let b = Matrix::deterministic(10, 10, 8);
        let mut c = Matrix::from_fn(10, 10, |_, _| 5.0);
        let mut want = Matrix::from_fn(10, 10, |_, _| 5.0);
        gemm_naive(&a, &b, &mut want);
        gemm_packed(&a, &b, &mut c);
        assert!(want.approx_eq(&c, 1e-12));
        let a = Matrix::zeros(0, 5);
        let b = Matrix::zeros(5, 3);
        let mut c = Matrix::zeros(0, 3);
        gemm_packed(&a, &b, &mut c);
        assert!(c.is_empty());
    }

    #[test]
    fn default_kernel_is_packed() {
        assert_eq!(Gemm::default(), Gemm::Packed);
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::deterministic(6, 6, 11);
        let eye = Matrix::from_fn(6, 6, |i, j| if i == j { 1.0 } else { 0.0 });
        assert!(matmul(&a, &eye).approx_eq(&a, 1e-12));
        assert!(matmul(&eye, &a).approx_eq(&a, 1e-12));
    }

    #[test]
    fn matmul_associativity_numerically() {
        let a = Matrix::deterministic(8, 5, 12);
        let b = Matrix::deterministic(5, 9, 13);
        let c = Matrix::deterministic(9, 4, 14);
        let left = matmul(&matmul(&a, &b), &c);
        let right = matmul(&a, &matmul(&b, &c));
        assert!(left.approx_eq(&right, 1e-9));
    }
}
