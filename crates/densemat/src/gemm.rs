//! Local matrix-multiplication kernels (`C += A * B`).
//!
//! The paper uses vendor BLAS for the per-rank multiplications; this module is
//! the from-scratch substitute. Three kernels are provided:
//!
//! * [`gemm_naive`] — triple loop in `i, k, j` order (row-major friendly);
//!   the correctness reference.
//! * [`gemm_tiled`] — the same computation blocked into cache-sized tiles.
//!   This is exactly the sequential near-I/O-optimal schedule of the paper's
//!   Listing 1 generalized to `a_opt x b_opt` blocks: each tile of C is kept
//!   "red" (hot) while streaming panels of A and B through it.
//! * [`gemm_parallel`] — row-band parallelization of the tiled kernel using
//!   `std::thread::scope` (the local-domain rows are independent).
//!
//! All kernels *accumulate* into C, matching the distributed algorithms that
//! sum partial products over k-slabs.

use crate::matrix::Matrix;

/// Number of floating-point operations of a classical `m x k x n` MMM
/// (one multiply and one add per iteration-space point): `2 m n k`.
#[inline]
pub fn mmm_flops(m: usize, n: usize, k: usize) -> u64 {
    2 * m as u64 * n as u64 * k as u64
}

/// Kernel selector used by the distributed algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gemm {
    /// Reference triple loop.
    Naive,
    /// Cache-tiled sequential kernel.
    Tiled,
    /// Multi-threaded tiled kernel with the given number of threads.
    Parallel(usize),
}

impl Gemm {
    /// Run the selected kernel: `c += a * b`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn run(self, a: &Matrix, b: &Matrix, c: &mut Matrix) {
        match self {
            Gemm::Naive => gemm_naive(a, b, c),
            Gemm::Tiled => gemm_tiled(a, b, c),
            Gemm::Parallel(t) => gemm_parallel(a, b, c, t),
        }
    }
}

fn check_dims(a: &Matrix, b: &Matrix, c: &Matrix) -> (usize, usize, usize) {
    let (m, k) = (a.rows(), a.cols());
    let (kb, n) = (b.rows(), b.cols());
    assert_eq!(k, kb, "inner dimensions of A ({k}) and B ({kb}) differ");
    assert_eq!(c.rows(), m, "C has {} rows, expected {m}", c.rows());
    assert_eq!(c.cols(), n, "C has {} cols, expected {n}", c.cols());
    (m, n, k)
}

/// Reference kernel: `c += a * b` with the plain `i, k, j` triple loop.
pub fn gemm_naive(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let (m, n, k) = check_dims(a, b, c);
    let (av, bv) = (a.as_slice(), b.as_slice());
    let cv = c.as_mut_slice();
    for i in 0..m {
        for kk in 0..k {
            let aik = av[i * k + kk];
            if aik == 0.0 {
                continue;
            }
            let brow = &bv[kk * n..(kk + 1) * n];
            let crow = &mut cv[i * n..(i + 1) * n];
            for j in 0..n {
                crow[j] += aik * brow[j];
            }
        }
    }
}

/// Tile edge (in elements) used by the cache-blocked kernel. 64x64 f64 tiles
/// of C (32 KiB) fit comfortably in L1/L2 alongside the streamed panels.
const TILE: usize = 64;

/// Cache-tiled kernel: `c += a * b`.
///
/// Loops over `TILE x TILE` tiles of C; for each, streams `TILE`-wide panels
/// of A and B. This is the "keep the C tile red, load thin panels" schedule
/// that Section 5.2.7 of the paper proves near-optimal sequentially.
pub fn gemm_tiled(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let (m, n, k) = check_dims(a, b, c);
    let (av, bv) = (a.as_slice(), b.as_slice());
    let cv = c.as_mut_slice();
    gemm_tiled_raw(av, bv, cv, m, n, k, 0, m);
}

/// Tiled kernel over a row band `[row0, row1)` of C (and A). Shared by the
/// sequential and parallel drivers.
#[allow(clippy::too_many_arguments)]
fn gemm_tiled_raw(
    av: &[f64],
    bv: &[f64],
    cv: &mut [f64],
    _m: usize,
    n: usize,
    k: usize,
    row0: usize,
    row1: usize,
) {
    let mut i0 = row0;
    while i0 < row1 {
        let i1 = (i0 + TILE).min(row1);
        let mut k0 = 0;
        while k0 < k {
            let k1 = (k0 + TILE).min(k);
            let mut j0 = 0;
            while j0 < n {
                let j1 = (j0 + TILE).min(n);
                // Micro tile: C[i0..i1, j0..j1] += A[i0..i1, k0..k1] * B[k0..k1, j0..j1]
                for i in i0..i1 {
                    let arow = &av[i * k..i * k + k];
                    let crow = &mut cv[i * n + j0..i * n + j1];
                    for kk in k0..k1 {
                        let aik = arow[kk];
                        let brow = &bv[kk * n + j0..kk * n + j1];
                        for (cj, bj) in crow.iter_mut().zip(brow) {
                            *cj += aik * *bj;
                        }
                    }
                }
                j0 = j1;
            }
            k0 = k1;
        }
        i0 = i1;
    }
}

/// Multi-threaded kernel: `c += a * b` using `threads` std scoped threads
/// (`std::thread::scope`), each owning a contiguous row band of C.
///
/// Row bands are disjoint, so no synchronization is needed beyond the scope
/// join — the same argument the paper uses for its `P_ij` parallelization
/// (dependencies are parallel to the k dimension only).
pub fn gemm_parallel(a: &Matrix, b: &Matrix, c: &mut Matrix, threads: usize) {
    let (m, n, k) = check_dims(a, b, c);
    let threads = threads.max(1).min(m.max(1));
    if threads == 1 || m == 0 || n == 0 || k == 0 {
        gemm_tiled(a, b, c);
        return;
    }
    let (av, bv) = (a.as_slice(), b.as_slice());
    let cv = c.as_mut_slice();
    // Split C into row bands, one chunk per thread.
    let band = m.div_ceil(threads);
    let mut bands: Vec<(usize, &mut [f64])> = Vec::with_capacity(threads);
    let mut rest = cv;
    let mut row = 0;
    while row < m {
        let rows_here = band.min(m - row);
        let (head, tail) = rest.split_at_mut(rows_here * n);
        bands.push((row, head));
        rest = tail;
        row += rows_here;
    }
    std::thread::scope(|s| {
        for (row0, cband) in bands {
            let rows_here = cband.len() / n;
            s.spawn(move || {
                // Each band is an independent (rows_here x n x k) gemm.
                let asub = &av[row0 * k..(row0 + rows_here) * k];
                gemm_tiled_raw(asub, bv, cband, rows_here, n, k, 0, rows_here);
            });
        }
    });
}

/// Convenience wrapper: allocate C and return `a * b`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    gemm_tiled(a, b, &mut c);
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for kk in 0..a.cols() {
                    acc += a.get(i, kk) * b.get(kk, j);
                }
                c.set(i, j, acc);
            }
        }
        c
    }

    #[test]
    fn flop_count_formula() {
        assert_eq!(mmm_flops(2, 3, 4), 48);
        assert_eq!(mmm_flops(0, 3, 4), 0);
        assert_eq!(mmm_flops(1000, 1000, 1000), 2_000_000_000);
    }

    #[test]
    fn naive_matches_reference_small() {
        let a = Matrix::deterministic(5, 7, 1);
        let b = Matrix::deterministic(7, 4, 2);
        let mut c = Matrix::zeros(5, 4);
        gemm_naive(&a, &b, &mut c);
        assert!(c.approx_eq(&reference(&a, &b), 1e-12));
    }

    #[test]
    fn naive_accumulates_rather_than_overwrites() {
        let a = Matrix::from_fn(2, 2, |i, j| if i == j { 1.0 } else { 0.0 });
        let b = Matrix::from_fn(2, 2, |_, _| 1.0);
        let mut c = Matrix::from_fn(2, 2, |_, _| 10.0);
        gemm_naive(&a, &b, &mut c);
        assert!(c.approx_eq(&Matrix::from_fn(2, 2, |_, _| 11.0), 1e-12));
    }

    #[test]
    fn tiled_matches_naive_on_tile_boundaries() {
        // Sizes straddling the TILE edge exercise remainder handling.
        for &(m, n, k) in &[(64, 64, 64), (65, 63, 64), (1, 130, 7), (130, 1, 129)] {
            let a = Matrix::deterministic(m, k, 3);
            let b = Matrix::deterministic(k, n, 4);
            let mut c1 = Matrix::zeros(m, n);
            let mut c2 = Matrix::zeros(m, n);
            gemm_naive(&a, &b, &mut c1);
            gemm_tiled(&a, &b, &mut c2);
            assert!(c1.approx_eq(&c2, 1e-10), "tiled mismatch at {m}x{n}x{k}: {}", c1.max_abs_diff(&c2));
        }
    }

    #[test]
    fn parallel_matches_tiled_various_thread_counts() {
        let a = Matrix::deterministic(97, 55, 5);
        let b = Matrix::deterministic(55, 83, 6);
        let mut want = Matrix::zeros(97, 83);
        gemm_tiled(&a, &b, &mut want);
        for threads in [1, 2, 3, 4, 8, 97, 200] {
            let mut c = Matrix::zeros(97, 83);
            gemm_parallel(&a, &b, &mut c, threads);
            assert!(want.approx_eq(&c, 1e-10), "parallel({threads}) mismatch: {}", want.max_abs_diff(&c));
        }
    }

    #[test]
    fn parallel_accumulates() {
        let a = Matrix::deterministic(10, 10, 7);
        let b = Matrix::deterministic(10, 10, 8);
        let mut c = Matrix::from_fn(10, 10, |_, _| 5.0);
        let mut want = Matrix::from_fn(10, 10, |_, _| 5.0);
        gemm_naive(&a, &b, &mut want);
        gemm_parallel(&a, &b, &mut c, 4);
        assert!(want.approx_eq(&c, 1e-10));
    }

    #[test]
    fn empty_dimensions_are_noops() {
        let a = Matrix::zeros(0, 5);
        let b = Matrix::zeros(5, 3);
        let mut c = Matrix::zeros(0, 3);
        gemm_naive(&a, &b, &mut c);
        gemm_tiled(&a, &b, &mut c);
        gemm_parallel(&a, &b, &mut c, 4);
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(0, 2);
        let mut c = Matrix::zeros(3, 2);
        gemm_parallel(&a, &b, &mut c, 2);
        assert!(c.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn dimension_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let mut c = Matrix::zeros(2, 2);
        gemm_naive(&a, &b, &mut c);
    }

    #[test]
    fn gemm_enum_dispatch() {
        let a = Matrix::deterministic(20, 30, 9);
        let b = Matrix::deterministic(30, 10, 10);
        let want = reference(&a, &b);
        for g in [Gemm::Naive, Gemm::Tiled, Gemm::Parallel(3)] {
            let mut c = Matrix::zeros(20, 10);
            g.run(&a, &b, &mut c);
            assert!(want.approx_eq(&c, 1e-10), "{g:?} mismatch");
        }
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::deterministic(6, 6, 11);
        let eye = Matrix::from_fn(6, 6, |i, j| if i == j { 1.0 } else { 0.0 });
        assert!(matmul(&a, &eye).approx_eq(&a, 1e-12));
        assert!(matmul(&eye, &a).approx_eq(&a, 1e-12));
    }

    #[test]
    fn matmul_associativity_numerically() {
        let a = Matrix::deterministic(8, 5, 12);
        let b = Matrix::deterministic(5, 9, 13);
        let c = Matrix::deterministic(9, 4, 14);
        let left = matmul(&matmul(&a, &b), &c);
        let right = matmul(&a, &matmul(&b, &c));
        assert!(left.approx_eq(&right, 1e-9));
    }
}
