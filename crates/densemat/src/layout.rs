//! Distributed data layouts: ScaLAPACK block-cyclic and COSMA blocked (§7.6).
//!
//! A *layout* assigns every element `(i, j)` of a global matrix to exactly one
//! owner rank. The paper's implementation accepts matrices in the ScaLAPACK
//! block-cyclic format and re-arranges them into COSMA's own blocked layout,
//! in which each rank owns one contiguous sub-block so that no local
//! reshuffling is needed between communication rounds.
//!
//! This module provides both layouts behind the [`Distribution`] trait,
//! scatter/gather between a global matrix and per-rank local storage, and an
//! exact count of the words that a layout transformation must move — the
//! quantity the paper's preprocessing phase minimizes.

use crate::matrix::Matrix;

/// An assignment of global matrix elements to owning ranks.
pub trait Distribution {
    /// Rank that owns global element `(i, j)`.
    fn owner(&self, i: usize, j: usize) -> usize;
    /// Number of ranks participating in the layout.
    fn num_ranks(&self) -> usize;
    /// Global matrix shape `(rows, cols)`.
    fn shape(&self) -> (usize, usize);

    /// Number of elements owned by `rank`.
    fn local_len(&self, rank: usize) -> usize {
        let (rows, cols) = self.shape();
        let mut count = 0;
        for i in 0..rows {
            for j in 0..cols {
                if self.owner(i, j) == rank {
                    count += 1;
                }
            }
        }
        count
    }
}

/// Scatter a global matrix into per-rank element vectors.
///
/// Elements are stored in global row-major order of the elements each rank
/// owns, which both layouts here use as their canonical local order.
pub fn scatter(dist: &dyn Distribution, global: &Matrix) -> Vec<Vec<f64>> {
    let (rows, cols) = dist.shape();
    assert_eq!((global.rows(), global.cols()), (rows, cols), "shape mismatch");
    let mut locals = vec![Vec::new(); dist.num_ranks()];
    for i in 0..rows {
        for j in 0..cols {
            locals[dist.owner(i, j)].push(global.get(i, j));
        }
    }
    locals
}

/// Gather per-rank element vectors (as produced by [`scatter`]) back into a
/// global matrix.
///
/// # Panics
/// Panics if the local vectors do not have the sizes the layout implies.
pub fn gather(dist: &dyn Distribution, locals: &[Vec<f64>]) -> Matrix {
    let (rows, cols) = dist.shape();
    assert_eq!(locals.len(), dist.num_ranks(), "rank count mismatch");
    let mut cursors = vec![0usize; locals.len()];
    let mut global = Matrix::zeros(rows, cols);
    for i in 0..rows {
        for j in 0..cols {
            let r = dist.owner(i, j);
            let c = cursors[r];
            assert!(c < locals[r].len(), "local vector of rank {r} too short");
            global.set(i, j, locals[r][c]);
            cursors[r] += 1;
        }
    }
    for (r, (cur, loc)) in cursors.iter().zip(locals).enumerate() {
        assert_eq!(*cur, loc.len(), "local vector of rank {r} too long");
    }
    global
}

/// Exact number of words that moving from layout `from` to layout `to`
/// requires (elements whose owner changes). This is the cost of the
/// preprocessing phase that adapts a ScaLAPACK-layout matrix to COSMA's
/// blocked layout.
pub fn relayout_words(from: &dyn Distribution, to: &dyn Distribution) -> u64 {
    assert_eq!(from.shape(), to.shape(), "layout shapes differ");
    let (rows, cols) = from.shape();
    let mut moved = 0u64;
    for i in 0..rows {
        for j in 0..cols {
            if from.owner(i, j) != to.owner(i, j) {
                moved += 1;
            }
        }
    }
    moved
}

/// The ScaLAPACK 2D block-cyclic layout.
///
/// The matrix is cut into `rb x cb` blocks; block `(bi, bj)` is owned by rank
/// `(bi mod pr, bj mod pc)` on a `pr x pc` process grid (row-major rank
/// numbering). This is the format produced by `descinit` in ScaLAPACK.
#[derive(Debug, Clone)]
pub struct BlockCyclic {
    rows: usize,
    cols: usize,
    /// Block height.
    pub rb: usize,
    /// Block width.
    pub cb: usize,
    /// Process-grid rows.
    pub pr: usize,
    /// Process-grid cols.
    pub pc: usize,
}

impl BlockCyclic {
    /// Create a block-cyclic layout.
    ///
    /// # Panics
    /// Panics if any parameter is zero.
    pub fn new(rows: usize, cols: usize, rb: usize, cb: usize, pr: usize, pc: usize) -> Self {
        assert!(rb > 0 && cb > 0, "block sizes must be positive");
        assert!(pr > 0 && pc > 0, "grid sizes must be positive");
        BlockCyclic {
            rows,
            cols,
            rb,
            cb,
            pr,
            pc,
        }
    }
}

impl Distribution for BlockCyclic {
    fn owner(&self, i: usize, j: usize) -> usize {
        let gr = (i / self.rb) % self.pr;
        let gc = (j / self.cb) % self.pc;
        gr * self.pc + gc
    }

    fn num_ranks(&self) -> usize {
        self.pr * self.pc
    }

    fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }
}

/// The COSMA blocked layout: each rank owns one contiguous rectangular block.
///
/// Rows are cut at `row_splits` and columns at `col_splits`; the block at grid
/// position `(bi, bj)` belongs to `owners[bi * (col_splits.len()-1) + bj]`.
/// COSMA derives the split points from the processor grid returned by
/// `FitRanks` so that each rank's block is exactly the data its local domain
/// touches first (§7.6), eliminating local reshuffling.
#[derive(Debug, Clone)]
pub struct BlockedLayout {
    /// Ascending row cut points; first is 0, last is the row count.
    pub row_splits: Vec<usize>,
    /// Ascending column cut points; first is 0, last is the column count.
    pub col_splits: Vec<usize>,
    /// Owner rank per block, row-major over the `(row, col)` block grid.
    pub owners: Vec<usize>,
    num_ranks: usize,
}

impl BlockedLayout {
    /// Build a blocked layout from explicit split points and block owners.
    ///
    /// # Panics
    /// Panics if the splits are not ascending from 0, or the owner table has
    /// the wrong size.
    pub fn new(row_splits: Vec<usize>, col_splits: Vec<usize>, owners: Vec<usize>, num_ranks: usize) -> Self {
        assert!(row_splits.len() >= 2 && col_splits.len() >= 2, "need at least one block");
        assert_eq!(row_splits[0], 0, "row splits must start at 0");
        assert_eq!(col_splits[0], 0, "col splits must start at 0");
        assert!(row_splits.windows(2).all(|w| w[0] < w[1]), "row splits must ascend");
        assert!(col_splits.windows(2).all(|w| w[0] < w[1]), "col splits must ascend");
        let blocks = (row_splits.len() - 1) * (col_splits.len() - 1);
        assert_eq!(owners.len(), blocks, "owner table size mismatch");
        assert!(owners.iter().all(|&o| o < num_ranks), "owner out of range");
        BlockedLayout {
            row_splits,
            col_splits,
            owners,
            num_ranks,
        }
    }

    /// Even `gr x gc` grid over a `rows x cols` matrix, blocks owned by ranks
    /// `0..gr*gc` in row-major order. Remainder rows/cols go to the leading
    /// blocks (sizes differ by at most one).
    pub fn even_grid(rows: usize, cols: usize, gr: usize, gc: usize) -> Self {
        let owners = (0..gr * gc).collect();
        BlockedLayout::new(even_splits(rows, gr), even_splits(cols, gc), owners, gr * gc)
    }

    /// Index of the block that contains coordinate `x` along splits `s`.
    fn find(splits: &[usize], x: usize) -> usize {
        // partition_point returns the number of split points <= x; the block
        // index is one less (splits[0] == 0 <= x always).
        splits.partition_point(|&s| s <= x) - 1
    }

    /// The rectangular extent of rank `r`'s blocks, if it owns exactly one
    /// block: `(rows, cols)` ranges. Returns `None` for multi-block owners.
    pub fn block_of(&self, rank: usize) -> Option<(std::ops::Range<usize>, std::ops::Range<usize>)> {
        let gc = self.col_splits.len() - 1;
        let mut found = None;
        for (b, &o) in self.owners.iter().enumerate() {
            if o == rank {
                if found.is_some() {
                    return None;
                }
                let (bi, bj) = (b / gc, b % gc);
                found = Some((
                    self.row_splits[bi]..self.row_splits[bi + 1],
                    self.col_splits[bj]..self.col_splits[bj + 1],
                ));
            }
        }
        found
    }
}

impl Distribution for BlockedLayout {
    fn owner(&self, i: usize, j: usize) -> usize {
        let bi = Self::find(&self.row_splits, i);
        let bj = Self::find(&self.col_splits, j);
        self.owners[bi * (self.col_splits.len() - 1) + bj]
    }

    fn num_ranks(&self) -> usize {
        self.num_ranks
    }

    fn shape(&self) -> (usize, usize) {
        (
            *self.row_splits.last().expect("non-empty splits"),
            *self.col_splits.last().expect("non-empty splits"),
        )
    }
}

/// Cut `n` into `parts` nearly-even contiguous ranges; returns the `parts+1`
/// split points. Leading parts are one longer when `n % parts != 0`.
pub fn even_splits(n: usize, parts: usize) -> Vec<usize> {
    assert!(parts > 0, "parts must be positive");
    let base = n / parts;
    let extra = n % parts;
    let mut splits = Vec::with_capacity(parts + 1);
    let mut x = 0;
    splits.push(0);
    for p in 0..parts {
        x += base + usize::from(p < extra);
        splits.push(x);
    }
    splits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_splits_cover_and_balance() {
        let s = even_splits(10, 3);
        assert_eq!(s, vec![0, 4, 7, 10]);
        let s = even_splits(9, 3);
        assert_eq!(s, vec![0, 3, 6, 9]);
        let s = even_splits(2, 5);
        assert_eq!(s.len(), 6);
        assert_eq!(*s.last().unwrap(), 2);
    }

    #[test]
    fn block_cyclic_owner_matches_scalapack_formula() {
        let bc = BlockCyclic::new(8, 8, 2, 2, 2, 2);
        // Block (0,0) -> rank 0, (0,1) -> 1, (1,0) -> 2, (1,1) -> 3, cyclic.
        assert_eq!(bc.owner(0, 0), 0);
        assert_eq!(bc.owner(0, 2), 1);
        assert_eq!(bc.owner(2, 0), 2);
        assert_eq!(bc.owner(2, 2), 3);
        assert_eq!(bc.owner(4, 4), 0); // wraps around
        assert_eq!(bc.owner(7, 7), 3);
    }

    #[test]
    fn block_cyclic_balanced_when_divisible() {
        let bc = BlockCyclic::new(8, 8, 2, 2, 2, 2);
        for r in 0..4 {
            assert_eq!(bc.local_len(r), 16);
        }
    }

    #[test]
    fn blocked_even_grid_owner_and_blocks() {
        let bl = BlockedLayout::even_grid(6, 6, 2, 3);
        assert_eq!(bl.owner(0, 0), 0);
        assert_eq!(bl.owner(0, 2), 1);
        assert_eq!(bl.owner(0, 4), 2);
        assert_eq!(bl.owner(3, 0), 3);
        assert_eq!(bl.owner(5, 5), 5);
        let (rs, cs) = bl.block_of(4).unwrap();
        assert_eq!(rs, 3..6);
        assert_eq!(cs, 2..4);
    }

    #[test]
    fn scatter_gather_roundtrip_block_cyclic() {
        let m = Matrix::deterministic(9, 7, 21);
        let bc = BlockCyclic::new(9, 7, 2, 3, 2, 2);
        let locals = scatter(&bc, &m);
        assert_eq!(locals.iter().map(Vec::len).sum::<usize>(), 63);
        let back = gather(&bc, &locals);
        assert_eq!(back, m);
    }

    #[test]
    fn scatter_gather_roundtrip_blocked() {
        let m = Matrix::deterministic(10, 10, 22);
        let bl = BlockedLayout::even_grid(10, 10, 3, 2);
        let locals = scatter(&bl, &m);
        let back = gather(&bl, &locals);
        assert_eq!(back, m);
    }

    #[test]
    fn local_len_matches_scatter() {
        let bc = BlockCyclic::new(11, 5, 3, 2, 2, 3);
        let m = Matrix::zeros(11, 5);
        let locals = scatter(&bc, &m);
        assert_eq!(locals.len(), bc.num_ranks());
        for (r, loc) in locals.iter().enumerate() {
            assert_eq!(bc.local_len(r), loc.len(), "rank {r}");
        }
    }

    #[test]
    fn relayout_identity_is_free() {
        let bl = BlockedLayout::even_grid(12, 12, 2, 2);
        assert_eq!(relayout_words(&bl, &bl.clone()), 0);
    }

    #[test]
    fn relayout_counts_moved_words() {
        // Blocked 1x2 vs 2x1 over 4x4 with 2 ranks: the off-diagonal quadrants
        // change owner (2 quadrants of 4 elements each).
        let a = BlockedLayout::even_grid(4, 4, 1, 2);
        let b = BlockedLayout::even_grid(4, 4, 2, 1);
        assert_eq!(relayout_words(&a, &b), 8);
    }

    #[test]
    fn relayout_block_cyclic_to_blocked_preserves_content() {
        let m = Matrix::deterministic(8, 8, 5);
        let from = BlockCyclic::new(8, 8, 2, 2, 2, 2);
        let to = BlockedLayout::even_grid(8, 8, 2, 2);
        // Transform via gather+scatter and verify content identical.
        let locals = scatter(&from, &m);
        let global = gather(&from, &locals);
        let relaid = scatter(&to, &global);
        let back = gather(&to, &relaid);
        assert_eq!(back, m);
        // With block size 2 on a 2x2 grid over 8x8, cyclic and blocked differ.
        assert!(relayout_words(&from, &to) > 0);
    }

    #[test]
    fn blocked_one_block_per_rank_extent() {
        let bl = BlockedLayout::even_grid(7, 5, 2, 2);
        let mut total = 0;
        for r in 0..4 {
            let (rs, cs) = bl.block_of(r).unwrap();
            total += rs.len() * cs.len();
        }
        assert_eq!(total, 35);
    }

    #[test]
    fn blocked_custom_owner_table() {
        // Two ranks share the four quadrants checkerboard-style.
        let bl = BlockedLayout::new(vec![0, 2, 4], vec![0, 2, 4], vec![0, 1, 1, 0], 2);
        assert_eq!(bl.owner(0, 0), 0);
        assert_eq!(bl.owner(0, 3), 1);
        assert_eq!(bl.owner(3, 0), 1);
        assert_eq!(bl.owner(3, 3), 0);
        assert_eq!(bl.block_of(0), None, "rank 0 owns two blocks");
        assert_eq!(bl.local_len(0), 8);
        assert_eq!(bl.local_len(1), 8);
    }

    #[test]
    #[should_panic(expected = "owner table size mismatch")]
    fn blocked_rejects_bad_owner_table() {
        let _ = BlockedLayout::new(vec![0, 2], vec![0, 2], vec![0, 1], 2);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn scatter_rejects_wrong_shape() {
        let bl = BlockedLayout::even_grid(4, 4, 2, 2);
        let m = Matrix::zeros(3, 4);
        let _ = scatter(&bl, &m);
    }
}
