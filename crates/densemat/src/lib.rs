//! # densemat — dense-matrix substrate
//!
//! This crate is the "BLAS + data-layout" substrate that the COSMA reproduction
//! is built on. The paper uses Intel MKL for local computation and the
//! ScaLAPACK block-cyclic format for interoperability (§7.6 of the paper); this
//! crate provides from-scratch replacements:
//!
//! * [`matrix`] — a row-major `f64` matrix with block extraction/insertion and
//!   views, used both by the local kernels and by the distributed algorithms to
//!   describe sub-domains.
//! * [`gemm`] — local matrix-multiplication kernels: a reference naive kernel,
//!   a cache-tiled kernel, a packed register-blocked kernel (the default, the
//!   paper's §7 "local tuning"), and a multi-threaded kernel over std scoped
//!   threads. All kernels compute `C += A * B` so that the distributed
//!   algorithms can accumulate partial results exactly like the paper's
//!   rank-1-update formulation (Listing 1).
//! * [`layout`] — distributed data layouts: the ScaLAPACK block-cyclic layout
//!   and the COSMA blocked layout (§7.6), plus transformations between them
//!   with exact word-movement accounting.
//!
//! The kernels are deliberately simple enough to audit, yet tiled/parallel so
//! the cost model's "local compute" term corresponds to a real, measured code
//! path (see `crates/bench/benches/gemm.rs`).

pub mod gemm;
pub mod layout;
pub mod matrix;

pub use gemm::{gemm_naive, gemm_packed, gemm_parallel, gemm_tiled, matmul, mmm_flops, Gemm};
pub use layout::{BlockCyclic, BlockedLayout, Distribution};
pub use matrix::Matrix;
