//! Row-major dense matrix storage with block (sub-matrix) operations.
//!
//! The distributed algorithms in this workspace constantly cut matrices into
//! rectangular blocks (local domains, panels, k-slabs). `Matrix` therefore
//! focuses on cheap, explicit block extraction/insertion rather than on a
//! full linear-algebra API.

use std::fmt;
use std::ops::Range;

/// A dense, row-major `f64` matrix.
///
/// Element `(i, j)` lives at `data[i * cols + j]`. All distributed algorithms
/// in this workspace move sub-blocks of `Matrix` values between simulated
/// ranks, so the block accessors ([`Matrix::block`], [`Matrix::set_block`],
/// [`Matrix::add_block`]) are the workhorse API.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create a matrix from a generator function `f(i, j)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Create a matrix that owns the given row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length {} does not match {rows}x{cols}", data.len());
        Matrix { rows, cols, data }
    }

    /// Create a `rows x cols` zero matrix on top of a recycled buffer,
    /// reusing its capacity instead of allocating fresh storage.
    ///
    /// This is the arena-friendly twin of [`Matrix::zeros`]: algorithms that
    /// lease scratch from a buffer pool hand the (arbitrary-length) lease
    /// here and get a zeroed matrix without a `vec![0.0; rows * cols]`
    /// allocation. The buffer's previous contents are discarded.
    pub fn from_recycled(rows: usize, cols: usize, mut buf: Vec<f64>) -> Self {
        buf.clear();
        buf.resize(rows * cols, 0.0);
        Matrix {
            rows,
            cols,
            data: buf,
        }
    }

    /// Create a matrix with deterministic pseudo-random entries in `[-1, 1)`.
    ///
    /// Uses a splitmix64-style hash of `(seed, i, j)` so that a given element
    /// has the same value regardless of which rank materializes it. This is
    /// what lets the simulated ranks conjure "their" part of the input without
    /// a central scatter phase (the paper assumes inputs start distributed).
    pub fn deterministic(rows: usize, cols: usize, seed: u64) -> Self {
        Matrix::from_fn(rows, cols, |i, j| hash_entry(seed, i as u64, j as u64))
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements (`rows * cols`), i.e. words of storage.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read element `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Write element `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Borrow the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume the matrix, returning its buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy the sub-matrix `rows x cols` out of this matrix.
    ///
    /// # Panics
    /// Panics if the ranges exceed the matrix bounds.
    pub fn block(&self, rows: Range<usize>, cols: Range<usize>) -> Matrix {
        assert!(rows.end <= self.rows, "row range out of bounds");
        assert!(cols.end <= self.cols, "col range out of bounds");
        let (h, w) = (rows.len(), cols.len());
        let mut data = Vec::with_capacity(h * w);
        for i in rows {
            data.extend_from_slice(&self.data[i * self.cols + cols.start..i * self.cols + cols.end]);
        }
        Matrix {
            rows: h,
            cols: w,
            data,
        }
    }

    /// Copy the sub-matrix `rows x cols` into a matrix built on a recycled
    /// buffer — [`Matrix::block`] without the fresh allocation (and without
    /// the zero-fill: rows are appended directly).
    ///
    /// # Panics
    /// Panics if the ranges exceed the matrix bounds.
    pub fn block_into(&self, rows: Range<usize>, cols: Range<usize>, mut buf: Vec<f64>) -> Matrix {
        assert!(rows.end <= self.rows, "row range out of bounds");
        assert!(cols.end <= self.cols, "col range out of bounds");
        let (h, w) = (rows.len(), cols.len());
        buf.clear();
        buf.reserve(h * w);
        for i in rows {
            buf.extend_from_slice(&self.data[i * self.cols + cols.start..i * self.cols + cols.end]);
        }
        Matrix {
            rows: h,
            cols: w,
            data: buf,
        }
    }

    /// Overwrite the sub-matrix starting at `(r0, c0)` with `src`.
    ///
    /// # Panics
    /// Panics if `src` does not fit.
    pub fn set_block(&mut self, r0: usize, c0: usize, src: &Matrix) {
        assert!(r0 + src.rows <= self.rows, "block rows out of bounds");
        assert!(c0 + src.cols <= self.cols, "block cols out of bounds");
        for i in 0..src.rows {
            let dst = (r0 + i) * self.cols + c0;
            self.data[dst..dst + src.cols].copy_from_slice(src.row(i));
        }
    }

    /// Accumulate (`+=`) the sub-matrix starting at `(r0, c0)` with `src`.
    ///
    /// Used when assembling reduced partial C results from several ranks.
    pub fn add_block(&mut self, r0: usize, c0: usize, src: &Matrix) {
        assert!(r0 + src.rows <= self.rows, "block rows out of bounds");
        assert!(c0 + src.cols <= self.cols, "block cols out of bounds");
        for i in 0..src.rows {
            let dst = (r0 + i) * self.cols + c0;
            for (d, s) in self.data[dst..dst + src.cols].iter_mut().zip(src.row(i)) {
                *d += *s;
            }
        }
    }

    /// Element-wise `self += other`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.rows, other.rows, "row mismatch");
        assert_eq!(self.cols, other.cols, "col mismatch");
        for (d, s) in self.data.iter_mut().zip(&other.data) {
            *d += *s;
        }
    }

    /// Return the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t.set(j, i, self.get(i, j));
            }
        }
        t
    }

    /// Maximum absolute element-wise difference to `other`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.rows, other.rows, "row mismatch");
        assert_eq!(self.cols, other.cols, "col mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// True if all elements are within `tol` of `other`, relative to the
    /// magnitude of the involved values (suitable for verifying a distributed
    /// product against a sequential reference).
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        if self.rows != other.rows || self.cols != other.cols {
            return false;
        }
        self.data.iter().zip(&other.data).all(|(a, b)| {
            let scale = 1.0_f64.max(a.abs()).max(b.abs());
            (a - b).abs() <= tol * scale
        })
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_show = 8;
        for i in 0..self.rows.min(max_show) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(max_show) {
                write!(f, "{:9.4} ", self.get(i, j))?;
            }
            writeln!(f, "{}", if self.cols > max_show { "…" } else { "" })?;
        }
        if self.rows > max_show {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

/// splitmix64-style deterministic entry in `[-1, 1)` for `(seed, i, j)`.
fn hash_entry(seed: u64, i: u64, j: u64) -> f64 {
    let mut x = seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ j.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    // Map the top 53 bits to [0, 1), then to [-1, 1).
    let unit = (x >> 11) as f64 / (1u64 << 53) as f64;
    2.0 * unit - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_correct_shape_and_content() {
        let m = Matrix::zeros(3, 5);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 5);
        assert_eq!(m.len(), 15);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_fn_row_major_order() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(m.get(1, 2), 12.0);
    }

    #[test]
    fn from_vec_roundtrip() {
        let v = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let m = Matrix::from_vec(2, 3, v.clone());
        assert_eq!(m.into_vec(), v);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_rejects_bad_length() {
        let _ = Matrix::from_vec(2, 3, vec![0.0; 5]);
    }

    #[test]
    fn from_recycled_reuses_capacity_and_zeroes() {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&[9.0, 8.0, 7.0]);
        let ptr = buf.as_ptr();
        let m = Matrix::from_recycled(4, 5, buf);
        assert_eq!(m.rows(), 4);
        assert_eq!(m.cols(), 5);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
        let back = m.into_vec();
        assert_eq!(back.as_ptr(), ptr, "capacity was large enough: no realloc");
    }

    #[test]
    fn block_into_matches_block_and_reuses_capacity() {
        let m = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let buf = Vec::with_capacity(16);
        let ptr = buf.as_ptr();
        let b = m.block_into(1..3, 2..4, buf);
        assert_eq!(b, m.block(1..3, 2..4));
        let back = b.into_vec();
        assert_eq!(back.as_ptr(), ptr);
    }

    #[test]
    fn deterministic_is_reproducible_and_rank_independent() {
        let a = Matrix::deterministic(7, 9, 42);
        let b = Matrix::deterministic(7, 9, 42);
        assert_eq!(a, b);
        // A sub-block materialized "remotely" must agree element-wise.
        let blk = a.block(2..5, 3..8);
        for i in 0..3 {
            for j in 0..5 {
                assert_eq!(blk.get(i, j), a.get(2 + i, 3 + j));
            }
        }
    }

    #[test]
    fn deterministic_entries_in_range_and_not_constant() {
        let a = Matrix::deterministic(16, 16, 1);
        assert!(a.as_slice().iter().all(|&x| (-1.0..1.0).contains(&x)));
        let first = a.get(0, 0);
        assert!(a.as_slice().iter().any(|&x| x != first));
    }

    #[test]
    fn deterministic_seed_changes_content() {
        let a = Matrix::deterministic(4, 4, 1);
        let b = Matrix::deterministic(4, 4, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn block_extracts_correct_submatrix() {
        let m = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let b = m.block(1..3, 2..4);
        assert_eq!(b.rows(), 2);
        assert_eq!(b.cols(), 2);
        assert_eq!(b.as_slice(), &[6.0, 7.0, 10.0, 11.0]);
    }

    #[test]
    fn block_full_range_is_identity() {
        let m = Matrix::from_fn(3, 5, |i, j| (i + j) as f64);
        assert_eq!(m.block(0..3, 0..5), m);
    }

    #[test]
    #[should_panic(expected = "row range out of bounds")]
    fn block_out_of_bounds_panics() {
        let m = Matrix::zeros(2, 2);
        let _ = m.block(0..3, 0..1);
    }

    #[test]
    fn set_block_then_block_roundtrip() {
        let mut m = Matrix::zeros(5, 5);
        let b = Matrix::from_fn(2, 3, |i, j| (1 + i * 3 + j) as f64);
        m.set_block(2, 1, &b);
        assert_eq!(m.block(2..4, 1..4), b);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(4, 4), 0.0);
    }

    #[test]
    fn add_block_accumulates() {
        let mut m = Matrix::from_fn(3, 3, |_, _| 1.0);
        let b = Matrix::from_fn(2, 2, |_, _| 2.0);
        m.add_block(1, 1, &b);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 1), 3.0);
        assert_eq!(m.get(2, 2), 3.0);
        assert_eq!(m.get(1, 0), 1.0);
    }

    #[test]
    fn add_assign_elementwise() {
        let mut a = Matrix::from_fn(2, 2, |i, j| (i + j) as f64);
        let b = Matrix::from_fn(2, 2, |_, _| 10.0);
        a.add_assign(&b);
        assert_eq!(a.as_slice(), &[10.0, 11.0, 11.0, 12.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(3, 5, |i, j| (i * 5 + j) as f64);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().get(4, 2), m.get(2, 4));
    }

    #[test]
    fn max_abs_diff_and_approx_eq() {
        let a = Matrix::from_fn(2, 2, |_, _| 1.0);
        let mut b = a.clone();
        b.set(1, 1, 1.0 + 1e-12);
        assert!(a.max_abs_diff(&b) > 0.0);
        assert!(a.approx_eq(&b, 1e-9));
        assert!(!a.approx_eq(&b, 1e-14));
    }

    #[test]
    fn approx_eq_shape_mismatch_is_false() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 3);
        assert!(!a.approx_eq(&b, 1.0));
    }

    #[test]
    fn frobenius_norm_of_unit() {
        let m = Matrix::from_fn(3, 3, |i, j| if i == j { 1.0 } else { 0.0 });
        assert!((m.frobenius_norm() - 3.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn row_slice_matches_get() {
        let m = Matrix::from_fn(4, 3, |i, j| (i * 3 + j) as f64);
        assert_eq!(m.row(2), &[6.0, 7.0, 8.0]);
    }
}
