//! Tree and ring collectives over arbitrary rank groups (§7.2).
//!
//! The paper replaces Cray-MPICH's broadcast with a hand-crafted binomial
//! broadcast tree exploiting the known processor grid; these helpers are the
//! equivalent building blocks. All collectives take an explicit `group` (a
//! slice of absolute rank ids) so a grid algorithm can broadcast along a row,
//! column or fiber of the processor grid by passing that fiber's ranks.
//!
//! Traffic accounting is inherited from the point-to-point layer: interior
//! tree nodes both receive and forward, exactly as an MPI implementation
//! would be measured by mpiP.
//!
//! Every collective is an `async fn` over [`RankComm`]: each internal
//! receive or exchange is a resumable wait-state, so the collectives run
//! unchanged on the threaded, sharded and event-driven executors.

use crate::comm::RankComm;
use crate::stats::Phase;

fn my_pos(comm: &RankComm, group: &[usize]) -> usize {
    group
        .iter()
        .position(|&r| r == comm.rank())
        .unwrap_or_else(|| panic!("rank {} not in group {group:?}", comm.rank()))
}

/// Binomial-tree broadcast of `data` from `group[root_pos]` to the whole
/// group. On non-root ranks `data`'s previous contents are replaced.
pub async fn bcast(
    comm: &mut RankComm,
    group: &[usize],
    root_pos: usize,
    data: &mut Vec<f64>,
    tag: u64,
    phase: Phase,
) {
    let g = group.len();
    assert!(root_pos < g, "root position out of range");
    if g <= 1 {
        return;
    }
    let pos = my_pos(comm, group);
    let relative = (pos + g - root_pos) % g;
    let abs = |rel: usize| group[(rel + root_pos) % g];

    // Receive from the parent (the sender that owns our lowest set bit).
    let mut mask = 1usize;
    while mask < g {
        if relative & mask != 0 {
            *data = comm.recv(abs(relative - mask), tag, phase).await;
            break;
        }
        mask <<= 1;
    }
    // Forward to children below the bit we received on (or all bits, for the
    // root where mask ran past g). Outgoing copies are leased from the
    // world's arena; the receiver recovers ownership and recycles.
    mask >>= 1;
    while mask > 0 {
        if relative + mask < g {
            let payload = comm.pool().take_copy(data);
            comm.send(abs(relative + mask), tag, payload, phase);
        }
        mask >>= 1;
    }
}

/// Segment size (words) of a [`bcast_pipelined`] over a `g`-member group.
///
/// A plain binomial broadcast pays the full wire time `β·W` once per tree
/// level — `⌈log₂ g⌉ · β·W` on the critical path — because an interior node
/// cannot forward before its whole payload arrived. Segmenting lets a level
/// forward segment `s` while receiving `s + 1`, collapsing the critical
/// path to `(depth + nseg − 1)` segment times. Eight segments per level
/// (`W / (8·depth)`) puts that within ~12% of `β·W` while a 64-word floor
/// keeps the α (per-message) cost bounded.
pub fn bcast_segment_words(total_words: usize, g: usize) -> usize {
    if total_words == 0 {
        return 1;
    }
    let depth = (usize::BITS - (g.max(2) - 1).leading_zeros()) as usize;
    total_words.div_ceil(8 * depth).max(64)
}

/// Messages a member at tree position `relative` (root = 0) receives in a
/// [`bcast_pipelined`] of `total_words` over a `g`-member group — the
/// plan-side mirror of the executed segment count, used by plan models that
/// must match execution message-for-message.
pub fn bcast_pipelined_recv_msgs(relative: usize, g: usize, total_words: usize) -> u64 {
    if g <= 1 || relative == 0 {
        return 0;
    }
    total_words.div_ceil(bcast_segment_words(total_words, g)).max(1) as u64
}

/// Pipelined binomial-tree broadcast: same tree as [`bcast`], payload cut
/// into [`bcast_segment_words`] segments forwarded as they arrive, so deep
/// trees cost ~`β·W` on the critical path instead of `⌈log₂ g⌉·β·W`.
///
/// Receivers must know the payload length up front (`total_words`) to count
/// segments — lengths are not discoverable from the stream without sending
/// extra words. The root's `data` must already hold `total_words` words; on
/// other ranks `data` is replaced. Segment `s` is tagged `tag + s`
/// (wrapping): callers broadcasting repeatedly on overlapping groups must
/// space their base tags accordingly.
pub async fn bcast_pipelined(
    comm: &mut RankComm,
    group: &[usize],
    root_pos: usize,
    data: &mut Vec<f64>,
    total_words: usize,
    tag: u64,
    phase: Phase,
) {
    let g = group.len();
    assert!(root_pos < g, "root position out of range");
    if g <= 1 {
        return;
    }
    let pos = my_pos(comm, group);
    let relative = (pos + g - root_pos) % g;
    let abs = |rel: usize| group[(rel + root_pos) % g];

    // Parent and children of the same binomial tree as `bcast`: the parent
    // owns our lowest set bit; children sit below the bit we receive on (or
    // all bits, for the root where mask runs past g).
    let mut parent = None;
    let mut mask = 1usize;
    while mask < g {
        if relative & mask != 0 {
            parent = Some(abs(relative - mask));
            break;
        }
        mask <<= 1;
    }
    mask >>= 1;
    let mut children = Vec::new();
    while mask > 0 {
        if relative + mask < g {
            children.push(abs(relative + mask));
        }
        mask >>= 1;
    }

    let seg = bcast_segment_words(total_words, g);
    let nseg = total_words.div_ceil(seg).max(1);
    if parent.is_none() {
        assert_eq!(data.len(), total_words, "root payload length mismatch");
    } else {
        data.clear();
        data.reserve(total_words);
    }
    for s in 0..nseg {
        let chunk = match parent {
            Some(par) => {
                let chunk = comm.recv(par, tag.wrapping_add(s as u64), phase).await;
                data.extend_from_slice(&chunk);
                chunk
            }
            None => {
                let lo = (s * seg).min(total_words);
                let hi = ((s + 1) * seg).min(total_words);
                comm.pool().take_copy(&data[lo..hi])
            }
        };
        for &child in &children {
            let payload = comm.pool().take_copy(&chunk);
            comm.send(child, tag.wrapping_add(s as u64), payload, phase);
        }
        comm.recycle(chunk);
    }
    debug_assert_eq!(data.len(), total_words, "assembled payload length mismatch");
}

/// Binomial-tree sum-reduction of equal-length vectors onto
/// `group[root_pos]`. On the root, `data` holds the element-wise sum on
/// return; on other ranks its contents are the partial sums that were
/// forwarded (callers should treat them as garbage).
pub async fn reduce_sum(
    comm: &mut RankComm,
    group: &[usize],
    root_pos: usize,
    data: &mut [f64],
    tag: u64,
    phase: Phase,
) {
    let g = group.len();
    assert!(root_pos < g, "root position out of range");
    if g <= 1 {
        return;
    }
    let pos = my_pos(comm, group);
    let relative = (pos + g - root_pos) % g;
    let abs = |rel: usize| group[(rel + root_pos) % g];

    let mut mask = 1usize;
    while mask < g {
        if relative & mask == 0 {
            let src_rel = relative | mask;
            if src_rel < g {
                let chunk = comm.recv(abs(src_rel), tag, phase).await;
                assert_eq!(chunk.len(), data.len(), "reduce length mismatch");
                for (d, s) in data.iter_mut().zip(&chunk) {
                    *d += *s;
                }
                comm.recycle(chunk);
            }
        } else {
            let payload = comm.pool().take_copy(data);
            comm.send(abs(relative - mask), tag, payload, phase);
            break;
        }
        mask <<= 1;
    }
}

/// Ring all-gather: every group member contributes `mine`; returns all
/// contributions ordered by group position. `g - 1` steps, each forwarding
/// the chunk received in the previous step — per-rank received volume is the
/// total payload minus one's own contribution, the textbook ring cost.
pub async fn allgather_ring(
    comm: &mut RankComm,
    group: &[usize],
    mine: Vec<f64>,
    tag: u64,
    phase: Phase,
) -> Vec<Vec<f64>> {
    let g = group.len();
    let pos = my_pos(comm, group);
    let mut chunks: Vec<Option<Vec<f64>>> = vec![None; g];
    chunks[pos] = Some(mine);
    let right = group[(pos + 1) % g];
    let left = group[(pos + g - 1) % g];
    for step in 0..g.saturating_sub(1) {
        let send_idx = (pos + g - step) % g;
        let recv_idx = (pos + g - step - 1) % g;
        let outgoing = chunks[send_idx].as_deref().expect("ring invariant: chunk to forward present");
        let outgoing = comm.pool().take_copy(outgoing);
        let incoming = comm.sendrecv(right, left, tag.wrapping_add(step as u64), outgoing, phase).await;
        chunks[recv_idx] = Some(incoming);
    }
    chunks.into_iter().map(|c| c.expect("all chunks gathered")).collect()
}

/// Bruck all-gather: every member contributes `mine`; returns all
/// contributions ordered by group position, like [`allgather_ring`], but in
/// `⌈log₂ g⌉` rounds of doubling block counts instead of `g − 1` ring steps.
/// Per-rank received words are identical to the ring (every foreign block
/// arrives exactly once); only the message count changes — this is the
/// latency-optimized pattern of the paper's §7.2 broadcast trees.
///
/// `chunk_words[i]` must give every member's contribution length (all
/// members must agree), so receivers can split concatenated payloads.
pub async fn allgather_bruck(
    comm: &mut RankComm,
    group: &[usize],
    mine: Vec<f64>,
    chunk_words: &[usize],
    tag: u64,
    phase: Phase,
) -> Vec<Vec<f64>> {
    let g = group.len();
    assert_eq!(chunk_words.len(), g, "chunk size table must cover the group");
    let pos = my_pos(comm, group);
    assert_eq!(mine.len(), chunk_words[pos], "own chunk size mismatch");
    // have[j] = chunk of member (pos + j) mod g.
    let mut have: Vec<Vec<f64>> = vec![mine];
    let mut step = 1usize;
    let mut round = 0u64;
    while have.len() < g {
        let want = (g - have.len()).min(step);
        let dst = group[(pos + g - step) % g];
        let src = group[(pos + step) % g];
        // dst lacks my first `want` blocks (its collection ends at pos - 1).
        let payload_words: usize = have.iter().take(want).map(Vec::len).sum();
        let mut payload = comm.pool().take_clear(payload_words);
        for blk in have.iter().take(want) {
            payload.extend_from_slice(blk);
        }
        let received = comm.sendrecv(dst, src, tag.wrapping_add(round), payload, phase).await;
        // Split by the known sizes of blocks (pos + step + j) mod g.
        let mut off = 0;
        for j in 0..want {
            let len = chunk_words[(pos + step + j) % g];
            have.push(comm.pool().take_copy(&received[off..off + len]));
            off += len;
        }
        assert_eq!(off, received.len(), "bruck payload framing mismatch");
        comm.recycle(received);
        step <<= 1;
        round += 1;
    }
    // Reorder from my-relative to group-position order.
    let mut out: Vec<Vec<f64>> = vec![Vec::new(); g];
    for (j, blk) in have.into_iter().enumerate() {
        out[(pos + j) % g] = blk;
    }
    out
}

/// Ring reduce-scatter: element-wise sum of every member's `data`, scattered
/// so that the member at group position `pos` ends up owning the summed
/// chunk `(pos + 1) mod g` (balanced chunks by [`even_chunk_ranges`]).
/// Returns `(owned_chunk_index, summed_chunk)`.
///
/// `g − 1` steps; each member receives every chunk except its own position's,
/// i.e. `total − |chunk_pos|` words — perfectly balanced, unlike a tree
/// reduction whose root transiently receives `log g` full payloads.
pub async fn reduce_scatter_ring(
    comm: &mut RankComm,
    group: &[usize],
    data: &mut [f64],
    tag: u64,
    phase: Phase,
) -> (usize, Vec<f64>) {
    let g = group.len();
    let pos = my_pos(comm, group);
    let ranges = even_chunk_ranges(data.len(), g);
    if g == 1 {
        return (0, data.to_vec());
    }
    let right = group[(pos + 1) % g];
    let left = group[(pos + g - 1) % g];
    for s in 0..g - 1 {
        let send_idx = (pos + g - s) % g;
        let recv_idx = (pos + g - s - 1) % g;
        let outgoing = comm.pool().take_copy(&data[ranges[send_idx].clone()]);
        let incoming = comm.sendrecv(right, left, tag.wrapping_add(s as u64), outgoing, phase).await;
        let dst = &mut data[ranges[recv_idx].clone()];
        assert_eq!(incoming.len(), dst.len(), "reduce-scatter chunk mismatch");
        for (d, v) in dst.iter_mut().zip(&incoming) {
            *d += *v;
        }
        comm.recycle(incoming);
    }
    let own = (pos + 1) % g;
    (own, data[ranges[own].clone()].to_vec())
}

/// Balanced chunk ranges of `0..len` split `parts` ways (leading chunks one
/// longer on remainders) — the chunking used by [`reduce_scatter_ring`].
pub fn even_chunk_ranges(len: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut x = 0;
    for i in 0..parts {
        let w = base + usize::from(i < extra);
        out.push(x..x + w);
        x += w;
    }
    out
}

/// One ring-shift step (Cannon): send `data` to `dst` and receive the
/// replacement from `src`.
pub async fn shift(
    comm: &mut RankComm,
    dst: usize,
    src: usize,
    data: Vec<f64>,
    tag: u64,
    phase: Phase,
) -> Vec<f64> {
    comm.sendrecv(dst, src, tag, data, phase).await
}

/// Direct gather onto `group[root_pos]`: returns `Some(contributions)` (by
/// group position) on the root, `None` elsewhere. Linear pattern — used for
/// collecting verification output, not in measured algorithm phases.
pub async fn gather(
    comm: &mut RankComm,
    group: &[usize],
    root_pos: usize,
    mine: Vec<f64>,
    tag: u64,
    phase: Phase,
) -> Option<Vec<Vec<f64>>> {
    let g = group.len();
    let pos = my_pos(comm, group);
    if pos == root_pos {
        let mut out: Vec<Option<Vec<f64>>> = vec![None; g];
        out[root_pos] = Some(mine);
        for (i, &r) in group.iter().enumerate() {
            if i != root_pos {
                out[i] = Some(comm.recv(r, tag, phase).await);
            }
        }
        Some(out.into_iter().map(|c| c.expect("gather complete")).collect())
    } else {
        comm.send(group[root_pos], tag, mine, phase);
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{run_spmd, run_spmd_with, ExecBackend};
    use crate::machine::MachineSpec;

    #[test]
    fn bcast_delivers_to_all_group_sizes_and_roots() {
        for p in [1usize, 2, 3, 4, 5, 8, 13] {
            for root in [0, p / 2, p - 1] {
                let spec = MachineSpec::test_machine(p, 1000);
                let out = run_spmd(&spec, |mut c| async move {
                    let group: Vec<usize> = (0..c.size()).collect();
                    let mut data = if c.rank() == group[root] {
                        vec![42.0, 7.0]
                    } else {
                        vec![]
                    };
                    bcast(&mut c, &group, root, &mut data, 9, Phase::InputA).await;
                    data
                });
                for (r, d) in out.results.iter().enumerate() {
                    assert_eq!(d, &vec![42.0, 7.0], "p={p} root={root} rank={r}");
                }
            }
        }
    }

    #[test]
    fn bcast_traffic_is_tree_shaped() {
        // Binomial tree over g ranks: g-1 point-to-point messages in total;
        // every non-root receives exactly the payload once.
        let p = 8;
        let spec = MachineSpec::test_machine(p, 1000);
        let out = run_spmd(&spec, |mut c| async move {
            let group: Vec<usize> = (0..c.size()).collect();
            let mut data = if c.rank() == 0 { vec![1.0; 100] } else { vec![] };
            bcast(&mut c, &group, 0, &mut data, 1, Phase::InputA).await;
        });
        let total_recv: u64 = out.stats.iter().map(|s| s.total_recv()).sum();
        assert_eq!(total_recv, 700, "7 receivers x 100 words");
        assert_eq!(out.stats[0].total_recv(), 0);
        // The root of a binomial tree over 8 sends log2(8) = 3 messages.
        assert_eq!(out.stats[0].msgs_sent, 3);
    }

    #[test]
    fn bcast_on_subgroup_leaves_others_untouched() {
        let spec = MachineSpec::test_machine(6, 1000);
        let out = run_spmd(&spec, |mut c| async move {
            let group = vec![1, 3, 5];
            if group.contains(&c.rank()) {
                let mut data = if c.rank() == 3 { vec![5.0] } else { vec![] };
                bcast(&mut c, &group, 1, &mut data, 2, Phase::InputB).await;
                data
            } else {
                vec![]
            }
        });
        assert_eq!(out.results[1], vec![5.0]);
        assert_eq!(out.results[3], vec![5.0]);
        assert_eq!(out.results[5], vec![5.0]);
        assert_eq!(out.stats[0].total_recv() + out.stats[2].total_recv() + out.stats[4].total_recv(), 0);
    }

    #[test]
    fn bcast_pipelined_delivers_to_all_group_sizes_and_roots() {
        for p in [1usize, 2, 3, 4, 5, 8, 13] {
            for root in [0, p / 2, p - 1] {
                for words in [0usize, 1, 64, 65, 1000] {
                    let spec = MachineSpec::test_machine(p, 10_000);
                    let out = run_spmd(&spec, move |mut c| async move {
                        let group: Vec<usize> = (0..c.size()).collect();
                        let mut data = if c.rank() == group[root] {
                            (0..words).map(|i| i as f64).collect()
                        } else {
                            vec![]
                        };
                        bcast_pipelined(&mut c, &group, root, &mut data, words, 9, Phase::InputA).await;
                        data
                    });
                    let want: Vec<f64> = (0..words).map(|i| i as f64).collect();
                    for (r, d) in out.results.iter().enumerate() {
                        assert_eq!(d, &want, "p={p} root={root} words={words} rank={r}");
                    }
                }
            }
        }
    }

    #[test]
    fn bcast_pipelined_word_and_message_counts_match_the_plan_helper() {
        for p in [2usize, 5, 8, 16] {
            for words in [0usize, 1, 64, 513, 4096] {
                let spec = MachineSpec::test_machine(p, 10_000);
                let out = run_spmd(&spec, move |mut c| async move {
                    let group: Vec<usize> = (0..c.size()).collect();
                    let mut data = if c.rank() == 0 { vec![1.0; words] } else { vec![] };
                    bcast_pipelined(&mut c, &group, 0, &mut data, words, 1, Phase::InputA).await;
                });
                for (r, st) in out.stats.iter().enumerate() {
                    let expect_words = if r == 0 { 0 } else { words as u64 };
                    assert_eq!(st.total_recv(), expect_words, "p={p} words={words} rank {r}");
                    assert_eq!(
                        st.msgs_recv,
                        bcast_pipelined_recv_msgs(r, p, words),
                        "p={p} words={words} rank {r} msgs"
                    );
                }
            }
        }
    }

    #[test]
    fn bcast_pipelined_shortens_the_deep_tree_critical_path() {
        // 1024 words over 16 ranks: the plain tree's leaf waits
        // depth · β·W = 4096 s (unit model); the pipelined tree stays within
        // ~2× of β·W. Event backend, so the virtual clock is measured.
        let p = 16;
        let words = 1024;
        let cost = crate::cost::CostModel {
            peak_flops: 1.0,
            kernel_efficiency: 1.0,
            alpha_s: 0.0,
            beta_s_per_word: 1.0,
        };
        let spec = MachineSpec::new(p, 1 << 20, cost);
        let plain = run_spmd_with(&spec, ExecBackend::event(), move |mut c| async move {
            let group: Vec<usize> = (0..c.size()).collect();
            let mut data = if c.rank() == 0 { vec![1.0; words] } else { vec![] };
            bcast(&mut c, &group, 0, &mut data, 1, Phase::InputA).await;
        })
        .unwrap();
        let piped = run_spmd_with(&spec, ExecBackend::event(), move |mut c| async move {
            let group: Vec<usize> = (0..c.size()).collect();
            let mut data = if c.rank() == 0 { vec![1.0; words] } else { vec![] };
            bcast_pipelined(&mut c, &group, 0, &mut data, words, 1, Phase::InputA).await;
        })
        .unwrap();
        let slowest =
            |stats: &[crate::stats::RankStats]| stats.iter().map(|s| s.time.total_s()).fold(0.0f64, f64::max);
        let (t_plain, t_piped) = (slowest(&plain.stats), slowest(&piped.stats));
        assert!(t_piped < t_plain / 1.5, "pipelining must beat the plain tree: {t_piped} vs {t_plain}");
        assert!(t_piped <= 2.0 * words as f64, "pipelined critical path should approach β·W: {t_piped}");
    }

    #[test]
    fn reduce_sum_collects_on_root() {
        for p in [1usize, 2, 3, 5, 8] {
            let spec = MachineSpec::test_machine(p, 1000);
            let out = run_spmd(&spec, |mut c| async move {
                let group: Vec<usize> = (0..c.size()).collect();
                let mut data = vec![c.rank() as f64, 1.0];
                reduce_sum(&mut c, &group, 0, &mut data, 3, Phase::OutputC).await;
                data
            });
            let expect_sum: f64 = (0..p).map(|r| r as f64).sum();
            assert_eq!(out.results[0], vec![expect_sum, p as f64], "p={p}");
        }
    }

    #[test]
    fn reduce_sum_nonzero_root() {
        let spec = MachineSpec::test_machine(5, 1000);
        let out = run_spmd(&spec, |mut c| async move {
            let group: Vec<usize> = (0..c.size()).collect();
            let mut data = vec![1.0];
            reduce_sum(&mut c, &group, 2, &mut data, 4, Phase::OutputC).await;
            data
        });
        assert_eq!(out.results[2], vec![5.0]);
    }

    #[test]
    fn allgather_ring_returns_position_ordered_chunks() {
        let spec = MachineSpec::test_machine(5, 1000);
        let out = run_spmd(&spec, |mut c| async move {
            let group: Vec<usize> = (0..c.size()).collect();
            let mine = vec![c.rank() as f64; c.rank() + 1];
            allgather_ring(&mut c, &group, mine, 10, Phase::InputA).await
        });
        for r in 0..5 {
            for pos in 0..5 {
                assert_eq!(out.results[r][pos], vec![pos as f64; pos + 1], "rank {r} pos {pos}");
            }
        }
    }

    #[test]
    fn allgather_ring_volume_is_total_minus_own() {
        let p = 4;
        let chunk = 25usize;
        let spec = MachineSpec::test_machine(p, 1000);
        let out = run_spmd(&spec, |mut c| async move {
            let group: Vec<usize> = (0..c.size()).collect();
            allgather_ring(&mut c, &group, vec![0.0; chunk], 11, Phase::InputB).await;
        });
        for s in &out.stats {
            assert_eq!(s.total_recv() as usize, (p - 1) * chunk);
            assert_eq!(s.total_sent() as usize, (p - 1) * chunk);
        }
    }

    #[test]
    fn allgather_singleton_group_is_free() {
        let spec = MachineSpec::test_machine(2, 1000);
        let out = run_spmd(&spec, |mut c| async move {
            let group = vec![c.rank()];
            allgather_ring(&mut c, &group, vec![3.0], 12, Phase::InputA).await
        });
        assert_eq!(out.results[0], vec![vec![3.0]]);
        assert_eq!(out.stats[0].total_recv(), 0);
    }

    #[test]
    fn shift_rotates_ring() {
        let spec = MachineSpec::test_machine(4, 1000);
        let out = run_spmd(&spec, |mut c| async move {
            let dst = (c.rank() + 1) % c.size();
            let src = (c.rank() + c.size() - 1) % c.size();
            let mine = vec![c.rank() as f64];
            shift(&mut c, dst, src, mine, 13, Phase::InputA).await
        });
        for r in 0..4 {
            assert_eq!(out.results[r], vec![((r + 3) % 4) as f64]);
        }
    }

    #[test]
    fn bruck_allgather_matches_ring() {
        for p in [1usize, 2, 3, 4, 5, 7, 8, 13] {
            let spec = MachineSpec::test_machine(p, 1000);
            let out = run_spmd(&spec, |mut c| async move {
                let group: Vec<usize> = (0..c.size()).collect();
                let sizes: Vec<usize> = (0..c.size()).map(|r| r + 1).collect();
                let mine = vec![c.rank() as f64; c.rank() + 1];
                allgather_bruck(&mut c, &group, mine, &sizes, 40, Phase::InputA).await
            });
            for r in 0..p {
                for posn in 0..p {
                    assert_eq!(out.results[r][posn], vec![posn as f64; posn + 1], "p={p} r={r}");
                }
            }
            // Words: everything except one's own chunk; messages: ceil(log2 g).
            let total: usize = (1..=p).sum();
            for (r, st) in out.stats.iter().enumerate() {
                assert_eq!(st.total_recv() as usize, total - (r + 1), "p={p} rank {r} words");
                let expect_msgs = (usize::BITS - (p - 1).leading_zeros()) as u64;
                assert_eq!(st.msgs_recv, expect_msgs, "p={p} rank {r} msgs");
            }
        }
    }

    #[test]
    fn reduce_scatter_sums_and_scatters() {
        for p in [1usize, 2, 3, 4, 5, 8] {
            let len = 13;
            let spec = MachineSpec::test_machine(p, 1000);
            let out = run_spmd(&spec, |mut c| async move {
                let group: Vec<usize> = (0..c.size()).collect();
                let mut data: Vec<f64> = (0..len).map(|i| (c.rank() * 100 + i) as f64).collect();
                reduce_scatter_ring(&mut c, &group, &mut data, 50, Phase::OutputC).await
            });
            // Reference sum.
            let want: Vec<f64> = (0..len).map(|i| (0..p).map(|r| (r * 100 + i) as f64).sum()).collect();
            let ranges = even_chunk_ranges(len, p);
            let mut owned = vec![false; p];
            for (pos, (idx, chunk)) in out.results.iter().enumerate() {
                assert_eq!(*idx, (pos + 1) % p, "p={p}: wrong owned chunk");
                assert!(!owned[*idx], "chunk owned twice");
                owned[*idx] = true;
                assert_eq!(chunk.as_slice(), &want[ranges[*idx].clone()], "p={p} pos={pos}");
            }
            assert!(owned.iter().all(|&x| x));
        }
    }

    #[test]
    fn reduce_scatter_traffic_is_balanced() {
        let p = 4;
        let len = 40; // divisible: every chunk is 10 words
        let spec = MachineSpec::test_machine(p, 1000);
        let out = run_spmd(&spec, |mut c| async move {
            let group: Vec<usize> = (0..c.size()).collect();
            let mut data = vec![1.0; len];
            reduce_scatter_ring(&mut c, &group, &mut data, 51, Phase::OutputC).await;
        });
        for st in &out.stats {
            assert_eq!(st.total_recv() as usize, len - len / p);
            assert_eq!(st.msgs_recv as usize, p - 1);
        }
    }

    #[test]
    fn even_chunk_ranges_cover() {
        let r = even_chunk_ranges(10, 3);
        assert_eq!(r, vec![0..4, 4..7, 7..10]);
        let r = even_chunk_ranges(3, 5);
        assert_eq!(r.iter().map(|x| x.len()).sum::<usize>(), 3);
    }

    #[test]
    fn gather_collects_on_root_only() {
        let spec = MachineSpec::test_machine(3, 1000);
        let out = run_spmd(&spec, |mut c| async move {
            let group: Vec<usize> = (0..c.size()).collect();
            let mine = vec![c.rank() as f64];
            gather(&mut c, &group, 1, mine, 14, Phase::Other).await
        });
        assert!(out.results[0].is_none());
        assert!(out.results[2].is_none());
        let collected = out.results[1].as_ref().unwrap();
        assert_eq!(collected, &vec![vec![0.0], vec![1.0], vec![2.0]]);
    }

    /// One shared collective workload, for the cross-backend checks below.
    async fn collective_workload(mut c: RankComm) -> (Vec<f64>, Vec<f64>, usize) {
        let group: Vec<usize> = (0..c.size()).collect();
        let mut data = if c.rank() == 0 { vec![7.0; 5] } else { vec![] };
        bcast(&mut c, &group, 0, &mut data, 1, Phase::InputA).await;
        let mut sum = vec![c.rank() as f64];
        reduce_sum(&mut c, &group, 0, &mut sum, 2, Phase::OutputC).await;
        let mine = vec![c.rank() as f64];
        let gathered = allgather_ring(&mut c, &group, mine, 3, Phase::InputB).await;
        (data, sum, gathered.len())
    }

    #[test]
    fn collectives_complete_on_the_sharded_executor() {
        // A world far bigger than the worker pool: tree parents and ring
        // neighbours park awaiting peers, so the gate must rotate its two
        // slots through all 24 ranks for any collective to terminate.
        let p = 24;
        let spec = MachineSpec::test_machine(p, 1000);
        let out = run_spmd_with(&spec, ExecBackend::Sharded { workers: 2 }, collective_workload)
            .expect("sharded run accepted");
        for (r, (data, _, gathered)) in out.results.iter().enumerate() {
            assert_eq!(data, &vec![7.0; 5], "rank {r} missed the broadcast");
            assert_eq!(*gathered, p, "rank {r} missed allgather chunks");
        }
        let expect: f64 = (0..p).map(|r| r as f64).sum();
        assert_eq!(out.results[0].1, vec![expect]);
    }

    #[test]
    fn collectives_complete_on_the_event_executor() {
        // The same workload as stackless state machines on one scheduler
        // thread: every tree/ring wait must park and resume through the
        // matching table, and the measured counters must equal the threaded
        // baseline bit for bit.
        let p = 24;
        let spec = MachineSpec::test_machine(p, 1000);
        let threaded = run_spmd(&spec, collective_workload);
        let event =
            run_spmd_with(&spec, ExecBackend::event(), collective_workload).expect("event run accepted");
        assert_eq!(threaded.results, event.results);
        // Counters match bit for bit; the event run additionally carries the
        // virtual clock, which the threaded baseline does not have.
        let counters =
            |stats: &[crate::stats::RankStats]| stats.iter().map(|s| s.sans_time()).collect::<Vec<_>>();
        assert_eq!(counters(&threaded.stats), counters(&event.stats));
    }

    #[test]
    fn consecutive_collectives_do_not_cross_talk() {
        let spec = MachineSpec::test_machine(4, 1000);
        let out = run_spmd(&spec, |mut c| async move {
            let group: Vec<usize> = (0..c.size()).collect();
            let mut a = if c.rank() == 0 { vec![1.0] } else { vec![] };
            bcast(&mut c, &group, 0, &mut a, 100, Phase::InputA).await;
            let mut b = if c.rank() == 3 { vec![2.0] } else { vec![] };
            bcast(&mut c, &group, 3, &mut b, 101, Phase::InputB).await;
            let mut s = vec![1.0];
            reduce_sum(&mut c, &group, 0, &mut s, 102, Phase::OutputC).await;
            (a, b, s)
        });
        for r in 0..4 {
            assert_eq!(out.results[r].0, vec![1.0]);
            assert_eq!(out.results[r].1, vec![2.0]);
        }
        assert_eq!(out.results[0].2, vec![4.0]);
    }
}
