//! The communicators: tagged two-sided message passing and one-sided windows.
//!
//! Rank bodies talk to the machine through [`RankComm`], the resumable
//! rank-facing handle: operations that may have to wait for a peer
//! ([`RankComm::recv`], [`RankComm::barrier`], [`RankComm::fence`]) are
//! `async` *wait-states*, so one body runs unchanged on every
//! [`crate::exec::ExecBackend`] — parked OS threads on the
//! threaded/sharded backends, stackless state machines on the event backend.
//!
//! Two communication backends mirror §7.4 of the paper:
//!
//! * **Two-sided** — [`RankComm::send`]/[`RankComm::recv`] with
//!   `(source, tag)` matching (the Message Passing model). Unbounded
//!   buffering means a send never blocks, so exchange patterns like Cannon
//!   shifts cannot deadlock.
//! * **One-sided** — per-rank shared-memory *windows* with
//!   [`RankComm::put`]/[`RankComm::get`]/[`RankComm::accumulate`] and a
//!   [`RankComm::fence`] epoch barrier (the RMA model; zero-copy into the
//!   target window exactly like `MPI_Put` into an `MPI_Win_allocate`
//!   buffer).
//!
//! [`Comm`] is the blocking (channel-based) implementation used by the
//! threaded and sharded executors; [`crate::event::EventComm`] is the
//! event-driven one. Every operation updates the per-rank [`StatsBoard`]
//! counters identically, which is how the "communication volume per rank"
//! measurements of Figures 6–7 are taken — and why all three executors
//! measure bitwise-identical numbers.

use std::cell::Cell;
use std::future::Future;
use std::pin::pin;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{Arc, Mutex, MutexGuard};
use std::task::{Context, Poll, Waker};
use std::time::Duration;

use crate::event::EventComm;
use crate::exec::{ExecError, Waiting, WorkerGate};
use crate::machine::DEFAULT_RECV_TIMEOUT;
use crate::pool::BufferPool;
use crate::stats::{Phase, StatsBoard};

/// Unwind this rank with a typed executor failure. The executors' recovery
/// paths (`run_world`'s join loop, the event scheduler's poll wrapper)
/// downcast the payload back to [`ExecError`] and return it through
/// `run_spmd_with`, so a deadlocked or torn-down world surfaces as a typed
/// error instead of a process abort. The default panic hook cannot Display
/// a typed payload (it prints `Box<dyn Any>`), so the human-readable form
/// goes to stderr first — worlds driven through the raw communicator API
/// stay diagnosable.
pub(crate) fn raise(e: ExecError) -> ! {
    eprintln!("mpsim rank failure: {e}");
    std::panic::panic_any(e)
}

/// A tagged message.
#[derive(Debug)]
struct Packet {
    from: usize,
    tag: u64,
    data: Vec<f64>,
}

/// State shared by all ranks of one simulated machine.
struct SharedState {
    senders: Vec<Sender<Packet>>,
    stats: Arc<StatsBoard>,
    barrier: std::sync::Barrier,
    windows: Vec<Mutex<Vec<f64>>>,
    pool: Arc<BufferPool>,
}

/// Lock a window mutex; a poisoned lock means another rank already
/// panicked, so recover the data and let that panic surface first.
fn lock(w: &Mutex<Vec<f64>>) -> MutexGuard<'_, Vec<f64>> {
    w.lock().unwrap_or_else(|e| e.into_inner())
}

/// The RMA window operations proper — bounds checks and data movement on a
/// raw window buffer. Shared by the blocking [`Comm`] and the event-driven
/// [`EventComm`] so the two backends cannot drift in semantics or panic
/// messages (their counters are recorded identically via [`record_rma`]).
pub(crate) mod window {
    /// (Re)size a window to `words` zeroed words.
    pub fn resize(w: &mut Vec<f64>, words: usize) {
        w.clear();
        w.resize(words, 0.0);
    }

    /// `MPI_Put`: copy `data` into the window at `offset`.
    pub fn put(w: &mut [f64], offset: usize, data: &[f64]) {
        assert!(
            offset + data.len() <= w.len(),
            "put past window end: {} + {} > {}",
            offset,
            data.len(),
            w.len()
        );
        w[offset..offset + data.len()].copy_from_slice(data);
    }

    /// `MPI_Get` into a caller-provided (typically pooled) buffer: `out` is
    /// cleared and filled with the `len` words at `offset`.
    pub fn get_into(w: &[f64], offset: usize, len: usize, out: &mut Vec<f64>) {
        assert!(offset + len <= w.len(), "get past window end");
        out.clear();
        out.extend_from_slice(&w[offset..offset + len]);
    }

    /// `MPI_Accumulate` with `MPI_SUM`: element-wise add into the window.
    pub fn accumulate(w: &mut [f64], offset: usize, data: &[f64]) {
        assert!(offset + data.len() <= w.len(), "accumulate past window end");
        for (dst, src) in w[offset..offset + data.len()].iter_mut().zip(data) {
            *dst += *src;
        }
    }

    /// Local window read (no traffic) into a caller-provided (typically
    /// pooled) buffer.
    pub fn read_local_into(w: &[f64], offset: usize, len: usize, out: &mut Vec<f64>) {
        assert!(offset + len <= w.len(), "local window read past end");
        out.clear();
        out.extend_from_slice(&w[offset..offset + len]);
    }
}

/// Count one RMA transfer of `words` words: sent by `sender`, received by
/// `receiver` — the single accounting rule both backends share.
pub(crate) fn record_rma(stats: &StatsBoard, sender: usize, receiver: usize, words: u64, phase: Phase) {
    stats.rank(sender).record_send(words, phase);
    stats.rank(receiver).record_recv(words, phase);
}

/// A rank's handle on the sharded executor's [`WorkerGate`]: tracks whether
/// this rank currently holds a runnable slot, so rendezvous points can
/// suspend (return the slot) and resume (re-acquire it) without
/// double-releasing on panic unwinds.
struct RankGate {
    gate: Arc<WorkerGate>,
    held: Cell<bool>,
}

impl RankGate {
    /// Yield the worker slot before blocking.
    fn suspend(&self) {
        if self.held.replace(false) {
            self.gate.release();
        }
    }

    /// Re-acquire a worker slot after the rendezvous completed.
    fn resume(&self) {
        if !self.held.replace(true) {
            self.gate.acquire();
        }
    }
}

impl Drop for RankGate {
    fn drop(&mut self) {
        // The rank finished (or panicked while runnable): return its slot.
        self.suspend();
    }
}

/// A rank's handle to the simulated machine.
pub struct Comm {
    rank: usize,
    p: usize,
    shared: Arc<SharedState>,
    inbox: Receiver<Packet>,
    /// Out-of-order messages awaiting a matching receive.
    pending: Vec<Packet>,
    /// Sharded-executor admission handle (`None` on the threaded backend).
    gate: Option<RankGate>,
    /// Deadlock guard: how long a blocking receive waits before raising
    /// [`ExecError::DeadlockSuspected`].
    recv_timeout: Duration,
}

impl Comm {
    /// Build communicators for a world of `p` ranks sharing `stats`.
    pub fn create_world(p: usize, stats: Arc<StatsBoard>) -> Vec<Comm> {
        Comm::create_world_gated(p, stats, None, DEFAULT_RECV_TIMEOUT, BufferPool::shared())
    }

    /// [`create_world`](Self::create_world) for an executor: every rank's
    /// blocking rendezvous will yield its runnable slot to `gate` (sharded
    /// worlds), a blocking receive that waits past `recv_timeout` raises
    /// the typed deadlock guard, and `pool` is the world's buffer-reuse
    /// arena (shared across worlds by the serving layer).
    pub fn create_world_gated(
        p: usize,
        stats: Arc<StatsBoard>,
        gate: Option<Arc<WorkerGate>>,
        recv_timeout: Duration,
        pool: Arc<BufferPool>,
    ) -> Vec<Comm> {
        assert!(p > 0, "world needs at least one rank");
        assert_eq!(stats.len(), p, "stats board size mismatch");
        let mut senders = Vec::with_capacity(p);
        let mut receivers = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = channel();
            senders.push(tx);
            receivers.push(rx);
        }
        let shared = Arc::new(SharedState {
            senders,
            stats,
            barrier: std::sync::Barrier::new(p),
            windows: (0..p).map(|_| Mutex::new(Vec::new())).collect(),
            pool,
        });
        receivers
            .into_iter()
            .enumerate()
            .map(|(rank, inbox)| Comm {
                rank,
                p,
                shared: shared.clone(),
                inbox,
                pending: Vec::new(),
                gate: gate.as_ref().map(|g| RankGate {
                    gate: g.clone(),
                    held: Cell::new(false),
                }),
                recv_timeout,
            })
            .collect()
    }

    /// Acquire this rank's initial runnable slot. The sharded executor calls
    /// this on the rank's own carrier thread before any user code; a no-op
    /// on ungated (threaded) communicators.
    pub fn gate_enter(&self) {
        if let Some(g) = &self.gate {
            g.resume();
        }
    }

    /// This rank's id, `0..p`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size `p`.
    pub fn size(&self) -> usize {
        self.p
    }

    /// The shared statistics board.
    pub fn stats(&self) -> &StatsBoard {
        &self.shared.stats
    }

    /// The world's buffer-reuse arena (see [`crate::pool::BufferPool`]).
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.shared.pool
    }

    /// Record `flops` local floating-point operations for this rank.
    pub fn record_flops(&self, flops: u64) {
        self.shared.stats.rank(self.rank).record_flops(flops);
    }

    /// Record a working-memory allocation (peak-memory accounting).
    pub fn track_alloc(&self, words: u64) {
        self.shared.stats.rank(self.rank).record_alloc(words);
    }

    /// Record a working-memory release.
    pub fn track_free(&self, words: u64) {
        self.shared.stats.rank(self.rank).record_free(words);
    }

    // ------------------------------------------------------------------
    // Two-sided backend
    // ------------------------------------------------------------------

    /// Send `data` to rank `to` with `tag`. Never blocks.
    ///
    /// # Panics
    /// Panics if `to` is out of range, or with a typed
    /// [`ExecError::WorldTornDown`] payload when the receiving rank already
    /// exited (the executor converts that into a typed error).
    pub fn send(&self, to: usize, tag: u64, data: Vec<f64>, phase: Phase) {
        assert!(to < self.p, "send to rank {to} of {}", self.p);
        self.shared.stats.rank(self.rank).record_send(data.len() as u64, phase);
        if self.shared.senders[to]
            .send(Packet {
                from: self.rank,
                tag,
                data,
            })
            .is_err()
        {
            // The receiver dropped: a peer exited (or failed) early.
            raise(ExecError::WorldTornDown { rank: self.rank });
        }
    }

    /// Receive the next message from `from` with `tag`, blocking until it
    /// arrives. Messages from the same sender with the same tag are delivered
    /// in send order.
    ///
    /// On the sharded backend a receive with no matching message buffered is
    /// a resumable wait-state: the rank yields its worker slot while it
    /// waits and re-acquires one once the message arrived.
    ///
    /// # Panics
    /// Panics with a typed [`ExecError::DeadlockSuspected`] payload after
    /// [`MachineSpec::recv_timeout`](crate::machine::MachineSpec) without a
    /// matching message, or [`ExecError::WorldTornDown`] if every peer
    /// exited; the executor converts both into typed errors.
    pub fn recv(&mut self, from: usize, tag: u64, phase: Phase) -> Vec<f64> {
        // Check the out-of-order buffer first.
        if let Some(i) = self.pending.iter().position(|m| m.from == from && m.tag == tag) {
            let msg = self.pending.remove(i);
            self.shared.stats.rank(self.rank).record_recv(msg.data.len() as u64, phase);
            return msg.data;
        }
        // Drain already-delivered messages without giving up the worker slot.
        loop {
            match self.inbox.try_recv() {
                Ok(msg) if msg.from == from && msg.tag == tag => {
                    self.shared.stats.rank(self.rank).record_recv(msg.data.len() as u64, phase);
                    return msg.data;
                }
                Ok(msg) => self.pending.push(msg),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => raise(ExecError::WorldTornDown { rank: self.rank }),
            }
        }
        // Nothing buffered: park until the match arrives, yielding this
        // rank's worker slot for the duration of the wait.
        if let Some(g) = &self.gate {
            g.suspend();
        }
        let data = loop {
            let msg = match self.inbox.recv_timeout(self.recv_timeout) {
                Ok(msg) => msg,
                Err(RecvTimeoutError::Timeout) => raise(ExecError::DeadlockSuspected {
                    rank: self.rank,
                    on: Waiting::Message { from, tag },
                }),
                Err(RecvTimeoutError::Disconnected) => raise(ExecError::WorldTornDown { rank: self.rank }),
            };
            if msg.from == from && msg.tag == tag {
                break msg.data;
            }
            self.pending.push(msg);
        };
        if let Some(g) = &self.gate {
            g.resume();
        }
        self.shared.stats.rank(self.rank).record_recv(data.len() as u64, phase);
        data
    }

    /// Combined exchange: send `data` to `to` and receive from `from` under
    /// the same tag (a ring-shift step). Non-deadlocking because sends are
    /// buffered.
    pub fn sendrecv(&mut self, to: usize, from: usize, tag: u64, data: Vec<f64>, phase: Phase) -> Vec<f64> {
        self.send(to, tag, data, phase);
        self.recv(from, tag, phase)
    }

    /// Block until all ranks reach the barrier. On the sharded backend the
    /// wait is a resumable wait-state: the rank yields its worker slot while
    /// standing at the barrier (all `p` ranks must arrive, and fewer than
    /// `p` workers exist).
    pub fn barrier(&self) {
        if let Some(g) = &self.gate {
            g.suspend();
        }
        self.shared.barrier.wait();
        if let Some(g) = &self.gate {
            g.resume();
        }
    }

    // ------------------------------------------------------------------
    // One-sided (RMA) backend
    // ------------------------------------------------------------------

    /// (Re)size this rank's window to `words` zeroed words. Like
    /// `MPI_Win_allocate`, every rank must call it before the first
    /// [`Comm::fence`] of the epoch that uses the window.
    pub fn win_resize(&self, words: usize) {
        window::resize(&mut lock(&self.shared.windows[self.rank]), words);
    }

    /// Write `data` into `target`'s window at `offset` (like `MPI_Put`).
    /// Counts as `data.len()` words sent by this rank and received by the
    /// target.
    ///
    /// # Panics
    /// Panics if the target window is too small.
    pub fn put(&self, target: usize, offset: usize, data: &[f64], phase: Phase) {
        window::put(&mut lock(&self.shared.windows[target]), offset, data);
        record_rma(&self.shared.stats, self.rank, target, data.len() as u64, phase);
    }

    /// Read `len` words at `offset` from `target`'s window (like `MPI_Get`).
    /// Counts as words received by this rank and sent by the target. The
    /// returned buffer comes from the world's arena, never a fresh
    /// allocation on a pool hit.
    pub fn get(&self, target: usize, offset: usize, len: usize, phase: Phase) -> Vec<f64> {
        let mut out = self.shared.pool.take_clear(len);
        window::get_into(&lock(&self.shared.windows[target]), offset, len, &mut out);
        record_rma(&self.shared.stats, target, self.rank, len as u64, phase);
        out
    }

    /// Element-wise add `data` into `target`'s window at `offset` (like
    /// `MPI_Accumulate` with `MPI_SUM`).
    pub fn accumulate(&self, target: usize, offset: usize, data: &[f64], phase: Phase) {
        window::accumulate(&mut lock(&self.shared.windows[target]), offset, data);
        record_rma(&self.shared.stats, self.rank, target, data.len() as u64, phase);
    }

    /// Replace this rank's window contents (no traffic counted — populating
    /// one's own window is a local operation, like filling an
    /// `MPI_Win_allocate` buffer).
    pub fn win_fill(&self, data: Vec<f64>) {
        *lock(&self.shared.windows[self.rank]) = data;
    }

    /// Read this rank's own window (no traffic counted). Copies the whole
    /// window into a pooled buffer — prefer
    /// [`win_read_local`](Self::win_read_local) when only a slice is needed.
    pub fn win_local(&self) -> Vec<f64> {
        let w = lock(&self.shared.windows[self.rank]);
        self.shared.pool.take_copy(&w)
    }

    /// Read a slice of this rank's own window (no traffic counted) into a
    /// pooled buffer — the slice-sized alternative to cloning the whole
    /// window via [`win_local`](Self::win_local).
    pub fn win_read_local(&self, offset: usize, len: usize) -> Vec<f64> {
        let mut out = self.shared.pool.take_clear(len);
        window::read_local_into(&lock(&self.shared.windows[self.rank]), offset, len, &mut out);
        out
    }

    /// Close an RMA epoch: all puts/gets/accumulates issued before the fence
    /// are visible after it (like `MPI_Win_fence`).
    pub fn fence(&self) {
        self.barrier();
    }
}

// ---------------------------------------------------------------------------
// The rank-facing resumable handle
// ---------------------------------------------------------------------------

/// The communicator a rank body receives: one resumable surface over every
/// execution backend.
///
/// Rendezvous operations ([`recv`](Self::recv), [`barrier`](Self::barrier),
/// [`fence`](Self::fence), [`sendrecv`](Self::sendrecv)) are `async`
/// wait-states. On the blocking backends (threaded/sharded) they complete
/// within a single poll — the underlying [`Comm`] parks the rank's OS thread
/// or yields its worker slot exactly as before. On the event backend they
/// return `Poll::Pending` and the scheduler parks the rank's state machine
/// in the matching table, costing bytes instead of a stack.
///
/// Rank bodies are `async` closures over this handle:
///
/// ```
/// use mpsim::exec::{run_spmd_with, ExecBackend};
/// use mpsim::machine::MachineSpec;
/// use mpsim::stats::Phase;
///
/// let spec = MachineSpec::test_machine(4, 1000);
/// let out = run_spmd_with(&spec, ExecBackend::event(), |mut c| async move {
///     let right = (c.rank() + 1) % c.size();
///     let left = (c.rank() + c.size() - 1) % c.size();
///     c.sendrecv(right, left, 0, vec![c.rank() as f64], Phase::Other).await[0]
/// })
/// .unwrap();
/// assert_eq!(out.results[1], 0.0);
/// ```
pub enum RankComm {
    /// Channel-backed blocking communicator (threaded/sharded executors).
    Blocking(Comm),
    /// Event-world handle (event executor): wait-states actually suspend.
    Event(EventComm),
}

impl RankComm {
    /// This rank's id, `0..p`.
    pub fn rank(&self) -> usize {
        match self {
            RankComm::Blocking(c) => c.rank(),
            RankComm::Event(c) => c.rank(),
        }
    }

    /// World size `p`.
    pub fn size(&self) -> usize {
        match self {
            RankComm::Blocking(c) => c.size(),
            RankComm::Event(c) => c.size(),
        }
    }

    /// The shared statistics board.
    pub fn stats(&self) -> &StatsBoard {
        match self {
            RankComm::Blocking(c) => c.stats(),
            RankComm::Event(c) => c.stats(),
        }
    }

    /// The world's buffer-reuse arena (see [`crate::pool::BufferPool`]).
    pub fn pool(&self) -> &Arc<BufferPool> {
        match self {
            RankComm::Blocking(c) => c.pool(),
            RankComm::Event(c) => c.pool(),
        }
    }

    /// Hand a consumed buffer back to the world's arena for reuse. Purely an
    /// allocation optimization — recycling never changes results, counters
    /// or virtual time.
    pub fn recycle(&self, buf: Vec<f64>) {
        self.pool().give(buf);
    }

    /// Record `flops` local floating-point operations for this rank.
    pub fn record_flops(&self, flops: u64) {
        match self {
            RankComm::Blocking(c) => c.record_flops(flops),
            RankComm::Event(c) => c.record_flops(flops),
        }
    }

    /// Record a working-memory allocation (peak-memory accounting).
    pub fn track_alloc(&self, words: u64) {
        match self {
            RankComm::Blocking(c) => c.track_alloc(words),
            RankComm::Event(c) => c.track_alloc(words),
        }
    }

    /// Record a working-memory release.
    pub fn track_free(&self, words: u64) {
        match self {
            RankComm::Blocking(c) => c.track_free(words),
            RankComm::Event(c) => c.track_free(words),
        }
    }

    /// Send `data` to rank `to` with `tag`. Never suspends.
    pub fn send(&self, to: usize, tag: u64, data: Vec<f64>, phase: Phase) {
        match self {
            RankComm::Blocking(c) => c.send(to, tag, data, phase),
            RankComm::Event(c) => c.send(to, tag, data, phase),
        }
    }

    /// Receive the next message from `from` with `tag` — a wait-state until
    /// the matching message arrives. Messages from the same sender with the
    /// same tag are delivered in send order on every backend.
    pub async fn recv(&mut self, from: usize, tag: u64, phase: Phase) -> Vec<f64> {
        match self {
            RankComm::Blocking(c) => c.recv(from, tag, phase),
            RankComm::Event(c) => c.recv(from, tag, phase).await,
        }
    }

    /// Combined exchange: send `data` to `to` and receive from `from` under
    /// the same tag (a ring-shift step). Non-deadlocking because sends are
    /// buffered.
    pub async fn sendrecv(
        &mut self,
        to: usize,
        from: usize,
        tag: u64,
        data: Vec<f64>,
        phase: Phase,
    ) -> Vec<f64> {
        match self {
            RankComm::Blocking(c) => c.sendrecv(to, from, tag, data, phase),
            RankComm::Event(c) => c.sendrecv(to, from, tag, data, phase).await,
        }
    }

    /// Wait until all ranks reach the barrier — a wait-state.
    pub async fn barrier(&mut self) {
        match self {
            RankComm::Blocking(c) => c.barrier(),
            RankComm::Event(c) => c.barrier().await,
        }
    }

    /// Close an RMA epoch (like `MPI_Win_fence`) — a wait-state.
    pub async fn fence(&mut self) {
        match self {
            RankComm::Blocking(c) => c.fence(),
            RankComm::Event(c) => c.fence().await,
        }
    }

    /// (Re)size this rank's window to `words` zeroed words.
    pub fn win_resize(&self, words: usize) {
        match self {
            RankComm::Blocking(c) => c.win_resize(words),
            RankComm::Event(c) => c.win_resize(words),
        }
    }

    /// Write `data` into `target`'s window at `offset` (like `MPI_Put`).
    pub fn put(&self, target: usize, offset: usize, data: &[f64], phase: Phase) {
        match self {
            RankComm::Blocking(c) => c.put(target, offset, data, phase),
            RankComm::Event(c) => c.put(target, offset, data, phase),
        }
    }

    /// Read `len` words at `offset` from `target`'s window (like `MPI_Get`).
    pub fn get(&self, target: usize, offset: usize, len: usize, phase: Phase) -> Vec<f64> {
        match self {
            RankComm::Blocking(c) => c.get(target, offset, len, phase),
            RankComm::Event(c) => c.get(target, offset, len, phase),
        }
    }

    /// Element-wise add `data` into `target`'s window at `offset`.
    pub fn accumulate(&self, target: usize, offset: usize, data: &[f64], phase: Phase) {
        match self {
            RankComm::Blocking(c) => c.accumulate(target, offset, data, phase),
            RankComm::Event(c) => c.accumulate(target, offset, data, phase),
        }
    }

    /// Replace this rank's window contents (local, no traffic counted).
    pub fn win_fill(&self, data: Vec<f64>) {
        match self {
            RankComm::Blocking(c) => c.win_fill(data),
            RankComm::Event(c) => c.win_fill(data),
        }
    }

    /// Read this rank's own window (no traffic counted).
    pub fn win_local(&self) -> Vec<f64> {
        match self {
            RankComm::Blocking(c) => c.win_local(),
            RankComm::Event(c) => c.win_local(),
        }
    }

    /// Read a slice of this rank's own window (no traffic counted).
    pub fn win_read_local(&self, offset: usize, len: usize) -> Vec<f64> {
        match self {
            RankComm::Blocking(c) => c.win_read_local(offset, len),
            RankComm::Event(c) => c.win_read_local(offset, len),
        }
    }
}

/// Drive a rank-body future on a blocking ([`RankComm::Blocking`]) context
/// to completion. Every wait-state on a blocking context completes within
/// its poll (the underlying [`Comm`] blocks the thread), so a single poll
/// finishes the body; suspension here would mean the body awaited something
/// other than its communicator.
pub fn block_on_ready<F: Future>(fut: F) -> F::Output {
    let mut fut = pin!(fut);
    let mut cx = Context::from_waker(Waker::noop());
    match fut.as_mut().poll(&mut cx) {
        Poll::Ready(out) => out,
        Poll::Pending => panic!(
            "a blocking rank context cannot suspend: rank bodies must only await \
             their RankComm's operations"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world(p: usize) -> (Vec<Comm>, Arc<StatsBoard>) {
        let stats = Arc::new(StatsBoard::new(p));
        (Comm::create_world(p, stats.clone()), stats)
    }

    #[test]
    fn simple_send_recv() {
        let (mut comms, stats) = world(2);
        let mut c1 = comms.pop().unwrap();
        let c0 = comms.pop().unwrap();
        c0.send(1, 7, vec![1.0, 2.0, 3.0], Phase::InputA);
        let got = c1.recv(0, 7, Phase::InputA);
        assert_eq!(got, vec![1.0, 2.0, 3.0]);
        let snap = stats.snapshot();
        assert_eq!(snap[0].total_sent(), 3);
        assert_eq!(snap[1].total_recv(), 3);
        assert_eq!(snap[1].msgs_recv, 1);
    }

    #[test]
    fn tag_matching_reorders() {
        let (mut comms, _) = world(2);
        let mut c1 = comms.pop().unwrap();
        let c0 = comms.pop().unwrap();
        c0.send(1, 1, vec![1.0], Phase::Other);
        c0.send(1, 2, vec![2.0], Phase::Other);
        // Receive tag 2 first; tag 1 is buffered and found afterwards.
        assert_eq!(c1.recv(0, 2, Phase::Other), vec![2.0]);
        assert_eq!(c1.recv(0, 1, Phase::Other), vec![1.0]);
    }

    #[test]
    fn same_tag_fifo_per_sender() {
        let (mut comms, _) = world(2);
        let mut c1 = comms.pop().unwrap();
        let c0 = comms.pop().unwrap();
        c0.send(1, 5, vec![1.0], Phase::Other);
        c0.send(1, 5, vec![2.0], Phase::Other);
        assert_eq!(c1.recv(0, 5, Phase::Other), vec![1.0]);
        assert_eq!(c1.recv(0, 5, Phase::Other), vec![2.0]);
    }

    #[test]
    fn self_send() {
        let (mut comms, _) = world(1);
        let mut c0 = comms.pop().unwrap();
        c0.send(0, 3, vec![9.0], Phase::Other);
        assert_eq!(c0.recv(0, 3, Phase::Other), vec![9.0]);
    }

    #[test]
    fn threaded_exchange() {
        let (comms, stats) = world(4);
        std::thread::scope(|s| {
            for mut c in comms {
                s.spawn(move || {
                    let right = (c.rank() + 1) % c.size();
                    let left = (c.rank() + c.size() - 1) % c.size();
                    let got = c.sendrecv(right, left, 0, vec![c.rank() as f64; 10], Phase::InputB);
                    assert_eq!(got, vec![left as f64; 10]);
                });
            }
        });
        let snap = stats.snapshot();
        for st in snap.iter().take(4) {
            assert_eq!(st.total_sent(), 10);
            assert_eq!(st.total_recv(), 10);
        }
    }

    #[test]
    fn rma_put_get_accumulate() {
        let (comms, stats) = world(2);
        std::thread::scope(|s| {
            for c in comms {
                s.spawn(move || {
                    c.win_resize(4);
                    c.fence();
                    if c.rank() == 0 {
                        c.put(1, 0, &[1.0, 2.0], Phase::InputA);
                        c.accumulate(1, 1, &[10.0], Phase::OutputC);
                    }
                    c.fence();
                    if c.rank() == 1 {
                        assert_eq!(c.win_local(), vec![1.0, 12.0, 0.0, 0.0]);
                        let fetched = c.get(0, 0, 2, Phase::InputB);
                        assert_eq!(fetched, vec![0.0, 0.0]);
                    }
                    c.fence();
                });
            }
        });
        let snap = stats.snapshot();
        // rank 0 sent 3 words by put/accumulate and 2 more serving the get;
        // rank 1 received those 3 words plus the 2 it fetched itself.
        assert_eq!(snap[0].total_sent(), 5);
        assert_eq!(snap[0].total_recv(), 0);
        assert_eq!(snap[1].total_recv(), 5);
        assert_eq!(snap[1].total_sent(), 0);
    }

    #[test]
    #[should_panic(expected = "put past window end")]
    fn rma_bounds_checked() {
        let (mut comms, _) = world(2);
        let _c1 = comms.pop().unwrap();
        let c0 = comms.pop().unwrap();
        c0.win_resize(2);
        c0.put(0, 1, &[1.0, 2.0], Phase::Other);
    }

    #[test]
    fn alloc_tracking_reaches_stats() {
        let (comms, stats) = world(1);
        comms[0].track_alloc(500);
        comms[0].track_free(200);
        comms[0].track_alloc(100);
        assert_eq!(stats.snapshot()[0].peak_mem_words, 500);
    }
}
