//! The α-β-γ cost model and %-of-peak reporting.
//!
//! The paper reports runtime and "% of peak flop/s" on Piz Daint. We model a
//! rank's execution as a sequence of rounds, each with a communication part
//! (`α` per message + `β` per word) and a computation part (`flops/γ`), and
//! evaluate the sequence either back-to-back (no overlap) or double-buffered
//! (§7.3: the next round's communication overlaps the current round's
//! computation). The %-peak metric divides achieved flop/s by the machine's
//! *raw* peak, exactly like Figure 8/10/13/14.

/// Communication/computation cost constants of one rank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Raw peak flop rate per rank (flop/s). % peak is measured against this.
    pub peak_flops: f64,
    /// Sustained fraction of peak the local GEMM kernel achieves (γ =
    /// `peak_flops · kernel_efficiency`).
    pub kernel_efficiency: f64,
    /// Per-message latency in seconds (α).
    pub alpha_s: f64,
    /// Per-word transfer time in seconds (β, for 8-byte words).
    pub beta_s_per_word: f64,
}

impl CostModel {
    /// Piz-Daint-XC40-like constants (two-sided MPI backend): 2×18-core
    /// Xeon E5-2695 v4 nodes (33.6 Gflop/s peak per core), Aries network
    /// (~10 GB/s injection per 36-core node → ~0.28 GB/s per core).
    pub fn piz_daint_two_sided() -> Self {
        CostModel {
            peak_flops: 33.6e9,
            kernel_efficiency: 0.90,
            alpha_s: 2.0e-6,
            beta_s_per_word: 2.83e-8,
        }
    }

    /// Same machine with the one-sided (RDMA) backend of §7.4: lower
    /// per-message latency because the OS/matching path is bypassed.
    pub fn piz_daint_one_sided() -> Self {
        CostModel {
            alpha_s: 1.2e-6,
            ..Self::piz_daint_two_sided()
        }
    }

    /// This model with β scaled by a topology contention multiplier
    /// (`Network::mean_contention`): the plan-level mean-field view of the
    /// event executor's shared-link serialization. α and γ are per-rank
    /// resources and stay untouched; a multiplier of exactly `1.0` (the
    /// flat topology) returns the model bitwise-unchanged.
    pub fn with_contention(&self, multiplier: f64) -> CostModel {
        CostModel {
            beta_s_per_word: self.beta_s_per_word * multiplier,
            ..*self
        }
    }

    /// The effective γ (sustained flop/s) used by [`CostModel::compute_time`]:
    /// `peak_flops · kernel_efficiency`.
    pub fn gamma_flops(&self) -> f64 {
        self.peak_flops * self.kernel_efficiency
    }

    /// This model with γ *calibrated* from a measured kernel rate instead of
    /// the assumed efficiency constant.
    ///
    /// The benchmark harness times the real local kernel (`densemat`'s packed
    /// GEMM), divides achieved flop/s by `peak_flops`, and feeds the result
    /// here so that plan selection and %-peak predictions reflect the machine
    /// the simulation actually runs on — the paper's §7 premise that the
    /// distributed schedule is only as good as its local multiply. The
    /// efficiency is clamped to `(0, 1]`: a kernel cannot (honestly) beat raw
    /// peak, and a non-positive measurement falls back to the assumed value.
    pub fn calibrated_gamma(&self, measured_flops_per_s: f64) -> CostModel {
        let eff = measured_flops_per_s / self.peak_flops;
        if !eff.is_finite() || eff <= 0.0 {
            return *self;
        }
        CostModel {
            kernel_efficiency: eff.min(1.0),
            ..*self
        }
    }

    /// Time to execute `flops` floating-point operations locally.
    pub fn compute_time(&self, flops: u64) -> f64 {
        flops as f64 / (self.peak_flops * self.kernel_efficiency)
    }

    /// Time to move `words` words in `msgs` messages.
    pub fn comm_time(&self, words: u64, msgs: u64) -> f64 {
        self.alpha_s * msgs as f64 + self.beta_s_per_word * words as f64
    }
}

/// One round of a rank's schedule: receive some words, then compute.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundCost {
    /// Words received this round.
    pub words: u64,
    /// Messages received this round.
    pub msgs: u64,
    /// Flops computed this round.
    pub flops: u64,
}

/// A rank's simulated time, split into its exposed parts.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TimeBreakdown {
    /// Seconds spent computing.
    pub compute_s: f64,
    /// Seconds of communication that are *exposed* (not hidden by overlap).
    pub exposed_comm_s: f64,
    /// Total communication seconds (exposed + hidden).
    pub total_comm_s: f64,
}

impl TimeBreakdown {
    /// Wall-clock seconds of the rank: compute + exposed communication.
    pub fn total_s(&self) -> f64 {
        self.compute_s + self.exposed_comm_s
    }
}

/// Evaluate a sequence of rounds under the cost model.
///
/// Without overlap every round is `comm_i` then `comp_i` back to back. With
/// overlap (double buffering, §7.3) round `i+1`'s communication proceeds
/// while round `i` computes: the exposed time is
/// `comm_0 + Σ max(comp_i, comm_{i+1}) + comp_last`.
pub fn simulate_rounds(rounds: &[RoundCost], model: &CostModel, overlap: bool) -> TimeBreakdown {
    let comm: Vec<f64> = rounds.iter().map(|r| model.comm_time(r.words, r.msgs)).collect();
    let comp: Vec<f64> = rounds.iter().map(|r| model.compute_time(r.flops)).collect();
    let compute_s: f64 = comp.iter().sum();
    let total_comm_s: f64 = comm.iter().sum();
    if rounds.is_empty() {
        return TimeBreakdown::default();
    }
    let exposed_comm_s = if !overlap {
        total_comm_s
    } else {
        // Pipeline: the first fetch is exposed; afterwards communication of
        // round i+1 hides behind computation of round i; whatever exceeds the
        // computation time stays exposed.
        let mut exposed = comm[0];
        for i in 0..rounds.len() - 1 {
            exposed += (comm[i + 1] - comp[i]).max(0.0);
        }
        exposed
    };
    TimeBreakdown {
        compute_s,
        exposed_comm_s,
        total_comm_s,
    }
}

/// Percent of machine peak achieved: `flops / (p · peak · seconds) · 100`.
pub fn percent_peak(total_flops: u64, p: usize, seconds: f64, model: &CostModel) -> f64 {
    if seconds <= 0.0 || p == 0 {
        return 0.0;
    }
    100.0 * total_flops as f64 / (p as f64 * model.peak_flops * seconds)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_model() -> CostModel {
        CostModel {
            peak_flops: 1.0,
            kernel_efficiency: 1.0,
            alpha_s: 0.0,
            beta_s_per_word: 1.0,
        }
    }

    #[test]
    fn compute_and_comm_time() {
        let m = CostModel {
            peak_flops: 100.0,
            kernel_efficiency: 0.5,
            alpha_s: 2.0,
            beta_s_per_word: 0.1,
        };
        assert!((m.compute_time(100) - 2.0).abs() < 1e-12);
        assert!((m.comm_time(10, 3) - (6.0 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn no_overlap_is_sum() {
        let rounds = [
            RoundCost {
                words: 5,
                msgs: 0,
                flops: 10,
            },
            RoundCost {
                words: 3,
                msgs: 0,
                flops: 4,
            },
        ];
        let t = simulate_rounds(&rounds, &unit_model(), false);
        assert!((t.compute_s - 14.0).abs() < 1e-12);
        assert!((t.exposed_comm_s - 8.0).abs() < 1e-12);
        assert!((t.total_s() - 22.0).abs() < 1e-12);
        assert!((t.total_comm_s - t.exposed_comm_s).abs() < 1e-12);
    }

    #[test]
    fn overlap_hides_comm_behind_compute() {
        // comm = [5, 3], comp = [10, 4]: with overlap only the first fetch is
        // exposed (3 < 10 hides fully): total = 5 + 10 + 4.
        let rounds = [
            RoundCost {
                words: 5,
                msgs: 0,
                flops: 10,
            },
            RoundCost {
                words: 3,
                msgs: 0,
                flops: 4,
            },
        ];
        let t = simulate_rounds(&rounds, &unit_model(), true);
        assert!((t.exposed_comm_s - 5.0).abs() < 1e-12);
        assert!((t.total_s() - 19.0).abs() < 1e-12);
        // Total comm still accounts for the hidden part.
        assert!((t.total_comm_s - 8.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_exposes_excess_comm() {
        // comm = [2, 20], comp = [4, 1]: second fetch exceeds the compute it
        // hides behind by 16.
        let rounds = [
            RoundCost {
                words: 2,
                msgs: 0,
                flops: 4,
            },
            RoundCost {
                words: 20,
                msgs: 0,
                flops: 1,
            },
        ];
        let t = simulate_rounds(&rounds, &unit_model(), true);
        assert!((t.exposed_comm_s - 18.0).abs() < 1e-12);
        assert!((t.total_s() - 23.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_never_slower_never_faster_than_bounds() {
        let model = CostModel::piz_daint_two_sided();
        let rounds: Vec<RoundCost> = (0..20)
            .map(|i| RoundCost {
                words: 1000 * (i + 1),
                msgs: 2,
                flops: 500_000 * (20 - i),
            })
            .collect();
        let no = simulate_rounds(&rounds, &model, false);
        let yes = simulate_rounds(&rounds, &model, true);
        assert!(yes.total_s() <= no.total_s() + 1e-15);
        // Overlap cannot beat the max(comm, comp) lower bound.
        assert!(yes.total_s() + 1e-15 >= no.compute_s.max(no.total_comm_s));
    }

    #[test]
    fn empty_rounds() {
        let t = simulate_rounds(&[], &unit_model(), true);
        assert_eq!(t.total_s(), 0.0);
    }

    #[test]
    fn percent_peak_formula() {
        let m = unit_model();
        // 50 flops on 1 rank of peak 1 flop/s over 100 s = 50%.
        assert!((percent_peak(50, 1, 100.0, &m) - 50.0).abs() < 1e-12);
        assert_eq!(percent_peak(50, 0, 100.0, &m), 0.0);
        assert_eq!(percent_peak(50, 1, 0.0, &m), 0.0);
    }

    #[test]
    fn contention_scales_beta_only_and_one_is_identity() {
        let m = CostModel::piz_daint_two_sided();
        assert_eq!(m.with_contention(1.0), m, "1.0 must be the bitwise identity");
        let worse = m.with_contention(8.0);
        assert_eq!(worse.alpha_s, m.alpha_s);
        assert_eq!(worse.peak_flops, m.peak_flops);
        assert_eq!(worse.beta_s_per_word, m.beta_s_per_word * 8.0);
    }

    #[test]
    fn calibrated_gamma_clamps_and_falls_back() {
        let m = CostModel::piz_daint_two_sided();
        let cal = m.calibrated_gamma(0.5 * m.peak_flops);
        assert_eq!(cal.kernel_efficiency, 0.5);
        assert_eq!(cal.peak_flops, m.peak_flops, "peak is the reporting basis; never rescaled");
        assert!((cal.gamma_flops() - 0.5 * m.peak_flops).abs() < 1e-3);
        // Can't beat peak; bogus measurements keep the assumed efficiency.
        assert_eq!(m.calibrated_gamma(2.0 * m.peak_flops).kernel_efficiency, 1.0);
        assert_eq!(m.calibrated_gamma(0.0), m);
        assert_eq!(m.calibrated_gamma(-3.0), m);
        assert_eq!(m.calibrated_gamma(f64::NAN), m);
    }

    #[test]
    fn piz_daint_presets_sane() {
        let two = CostModel::piz_daint_two_sided();
        let one = CostModel::piz_daint_one_sided();
        assert!(one.alpha_s < two.alpha_s, "RMA must have lower latency");
        assert_eq!(one.beta_s_per_word, two.beta_s_per_word);
        // A core computes a 1000^3 GEMM in ~66 ms at 90% of 33.6 Gflop/s.
        let t = two.compute_time(2_000_000_000);
        assert!(t > 0.05 && t < 0.08, "gemm time {t}");
    }
}
