//! The event-driven stackless executor behind [`ExecBackend::Event`].
//!
//! The sharded executor multiplexes ranks over a worker pool, but every rank
//! still owns an OS thread whose (small) stack it keeps while parked —
//! ~64 KiB of touched pages per rank, which caps practical worlds around a
//! few thousand ranks. This module removes the per-rank thread entirely:
//!
//! * every rank body is a *stackless resumable state machine* — the `async`
//!   rank body the caller hands to [`crate::exec::run_spmd_with`], compiled
//!   by rustc into an explicit-continuation enum whose suspended state costs
//!   bytes, not a stack;
//! * one scheduler thread drives all `p` state machines from a FIFO
//!   [`ready queue`](SchedEvent); a rank that cannot make progress
//!   (a `recv` with no matching message, a `barrier`/`fence` waiting for
//!   peers) registers a [`Wait`] in the world's matching table and returns
//!   `Poll::Pending`;
//! * a `send` that satisfies a registered `Recv` wait — or the last arrival
//!   at a barrier — clears the wait and moves the rank back onto the ready
//!   queue.
//!
//! Admission is strictly FIFO, so a ready rank is never starved: between two
//! polls of the same rank, every other rank that became ready earlier is
//! polled first (the property tests assert this on the scheduler trace).
//! Message matching, delivery order and counter updates mirror the blocking
//! [`crate::comm::Comm`] exactly, so results are bitwise identical and the
//! per-rank counters equal across all three backends. Worlds of 100k+ ranks
//! execute end-to-end with real messages in a few hundred bytes per rank.

use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Mutex, MutexGuard};
use std::task::{Context, Poll, Waker};

use crate::comm::{record_rma, window};
use crate::exec::RunOutput;
use crate::machine::MachineSpec;
use crate::stats::{Phase, StatsBoard};

/// A tagged in-flight message (the event-world analogue of the blocking
/// communicator's channel packet).
#[derive(Debug)]
struct Packet {
    from: usize,
    tag: u64,
    data: Vec<f64>,
}

/// What a parked rank is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Wait {
    /// Runnable (or currently being polled) — not in the matching table.
    None,
    /// Parked on a `recv(from, tag)` with no matching message buffered.
    Recv { from: usize, tag: u64 },
    /// Parked at the world barrier.
    Barrier,
}

/// One scheduler decision, for the fairness property tests: ranks enter the
/// ready queue (`Enqueue`) and are polled (`Poll`) in strictly FIFO order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedEvent {
    /// The rank became runnable and joined the back of the ready queue.
    Enqueue(usize),
    /// The rank was popped from the front of the queue and polled.
    Poll(usize),
}

/// Mutable world state, behind one mutex (the scheduler is single-threaded;
/// the lock exists so [`EventComm`] stays `Send` like the other backends'
/// communicators).
struct WorldState {
    /// Per-rank delivered-but-unmatched messages, in arrival order — the
    /// union of the blocking communicator's channel and `pending` buffer.
    mailboxes: Vec<VecDeque<Packet>>,
    /// The matching table: what each rank currently waits for.
    waits: Vec<Wait>,
    /// FIFO ready queue of runnable ranks.
    ready: VecDeque<usize>,
    /// Ranks whose body future completed.
    finished: Vec<bool>,
    /// Arrivals at the current barrier epoch.
    barrier_arrived: usize,
    /// Completed barrier epochs (a parked arrival resumes when this passes
    /// the epoch it arrived in).
    barrier_gen: u64,
    /// Per-rank RMA windows (the one-sided backend).
    windows: Vec<Vec<f64>>,
    /// Scheduler decision trace, recorded when tracing is on.
    trace: Option<Vec<SchedEvent>>,
}

impl WorldState {
    fn enqueue(&mut self, rank: usize) {
        if let Some(t) = &mut self.trace {
            t.push(SchedEvent::Enqueue(rank));
        }
        self.ready.push_back(rank);
    }

    /// Remove and return the first message from `from` with `tag` in
    /// `rank`'s mailbox — the same arrival-order matching rule as the
    /// blocking communicator's pending-buffer scan.
    fn take_match(&mut self, rank: usize, from: usize, tag: u64) -> Option<Vec<f64>> {
        let inbox = &mut self.mailboxes[rank];
        let idx = inbox.iter().position(|m| m.from == from && m.tag == tag)?;
        Some(inbox.remove(idx).expect("indexed message exists").data)
    }
}

/// State shared by all ranks of one event-driven machine.
pub struct EventWorld {
    p: usize,
    stats: Arc<StatsBoard>,
    st: Mutex<WorldState>,
}

impl EventWorld {
    fn new(p: usize, stats: Arc<StatsBoard>, traced: bool) -> Self {
        EventWorld {
            p,
            stats,
            st: Mutex::new(WorldState {
                mailboxes: (0..p).map(|_| VecDeque::new()).collect(),
                waits: vec![Wait::None; p],
                ready: VecDeque::new(),
                finished: vec![false; p],
                barrier_arrived: 0,
                barrier_gen: 0,
                windows: (0..p).map(|_| Vec::new()).collect(),
                trace: traced.then(Vec::new),
            }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, WorldState> {
        // A poisoned world means a rank body panicked; recover the state so
        // the original panic surfaces, as in the other backends.
        self.st.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A rank's handle to the event-driven machine: the [`EventComm`] analogue
/// of the blocking [`crate::comm::Comm`]. Operations that cannot complete
/// return futures that park the rank in the world's matching table.
pub struct EventComm {
    rank: usize,
    world: Arc<EventWorld>,
}

impl EventComm {
    /// This rank's id, `0..p`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size `p`.
    pub fn size(&self) -> usize {
        self.world.p
    }

    /// The shared statistics board.
    pub fn stats(&self) -> &StatsBoard {
        &self.world.stats
    }

    /// Record `flops` local floating-point operations for this rank.
    pub fn record_flops(&self, flops: u64) {
        self.world.stats.rank(self.rank).record_flops(flops);
    }

    /// Record a working-memory allocation (peak-memory accounting).
    pub fn track_alloc(&self, words: u64) {
        self.world.stats.rank(self.rank).record_alloc(words);
    }

    /// Record a working-memory release.
    pub fn track_free(&self, words: u64) {
        self.world.stats.rank(self.rank).record_free(words);
    }

    /// Send `data` to rank `to` with `tag`. Never suspends: the message is
    /// deposited in the target's mailbox, and if the target is parked on a
    /// matching `recv` it is moved back onto the ready queue.
    pub fn send(&self, to: usize, tag: u64, data: Vec<f64>, phase: Phase) {
        assert!(to < self.world.p, "send to rank {to} of {}", self.world.p);
        self.world.stats.rank(self.rank).record_send(data.len() as u64, phase);
        let mut st = self.world.lock();
        assert!(!st.finished[to], "rank {}: send to rank {to}, which already exited", self.rank);
        st.mailboxes[to].push_back(Packet {
            from: self.rank,
            tag,
            data,
        });
        if st.waits[to] == (Wait::Recv { from: self.rank, tag }) {
            st.waits[to] = Wait::None;
            st.enqueue(to);
        }
    }

    /// Receive the next message from `from` with `tag`. A wait-state: with
    /// no matching message buffered, the rank parks in the matching table
    /// and the scheduler resumes it when the message arrives.
    pub fn recv(&self, from: usize, tag: u64, phase: Phase) -> RecvFuture<'_> {
        RecvFuture {
            comm: self,
            from,
            tag,
            phase,
        }
    }

    /// Combined exchange: send to `to`, then receive from `from` under the
    /// same tag (a ring-shift step).
    pub async fn sendrecv(&self, to: usize, from: usize, tag: u64, data: Vec<f64>, phase: Phase) -> Vec<f64> {
        self.send(to, tag, data, phase);
        self.recv(from, tag, phase).await
    }

    /// Park until all `p` ranks reach the barrier. The last arrival releases
    /// every parked rank back onto the ready queue (in rank order) and
    /// continues without suspending, like `std::sync::Barrier`'s leader.
    pub fn barrier(&self) -> BarrierFuture<'_> {
        BarrierFuture {
            comm: self,
            arrived_gen: None,
        }
    }

    /// Close an RMA epoch (alias for [`barrier`](Self::barrier), like
    /// `MPI_Win_fence`).
    pub fn fence(&self) -> BarrierFuture<'_> {
        self.barrier()
    }

    // ------------------------------------------------------------------
    // One-sided (RMA) backend — never suspends except through `fence`.
    // ------------------------------------------------------------------

    /// (Re)size this rank's window to `words` zeroed words.
    pub fn win_resize(&self, words: usize) {
        window::resize(&mut self.world.lock().windows[self.rank], words);
    }

    /// Write `data` into `target`'s window at `offset` (like `MPI_Put`).
    pub fn put(&self, target: usize, offset: usize, data: &[f64], phase: Phase) {
        window::put(&mut self.world.lock().windows[target], offset, data);
        record_rma(&self.world.stats, self.rank, target, data.len() as u64, phase);
    }

    /// Read `len` words at `offset` from `target`'s window (like `MPI_Get`).
    pub fn get(&self, target: usize, offset: usize, len: usize, phase: Phase) -> Vec<f64> {
        let out = window::get(&self.world.lock().windows[target], offset, len);
        record_rma(&self.world.stats, target, self.rank, len as u64, phase);
        out
    }

    /// Element-wise add `data` into `target`'s window at `offset` (like
    /// `MPI_Accumulate` with `MPI_SUM`).
    pub fn accumulate(&self, target: usize, offset: usize, data: &[f64], phase: Phase) {
        window::accumulate(&mut self.world.lock().windows[target], offset, data);
        record_rma(&self.world.stats, self.rank, target, data.len() as u64, phase);
    }

    /// Replace this rank's window contents (local, no traffic counted).
    pub fn win_fill(&self, data: Vec<f64>) {
        self.world.lock().windows[self.rank] = data;
    }

    /// Read this rank's own window (no traffic counted).
    pub fn win_local(&self) -> Vec<f64> {
        self.world.lock().windows[self.rank].clone()
    }

    /// Read a slice of this rank's own window (no traffic counted).
    pub fn win_read_local(&self, offset: usize, len: usize) -> Vec<f64> {
        window::read_local(&self.world.lock().windows[self.rank], offset, len)
    }
}

/// Wait-state of a pending receive: completes when a message from `from`
/// with `tag` is in this rank's mailbox.
pub struct RecvFuture<'a> {
    comm: &'a EventComm,
    from: usize,
    tag: u64,
    phase: Phase,
}

impl Future for RecvFuture<'_> {
    type Output = Vec<f64>;

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Vec<f64>> {
        let rank = self.comm.rank;
        let mut st = self.comm.world.lock();
        if let Some(data) = st.take_match(rank, self.from, self.tag) {
            drop(st);
            self.comm.world.stats.rank(rank).record_recv(data.len() as u64, self.phase);
            Poll::Ready(data)
        } else {
            let wait = Wait::Recv {
                from: self.from,
                tag: self.tag,
            };
            // One outstanding wait-state per rank: a second concurrently
            // polled future would overwrite this slot and lose its wakeup,
            // so refuse loudly instead of deadlocking silently.
            assert!(
                st.waits[rank] == Wait::None || st.waits[rank] == wait,
                "rank {rank}: a rank supports one outstanding wait-state \
                 (found {:?} while registering {wait:?})",
                st.waits[rank]
            );
            st.waits[rank] = wait;
            Poll::Pending
        }
    }
}

/// Wait-state of a barrier arrival: completes when all `p` ranks arrived.
pub struct BarrierFuture<'a> {
    comm: &'a EventComm,
    /// The barrier epoch this rank arrived in (`None` before first poll).
    arrived_gen: Option<u64>,
}

impl Future for BarrierFuture<'_> {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        let rank = self.comm.rank;
        let world = self.comm.world.clone();
        let mut st = world.lock();
        match self.arrived_gen {
            None => {
                st.barrier_arrived += 1;
                if st.barrier_arrived == world.p {
                    // Last arrival: open the next epoch and release everyone
                    // parked at the barrier, in rank order.
                    st.barrier_arrived = 0;
                    st.barrier_gen += 1;
                    for r in 0..world.p {
                        if st.waits[r] == Wait::Barrier {
                            st.waits[r] = Wait::None;
                            st.enqueue(r);
                        }
                    }
                    Poll::Ready(())
                } else {
                    assert!(
                        st.waits[rank] == Wait::None,
                        "rank {rank}: a rank supports one outstanding wait-state \
                         (found {:?} while arriving at the barrier)",
                        st.waits[rank]
                    );
                    self.arrived_gen = Some(st.barrier_gen);
                    st.waits[rank] = Wait::Barrier;
                    Poll::Pending
                }
            }
            Some(gen) => {
                if st.barrier_gen > gen {
                    Poll::Ready(())
                } else {
                    // Spurious re-poll within the same epoch: keep waiting.
                    st.waits[rank] = Wait::Barrier;
                    Poll::Pending
                }
            }
        }
    }
}

/// Run the world to completion on the calling thread; see
/// [`run_spmd_event`].
fn run_event_world<R, F, Fut>(spec: &MachineSpec, f: F, traced: bool) -> (RunOutput<R>, Vec<SchedEvent>)
where
    F: Fn(crate::comm::RankComm) -> Fut,
    Fut: Future<Output = R>,
{
    let p = spec.p;
    let stats = Arc::new(StatsBoard::new(p));
    let world = Arc::new(EventWorld::new(p, stats.clone(), traced));
    // One boxed state machine per rank — the entire per-rank footprint.
    let mut tasks: Vec<Option<Pin<Box<Fut>>>> = (0..p)
        .map(|rank| {
            let comm = EventComm {
                rank,
                world: world.clone(),
            };
            Some(Box::pin(f(crate::comm::RankComm::Event(comm))))
        })
        .collect();
    {
        let mut st = world.lock();
        for r in 0..p {
            st.enqueue(r);
        }
    }
    let mut results: Vec<Option<R>> = (0..p).map(|_| None).collect();
    let mut live = p;
    let mut cx = Context::from_waker(Waker::noop());
    while live > 0 {
        let next = {
            let mut st = world.lock();
            let r = st.ready.pop_front();
            if let (Some(r), Some(t)) = (r, &mut st.trace) {
                t.push(SchedEvent::Poll(r));
            }
            r
        };
        let Some(r) = next else {
            let st = world.lock();
            let parked: Vec<String> = st
                .waits
                .iter()
                .enumerate()
                .filter(|(_, w)| **w != Wait::None)
                .take(8)
                .map(|(r, w)| format!("rank {r}: {w:?}"))
                .collect();
            panic!(
                "event executor deadlocked: {live} of {p} ranks unfinished, none ready \
                 (barrier arrivals {}; first parked: {})",
                st.barrier_arrived,
                parked.join(", ")
            );
        };
        let task = tasks[r].as_mut().expect("ready rank has a live task");
        if let Poll::Ready(out) = task.as_mut().poll(&mut cx) {
            results[r] = Some(out);
            tasks[r] = None;
            live -= 1;
            world.lock().finished[r] = true;
        }
        // Pending: the rank registered a wait-state; a matching send or the
        // closing barrier arrival re-enqueues it.
    }
    let trace = world.lock().trace.take().unwrap_or_default();
    (
        RunOutput {
            results: results.into_iter().map(|s| s.expect("missing rank result")).collect(),
            stats: stats.snapshot(),
        },
        trace,
    )
}

/// Run `f` on every rank of `spec` as an event-driven stackless state
/// machine, single-threaded. Prefer [`crate::exec::run_spmd_with`] with
/// [`crate::exec::ExecBackend::Event`], which dispatches here.
pub fn run_spmd_event<R, F, Fut>(spec: &MachineSpec, f: F) -> RunOutput<R>
where
    F: Fn(crate::comm::RankComm) -> Fut,
    Fut: Future<Output = R>,
{
    run_event_world(spec, f, false).0
}

/// [`run_spmd_event`] with the scheduler decision trace, for the fairness
/// property tests: the returned events record every ready-queue admission
/// and poll in order.
pub fn run_spmd_event_traced<R, F, Fut>(spec: &MachineSpec, f: F) -> (RunOutput<R>, Vec<SchedEvent>)
where
    F: Fn(crate::comm::RankComm) -> Fut,
    Fut: Future<Output = R>,
{
    run_event_world(spec, f, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_rank_ordered() {
        let spec = MachineSpec::test_machine(8, 1000);
        let out = run_spmd_event(&spec, |c| async move { c.rank() * 10 });
        assert_eq!(out.results, vec![0, 10, 20, 30, 40, 50, 60, 70]);
        assert_eq!(out.stats.len(), 8);
    }

    #[test]
    fn send_recv_parks_and_resumes() {
        let spec = MachineSpec::test_machine(4, 1000);
        let out = run_spmd_event(&spec, |mut c| async move {
            // Everyone receives from the left neighbour *before* sending to
            // the right one would be a deadlock; recv-after-send is the
            // buffered pattern.
            let right = (c.rank() + 1) % c.size();
            let left = (c.rank() + c.size() - 1) % c.size();
            c.send(right, 7, vec![c.rank() as f64], Phase::Other);
            c.recv(left, 7, Phase::Other).await[0] as usize
        });
        assert_eq!(out.results, vec![3, 0, 1, 2]);
        for st in &out.stats {
            assert_eq!(st.total_sent(), 1);
            assert_eq!(st.total_recv(), 1);
        }
    }

    #[test]
    fn recv_before_send_resumes_on_delivery() {
        // Rank 1 parks on recv first (rank 0 runs second in queue order on
        // this pattern), exercising the wait-then-wake path.
        let spec = MachineSpec::test_machine(2, 1000);
        let out = run_spmd_event(&spec, |mut c| async move {
            if c.rank() == 1 {
                c.recv(0, 3, Phase::Other).await
            } else {
                c.send(1, 3, vec![42.0], Phase::Other);
                vec![]
            }
        });
        assert_eq!(out.results[1], vec![42.0]);
    }

    #[test]
    fn barrier_synchronizes_all_ranks() {
        let spec = MachineSpec::test_machine(6, 1000);
        let out = run_spmd_event(&spec, |mut c| async move {
            c.barrier().await;
            c.barrier().await;
            c.rank()
        });
        assert_eq!(out.results.len(), 6);
    }

    #[test]
    fn tag_matching_reorders_like_blocking() {
        let spec = MachineSpec::test_machine(2, 1000);
        let out = run_spmd_event(&spec, |mut c| async move {
            if c.rank() == 0 {
                c.send(1, 1, vec![1.0], Phase::Other);
                c.send(1, 2, vec![2.0], Phase::Other);
                (vec![], vec![])
            } else {
                let two = c.recv(0, 2, Phase::Other).await;
                let one = c.recv(0, 1, Phase::Other).await;
                (two, one)
            }
        });
        assert_eq!(out.results[1], (vec![2.0], vec![1.0]));
    }

    #[test]
    fn rma_put_get_accumulate_with_fences() {
        let spec = MachineSpec::test_machine(2, 1000);
        let out = run_spmd_event(&spec, |mut c| async move {
            c.win_resize(4);
            c.fence().await;
            if c.rank() == 0 {
                c.put(1, 0, &[1.0, 2.0], Phase::InputA);
                c.accumulate(1, 1, &[10.0], Phase::OutputC);
            }
            c.fence().await;
            if c.rank() == 1 {
                assert_eq!(c.win_local(), vec![1.0, 12.0, 0.0, 0.0]);
                c.get(0, 0, 2, Phase::InputB)
            } else {
                vec![]
            }
        });
        assert_eq!(out.results[1], vec![0.0, 0.0]);
        assert_eq!(out.stats[0].total_sent(), 5);
        assert_eq!(out.stats[1].total_recv(), 5);
    }

    #[test]
    #[should_panic(expected = "event executor deadlocked")]
    fn deadlock_is_detected_not_hung() {
        let spec = MachineSpec::test_machine(2, 1000);
        let _ = run_spmd_event(&spec, |mut c| async move {
            // Nobody ever sends: both ranks park forever.
            c.recv((c.rank() + 1) % 2, 9, Phase::Other).await
        });
    }

    #[test]
    fn scheduler_trace_is_fifo() {
        let spec = MachineSpec::test_machine(5, 1000);
        let (_, trace) = run_spmd_event_traced(&spec, |mut c| async move {
            c.barrier().await;
            c.rank()
        });
        let enq: Vec<usize> = trace
            .iter()
            .filter_map(|e| match e {
                SchedEvent::Enqueue(r) => Some(*r),
                _ => None,
            })
            .collect();
        let polls: Vec<usize> = trace
            .iter()
            .filter_map(|e| match e {
                SchedEvent::Poll(r) => Some(*r),
                _ => None,
            })
            .collect();
        assert_eq!(enq, polls, "polls must follow enqueue (FIFO) order");
    }

    #[test]
    fn hundred_thousand_ranks_in_bytes_per_rank() {
        // The headline capability: a world far beyond what per-rank carrier
        // threads could hold, with a real message per rank.
        let p = 100_000;
        let spec = MachineSpec::test_machine(p, 10);
        let out = run_spmd_event(&spec, |mut c| async move {
            let right = (c.rank() + 1) % c.size();
            let left = (c.rank() + c.size() - 1) % c.size();
            c.sendrecv(right, left, 1, vec![c.rank() as f64], Phase::Other).await[0] as usize
        });
        for (r, &got) in out.results.iter().enumerate() {
            assert_eq!(got, (r + p - 1) % p);
        }
    }
}
