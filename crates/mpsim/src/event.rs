//! The event-driven stackless executor behind
//! [`ExecBackend::Event`](crate::exec::ExecBackend::Event) — a
//! true discrete-event simulator with a per-rank **virtual clock**.
//!
//! The sharded executor multiplexes ranks over a worker pool, but every rank
//! still owns an OS thread whose (small) stack it keeps while parked —
//! ~64 KiB of touched pages per rank, which caps practical worlds around a
//! few thousand ranks. This module removes the per-rank thread entirely:
//!
//! * every rank body is a *stackless resumable state machine* — the `async`
//!   rank body the caller hands to [`crate::exec::run_spmd_with`], compiled
//!   by rustc into an explicit-continuation enum whose suspended state costs
//!   bytes, not a stack;
//! * one scheduler thread drives all `p` state machines from a ready queue
//!   that is a **min-heap ordered by virtual timestamp** (FIFO on ties); a
//!   rank that cannot make progress (a `recv` with no matching message, a
//!   `barrier`/`fence` waiting for peers) registers a `Wait` in the
//!   world's matching table and returns `Poll::Pending`;
//! * a `send` that satisfies a registered `Recv` wait — or the last arrival
//!   at a barrier — clears the wait and moves the rank back onto the ready
//!   queue at its virtual completion time.
//!
//! # The virtual clock
//!
//! Each rank carries a virtual `now` driven by the machine's α-β-γ
//! [`CostModel`](crate::cost::CostModel):
//!
//! * a local GEMM ([`EventComm::record_flops`]) advances the clock by
//!   `compute_time(flops)`;
//! * a `send` stamps the message with the sender's clock; the transfer costs
//!   `α + β·words` and is routed over the machine's
//!   [`Topology`](crate::machine::Topology) by a compiled
//!   [`Network`]: every link on the path (sender NIC,
//!   switch uplinks, the receiver's injection wire) is charged its share of
//!   the wire time in virtual-time *consumption* order, store-and-forward,
//!   so congestion compounds exactly where traffic concentrates. The default
//!   flat topology routes only the receiver's injection link, which is
//!   bitwise-identical to the historical per-receiver-link model;
//! * with **overlap** ([`MachineSpec::overlap`], the default — §7.3's double
//!   buffering) the transfer proceeds in the background from the moment it
//!   is posted, so a `recv` completes at `max(recv_ready, arrival)` and
//!   transfer time hides behind whatever the receiver was doing — a posted
//!   prefetch costs nothing if the current leaf's compute covers it;
//!   without overlap the transfer is fully exposed:
//!   `max(recv_ready, send_time) + α + β·words`;
//! * a barrier resolves at the **max arrival time** over all ranks, the wait
//!   counting as exposed communication;
//! * one-sided `put`/`get`/`accumulate` charge their transfer to the origin
//!   rank's clock (conservatively exposed; the target stays passive, as in
//!   RDMA).
//!
//! Every stall and every hidden transfer lands in the shared
//! [`StatsBoard`]'s per-rank
//! [`TimeBreakdown`](crate::cost::TimeBreakdown), so a finished run reports
//! *measured* time and %-of-peak the way the paper's Figures 8/10/13/14 do —
//! next to the word-exact traffic counters.
//!
//! Admission is by virtual readiness time with FIFO tie-breaking, so a ready
//! rank is never starved and untimed workloads (all timestamps equal) keep
//! the old strict-FIFO order (the property tests assert this on the
//! scheduler trace). Message matching, delivery order and counter updates
//! mirror the blocking [`crate::comm::Comm`] exactly, so results are bitwise
//! identical and the per-rank counters equal across all three backends —
//! the clock changes *when* ranks are polled, never *what* they compute.
//! Worlds of 100k+ ranks execute end-to-end with real messages in a few
//! hundred bytes per rank.
//!
//! # The parallel scheduler
//!
//! `ExecBackend::Event { threads: N }` with `N > 1` shards the scheduler
//! across `N` OS threads ([`try_run_spmd_event_threads`]): ranks are
//! partitioned into `N` contiguous **regions**, each owning a slab of
//! per-rank state (mailbox, wait slot, clock, injection link, deadlines) and
//! a region-local ready heap. The regions advance in *conservative windows*
//! of virtual time, classic bounded-lag discrete-event style: with the cost
//! model's per-message latency α as the **lookahead**, every window spans
//! `[floor, floor + α)` where `floor` is the earliest pending event anywhere;
//! each worker drains its own heap up to the window bound, polling rank
//! bodies (user compute runs concurrently across regions, outside any lock).
//! Cross-region sends are deposited into the target region's bounded inbox
//! and drained at the window boundary — safe, because a message posted at
//! `sent_at ≥ floor` cannot complete before `sent_at + α ≥ floor + α`, i.e.
//! never inside the window that posted it. At each boundary one leader
//! thread delivers inboxes (stable-sorted by sender, preserving per-sender
//! FIFO), resolves a fully-arrived world barrier, checks recv deadlines and
//! structural deadlock, and opens the next window.
//!
//! # Fault injection
//!
//! With a [`FaultPlan`](crate::fault::FaultPlan) attached
//! ([`MachineSpec::with_faults`]), the scheduler kills each doomed rank the
//! first time it would poll it at or past its scheduled virtual death time
//! (body dropped, mailbox discarded — the rank stops consuming events),
//! silently loses sends to dead ranks and the plan's scheduled message
//! drops, and reports a world the faults keep from completing as a typed
//! [`ExecError::RankFailed`] carrying the earliest scheduled casualty.
//! Every fault decision is keyed on rank-local state (the rank's own event
//! time, the sender's program-order send index), so the sequential and
//! multi-region engines inject the *same* faults at the *same* events, and
//! a plan that schedules nothing is bitwise a no-op.
//!
//! A second guard complements the virtual recv deadline: a world whose
//! clocks are *frozen* (α = 0, zero-word messages) can ping-pong forever
//! without ever outrunning a parked recv's deadline. The sequential engine
//! counts consecutive polls without strict virtual-time advance and, past a
//! generous budget, fires the earliest pending deadline as
//! [`ExecError::DeadlockSuspected`] — so a livelocked world errors instead
//! of spinning (the parallel engine requires α > 0, where every window
//! strictly advances the floor).
//!
//! The multi-region path only engages where its determinism contract is
//! provable: on the **flat topology** every virtual quantity a rank commits
//! (its clock, its receiver-private injection link, its share of the
//! commutative barrier max) depends on rank-local state and on message
//! envelopes fixed by the sender's program order — never on the global
//! interleaving — so counters *and* virtual times are bitwise-identical to
//! the single-threaded engine. Shared-link topologies charge links in global
//! consumption order, and a zero α gives zero lookahead, so those worlds
//! (and `threads: 1`) run the single-threaded engine unchanged. Message
//! payloads are shared `Arc` buffers either way: delivery moves a pointer,
//! and the (sole) receiver recovers the owned vector without copying.

use std::collections::{BinaryHeap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::task::{Context, Poll, Waker};

use crate::comm::{record_rma, window};
use crate::exec::{ExecError, RunOutput, Waiting};
use crate::fault::FaultSchedule;
use crate::machine::MachineSpec;
use crate::pool::BufferPool;
use crate::stats::{Phase, StatsBoard};
use crate::topo::Network;

/// A message payload: shared so schedulers pass packets around by pointer.
/// The single receiver recovers the owned `Vec` copy-free via
/// [`Arc::try_unwrap`] (see [`take_payload`]).
type Payload = Arc<Vec<f64>>;

/// Recover an owned payload: zero-copy when this is the only reference (the
/// common point-to-point case), a clone otherwise.
fn take_payload(data: Payload) -> Vec<f64> {
    Arc::try_unwrap(data).unwrap_or_else(|shared| (*shared).clone())
}

/// A tagged in-flight message (the event-world analogue of the blocking
/// communicator's channel packet), stamped with its virtual-time envelope.
#[derive(Debug)]
struct Packet {
    from: usize,
    tag: u64,
    data: Payload,
    /// The sender's virtual clock when the message was posted.
    sent_at: f64,
    /// The wire time of this message, `α + β·words`.
    transfer_s: f64,
}

/// What a parked rank is waiting for.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
enum Wait {
    /// Runnable (or currently being polled) — not in the matching table.
    #[default]
    None,
    /// Parked on a `recv(from, tag)` with no matching message buffered.
    Recv { from: usize, tag: u64 },
    /// Parked at the world barrier.
    Barrier,
}

/// One scheduler decision, for the fairness property tests: ranks enter the
/// ready queue (`Enqueue`) and are polled (`Poll`) in virtual-time order
/// with FIFO tie-breaking, so on untimed workloads (all timestamps equal)
/// the two sequences coincide.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedEvent {
    /// The rank became runnable and joined the ready queue.
    Enqueue(usize),
    /// The rank was popped (earliest virtual time, then FIFO) and polled.
    Poll(usize),
}

/// A ready-queue entry: min-heap by `(at, seq)` — earliest virtual
/// readiness first, admission order on ties.
#[derive(Debug)]
struct ReadyEntry {
    at: f64,
    seq: u64,
    rank: usize,
}

impl Ord for ReadyEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest entry on
        // top. Virtual times are finite by construction.
        other
            .at
            .partial_cmp(&self.at)
            .expect("virtual times are finite")
            .then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for ReadyEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for ReadyEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for ReadyEntry {}

/// A parked receive's virtual-time deadline (`clock + recv_timeout` at park
/// time): min-heap by `at`, lazily invalidated through the park epoch (see
/// [`WorldState::deadlines`]). Ties break by rank then epoch so draining is
/// deterministic.
#[derive(Debug, Clone, Copy)]
struct DeadlineEntry {
    at: f64,
    rank: usize,
    epoch: u64,
}

impl Ord for DeadlineEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .at
            .partial_cmp(&self.at)
            .expect("virtual times are finite")
            .then(other.rank.cmp(&self.rank))
            .then(other.epoch.cmp(&self.epoch))
    }
}

impl PartialOrd for DeadlineEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for DeadlineEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for DeadlineEntry {}

/// Mutable world state, behind one mutex (the scheduler is single-threaded;
/// the lock exists so [`EventComm`] stays `Send` like the other backends'
/// communicators).
struct WorldState {
    /// Per-rank delivered-but-unmatched messages, in arrival order — the
    /// union of the blocking communicator's channel and `pending` buffer.
    mailboxes: Vec<VecDeque<Packet>>,
    /// The matching table: what each rank currently waits for.
    waits: Vec<Wait>,
    /// Ready queue of runnable ranks, ordered by virtual readiness time.
    ready: BinaryHeap<ReadyEntry>,
    /// Admission counter for FIFO tie-breaking.
    seq: u64,
    /// Per-rank virtual clocks (`now`, seconds).
    clock: Vec<f64>,
    /// Per-*link* availability time, indexed by the [`Network`]'s dense link
    /// ids (`0..p` are the per-rank injection wires; node NICs, switch
    /// uplinks and torus links follow). Transfers serialize on every link of
    /// their route in consumption order; committed when the receiver
    /// consumes the message.
    link_free: Vec<f64>,
    /// Virtual deadlines of parked receives, lazily invalidated: an entry
    /// only fires if its rank is still parked on a recv from the same park
    /// epoch. Barrier waits carry no deadline (a barrier involves every
    /// rank, so a wedged barrier is caught structurally).
    deadlines: BinaryHeap<DeadlineEntry>,
    /// Per-rank park counter, invalidating stale deadline entries.
    park_epoch: Vec<u64>,
    /// Max arrival clock of the current barrier epoch.
    barrier_t: f64,
    /// Ranks whose body future completed.
    finished: Vec<bool>,
    /// Arrivals at the current barrier epoch.
    barrier_arrived: usize,
    /// Completed barrier epochs (a parked arrival resumes when this passes
    /// the epoch it arrived in).
    barrier_gen: u64,
    /// Per-rank RMA windows (the one-sided backend).
    windows: Vec<Vec<f64>>,
    /// Scheduler decision trace, recorded when tracing is on.
    trace: Option<Vec<SchedEvent>>,
    /// Ranks killed by the fault plan — distinct from `finished`: a dead
    /// rank produced no result, and sends to it are losses, not teardowns.
    dead: Vec<bool>,
    /// Per-rank program-order send counters, keying the fault plan's
    /// message-drop decisions. Only advanced when a plan is attached.
    sends: Vec<u64>,
    /// Earliest fault-plan message drop as `(sent_at, from, to)` — the
    /// casualty a pure-loss wedge reports.
    first_drop: Option<(f64, usize, usize)>,
}

impl WorldState {
    fn enqueue(&mut self, rank: usize, at: f64) {
        if let Some(t) = &mut self.trace {
            t.push(SchedEvent::Enqueue(rank));
        }
        let seq = self.seq;
        self.seq += 1;
        self.ready.push(ReadyEntry { at, seq, rank });
    }

    /// Remove and return the first message from `from` with `tag` in
    /// `rank`'s mailbox — the same arrival-order matching rule as the
    /// blocking communicator's pending-buffer scan.
    fn take_match(&mut self, rank: usize, from: usize, tag: u64) -> Option<Packet> {
        let inbox = &mut self.mailboxes[rank];
        let idx = inbox.iter().position(|m| m.from == from && m.tag == tag)?;
        inbox.remove(idx)
    }
}

impl WorldState {
    /// When a matched receive of `pkt` by `rank` would complete — the one
    /// formula behind both the wake-time heap admission and the clock the
    /// recv poll commits.
    ///
    /// The message crosses every link of its route ([`Network::for_each_hop`])
    /// store-and-forward: each hop waits for the link to free, then occupies
    /// it for `factor × transfer_s`. With overlap the route is walked from
    /// the send time and runs in the background, so the receiver only waits
    /// out whatever its own activity did not cover; without overlap it is
    /// walked from the rendezvous of sender and receiver and fully exposed.
    /// On the flat topology the route is the single injection link with
    /// factor 1.0, which reproduces the historical per-receiver-link clock
    /// bitwise in both modes (without overlap the link is only ever
    /// committed at the receiver's resulting clock, and clocks are
    /// monotone, so the extra `max` is a no-op).
    fn completion_time(&self, net: &Network, rank: usize, pkt: &Packet, overlap: bool) -> f64 {
        let mut t = if overlap {
            pkt.sent_at
        } else {
            self.clock[rank].max(pkt.sent_at)
        };
        net.for_each_hop(pkt.from, rank, |link, factor| {
            t = t.max(self.link_free[link]) + factor * pkt.transfer_s;
        });
        if overlap {
            self.clock[rank].max(t)
        } else {
            t
        }
    }

    /// [`completion_time`](Self::completion_time), committing every link's
    /// occupancy along the route — links are charged in virtual-time
    /// consumption order (the deterministic heap order of the receiving
    /// polls), never at wake time.
    fn recv_completion(&mut self, net: &Network, rank: usize, pkt: &Packet, overlap: bool) -> f64 {
        let mut t = if overlap {
            pkt.sent_at
        } else {
            self.clock[rank].max(pkt.sent_at)
        };
        net.for_each_hop(pkt.from, rank, |link, factor| {
            t = t.max(self.link_free[link]) + factor * pkt.transfer_s;
            self.link_free[link] = t;
        });
        if overlap {
            self.clock[rank].max(t)
        } else {
            t
        }
    }
}

/// The scheduling engine behind an [`EventWorld`]: the single-threaded
/// global-heap simulator, or the multi-region parallel one.
enum Engine {
    /// One scheduler thread, one global state block — any topology. Boxed:
    /// the state block dwarfs the parallel variant, and a world is built
    /// once per run.
    Seq(Box<Mutex<WorldState>>),
    /// Region-sharded scheduler threads over conservative virtual-time
    /// windows — flat topology with α > 0 only (see [`ParWorld`]).
    Par(ParWorld),
}

/// State shared by all ranks of one event-driven machine.
pub struct EventWorld {
    p: usize,
    stats: Arc<StatsBoard>,
    /// The α-β-γ constants driving the virtual clock.
    model: crate::cost::CostModel,
    /// Communication–computation overlap (§7.3) — see
    /// [`MachineSpec::overlap`].
    overlap: bool,
    /// The compiled topology + placement: per-transfer routes and link ids.
    net: Network,
    /// [`MachineSpec::recv_timeout`] as virtual seconds: a parked recv whose
    /// deadline passes while other ranks keep making virtual progress is a
    /// suspected deadlock.
    timeout_s: f64,
    /// The fault plan compiled against this world
    /// ([`MachineSpec::faults`]): per-rank death times and message-drop
    /// decisions. `None` keeps every fault hook off the hot path.
    faults: Option<FaultSchedule>,
    /// The world's buffer-reuse arena (§7 "buffer reuse"): window reads and
    /// collective scratch lease buffers here and recycle them on return.
    /// Recycling is bitwise-invisible to results, counters and virtual time.
    pool: Arc<BufferPool>,
    engine: Engine,
}

impl EventWorld {
    fn new(spec: &MachineSpec, stats: Arc<StatsBoard>, traced: bool, pool: Arc<BufferPool>) -> Self {
        let p = spec.p;
        let net = Network::new(spec);
        let n_links = net.n_links();
        EventWorld {
            p,
            stats,
            model: spec.cost,
            overlap: spec.overlap,
            net,
            timeout_s: spec.recv_timeout.as_secs_f64(),
            faults: spec.faults.as_ref().map(|plan| plan.schedule(p)),
            pool,
            engine: Engine::Seq(Box::new(Mutex::new(WorldState {
                mailboxes: (0..p).map(|_| VecDeque::new()).collect(),
                waits: vec![Wait::None; p],
                ready: BinaryHeap::new(),
                seq: 0,
                clock: vec![0.0; p],
                link_free: vec![0.0; n_links],
                deadlines: BinaryHeap::new(),
                park_epoch: vec![0; p],
                barrier_t: 0.0,
                finished: vec![false; p],
                barrier_arrived: 0,
                barrier_gen: 0,
                windows: (0..p).map(|_| Vec::new()).collect(),
                trace: traced.then(Vec::new),
                dead: vec![false; p],
                sends: vec![0; p],
                first_drop: None,
            }))),
        }
    }

    /// A world on the multi-region parallel engine (`regions` ≥ 2; flat
    /// topology, α > 0 — the caller guarantees both).
    fn new_parallel(
        spec: &MachineSpec,
        stats: Arc<StatsBoard>,
        regions: usize,
        pool: Arc<BufferPool>,
    ) -> Self {
        let p = spec.p;
        let net = Network::new(spec);
        EventWorld {
            p,
            stats,
            model: spec.cost,
            overlap: spec.overlap,
            net,
            timeout_s: spec.recv_timeout.as_secs_f64(),
            faults: spec.faults.as_ref().map(|plan| plan.schedule(p)),
            pool,
            engine: Engine::Par(ParWorld::new(p, regions)),
        }
    }

    fn lock(&self) -> MutexGuard<'_, WorldState> {
        // A poisoned world means a rank body panicked; recover the state so
        // the original panic surfaces, as in the other backends.
        match &self.engine {
            Engine::Seq(st) => st.lock().unwrap_or_else(|e| e.into_inner()),
            Engine::Par(_) => unreachable!("sequential state requested from a parallel world"),
        }
    }
}

// ---------------------------------------------------------------------
// The multi-region parallel engine.
// ---------------------------------------------------------------------

/// One rank's slab of scheduler state on the parallel engine — everything
/// the single-threaded [`WorldState`] spreads over parallel vectors, packed
/// into one struct so a region's ranks live in a single contiguous
/// allocation.
#[derive(Debug, Default)]
struct RankSlab {
    /// Delivered-but-unmatched messages, in arrival order.
    mailbox: VecDeque<Packet>,
    /// What this rank currently waits for.
    wait: Wait,
    /// The rank's virtual clock (`now`, seconds).
    clock: f64,
    /// Availability time of the rank's injection link. The parallel engine
    /// runs flat topology only, where a transfer's whole route is the
    /// receiver's injection wire — receiver-private by construction, which
    /// is what makes regions independent between window boundaries.
    link_free: f64,
    /// Park counter, invalidating stale deadline entries.
    park_epoch: u64,
    /// Whether the rank's body future completed.
    finished: bool,
    /// Whether the fault plan killed this rank (see [`WorldState::dead`]).
    dead: bool,
    /// Program-order send counter for the fault plan's drop decisions.
    sends: u64,
}

/// One region of the parallel engine: a contiguous block of ranks, their
/// slabs, and a region-local ready heap. Mid-window, only the owning worker
/// thread touches a region (cross-region traffic goes through
/// [`ParWorld::inboxes`]); the mutex hands the same state to the boundary
/// leader between windows.
struct RegionState {
    /// First global rank of this region.
    base: usize,
    /// Per-rank state, indexed by `rank - base`.
    slabs: Vec<RankSlab>,
    /// Region-local ready heap (entries carry *global* ranks).
    ready: BinaryHeap<ReadyEntry>,
    /// Region-local admission counter for FIFO tie-breaking.
    seq: u64,
    /// Virtual deadlines of this region's parked receives.
    deadlines: BinaryHeap<DeadlineEntry>,
    /// Earliest fault-plan message drop by a sender of this region, as
    /// `(sent_at, from, to)`.
    first_drop: Option<(f64, usize, usize)>,
}

impl RegionState {
    fn slab(&self, rank: usize) -> &RankSlab {
        &self.slabs[rank - self.base]
    }

    fn slab_mut(&mut self, rank: usize) -> &mut RankSlab {
        &mut self.slabs[rank - self.base]
    }

    fn enqueue(&mut self, rank: usize, at: f64) {
        let seq = self.seq;
        self.seq += 1;
        self.ready.push(ReadyEntry { at, seq, rank });
    }

    /// The flat-topology analogue of [`WorldState::completion_time`]: the
    /// route is exactly the receiver's injection link with factor 1.0, so
    /// the arithmetic below reproduces the hop walk bitwise.
    fn completion_time(&self, rank: usize, pkt: &Packet, overlap: bool) -> f64 {
        let slab = self.slab(rank);
        let mut t = if overlap {
            pkt.sent_at
        } else {
            slab.clock.max(pkt.sent_at)
        };
        t = t.max(slab.link_free) + pkt.transfer_s;
        if overlap {
            slab.clock.max(t)
        } else {
            t
        }
    }

    /// [`completion_time`](Self::completion_time), committing the injection
    /// link's occupancy (the receiving poll's consumption order — program
    /// order of the one receiver, so region-local).
    fn recv_completion(&mut self, rank: usize, pkt: &Packet, overlap: bool) -> f64 {
        let slab = self.slab_mut(rank);
        let mut t = if overlap {
            pkt.sent_at
        } else {
            slab.clock.max(pkt.sent_at)
        };
        t = t.max(slab.link_free) + pkt.transfer_s;
        slab.link_free = t;
        if overlap {
            slab.clock.max(t)
        } else {
            t
        }
    }

    /// Arrival-order matching, as [`WorldState::take_match`].
    fn take_match(&mut self, rank: usize, from: usize, tag: u64) -> Option<Packet> {
        let inbox = &mut self.slab_mut(rank).mailbox;
        let idx = inbox.iter().position(|m| m.from == from && m.tag == tag)?;
        inbox.remove(idx)
    }
}

/// Global barrier bookkeeping of the parallel engine. Arrivals update it
/// mid-window (count and commutative max are interleaving-insensitive); the
/// boundary leader resolves a fully-arrived epoch.
#[derive(Debug, Default)]
struct ParBarrier {
    /// Arrivals in the current epoch.
    arrived: usize,
    /// Max arrival clock of the current epoch.
    t_max: f64,
    /// Completed epochs.
    gen: u64,
}

/// Shared state of the multi-region parallel engine (see the module docs'
/// "The parallel scheduler").
struct ParWorld {
    p: usize,
    /// Ranks per region (`ceil(p / regions)`); rank `r` lives in region
    /// `r / chunk` at slab index `r % chunk`.
    chunk: usize,
    /// The regions, in rank order.
    regions: Vec<Mutex<RegionState>>,
    /// Per-target-region inboxes for cross-region packets, drained (and
    /// stable-sorted by sender) at each window boundary. Bounded by
    /// construction: a window's deposits are delivered before the next
    /// window opens, so an inbox never holds more than one window's traffic.
    inboxes: Vec<Mutex<Vec<(usize, Packet)>>>,
    /// Global barrier epoch state.
    barrier: Mutex<ParBarrier>,
    /// Per-rank RMA windows. Shared globally: one-sided ops may target any
    /// rank. Conflicting same-window-boundary RMA ops from different regions
    /// apply in unspecified order (as in MPI's separate-epoch semantics);
    /// the origin-side time charge is rank-local either way.
    windows: Mutex<Vec<Vec<f64>>>,
}

impl ParWorld {
    fn new(p: usize, regions: usize) -> Self {
        let chunk = p.div_ceil(regions);
        let n_regions = p.div_ceil(chunk);
        ParWorld {
            p,
            chunk,
            regions: (0..n_regions)
                .map(|w| {
                    let base = w * chunk;
                    let len = chunk.min(p - base);
                    Mutex::new(RegionState {
                        base,
                        slabs: (0..len).map(|_| RankSlab::default()).collect(),
                        ready: BinaryHeap::new(),
                        seq: 0,
                        deadlines: BinaryHeap::new(),
                        first_drop: None,
                    })
                })
                .collect(),
            inboxes: (0..n_regions).map(|_| Mutex::new(Vec::new())).collect(),
            barrier: Mutex::new(ParBarrier::default()),
            windows: Mutex::new((0..p).map(|_| Vec::new()).collect()),
        }
    }

    fn region_of(&self, rank: usize) -> usize {
        rank / self.chunk
    }

    fn lock_region(&self, region: usize) -> MutexGuard<'_, RegionState> {
        self.regions[region].lock().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_rank(&self, rank: usize) -> MutexGuard<'_, RegionState> {
        self.lock_region(self.region_of(rank))
    }

    fn lock_barrier(&self) -> MutexGuard<'_, ParBarrier> {
        self.barrier.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_windows(&self) -> MutexGuard<'_, Vec<Vec<f64>>> {
        self.windows.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A rank's handle to the event-driven machine: the [`EventComm`] analogue
/// of the blocking [`crate::comm::Comm`]. Operations that cannot complete
/// return futures that park the rank in the world's matching table.
pub struct EventComm {
    rank: usize,
    world: Arc<EventWorld>,
}

impl EventComm {
    /// This rank's id, `0..p`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size `p`.
    pub fn size(&self) -> usize {
        self.world.p
    }

    /// The shared statistics board.
    pub fn stats(&self) -> &StatsBoard {
        &self.world.stats
    }

    /// The world's buffer-reuse arena (see [`crate::pool::BufferPool`]).
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.world.pool
    }

    /// Record `flops` local floating-point operations for this rank and
    /// advance its virtual clock by `compute_time(flops)`.
    pub fn record_flops(&self, flops: u64) {
        let dt = self.world.model.compute_time(flops);
        match &self.world.engine {
            Engine::Seq(_) => self.world.lock().clock[self.rank] += dt,
            Engine::Par(pw) => pw.lock_rank(self.rank).slab_mut(self.rank).clock += dt,
        }
        let rs = self.world.stats.rank(self.rank);
        rs.record_flops(flops);
        rs.record_compute_time(dt);
    }

    /// Record a working-memory allocation (peak-memory accounting).
    pub fn track_alloc(&self, words: u64) {
        self.world.stats.rank(self.rank).record_alloc(words);
    }

    /// Record a working-memory release.
    pub fn track_free(&self, words: u64) {
        self.world.stats.rank(self.rank).record_free(words);
    }

    /// Send `data` to rank `to` with `tag`. Never suspends: the message is
    /// stamped with the sender's virtual clock and deposited in the
    /// target's mailbox, and if the target is parked on a matching `recv`
    /// it is moved back onto the ready queue at its virtual completion time
    /// (the transfer itself is accounted when the target consumes the
    /// message — see `WorldState::recv_completion`).
    ///
    /// # Panics
    /// Panics if `to` is out of range, or with a typed
    /// [`ExecError::WorldTornDown`] payload when the receiving rank already
    /// exited (the scheduler converts that into a typed error, like the
    /// blocking backends).
    pub fn send(&self, to: usize, tag: u64, data: Vec<f64>, phase: Phase) {
        assert!(to < self.world.p, "send to rank {to} of {}", self.world.p);
        let words = data.len() as u64;
        self.world.stats.rank(self.rank).record_send(words, phase);
        let transfer_s = self.world.model.comm_time(words, 1);
        let data = Arc::new(data);
        match &self.world.engine {
            Engine::Seq(_) => {
                let mut st = self.world.lock();
                if let Some(sched) = &self.world.faults {
                    let n = st.sends[self.rank];
                    st.sends[self.rank] = n + 1;
                    if sched.drops(self.rank, to, n) {
                        // The wire lost this message: the sender proceeds
                        // none the wiser (the send was counted), the
                        // receiver will starve and the wedge reports a
                        // typed fault.
                        let at = st.clock[self.rank];
                        note_drop(&mut st.first_drop, at, self.rank, to);
                        return;
                    }
                    if st.dead[to] {
                        // The receiver was killed mid-run: a typed loss,
                        // not a teardown — the wedge reports RankFailed.
                        return;
                    }
                }
                if st.finished[to] {
                    // The receiver already exited: typed teardown, as in comm.rs.
                    drop(st);
                    crate::comm::raise(ExecError::WorldTornDown { rank: self.rank });
                }
                let pkt = Packet {
                    from: self.rank,
                    tag,
                    data,
                    sent_at: st.clock[self.rank],
                    transfer_s,
                };
                if st.waits[to] == (Wait::Recv { from: self.rank, tag }) {
                    // The target is parked on exactly this message: wake it at the
                    // estimated completion time. The wake time is only a heap
                    // priority — the recv poll recomputes (and commits) against the
                    // link states of its actual consumption order.
                    st.waits[to] = Wait::None;
                    let at = st.completion_time(&self.world.net, to, &pkt, self.world.overlap);
                    st.mailboxes[to].push_back(pkt);
                    st.enqueue(to, at);
                } else {
                    st.mailboxes[to].push_back(pkt);
                }
            }
            Engine::Par(pw) => {
                let my_region = pw.region_of(self.rank);
                let to_region = pw.region_of(to);
                let mut reg = pw.lock_region(my_region);
                if let Some(sched) = &self.world.faults {
                    let n = reg.slab(self.rank).sends;
                    reg.slab_mut(self.rank).sends = n + 1;
                    if sched.drops(self.rank, to, n) {
                        // Sender-local decision (seed + program-order send
                        // index), so the same message vanishes on every
                        // engine. Recorded region-locally; verdicts fold
                        // the per-region minima.
                        let at = reg.slab(self.rank).clock;
                        let rank = self.rank;
                        note_drop(&mut reg.first_drop, at, rank, to);
                        return;
                    }
                    if to_region == my_region && reg.slab(to).dead {
                        // Killed receiver in our own region: typed loss.
                        // (Cross-region deaths are observed at the window
                        // boundary, where delivery happens anyway.)
                        return;
                    }
                }
                let pkt = Packet {
                    from: self.rank,
                    tag,
                    data,
                    sent_at: reg.slab(self.rank).clock,
                    transfer_s,
                };
                if to_region == my_region {
                    // Same region: deliver (and wake) directly, exactly like
                    // the sequential engine.
                    if reg.slab(to).finished {
                        drop(reg);
                        crate::comm::raise(ExecError::WorldTornDown { rank: self.rank });
                    }
                    if reg.slab(to).wait == (Wait::Recv { from: self.rank, tag }) {
                        reg.slab_mut(to).wait = Wait::None;
                        let at = reg.completion_time(to, &pkt, self.world.overlap);
                        reg.slab_mut(to).mailbox.push_back(pkt);
                        reg.enqueue(to, at);
                    } else {
                        reg.slab_mut(to).mailbox.push_back(pkt);
                    }
                } else {
                    // Cross-region: deposit into the target region's inbox;
                    // the boundary leader delivers it (and surfaces a typed
                    // teardown if the target already exited). The message
                    // cannot complete before `sent_at + α`, which is at or
                    // past the window bound — boundary delivery never delays
                    // a wake that belonged to this window.
                    drop(reg);
                    pw.inboxes[to_region].lock().unwrap_or_else(|e| e.into_inner()).push((to, pkt));
                }
            }
        }
    }

    /// Receive the next message from `from` with `tag`. A wait-state: with
    /// no matching message buffered, the rank parks in the matching table
    /// and the scheduler resumes it when the message arrives. On completion
    /// the receiver's clock advances to the message's virtual completion
    /// time; the stall is recorded as exposed communication, the rest of the
    /// transfer as hidden.
    pub fn recv(&self, from: usize, tag: u64, phase: Phase) -> RecvFuture<'_> {
        RecvFuture {
            comm: self,
            from,
            tag,
            phase,
        }
    }

    /// Combined exchange: send to `to`, then receive from `from` under the
    /// same tag (a ring-shift step).
    pub async fn sendrecv(&self, to: usize, from: usize, tag: u64, data: Vec<f64>, phase: Phase) -> Vec<f64> {
        self.send(to, tag, data, phase);
        self.recv(from, tag, phase).await
    }

    /// Park until all `p` ranks reach the barrier. The barrier resolves at
    /// the max arrival time: the last arrival advances everyone's clock to
    /// it (each rank's wait counted as exposed communication) and releases
    /// every parked rank back onto the ready queue (in rank order), then
    /// continues without suspending, like `std::sync::Barrier`'s leader.
    pub fn barrier(&self) -> BarrierFuture<'_> {
        BarrierFuture {
            comm: self,
            arrived_gen: None,
        }
    }

    /// Close an RMA epoch (alias for [`barrier`](Self::barrier), like
    /// `MPI_Win_fence`).
    pub fn fence(&self) -> BarrierFuture<'_> {
        self.barrier()
    }

    // ------------------------------------------------------------------
    // One-sided (RMA) backend — never suspends except through `fence`.
    // ------------------------------------------------------------------

    /// Charge a one-sided transfer of `words` to this (origin) rank's
    /// clock: RMA bypasses the remote CPU, so the origin pays the wire time
    /// as exposed communication and the target stays passive.
    fn charge_rma(&self, words: u64) {
        let c = self.world.model.comm_time(words, 1);
        match &self.world.engine {
            Engine::Seq(_) => self.world.lock().clock[self.rank] += c,
            Engine::Par(pw) => pw.lock_rank(self.rank).slab_mut(self.rank).clock += c,
        }
        self.world.stats.rank(self.rank).record_comm_time(c, 0.0);
    }

    /// Run `op` on the world's RMA window table. The parallel engine keeps
    /// the table global behind its own lock: one-sided ops may target any
    /// rank, and the origin-side time charge stays rank-local regardless.
    fn with_windows<T>(&self, op: impl FnOnce(&mut Vec<Vec<f64>>) -> T) -> T {
        match &self.world.engine {
            Engine::Seq(_) => op(&mut self.world.lock().windows),
            Engine::Par(pw) => op(&mut pw.lock_windows()),
        }
    }

    /// (Re)size this rank's window to `words` zeroed words.
    pub fn win_resize(&self, words: usize) {
        self.with_windows(|w| window::resize(&mut w[self.rank], words));
    }

    /// Write `data` into `target`'s window at `offset` (like `MPI_Put`).
    pub fn put(&self, target: usize, offset: usize, data: &[f64], phase: Phase) {
        self.with_windows(|w| window::put(&mut w[target], offset, data));
        record_rma(&self.world.stats, self.rank, target, data.len() as u64, phase);
        self.charge_rma(data.len() as u64);
    }

    /// Read `len` words at `offset` from `target`'s window (like `MPI_Get`).
    /// The returned buffer is leased from the world's arena — hand it back
    /// with [`crate::comm::RankComm::recycle`] when done.
    pub fn get(&self, target: usize, offset: usize, len: usize, phase: Phase) -> Vec<f64> {
        let mut out = self.world.pool.take_clear(len);
        self.with_windows(|w| window::get_into(&w[target], offset, len, &mut out));
        record_rma(&self.world.stats, target, self.rank, len as u64, phase);
        self.charge_rma(len as u64);
        out
    }

    /// Element-wise add `data` into `target`'s window at `offset` (like
    /// `MPI_Accumulate` with `MPI_SUM`).
    pub fn accumulate(&self, target: usize, offset: usize, data: &[f64], phase: Phase) {
        self.with_windows(|w| window::accumulate(&mut w[target], offset, data));
        record_rma(&self.world.stats, self.rank, target, data.len() as u64, phase);
        self.charge_rma(data.len() as u64);
    }

    /// Replace this rank's window contents (local, no traffic counted). The
    /// displaced window buffer is recycled into the arena.
    pub fn win_fill(&self, data: Vec<f64>) {
        let old = self.with_windows(|w| std::mem::replace(&mut w[self.rank], data));
        self.world.pool.give(old);
    }

    /// Read this rank's own window (no traffic counted). The copy is leased
    /// from the arena, not freshly allocated.
    pub fn win_local(&self) -> Vec<f64> {
        self.with_windows(|w| self.world.pool.take_copy(&w[self.rank]))
    }

    /// Read a slice of this rank's own window (no traffic counted) — slices
    /// out of the shared window without cloning the whole thing.
    pub fn win_read_local(&self, offset: usize, len: usize) -> Vec<f64> {
        let mut out = self.world.pool.take_clear(len);
        self.with_windows(|w| window::read_local_into(&w[self.rank], offset, len, &mut out));
        out
    }
}

/// Wait-state of a pending receive: completes when a message from `from`
/// with `tag` is in this rank's mailbox, advancing the virtual clock to the
/// message's completion time.
pub struct RecvFuture<'a> {
    comm: &'a EventComm,
    from: usize,
    tag: u64,
    phase: Phase,
}

impl Future for RecvFuture<'_> {
    type Output = Vec<f64>;

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Vec<f64>> {
        let rank = self.comm.rank;
        let world = &self.comm.world;
        let wait = Wait::Recv {
            from: self.from,
            tag: self.tag,
        };
        match &world.engine {
            Engine::Seq(_) => {
                let mut st = world.lock();
                if let Some(pkt) = st.take_match(rank, self.from, self.tag) {
                    let now = st.clock[rank];
                    let done = st.recv_completion(&world.net, rank, &pkt, world.overlap);
                    st.clock[rank] = done;
                    drop(st);
                    let stall = done - now;
                    let rs = world.stats.rank(rank);
                    rs.record_recv(pkt.data.len() as u64, self.phase);
                    rs.record_comm_time(stall, (pkt.transfer_s - stall).max(0.0));
                    Poll::Ready(take_payload(pkt.data))
                } else {
                    // One outstanding wait-state per rank: a second concurrently
                    // polled future would overwrite this slot and lose its wakeup,
                    // so refuse loudly instead of deadlocking silently.
                    assert!(
                        st.waits[rank] == Wait::None || st.waits[rank] == wait,
                        "rank {rank}: a rank supports one outstanding wait-state \
                         (found {:?} while registering {wait:?})",
                        st.waits[rank]
                    );
                    st.waits[rank] = wait;
                    // Arm the virtual recv deadline: if the world's virtual time
                    // outruns it while this rank is still parked, the scheduler
                    // reports a suspected deadlock instead of simulating on.
                    st.park_epoch[rank] += 1;
                    let entry = DeadlineEntry {
                        at: st.clock[rank] + world.timeout_s,
                        rank,
                        epoch: st.park_epoch[rank],
                    };
                    st.deadlines.push(entry);
                    Poll::Pending
                }
            }
            Engine::Par(pw) => {
                let mut reg = pw.lock_rank(rank);
                if let Some(pkt) = reg.take_match(rank, self.from, self.tag) {
                    let now = reg.slab(rank).clock;
                    let done = reg.recv_completion(rank, &pkt, world.overlap);
                    reg.slab_mut(rank).clock = done;
                    drop(reg);
                    let stall = done - now;
                    let rs = world.stats.rank(rank);
                    rs.record_recv(pkt.data.len() as u64, self.phase);
                    rs.record_comm_time(stall, (pkt.transfer_s - stall).max(0.0));
                    Poll::Ready(take_payload(pkt.data))
                } else {
                    let slab = reg.slab(rank);
                    assert!(
                        slab.wait == Wait::None || slab.wait == wait,
                        "rank {rank}: a rank supports one outstanding wait-state \
                         (found {:?} while registering {wait:?})",
                        slab.wait
                    );
                    let slab = reg.slab_mut(rank);
                    slab.wait = wait;
                    slab.park_epoch += 1;
                    let entry = DeadlineEntry {
                        at: slab.clock + world.timeout_s,
                        rank,
                        epoch: slab.park_epoch,
                    };
                    reg.deadlines.push(entry);
                    Poll::Pending
                }
            }
        }
    }
}

/// Wait-state of a barrier arrival: completes when all `p` ranks arrived,
/// at the max arrival time.
pub struct BarrierFuture<'a> {
    comm: &'a EventComm,
    /// The barrier epoch this rank arrived in (`None` before first poll).
    arrived_gen: Option<u64>,
}

impl Future for BarrierFuture<'_> {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        let rank = self.comm.rank;
        let world = self.comm.world.clone();
        if let Engine::Par(pw) = &world.engine {
            return match self.arrived_gen {
                None => {
                    // Arrival: park (even the last arriver — the boundary
                    // leader resolves a full barrier, charging exactly what
                    // the sequential engine's inline resolution charges) and
                    // fold this clock into the commutative epoch max.
                    let mut reg = pw.lock_rank(rank);
                    let slab = reg.slab(rank);
                    assert!(
                        slab.wait == Wait::None,
                        "rank {rank}: a rank supports one outstanding wait-state \
                         (found {:?} while arriving at the barrier)",
                        slab.wait
                    );
                    let clock = slab.clock;
                    reg.slab_mut(rank).wait = Wait::Barrier;
                    drop(reg);
                    let mut b = pw.lock_barrier();
                    b.arrived += 1;
                    b.t_max = b.t_max.max(clock);
                    self.arrived_gen = Some(b.gen);
                    Poll::Pending
                }
                Some(gen) => {
                    if pw.lock_barrier().gen > gen {
                        Poll::Ready(())
                    } else {
                        // Spurious re-poll within the same epoch: keep waiting.
                        pw.lock_rank(rank).slab_mut(rank).wait = Wait::Barrier;
                        Poll::Pending
                    }
                }
            };
        }
        let mut st = world.lock();
        match self.arrived_gen {
            None => {
                st.barrier_arrived += 1;
                st.barrier_t = st.barrier_t.max(st.clock[rank]);
                if st.barrier_arrived == world.p {
                    // Last arrival: the barrier resolves at the max arrival
                    // time. Open the next epoch and release everyone parked
                    // at the barrier, in rank order, each one's wait counted
                    // as exposed communication.
                    let tmax = st.barrier_t;
                    st.barrier_arrived = 0;
                    st.barrier_t = 0.0;
                    st.barrier_gen += 1;
                    for r in 0..world.p {
                        if st.waits[r] == Wait::Barrier {
                            st.waits[r] = Wait::None;
                            world.stats.rank(r).record_comm_time(tmax - st.clock[r], 0.0);
                            st.clock[r] = tmax;
                            st.enqueue(r, tmax);
                        }
                    }
                    world.stats.rank(rank).record_comm_time(tmax - st.clock[rank], 0.0);
                    st.clock[rank] = tmax;
                    Poll::Ready(())
                } else {
                    assert!(
                        st.waits[rank] == Wait::None,
                        "rank {rank}: a rank supports one outstanding wait-state \
                         (found {:?} while arriving at the barrier)",
                        st.waits[rank]
                    );
                    self.arrived_gen = Some(st.barrier_gen);
                    st.waits[rank] = Wait::Barrier;
                    Poll::Pending
                }
            }
            Some(gen) => {
                if st.barrier_gen > gen {
                    Poll::Ready(())
                } else {
                    // Spurious re-poll within the same epoch: keep waiting.
                    st.waits[rank] = Wait::Barrier;
                    Poll::Pending
                }
            }
        }
    }
}

/// Fold a fault-plan message drop into a running `(sent_at, from, to)`
/// minimum — the canonical "earliest loss" both engines agree on for all
/// drops they both observed.
fn note_drop(slot: &mut Option<(f64, usize, usize)>, at: f64, from: usize, to: usize) {
    let cand = (at, from, to);
    let better = match slot {
        None => true,
        Some(cur) => cand < *cur,
    };
    if better {
        *slot = Some(cand);
    }
}

/// The casualty a fault-afflicted world reports when it cannot complete:
/// the earliest *scheduled* death among ranks that are dead or still
/// unfinished with a death pending — a schedule-derived attribution, so the
/// sequential and parallel engines (whose wedge points may differ by up to
/// one window) report the same `(rank, at)`. A pure message-loss wedge
/// (no deaths in play) blames the starved receiver of the earliest drop.
fn fault_casualty(
    sched: &FaultSchedule,
    p: usize,
    mut status: impl FnMut(usize) -> (bool, bool), // (dead, finished)
    first_drop: Option<(f64, usize, usize)>,
) -> Option<ExecError> {
    let mut first: Option<(f64, usize)> = None;
    for r in 0..p {
        let Some(d) = sched.death_time(r) else { continue };
        let (dead, finished) = status(r);
        if dead || !finished {
            let cand = (d, r);
            if first.is_none_or(|cur| cand < cur) {
                first = Some(cand);
            }
        }
    }
    if let Some((at, rank)) = first {
        return Some(ExecError::RankFailed { rank, at });
    }
    first_drop.map(|(at, _from, to)| ExecError::RankFailed { rank: to, at })
}

/// [`fault_casualty`] against the sequential engine's state. `include_drops`
/// is off on the completion path: a run that finished despite losses lost
/// only messages nobody waited for.
fn seq_fault_error(world: &EventWorld, st: &WorldState, include_drops: bool) -> Option<ExecError> {
    let sched = world.faults.as_ref()?;
    fault_casualty(
        sched,
        world.p,
        |r| (st.dead[r], st.finished[r]),
        if include_drops { st.first_drop } else { None },
    )
}

/// [`fault_casualty`] against the parallel engine's regions (called by the
/// boundary leader or after the workers joined — never mid-window).
fn par_fault_error(world: &EventWorld, pw: &ParWorld, include_drops: bool) -> Option<ExecError> {
    let sched = world.faults.as_ref()?;
    let mut dead = vec![false; pw.p];
    let mut finished = vec![false; pw.p];
    let mut first_drop: Option<(f64, usize, usize)> = None;
    for lock in &pw.regions {
        let reg = lock.lock().unwrap_or_else(|e| e.into_inner());
        for (local, slab) in reg.slabs.iter().enumerate() {
            dead[reg.base + local] = slab.dead;
            finished[reg.base + local] = slab.finished;
        }
        if include_drops {
            if let Some((at, from, to)) = reg.first_drop {
                note_drop(&mut first_drop, at, from, to);
            }
        }
    }
    fault_casualty(sched, pw.p, |r| (dead[r], finished[r]), first_drop)
}

/// The frozen-clock livelock guard's poll budget: how many consecutive
/// scheduler polls without strict virtual-time advance the sequential
/// engine tolerates while a receive deadline is pending.
///
/// A world whose clocks are frozen (α = 0 and only zero-word messages in
/// flight) can ping-pong forever without ever outrunning a parked recv's
/// virtual deadline — `recv_timeout` never fires and the scheduler spins.
/// The budget converts "no virtual progress for an absurd number of polls"
/// into the same [`ExecError::DeadlockSuspected`] the deadline would have
/// produced. Generous (≥ 2²⁰ polls, scaled by world size so same-timestamp
/// bursts of large untimed worlds never trip it): a legitimate workload
/// advancing time or finishing ranks resets the count. The parallel engine
/// needs no guard — it only engages with α > 0, where every window
/// strictly advances the floor.
fn livelock_poll_budget(p: usize) -> u64 {
    (p as u64) * 64 + (1 << 20)
}

/// Run the world to completion on the calling thread; see
/// [`run_spmd_event`].
fn run_event_world<R, F, Fut>(
    spec: &MachineSpec,
    f: F,
    traced: bool,
    pool: Arc<BufferPool>,
) -> Result<(RunOutput<R>, Vec<SchedEvent>), ExecError>
where
    F: Fn(crate::comm::RankComm) -> Fut,
    Fut: Future<Output = R>,
{
    let p = spec.p;
    let stats = Arc::new(StatsBoard::new(p));
    let world = Arc::new(EventWorld::new(spec, stats.clone(), traced, pool));
    // One boxed state machine per rank — the entire per-rank footprint.
    let mut tasks: Vec<Option<Pin<Box<Fut>>>> = (0..p)
        .map(|rank| {
            let comm = EventComm {
                rank,
                world: world.clone(),
            };
            Some(Box::pin(f(crate::comm::RankComm::Event(comm))))
        })
        .collect();
    {
        let mut st = world.lock();
        for r in 0..p {
            st.enqueue(r, 0.0);
        }
    }
    let mut results: Vec<Option<R>> = (0..p).map(|_| None).collect();
    let mut live = p;
    let mut cx = Context::from_waker(Waker::noop());
    // Frozen-clock livelock guard (see `livelock_poll_budget`): consecutive
    // polls without strict virtual-time advance, reset on any progress.
    let stall_budget = livelock_poll_budget(p);
    let mut last_advance = f64::NEG_INFINITY;
    let mut stalled_polls: u64 = 0;
    while live > 0 {
        let next = {
            let mut st = world.lock();
            let entry = st.ready.pop();
            if let Some(e) = &entry {
                if e.at > last_advance {
                    last_advance = e.at;
                    stalled_polls = 0;
                } else {
                    stalled_polls += 1;
                }
                // The recv-timeout deadline, in virtual time: before
                // advancing to the earliest runnable rank, check whether a
                // parked recv's deadline already passed — the world has
                // outrun it, so the message it waits for can no longer make
                // it in time. Stale entries (the rank was woken, or parked
                // anew) are drained lazily. A frozen virtual clock can never
                // outrun a deadline, so the livelock guard fires the
                // earliest pending one once the poll budget is exhausted.
                while let Some(&DeadlineEntry { at, rank, epoch }) = st.deadlines.peek() {
                    let valid = st.park_epoch[rank] == epoch && matches!(st.waits[rank], Wait::Recv { .. });
                    if !valid {
                        st.deadlines.pop();
                        continue;
                    }
                    if at < e.at || stalled_polls > stall_budget {
                        let Wait::Recv { from, tag } = st.waits[rank] else {
                            unreachable!("validated above")
                        };
                        return Err(seq_fault_error(&world, &st, true).unwrap_or(
                            ExecError::DeadlockSuspected {
                                rank,
                                on: Waiting::Message { from, tag },
                            },
                        ));
                    }
                    break;
                }
                // The fault plan's kill point: the first time a doomed
                // rank would be polled at or past its scheduled death, it
                // dies instead — body dropped, mailbox discarded, no
                // result. Decided against the rank's own event time, so
                // every engine kills at the same event.
                if let Some(sched) = &world.faults {
                    if let Some(d) = sched.death_time(e.rank) {
                        if !st.dead[e.rank] && e.at >= d {
                            let r = e.rank;
                            st.dead[r] = true;
                            st.waits[r] = Wait::None;
                            st.mailboxes[r].clear();
                            drop(st);
                            tasks[r] = None;
                            live -= 1;
                            continue;
                        }
                    }
                }
                if let Some(t) = &mut st.trace {
                    t.push(SchedEvent::Poll(e.rank));
                }
            }
            entry.map(|e| e.rank)
        };
        let Some(r) = next else {
            // Structural deadlock: unfinished ranks, none runnable. Report
            // the first parked rank and what it waits on, typed. A live
            // rank with no registered wait awaited something outside the
            // communicator (which this scheduler can never re-wake): report
            // that honestly rather than inventing a barrier.
            let st = world.lock();
            if let Some(e) = seq_fault_error(&world, &st, true) {
                // The wedge is the fault plan's doing (ranks dead or doomed,
                // or a dropped message starving its receiver): report the
                // scheduled casualty instead of a plain deadlock.
                return Err(e);
            }
            let (rank, on) = st
                .waits
                .iter()
                .enumerate()
                .find_map(|(r, w)| match *w {
                    Wait::Recv { from, tag } => Some((r, Waiting::Message { from, tag })),
                    Wait::Barrier => Some((r, Waiting::Barrier)),
                    Wait::None => None,
                })
                .unwrap_or_else(|| {
                    let r = st.finished.iter().position(|f| !f).expect("live ranks exist");
                    (r, Waiting::Unknown)
                });
            return Err(ExecError::DeadlockSuspected { rank, on });
        };
        let task = tasks[r].as_mut().expect("ready rank has a live task");
        // A rank body that hits a typed failure (e.g. a send to an exited
        // rank) unwinds with an ExecError payload; recover it as a typed
        // error, like the blocking executors' join loop. Any other panic is
        // the body's own and propagates unchanged.
        let polled = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task.as_mut().poll(&mut cx)));
        match polled {
            Ok(Poll::Ready(out)) => {
                results[r] = Some(out);
                tasks[r] = None;
                live -= 1;
                world.lock().finished[r] = true;
                // A finishing rank is progress even at a frozen timestamp.
                stalled_polls = 0;
            }
            // Pending: the rank registered a wait-state; a matching send or
            // the closing barrier arrival re-enqueues it.
            Ok(Poll::Pending) => {}
            Err(payload) => match payload.downcast::<ExecError>() {
                Ok(e) => return Err(*e),
                Err(payload) => std::panic::resume_unwind(payload),
            },
        }
    }
    if world.faults.is_some() {
        // Every surviving rank finished, but a run with casualties has no
        // complete result set: report the earliest scheduled death. (Drops
        // are not consulted — a run that completed despite losses only
        // lost messages nobody waited for.)
        let st = world.lock();
        if let Some(e) = seq_fault_error(&world, &st, false) {
            return Err(e);
        }
    }
    let trace = world.lock().trace.take().unwrap_or_default();
    Ok((
        RunOutput {
            results: results.into_iter().map(|s| s.expect("missing rank result")).collect(),
            stats: stats.snapshot(),
            pool: world.pool.stats(),
        },
        trace,
    ))
}

/// Shared run control of the parallel engine's workers: the published
/// window bound, the live-rank count, and the first failure of the run.
struct ParControl {
    /// The current window's exclusive virtual-time bound, as `f64` bits.
    bound: AtomicU64,
    /// Ranks whose body future has not completed yet.
    live: AtomicUsize,
    /// Raised as soon as any region fails: other regions cut their window
    /// short instead of simulating on.
    failed: AtomicBool,
    /// Set by the boundary leader when the run is over (success or failure).
    stop: AtomicBool,
    /// First typed error of the run (window order; within one window, first
    /// recorder wins).
    error: Mutex<Option<ExecError>>,
    /// First non-[`ExecError`] rank panic, re-raised after the scope joins.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// The two-phase window gate all workers (leader included) meet at.
    gate: std::sync::Barrier,
}

impl ParControl {
    fn fail(&self, e: ExecError) {
        let mut slot = self.error.lock().unwrap_or_else(|p| p.into_inner());
        slot.get_or_insert(e);
        self.failed.store(true, Ordering::SeqCst);
    }

    fn panicked(&self, payload: Box<dyn std::any::Any + Send>) {
        let mut slot = self.panic.lock().unwrap_or_else(|p| p.into_inner());
        if slot.is_none() {
            *slot = Some(payload);
        }
        self.failed.store(true, Ordering::SeqCst);
    }

    fn bound(&self) -> f64 {
        f64::from_bits(self.bound.load(Ordering::SeqCst))
    }
}

/// One worker thread of the parallel engine: owns region `w`'s rank bodies
/// (created *and* polled on this thread — rank futures are not `Send`),
/// drains the region heap up to each window bound, and meets the other
/// workers at the window gate. Worker 0 doubles as the boundary leader.
fn par_worker<R, F, Fut>(
    world: &Arc<EventWorld>,
    pw: &ParWorld,
    ctl: &ParControl,
    w: usize,
    f: &F,
) -> Vec<Option<R>>
where
    F: Fn(crate::comm::RankComm) -> Fut,
    Fut: Future<Output = R>,
{
    let base = w * pw.chunk;
    let len = pw.chunk.min(pw.p - base);
    let mut tasks: Vec<Option<Pin<Box<Fut>>>> = (base..base + len)
        .map(|rank| {
            let comm = EventComm {
                rank,
                world: world.clone(),
            };
            Some(Box::pin(f(crate::comm::RankComm::Event(comm))))
        })
        .collect();
    let mut results: Vec<Option<R>> = (0..len).map(|_| None).collect();
    let mut cx = Context::from_waker(Waker::noop());
    loop {
        let bound = ctl.bound();
        'window: while !ctl.failed.load(Ordering::Relaxed) {
            let next = {
                let mut reg = pw.lock_region(w);
                match reg.ready.peek() {
                    Some(e) if e.at < bound => {
                        let e = reg.ready.pop().expect("peeked entry exists");
                        // The fault plan's kill point — the same event the
                        // sequential engine kills at (the decision compares
                        // the rank's own event time with its own death
                        // time, so the window interleave is irrelevant).
                        if let Some(sched) = &world.faults {
                            if let Some(d) = sched.death_time(e.rank) {
                                if !reg.slab(e.rank).dead && e.at >= d {
                                    let r = e.rank;
                                    let slab = reg.slab_mut(r);
                                    slab.dead = true;
                                    slab.wait = Wait::None;
                                    slab.mailbox.clear();
                                    drop(reg);
                                    tasks[r - base] = None;
                                    ctl.live.fetch_sub(1, Ordering::SeqCst);
                                    continue 'window;
                                }
                            }
                        }
                        Some(e.rank)
                    }
                    _ => None,
                }
            };
            let Some(r) = next else { break };
            let task = tasks[r - base].as_mut().expect("ready rank has a live task");
            let polled =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task.as_mut().poll(&mut cx)));
            match polled {
                Ok(Poll::Ready(out)) => {
                    results[r - base] = Some(out);
                    tasks[r - base] = None;
                    pw.lock_region(w).slab_mut(r).finished = true;
                    ctl.live.fetch_sub(1, Ordering::SeqCst);
                }
                // Pending: the rank registered a wait-state; a matching send,
                // the barrier resolution or an inbox delivery re-enqueues it.
                Ok(Poll::Pending) => {}
                Err(payload) => {
                    match payload.downcast::<ExecError>() {
                        Ok(e) => ctl.fail(*e),
                        Err(other) => ctl.panicked(other),
                    }
                    break 'window;
                }
            }
        }
        ctl.gate.wait();
        if w == 0 {
            par_boundary(world, pw, ctl);
        }
        ctl.gate.wait();
        if ctl.stop.load(Ordering::SeqCst) {
            return results;
        }
    }
}

/// The window-boundary phase, run by the leader alone while every worker
/// waits at the gate: deliver cross-region inboxes, resolve a fully-arrived
/// barrier, surface failures, detect deadlock, and open the next window.
fn par_boundary(world: &EventWorld, pw: &ParWorld, ctl: &ParControl) {
    // 1) Drain inboxes. Stable-sorting by sender canonicalizes the arrival
    //    order while preserving each sender's program order — matching is
    //    per-(sender, tag), so any per-sender-FIFO order is equivalent.
    for (target_region, inbox) in pw.inboxes.iter().enumerate() {
        let mut pkts = std::mem::take(&mut *inbox.lock().unwrap_or_else(|e| e.into_inner()));
        if pkts.is_empty() {
            continue;
        }
        pkts.sort_by_key(|(_, pkt)| pkt.from);
        let mut reg = pw.lock_region(target_region);
        for (to, pkt) in pkts {
            if reg.slab(to).dead {
                // The receiver was killed by the fault plan: a typed loss
                // (the wedge will report RankFailed), not a teardown.
                continue;
            }
            if reg.slab(to).finished {
                // The receiver exited before delivery: the same typed
                // teardown the sequential sender raises in-line.
                ctl.fail(ExecError::WorldTornDown { rank: pkt.from });
                continue;
            }
            if reg.slab(to).wait
                == (Wait::Recv {
                    from: pkt.from,
                    tag: pkt.tag,
                })
            {
                reg.slab_mut(to).wait = Wait::None;
                let at = reg.completion_time(to, &pkt, world.overlap);
                reg.slab_mut(to).mailbox.push_back(pkt);
                reg.enqueue(to, at);
            } else {
                reg.slab_mut(to).mailbox.push_back(pkt);
            }
        }
    }
    // 2) Resolve a fully-arrived world barrier: identical charges, clocks
    //    and (rank-ordered) wakes to the sequential engine's inline
    //    resolution by the last arriver.
    {
        let mut b = pw.lock_barrier();
        if pw.p > 0 && b.arrived == pw.p {
            let tmax = b.t_max;
            b.arrived = 0;
            b.t_max = 0.0;
            b.gen += 1;
            drop(b);
            for lock in &pw.regions {
                let mut reg = lock.lock().unwrap_or_else(|e| e.into_inner());
                let base = reg.base;
                for local in 0..reg.slabs.len() {
                    if reg.slabs[local].wait == Wait::Barrier {
                        let r = base + local;
                        reg.slabs[local].wait = Wait::None;
                        world.stats.rank(r).record_comm_time(tmax - reg.slabs[local].clock, 0.0);
                        reg.slabs[local].clock = tmax;
                        reg.enqueue(r, tmax);
                    }
                }
            }
        }
    }
    // 3) A failed region ends the run at the next gate.
    if ctl.failed.load(Ordering::SeqCst) {
        ctl.stop.store(true, Ordering::SeqCst);
        return;
    }
    // 4) Find the next window floor: the earliest pending event anywhere.
    let mut floor: Option<f64> = None;
    for lock in &pw.regions {
        let reg = lock.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(e) = reg.ready.peek() {
            floor = Some(match floor {
                Some(f) => f.min(e.at),
                None => e.at,
            });
        }
    }
    let Some(floor) = floor else {
        if ctl.live.load(Ordering::SeqCst) > 0 {
            // Structural deadlock: unfinished ranks, none runnable anywhere.
            // A fault-afflicted wedge reports the scheduled casualty;
            // otherwise report the first parked rank in rank order, as the
            // sequential engine does (a live rank with no registered wait
            // awaited something outside the communicator).
            if let Some(e) = par_fault_error(world, pw, true) {
                ctl.fail(e);
                ctl.stop.store(true, Ordering::SeqCst);
                return;
            }
            let mut found: Option<(usize, Waiting)> = None;
            let mut first_unfinished: Option<usize> = None;
            'scan: for lock in &pw.regions {
                let reg = lock.lock().unwrap_or_else(|e| e.into_inner());
                for (local, slab) in reg.slabs.iter().enumerate() {
                    let r = reg.base + local;
                    if first_unfinished.is_none() && !slab.finished {
                        first_unfinished = Some(r);
                    }
                    match slab.wait {
                        Wait::Recv { from, tag } => {
                            found = Some((r, Waiting::Message { from, tag }));
                            break 'scan;
                        }
                        Wait::Barrier => {
                            found = Some((r, Waiting::Barrier));
                            break 'scan;
                        }
                        Wait::None => {}
                    }
                }
            }
            let (rank, on) =
                found.unwrap_or_else(|| (first_unfinished.expect("live ranks exist"), Waiting::Unknown));
            ctl.fail(ExecError::DeadlockSuspected { rank, on });
        }
        ctl.stop.store(true, Ordering::SeqCst);
        return;
    };
    // 5) Recv deadlines, checked against the next event time like the
    //    sequential per-pop check (window-boundary granularity: a deadline
    //    passed mid-window is reported at the boundary that follows it).
    let mut deadline: Option<DeadlineEntry> = None;
    for lock in &pw.regions {
        let mut reg = lock.lock().unwrap_or_else(|e| e.into_inner());
        while let Some(&entry) = reg.deadlines.peek() {
            let slab = reg.slab(entry.rank);
            let valid = slab.park_epoch == entry.epoch && matches!(slab.wait, Wait::Recv { .. });
            if !valid {
                reg.deadlines.pop();
                continue;
            }
            // Same priority order as the sequential deadline heap:
            // (at, rank, epoch) ascending.
            let earlier = match deadline {
                None => true,
                Some(d) => (entry.at, entry.rank, entry.epoch) < (d.at, d.rank, d.epoch),
            };
            if earlier {
                deadline = Some(entry);
            }
            break;
        }
    }
    if let Some(d) = deadline {
        if d.at < floor {
            let reg = pw.lock_rank(d.rank);
            let Wait::Recv { from, tag } = reg.slab(d.rank).wait else {
                unreachable!("validated above")
            };
            drop(reg);
            ctl.fail(par_fault_error(world, pw, true).unwrap_or(ExecError::DeadlockSuspected {
                rank: d.rank,
                on: Waiting::Message { from, tag },
            }));
            ctl.stop.store(true, Ordering::SeqCst);
            return;
        }
    }
    // 6) Open the next window. The `next_up` floor keeps the window
    //    non-empty even when `floor + α` rounds back to `floor` (a clock so
    //    far past α that the sum is absorbed): the engine then degrades to
    //    per-timestamp stepping instead of spinning.
    let bound = (floor + par_lookahead(world)).max(floor.next_up());
    ctl.bound.store(bound.to_bits(), Ordering::SeqCst);
}

/// The parallel engine's conservative lookahead
/// ([`Network::region_lookahead_s`]): the cost model's per-message latency
/// α. Every message posted at `t` completes at `t + α + β·words ≥ t + α`,
/// so a window of width α is closed under the events it generates.
fn par_lookahead(world: &EventWorld) -> f64 {
    world.net.region_lookahead_s(world.model.alpha_s)
}

/// Run the world on `regions` scheduler threads; see
/// [`try_run_spmd_event_threads`]. The caller has already verified the
/// multi-region preconditions (flat topology, α > 0, ≥ 2 regions).
fn run_event_world_parallel<R, F, Fut>(
    spec: &MachineSpec,
    regions: usize,
    f: F,
    pool: Arc<BufferPool>,
) -> Result<RunOutput<R>, ExecError>
where
    R: Send,
    F: Fn(crate::comm::RankComm) -> Fut + Sync,
    Fut: Future<Output = R>,
{
    let p = spec.p;
    let stats = Arc::new(StatsBoard::new(p));
    let world = Arc::new(EventWorld::new_parallel(spec, stats.clone(), regions, pool));
    let Engine::Par(pw) = &world.engine else {
        unreachable!("new_parallel builds a parallel engine")
    };
    for (w, lock) in pw.regions.iter().enumerate() {
        let mut reg = lock.lock().unwrap_or_else(|e| e.into_inner());
        let base = w * pw.chunk;
        for local in 0..reg.slabs.len() {
            reg.enqueue(base + local, 0.0);
        }
    }
    let n_regions = pw.regions.len();
    let ctl = ParControl {
        bound: AtomicU64::new(par_lookahead(&world).to_bits()),
        live: AtomicUsize::new(p),
        failed: AtomicBool::new(false),
        stop: AtomicBool::new(false),
        error: Mutex::new(None),
        panic: Mutex::new(None),
        gate: std::sync::Barrier::new(n_regions),
    };
    let mut region_results: Vec<Vec<Option<R>>> = std::thread::scope(|s| {
        let handles: Vec<_> = (1..n_regions)
            .map(|w| {
                let world = &world;
                let ctl = &ctl;
                let f = &f;
                s.spawn(move || {
                    let Engine::Par(pw) = &world.engine else {
                        unreachable!("parallel world")
                    };
                    par_worker(world, pw, ctl, w, f)
                })
            })
            .collect();
        let first = par_worker(&world, pw, &ctl, 0, &f);
        let mut all = vec![first];
        for h in handles {
            all.push(h.join().expect("workers catch rank panics"));
        }
        all
    });
    if let Some(payload) = ctl.panic.lock().unwrap_or_else(|e| e.into_inner()).take() {
        std::panic::resume_unwind(payload);
    }
    if let Some(e) = ctl.error.lock().unwrap_or_else(|e| e.into_inner()).take() {
        return Err(e);
    }
    if world.faults.is_some() {
        // Every surviving rank finished; a run with casualties still has no
        // complete result set (see the sequential completion check).
        if let Some(e) = par_fault_error(&world, pw, false) {
            return Err(e);
        }
    }
    let mut results = Vec::with_capacity(p);
    for region in &mut region_results {
        for slot in region.drain(..) {
            results.push(slot.expect("missing rank result"));
        }
    }
    Ok(RunOutput {
        results,
        stats: stats.snapshot(),
        pool: world.pool.stats(),
    })
}

/// Run `f` on every rank of `spec` on the event scheduler with up to
/// `threads` region worker threads — the engine behind
/// [`crate::exec::ExecBackend::Event`]`{ threads }`.
///
/// The multi-region path requires the determinism contract to be provable:
/// a flat topology (per-rank virtual state is region-local there) and a
/// cost model with α > 0 (the conservative lookahead). Worlds that don't
/// qualify — and `threads <= 1` — run the single-threaded engine
/// ([`try_run_spmd_event`]) unchanged, so stats are bitwise-identical
/// either way; the thread count never affects *what* a run measures.
pub fn try_run_spmd_event_threads<R, F, Fut>(
    spec: &MachineSpec,
    threads: usize,
    f: F,
) -> Result<RunOutput<R>, ExecError>
where
    R: Send,
    F: Fn(crate::comm::RankComm) -> Fut + Sync,
    Fut: Future<Output = R>,
{
    let pool = spec_pool(spec);
    try_run_spmd_event_threads_pooled(spec, threads, f, pool)
}

/// [`try_run_spmd_event_threads`] against a caller-supplied arena — the
/// executor layer threads one warm pool through many runs here.
pub(crate) fn try_run_spmd_event_threads_pooled<R, F, Fut>(
    spec: &MachineSpec,
    threads: usize,
    f: F,
    pool: Arc<BufferPool>,
) -> Result<RunOutput<R>, ExecError>
where
    R: Send,
    F: Fn(crate::comm::RankComm) -> Fut + Sync,
    Fut: Future<Output = R>,
{
    let regions = threads.min(spec.p.max(1));
    if regions <= 1 || !spec.topology.commutes_with_region_sharding() || spec.cost.alpha_s <= 0.0 {
        return run_event_world(spec, f, false, pool).map(|(out, _)| out);
    }
    run_event_world_parallel(spec, regions, f, pool)
}

/// The arena a spec asks for: enabled unless [`MachineSpec::pooling`] turned
/// recycling off (the pool then degrades to plain allocation).
fn spec_pool(spec: &MachineSpec) -> Arc<BufferPool> {
    Arc::new(BufferPool::new(spec.pooling))
}

/// Run `f` on every rank of `spec` as an event-driven stackless state
/// machine, single-threaded, returning a typed
/// [`ExecError::DeadlockSuspected`] when the world wedges. Prefer
/// [`crate::exec::run_spmd_with`] with [`crate::exec::ExecBackend::Event`],
/// which dispatches here.
pub fn try_run_spmd_event<R, F, Fut>(spec: &MachineSpec, f: F) -> Result<RunOutput<R>, ExecError>
where
    F: Fn(crate::comm::RankComm) -> Fut,
    Fut: Future<Output = R>,
{
    let pool = spec_pool(spec);
    run_event_world(spec, f, false, pool).map(|(out, _)| out)
}

/// Legacy panicking form of [`try_run_spmd_event`].
///
/// # Panics
/// Panics on any typed executor error (e.g. a detected deadlock).
pub fn run_spmd_event<R, F, Fut>(spec: &MachineSpec, f: F) -> RunOutput<R>
where
    F: Fn(crate::comm::RankComm) -> Fut,
    Fut: Future<Output = R>,
{
    match try_run_spmd_event(spec, f) {
        Ok(out) => out,
        Err(e) => panic!("{e}"),
    }
}

/// [`run_spmd_event`] with the scheduler decision trace, for the fairness
/// property tests: the returned events record every ready-queue admission
/// and poll in order.
///
/// # Panics
/// Panics on any typed executor error (e.g. a detected deadlock).
pub fn run_spmd_event_traced<R, F, Fut>(spec: &MachineSpec, f: F) -> (RunOutput<R>, Vec<SchedEvent>)
where
    F: Fn(crate::comm::RankComm) -> Fut,
    Fut: Future<Output = R>,
{
    let pool = spec_pool(spec);
    match run_event_world(spec, f, true, pool) {
        Ok(out) => out,
        Err(e) => panic!("{e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;

    #[test]
    fn results_are_rank_ordered() {
        let spec = MachineSpec::test_machine(8, 1000);
        let out = run_spmd_event(&spec, |c| async move { c.rank() * 10 });
        assert_eq!(out.results, vec![0, 10, 20, 30, 40, 50, 60, 70]);
        assert_eq!(out.stats.len(), 8);
    }

    #[test]
    fn send_recv_parks_and_resumes() {
        let spec = MachineSpec::test_machine(4, 1000);
        let out = run_spmd_event(&spec, |mut c| async move {
            // Everyone receives from the left neighbour *before* sending to
            // the right one would be a deadlock; recv-after-send is the
            // buffered pattern.
            let right = (c.rank() + 1) % c.size();
            let left = (c.rank() + c.size() - 1) % c.size();
            c.send(right, 7, vec![c.rank() as f64], Phase::Other);
            c.recv(left, 7, Phase::Other).await[0] as usize
        });
        assert_eq!(out.results, vec![3, 0, 1, 2]);
        for st in &out.stats {
            assert_eq!(st.total_sent(), 1);
            assert_eq!(st.total_recv(), 1);
        }
    }

    #[test]
    fn recv_before_send_resumes_on_delivery() {
        // Rank 1 parks on recv first (rank 0 runs second in queue order on
        // this pattern), exercising the wait-then-wake path.
        let spec = MachineSpec::test_machine(2, 1000);
        let out = run_spmd_event(&spec, |mut c| async move {
            if c.rank() == 1 {
                c.recv(0, 3, Phase::Other).await
            } else {
                c.send(1, 3, vec![42.0], Phase::Other);
                vec![]
            }
        });
        assert_eq!(out.results[1], vec![42.0]);
    }

    #[test]
    fn barrier_synchronizes_all_ranks() {
        let spec = MachineSpec::test_machine(6, 1000);
        let out = run_spmd_event(&spec, |mut c| async move {
            c.barrier().await;
            c.barrier().await;
            c.rank()
        });
        assert_eq!(out.results.len(), 6);
    }

    #[test]
    fn tag_matching_reorders_like_blocking() {
        let spec = MachineSpec::test_machine(2, 1000);
        let out = run_spmd_event(&spec, |mut c| async move {
            if c.rank() == 0 {
                c.send(1, 1, vec![1.0], Phase::Other);
                c.send(1, 2, vec![2.0], Phase::Other);
                (vec![], vec![])
            } else {
                let two = c.recv(0, 2, Phase::Other).await;
                let one = c.recv(0, 1, Phase::Other).await;
                (two, one)
            }
        });
        assert_eq!(out.results[1], (vec![2.0], vec![1.0]));
    }

    #[test]
    fn rma_put_get_accumulate_with_fences() {
        let spec = MachineSpec::test_machine(2, 1000);
        let out = run_spmd_event(&spec, |mut c| async move {
            c.win_resize(4);
            c.fence().await;
            if c.rank() == 0 {
                c.put(1, 0, &[1.0, 2.0], Phase::InputA);
                c.accumulate(1, 1, &[10.0], Phase::OutputC);
            }
            c.fence().await;
            if c.rank() == 1 {
                assert_eq!(c.win_local(), vec![1.0, 12.0, 0.0, 0.0]);
                c.get(0, 0, 2, Phase::InputB)
            } else {
                vec![]
            }
        });
        assert_eq!(out.results[1], vec![0.0, 0.0]);
        assert_eq!(out.stats[0].total_sent(), 5);
        assert_eq!(out.stats[1].total_recv(), 5);
        // The origin pays RMA wire time as exposed comm: rank 0 put 3 words,
        // rank 1 got 2 — both clocks advanced.
        assert!(out.stats[0].time.exposed_comm_s > 0.0);
        assert!(out.stats[1].time.exposed_comm_s > 0.0);
    }

    #[test]
    fn deadlock_is_detected_not_hung() {
        let spec = MachineSpec::test_machine(2, 1000);
        let err = try_run_spmd_event(&spec, |mut c| async move {
            // Nobody ever sends: both ranks park forever.
            c.recv((c.rank() + 1) % 2, 9, Phase::Other).await
        })
        .unwrap_err();
        assert_eq!(
            err,
            ExecError::DeadlockSuspected {
                rank: 0,
                on: Waiting::Message { from: 1, tag: 9 }
            }
        );
    }

    #[test]
    #[should_panic(expected = "deadlock suspected")]
    fn legacy_entry_point_panics_on_deadlock() {
        let spec = MachineSpec::test_machine(2, 1000);
        let _ =
            run_spmd_event(&spec, |mut c| async move { c.recv((c.rank() + 1) % 2, 9, Phase::Other).await });
    }

    #[test]
    fn send_to_exited_rank_is_typed_world_torn_down() {
        // Rank 0 (polled first) exits immediately; rank 1 then sends to it.
        // A typed teardown, not a process abort — the blocking backends'
        // contract, kept by the event scheduler's poll recovery.
        let spec = MachineSpec::test_machine(2, 1000);
        let err = try_run_spmd_event(&spec, |c| async move {
            if c.rank() == 1 {
                c.send(0, 3, vec![1.0], Phase::Other);
            }
        })
        .unwrap_err();
        assert_eq!(err, ExecError::WorldTornDown { rank: 1 });
    }

    #[test]
    fn foreign_future_deadlock_reports_unknown_wait() {
        // A rank body that awaits a non-RankComm future: the scheduler can
        // never re-wake it, and the typed report says so instead of
        // inventing a barrier.
        let spec = MachineSpec::test_machine(2, 1000);
        let err = try_run_spmd_event(&spec, |c| async move {
            if c.rank() == 1 {
                std::future::pending::<()>().await;
            }
        })
        .unwrap_err();
        assert_eq!(
            err,
            ExecError::DeadlockSuspected {
                rank: 1,
                on: Waiting::Unknown
            }
        );
        assert!(err.to_string().contains("outside the communicator"), "{err}");
    }

    #[test]
    fn scheduler_trace_is_fifo_on_equal_timestamps() {
        let spec = MachineSpec::test_machine(5, 1000);
        let (_, trace) = run_spmd_event_traced(&spec, |mut c| async move {
            c.barrier().await;
            c.rank()
        });
        let enq: Vec<usize> = trace
            .iter()
            .filter_map(|e| match e {
                SchedEvent::Enqueue(r) => Some(*r),
                _ => None,
            })
            .collect();
        let polls: Vec<usize> = trace
            .iter()
            .filter_map(|e| match e {
                SchedEvent::Poll(r) => Some(*r),
                _ => None,
            })
            .collect();
        assert_eq!(enq, polls, "equal virtual timestamps must keep FIFO order");
    }

    /// A unit cost model for hand-checkable virtual-clock arithmetic:
    /// compute = flops seconds, transfer = words seconds, α = 0.
    fn unit_spec(p: usize) -> MachineSpec {
        MachineSpec::new(
            p,
            1000,
            CostModel {
                peak_flops: 1.0,
                kernel_efficiency: 1.0,
                alpha_s: 0.0,
                beta_s_per_word: 1.0,
            },
        )
    }

    #[test]
    fn virtual_clock_hides_transfer_behind_compute_with_overlap() {
        // Rank 0 sends 4 words at t = 0 (arrival 4), then rank 1 computes 10
        // flops (clock 10) and receives: the transfer is fully hidden.
        let out = run_spmd_event(&unit_spec(2), |mut c| async move {
            if c.rank() == 0 {
                c.send(1, 1, vec![0.0; 4], Phase::Other);
            } else {
                c.record_flops(10);
                c.recv(0, 1, Phase::Other).await;
            }
        });
        let t = out.stats[1].time;
        assert_eq!(t.compute_s, 10.0);
        assert_eq!(t.exposed_comm_s, 0.0, "arrival 4 < clock 10: fully hidden");
        assert_eq!(t.total_comm_s, 4.0);
        assert_eq!(t.total_s(), 10.0);
    }

    #[test]
    fn virtual_clock_exposes_transfer_without_overlap() {
        // Same exchange, overlap off: the 4-word transfer is fully exposed
        // after the compute.
        let out = run_spmd_event(&unit_spec(2).with_overlap(false), |mut c| async move {
            if c.rank() == 0 {
                c.send(1, 1, vec![0.0; 4], Phase::Other);
            } else {
                c.record_flops(10);
                c.recv(0, 1, Phase::Other).await;
            }
        });
        let t = out.stats[1].time;
        assert_eq!(t.compute_s, 10.0);
        assert_eq!(t.exposed_comm_s, 4.0);
        assert_eq!(t.total_comm_s, 4.0);
        assert_eq!(t.total_s(), 14.0);
    }

    #[test]
    fn recv_waits_for_late_sender() {
        // Rank 0 computes 7 s before sending 2 words; rank 1 posts recv at
        // t = 0 and stalls until arrival 9 (overlap) — all exposed.
        let out = run_spmd_event(&unit_spec(2), |mut c| async move {
            if c.rank() == 0 {
                c.record_flops(7);
                c.send(1, 1, vec![0.0; 2], Phase::Other);
            } else {
                c.recv(0, 1, Phase::Other).await;
            }
        });
        let t = out.stats[1].time;
        assert_eq!(t.exposed_comm_s, 9.0);
        assert_eq!(t.total_s(), 9.0);
    }

    #[test]
    fn incoming_link_serializes_transfers() {
        // Two senders, 3 words each, both send at t = 0: the receiver's link
        // serializes them (arrivals 3 and 6), so the second recv completes
        // at 6 even though both transfers were posted at 0.
        let out = run_spmd_event(&unit_spec(3), |mut c| async move {
            match c.rank() {
                0 | 1 => c.send(2, 1, vec![0.0; 3], Phase::Other),
                _ => {
                    c.recv(0, 1, Phase::Other).await;
                    c.recv(1, 1, Phase::Other).await;
                }
            }
        });
        let t = out.stats[2].time;
        assert_eq!(t.total_comm_s, 6.0);
        assert_eq!(t.total_s(), 6.0);
    }

    #[test]
    fn barrier_resolves_at_max_arrival_time() {
        // Ranks compute rank * 2 seconds before the barrier: everyone leaves
        // at the slowest rank's clock (6.0), the waits exposed.
        let out = run_spmd_event(&unit_spec(4), |mut c| async move {
            c.record_flops(c.rank() as u64 * 2);
            c.barrier().await;
        });
        for (r, st) in out.stats.iter().enumerate() {
            assert_eq!(st.time.total_s(), 6.0, "rank {r} must leave the barrier at t = 6");
            assert_eq!(st.time.compute_s, r as f64 * 2.0);
            assert_eq!(st.time.exposed_comm_s, 6.0 - r as f64 * 2.0);
        }
    }

    #[test]
    fn timed_runs_are_deterministic() {
        let spec = MachineSpec::test_machine(16, 1000);
        let body = |mut c: crate::comm::RankComm| async move {
            let right = (c.rank() + 1) % c.size();
            let left = (c.rank() + c.size() - 1) % c.size();
            c.sendrecv(right, left, 1, vec![1.0; c.rank() + 1], Phase::Other).await;
            c.barrier().await;
            c.rank()
        };
        let a = run_spmd_event(&spec, body);
        let b = run_spmd_event(&spec, body);
        assert_eq!(a.results, b.results);
        assert_eq!(a.stats, b.stats, "virtual times must be bit-identical across runs");
        assert!(a.stats.iter().any(|s| s.time.total_s() > 0.0), "the clock must move");
    }

    #[test]
    fn hundred_thousand_ranks_in_bytes_per_rank() {
        // The headline capability: a world far beyond what per-rank carrier
        // threads could hold, with a real message per rank.
        let p = 100_000;
        let spec = MachineSpec::test_machine(p, 10);
        let out = run_spmd_event(&spec, |mut c| async move {
            let right = (c.rank() + 1) % c.size();
            let left = (c.rank() + c.size() - 1) % c.size();
            c.sendrecv(right, left, 1, vec![c.rank() as f64], Phase::Other).await[0] as usize
        });
        for (r, &got) in out.results.iter().enumerate() {
            assert_eq!(got, (r + p - 1) % p);
        }
    }

    #[test]
    fn explicit_flat_topology_is_bitwise_identical_to_default() {
        use crate::machine::{Placement, Topology};
        let body = |mut c: crate::comm::RankComm| async move {
            let right = (c.rank() + 1) % c.size();
            let left = (c.rank() + c.size() - 1) % c.size();
            c.record_flops(c.rank() as u64);
            c.sendrecv(right, left, 1, vec![1.0; 5], Phase::Other).await;
            c.barrier().await;
        };
        let base = run_spmd_event(&unit_spec(8), body);
        let flat = run_spmd_event(
            &unit_spec(8).with_topology(Topology::Flat).with_placement(Placement::RoundRobin),
            body,
        );
        assert_eq!(base.stats, flat.stats, "flat topology must not perturb the clock");
    }

    #[test]
    fn nic_contention_serializes_cross_node_transfers() {
        use crate::machine::Topology;
        // Two nodes of two ranks. Ranks 0 and 1 (node 0) each send 3 words
        // to ranks 2 and 3 (node 1) at t = 0. Flat would deliver both at 3
        // (distinct receivers); the shared node links store-and-forward:
        //   0→2: up [0,3], down [3,6], injection [6,9]   → rank 2 done at 9
        //   1→3: up [3,6], down [6,9], injection [9,12]  → rank 3 done at 12
        let topo = Topology::NodeNic {
            ranks_per_node: 2,
            nic_factor: 1.0,
        };
        let out = run_spmd_event(&unit_spec(4).with_topology(topo), |mut c| async move {
            match c.rank() {
                0 => c.send(2, 1, vec![0.0; 3], Phase::Other),
                1 => c.send(3, 1, vec![0.0; 3], Phase::Other),
                r => {
                    c.recv(r - 2, 1, Phase::Other).await;
                }
            }
        });
        assert_eq!(out.stats[2].time.total_s(), 9.0);
        assert_eq!(out.stats[3].time.total_s(), 12.0);
        // Word counters are untouched by the topology.
        assert_eq!(out.stats[2].total_recv(), 3);
        assert_eq!(out.stats[3].total_recv(), 3);
    }

    #[test]
    fn intra_node_transfers_skip_the_nic() {
        use crate::machine::Topology;
        // Same exchange but both pairs placed on one node each (block
        // placement puts {0,1} and {2,3} together): rank 0 → 1 stays on-node
        // and costs exactly the flat wire time.
        let topo = Topology::NodeNic {
            ranks_per_node: 2,
            nic_factor: 1.0,
        };
        let out = run_spmd_event(&unit_spec(4).with_topology(topo), |mut c| async move {
            match c.rank() {
                0 => c.send(1, 1, vec![0.0; 3], Phase::Other),
                1 => {
                    c.recv(0, 1, Phase::Other).await;
                }
                _ => {}
            }
        });
        assert_eq!(out.stats[1].time.total_s(), 3.0, "on-node transfer is one injection hop");
    }

    #[test]
    fn recv_timeout_fires_as_virtual_deadline() {
        // Rank 0 parks on a recv that rank 1 satisfies at t ≈ 7; rank 2
        // parks on a recv nobody ever sends. With a 1-virtual-second
        // timeout, popping the t = 7 wake trips rank 2's deadline — the
        // deadline path, not the empty-heap structural path.
        let spec = unit_spec(3).with_recv_timeout(std::time::Duration::from_secs(1));
        let err = try_run_spmd_event(&spec, |mut c| async move {
            match c.rank() {
                0 => {
                    c.recv(1, 1, Phase::Other).await;
                }
                1 => {
                    c.record_flops(5);
                    c.send(0, 1, vec![0.0; 2], Phase::Other);
                }
                _ => {
                    c.recv(0, 9, Phase::Other).await;
                }
            }
        })
        .unwrap_err();
        assert_eq!(
            err,
            ExecError::DeadlockSuspected {
                rank: 2,
                on: Waiting::Message { from: 0, tag: 9 }
            }
        );
    }

    /// A mixed workload for the parallel-vs-sequential bitwise tests:
    /// rank-dependent compute, a ring exchange, a long-distance exchange
    /// with the antipodal rank (all cross-region on any even region count),
    /// and a closing barrier.
    async fn mixed_body(mut c: crate::comm::RankComm) -> usize {
        let p = c.size();
        let r = c.rank();
        c.record_flops((r as u64 % 7) * 1000);
        let right = (r + 1) % p;
        let left = (r + p - 1) % p;
        c.sendrecv(right, left, 1, vec![r as f64; 1 + r % 3], Phase::InputA).await;
        let far = (r + p / 2) % p;
        let got = c.sendrecv(far, far, 2, vec![r as f64], Phase::InputB).await;
        c.barrier().await;
        got[0] as usize
    }

    #[test]
    fn parallel_regions_match_single_thread_bitwise() {
        let spec = MachineSpec::test_machine(64, 1000);
        let seq = try_run_spmd_event(&spec, mixed_body).unwrap();
        for threads in [2, 3, 4, 8] {
            let par = try_run_spmd_event_threads(&spec, threads, mixed_body).unwrap();
            assert_eq!(seq.results, par.results, "{threads} threads: results");
            assert_eq!(
                seq.stats, par.stats,
                "{threads} threads: counters and virtual times must be bitwise-identical"
            );
        }
    }

    #[test]
    fn parallel_all_cross_region_traffic_matches_bitwise() {
        // With 2 regions every exchange below crosses the region boundary:
        // the inbox-drain path carries the whole workload.
        let spec = MachineSpec::test_machine(32, 1000);
        let body = |mut c: crate::comm::RankComm| async move {
            let p = c.size();
            let partner = (c.rank() + p / 2) % p;
            c.record_flops(c.rank() as u64 * 100);
            let got = c.sendrecv(partner, partner, 5, vec![c.rank() as f64; 4], Phase::Other).await;
            c.barrier().await;
            got[0] as usize
        };
        let seq = try_run_spmd_event(&spec, body).unwrap();
        let par = try_run_spmd_event_threads(&spec, 2, body).unwrap();
        assert_eq!(seq.results, par.results);
        assert_eq!(seq.stats, par.stats);
    }

    #[test]
    fn parallel_falls_back_when_contract_is_unprovable() {
        use crate::machine::Topology;
        // α = 0 (no lookahead) and a shared-link topology both clamp to the
        // sequential engine: same stats, bitwise, whatever the thread count.
        let body = |mut c: crate::comm::RankComm| async move {
            let right = (c.rank() + 1) % c.size();
            let left = (c.rank() + c.size() - 1) % c.size();
            c.sendrecv(right, left, 1, vec![1.0; 3], Phase::Other).await;
            c.barrier().await;
        };
        let zero_alpha = unit_spec(8);
        assert_eq!(
            try_run_spmd_event(&zero_alpha, body).unwrap().stats,
            try_run_spmd_event_threads(&zero_alpha, 4, body).unwrap().stats,
        );
        let shared_links = MachineSpec::test_machine(8, 1000).with_topology(Topology::NodeNic {
            ranks_per_node: 2,
            nic_factor: 1.0,
        });
        assert_eq!(
            try_run_spmd_event(&shared_links, body).unwrap().stats,
            try_run_spmd_event_threads(&shared_links, 4, body).unwrap().stats,
        );
    }

    #[test]
    fn parallel_structural_deadlock_is_detected() {
        let spec = MachineSpec::test_machine(8, 1000);
        let err = try_run_spmd_event_threads(&spec, 4, |mut c| async move {
            // Nobody ever sends: every region's heap runs dry with all
            // ranks parked — the boundary leader reports the first rank.
            c.recv((c.rank() + 1) % 8, 9, Phase::Other).await
        })
        .unwrap_err();
        assert_eq!(
            err,
            ExecError::DeadlockSuspected {
                rank: 0,
                on: Waiting::Message { from: 1, tag: 9 }
            }
        );
    }

    #[test]
    fn parallel_cross_region_send_to_exited_rank_is_typed() {
        // Rank 0 (region 0) exits in the first window; rank p-1 (region 1)
        // sends to it cross-region. The boundary drain finds the receiver
        // gone and surfaces the same typed teardown the sequential sender
        // raises inline.
        let spec = MachineSpec::test_machine(8, 1000);
        let err = try_run_spmd_event_threads(&spec, 2, |mut c| async move {
            if c.rank() == 7 {
                c.send(0, 3, vec![1.0], Phase::Other);
                // Keep the sender alive past the boundary so the teardown is
                // the run's only failure.
                c.recv(0, 4, Phase::Other).await;
            }
        })
        .unwrap_err();
        assert_eq!(err, ExecError::WorldTornDown { rank: 7 });
    }

    #[test]
    fn parallel_rma_matches_single_thread_counters() {
        // One-sided traffic across regions between fences; window contents
        // conflict-free, so data and counters agree with the sequential
        // engine (times too: the origin-side charge is rank-local).
        let spec = MachineSpec::test_machine(8, 1000);
        let body = |mut c: crate::comm::RankComm| async move {
            c.win_resize(2);
            c.fence().await;
            let target = (c.rank() + 4) % 8;
            c.put(target, 0, &[c.rank() as f64], Phase::OutputC);
            c.fence().await;
            let got = c.win_local();
            c.fence().await;
            got[0] as usize
        };
        let seq = try_run_spmd_event(&spec, body).unwrap();
        let par = try_run_spmd_event_threads(&spec, 2, body).unwrap();
        assert_eq!(seq.results, par.results);
        assert_eq!(seq.stats, par.stats);
    }

    #[test]
    fn parallel_more_threads_than_ranks_clamps() {
        let spec = MachineSpec::test_machine(3, 1000);
        let out = try_run_spmd_event_threads(&spec, 16, |mut c| async move {
            c.barrier().await;
            c.rank()
        })
        .unwrap();
        assert_eq!(out.results, vec![0, 1, 2]);
    }

    #[test]
    fn generous_recv_timeout_does_not_false_positive() {
        // The same world with the default (120 virtual seconds) timeout
        // completes the satisfied recv and reports the orphan structurally.
        let err = try_run_spmd_event(&unit_spec(3), |mut c| async move {
            match c.rank() {
                0 => {
                    c.recv(1, 1, Phase::Other).await;
                }
                1 => {
                    c.record_flops(5);
                    c.send(0, 1, vec![0.0; 2], Phase::Other);
                }
                _ => {
                    c.recv(0, 9, Phase::Other).await;
                }
            }
        })
        .unwrap_err();
        assert_eq!(
            err,
            ExecError::DeadlockSuspected {
                rank: 2,
                on: Waiting::Message { from: 0, tag: 9 }
            }
        );
    }

    #[test]
    fn livelocked_world_with_inflight_messages_errors_as_deadlock() {
        // α = 0 and zero-word messages freeze every clock at t = 0: ranks 0
        // and 1 ping-pong forever without advancing virtual time, so rank
        // 2's recv deadline can never be outrun by the clock. The frozen-
        // clock poll budget must convert the spin into the same
        // `DeadlockSuspected` the deadline would have produced.
        let spec = unit_spec(3).with_recv_timeout(std::time::Duration::from_secs(1));
        let err = try_run_spmd_event(&spec, |mut c| async move {
            match c.rank() {
                0 => loop {
                    c.send(1, 1, vec![], Phase::Other);
                    c.recv(1, 1, Phase::Other).await;
                },
                1 => loop {
                    c.recv(0, 1, Phase::Other).await;
                    c.send(0, 1, vec![], Phase::Other);
                },
                _ => {
                    c.recv(0, 9, Phase::Other).await;
                }
            }
        })
        .unwrap_err();
        assert!(
            matches!(err, ExecError::DeadlockSuspected { .. }),
            "frozen-clock livelock must surface as DeadlockSuspected, got {err:?}"
        );
    }

    /// A long, barrier-paced workload for the fault tests: every rank has
    /// poll points spread across the whole makespan, so any death scheduled
    /// inside the horizon reliably materializes.
    async fn barrier_paced_body(mut c: crate::comm::RankComm) {
        for _ in 0..10 {
            c.record_flops(100);
            c.barrier().await;
        }
    }

    #[test]
    fn injected_rank_death_surfaces_as_rank_failed() {
        use crate::fault::FaultPlan;
        // unit_spec clocks: 100 s of compute per iteration, 10 iterations —
        // a horizon of 500 s puts the single death squarely mid-run.
        let plan = FaultPlan::new(0xC0FFEE).kill_exactly(1, 500.0);
        assert_eq!(plan.planned_kills(8), 1);
        assert_eq!(plan.survivors(8), 7);
        let sched = plan.schedule(8);
        let (victim, death) = (0..8)
            .filter_map(|r| sched.death_time(r).map(|d| (r, d)))
            .next()
            .expect("one death scheduled");
        let err = try_run_spmd_event(&unit_spec(8).with_faults(plan), barrier_paced_body).unwrap_err();
        assert_eq!(
            err,
            ExecError::RankFailed {
                rank: victim,
                at: death
            }
        );
    }

    #[test]
    fn fault_failure_is_identical_across_event_thread_counts() {
        use crate::fault::FaultPlan;
        // test_machine: 1000 flops ≈ 1 µs per iteration, 20 iterations — a
        // 10 µs horizon schedules all three deaths mid-run. The parallel
        // engine (α = 1 µs > 0, flat topology) must report the exact same
        // typed failure as the sequential engine at every thread count.
        let body = |mut c: crate::comm::RankComm| async move {
            for _ in 0..20 {
                c.record_flops(1000);
                c.barrier().await;
            }
        };
        let plan = FaultPlan::new(42).kill_exactly(3, 10e-6);
        let spec = MachineSpec::test_machine(64, 1000).with_faults(plan);
        let seq = try_run_spmd_event(&spec, body).unwrap_err();
        assert!(matches!(seq, ExecError::RankFailed { .. }), "got {seq:?}");
        for threads in [2, 4, 8] {
            let par = try_run_spmd_event_threads(&spec, threads, body).unwrap_err();
            assert_eq!(seq, par, "{threads} threads: failure attribution must match");
        }
    }

    #[test]
    fn quiescent_fault_plan_is_a_bitwise_no_op() {
        use crate::fault::FaultPlan;
        // A plan with no kills and no drops must not perturb a single
        // counter or virtual timestamp, on either engine.
        let base = MachineSpec::test_machine(64, 1000);
        let armed = base.clone().with_faults(FaultPlan::new(7));
        let plain = try_run_spmd_event(&base, mixed_body).unwrap();
        let quiet = try_run_spmd_event(&armed, mixed_body).unwrap();
        assert_eq!(plain.results, quiet.results);
        assert_eq!(plain.stats, quiet.stats, "quiescent plan must be invisible to the clock");
        let quiet_par = try_run_spmd_event_threads(&armed, 4, mixed_body).unwrap();
        assert_eq!(plain.stats, quiet_par.stats);
    }

    #[test]
    fn dropped_message_starves_receiver_into_rank_failed() {
        use crate::fault::FaultPlan;
        // Every send is dropped: rank 1's recv can never be satisfied, and
        // the structural wedge must be attributed to the starved receiver
        // at the drop's send time — not reported as a plain deadlock.
        let plan = FaultPlan::new(1).drop_rate(1.0);
        let err = try_run_spmd_event(&unit_spec(2).with_faults(plan), |mut c| async move {
            if c.rank() == 0 {
                c.record_flops(3);
                c.send(1, 1, vec![0.0; 2], Phase::Other);
            } else {
                c.recv(0, 1, Phase::Other).await;
            }
        })
        .unwrap_err();
        assert_eq!(err, ExecError::RankFailed { rank: 1, at: 3.0 });
    }

    #[test]
    fn unconsumed_drops_do_not_fail_a_completed_run() {
        use crate::fault::FaultPlan;
        // The same total drop rate, but nobody waits on the lost message:
        // the world completes, and a completed run ignores pure drops.
        let plan = FaultPlan::new(1).drop_rate(1.0);
        let out = try_run_spmd_event(&unit_spec(2).with_faults(plan), |c| async move {
            if c.rank() == 0 {
                c.send(1, 1, vec![0.0; 2], Phase::Other);
            }
            c.record_flops(5);
        })
        .unwrap();
        assert_eq!(out.stats[0].time.compute_s, 5.0);
    }

    #[test]
    fn death_scheduled_past_the_makespan_never_fires() {
        use crate::fault::FaultPlan;
        // The horizon lies entirely beyond the run's end: no rank is ever
        // polled at or past its death time, so the run completes clean.
        let plan = FaultPlan::new(9).kill_exactly(2, 1e9);
        let sched = plan.schedule(4);
        let earliest = (0..4).filter_map(|r| sched.death_time(r)).fold(f64::MAX, f64::min);
        assert!(earliest > 1000.0, "horizon must be far past the ~600 s makespan");
        let out = try_run_spmd_event(&unit_spec(4).with_faults(plan), barrier_paced_body);
        assert!(out.is_ok(), "un-materialized deaths must not fail the run: {out:?}");
    }
}
