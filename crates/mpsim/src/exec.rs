//! The SPMD executors: run one resumable rank body per rank and collect
//! results.
//!
//! Rank bodies are `async` closures over [`RankComm`] —
//! `Fn(RankComm) -> impl Future<Output = R>` — so the same body runs on all
//! three backends of the SPMD contract ([`ExecBackend`]):
//!
//! * **Threaded** — one full OS thread per rank; wait-states block the
//!   thread. Simple and fast for small worlds, capped at
//!   [`MAX_THREADED_RANKS`] ranks.
//! * **Sharded** — `p` simulated ranks multiplexed over a fixed pool of
//!   `workers` runnable slots. Each rank gets a lightweight small-stack
//!   carrier thread, but at most `workers` of them are ever runnable: the
//!   communicator's rendezvous points (a `recv` waiting for a message, a
//!   `barrier`/`fence`) yield the rank's worker slot to the next runnable
//!   rank instead of blocking it (see [`WorkerGate`]). Admission is FIFO, so
//!   runnable ranks are stepped round-robin. Parked ranks still pin their
//!   carrier stacks (~64 KiB touched each), which bounds practical worlds
//!   to a few thousand ranks.
//! * **Event** — no per-rank thread at all: every rank body is compiled by
//!   rustc into a *stackless* resumable state machine, and a single-threaded
//!   scheduler drives all of them as a discrete-event simulation: the ready
//!   queue is a min-heap ordered by each rank's virtual α-β-γ timestamp
//!   (FIFO on ties), so runs also *measure* per-rank virtual time
//!   ([`crate::event`]). A parked rank costs bytes (its suspended state
//!   machine plus a matching-table entry), which is what lets 100k+-rank
//!   worlds execute end-to-end with real messages.
//!
//! [`ExecBackend::auto`] escalates Threaded → Sharded → Event by world size.
//! All three backends are observationally identical: bitwise-equal results
//! and identical per-rank counters (the conformance suite enforces this) —
//! only the event backend additionally fills `RankStats::time`.

use std::collections::{HashSet, VecDeque};
use std::fmt;
use std::future::Future;
use std::sync::{Arc, Mutex, MutexGuard};

use crate::comm::{block_on_ready, Comm, RankComm};
use crate::machine::MachineSpec;
use crate::pool::{BufferPool, PoolStats};
use crate::stats::{RankStats, StatsBoard};

/// Maximum number of simulated ranks the threaded executor accepts. Beyond
/// this, use [`ExecBackend::Sharded`] or [`ExecBackend::Event`] (or
/// [`ExecBackend::auto`], which escalates automatically) — the per-rank word
/// counts are exact either way; the executors exist to validate them with
/// real data.
pub const MAX_THREADED_RANKS: usize = 512;

/// World size past which [`ExecBackend::auto`] escalates from the sharded
/// worker pool to the event-driven executor: each sharded rank pins a
/// carrier stack even while parked, so beyond a few thousand ranks the
/// stackless state machines win on both memory and spawn time.
pub const MAX_SHARDED_RANKS: usize = 8192;

/// Stack size of one sharded rank carrier. Rank bodies keep their working
/// sets on the heap (matrix tiles, message buffers) and recurse at most
/// `log2 p` deep (CARMA's splitting), so a modest fixed stack suffices and
/// keeps 4096-rank worlds cheap.
pub const SHARDED_STACK_BYTES: usize = 1 << 20;

/// How an SPMD world is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecBackend {
    /// One OS thread per rank; at most [`MAX_THREADED_RANKS`] ranks.
    Threaded,
    /// `p` carrier threads multiplexed over `workers` runnable slots; worlds
    /// up to a few thousand ranks.
    Sharded {
        /// Maximum number of concurrently runnable ranks (≥ 1).
        workers: usize,
    },
    /// Event-driven stackless state machines on `threads` scheduler threads;
    /// any world size (verified to p = 1,048,576).
    ///
    /// With `threads: 1` (the [`ExecBackend::event`] shorthand) a single
    /// scheduler thread drives every rank. With `threads > 1` the ranks are
    /// partitioned into contiguous regions, one OS thread each, synchronized
    /// conservatively on windows of virtual time (lookahead = the cost
    /// model's per-message latency α; see [`crate::event`]). Stats — counters
    /// *and* virtual times — are bitwise-identical to the single-threaded
    /// scheduler; parallelism is an implementation detail of wall-clock. The
    /// multi-region path engages only where that contract is provable (flat
    /// topology, α > 0); otherwise the scheduler silently runs its
    /// single-threaded engine.
    Event {
        /// Number of scheduler threads (≥ 1; `0` is treated as 1).
        threads: usize,
    },
}

impl ExecBackend {
    /// The event backend on a single scheduler thread — the form
    /// [`ExecBackend::auto`] escalates to, and the default `threads` for
    /// [`ExecBackend::Event`].
    pub const fn event() -> ExecBackend {
        ExecBackend::Event { threads: 1 }
    }

    /// The backend for a `p`-rank world, escalating by world size:
    ///
    /// * `p ≤` [`MAX_THREADED_RANKS`] (512): [`ExecBackend::Threaded`] — one
    ///   OS thread per rank.
    /// * `p ≤` [`MAX_SHARDED_RANKS`] (8192): [`ExecBackend::Sharded`] over
    ///   [`Self::default_workers`] runnable slots.
    /// * beyond: [`ExecBackend::event`] — the discrete-event scheduler on a
    ///   single thread ([`ExecBackend::Event`] with explicit `threads` is an
    ///   opt-in, never chosen automatically).
    pub fn auto(p: usize) -> ExecBackend {
        if p <= MAX_THREADED_RANKS {
            ExecBackend::Threaded
        } else if p <= MAX_SHARDED_RANKS {
            ExecBackend::Sharded {
                workers: Self::default_workers(),
            }
        } else {
            ExecBackend::event()
        }
    }

    /// Default sharded worker-pool size: the machine's available parallelism.
    pub fn default_workers() -> usize {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(8)
    }
}

impl fmt::Display for ExecBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecBackend::Threaded => write!(f, "threaded"),
            ExecBackend::Sharded { workers } => write!(f, "sharded({workers})"),
            ExecBackend::Event { threads } if *threads <= 1 => write!(f, "event"),
            ExecBackend::Event { threads } => write!(f, "event({threads})"),
        }
    }
}

/// A backend name failed to parse (see [`ExecBackend`]'s
/// [`FromStr`](std::str::FromStr) impl).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBackendError {
    /// The unparsable name.
    pub name: String,
}

impl fmt::Display for ParseBackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown execution backend {:?} (want threaded | sharded | sharded(N) | event | event(N))",
            self.name
        )
    }
}

impl std::error::Error for ParseBackendError {}

impl std::str::FromStr for ExecBackend {
    type Err = ParseBackendError;

    /// Parse the [`Display`](std::fmt::Display) form back: `threaded`,
    /// `event`, `event(N)`, `sharded(N)` — plus bare `sharded`, which takes
    /// [`ExecBackend::default_workers`]. (`auto` is not a backend: it needs
    /// a world size — callers resolve it with [`ExecBackend::auto`].)
    fn from_str(s: &str) -> Result<Self, ParseBackendError> {
        let err = || ParseBackendError { name: s.to_string() };
        let parse_count = |inner: &str| -> Result<usize, ParseBackendError> {
            let n: usize = inner.parse().map_err(|_| err())?;
            if n == 0 {
                return Err(err());
            }
            Ok(n)
        };
        match s.to_ascii_lowercase().as_str() {
            "threaded" => Ok(ExecBackend::Threaded),
            "event" => Ok(ExecBackend::event()),
            "sharded" => Ok(ExecBackend::Sharded {
                workers: Self::default_workers(),
            }),
            lower => {
                if let Some(inner) = lower
                    .strip_prefix("event(")
                    .and_then(|r| r.strip_suffix(')'))
                    .or_else(|| lower.strip_prefix("event:"))
                {
                    return Ok(ExecBackend::Event {
                        threads: parse_count(inner)?,
                    });
                }
                let inner = lower
                    .strip_prefix("sharded(")
                    .and_then(|r| r.strip_suffix(')'))
                    .or_else(|| lower.strip_prefix("sharded:"))
                    .ok_or_else(err)?;
                Ok(ExecBackend::Sharded {
                    workers: parse_count(inner)?,
                })
            }
        }
    }
}

/// What a deadlock-suspected rank was parked on (see
/// [`ExecError::DeadlockSuspected`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Waiting {
    /// A `recv(from, tag)` whose matching message never arrived.
    Message {
        /// The awaited sender.
        from: usize,
        /// The awaited tag.
        tag: u64,
    },
    /// A world barrier some rank never reached.
    Barrier,
    /// Something outside the communicator: the rank returned `Pending`
    /// without registering a wait (e.g. a rank body awaited a foreign
    /// future, which the event scheduler can never re-wake).
    Unknown,
}

impl fmt::Display for Waiting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Waiting::Message { from, tag } => write!(f, "a message from rank {from} with tag {tag}"),
            Waiting::Barrier => write!(f, "the world barrier"),
            Waiting::Unknown => {
                write!(f, "something outside the communicator (a non-RankComm future can never be re-woken)")
            }
        }
    }
}

/// Why an executor refused to run a world (before any rank started), or
/// rejected a finished or wedged one — the typed surface that keeps
/// threaded/sharded deadlocks from aborting the process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExecError {
    /// The threaded backend's rank cap was exceeded.
    WorldTooLarge {
        /// Requested world size.
        p: usize,
        /// The threaded cap ([`MAX_THREADED_RANKS`]).
        max: usize,
    },
    /// A sharded pool of zero workers can never step any rank.
    NoWorkers,
    /// A rank's tracked working set exceeded the machine's enforced per-rank
    /// memory budget ([`MachineSpec::mem_budget`]). Raised identically by
    /// all three backends — the budget check runs on the measured
    /// `peak_mem_words` counters, which the backends share.
    MemBudgetExceeded {
        /// First offending rank.
        rank: usize,
        /// Its measured peak working set, in words.
        need: u64,
        /// The enforced budget `S`, in words.
        budget: u64,
    },
    /// A rank could not make progress: on the event backend, no rank was
    /// runnable while some were unfinished (structural detection), or a
    /// parked `recv` outlived [`MachineSpec::recv_timeout`] in *virtual*
    /// time while other ranks kept advancing; on the blocking backends, a
    /// `recv` waited past the same timeout in wall-clock time (e.g. a
    /// mismatched tag).
    DeadlockSuspected {
        /// The first stuck rank.
        rank: usize,
        /// What it was parked on.
        on: Waiting,
    },
    /// A rank found its world torn down mid-operation — a peer exited (or
    /// failed) while this rank still had communication in flight with it.
    WorldTornDown {
        /// The rank that observed the teardown.
        rank: usize,
    },
    /// A rank was killed by the machine's fault-injection plan
    /// ([`MachineSpec::faults`](crate::machine::MachineSpec)) and the world
    /// could not complete without it. Carries the earliest *scheduled*
    /// casualty of the plan — a schedule-derived attribution, so the
    /// single-threaded and multi-region event engines report the same
    /// failure — or, for a pure message-loss wedge, the starved receiver
    /// of the first lost message. A recovery driver can re-fit the problem
    /// to [`FaultPlan::survivors`](crate::fault::FaultPlan::survivors) and
    /// re-run clean.
    RankFailed {
        /// The failed rank (earliest scheduled death; ties by rank).
        rank: usize,
        /// Its virtual death time, seconds.
        at: f64,
    },
}

// `at` is derived from a finite fault horizon and never NaN, so equality is
// reflexive despite the f64 field.
impl Eq for ExecError {}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::WorldTooLarge { p, max } => write!(
                f,
                "threaded execution supports at most {max} ranks (got {p}); \
                 use ExecBackend::Sharded or ExecBackend::Event for larger worlds \
                 (ExecBackend::auto escalates by world size)"
            ),
            ExecError::NoWorkers => write!(f, "sharded execution needs at least one worker"),
            ExecError::MemBudgetExceeded { rank, need, budget } => write!(
                f,
                "rank {rank} peaked at {need} words of working memory, exceeding the \
                 enforced per-rank budget S = {budget} (MachineSpec::with_mem_budget)"
            ),
            ExecError::DeadlockSuspected { rank, on } => {
                write!(f, "deadlock suspected: rank {rank} waited on {on} that can no longer arrive")
            }
            ExecError::WorldTornDown { rank } => write!(
                f,
                "rank {rank}: world torn down mid-operation (a peer exited with \
                 communication still in flight)"
            ),
            ExecError::RankFailed { rank, at } => write!(
                f,
                "rank {rank} failed at virtual t = {at:.6}s (injected fault) and the \
                 world could not complete without it; replan for the surviving ranks \
                 (FaultPlan::survivors) and re-run"
            ),
        }
    }
}

impl std::error::Error for ExecError {}

/// Results and measured statistics of an SPMD run.
#[derive(Debug)]
pub struct RunOutput<R> {
    /// Per-rank return values, indexed by rank.
    pub results: Vec<R>,
    /// Per-rank measured statistics (the mpiP-equivalent numbers).
    pub stats: Vec<RankStats>,
    /// Buffer-arena counters of the run (allocations vs. recycled hits).
    /// Display-only: recycling is bitwise-invisible to `results` and
    /// `stats`, and these counters are *not* part of the determinism
    /// contract — hit/miss splits depend on scheduling order.
    pub pool: PoolStats,
}

/// The shared budget gate of all three backends: with an enforcing
/// [`MachineSpec::mem_budget`], a finished run in which any rank's measured
/// peak working set exceeds the budget becomes a typed
/// [`ExecError::MemBudgetExceeded`] instead of an output.
fn enforce_mem_budget<R>(spec: &MachineSpec, out: RunOutput<R>) -> Result<RunOutput<R>, ExecError> {
    if let Some(budget) = spec.mem_budget {
        for (rank, st) in out.stats.iter().enumerate() {
            if st.peak_mem_words > budget {
                return Err(ExecError::MemBudgetExceeded {
                    rank,
                    need: st.peak_mem_words,
                    budget,
                });
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// The worker gate: the sharded scheduler's admission control
// ---------------------------------------------------------------------------

/// FIFO admission gate of the sharded executor: at most `workers` ranks hold
/// a runnable slot at any moment.
///
/// A rank acquires a slot before running user code and *suspends* (returns
/// its slot) at every rendezvous that would block — waiting for a message,
/// standing at a barrier. Release hands the freed slot directly to the
/// longest-waiting rank (one targeted `unpark`, no thundering herd), so
/// runnable ranks are admitted round-robin and a parked rank never pins a
/// worker.
pub struct WorkerGate {
    state: Mutex<GateQueue>,
}

struct GateQueue {
    /// Unassigned slots.
    free: usize,
    /// Ranks waiting for a slot, FIFO.
    queue: VecDeque<(u64, std::thread::Thread)>,
    /// Tickets whose slot was handed over but whose thread has not resumed.
    granted: HashSet<u64>,
    next_ticket: u64,
}

impl WorkerGate {
    /// A gate admitting `workers` concurrently runnable ranks.
    ///
    /// # Panics
    /// Panics if `workers` is zero.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "the worker pool needs at least one slot");
        WorkerGate {
            state: Mutex::new(GateQueue {
                free: workers,
                queue: VecDeque::new(),
                granted: HashSet::new(),
                next_ticket: 0,
            }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, GateQueue> {
        // A poisoned gate means a rank panicked; let that panic surface.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Block until a runnable slot is free (FIFO order).
    pub fn acquire(&self) {
        let ticket = {
            let mut st = self.lock();
            if st.free > 0 && st.queue.is_empty() {
                st.free -= 1;
                return;
            }
            let ticket = st.next_ticket;
            st.next_ticket += 1;
            st.queue.push_back((ticket, std::thread::current()));
            ticket
        };
        loop {
            std::thread::park();
            if self.lock().granted.remove(&ticket) {
                return;
            }
        }
    }

    /// Return a slot, handing it to the longest-waiting rank if any.
    pub fn release(&self) {
        let mut st = self.lock();
        if let Some((ticket, thread)) = st.queue.pop_front() {
            // The slot transfers directly: `free` stays unchanged.
            st.granted.insert(ticket);
            thread.unpark();
        } else {
            st.free += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// Runners
// ---------------------------------------------------------------------------

/// Run the rank body `f` on every rank of `spec` under `backend` and collect
/// results. The body receives its [`RankComm`] by value and returns a
/// future; on the threaded/sharded backends the future is driven on the
/// rank's own thread (wait-states block it), on the event backend all bodies
/// are stackless state machines on one scheduler thread.
///
/// # Errors
/// [`ExecError::WorldTooLarge`] when the threaded backend is asked for more
/// than [`MAX_THREADED_RANKS`] ranks; [`ExecError::NoWorkers`] for an empty
/// sharded pool; [`ExecError::MemBudgetExceeded`] when the machine enforces
/// a per-rank memory budget ([`MachineSpec::mem_budget`]) and a rank's
/// measured peak working set breaks it — on any backend.
///
/// # Panics
/// Panics if any rank panics (the panic is propagated).
pub fn run_spmd_with<R, F, Fut>(
    spec: &MachineSpec,
    backend: ExecBackend,
    f: F,
) -> Result<RunOutput<R>, ExecError>
where
    R: Send,
    F: Fn(RankComm) -> Fut + Sync,
    Fut: Future<Output = R>,
{
    let out = match backend {
        ExecBackend::Threaded => {
            if spec.p > MAX_THREADED_RANKS {
                return Err(ExecError::WorldTooLarge {
                    p: spec.p,
                    max: MAX_THREADED_RANKS,
                });
            }
            run_world(spec, None, spec_arena(spec), f)?
        }
        ExecBackend::Sharded { workers } => {
            if workers == 0 {
                return Err(ExecError::NoWorkers);
            }
            run_world(spec, Some(Arc::new(WorkerGate::new(workers.min(spec.p)))), spec_arena(spec), f)?
        }
        ExecBackend::Event { threads } if threads > 1 => {
            crate::event::try_run_spmd_event_threads_pooled(spec, threads, f, spec_arena(spec))?
        }
        ExecBackend::Event { .. } => {
            crate::event::try_run_spmd_event_threads_pooled(spec, 1, f, spec_arena(spec))?
        }
    };
    enforce_mem_budget(spec, out)
}

/// A fresh per-run arena honouring [`MachineSpec::pooling`]. A disabled
/// arena hands out plain allocations and drops returns, so a `pooling:
/// false` run exercises the exact pre-arena allocation behaviour.
fn spec_arena(spec: &MachineSpec) -> Arc<BufferPool> {
    Arc::new(BufferPool::new(spec.pooling))
}

/// A shareable admission pool for the sharded executor: many *independent*
/// worlds run over one [`WorkerGate`], so their combined runnable ranks —
/// not each world's separately — are capped at the pool's worker count.
///
/// [`run_spmd_with`] builds a private gate per run, which is right for one
/// world at a time but lets `k` concurrent runs oversubscribe the machine
/// `k`-fold. A serving layer executing many tenants concurrently clones one
/// `SchedulerPool` (cheap: it is an [`Arc`] handle) into every run instead.
#[derive(Clone)]
pub struct SchedulerPool {
    gate: Arc<WorkerGate>,
    workers: usize,
    /// One warm buffer arena shared by every world run over this pool:
    /// buffers recycled by one job are reused by the next instead of being
    /// reallocated per request.
    arena: Arc<BufferPool>,
}

impl SchedulerPool {
    /// A pool admitting `workers` concurrently runnable ranks across all
    /// worlds that share it.
    ///
    /// # Errors
    /// [`ExecError::NoWorkers`] when `workers` is zero.
    pub fn new(workers: usize) -> Result<Self, ExecError> {
        if workers == 0 {
            return Err(ExecError::NoWorkers);
        }
        Ok(SchedulerPool {
            gate: Arc::new(WorkerGate::new(workers)),
            workers,
            arena: BufferPool::shared(),
        })
    }

    /// The pool's total runnable-rank slots.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The pool's shared buffer arena (one warm arena across all jobs).
    pub fn arena(&self) -> &Arc<BufferPool> {
        &self.arena
    }
}

impl fmt::Debug for SchedulerPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SchedulerPool").field("workers", &self.workers).finish()
    }
}

/// Run the rank body `f` on every rank of `spec` with admission control from
/// a *shared* [`SchedulerPool`] instead of a per-run gate: the sharded-
/// backend counterpart of [`run_spmd_with`] for concurrent independent
/// worlds. Unlike the per-run path, the pool's worker count is **not**
/// capped at `spec.p` — the spare slots belong to the other worlds sharing
/// the pool.
///
/// # Errors
/// As [`run_spmd_with`] on the sharded backend: a deadlocked or budget-
/// breaking world surfaces as a typed [`ExecError`].
///
/// # Panics
/// Panics if any rank panics (the panic is propagated).
pub fn run_spmd_pooled<R, F, Fut>(
    spec: &MachineSpec,
    pool: &SchedulerPool,
    f: F,
) -> Result<RunOutput<R>, ExecError>
where
    R: Send,
    F: Fn(RankComm) -> Fut + Sync,
    Fut: Future<Output = R>,
{
    // `pooling: false` opts a run out of the shared arena too — a disabled
    // stand-in keeps the run allocation-for-allocation identical to the
    // pre-arena behaviour without cooling other tenants' warm buffers.
    let arena = if spec.pooling {
        pool.arena.clone()
    } else {
        Arc::new(BufferPool::disabled())
    };
    let out = run_world(spec, Some(pool.gate.clone()), arena, f)?;
    enforce_mem_budget(spec, out)
}

/// Legacy entry point: run `f` on every rank of `spec` concurrently on the
/// threaded backend and collect results. Prefer [`run_spmd_with`], whose
/// typed [`ExecError`] distinguishes a world the backend refuses (the
/// documented threaded rank cap) from a run that wedged
/// ([`ExecError::DeadlockSuspected`]) — this wrapper can only panic.
///
/// # Panics
/// Panics if any rank panics (the panic is propagated), or on any typed
/// executor error — most commonly `spec.p > MAX_THREADED_RANKS`; use
/// [`run_spmd_with`] with [`ExecBackend::Sharded`]/[`ExecBackend::Event`]
/// (or [`ExecBackend::auto`]) for larger worlds.
pub fn run_spmd<R, F, Fut>(spec: &MachineSpec, f: F) -> RunOutput<R>
where
    R: Send,
    F: Fn(RankComm) -> Fut + Sync,
    Fut: Future<Output = R>,
{
    match run_spmd_with(spec, ExecBackend::Threaded, f) {
        Ok(out) => out,
        Err(e) => panic!("{e}"),
    }
}

/// The shared blocking-backend skeleton: spawn one carrier per rank, drive
/// each rank's body future on its own thread, join in rank order. Gated
/// (sharded) worlds get small-stack carriers and acquire their admission
/// slot on their own thread before user code; the slot is returned when the
/// body finishes or panics (the communicator's gate handle releases on
/// drop). `Comm::gate_enter` is a no-op on ungated (threaded) worlds.
///
/// A rank that fails with a *typed* refusal — the communicator's deadlock
/// guard or a torn-down world, which unwind with an [`ExecError`] panic
/// payload — is caught here and surfaced as `Err` instead of aborting the
/// run; any other rank panic is propagated unchanged.
fn run_world<R, F, Fut>(
    spec: &MachineSpec,
    gate: Option<Arc<WorkerGate>>,
    pool: Arc<BufferPool>,
    f: F,
) -> Result<RunOutput<R>, ExecError>
where
    R: Send,
    F: Fn(RankComm) -> Fut + Sync,
    Fut: Future<Output = R>,
{
    let stats = Arc::new(StatsBoard::new(spec.p));
    let pool_stats_src = pool.clone();
    let comms = Comm::create_world_gated(spec.p, stats.clone(), gate.clone(), spec.recv_timeout, pool);
    let mut slots: Vec<Option<R>> = (0..spec.p).map(|_| None).collect();
    let mut failures: Vec<ExecError> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|c| {
                let f = &f;
                let body = move || {
                    c.gate_enter();
                    block_on_ready(f(RankComm::Blocking(c)))
                };
                match &gate {
                    Some(_) => std::thread::Builder::new()
                        .stack_size(SHARDED_STACK_BYTES)
                        .spawn_scoped(s, body)
                        .expect("spawn rank carrier"),
                    None => s.spawn(body),
                }
            })
            .collect();
        for (slot, h) in slots.iter_mut().zip(handles) {
            match h.join() {
                Ok(v) => *slot = Some(v),
                Err(payload) => match payload.downcast::<ExecError>() {
                    Ok(e) => failures.push(*e),
                    Err(payload) => std::panic::resume_unwind(payload),
                },
            }
        }
    });
    if !failures.is_empty() {
        // A deadlock is the root cause; torn-down-world failures on other
        // ranks are its fallout. Within a kind, report the lowest rank
        // (failures arrive in join = rank order).
        let root = failures
            .iter()
            .find(|e| matches!(e, ExecError::DeadlockSuspected { .. }))
            .unwrap_or(&failures[0]);
        return Err(*root);
    }
    Ok(RunOutput {
        results: slots.into_iter().map(|s| s.expect("missing rank result")).collect(),
        stats: stats.snapshot(),
        pool: pool_stats_src.stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Phase;

    #[test]
    fn results_are_rank_ordered() {
        let spec = MachineSpec::test_machine(8, 1000);
        let out = run_spmd(&spec, |c| async move { c.rank() * 10 });
        assert_eq!(out.results, vec![0, 10, 20, 30, 40, 50, 60, 70]);
        assert_eq!(out.stats.len(), 8);
    }

    #[test]
    fn stats_reflect_execution() {
        let spec = MachineSpec::test_machine(4, 1000);
        let out = run_spmd(&spec, |mut c| async move {
            // Everyone sends rank+1 words to rank 0.
            if c.rank() != 0 {
                c.send(0, 1, vec![0.0; c.rank() + 1], Phase::OutputC);
                0u64
            } else {
                let mut total = 0u64;
                for from in 1..c.size() {
                    total += c.recv(from, 1, Phase::OutputC).await.len() as u64;
                }
                total
            }
        });
        assert_eq!(out.results[0], 2 + 3 + 4);
        assert_eq!(out.stats[0].total_recv(), 9);
        assert_eq!(out.stats[2].total_sent(), 3);
    }

    #[test]
    fn barrier_synchronizes() {
        let spec = MachineSpec::test_machine(6, 1000);
        let out = run_spmd(&spec, |mut c| async move {
            c.barrier().await;
            c.rank()
        });
        assert_eq!(out.results.len(), 6);
    }

    #[test]
    #[should_panic(expected = "threaded execution supports at most")]
    fn rank_limit_enforced() {
        let spec = MachineSpec::test_machine(MAX_THREADED_RANKS + 1, 10);
        let _ = run_spmd(&spec, |_| async move {});
    }

    #[test]
    fn threaded_backend_rejects_large_worlds_typed() {
        let spec = MachineSpec::test_machine(MAX_THREADED_RANKS + 1, 10);
        let err = run_spmd_with(&spec, ExecBackend::Threaded, |_| async move {}).unwrap_err();
        assert_eq!(
            err,
            ExecError::WorldTooLarge {
                p: MAX_THREADED_RANKS + 1,
                max: MAX_THREADED_RANKS
            }
        );
        assert!(err.to_string().contains("Sharded"));
        assert!(err.to_string().contains("Event"));
    }

    #[test]
    fn sharded_rejects_empty_pool() {
        let spec = MachineSpec::test_machine(4, 10);
        let err = run_spmd_with(&spec, ExecBackend::Sharded { workers: 0 }, |_| async move {}).unwrap_err();
        assert_eq!(err, ExecError::NoWorkers);
    }

    #[test]
    fn auto_escalates_threaded_sharded_event() {
        assert_eq!(ExecBackend::auto(1), ExecBackend::Threaded);
        assert_eq!(ExecBackend::auto(MAX_THREADED_RANKS), ExecBackend::Threaded);
        assert!(matches!(
            ExecBackend::auto(MAX_THREADED_RANKS + 1),
            ExecBackend::Sharded { workers } if workers >= 1
        ));
        assert!(matches!(ExecBackend::auto(MAX_SHARDED_RANKS), ExecBackend::Sharded { .. }));
        assert_eq!(ExecBackend::auto(MAX_SHARDED_RANKS + 1), ExecBackend::event());
        assert_eq!(ExecBackend::auto(131_072), ExecBackend::event());
    }

    #[test]
    fn sharded_results_are_rank_ordered() {
        let spec = MachineSpec::test_machine(24, 1000);
        let out = run_spmd_with(&spec, ExecBackend::Sharded { workers: 3 }, |c| async move { c.rank() * 10 })
            .unwrap();
        assert_eq!(out.results, (0..24).map(|r| r * 10).collect::<Vec<_>>());
    }

    #[test]
    fn sharded_runs_worlds_beyond_the_threaded_cap() {
        // More ranks than the threaded cap, far more ranks than workers;
        // every rank exchanges with a neighbour, so the gate must hand slots
        // between parked and runnable ranks without deadlocking.
        let p = MAX_THREADED_RANKS + 160;
        let spec = MachineSpec::test_machine(p, 1000);
        let out = run_spmd_with(&spec, ExecBackend::Sharded { workers: 4 }, |mut c| async move {
            let right = (c.rank() + 1) % c.size();
            let left = (c.rank() + c.size() - 1) % c.size();
            let got = c.sendrecv(right, left, 7, vec![c.rank() as f64], Phase::Other).await;
            got[0] as usize
        })
        .unwrap();
        for (r, &got) in out.results.iter().enumerate() {
            assert_eq!(got, (r + p - 1) % p);
        }
    }

    #[test]
    fn sharded_single_worker_makes_progress_through_rendezvous() {
        // workers = 1 is the harshest schedule: every recv/barrier must yield
        // the lone slot or the world deadlocks.
        let spec = MachineSpec::test_machine(8, 1000);
        let out = run_spmd_with(&spec, ExecBackend::Sharded { workers: 1 }, |mut c| async move {
            c.barrier().await;
            let got = if c.rank() == 0 {
                for to in 1..c.size() {
                    c.send(to, 1, vec![to as f64], Phase::Other);
                }
                0.0
            } else {
                c.recv(0, 1, Phase::Other).await[0]
            };
            c.barrier().await;
            got
        });
        let out = match out {
            Ok(o) => o,
            Err(e) => panic!("{e}"),
        };
        for r in 1..8 {
            assert_eq!(out.results[r], r as f64);
        }
    }

    #[test]
    fn all_three_backends_measure_identically() {
        let spec = MachineSpec::test_machine(16, 1000);
        let pattern = |mut c: RankComm| async move {
            let right = (c.rank() + 1) % c.size();
            let left = (c.rank() + c.size() - 1) % c.size();
            c.sendrecv(right, left, 3, vec![1.0; c.rank() + 1], Phase::InputA).await;
            c.barrier().await;
            c.rank()
        };
        let counters = |out: &RunOutput<usize>| out.stats.iter().map(|s| s.sans_time()).collect::<Vec<_>>();
        let threaded = run_spmd_with(&spec, ExecBackend::Threaded, pattern).unwrap();
        let sharded = run_spmd_with(&spec, ExecBackend::Sharded { workers: 2 }, pattern).unwrap();
        let event = run_spmd_with(&spec, ExecBackend::event(), pattern).unwrap();
        assert_eq!(threaded.results, sharded.results);
        assert_eq!(threaded.stats, sharded.stats);
        assert_eq!(threaded.results, event.results);
        // Counters are identical; only the event backend drives the virtual
        // clock, so its time fields are the extra measurement.
        assert_eq!(counters(&threaded), counters(&event));
        assert!(event.stats.iter().all(|s| s.time.total_s() > 0.0));
        assert!(threaded.stats.iter().all(|s| s.time.total_s() == 0.0));
    }

    #[test]
    fn mismatched_tag_deadlock_is_typed_on_blocking_backends() {
        // Rank 0 sends tag 7 but rank 1 waits for tag 8 — a classic
        // mismatched-tag deadlock. The recv_timeout guard turns it into a
        // typed error instead of a process abort, on both blocking backends.
        let spec =
            MachineSpec::test_machine(2, 1000).with_recv_timeout(std::time::Duration::from_millis(200));
        for backend in [ExecBackend::Threaded, ExecBackend::Sharded { workers: 2 }] {
            let err = run_spmd_with(&spec, backend, |mut c| async move {
                if c.rank() == 0 {
                    c.send(1, 7, vec![1.0], Phase::Other);
                }
                c.recv((c.rank() + 1) % 2, 8, Phase::Other).await
            })
            .unwrap_err();
            assert!(
                matches!(
                    err,
                    ExecError::DeadlockSuspected {
                        on: Waiting::Message { tag: 8, .. },
                        ..
                    }
                ),
                "{backend}: {err}"
            );
            assert!(err.to_string().contains("deadlock suspected"), "{backend}: {err}");
        }
    }

    #[test]
    fn event_deadlock_is_typed_through_run_spmd_with() {
        let spec = MachineSpec::test_machine(2, 1000);
        let err = run_spmd_with(&spec, ExecBackend::event(), |mut c| async move {
            c.recv((c.rank() + 1) % 2, 9, Phase::Other).await
        })
        .unwrap_err();
        assert_eq!(
            err,
            ExecError::DeadlockSuspected {
                rank: 0,
                on: Waiting::Message { from: 1, tag: 9 }
            }
        );
    }

    #[test]
    fn event_backend_runs_worlds_beyond_the_sharded_threshold() {
        // A world past the auto sharded threshold: stackless ranks exchange
        // with a neighbour and everything completes on one scheduler thread.
        let p = MAX_SHARDED_RANKS + 1000;
        let spec = MachineSpec::test_machine(p, 1000);
        let out = run_spmd_with(&spec, ExecBackend::event(), |mut c| async move {
            let right = (c.rank() + 1) % c.size();
            let left = (c.rank() + c.size() - 1) % c.size();
            let got = c.sendrecv(right, left, 7, vec![c.rank() as f64], Phase::Other).await;
            c.barrier().await;
            got[0] as usize
        })
        .unwrap();
        for (r, &got) in out.results.iter().enumerate() {
            assert_eq!(got, (r + p - 1) % p);
        }
    }

    #[test]
    #[ignore = "xl world (131072 ranks); run with --ignored"]
    fn ring_exchange_131072_ranks_stackless() {
        // The raw-executor form of the acceptance criterion: p = 131072 with
        // a real message per rank, far beyond any carrier-thread backend.
        let p = 131_072;
        let spec = MachineSpec::test_machine(p, 10);
        let out = run_spmd_with(&spec, ExecBackend::event(), |mut c| async move {
            let right = (c.rank() + 1) % c.size();
            let left = (c.rank() + c.size() - 1) % c.size();
            let got = c.sendrecv(right, left, 1, vec![c.rank() as f64], Phase::Other).await;
            got[0] as usize
        })
        .unwrap();
        for (r, &got) in out.results.iter().enumerate() {
            assert_eq!(got, (r + p - 1) % p);
        }
    }

    #[test]
    fn worker_gate_is_fifo_and_conserves_slots() {
        let gate = Arc::new(WorkerGate::new(2));
        gate.acquire();
        gate.acquire();
        // Both slots held: a queued acquire must wait until a release.
        let g = gate.clone();
        let waiter = std::thread::spawn(move || {
            g.acquire();
            g.release();
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!waiter.is_finished(), "no free slot yet");
        gate.release();
        waiter.join().unwrap();
        gate.release();
        // Both slots free again.
        gate.acquire();
        gate.acquire();
        gate.release();
        gate.release();
    }

    #[test]
    fn mem_budget_violation_is_typed_on_every_backend() {
        // Each rank allocates rank+1 words; with a budget of 2, rank 2 is
        // the first offender — on all three backends identically.
        let spec = MachineSpec::test_machine(4, 1000).with_mem_budget(2);
        for backend in [
            ExecBackend::Threaded,
            ExecBackend::Sharded { workers: 2 },
            ExecBackend::event(),
        ] {
            let err = run_spmd_with(&spec, backend, |c| async move {
                c.track_alloc(c.rank() as u64 + 1);
            })
            .unwrap_err();
            assert_eq!(
                err,
                ExecError::MemBudgetExceeded {
                    rank: 2,
                    need: 3,
                    budget: 2
                },
                "{backend}"
            );
            assert!(err.to_string().contains("per-rank budget"));
        }
    }

    #[test]
    fn mem_budget_within_limit_passes_and_freed_memory_does_not_count() {
        let spec = MachineSpec::test_machine(2, 1000).with_mem_budget(10);
        let out = run_spmd_with(&spec, ExecBackend::Threaded, |c| async move {
            // Peak 10, then shrink: stays exactly at the budget.
            c.track_alloc(10);
            c.track_free(8);
            c.track_alloc(2);
            c.rank()
        })
        .unwrap();
        assert_eq!(out.results, vec![0, 1]);
        assert!(out.stats.iter().all(|s| s.peak_mem_words == 10));
    }

    #[test]
    fn advisory_memory_never_errors() {
        // Without an enforcing budget, over-allocation is only measured.
        let spec = MachineSpec::test_machine(2, 10);
        let out = run_spmd_with(&spec, ExecBackend::event(), |c| async move {
            c.track_alloc(10_000);
        })
        .unwrap();
        assert_eq!(out.stats[0].peak_mem_words, 10_000);
    }

    #[test]
    fn backend_display_names() {
        assert_eq!(ExecBackend::Threaded.to_string(), "threaded");
        assert_eq!(ExecBackend::Sharded { workers: 6 }.to_string(), "sharded(6)");
        assert_eq!(ExecBackend::event().to_string(), "event");
        assert_eq!(ExecBackend::Event { threads: 4 }.to_string(), "event(4)");
    }

    #[test]
    fn backend_from_str_round_trips_display() {
        for backend in [
            ExecBackend::Threaded,
            ExecBackend::Sharded { workers: 6 },
            ExecBackend::event(),
            ExecBackend::Event { threads: 4 },
        ] {
            assert_eq!(backend.to_string().parse::<ExecBackend>().unwrap(), backend);
        }
    }

    #[test]
    fn backend_from_str_accepts_aliases() {
        assert_eq!("THREADED".parse::<ExecBackend>().unwrap(), ExecBackend::Threaded);
        assert_eq!("sharded:4".parse::<ExecBackend>().unwrap(), ExecBackend::Sharded { workers: 4 });
        assert_eq!(
            "sharded".parse::<ExecBackend>().unwrap(),
            ExecBackend::Sharded {
                workers: ExecBackend::default_workers()
            }
        );
    }

    #[test]
    fn backend_from_str_rejects_garbage() {
        for bad in ["", "auto", "sharded(0)", "sharded(x)", "sharded(", "evented"] {
            let err = bad.parse::<ExecBackend>().unwrap_err();
            assert_eq!(err.name, bad);
            assert!(err.to_string().contains("unknown execution backend"), "{err}");
        }
    }

    #[test]
    fn scheduler_pool_rejects_zero_workers() {
        assert!(matches!(SchedulerPool::new(0), Err(ExecError::NoWorkers)));
        assert_eq!(SchedulerPool::new(3).unwrap().workers(), 3);
    }

    #[test]
    fn pooled_run_matches_private_gate_run() {
        let spec = MachineSpec::test_machine(8, 1000);
        let pool = SchedulerPool::new(2).unwrap();
        let body = |mut c: RankComm| async move {
            let right = (c.rank() + 1) % c.size();
            let left = (c.rank() + c.size() - 1) % c.size();
            let got = c.sendrecv(right, left, 7, vec![c.rank() as f64], Phase::Other).await;
            got[0] as usize
        };
        let pooled = run_spmd_pooled(&spec, &pool, body).unwrap();
        let private = run_spmd_with(&spec, ExecBackend::Sharded { workers: 2 }, body).unwrap();
        assert_eq!(pooled.results, private.results);
        assert_eq!(pooled.stats, private.stats);
    }

    #[test]
    fn one_pool_runs_many_concurrent_worlds() {
        // Four 8-rank worlds share 3 runnable slots; each world's ring
        // exchange must still complete and count traffic exactly as a solo
        // run over a same-sized private gate.
        let body = |mut c: RankComm| async move {
            let right = (c.rank() + 1) % c.size();
            let left = (c.rank() + c.size() - 1) % c.size();
            let got = c.sendrecv(right, left, 7, vec![c.rank() as f64], Phase::Other).await;
            got[0] as usize
        };
        let pool = SchedulerPool::new(3).unwrap();
        let solo = {
            let spec = MachineSpec::test_machine(8, 1000);
            run_spmd_with(&spec, ExecBackend::Sharded { workers: 3 }, body).unwrap()
        };
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let pool = pool.clone();
                    s.spawn(move || {
                        let spec = MachineSpec::test_machine(8, 1000);
                        run_spmd_pooled(&spec, &pool, body).unwrap()
                    })
                })
                .collect();
            for h in handles {
                let out = h.join().unwrap();
                assert_eq!(out.results, solo.results);
                assert_eq!(out.stats, solo.stats);
            }
        });
    }

    #[test]
    fn pooled_run_enforces_mem_budget() {
        let spec = MachineSpec::test_machine(2, 1000).with_mem_budget(1);
        let pool = SchedulerPool::new(2).unwrap();
        let err = run_spmd_pooled(&spec, &pool, |c| async move {
            c.track_alloc(5);
        })
        .unwrap_err();
        assert!(matches!(
            err,
            ExecError::MemBudgetExceeded {
                need: 5,
                budget: 1,
                ..
            }
        ));
    }
}
