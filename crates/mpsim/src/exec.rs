//! The SPMD executor: run one closure per rank, each on its own OS thread.

use std::sync::Arc;

use crate::comm::Comm;
use crate::machine::MachineSpec;
use crate::stats::{RankStats, StatsBoard};

/// Maximum number of simulated ranks the threaded executor accepts. Beyond
/// this, use plan-level analysis (the per-rank word counts are exact either
/// way; the threaded path exists to validate them with real data).
pub const MAX_THREADED_RANKS: usize = 512;

/// Results and measured statistics of an SPMD run.
#[derive(Debug)]
pub struct RunOutput<R> {
    /// Per-rank return values, indexed by rank.
    pub results: Vec<R>,
    /// Per-rank measured statistics (the mpiP-equivalent numbers).
    pub stats: Vec<RankStats>,
}

/// Run `f` on every rank of `spec` concurrently and collect results.
///
/// # Panics
/// Panics if any rank panics (the panic is propagated), or if
/// `spec.p > MAX_THREADED_RANKS`.
pub fn run_spmd<R, F>(spec: &MachineSpec, f: F) -> RunOutput<R>
where
    R: Send,
    F: Fn(&mut Comm) -> R + Sync,
{
    assert!(
        spec.p <= MAX_THREADED_RANKS,
        "threaded execution supports at most {MAX_THREADED_RANKS} ranks; use plan analysis beyond that"
    );
    let stats = Arc::new(StatsBoard::new(spec.p));
    let comms = Comm::create_world(spec.p, stats.clone());
    let mut slots: Vec<Option<R>> = (0..spec.p).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|mut c| {
                let f = &f;
                s.spawn(move || f(&mut c))
            })
            .collect();
        for (slot, h) in slots.iter_mut().zip(handles) {
            *slot = Some(h.join().expect("rank panicked"));
        }
    });
    RunOutput {
        results: slots.into_iter().map(|s| s.expect("missing rank result")).collect(),
        stats: stats.snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Phase;

    #[test]
    fn results_are_rank_ordered() {
        let spec = MachineSpec::test_machine(8, 1000);
        let out = run_spmd(&spec, |c| c.rank() * 10);
        assert_eq!(out.results, vec![0, 10, 20, 30, 40, 50, 60, 70]);
        assert_eq!(out.stats.len(), 8);
    }

    #[test]
    fn stats_reflect_execution() {
        let spec = MachineSpec::test_machine(4, 1000);
        let out = run_spmd(&spec, |c| {
            // Everyone sends rank+1 words to rank 0.
            if c.rank() != 0 {
                c.send(0, 1, vec![0.0; c.rank() + 1], Phase::OutputC);
                0u64
            } else {
                let mut total = 0u64;
                for from in 1..c.size() {
                    total += c.recv(from, 1, Phase::OutputC).len() as u64;
                }
                total
            }
        });
        assert_eq!(out.results[0], 2 + 3 + 4);
        assert_eq!(out.stats[0].total_recv(), 9);
        assert_eq!(out.stats[2].total_sent(), 3);
    }

    #[test]
    fn barrier_synchronizes() {
        let spec = MachineSpec::test_machine(6, 1000);
        let out = run_spmd(&spec, |c| {
            c.barrier();
            c.rank()
        });
        assert_eq!(out.results.len(), 6);
    }

    #[test]
    #[should_panic(expected = "threaded execution supports at most")]
    fn rank_limit_enforced() {
        let spec = MachineSpec::test_machine(MAX_THREADED_RANKS + 1, 10);
        let _ = run_spmd(&spec, |_| ());
    }
}
