//! The SPMD executors: run one closure per rank and collect results.
//!
//! Two backends implement the same SPMD contract ([`ExecBackend`]):
//!
//! * **Threaded** — one full OS thread per rank, the original executor.
//!   Simple and fast for small worlds, but capped at
//!   [`MAX_THREADED_RANKS`] ranks.
//! * **Sharded** — `p` simulated ranks multiplexed over a fixed pool of
//!   `workers` runnable slots. Each rank gets a lightweight small-stack
//!   carrier, but at most `workers` of them are ever runnable: the
//!   communicator's rendezvous points ([`Comm::recv`] waiting for a message,
//!   [`Comm::barrier`]/`fence`) are resumable wait-states that hand the
//!   rank's worker slot to the next runnable rank instead of blocking it
//!   (see [`WorkerGate`]). Admission is FIFO, so runnable ranks are stepped
//!   round-robin. This is what lets plan-vs-executed conformance run at the
//!   paper's rank counts (thousands of ranks) instead of stopping at the
//!   threaded cap.
//!
//! Blocked ranks cost only their (small) stack, so worlds of 4096+ ranks
//! execute with real messages on a laptop-sized worker pool.

use std::collections::{HashSet, VecDeque};
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard};

use crate::comm::Comm;
use crate::machine::MachineSpec;
use crate::stats::{RankStats, StatsBoard};

/// Maximum number of simulated ranks the threaded executor accepts. Beyond
/// this, use [`ExecBackend::Sharded`] (or [`ExecBackend::auto`], which
/// switches automatically) — the per-rank word counts are exact either way;
/// the executors exist to validate them with real data.
pub const MAX_THREADED_RANKS: usize = 512;

/// Stack size of one sharded rank carrier. Rank bodies keep their working
/// sets on the heap (matrix tiles, message buffers) and recurse at most
/// `log2 p` deep (CARMA's splitting), so a modest fixed stack suffices and
/// keeps 4096-rank worlds cheap.
pub const SHARDED_STACK_BYTES: usize = 1 << 20;

/// How an SPMD world is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecBackend {
    /// One OS thread per rank; at most [`MAX_THREADED_RANKS`] ranks.
    Threaded,
    /// `p` ranks multiplexed over `workers` runnable slots; any world size.
    Sharded {
        /// Maximum number of concurrently runnable ranks (≥ 1).
        workers: usize,
    },
}

impl ExecBackend {
    /// The backend for a `p`-rank world: threaded up to
    /// [`MAX_THREADED_RANKS`], sharded over [`Self::default_workers`] beyond.
    pub fn auto(p: usize) -> ExecBackend {
        if p <= MAX_THREADED_RANKS {
            ExecBackend::Threaded
        } else {
            ExecBackend::Sharded {
                workers: Self::default_workers(),
            }
        }
    }

    /// Default sharded worker-pool size: the machine's available parallelism.
    pub fn default_workers() -> usize {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(8)
    }
}

impl fmt::Display for ExecBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecBackend::Threaded => write!(f, "threaded"),
            ExecBackend::Sharded { workers } => write!(f, "sharded({workers})"),
        }
    }
}

/// Why an executor refused to run a world (before any rank started).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecError {
    /// The threaded backend's rank cap was exceeded.
    WorldTooLarge {
        /// Requested world size.
        p: usize,
        /// The threaded cap ([`MAX_THREADED_RANKS`]).
        max: usize,
    },
    /// A sharded pool of zero workers can never step any rank.
    NoWorkers,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::WorldTooLarge { p, max } => write!(
                f,
                "threaded execution supports at most {max} ranks (got {p}); \
                 use ExecBackend::Sharded for larger worlds"
            ),
            ExecError::NoWorkers => write!(f, "sharded execution needs at least one worker"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Results and measured statistics of an SPMD run.
#[derive(Debug)]
pub struct RunOutput<R> {
    /// Per-rank return values, indexed by rank.
    pub results: Vec<R>,
    /// Per-rank measured statistics (the mpiP-equivalent numbers).
    pub stats: Vec<RankStats>,
}

// ---------------------------------------------------------------------------
// The worker gate: the sharded scheduler's admission control
// ---------------------------------------------------------------------------

/// FIFO admission gate of the sharded executor: at most `workers` ranks hold
/// a runnable slot at any moment.
///
/// A rank acquires a slot before running user code and *suspends* (returns
/// its slot) at every rendezvous that would block — waiting for a message,
/// standing at a barrier. Release hands the freed slot directly to the
/// longest-waiting rank (one targeted `unpark`, no thundering herd), so
/// runnable ranks are admitted round-robin and a parked rank never pins a
/// worker.
pub struct WorkerGate {
    state: Mutex<GateQueue>,
}

struct GateQueue {
    /// Unassigned slots.
    free: usize,
    /// Ranks waiting for a slot, FIFO.
    queue: VecDeque<(u64, std::thread::Thread)>,
    /// Tickets whose slot was handed over but whose thread has not resumed.
    granted: HashSet<u64>,
    next_ticket: u64,
}

impl WorkerGate {
    /// A gate admitting `workers` concurrently runnable ranks.
    ///
    /// # Panics
    /// Panics if `workers` is zero.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "the worker pool needs at least one slot");
        WorkerGate {
            state: Mutex::new(GateQueue {
                free: workers,
                queue: VecDeque::new(),
                granted: HashSet::new(),
                next_ticket: 0,
            }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, GateQueue> {
        // A poisoned gate means a rank panicked; let that panic surface.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Block until a runnable slot is free (FIFO order).
    pub fn acquire(&self) {
        let ticket = {
            let mut st = self.lock();
            if st.free > 0 && st.queue.is_empty() {
                st.free -= 1;
                return;
            }
            let ticket = st.next_ticket;
            st.next_ticket += 1;
            st.queue.push_back((ticket, std::thread::current()));
            ticket
        };
        loop {
            std::thread::park();
            if self.lock().granted.remove(&ticket) {
                return;
            }
        }
    }

    /// Return a slot, handing it to the longest-waiting rank if any.
    pub fn release(&self) {
        let mut st = self.lock();
        if let Some((ticket, thread)) = st.queue.pop_front() {
            // The slot transfers directly: `free` stays unchanged.
            st.granted.insert(ticket);
            thread.unpark();
        } else {
            st.free += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// Runners
// ---------------------------------------------------------------------------

/// Run `f` on every rank of `spec` under `backend` and collect results.
///
/// # Errors
/// [`ExecError::WorldTooLarge`] when the threaded backend is asked for more
/// than [`MAX_THREADED_RANKS`] ranks; [`ExecError::NoWorkers`] for an empty
/// sharded pool.
///
/// # Panics
/// Panics if any rank panics (the panic is propagated).
pub fn run_spmd_with<R, F>(spec: &MachineSpec, backend: ExecBackend, f: F) -> Result<RunOutput<R>, ExecError>
where
    R: Send,
    F: Fn(&mut Comm) -> R + Sync,
{
    match backend {
        ExecBackend::Threaded => {
            if spec.p > MAX_THREADED_RANKS {
                return Err(ExecError::WorldTooLarge {
                    p: spec.p,
                    max: MAX_THREADED_RANKS,
                });
            }
            Ok(run_threaded(spec, f))
        }
        ExecBackend::Sharded { workers } => {
            if workers == 0 {
                return Err(ExecError::NoWorkers);
            }
            Ok(run_sharded(spec, workers, f))
        }
    }
}

/// Run `f` on every rank of `spec` concurrently (threaded backend) and
/// collect results.
///
/// # Panics
/// Panics if any rank panics (the panic is propagated), or if
/// `spec.p > MAX_THREADED_RANKS` — use [`run_spmd_with`] with
/// [`ExecBackend::Sharded`] (or [`ExecBackend::auto`]) for larger worlds.
pub fn run_spmd<R, F>(spec: &MachineSpec, f: F) -> RunOutput<R>
where
    R: Send,
    F: Fn(&mut Comm) -> R + Sync,
{
    match run_spmd_with(spec, ExecBackend::Threaded, f) {
        Ok(out) => out,
        Err(e) => panic!("{e}"),
    }
}

fn run_threaded<R, F>(spec: &MachineSpec, f: F) -> RunOutput<R>
where
    R: Send,
    F: Fn(&mut Comm) -> R + Sync,
{
    run_world(spec, None, f)
}

fn run_sharded<R, F>(spec: &MachineSpec, workers: usize, f: F) -> RunOutput<R>
where
    R: Send,
    F: Fn(&mut Comm) -> R + Sync,
{
    run_world(spec, Some(Arc::new(WorkerGate::new(workers.min(spec.p)))), f)
}

/// The shared SPMD skeleton: spawn one carrier per rank, join in rank order.
/// Gated worlds get small-stack carriers and acquire their admission slot on
/// their own thread before user code; the slot is returned when the closure
/// finishes or panics (the communicator's gate handle releases on drop).
/// `Comm::gate_enter` is a no-op on ungated (threaded) worlds.
fn run_world<R, F>(spec: &MachineSpec, gate: Option<Arc<WorkerGate>>, f: F) -> RunOutput<R>
where
    R: Send,
    F: Fn(&mut Comm) -> R + Sync,
{
    let stats = Arc::new(StatsBoard::new(spec.p));
    let comms = Comm::create_world_gated(spec.p, stats.clone(), gate.clone());
    let mut slots: Vec<Option<R>> = (0..spec.p).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|mut c| {
                let f = &f;
                let body = move || {
                    c.gate_enter();
                    f(&mut c)
                };
                match &gate {
                    Some(_) => std::thread::Builder::new()
                        .stack_size(SHARDED_STACK_BYTES)
                        .spawn_scoped(s, body)
                        .expect("spawn rank carrier"),
                    None => s.spawn(body),
                }
            })
            .collect();
        for (slot, h) in slots.iter_mut().zip(handles) {
            *slot = Some(h.join().expect("rank panicked"));
        }
    });
    RunOutput {
        results: slots.into_iter().map(|s| s.expect("missing rank result")).collect(),
        stats: stats.snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Phase;

    #[test]
    fn results_are_rank_ordered() {
        let spec = MachineSpec::test_machine(8, 1000);
        let out = run_spmd(&spec, |c| c.rank() * 10);
        assert_eq!(out.results, vec![0, 10, 20, 30, 40, 50, 60, 70]);
        assert_eq!(out.stats.len(), 8);
    }

    #[test]
    fn stats_reflect_execution() {
        let spec = MachineSpec::test_machine(4, 1000);
        let out = run_spmd(&spec, |c| {
            // Everyone sends rank+1 words to rank 0.
            if c.rank() != 0 {
                c.send(0, 1, vec![0.0; c.rank() + 1], Phase::OutputC);
                0u64
            } else {
                let mut total = 0u64;
                for from in 1..c.size() {
                    total += c.recv(from, 1, Phase::OutputC).len() as u64;
                }
                total
            }
        });
        assert_eq!(out.results[0], 2 + 3 + 4);
        assert_eq!(out.stats[0].total_recv(), 9);
        assert_eq!(out.stats[2].total_sent(), 3);
    }

    #[test]
    fn barrier_synchronizes() {
        let spec = MachineSpec::test_machine(6, 1000);
        let out = run_spmd(&spec, |c| {
            c.barrier();
            c.rank()
        });
        assert_eq!(out.results.len(), 6);
    }

    #[test]
    #[should_panic(expected = "threaded execution supports at most")]
    fn rank_limit_enforced() {
        let spec = MachineSpec::test_machine(MAX_THREADED_RANKS + 1, 10);
        let _ = run_spmd(&spec, |_| ());
    }

    #[test]
    fn threaded_backend_rejects_large_worlds_typed() {
        let spec = MachineSpec::test_machine(MAX_THREADED_RANKS + 1, 10);
        let err = run_spmd_with(&spec, ExecBackend::Threaded, |_| ()).unwrap_err();
        assert_eq!(
            err,
            ExecError::WorldTooLarge {
                p: MAX_THREADED_RANKS + 1,
                max: MAX_THREADED_RANKS
            }
        );
        assert!(err.to_string().contains("Sharded"));
    }

    #[test]
    fn sharded_rejects_empty_pool() {
        let spec = MachineSpec::test_machine(4, 10);
        let err = run_spmd_with(&spec, ExecBackend::Sharded { workers: 0 }, |_| ()).unwrap_err();
        assert_eq!(err, ExecError::NoWorkers);
    }

    #[test]
    fn auto_switches_at_the_threaded_cap() {
        assert_eq!(ExecBackend::auto(1), ExecBackend::Threaded);
        assert_eq!(ExecBackend::auto(MAX_THREADED_RANKS), ExecBackend::Threaded);
        assert!(matches!(
            ExecBackend::auto(MAX_THREADED_RANKS + 1),
            ExecBackend::Sharded { workers } if workers >= 1
        ));
    }

    #[test]
    fn sharded_results_are_rank_ordered() {
        let spec = MachineSpec::test_machine(24, 1000);
        let out = run_spmd_with(&spec, ExecBackend::Sharded { workers: 3 }, |c| c.rank() * 10).unwrap();
        assert_eq!(out.results, (0..24).map(|r| r * 10).collect::<Vec<_>>());
    }

    #[test]
    fn sharded_runs_worlds_beyond_the_threaded_cap() {
        // More ranks than the threaded cap, far more ranks than workers;
        // every rank exchanges with a neighbour, so the gate must hand slots
        // between parked and runnable ranks without deadlocking.
        let p = MAX_THREADED_RANKS + 160;
        let spec = MachineSpec::test_machine(p, 1000);
        let out = run_spmd_with(&spec, ExecBackend::Sharded { workers: 4 }, |c| {
            let right = (c.rank() + 1) % c.size();
            let left = (c.rank() + c.size() - 1) % c.size();
            let got = c.sendrecv(right, left, 7, vec![c.rank() as f64], Phase::Other);
            got[0] as usize
        })
        .unwrap();
        for (r, &got) in out.results.iter().enumerate() {
            assert_eq!(got, (r + p - 1) % p);
        }
    }

    #[test]
    fn sharded_single_worker_makes_progress_through_rendezvous() {
        // workers = 1 is the harshest schedule: every recv/barrier must yield
        // the lone slot or the world deadlocks.
        let spec = MachineSpec::test_machine(8, 1000);
        let out = run_spmd_with(&spec, ExecBackend::Sharded { workers: 1 }, |c| {
            c.barrier();
            let got = if c.rank() == 0 {
                for to in 1..c.size() {
                    c.send(to, 1, vec![to as f64], Phase::Other);
                }
                0.0
            } else {
                c.recv(0, 1, Phase::Other)[0]
            };
            c.barrier();
            got
        });
        let out = match out {
            Ok(o) => o,
            Err(e) => panic!("{e}"),
        };
        for r in 1..8 {
            assert_eq!(out.results[r], r as f64);
        }
    }

    #[test]
    fn sharded_and_threaded_measure_identically() {
        let spec = MachineSpec::test_machine(16, 1000);
        let pattern = |c: &mut Comm| {
            let right = (c.rank() + 1) % c.size();
            let left = (c.rank() + c.size() - 1) % c.size();
            c.sendrecv(right, left, 3, vec![1.0; c.rank() + 1], Phase::InputA);
            c.barrier();
            c.rank()
        };
        let threaded = run_spmd_with(&spec, ExecBackend::Threaded, pattern).unwrap();
        let sharded = run_spmd_with(&spec, ExecBackend::Sharded { workers: 2 }, pattern).unwrap();
        assert_eq!(threaded.results, sharded.results);
        assert_eq!(threaded.stats, sharded.stats);
    }

    #[test]
    fn worker_gate_is_fifo_and_conserves_slots() {
        let gate = Arc::new(WorkerGate::new(2));
        gate.acquire();
        gate.acquire();
        // Both slots held: a queued acquire must wait until a release.
        let g = gate.clone();
        let waiter = std::thread::spawn(move || {
            g.acquire();
            g.release();
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!waiter.is_finished(), "no free slot yet");
        gate.release();
        waiter.join().unwrap();
        gate.release();
        // Both slots free again.
        gate.acquire();
        gate.acquire();
        gate.release();
        gate.release();
    }

    #[test]
    fn backend_display_names() {
        assert_eq!(ExecBackend::Threaded.to_string(), "threaded");
        assert_eq!(ExecBackend::Sharded { workers: 6 }.to_string(), "sharded(6)");
    }
}
