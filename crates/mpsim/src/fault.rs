//! Deterministic fault injection for the event scheduler.
//!
//! A [`FaultPlan`] is a *seeded recipe* for killing ranks and dropping
//! messages mid-run, attached to a machine via
//! [`MachineSpec::with_faults`](crate::machine::MachineSpec::with_faults).
//! Everything a plan decides is a pure function of `(seed, rank)` or
//! `(seed, from, to, send-index)` through splitmix64 — no wall clock, no
//! global interleaving — so the same plan produces the *same* failure on the
//! single-threaded and the multi-region event engines, and a plan that
//! schedules nothing is exactly a no-op (zero-fault runs stay
//! bitwise-identical to runs without a plan).
//!
//! # What a fault looks like
//!
//! * **Rank death.** Each doomed rank carries a *virtual death time* drawn
//!   from the seed within the plan's horizon. The scheduler kills the rank
//!   the first time it would poll it at or past that time: the rank's body
//!   future is dropped, its mailbox is discarded, and it stops consuming
//!   events. Subsequent sends to it are silently lost (a typed loss, not a
//!   [`WorldTornDown`](crate::exec::ExecError::WorldTornDown) — the peer
//!   did not *exit*, it *failed*). Because the kill decision compares the
//!   rank's own event time against its own death time, it is made at the
//!   same event on every engine, windows or not.
//! * **Message loss.** With a nonzero drop rate, each send is dropped with
//!   that probability, keyed by the sender's program-order send index — a
//!   sender-local decision, again identical across engines.
//!
//! A world that cannot complete because of either (it wedges structurally,
//! a recv deadline fires, or it finishes with ranks dead) reports
//! [`ExecError::RankFailed`](crate::exec::ExecError::RankFailed) carrying
//! the earliest scheduled casualty, so a caller — e.g. the `serve`
//! recovery driver — can re-fit the problem to the survivors
//! ([`FaultPlan::survivors`]) and re-run clean.

/// One splitmix64 step — the repo-wide deterministic PRNG (the same
/// generator the property suites use for case generation).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash a (seed, stream, payload...) tuple into one u64 by chaining
/// splitmix64 — each argument perturbs the state before the next.
fn mix(seed: u64, stream: u64, parts: &[u64]) -> u64 {
    let mut h = splitmix64(seed ^ splitmix64(stream));
    for &part in parts {
        h = splitmix64(h ^ part);
    }
    h
}

/// Map a hash to a uniform f64 in `[0, 1)` (53 mantissa bits).
fn u01(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// Hash streams, so deaths, death times and drops draw from independent
/// sequences of the same seed.
const STREAM_PICK: u64 = 0x5045_4B49_4C4C; // which ranks die
const STREAM_TIME: u64 = 0x4445_4154_4854; // when they die
const STREAM_DROP: u64 = 0x4452_4F50_5052; // which messages vanish

/// How a plan selects its casualties.
#[derive(Debug, Clone, Copy, PartialEq)]
enum KillSpec {
    /// No rank deaths.
    None,
    /// Exactly `min(kills, p)` ranks die, chosen by seeded hash order.
    Exactly(usize),
    /// Each rank independently dies with this probability.
    Rate(f64),
}

/// A deterministic, seeded fault-injection recipe for one run.
///
/// Construct with [`FaultPlan::new`] (a quiescent plan — attaching it
/// changes nothing) and layer faults on with the builders:
///
/// ```
/// use mpsim::fault::FaultPlan;
/// // Kill exactly 3 ranks somewhere inside the first 2ms of virtual time,
/// // and lose 0.1% of messages.
/// let plan = FaultPlan::new(42).kill_exactly(3, 2e-3).drop_rate(1e-3);
/// assert_eq!(plan.planned_kills(64), 3);
/// assert_eq!(plan.survivors(64), 61);
/// ```
///
/// The plan is machine-independent: the same plan applied to worlds of
/// different `p` selects casualties per-world (deterministically in both).
/// Only the event backend (`ExecBackend::Event`) injects faults; the
/// blocking backends ignore the plan (they have no virtual clock to key
/// death times against).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    kills: KillSpec,
    /// Virtual-time window `(0, horizon_s)` inside which deaths land.
    horizon_s: f64,
    /// Per-message loss probability in `[0, 1]`.
    drop_rate: f64,
}

impl FaultPlan {
    /// A quiescent plan: schedules no deaths and drops nothing. Attaching
    /// it to a machine is bitwise a no-op — the zero-fault baseline gates
    /// assert exactly this.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            kills: KillSpec::None,
            horizon_s: 0.0,
            drop_rate: 0.0,
        }
    }

    /// Schedule exactly `min(kills, p)` rank deaths, at seeded virtual
    /// times within `(0, horizon_s)`. Pick `horizon_s` below the expected
    /// virtual makespan so the deaths land mid-run.
    ///
    /// # Panics
    /// Panics unless `horizon_s` is finite and positive.
    pub fn kill_exactly(mut self, kills: usize, horizon_s: f64) -> FaultPlan {
        assert!(
            horizon_s.is_finite() && horizon_s > 0.0,
            "fault horizon must be finite and positive (got {horizon_s})"
        );
        self.kills = KillSpec::Exactly(kills);
        self.horizon_s = horizon_s;
        self
    }

    /// Schedule each rank to die independently with probability `rate`, at
    /// a seeded virtual time within `(0, horizon_s)`.
    ///
    /// # Panics
    /// Panics unless `rate ∈ [0, 1]` and `horizon_s` is finite and positive.
    pub fn death_rate(mut self, rate: f64, horizon_s: f64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&rate), "death rate must be in [0, 1] (got {rate})");
        assert!(
            horizon_s.is_finite() && horizon_s > 0.0,
            "fault horizon must be finite and positive (got {horizon_s})"
        );
        self.kills = KillSpec::Rate(rate);
        self.horizon_s = horizon_s;
        self
    }

    /// Additionally lose each message with probability `rate`, keyed by the
    /// sender's program-order send index.
    ///
    /// # Panics
    /// Panics unless `rate ∈ [0, 1]`.
    pub fn drop_rate(mut self, rate: f64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&rate), "drop rate must be in [0, 1] (got {rate})");
        self.drop_rate = rate;
        self
    }

    /// The seed this plan draws from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// How many ranks of a `p`-rank world this plan schedules to die.
    pub fn planned_kills(&self, p: usize) -> usize {
        self.schedule(p).deaths
    }

    /// How many ranks of a `p`-rank world survive the scheduled deaths —
    /// the `p'` a recovery driver should re-fit the problem to.
    pub fn survivors(&self, p: usize) -> usize {
        p - self.planned_kills(p)
    }

    /// Compile the plan against a concrete world size: per-rank death
    /// times, resolved once at world construction.
    pub(crate) fn schedule(&self, p: usize) -> FaultSchedule {
        let death_at = |rank: usize| {
            // Deaths land in the middle 80% of the horizon: strictly after
            // t = 0 (every rank runs at least once) and strictly before the
            // horizon the caller sized against the expected makespan.
            let frac = 0.1 + 0.8 * u01(mix(self.seed, STREAM_TIME, &[rank as u64]));
            self.horizon_s * frac
        };
        let mut death: Vec<Option<f64>> = vec![None; p];
        match self.kills {
            KillSpec::None => {}
            KillSpec::Exactly(kills) => {
                // Order ranks by seeded hash (ties by rank) and fell the
                // first `kills` — an exact casualty count for conformance
                // runs that need a specific surviving p'.
                let mut order: Vec<usize> = (0..p).collect();
                order.sort_by_key(|&r| (mix(self.seed, STREAM_PICK, &[r as u64]), r));
                for &r in order.iter().take(kills.min(p)) {
                    death[r] = Some(death_at(r));
                }
            }
            KillSpec::Rate(rate) => {
                for (r, slot) in death.iter_mut().enumerate() {
                    if u01(mix(self.seed, STREAM_PICK, &[r as u64])) < rate {
                        *slot = Some(death_at(r));
                    }
                }
            }
        }
        let deaths = death.iter().filter(|d| d.is_some()).count();
        FaultSchedule {
            seed: self.seed,
            death,
            deaths,
            drop_rate: self.drop_rate,
        }
    }
}

/// A [`FaultPlan`] compiled against a concrete world size: the event
/// engine's lookup table.
#[derive(Debug, Clone)]
pub(crate) struct FaultSchedule {
    seed: u64,
    /// Per-rank virtual death time (`None` = survives).
    death: Vec<Option<f64>>,
    /// Scheduled death count.
    deaths: usize,
    drop_rate: f64,
}

impl FaultSchedule {
    /// The rank's scheduled virtual death time, if any.
    pub(crate) fn death_time(&self, rank: usize) -> Option<f64> {
        self.death[rank]
    }

    /// Whether the `n`-th send of `from` (program order) to `to` is lost.
    pub(crate) fn drops(&self, from: usize, to: usize, n: u64) -> bool {
        self.drop_rate > 0.0
            && u01(mix(self.seed, STREAM_DROP, &[from as u64, to as u64, n])) < self.drop_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiescent_plan_schedules_nothing() {
        let plan = FaultPlan::new(7);
        assert_eq!(plan.planned_kills(64), 0);
        assert_eq!(plan.survivors(64), 64);
        let sched = plan.schedule(8);
        assert!((0..8).all(|r| sched.death_time(r).is_none()));
        assert!(!sched.drops(0, 1, 0));
    }

    #[test]
    fn kill_exactly_fells_the_requested_count_deterministically() {
        let plan = FaultPlan::new(42).kill_exactly(15, 1e-3);
        assert_eq!(plan.planned_kills(64), 15);
        assert_eq!(plan.survivors(64), 49);
        let a = plan.schedule(64);
        let b = plan.schedule(64);
        for r in 0..64 {
            assert_eq!(a.death_time(r), b.death_time(r));
            if let Some(at) = a.death_time(r) {
                assert!(at > 0.0 && at < 1e-3, "death inside the horizon, got {at}");
            }
        }
        // A different seed fells a different set.
        let c = FaultPlan::new(43).kill_exactly(15, 1e-3).schedule(64);
        assert!((0..64).any(|r| a.death_time(r).is_some() != c.death_time(r).is_some()));
    }

    #[test]
    fn kill_count_caps_at_world_size() {
        let plan = FaultPlan::new(1).kill_exactly(100, 1.0);
        assert_eq!(plan.planned_kills(4), 4);
        assert_eq!(plan.survivors(4), 0);
    }

    #[test]
    fn death_rate_is_seed_deterministic_and_roughly_calibrated() {
        let plan = FaultPlan::new(9).death_rate(0.25, 1.0);
        let kills = plan.planned_kills(4096);
        assert_eq!(kills, plan.planned_kills(4096));
        // 4096 Bernoulli(0.25) draws: expect ~1024, allow a wide band.
        assert!((700..1400).contains(&kills), "got {kills}");
    }

    #[test]
    fn drop_decisions_are_per_send_index_and_seeded() {
        let sched = FaultPlan::new(3).drop_rate(0.5).schedule(8);
        let pattern: Vec<bool> = (0..64).map(|n| sched.drops(0, 1, n)).collect();
        let again: Vec<bool> = (0..64).map(|n| sched.drops(0, 1, n)).collect();
        assert_eq!(pattern, again);
        assert!(pattern.iter().any(|&d| d) && pattern.iter().any(|&d| !d));
        // Different (from, to) pairs draw from different streams.
        let other: Vec<bool> = (0..64).map(|n| sched.drops(1, 0, n)).collect();
        assert_ne!(pattern, other);
    }
}
