//! # mpsim — simulated distributed-memory machine
//!
//! The COSMA paper evaluates on Piz Daint (Cray XC40, Aries interconnect, MPI,
//! mpiP profiling). MPI bindings in Rust are thin and a supercomputer is not
//! available to a reproduction, so this crate provides the substitute
//! substrate (see `DESIGN.md` §1 for the substitution argument):
//!
//! * [`machine`] — machine descriptions: `p` ranks, `S` words of memory per
//!   rank, and a cost model; including a Piz-Daint-XC40-like preset.
//! * [`stats`] — per-rank traffic/flop/memory counters, the stand-in for the
//!   mpiP profiler: every word a rank sends or receives is counted, bucketed
//!   by communication phase (A-input, B-input, C-output, …).
//! * [`comm`] — the communicators: [`comm::RankComm`], the resumable
//!   rank-facing handle every rank body receives (tagged point-to-point
//!   message passing, two-sided backend; shared-memory windows with
//!   put/get/accumulate, one-sided/RMA backend, §7.4 of the paper), over the
//!   blocking channel implementation used by the threaded/sharded executors.
//! * [`event`] — the event-driven machine behind `ExecBackend::Event`: a
//!   discrete-event simulator driving rank bodies as stackless resumable
//!   state machines, with a virtual-time-ordered ready queue, a
//!   message-matching table, and a per-rank α-β-γ virtual clock that
//!   measures compute / exposed-comm / hidden-comm time. Optionally sharded
//!   across OS threads as rank regions under conservative synchronization —
//!   bitwise-identical stats at every thread count.
//! * [`collectives`] — binomial-tree broadcast and reduce, ring all-gather
//!   and ring shift, built on the point-to-point layer exactly like the
//!   paper's hand-rolled broadcast trees (§7.2); all resumable (`async`).
//! * [`exec`] — the SPMD executors: one OS thread per simulated rank
//!   (threaded, ≤ 512 ranks), `p` ranks multiplexed over a fixed worker pool
//!   of small-stack carriers (sharded, up to a few thousand ranks), or
//!   event-driven stackless rank state machines (event, any world size —
//!   verified to p = 1,048,576 with real messages on the parallel
//!   scheduler).
//! * [`cost`] — the α-β-γ time model: per-round communication/computation
//!   costs, with and without communication–computation overlap (§7.3), and
//!   %-of-peak reporting used by Figures 8–14.
//! * [`fault`] — deterministic fault injection: a seeded [`fault::FaultPlan`]
//!   the event scheduler consults to kill ranks and drop messages at
//!   scheduled points of *virtual* time, surfacing as a typed
//!   [`exec::ExecError::RankFailed`] a caller can recover from by
//!   replanning the surviving world.
//! * [`pool`] — size-classed buffer-reuse arenas (§7 "buffer reuse"): one
//!   [`pool::BufferPool`] per world recycles message payloads, collective
//!   scratch and leaf buffers, bitwise-invisibly to results, counters and
//!   virtual time.
//!
//! Algorithms run in two modes backed by the same decomposition code: real
//! execution with data (correctness, any `p`) and plan-level analysis
//! (exact word counts at paper scale, up to 18,432 ranks). The integration
//! tests in `tests/` assert the two modes agree.

#![warn(missing_docs)]

pub mod collectives;
pub mod comm;
pub mod cost;
pub mod event;
pub mod exec;
pub mod fault;
pub mod machine;
pub mod pool;
pub mod stats;
pub mod topo;

pub use comm::{block_on_ready, Comm, RankComm};
pub use cost::{CostModel, RoundCost, TimeBreakdown};
pub use event::{
    run_spmd_event, run_spmd_event_traced, try_run_spmd_event, try_run_spmd_event_threads, EventComm,
    SchedEvent,
};
pub use exec::{
    run_spmd, run_spmd_with, ExecBackend, ExecError, RunOutput, Waiting, MAX_SHARDED_RANKS,
    MAX_THREADED_RANKS,
};
pub use fault::FaultPlan;
pub use machine::{MachineSpec, Placement, Topology};
pub use pool::{BufferPool, PoolHandle, PoolStats};
pub use stats::{Phase, RankStats, StatsBoard};
pub use topo::Network;
