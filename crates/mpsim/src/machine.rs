//! Machine descriptions: rank count, per-rank memory, cost constants.

use std::time::Duration;

use crate::cost::CostModel;

/// Default deadlock guard of the blocking backends: how long a blocking
/// `recv` waits for a matching message before the run is declared
/// deadlock-suspected (see [`MachineSpec::recv_timeout`]).
pub const DEFAULT_RECV_TIMEOUT: Duration = Duration::from_secs(120);

/// A distributed machine: `p` ranks, each with `mem_words` words of local
/// memory (the paper's `S`), and a communication/computation cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineSpec {
    /// Number of ranks (the paper's `p`; one rank per core in §8).
    pub p: usize,
    /// Local memory per rank in 8-byte words (the paper's `S`).
    pub mem_words: usize,
    /// Cost constants for the time model.
    pub cost: CostModel,
    /// Enforced per-rank memory budget, in words. `None` (the default)
    /// makes `S` advisory — executions only *measure* `peak_mem_words`.
    /// `Some(budget)` makes it a hard limit: a run in which any rank's
    /// tracked peak exceeds the budget returns
    /// [`ExecError::MemBudgetExceeded`](crate::exec::ExecError) from every
    /// execution backend.
    pub mem_budget: Option<u64>,
    /// Communication–computation overlap (§7.3) in the event executor's
    /// virtual clock. `true` (the default, COSMA's double-buffering edge): a
    /// posted transfer proceeds in the background on the receiver's incoming
    /// link and can hide behind the receiver's compute. `false`: every
    /// transfer is fully exposed at the receive, comm and compute strictly
    /// alternating — the model the paper uses for the non-overlapping
    /// baselines.
    pub overlap: bool,
    /// Deadlock guard of the blocking (threaded/sharded) backends: a
    /// blocking `recv` that waits longer than this for a matching message
    /// turns the run into a typed
    /// [`ExecError::DeadlockSuspected`](crate::exec::ExecError). Tests that
    /// provoke deadlocks shrink it; the event backend detects deadlocks
    /// structurally and ignores it.
    pub recv_timeout: Duration,
}

impl MachineSpec {
    /// A machine with explicit parameters (advisory memory).
    pub fn new(p: usize, mem_words: usize, cost: CostModel) -> Self {
        assert!(p > 0, "machine needs at least one rank");
        assert!(mem_words > 0, "ranks need memory");
        MachineSpec {
            p,
            mem_words,
            cost,
            mem_budget: None,
            overlap: true,
            recv_timeout: DEFAULT_RECV_TIMEOUT,
        }
    }

    /// Set communication–computation overlap for the event executor's
    /// virtual clock (see [`MachineSpec::overlap`]).
    pub fn with_overlap(mut self, overlap: bool) -> Self {
        self.overlap = overlap;
        self
    }

    /// Set the blocking backends' deadlock guard (see
    /// [`MachineSpec::recv_timeout`]).
    pub fn with_recv_timeout(mut self, timeout: Duration) -> Self {
        self.recv_timeout = timeout;
        self
    }

    /// Enforce `words` as a hard per-rank memory budget (see
    /// [`MachineSpec::mem_budget`]).
    pub fn with_mem_budget(mut self, words: u64) -> Self {
        self.mem_budget = Some(words);
        self
    }

    /// Enforce the machine's own `S` as the hard per-rank budget — the
    /// paper's limited-memory regime taken literally.
    pub fn enforcing_memory(self) -> Self {
        let words = self.mem_words as u64;
        self.with_mem_budget(words)
    }

    /// Piz-Daint-like machine: one rank per core, 64 GiB per 36-core node
    /// (≈238 M words per core), two-sided backend. This mirrors §8's
    /// "we set p to the number of available cores and S to the main memory
    /// size per core".
    pub fn piz_daint(p: usize) -> Self {
        MachineSpec::new(p, 64 * 1024 * 1024 * 1024 / 36 / 8, CostModel::piz_daint_two_sided())
    }

    /// Piz-Daint-like machine with a reduced per-rank memory — used by the
    /// "limited memory" scenarios where `S` is scaled to the problem.
    pub fn piz_daint_with_memory(p: usize, mem_words: usize) -> Self {
        MachineSpec::new(p, mem_words, CostModel::piz_daint_two_sided())
    }

    /// A tiny test machine: `p` ranks with `mem_words` memory and a unit cost
    /// model — convenient in unit tests.
    pub fn test_machine(p: usize, mem_words: usize) -> Self {
        MachineSpec::new(
            p,
            mem_words,
            CostModel {
                peak_flops: 1e9,
                kernel_efficiency: 1.0,
                alpha_s: 1e-6,
                beta_s_per_word: 1e-9,
            },
        )
    }

    /// Can the three matrices of an `m x k · k x n` product fit in the
    /// collective memory? (The paper's §6 assumption
    /// `pS ≥ mn + mk + nk`.)
    pub fn fits_problem(&self, m: usize, n: usize, k: usize) -> bool {
        let need = m as u128 * n as u128 + m as u128 * k as u128 + n as u128 * k as u128;
        (self.p as u128) * (self.mem_words as u128) >= need
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn piz_daint_memory_per_core() {
        let m = MachineSpec::piz_daint(1024);
        assert_eq!(m.p, 1024);
        // 64 GiB / 36 cores / 8 bytes ≈ 238 M words.
        assert!(m.mem_words > 230_000_000 && m.mem_words < 245_000_000);
    }

    #[test]
    fn fits_problem_boundary() {
        let m = MachineSpec::test_machine(4, 100);
        // mn + mk + nk = 100 + 100 + 100 = 300 <= 400.
        assert!(m.fits_problem(10, 10, 10));
        // 3 * 400 = 1200 > 400.
        assert!(!m.fits_problem(20, 20, 20));
    }

    #[test]
    fn fits_problem_no_overflow_at_paper_scale() {
        let m = MachineSpec::piz_daint(2048);
        // The RPA workload: m = n = 17,408, k = 3,735,552.
        assert!(m.fits_problem(17_408, 17_408, 3_735_552));
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = MachineSpec::test_machine(0, 10);
    }

    #[test]
    fn mem_budget_defaults_off_and_enforces_s() {
        let m = MachineSpec::test_machine(4, 100);
        assert_eq!(m.mem_budget, None);
        assert_eq!(m.clone().enforcing_memory().mem_budget, Some(100));
        assert_eq!(m.with_mem_budget(64).mem_budget, Some(64));
    }

    #[test]
    fn overlap_and_timeout_knobs() {
        let m = MachineSpec::test_machine(4, 100);
        assert!(m.overlap, "overlap (double buffering) is the default");
        assert_eq!(m.recv_timeout, DEFAULT_RECV_TIMEOUT);
        let m = m.with_overlap(false).with_recv_timeout(Duration::from_millis(50));
        assert!(!m.overlap);
        assert_eq!(m.recv_timeout, Duration::from_millis(50));
    }
}
