//! Machine descriptions: rank count, per-rank memory, cost constants.

use std::time::Duration;

use crate::cost::CostModel;
use crate::fault::FaultPlan;

/// Default deadlock guard: how long a `recv` waits for a matching message
/// before the run is declared deadlock-suspected (see
/// [`MachineSpec::recv_timeout`]). Wall-clock on the blocking backends,
/// virtual time on the event backend.
pub const DEFAULT_RECV_TIMEOUT: Duration = Duration::from_secs(120);

/// The interconnect shape of a machine: which shared links a transfer
/// crosses between two ranks, and how much of the wire time each crossing
/// occupies on that link.
///
/// Every transfer always ends on the receiver's private *injection* link
/// (one wire per rank — the pre-topology contention model). The non-flat
/// variants add shared links along the route; each shared hop occupies its
/// link for `factor × (α + β·words)` in virtual-time consumption order, so
/// congestion compounds exactly where traffic concentrates. A `factor`
/// below 1 models a link fatter than a single rank's injection bandwidth
/// (e.g. a NIC serving a whole node); a factor above 1 models an
/// oversubscribed link.
#[derive(Debug, Clone, PartialEq)]
pub enum Topology {
    /// No shared links: transfers serialize only on the receiver's
    /// injection link. Reproduces the pre-topology virtual clock bitwise.
    Flat,
    /// Ranks packed onto nodes of `ranks_per_node`; each node has one NIC
    /// with an up (egress) and a down (ingress) link shared by all its
    /// ranks. Intra-node transfers bypass the NIC.
    NodeNic {
        /// Ranks sharing one NIC.
        ranks_per_node: usize,
        /// Occupancy factor of each NIC crossing.
        nic_factor: f64,
    },
    /// A two-level fat tree: nodes (as in [`Topology::NodeNic`]) grouped
    /// under leaf switches of `nodes_per_switch`; inter-switch transfers
    /// additionally cross the source switch's uplink and the destination
    /// switch's downlink.
    FatTree {
        /// Ranks sharing one NIC.
        ranks_per_node: usize,
        /// Nodes sharing one leaf switch.
        nodes_per_switch: usize,
        /// Occupancy factor of each NIC crossing.
        nic_factor: f64,
        /// Occupancy factor of each switch up/down-link crossing
        /// (oversubscription when > `nic_factor`).
        up_factor: f64,
    },
    /// A torus over nodes: `dims` (at most 4 dimensions) node grid with
    /// wrap-around links, dimension-ordered shortest-path routing; every
    /// inter-node hop crosses one directional link of the node it leaves.
    Torus {
        /// Ranks sharing one node.
        ranks_per_node: usize,
        /// Node-grid extents, innermost dimension first (≤ 4 dims).
        dims: Vec<usize>,
        /// Occupancy factor of each torus-link crossing.
        link_factor: f64,
    },
}

impl Topology {
    /// The congested fat tree of the `topo` experiment: 4-rank nodes under
    /// 4-node leaf switches. `nic_factor = 1/ranks_per_node` provisions each
    /// NIC for its node's full injection bandwidth (like Aries: ~10 GB/s per
    /// 36-core node vs ~0.28 GB/s per core), so NICs congest only when flows
    /// concentrate. A leaf switch aggregates 16 ranks, so a balanced spine
    /// would need `up_factor = 1/16`; `0.25` makes it 4× oversubscribed —
    /// the congestion lives in the tapered spine, as on real fat trees.
    /// Heavy enough that an algorithm's communication *volume* dominates its
    /// measured runtime (the regime the paper's speedup tail comes from),
    /// light enough that COSMA's overlap still hides communication.
    pub fn congested_fat_tree() -> Self {
        Topology::FatTree {
            ranks_per_node: 4,
            nodes_per_switch: 4,
            nic_factor: 0.25,
            up_factor: 0.25,
        }
    }

    /// Can the event scheduler shard a world under this topology across
    /// rank regions without changing any measured virtual time?
    ///
    /// Region sharding commutes with the virtual clock only when every
    /// committed quantity is a function of rank-local state plus
    /// per-sender-FIFO message envelopes. [`Topology::Flat`] qualifies: the
    /// sole charged link is the receiver's private injection wire, advanced
    /// only by the receiver's own consumptions. Every other variant charges
    /// *shared* links in global virtual-time consumption order — an order
    /// the region interleave would perturb — so
    /// `try_run_spmd_event_threads` falls back to the single-threaded
    /// engine for them, keeping stats bitwise-identical by construction.
    pub fn commutes_with_region_sharding(&self) -> bool {
        matches!(self, Topology::Flat)
    }

    /// Do the topology's parameters make sense for any world? (Positive
    /// counts, finite non-negative factors, ≤ 4 torus dimensions.)
    pub fn validate(&self) -> Result<(), &'static str> {
        let factor_ok = |f: f64| f.is_finite() && f >= 0.0;
        match self {
            Topology::Flat => Ok(()),
            Topology::NodeNic {
                ranks_per_node,
                nic_factor,
            } => {
                if *ranks_per_node == 0 {
                    Err("ranks_per_node must be positive")
                } else if !factor_ok(*nic_factor) {
                    Err("nic_factor must be finite and non-negative")
                } else {
                    Ok(())
                }
            }
            Topology::FatTree {
                ranks_per_node,
                nodes_per_switch,
                nic_factor,
                up_factor,
            } => {
                if *ranks_per_node == 0 || *nodes_per_switch == 0 {
                    Err("ranks_per_node and nodes_per_switch must be positive")
                } else if !factor_ok(*nic_factor) || !factor_ok(*up_factor) {
                    Err("link factors must be finite and non-negative")
                } else {
                    Ok(())
                }
            }
            Topology::Torus {
                ranks_per_node,
                dims,
                link_factor,
            } => {
                if *ranks_per_node == 0 {
                    Err("ranks_per_node must be positive")
                } else if dims.is_empty() || dims.len() > 4 {
                    Err("torus needs 1 to 4 dimensions")
                } else if dims.contains(&0) {
                    Err("torus dimensions must be positive")
                } else if !factor_ok(*link_factor) {
                    Err("link_factor must be finite and non-negative")
                } else {
                    Ok(())
                }
            }
        }
    }
}

/// How ranks are assigned to the topology's nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Consecutive ranks fill a node before the next one starts (MPI's
    /// default on most machines) — communication-local algorithms keep
    /// their neighbour traffic inside a node.
    Block,
    /// Rank `r` goes to node `r mod n_nodes` — maximally scattered, every
    /// neighbour exchange crosses the network.
    RoundRobin,
}

/// A distributed machine: `p` ranks, each with `mem_words` words of local
/// memory (the paper's `S`), and a communication/computation cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineSpec {
    /// Number of ranks (the paper's `p`; one rank per core in §8).
    pub p: usize,
    /// Local memory per rank in 8-byte words (the paper's `S`).
    pub mem_words: usize,
    /// Cost constants for the time model.
    pub cost: CostModel,
    /// Enforced per-rank memory budget, in words. `None` (the default)
    /// makes `S` advisory — executions only *measure* `peak_mem_words`.
    /// `Some(budget)` makes it a hard limit: a run in which any rank's
    /// tracked peak exceeds the budget returns
    /// [`ExecError::MemBudgetExceeded`](crate::exec::ExecError) from every
    /// execution backend.
    pub mem_budget: Option<u64>,
    /// Communication–computation overlap (§7.3) in the event executor's
    /// virtual clock. `true` (the default, COSMA's double-buffering edge): a
    /// posted transfer proceeds in the background on the receiver's incoming
    /// link and can hide behind the receiver's compute. `false`: every
    /// transfer is fully exposed at the receive, comm and compute strictly
    /// alternating — the model the paper uses for the non-overlapping
    /// baselines.
    pub overlap: bool,
    /// Deadlock guard: a `recv` that waits longer than this for a matching
    /// message turns the run into a typed
    /// [`ExecError::DeadlockSuspected`](crate::exec::ExecError). The
    /// blocking (threaded/sharded) backends measure the wait in wall-clock
    /// time; the event backend measures it on the rank's *virtual* clock
    /// (alongside its structural no-rank-runnable detection). Tests that
    /// provoke deadlocks shrink it.
    pub recv_timeout: Duration,
    /// The interconnect shape routing every transfer (see [`Topology`]).
    /// [`Topology::Flat`] (the default) reproduces the pre-topology
    /// per-receiver-link virtual clock bitwise.
    pub topology: Topology,
    /// Rank→node assignment under the topology (see [`Placement`]).
    /// Ignored by [`Topology::Flat`].
    pub placement: Placement,
    /// Deterministic fault injection (see [`FaultPlan`]). `None` (the
    /// default) runs fault-free. `Some(plan)` makes the event backend kill
    /// the plan's scheduled ranks at their virtual death times and lose the
    /// plan's scheduled messages; a run the faults keep from completing
    /// returns [`ExecError::RankFailed`](crate::exec::ExecError). A
    /// quiescent plan ([`FaultPlan::new`]) is bitwise a no-op. The blocking
    /// backends ignore the plan (no virtual clock to key death times
    /// against).
    pub faults: Option<FaultPlan>,
    /// Buffer-reuse arenas (§7 "buffer reuse"). `true` (the default): the
    /// world's [`BufferPool`](crate::pool::BufferPool) recycles message
    /// payloads, collective scratch and leaf buffers across the run.
    /// `false`: every take is a fresh allocation. Either way results,
    /// counters and virtual times are bitwise-identical — the pool only
    /// changes where bytes live, never what they hold (the pooling-on/off
    /// property suite gates this).
    pub pooling: bool,
}

impl MachineSpec {
    /// A machine with explicit parameters (advisory memory).
    pub fn new(p: usize, mem_words: usize, cost: CostModel) -> Self {
        assert!(p > 0, "machine needs at least one rank");
        assert!(mem_words > 0, "ranks need memory");
        MachineSpec {
            p,
            mem_words,
            cost,
            mem_budget: None,
            overlap: true,
            recv_timeout: DEFAULT_RECV_TIMEOUT,
            topology: Topology::Flat,
            placement: Placement::Block,
            faults: None,
            pooling: true,
        }
    }

    /// Enable or disable buffer-reuse arenas (see [`MachineSpec::pooling`]).
    pub fn with_pooling(mut self, pooling: bool) -> Self {
        self.pooling = pooling;
        self
    }

    /// Attach a deterministic fault-injection plan (see
    /// [`MachineSpec::faults`]).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Set the interconnect topology (see [`MachineSpec::topology`]).
    ///
    /// # Panics
    /// Panics when the topology's parameters are invalid
    /// ([`Topology::validate`]).
    pub fn with_topology(mut self, topology: Topology) -> Self {
        if let Err(why) = topology.validate() {
            panic!("invalid topology: {why}");
        }
        self.topology = topology;
        self
    }

    /// Set the rank→node placement (see [`MachineSpec::placement`]).
    pub fn with_placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// Set communication–computation overlap for the event executor's
    /// virtual clock (see [`MachineSpec::overlap`]).
    pub fn with_overlap(mut self, overlap: bool) -> Self {
        self.overlap = overlap;
        self
    }

    /// Set the blocking backends' deadlock guard (see
    /// [`MachineSpec::recv_timeout`]).
    pub fn with_recv_timeout(mut self, timeout: Duration) -> Self {
        self.recv_timeout = timeout;
        self
    }

    /// Enforce `words` as a hard per-rank memory budget (see
    /// [`MachineSpec::mem_budget`]).
    pub fn with_mem_budget(mut self, words: u64) -> Self {
        self.mem_budget = Some(words);
        self
    }

    /// Enforce the machine's own `S` as the hard per-rank budget — the
    /// paper's limited-memory regime taken literally.
    pub fn enforcing_memory(self) -> Self {
        let words = self.mem_words as u64;
        self.with_mem_budget(words)
    }

    /// Piz-Daint-like machine: one rank per core, 64 GiB per 36-core node
    /// (≈238 M words per core), two-sided backend. This mirrors §8's
    /// "we set p to the number of available cores and S to the main memory
    /// size per core".
    pub fn piz_daint(p: usize) -> Self {
        MachineSpec::new(p, 64 * 1024 * 1024 * 1024 / 36 / 8, CostModel::piz_daint_two_sided())
    }

    /// Piz-Daint-like machine with a reduced per-rank memory — used by the
    /// "limited memory" scenarios where `S` is scaled to the problem.
    pub fn piz_daint_with_memory(p: usize, mem_words: usize) -> Self {
        MachineSpec::new(p, mem_words, CostModel::piz_daint_two_sided())
    }

    /// A tiny test machine: `p` ranks with `mem_words` memory and a unit cost
    /// model — convenient in unit tests.
    pub fn test_machine(p: usize, mem_words: usize) -> Self {
        MachineSpec::new(
            p,
            mem_words,
            CostModel {
                peak_flops: 1e9,
                kernel_efficiency: 1.0,
                alpha_s: 1e-6,
                beta_s_per_word: 1e-9,
            },
        )
    }

    /// Can the three matrices of an `m x k · k x n` product fit in the
    /// collective memory? (The paper's §6 assumption
    /// `pS ≥ mn + mk + nk`.)
    pub fn fits_problem(&self, m: usize, n: usize, k: usize) -> bool {
        let need = m as u128 * n as u128 + m as u128 * k as u128 + n as u128 * k as u128;
        (self.p as u128) * (self.mem_words as u128) >= need
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn piz_daint_memory_per_core() {
        let m = MachineSpec::piz_daint(1024);
        assert_eq!(m.p, 1024);
        // 64 GiB / 36 cores / 8 bytes ≈ 238 M words.
        assert!(m.mem_words > 230_000_000 && m.mem_words < 245_000_000);
    }

    #[test]
    fn fits_problem_boundary() {
        let m = MachineSpec::test_machine(4, 100);
        // mn + mk + nk = 100 + 100 + 100 = 300 <= 400.
        assert!(m.fits_problem(10, 10, 10));
        // 3 * 400 = 1200 > 400.
        assert!(!m.fits_problem(20, 20, 20));
    }

    #[test]
    fn fits_problem_no_overflow_at_paper_scale() {
        let m = MachineSpec::piz_daint(2048);
        // The RPA workload: m = n = 17,408, k = 3,735,552.
        assert!(m.fits_problem(17_408, 17_408, 3_735_552));
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = MachineSpec::test_machine(0, 10);
    }

    #[test]
    fn mem_budget_defaults_off_and_enforces_s() {
        let m = MachineSpec::test_machine(4, 100);
        assert_eq!(m.mem_budget, None);
        assert_eq!(m.clone().enforcing_memory().mem_budget, Some(100));
        assert_eq!(m.with_mem_budget(64).mem_budget, Some(64));
    }

    #[test]
    fn topology_defaults_flat_block() {
        let m = MachineSpec::test_machine(4, 100);
        assert_eq!(m.topology, Topology::Flat);
        assert_eq!(m.placement, Placement::Block);
        let m = m
            .with_topology(Topology::congested_fat_tree())
            .with_placement(Placement::RoundRobin);
        assert_eq!(
            m.topology,
            Topology::FatTree {
                ranks_per_node: 4,
                nodes_per_switch: 4,
                nic_factor: 0.25,
                up_factor: 0.25
            }
        );
        assert_eq!(m.placement, Placement::RoundRobin);
    }

    #[test]
    fn topology_validation_rejects_nonsense() {
        assert!(Topology::Flat.validate().is_ok());
        assert!(Topology::NodeNic {
            ranks_per_node: 0,
            nic_factor: 1.0
        }
        .validate()
        .is_err());
        assert!(Topology::NodeNic {
            ranks_per_node: 2,
            nic_factor: f64::NAN
        }
        .validate()
        .is_err());
        assert!(Topology::Torus {
            ranks_per_node: 2,
            dims: vec![2, 2, 2, 2, 2],
            link_factor: 1.0
        }
        .validate()
        .is_err());
        assert!(Topology::Torus {
            ranks_per_node: 2,
            dims: vec![4, 4],
            link_factor: 0.5
        }
        .validate()
        .is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid topology")]
    fn with_topology_panics_on_invalid() {
        let _ = MachineSpec::test_machine(4, 100).with_topology(Topology::NodeNic {
            ranks_per_node: 0,
            nic_factor: 1.0,
        });
    }

    #[test]
    fn pooling_defaults_on_and_toggles() {
        let m = MachineSpec::test_machine(4, 100);
        assert!(m.pooling, "buffer-reuse arenas are the default");
        assert!(!m.with_pooling(false).pooling);
    }

    #[test]
    fn overlap_and_timeout_knobs() {
        let m = MachineSpec::test_machine(4, 100);
        assert!(m.overlap, "overlap (double buffering) is the default");
        assert_eq!(m.recv_timeout, DEFAULT_RECV_TIMEOUT);
        let m = m.with_overlap(false).with_recv_timeout(Duration::from_millis(50));
        assert!(!m.overlap);
        assert_eq!(m.recv_timeout, Duration::from_millis(50));
    }
}
