//! Size-classed buffer-reuse arenas for the data plane (§7 "buffer reuse").
//!
//! Every layer of the execution stack moves `Vec<f64>` buffers: event-backend
//! message payloads, collective scratch chunks, CARMA's per-leaf A/B/C
//! blocks, RMA window reads. Before this module each of those was a fresh
//! heap allocation per message or per leaf; at million-rank world sizes the
//! allocator churn dominates wall-clock. A [`BufferPool`] recycles them:
//! buffers are parked on power-of-two *size-class shelves* when a consumer is
//! done ([`BufferPool::give`]) and handed back out on the next request of a
//! compatible size ([`BufferPool::take_clear`] and friends).
//!
//! # Invisibility contract
//!
//! Recycling must not perturb a single bit of results, counters or virtual
//! time. The pool guarantees that structurally:
//!
//! * every `take_*` variant returns a buffer whose *observable contents* are
//!   fully specified — empty ([`take_clear`](BufferPool::take_clear)), zeroed
//!   ([`take_zeroed`](BufferPool::take_zeroed)) or a copy of the source
//!   ([`take_copy`](BufferPool::take_copy)) — so a recycled buffer is
//!   indistinguishable from a fresh allocation;
//! * the pool never touches the simulator: word counters and the virtual
//!   clock are charged from buffer *lengths*, which the pool preserves
//!   exactly.
//!
//! Pool hit/miss counters are therefore *observability* data (surfaced in the
//! bench tables), never part of the bitwise-gated `RankStats`: on threaded
//! backends the interleaving of takes is scheduling-dependent, so hit counts
//! are not deterministic even though every result bit is.
//!
//! # Ownership
//!
//! One pool per world ([`crate::machine::MachineSpec::pooling`] controls
//! whether it recycles or degenerates to plain allocation), shared by all
//! ranks behind an [`Arc`]. The serving layer goes one step further and hands
//! the *same* arena to every world admitted through its scheduler pool, so
//! steady-state traffic reuses one warm arena across jobs instead of
//! reallocating per request.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of power-of-two size classes: shelf `k` parks buffers whose
/// capacity lies in `[2^k, 2^(k+1))`, so 48 shelves cover every buffer a
/// simulated world can address.
const CLASSES: usize = 48;

/// Per-class retention cap: shelves keep at most this many parked buffers;
/// further returns are dropped (freed) so a burst cannot pin memory forever.
const MAX_PER_CLASS: usize = 1024;

/// Cumulative counters of a [`BufferPool`]'s traffic.
///
/// `misses` is the number of real heap allocations the data plane performed
/// (the `allocs` column of the bench tables); `hits` the number of requests
/// served by recycling. Counts are exact but — on multi-threaded backends —
/// not deterministic across runs: which rank's take finds a parked buffer
/// depends on OS scheduling. They are display/gating observability data,
/// never compared bitwise.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Requests served from a shelf (no allocation).
    pub hits: u64,
    /// Requests that fell through to a fresh allocation.
    pub misses: u64,
    /// Buffers handed back to the pool.
    pub returns: u64,
}

impl PoolStats {
    /// Real allocations performed — the `allocs` bench column.
    pub fn allocs(&self) -> u64 {
        self.misses
    }

    /// Fraction of requests served by recycling, in `[0, 1]`; zero when no
    /// requests were made.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl fmt::Display for PoolStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} allocs, {:.0}% pool hits", self.misses, self.hit_rate() * 100.0)
    }
}

/// A size-classed free list of `Vec<f64>` buffers shared by one world (or,
/// in the serving layer, by many worlds).
///
/// See the [module docs](self) for the invisibility contract. A disabled
/// pool ([`BufferPool::disabled`]) keeps the same API but never parks or
/// recycles anything — every take is a fresh allocation, every give a drop —
/// which is what the pooling-on/off equivalence suite runs against.
pub struct BufferPool {
    enabled: bool,
    shelves: Vec<Mutex<Vec<Vec<f64>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    returns: AtomicU64,
}

impl BufferPool {
    /// A pool that recycles (`enabled = true`) or degenerates to plain
    /// allocation (`enabled = false`).
    pub fn new(enabled: bool) -> Self {
        BufferPool {
            enabled,
            shelves: (0..CLASSES).map(|_| Mutex::new(Vec::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            returns: AtomicU64::new(0),
        }
    }

    /// A recycling pool behind an [`Arc`], ready to share across ranks.
    pub fn shared() -> Arc<Self> {
        Arc::new(BufferPool::new(true))
    }

    /// A pass-through pool: plain allocation, no recycling.
    pub fn disabled() -> Self {
        BufferPool::new(false)
    }

    /// Does this pool actually recycle?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The shelf that *serves* a request for at least `min_cap` words:
    /// every buffer parked on shelf `k` has capacity `>= 2^k >= min_cap`.
    fn class_for_request(min_cap: usize) -> usize {
        (min_cap.next_power_of_two().trailing_zeros() as usize).min(CLASSES - 1)
    }

    /// The shelf a buffer of capacity `cap` parks on: `floor(log2(cap))`,
    /// so its capacity is `>= 2^k` and it can serve any request `<= 2^k`.
    fn class_for_buffer(cap: usize) -> usize {
        debug_assert!(cap > 0);
        ((usize::BITS - 1 - cap.leading_zeros()) as usize).min(CLASSES - 1)
    }

    /// Take an *empty* buffer with capacity at least `min_cap` — for callers
    /// that build contents with `push`/`extend_from_slice`.
    pub fn take_clear(&self, min_cap: usize) -> Vec<f64> {
        let k = Self::class_for_request(min_cap);
        if self.enabled {
            if let Some(mut v) = self.shelves[k].lock().unwrap().pop() {
                self.hits.fetch_add(1, Ordering::Relaxed);
                v.clear();
                debug_assert!(v.capacity() >= min_cap);
                return v;
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Allocate the full class size so the buffer's class is stable
        // across recycling round-trips.
        Vec::with_capacity(1usize << k)
    }

    /// Take a buffer of exactly `len` zeros — for accumulators that sum into
    /// their contents before reading them.
    pub fn take_zeroed(&self, len: usize) -> Vec<f64> {
        let mut v = self.take_clear(len);
        v.resize(len, 0.0);
        v
    }

    /// Take a buffer holding a copy of `src` — the pooled replacement for
    /// `src.to_vec()` / `.clone()` on the message hot path.
    pub fn take_copy(&self, src: &[f64]) -> Vec<f64> {
        let mut v = self.take_clear(src.len());
        v.extend_from_slice(src);
        v
    }

    /// Hand a consumed buffer back for recycling. Zero-capacity buffers and
    /// returns beyond the per-class retention cap are simply dropped; a
    /// disabled pool drops everything.
    pub fn give(&self, v: Vec<f64>) {
        if !self.enabled || v.capacity() == 0 {
            return;
        }
        let k = Self::class_for_buffer(v.capacity());
        let mut shelf = self.shelves[k].lock().unwrap();
        if shelf.len() < MAX_PER_CLASS {
            shelf.push(v);
            self.returns.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// [`take_clear`](Self::take_clear) behind a [`PoolHandle`] that returns
    /// the buffer on drop.
    pub fn lease_clear(self: &Arc<Self>, min_cap: usize) -> PoolHandle {
        PoolHandle {
            buf: Some(self.take_clear(min_cap)),
            pool: Arc::clone(self),
        }
    }

    /// [`take_zeroed`](Self::take_zeroed) behind a [`PoolHandle`].
    pub fn lease_zeroed(self: &Arc<Self>, len: usize) -> PoolHandle {
        PoolHandle {
            buf: Some(self.take_zeroed(len)),
            pool: Arc::clone(self),
        }
    }

    /// [`take_copy`](Self::take_copy) behind a [`PoolHandle`].
    pub fn lease_copy(self: &Arc<Self>, src: &[f64]) -> PoolHandle {
        PoolHandle {
            buf: Some(self.take_copy(src)),
            pool: Arc::clone(self),
        }
    }

    /// Drop every parked buffer (counters survive). The serving layer calls
    /// this when a long-idle arena should release its memory; recycling
    /// resumes transparently afterwards.
    pub fn reset(&self) {
        for shelf in &self.shelves {
            shelf.lock().unwrap().clear();
        }
    }

    /// Buffers currently parked across all shelves.
    pub fn parked(&self) -> usize {
        self.shelves.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// A snapshot of the cumulative traffic counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            returns: self.returns.load(Ordering::Relaxed),
        }
    }
}

impl fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BufferPool")
            .field("enabled", &self.enabled)
            .field("parked", &self.parked())
            .field("stats", &self.stats())
            .finish()
    }
}

/// An RAII lease on a pooled buffer: derefs to the `Vec<f64>` and hands it
/// back to its pool on drop, so scratch buffers recycle even on early
/// returns. [`PoolHandle::into_vec`] detaches the buffer instead (e.g. to
/// send it as a message payload, transferring ownership to the receiver).
pub struct PoolHandle {
    buf: Option<Vec<f64>>,
    pool: Arc<BufferPool>,
}

impl PoolHandle {
    /// Detach the buffer from the lease: the handle no longer returns it on
    /// drop (the new owner is responsible for `give`-ing it back, or not).
    pub fn into_vec(mut self) -> Vec<f64> {
        self.buf.take().expect("buffer already detached")
    }
}

impl Deref for PoolHandle {
    type Target = Vec<f64>;
    fn deref(&self) -> &Vec<f64> {
        self.buf.as_ref().expect("buffer already detached")
    }
}

impl DerefMut for PoolHandle {
    fn deref_mut(&mut self) -> &mut Vec<f64> {
        self.buf.as_mut().expect("buffer already detached")
    }
}

impl Drop for PoolHandle {
    fn drop(&mut self) {
        if let Some(v) = self.buf.take() {
            self.pool.give(v);
        }
    }
}

impl fmt::Debug for PoolHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PoolHandle")
            .field("len", &self.buf.as_ref().map(Vec::len))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_a_miss_then_a_hit_after_give() {
        let pool = BufferPool::new(true);
        let v = pool.take_clear(100);
        assert!(v.capacity() >= 100);
        assert_eq!(
            pool.stats(),
            PoolStats {
                hits: 0,
                misses: 1,
                returns: 0
            }
        );
        pool.give(v);
        assert_eq!(pool.parked(), 1);
        let w = pool.take_clear(100);
        assert!(w.capacity() >= 100);
        assert!(w.is_empty());
        assert_eq!(
            pool.stats(),
            PoolStats {
                hits: 1,
                misses: 1,
                returns: 1
            }
        );
    }

    #[test]
    fn size_classes_guarantee_capacity() {
        // A buffer given back with capacity c parks on shelf floor(log2 c);
        // a request of min_cap is served from shelf ceil(log2 min_cap). Every
        // served buffer must have capacity >= min_cap.
        let pool = BufferPool::new(true);
        for cap in [1usize, 2, 3, 7, 8, 9, 100, 128, 1000, 4096] {
            pool.give(Vec::with_capacity(cap));
        }
        for want in [1usize, 2, 4, 5, 64, 100, 1024] {
            let v = pool.take_clear(want);
            assert!(v.capacity() >= want, "requested {want}, got capacity {}", v.capacity());
        }
    }

    #[test]
    fn a_parked_buffer_is_handed_out_only_once() {
        // No double-return / double-take: one give parks one buffer; two
        // takes of the same class cannot both be hits.
        let pool = BufferPool::new(true);
        pool.give(Vec::with_capacity(64));
        let _a = pool.take_clear(64);
        let _b = pool.take_clear(64);
        let st = pool.stats();
        assert_eq!(st.hits, 1);
        assert_eq!(st.misses, 1);
        assert_eq!(pool.parked(), 0);
    }

    #[test]
    fn recycled_buffers_are_content_clean() {
        let pool = BufferPool::new(true);
        pool.give(vec![7.0; 32]);
        let z = pool.take_zeroed(16);
        assert_eq!(z, vec![0.0; 16], "take_zeroed must scrub recycled contents");
        pool.give(z);
        let c = pool.take_copy(&[1.0, 2.0, 3.0]);
        assert_eq!(c, vec![1.0, 2.0, 3.0]);
        pool.give(c);
        let e = pool.take_clear(8);
        assert!(e.is_empty(), "take_clear must return an empty buffer");
    }

    #[test]
    fn reuse_after_reset() {
        let pool = BufferPool::new(true);
        pool.give(Vec::with_capacity(256));
        pool.reset();
        assert_eq!(pool.parked(), 0);
        let v = pool.take_clear(256);
        assert_eq!(pool.stats().hits, 0, "reset must empty the shelves");
        pool.give(v);
        let _ = pool.take_clear(256);
        assert_eq!(pool.stats().hits, 1, "recycling resumes after reset");
    }

    #[test]
    fn disabled_pool_never_recycles() {
        let pool = BufferPool::disabled();
        let v = pool.take_clear(64);
        pool.give(v);
        assert_eq!(pool.parked(), 0);
        let _ = pool.take_clear(64);
        let st = pool.stats();
        assert_eq!(st.hits, 0);
        assert_eq!(st.misses, 2);
        assert_eq!(st.returns, 0);
    }

    #[test]
    fn per_class_cap_bounds_retention() {
        let pool = BufferPool::new(true);
        for _ in 0..(MAX_PER_CLASS + 10) {
            pool.give(Vec::with_capacity(8));
        }
        assert_eq!(pool.parked(), MAX_PER_CLASS);
        assert_eq!(pool.stats().returns, MAX_PER_CLASS as u64);
    }

    #[test]
    fn handle_returns_on_drop_and_into_vec_detaches() {
        let pool = Arc::new(BufferPool::new(true));
        {
            let mut h = pool.lease_clear(32);
            h.extend_from_slice(&[1.0, 2.0]);
            assert_eq!(h.len(), 2);
        }
        assert_eq!(pool.parked(), 1, "handle drop returns the buffer exactly once");
        let h = pool.lease_copy(&[4.0, 5.0]);
        let v = h.into_vec();
        assert_eq!(v, vec![4.0, 5.0]);
        assert_eq!(pool.parked(), 1, "into_vec detaches: the detached buffer is not returned");
        assert_eq!(pool.stats().returns, 1);
        assert_eq!(pool.lease_zeroed(4).as_slice(), &[0.0; 4]);
    }

    #[test]
    fn zero_sized_requests_and_returns_are_safe() {
        let pool = BufferPool::new(true);
        let v = pool.take_clear(0);
        assert!(v.is_empty());
        pool.give(v); // capacity may be 0 → dropped, not parked
        let z = pool.take_zeroed(0);
        assert!(z.is_empty());
    }

    #[test]
    fn stats_display_and_rates() {
        let st = PoolStats {
            hits: 3,
            misses: 1,
            returns: 3,
        };
        assert_eq!(st.allocs(), 1);
        assert!((st.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(st.to_string(), "1 allocs, 75% pool hits");
        assert_eq!(PoolStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn pool_is_shareable_across_threads() {
        let pool = Arc::new(BufferPool::new(true));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let p = Arc::clone(&pool);
                s.spawn(move || {
                    for _ in 0..100 {
                        let v = p.take_zeroed(128);
                        p.give(v);
                    }
                });
            }
        });
        let st = pool.stats();
        assert_eq!(st.hits + st.misses, 400);
    }
}
