//! Per-rank traffic, flop, memory and virtual-time counters — the mpiP
//! substitute.
//!
//! The paper measures "total communication volume per MPI rank" with the
//! mpiP profiler (Figures 6–7, Table 4). Here every point-to-point and
//! one-sided operation updates atomic per-rank counters, bucketed by
//! [`Phase`] so that Figure 12's breakdown (A-input vs B-input vs C-output
//! traffic) can be regenerated from an actual execution.
//!
//! The event-driven executor additionally accumulates each rank's *virtual*
//! α-β-γ time here (see [`crate::event`]): seconds of compute, seconds of
//! exposed communication (stalls the rank actually waited through) and
//! seconds of hidden communication (transfer time that proceeded behind
//! other activity). A snapshot surfaces them as a
//! [`TimeBreakdown`] per rank — the measured
//! analogue of the plan-level `simulate_rounds` numbers. The blocking
//! backends do not drive a virtual clock; their time fields stay zero
//! (compare counters with [`RankStats::sans_time`]).

use std::sync::atomic::{AtomicU64, Ordering};

use crate::cost::TimeBreakdown;

/// Communication phase buckets used for the Figure-12 style breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Distributing/propagating elements of the input matrix A.
    InputA,
    /// Distributing/propagating elements of the input matrix B.
    InputB,
    /// Reducing or writing back partial results of C.
    OutputC,
    /// Initial data-layout transformation traffic (§7.6 preprocessing).
    Layout,
    /// Anything else (tests, auxiliary exchanges).
    Other,
}

/// Number of phase buckets.
pub const NUM_PHASES: usize = 5;

impl Phase {
    /// Dense index of the phase, for array-backed counters.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Phase::InputA => 0,
            Phase::InputB => 1,
            Phase::OutputC => 2,
            Phase::Layout => 3,
            Phase::Other => 4,
        }
    }

    /// All phases in index order.
    pub fn all() -> [Phase; NUM_PHASES] {
        [
            Phase::InputA,
            Phase::InputB,
            Phase::OutputC,
            Phase::Layout,
            Phase::Other,
        ]
    }
}

/// Atomic counters of a single rank.
#[derive(Debug, Default)]
pub struct RankCounters {
    words_sent: [AtomicU64; NUM_PHASES],
    words_recv: [AtomicU64; NUM_PHASES],
    msgs_sent: AtomicU64,
    msgs_recv: AtomicU64,
    flops: AtomicU64,
    cur_mem_words: AtomicU64,
    peak_mem_words: AtomicU64,
    /// Virtual seconds, stored as `f64` bit patterns (the event scheduler is
    /// the only writer; atomics keep the board `Sync` like the other fields).
    compute_s_bits: AtomicU64,
    exposed_comm_s_bits: AtomicU64,
    hidden_comm_s_bits: AtomicU64,
}

/// Add `dt` seconds into an `f64`-bits atomic accumulator.
fn add_seconds(cell: &AtomicU64, dt: f64) {
    debug_assert!(dt >= 0.0, "virtual time only moves forward (dt = {dt})");
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + dt).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

impl RankCounters {
    /// Record a sent message of `words` words in `phase`.
    pub fn record_send(&self, words: u64, phase: Phase) {
        self.words_sent[phase.index()].fetch_add(words, Ordering::Relaxed);
        self.msgs_sent.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a received message of `words` words in `phase`.
    pub fn record_recv(&self, words: u64, phase: Phase) {
        self.words_recv[phase.index()].fetch_add(words, Ordering::Relaxed);
        self.msgs_recv.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `flops` floating-point operations of local compute.
    pub fn record_flops(&self, flops: u64) {
        self.flops.fetch_add(flops, Ordering::Relaxed);
    }

    /// Record an allocation of `words` words of communication/working memory.
    pub fn record_alloc(&self, words: u64) {
        let cur = self.cur_mem_words.fetch_add(words, Ordering::Relaxed) + words;
        self.peak_mem_words.fetch_max(cur, Ordering::Relaxed);
    }

    /// Record a release of `words` words.
    pub fn record_free(&self, words: u64) {
        self.cur_mem_words.fetch_sub(words, Ordering::Relaxed);
    }

    /// Record `dt` virtual seconds of local compute (the γ term).
    pub fn record_compute_time(&self, dt: f64) {
        add_seconds(&self.compute_s_bits, dt);
    }

    /// Record communication time: `exposed` seconds the rank actually
    /// stalled and `hidden` seconds of transfer that proceeded behind other
    /// activity (double buffering, §7.3).
    pub fn record_comm_time(&self, exposed: f64, hidden: f64) {
        add_seconds(&self.exposed_comm_s_bits, exposed);
        add_seconds(&self.hidden_comm_s_bits, hidden);
    }
}

/// Immutable snapshot of one rank's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RankStats {
    /// Words sent, by phase index.
    pub words_sent: [u64; NUM_PHASES],
    /// Words received, by phase index.
    pub words_recv: [u64; NUM_PHASES],
    /// Messages sent.
    pub msgs_sent: u64,
    /// Messages received.
    pub msgs_recv: u64,
    /// Floating-point operations performed.
    pub flops: u64,
    /// Peak tracked memory, in words.
    pub peak_mem_words: u64,
    /// Virtual α-β-γ time of this rank, measured by the event executor's
    /// discrete-event clock (all-zero on the blocking backends, which have no
    /// virtual clock). `time.total_s()` is the rank's virtual finish time.
    pub time: TimeBreakdown,
}

impl RankStats {
    /// Total words sent across phases.
    pub fn total_sent(&self) -> u64 {
        self.words_sent.iter().sum()
    }

    /// Total words received across phases.
    pub fn total_recv(&self) -> u64 {
        self.words_recv.iter().sum()
    }

    /// The "communication volume per rank" reported in the paper's Table 4
    /// and Figures 6–7: words received (every received word was sent by a
    /// peer, so summing receives over ranks counts each transfer once).
    pub fn volume(&self) -> u64 {
        self.total_recv()
    }

    /// Received words of one phase.
    pub fn recv_in(&self, phase: Phase) -> u64 {
        self.words_recv[phase.index()]
    }

    /// A copy with the virtual-time fields zeroed — for comparing the
    /// *counters* of runs whose executors disagree on whether they keep a
    /// virtual clock (the event backend does, the blocking backends do not).
    pub fn sans_time(mut self) -> RankStats {
        self.time = TimeBreakdown::default();
        self
    }
}

/// Shared board of all ranks' counters.
#[derive(Debug)]
pub struct StatsBoard {
    ranks: Vec<RankCounters>,
}

impl StatsBoard {
    /// Create counters for `p` ranks.
    pub fn new(p: usize) -> Self {
        StatsBoard {
            ranks: (0..p).map(|_| RankCounters::default()).collect(),
        }
    }

    /// Number of ranks tracked.
    pub fn len(&self) -> usize {
        self.ranks.len()
    }

    /// True when tracking zero ranks.
    pub fn is_empty(&self) -> bool {
        self.ranks.is_empty()
    }

    /// Counters of one rank.
    pub fn rank(&self, r: usize) -> &RankCounters {
        &self.ranks[r]
    }

    /// Snapshot all ranks.
    pub fn snapshot(&self) -> Vec<RankStats> {
        self.ranks
            .iter()
            .map(|c| RankStats {
                words_sent: std::array::from_fn(|i| c.words_sent[i].load(Ordering::Relaxed)),
                words_recv: std::array::from_fn(|i| c.words_recv[i].load(Ordering::Relaxed)),
                msgs_sent: c.msgs_sent.load(Ordering::Relaxed),
                msgs_recv: c.msgs_recv.load(Ordering::Relaxed),
                flops: c.flops.load(Ordering::Relaxed),
                peak_mem_words: c.peak_mem_words.load(Ordering::Relaxed),
                time: {
                    let exposed = f64::from_bits(c.exposed_comm_s_bits.load(Ordering::Relaxed));
                    let hidden = f64::from_bits(c.hidden_comm_s_bits.load(Ordering::Relaxed));
                    TimeBreakdown {
                        compute_s: f64::from_bits(c.compute_s_bits.load(Ordering::Relaxed)),
                        exposed_comm_s: exposed,
                        total_comm_s: exposed + hidden,
                    }
                },
            })
            .collect()
    }
}

/// Aggregate helpers over per-rank snapshots.
pub mod aggregate {
    use super::RankStats;

    /// Maximum received volume over ranks (the paper's per-rank plots).
    pub fn max_volume(stats: &[RankStats]) -> u64 {
        stats.iter().map(RankStats::volume).max().unwrap_or(0)
    }

    /// Total received volume over all ranks (each transferred word counted
    /// once — the measured analogue of a plan's total comm words).
    pub fn total_volume(stats: &[RankStats]) -> u64 {
        stats.iter().map(RankStats::volume).sum()
    }

    /// Mean received volume over ranks.
    pub fn mean_volume(stats: &[RankStats]) -> f64 {
        if stats.is_empty() {
            return 0.0;
        }
        stats.iter().map(RankStats::volume).sum::<u64>() as f64 / stats.len() as f64
    }

    /// Total flops over ranks.
    pub fn total_flops(stats: &[RankStats]) -> u64 {
        stats.iter().map(|s| s.flops).sum()
    }

    /// Maximum per-rank peak working set over ranks, in words — the number
    /// a memory-budgeted run holds against the paper's `S`.
    pub fn max_peak_mem(stats: &[RankStats]) -> u64 {
        stats.iter().map(|s| s.peak_mem_words).max().unwrap_or(0)
    }

    /// Measured machine time: the slowest rank's virtual finish time, in
    /// seconds — the executed analogue of `SimReport::time_s` (zero on
    /// blocking-backend runs, which keep no virtual clock).
    pub fn machine_time_s(stats: &[RankStats]) -> f64 {
        stats.iter().map(|s| s.time.total_s()).fold(0.0, f64::max)
    }

    /// The slowest rank's [`TimeBreakdown`](crate::cost::TimeBreakdown) —
    /// the executed analogue of `SimReport::critical`.
    pub fn critical_time(stats: &[RankStats]) -> crate::cost::TimeBreakdown {
        stats
            .iter()
            .map(|s| s.time)
            .fold(crate::cost::TimeBreakdown::default(), |worst, t| {
                if t.total_s() > worst.total_s() {
                    t
                } else {
                    worst
                }
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_indices_are_dense_and_distinct() {
        let mut seen = [false; NUM_PHASES];
        for p in Phase::all() {
            assert!(!seen[p.index()], "duplicate index for {p:?}");
            seen[p.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn counters_accumulate() {
        let board = StatsBoard::new(2);
        board.rank(0).record_send(100, Phase::InputA);
        board.rank(0).record_send(50, Phase::InputA);
        board.rank(1).record_recv(150, Phase::InputB);
        board.rank(0).record_flops(1000);
        let snap = board.snapshot();
        assert_eq!(snap[0].words_sent[Phase::InputA.index()], 150);
        assert_eq!(snap[0].msgs_sent, 2);
        assert_eq!(snap[1].words_recv[Phase::InputB.index()], 150);
        assert_eq!(snap[1].msgs_recv, 1);
        assert_eq!(snap[0].flops, 1000);
        assert_eq!(snap[0].total_sent(), 150);
        assert_eq!(snap[1].volume(), 150);
        assert_eq!(snap[1].recv_in(Phase::InputB), 150);
        assert_eq!(snap[1].recv_in(Phase::InputA), 0);
    }

    #[test]
    fn memory_peak_tracks_high_water_mark() {
        let board = StatsBoard::new(1);
        board.rank(0).record_alloc(100);
        board.rank(0).record_alloc(200);
        board.rank(0).record_free(250);
        board.rank(0).record_alloc(100);
        let snap = board.snapshot();
        assert_eq!(snap[0].peak_mem_words, 300);
    }

    #[test]
    fn counters_are_thread_safe() {
        let board = std::sync::Arc::new(StatsBoard::new(1));
        let threads = 8;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let b = board.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        b.rank(0).record_send(1, Phase::Other);
                    }
                });
            }
        });
        let snap = board.snapshot();
        assert_eq!(snap[0].words_sent[Phase::Other.index()], 8000);
        assert_eq!(snap[0].msgs_sent, 8000);
    }

    #[test]
    fn virtual_time_accumulates_and_snapshots() {
        let board = StatsBoard::new(2);
        board.rank(0).record_compute_time(1.5);
        board.rank(0).record_compute_time(0.25);
        board.rank(0).record_comm_time(0.5, 2.0);
        board.rank(1).record_comm_time(0.125, 0.0);
        let snap = board.snapshot();
        assert_eq!(snap[0].time.compute_s, 1.75);
        assert_eq!(snap[0].time.exposed_comm_s, 0.5);
        assert_eq!(snap[0].time.total_comm_s, 2.5);
        assert_eq!(snap[0].time.total_s(), 2.25);
        assert_eq!(aggregate::machine_time_s(&snap), 2.25);
        assert_eq!(aggregate::critical_time(&snap), snap[0].time);
        assert_eq!(snap[0].sans_time().time, TimeBreakdown::default());
        // Counters are untouched by the clock: both ranks moved zero words.
        assert_eq!(snap[0].sans_time(), snap[1].sans_time());
        assert_eq!(aggregate::machine_time_s(&[]), 0.0);
    }

    #[test]
    fn aggregates() {
        let stats = vec![
            RankStats {
                words_recv: [10, 0, 0, 0, 0],
                flops: 5,
                ..Default::default()
            },
            RankStats {
                words_recv: [0, 30, 0, 0, 0],
                flops: 7,
                ..Default::default()
            },
        ];
        assert_eq!(aggregate::max_volume(&stats), 30);
        assert_eq!(aggregate::total_volume(&stats), 40);
        assert!((aggregate::mean_volume(&stats) - 20.0).abs() < 1e-12);
        assert_eq!(aggregate::total_flops(&stats), 12);
        assert_eq!(aggregate::max_volume(&[]), 0);
        assert_eq!(aggregate::mean_volume(&[]), 0.0);
        assert_eq!(aggregate::max_peak_mem(&[]), 0);
        let mut with_mem = stats;
        with_mem[0].peak_mem_words = 70;
        with_mem[1].peak_mem_words = 90;
        assert_eq!(aggregate::max_peak_mem(&with_mem), 90);
    }
}
