//! Compiled network routing for the event executor's contention model.
//!
//! A [`Network`] is a [`Topology`] + [`Placement`] resolved against a
//! concrete world size: every rank is assigned a node, every link gets a
//! dense id, and [`Network::for_each_hop`] yields the ordered links a
//! transfer crosses. The event executor keeps one availability time per
//! link and charges each hop's occupancy in virtual-time consumption order
//! (store-and-forward), so shared links compound congestion exactly where
//! traffic concentrates.
//!
//! Link-id layout (dense, so availability is a flat `Vec<f64>`):
//!
//! * `0..p` — per-rank *injection* links: the receiver's private wire,
//!   factor 1.0, the last hop of **every** route. A [`Topology::Flat`]
//!   route is this hop alone, which reproduces the pre-topology
//!   per-receiver-link model bitwise.
//! * node NICs (`NodeNic`/`FatTree`) — `p + 2·node` (up) and
//!   `p + 2·node + 1` (down);
//! * leaf switches (`FatTree`) — after all node links: `sw_base + 2·switch`
//!   (up) and `sw_base + 2·switch + 1` (down);
//! * torus links — `p + (node·ndims + dim)·2 + direction`, the directional
//!   wrap-around link a hop *leaves* a node on.

use crate::machine::{MachineSpec, Placement, Topology};

/// Routing tables of one concrete machine: rank→node map plus the link-id
/// arithmetic of its [`Topology`].
#[derive(Debug, Clone)]
pub struct Network {
    p: usize,
    n_links: usize,
    /// Node of each rank (empty for [`Topology::Flat`], which has no
    /// shared links and never consults it).
    node: Vec<usize>,
    kind: Kind,
}

#[derive(Debug, Clone)]
enum Kind {
    Flat,
    NodeNic {
        nic_factor: f64,
    },
    FatTree {
        nic_factor: f64,
        up_factor: f64,
        nodes_per_switch: usize,
        sw_base: usize,
    },
    Torus {
        link_factor: f64,
        dims: Vec<usize>,
    },
}

/// Rank→node assignment: [`Placement::Block`] fills nodes consecutively,
/// [`Placement::RoundRobin`] scatters (both total via wrap-around, so any
/// `(p, n_nodes)` combination is valid).
fn node_of(rank: usize, ranks_per_node: usize, n_nodes: usize, placement: Placement) -> usize {
    match placement {
        Placement::Block => (rank / ranks_per_node) % n_nodes,
        Placement::RoundRobin => rank % n_nodes,
    }
}

impl Network {
    /// Compile `spec`'s topology and placement for its world size.
    ///
    /// # Panics
    /// Panics when the topology's parameters are invalid
    /// ([`Topology::validate`]) — [`MachineSpec::with_topology`] rejects
    /// them earlier on the builder path.
    pub fn new(spec: &MachineSpec) -> Self {
        Network::compile(spec.p, &spec.topology, spec.placement)
    }

    /// [`Network::new`] from the raw parts.
    pub fn compile(p: usize, topology: &Topology, placement: Placement) -> Self {
        if let Err(why) = topology.validate() {
            panic!("invalid topology: {why}");
        }
        match topology {
            Topology::Flat => Network {
                p,
                n_links: p,
                node: Vec::new(),
                kind: Kind::Flat,
            },
            Topology::NodeNic {
                ranks_per_node,
                nic_factor,
            } => {
                let n_nodes = p.div_ceil(*ranks_per_node);
                Network {
                    p,
                    n_links: p + 2 * n_nodes,
                    node: (0..p).map(|r| node_of(r, *ranks_per_node, n_nodes, placement)).collect(),
                    kind: Kind::NodeNic {
                        nic_factor: *nic_factor,
                    },
                }
            }
            Topology::FatTree {
                ranks_per_node,
                nodes_per_switch,
                nic_factor,
                up_factor,
            } => {
                let n_nodes = p.div_ceil(*ranks_per_node);
                let n_switches = n_nodes.div_ceil(*nodes_per_switch);
                let sw_base = p + 2 * n_nodes;
                Network {
                    p,
                    n_links: sw_base + 2 * n_switches,
                    node: (0..p).map(|r| node_of(r, *ranks_per_node, n_nodes, placement)).collect(),
                    kind: Kind::FatTree {
                        nic_factor: *nic_factor,
                        up_factor: *up_factor,
                        nodes_per_switch: *nodes_per_switch,
                        sw_base,
                    },
                }
            }
            Topology::Torus {
                ranks_per_node,
                dims,
                link_factor,
            } => {
                let n_nodes: usize = dims.iter().product();
                Network {
                    p,
                    n_links: p + n_nodes * dims.len() * 2,
                    node: (0..p).map(|r| node_of(r, *ranks_per_node, n_nodes, placement)).collect(),
                    kind: Kind::Torus {
                        link_factor: *link_factor,
                        dims: dims.clone(),
                    },
                }
            }
        }
    }

    /// Number of links, the size of the executor's availability vector.
    pub fn n_links(&self) -> usize {
        self.n_links
    }

    /// Node of `rank` (itself, for the nodeless flat topology).
    pub fn node_of_rank(&self, rank: usize) -> usize {
        if self.node.is_empty() {
            rank
        } else {
            self.node[rank]
        }
    }

    /// Yield `(link_id, occupancy_factor)` for every link a `from → to`
    /// transfer crosses, in crossing order. The receiver's injection link
    /// (id `to`, factor 1.0) is always the final hop; intra-node transfers
    /// cross nothing else.
    pub fn for_each_hop(&self, from: usize, to: usize, mut f: impl FnMut(usize, f64)) {
        match &self.kind {
            Kind::Flat => {}
            Kind::NodeNic { nic_factor } => {
                let (a, b) = (self.node[from], self.node[to]);
                if a != b {
                    f(self.p + 2 * a, *nic_factor);
                    f(self.p + 2 * b + 1, *nic_factor);
                }
            }
            Kind::FatTree {
                nic_factor,
                up_factor,
                nodes_per_switch,
                sw_base,
            } => {
                let (a, b) = (self.node[from], self.node[to]);
                if a != b {
                    f(self.p + 2 * a, *nic_factor);
                    let (sa, sb) = (a / nodes_per_switch, b / nodes_per_switch);
                    if sa != sb {
                        f(sw_base + 2 * sa, *up_factor);
                        f(sw_base + 2 * sb + 1, *up_factor);
                    }
                    f(self.p + 2 * b + 1, *nic_factor);
                }
            }
            Kind::Torus { link_factor, dims } => {
                let (a, b) = (self.node[from], self.node[to]);
                if a != b {
                    // Dimension-ordered shortest-path routing: walk each
                    // dimension to its target coordinate in the shorter
                    // wrap direction (ties go positive), charging the
                    // directional link of every node the hop leaves.
                    let nd = dims.len();
                    let mut cur = a;
                    let mut coord = [0usize; 4];
                    let mut rest = a;
                    for (d, &len) in dims.iter().enumerate() {
                        coord[d] = rest % len;
                        rest /= len;
                    }
                    let mut target = [0usize; 4];
                    rest = b;
                    for (d, &len) in dims.iter().enumerate() {
                        target[d] = rest % len;
                        rest /= len;
                    }
                    // Stride of dimension d in the node id.
                    let mut stride = [0usize; 4];
                    let mut s = 1usize;
                    for (d, &len) in dims.iter().enumerate() {
                        stride[d] = s;
                        s *= len;
                    }
                    for d in 0..nd {
                        let len = dims[d];
                        let fwd = (target[d] + len - coord[d]) % len;
                        let (steps, dir) = if fwd <= len - fwd {
                            (fwd, 0)
                        } else {
                            (len - fwd, 1)
                        };
                        for _ in 0..steps {
                            f(self.p + (cur * nd + d) * 2 + dir, *link_factor);
                            let next_c = if dir == 0 {
                                (coord[d] + 1) % len
                            } else {
                                (coord[d] + len - 1) % len
                            };
                            cur = cur + next_c * stride[d] - coord[d] * stride[d];
                            coord[d] = next_c;
                        }
                    }
                    debug_assert_eq!(cur, b, "torus route must land on the target node");
                }
            }
        }
        f(to, 1.0);
    }

    /// Number of link crossings of a `from → to` transfer (diagnostics).
    pub fn hop_count(&self, from: usize, to: usize) -> usize {
        let mut n = 0;
        self.for_each_hop(from, to, |_, _| n += 1);
        n
    }

    /// The conservative-synchronization lookahead of this network under a
    /// cost model with link latency `alpha_s`: a lower bound on the virtual
    /// time between a message being *posted* and it *completing* at the
    /// receiver, over every rank pair and network state.
    ///
    /// The parallel event scheduler advances all regions through lockstep
    /// windows of this width — a message sent inside the window
    /// `[floor, floor + lookahead)` cannot complete before `floor +
    /// lookahead`, so windows are closed under event generation. Every
    /// transfer pays the full α latency end-to-end exactly once (routing
    /// adds bandwidth serialization on shared links, never a latency
    /// discount), so the bound is `alpha_s` on every topology; a zero or
    /// negative α yields zero lookahead, which disables sharding.
    pub fn region_lookahead_s(&self, alpha_s: f64) -> f64 {
        alpha_s
    }

    /// The mean-field contention multiplier of the network under uniform
    /// traffic: the expected effective per-word cost of a transfer between
    /// a uniformly random rank pair, relative to the flat wire.
    ///
    /// Each link's *sharers* count is its uniform all-to-all load,
    /// `flows(link) / (p − 1)` where `flows` counts the ordered rank pairs
    /// whose route crosses the link — exactly the average number of
    /// transfers the event executor serializes behind one another on that
    /// link when every rank is receiving. A route's effective cost is
    /// `Σ factor(hop) · sharers(hop)` and the multiplier is the mean over
    /// all ordered pairs. Scaling a cost model's β by it gives the
    /// plan-level view of the executor's shared-link contention
    /// ([`crate::cost::CostModel::with_contention`]).
    ///
    /// [`Topology::Flat`] yields exactly `1.0` (every route is the
    /// receiver's uncontended injection link), so the scaled model stays
    /// bitwise-identical to the unscaled one.
    pub fn mean_contention(&self) -> f64 {
        if self.p < 2 || matches!(self.kind, Kind::Flat) {
            return 1.0;
        }
        let mut flows = vec![0u64; self.n_links];
        for s in 0..self.p {
            for r in 0..self.p {
                if s != r {
                    self.for_each_hop(s, r, |link, _| flows[link] += 1);
                }
            }
        }
        let denom = (self.p - 1) as f64;
        let mut total = 0.0;
        for s in 0..self.p {
            for r in 0..self.p {
                if s != r {
                    self.for_each_hop(s, r, |link, factor| {
                        total += factor * (flows[link] as f64 / denom);
                    });
                }
            }
        }
        total / (self.p as f64 * denom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hops(net: &Network, from: usize, to: usize) -> Vec<(usize, f64)> {
        let mut out = Vec::new();
        net.for_each_hop(from, to, |l, f| out.push((l, f)));
        out
    }

    #[test]
    fn flat_routes_only_the_injection_link() {
        let net = Network::compile(8, &Topology::Flat, Placement::Block);
        assert_eq!(net.n_links(), 8);
        assert_eq!(hops(&net, 3, 5), vec![(5, 1.0)]);
        assert_eq!(hops(&net, 5, 5), vec![(5, 1.0)]);
    }

    #[test]
    fn node_nic_routes_cross_both_nics() {
        let topo = Topology::NodeNic {
            ranks_per_node: 4,
            nic_factor: 0.5,
        };
        let net = Network::compile(8, &topo, Placement::Block);
        // 2 nodes: links 8..12 are node links.
        assert_eq!(net.n_links(), 8 + 4);
        // Intra-node: injection only.
        assert_eq!(hops(&net, 0, 3), vec![(3, 1.0)]);
        // Inter-node: node 0 up (8), node 1 down (11), injection.
        assert_eq!(hops(&net, 0, 5), vec![(8, 0.5), (11, 0.5), (5, 1.0)]);
    }

    #[test]
    fn placement_changes_node_assignment() {
        let topo = Topology::NodeNic {
            ranks_per_node: 2,
            nic_factor: 1.0,
        };
        let block = Network::compile(4, &topo, Placement::Block);
        let rr = Network::compile(4, &topo, Placement::RoundRobin);
        // Block: {0,1} {2,3}; round-robin: {0,2} {1,3}.
        assert_eq!(hops(&block, 0, 1).len(), 1);
        assert_eq!(hops(&rr, 0, 1).len(), 3);
        assert_eq!(hops(&rr, 0, 2).len(), 1);
    }

    #[test]
    fn fat_tree_adds_switch_hops_across_switches() {
        let topo = Topology::FatTree {
            ranks_per_node: 2,
            nodes_per_switch: 2,
            nic_factor: 0.5,
            up_factor: 2.0,
        };
        // p = 8: 4 nodes, 2 switches. Node links 8..16, switch links 16..20.
        let net = Network::compile(8, &topo, Placement::Block);
        assert_eq!(net.n_links(), 8 + 8 + 4);
        // Same node.
        assert_eq!(hops(&net, 0, 1), vec![(1, 1.0)]);
        // Same switch (nodes 0 and 1): NICs only.
        assert_eq!(hops(&net, 0, 2), vec![(8, 0.5), (11, 0.5), (2, 1.0)]);
        // Cross switch (node 0 → node 2): NIC up, switch 0 up, switch 1
        // down, NIC down, injection.
        assert_eq!(hops(&net, 0, 4), vec![(8, 0.5), (16, 2.0), (19, 2.0), (13, 0.5), (4, 1.0)]);
    }

    #[test]
    fn torus_routes_dimension_ordered_shortest_paths() {
        let topo = Topology::Torus {
            ranks_per_node: 1,
            dims: vec![4, 4],
            link_factor: 1.0,
        };
        let net = Network::compile(16, &topo, Placement::Block);
        assert_eq!(net.n_links(), 16 + 16 * 2 * 2);
        // Node ids are rank ids (1 rank/node): node 0 = (0,0), node 6 =
        // (2,1). Route: +x twice, +y once → 3 torus hops + injection.
        assert_eq!(hops(&net, 0, 6).len(), 4);
        // Wrap-around is shorter for (0,0) → (3,0): one −x hop.
        assert_eq!(hops(&net, 0, 3).len(), 2);
        // Every route must land on the target (debug_assert inside), and
        // hop counts are symmetric on a symmetric torus.
        for from in 0..16 {
            for to in 0..16 {
                assert_eq!(net.hop_count(from, to), net.hop_count(to, from), "{from}->{to}");
            }
        }
    }

    #[test]
    fn mean_contention_is_exactly_one_on_flat() {
        let net = Network::compile(16, &Topology::Flat, Placement::Block);
        assert_eq!(net.mean_contention(), 1.0);
    }

    #[test]
    fn mean_contention_matches_hand_count_on_two_nodes() {
        // p = 4 on 2 nodes of 2, nic factor 1: flows — injection links 3
        // each (sharers 1), NIC up/down 2·2 = 4 each (sharers 4/3). An
        // intra-node route costs 1; an inter-node route costs
        // 1 + 2·(4/3) = 11/3. Per rank: 1 intra peer, 2 inter peers →
        // mean = (1 + 2·11/3) / 3 = 25/9.
        let topo = Topology::NodeNic {
            ranks_per_node: 2,
            nic_factor: 1.0,
        };
        let net = Network::compile(4, &topo, Placement::Block);
        assert!((net.mean_contention() - 25.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn mean_contention_grows_with_congestion_and_ignores_placement() {
        let p = 64;
        let fat = Topology::congested_fat_tree();
        let gentle = Topology::NodeNic {
            ranks_per_node: 4,
            nic_factor: 0.25,
        };
        let fat_m = Network::compile(p, &fat, Placement::Block).mean_contention();
        let gentle_m = Network::compile(p, &gentle, Placement::Block).mean_contention();
        assert!(fat_m > gentle_m && gentle_m > 1.0, "fat {fat_m}, gentle {gentle_m}");
        // Uniform traffic is placement-blind: scattering ranks relabels
        // pairs without changing the aggregate link loads.
        let rr = Network::compile(p, &fat, Placement::RoundRobin).mean_contention();
        assert!((fat_m - rr).abs() < 1e-9, "block {fat_m} vs round-robin {rr}");
    }

    #[test]
    fn torus_charges_the_departure_link_of_each_node() {
        let topo = Topology::Torus {
            ranks_per_node: 1,
            dims: vec![4],
            link_factor: 0.25,
        };
        let net = Network::compile(4, &topo, Placement::Block);
        // 0 → 2: ties go positive — nodes 0 and 1's +dir links, then
        // injection. Link id: p + (node·1 + 0)·2 + 0.
        assert_eq!(hops(&net, 0, 2), vec![(4, 0.25), (6, 0.25), (2, 1.0)]);
        // 0 → 3: shorter backwards — node 0's −dir link.
        assert_eq!(hops(&net, 0, 3), vec![(5, 0.25), (3, 1.0)]);
    }
}
