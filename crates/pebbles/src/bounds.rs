//! Closed-form I/O bounds and optimal schedule parameters (paper §4–§6).
//!
//! The headline results:
//!
//! * **Theorem 1** — any pebbling of the MMM CDAG performs at least
//!   `2mnk/√S + mn` I/O operations ([`theorem1_lower_bound`]).
//! * **Attainability (§5.2.7)** — a feasible greedy schedule achieves
//!   `2mnk/(√(S+1)−1) + mn` ([`greedy_attainable_io`]), i.e. within
//!   [`tightness_factor`] `= √S/(√(S+1)−1)` of the bound.
//! * **Theorem 2** — per-processor I/O of parallel MMM is at least
//!   `min{2mnk/(p√S) + S, 3(mnk/p)^(2/3)}` ([`theorem2_parallel_bound`]).
//! * **Lemma 4** — the computational-intensity bound `Q ≥ |V|/ρ`
//!   ([`computational_intensity`], [`intensity_lower_bound`]).
//! * **Eqs. 24–25** — the optimal X-partition parameters `a = b = ⌊√S⌋`,
//!   `ρ = ⌊√S⌋/2` ([`x_partition_params`]).
//! * **Eqs. 26–28** — the feasible-schedule tile shape `a_opt, b_opt`
//!   ([`aopt_bopt`], [`aopt_bopt_enumerated`]).

/// Theorem 1: sequential MMM I/O lower bound `2mnk/√S + mn`.
pub fn theorem1_lower_bound(m: usize, n: usize, k: usize, s: usize) -> f64 {
    let (m, n, k, s) = (m as f64, n as f64, k as f64, s as f64);
    2.0 * m * n * k / s.sqrt() + m * n
}

/// I/O of the feasible greedy schedule of §5.2.7: `2mnk/(√(S+1)−1) + mn`.
pub fn greedy_attainable_io(m: usize, n: usize, k: usize, s: usize) -> f64 {
    let (m, n, k, s) = (m as f64, n as f64, k as f64, s as f64);
    2.0 * m * n * k / ((s + 1.0).sqrt() - 1.0) + m * n
}

/// The gap between the attainable schedule and the lower bound:
/// `√S/(√(S+1)−1)`, which approaches 1 for large `S` (0.04% off for a 10 MB
/// fast memory, as the paper highlights).
pub fn tightness_factor(s: usize) -> f64 {
    let s = s as f64;
    s.sqrt() / ((s + 1.0).sqrt() - 1.0)
}

/// Theorem 2: parallel MMM per-processor I/O lower bound
/// `min{2mnk/(p√S) + S, 3(mnk/p)^(2/3)}`.
///
/// The paper's `min` selects the branch by which regime applies: the I/O
/// constraint `a² ≤ S` binds ("limited memory") exactly when
/// `p ≤ mnk/S^(3/2)`, i.e. `mnk/p ≥ S^(3/2)`; there the bound is
/// `2mnk/(p√S) + S`. Otherwise ("extra memory") the cubic-domain branch
/// `3(mnk/p)^(2/3)` applies. (Taking an arithmetic minimum would always
/// return the cubic term, because `2D/√S + S ≥ 3D^(2/3)` for every `S`, with
/// equality at `S = D^(2/3)`.)
pub fn theorem2_parallel_bound(m: usize, n: usize, k: usize, p: usize, s: usize) -> f64 {
    let (m, n, k, p, s) = (m as f64, n as f64, k as f64, p as f64, s as f64);
    let per_domain = m * n * k / p;
    if per_domain >= s.powf(1.5) {
        2.0 * per_domain / s.sqrt() + s
    } else {
        3.0 * per_domain.powf(2.0 / 3.0)
    }
}

/// Lemma 4's computational intensity of a subcomputation:
/// `ρ_i = |V_i| / (X − |V_{R,i}| + |W_{B,i}|)`.
///
/// # Panics
/// Panics if the denominator is not positive (the subcomputation would do no
/// I/O at all, which Lemma 2 excludes for `X ≥ S`).
pub fn computational_intensity(volume: u64, x: usize, reuse: usize, store: usize) -> f64 {
    let denom = x as i64 - reuse as i64 + store as i64;
    assert!(denom > 0, "computational intensity undefined for X - R + T <= 0");
    volume as f64 / denom as f64
}

/// Lemma 4's lower bound `Q ≥ |V| / ρ` given the total compute volume and the
/// maximum computational intensity.
pub fn intensity_lower_bound(total_volume: u64, rho_max: f64) -> f64 {
    assert!(rho_max > 0.0, "intensity must be positive");
    total_volume as f64 / rho_max
}

/// Hong & Kung's original bound (Lemma 1): `Q ≥ S · (H(2S) − 1)` given the
/// minimum number of parts of a valid `2S`-partition.
pub fn hong_kung_bound(s: usize, h_2s: usize) -> u64 {
    (s as u64) * (h_2s.saturating_sub(1) as u64)
}

/// Our generalized bound (Lemma 3): `Q ≥ (X − R(S) + T(S)) · (H(X) − 1)`.
pub fn lemma3_bound(x: usize, reuse: usize, store: usize, h_x: usize) -> i64 {
    (x as i64 - reuse as i64 + store as i64) * (h_x.saturating_sub(1) as i64)
}

/// Optimal X-partition parameters of Eq. 24–25: subcomputation shape
/// `a = b = ⌊√S⌋`, `c = 1`, partition size `X = a² + 2a`, and the maximal
/// computational intensity `ρ = a/2`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct XPartitionParams {
    /// Tile edge `a = b = ⌊√S⌋`.
    pub a: usize,
    /// k-extent of a subcomputation (`c = 1`).
    pub c: usize,
    /// The partition parameter `X = a² + 2a`.
    pub x: usize,
    /// Maximal computational intensity `ρ = a/2`.
    pub rho: f64,
}

/// Compute Eq. 24–25 for fast-memory size `s`.
pub fn x_partition_params(s: usize) -> XPartitionParams {
    let a = (s as f64).sqrt().floor() as usize;
    XPartitionParams {
        a,
        c: 1,
        x: a * a + 2 * a,
        rho: a as f64 / 2.0,
    }
}

/// Continuous solution of the feasible-schedule optimization (Eqs. 26–28):
/// maximize `ab/(a+b)` subject to `ab + a + 1 ≤ S`. Returns `(a_opt, b_opt)`
/// as reals; both are strictly below `√S`.
pub fn aopt_bopt(s: usize) -> (f64, f64) {
    assert!(s >= 3, "need S >= 3 for a feasible tile");
    let s = s as f64;
    let root = ((s - 1.0).powi(3)).sqrt();
    let a = (root - s + 1.0) / (s - 2.0);
    let b = -(2.0 * s + root - s * s - 1.0) / (root - s + 1.0);
    (a, b)
}

/// Exact integer solution of Eq. 26 by enumeration: the `(a, b)` maximizing
/// `ab/(a+b)` subject to `ab + a + 1 ≤ S` (keeping a full `a`-column of A and
/// one element of B resident, as in the paper's accounting).
pub fn aopt_bopt_enumerated(s: usize) -> (usize, usize) {
    assert!(s >= 3, "need S >= 3 for a feasible tile");
    let mut best = (1usize, 1usize);
    let mut best_rho = 0.0f64;
    for a in 1..s {
        if a + a + 1 > s {
            break;
        }
        let b = (s - a - 1) / a;
        if b == 0 {
            continue;
        }
        let rho = (a * b) as f64 / (a + b) as f64;
        if rho > best_rho {
            best_rho = rho;
            best = (a, b);
        }
    }
    best
}

/// The largest tile `(a, b)` maximizing `ab/(a+b)` that this workspace's
/// strict pebble-game engine can execute: the engine momentarily holds the
/// `ab` partials, the `a` A-elements, the `b` B-elements *and* the freshly
/// computed partial, so feasibility is `ab + a + b + 1 ≤ S`.
///
/// (The paper's accounting updates C partials in place, saving the `+b`;
/// both shapes differ only in lower-order terms.)
pub fn best_engine_tile(s: usize) -> (usize, usize) {
    assert!(s >= 4, "need S >= 4 for the strict engine");
    let mut best = (1usize, 1usize);
    let mut best_rho = 0.0f64;
    for a in 1..s {
        if a + a + 1 + 1 > s {
            break;
        }
        // Largest b with ab + a + b + 1 <= s  =>  b <= (s - a - 1)/(a + 1).
        let b = (s - a - 1) / (a + 1);
        if b == 0 {
            continue;
        }
        let rho = (a * b) as f64 / (a + b) as f64;
        if rho > best_rho {
            best_rho = rho;
            best = (a, b);
        }
    }
    best
}

/// Exact I/O of the tiled greedy schedule (Listing 1 generalized to `a × b`
/// tiles of C): every k-layer loads the tile's A-column fragment and B-row
/// fragment, and each output element is stored once:
/// `Q = k·(m·⌈n/b⌉ + n·⌈m/a⌉) + mn` (remainder tiles included exactly).
pub fn tiled_io(m: usize, n: usize, k: usize, a: usize, b: usize) -> u64 {
    assert!(a > 0 && b > 0, "tile sizes must be positive");
    let loads = k as u64 * (m as u64 * n.div_ceil(b) as u64 + n as u64 * m.div_ceil(a) as u64);
    loads + (m * n) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem1_known_values() {
        // 2*8/2 + 4 = 12 for 2x2x2 with S = 4.
        assert!((theorem1_lower_bound(2, 2, 2, 4) - 12.0).abs() < 1e-12);
        // Square n=1024, S=1024: 2n^3/32 + n^2.
        let q = theorem1_lower_bound(1024, 1024, 1024, 1024);
        assert!((q - (2.0 * 1024f64.powi(3) / 32.0 + 1024.0 * 1024.0)).abs() < 1e-3);
    }

    #[test]
    fn attainable_exceeds_bound_by_tightness_factor() {
        for s in [16usize, 100, 1024, 1 << 20] {
            let (m, n, k) = (64, 64, 64);
            let lb = theorem1_lower_bound(m, n, k, s);
            let at = greedy_attainable_io(m, n, k, s);
            assert!(at >= lb, "attainable below bound at S={s}");
            // The leading terms differ exactly by the tightness factor.
            let lead_lb = 2.0 * (m * n * k) as f64 / (s as f64).sqrt();
            let lead_at = 2.0 * (m * n * k) as f64 / ((s as f64 + 1.0).sqrt() - 1.0);
            assert!((lead_at / lead_lb - tightness_factor(s)).abs() < 1e-9);
        }
    }

    #[test]
    fn tightness_factor_approaches_one() {
        // 10 MB of fast memory = 1,310,720 doubles: factor < 1.001 (the
        // paper quotes 0.03%–0.04%).
        let f = tightness_factor(10 * 1024 * 1024 / 8);
        assert!(f > 1.0 && f < 1.001, "factor {f}");
        assert!(tightness_factor(16) > tightness_factor(256));
    }

    #[test]
    fn theorem2_switches_regimes() {
        let (m, n, k, p) = (1 << 12, 1 << 12, 1 << 12, 64);
        let per_domain = (m * n * k / p) as f64; // 2^30, so the knee is S = 2^20
        let s_small = 1 << 14; // limited memory -> 2mnk/(p sqrt S) + S
        let s_big = 1 << 26; // extra memory -> cubic branch
        let q_small = theorem2_parallel_bound(m, n, k, p, s_small);
        let expect_small = 2.0 * per_domain / (s_small as f64).sqrt() + s_small as f64;
        assert!((q_small - expect_small).abs() < 1e-6);
        let q_big = theorem2_parallel_bound(m, n, k, p, s_big);
        assert!((q_big - 3.0 * per_domain.powf(2.0 / 3.0)).abs() < 1e-6);
        // More memory never raises the bound, and the limited-memory bound
        // exceeds the cubic-domain bound.
        assert!(q_big <= q_small);
    }

    #[test]
    fn theorem2_continuous_at_regime_knee() {
        // At S = (mnk/p)^(2/3) both branches coincide: 2D/sqrt(S) + S = 3 D^(2/3).
        let (m, n, k, p) = (1 << 10, 1 << 10, 1 << 10, 8);
        let d = (m * n * k / p) as f64;
        let knee = d.powf(2.0 / 3.0) as usize;
        let below = theorem2_parallel_bound(m, n, k, p, knee - 1);
        let above = theorem2_parallel_bound(m, n, k, p, knee + 1);
        assert!((below - above).abs() / above < 1e-3, "{below} vs {above}");
    }

    #[test]
    fn intensity_formulas() {
        // Eq. 25: a 2D sqrt(S) x sqrt(S) x 1 block: |V| = S, X - R + T = 2 sqrt(S).
        let s = 100u64;
        let rho = computational_intensity(s, 120, 100, 0);
        assert!((rho - 5.0).abs() < 1e-12); // sqrt(100)/2
        assert!((intensity_lower_bound(1000, 5.0) - 200.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "undefined")]
    fn intensity_rejects_nonpositive_denominator() {
        let _ = computational_intensity(10, 4, 5, 0);
    }

    #[test]
    fn hong_kung_and_lemma3() {
        assert_eq!(hong_kung_bound(8, 5), 32);
        assert_eq!(hong_kung_bound(8, 0), 0);
        assert_eq!(lemma3_bound(16, 4, 2, 3), (16 - 4 + 2) * 2);
    }

    #[test]
    fn x_partition_params_match_eq24() {
        let p = x_partition_params(100);
        assert_eq!(p.a, 10);
        assert_eq!(p.c, 1);
        assert_eq!(p.x, 120);
        assert!((p.rho - 5.0).abs() < 1e-12);
        // Non-square S floors.
        let p = x_partition_params(90);
        assert_eq!(p.a, 9);
    }

    #[test]
    fn aopt_bopt_continuous_below_sqrt_s() {
        for s in [10usize, 100, 1000, 100_000] {
            let (a, b) = aopt_bopt(s);
            let rs = (s as f64).sqrt();
            assert!(a > 0.0 && a < rs, "a = {a} vs sqrt(S) = {rs}");
            assert!(b > 0.0 && b < rs, "b = {b} vs sqrt(S) = {rs}");
        }
    }

    #[test]
    fn aopt_bopt_enumerated_is_feasible_and_optimal() {
        for s in [10usize, 50, 100, 1000, 4096] {
            let (a, b) = aopt_bopt_enumerated(s);
            assert!(a * b + a < s, "infeasible at S={s}");
            let rho = (a * b) as f64 / (a + b) as f64;
            // No feasible pair beats it.
            for a2 in 1..s {
                if a2 + a2 + 1 > s {
                    break;
                }
                let b2 = (s - a2 - 1) / a2;
                if b2 == 0 {
                    continue;
                }
                let rho2 = (a2 * b2) as f64 / (a2 + b2) as f64;
                assert!(rho2 <= rho + 1e-12, "S={s}: ({a2},{b2}) beats ({a},{b})");
            }
            // And it is close to the paper's optimum rho = sqrt(S)/2 scale.
            assert!(rho >= 0.5 * ((s as f64).sqrt() / 2.0), "S={s} rho too small");
        }
    }

    #[test]
    fn aopt_bopt_continuous_close_to_enumerated() {
        for s in [100usize, 1000, 10_000] {
            let (ac, bc) = aopt_bopt(s);
            let (ae, be) = aopt_bopt_enumerated(s);
            assert!((ac - ae as f64).abs() <= 2.0, "S={s}: a {ac} vs {ae}");
            assert!((bc - be as f64).abs() <= 2.0, "S={s}: b {bc} vs {be}");
        }
    }

    #[test]
    fn best_engine_tile_feasible() {
        for s in [8usize, 16, 100, 1024] {
            let (a, b) = best_engine_tile(s);
            assert!(a * b + a + b < s, "S={s}: tile ({a},{b}) infeasible");
            assert!(a >= 1 && b >= 1);
        }
        // For square-friendly S the tile is near sqrt(S) - 1.
        let (a, b) = best_engine_tile(100);
        assert!(a.min(b) >= 7, "tile ({a},{b}) too small for S=100");
    }

    #[test]
    fn tiled_io_formula_square_tiles() {
        // 4x4x4 with 2x2 tiles: loads = 4*(4*2 + 4*2) = 64, stores = 16.
        assert_eq!(tiled_io(4, 4, 4, 2, 2), 80);
        // Degenerate 1x1 tiles = rank-1 element-wise: k*(m*n + n*m) + mn.
        assert_eq!(tiled_io(2, 3, 4, 1, 1), 4 * (2 * 3 + 3 * 2) as u64 + 6);
    }

    #[test]
    fn tiled_io_beats_bound_never() {
        for &(m, n, k, s) in &[(8, 8, 8, 9), (16, 12, 20, 16), (32, 32, 32, 36)] {
            let (a, b) = best_engine_tile(s);
            let io = tiled_io(m, n, k, a, b) as f64;
            let lb = theorem1_lower_bound(m, n, k, s);
            assert!(io >= lb, "tiled I/O {io} below bound {lb}");
        }
    }

    #[test]
    fn tiled_io_improves_with_memory() {
        let io_small = tiled_io(64, 64, 64, 3, 3);
        let io_big = tiled_io(64, 64, 64, 7, 7);
        assert!(io_big < io_small);
    }
}
