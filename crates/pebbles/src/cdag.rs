//! Computational directed acyclic graphs (CDAGs), paper §2.2.
//!
//! A vertex represents one elementary operation; an edge `(u, v)` means `v`
//! depends on the result of `u`. Inputs have no parents, outputs no children.

/// Vertex identifier within a [`Cdag`]. Kept at 32 bits — the CDAGs we pebble
/// exhaustively are tiny and the MMM CDAGs we analyze symbolically never need
/// materializing past a few million vertices.
pub type VertexId = u32;

/// A computational DAG: adjacency in both directions plus cached input/output
/// vertex sets.
#[derive(Debug, Clone)]
pub struct Cdag {
    preds: Vec<Vec<VertexId>>,
    succs: Vec<Vec<VertexId>>,
}

impl Cdag {
    /// Create a CDAG with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        Cdag {
            preds: vec![Vec::new(); n],
            succs: vec![Vec::new(); n],
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// True when the CDAG has no vertices.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// Add the dependency edge `u -> v` (`v` consumes the result of `u`).
    ///
    /// # Panics
    /// Panics on out-of-range ids, self-loops, or duplicate edges (duplicates
    /// would double-count dominator candidates).
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) {
        let (ui, vi) = (u as usize, v as usize);
        assert!(ui < self.len() && vi < self.len(), "vertex id out of range");
        assert_ne!(u, v, "self-loops are not allowed in a CDAG");
        assert!(!self.succs[ui].contains(&v), "duplicate edge {u} -> {v}");
        self.succs[ui].push(v);
        self.preds[vi].push(u);
    }

    /// Immediate predecessors (`Pred(v)` in the paper).
    pub fn preds(&self, v: VertexId) -> &[VertexId] {
        &self.preds[v as usize]
    }

    /// Immediate successors (`Succ(v)` in the paper).
    pub fn succs(&self, v: VertexId) -> &[VertexId] {
        &self.succs[v as usize]
    }

    /// Vertices with no parents (the input set `I`).
    pub fn inputs(&self) -> Vec<VertexId> {
        (0..self.len() as VertexId)
            .filter(|&v| self.preds[v as usize].is_empty())
            .collect()
    }

    /// Vertices with no children (the output set `O`).
    pub fn outputs(&self) -> Vec<VertexId> {
        (0..self.len() as VertexId)
            .filter(|&v| self.succs[v as usize].is_empty())
            .collect()
    }

    /// A topological order of all vertices.
    ///
    /// # Panics
    /// Panics if the graph contains a cycle (it would not be a CDAG).
    pub fn topo_order(&self) -> Vec<VertexId> {
        let n = self.len();
        let mut indeg: Vec<usize> = self.preds.iter().map(Vec::len).collect();
        let mut queue: Vec<VertexId> = (0..n as VertexId).filter(|&v| indeg[v as usize] == 0).collect();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let v = queue[head];
            head += 1;
            order.push(v);
            for &w in &self.succs[v as usize] {
                indeg[w as usize] -= 1;
                if indeg[w as usize] == 0 {
                    queue.push(w);
                }
            }
        }
        assert_eq!(order.len(), n, "CDAG contains a cycle");
        order
    }

    /// True when every vertex of `targets` is unreachable from every input
    /// without passing through `blockers` — i.e. `blockers` is a dominator
    /// set of `targets` (paper §4, definition of `Dom(V_i)`).
    ///
    /// A target that is itself an input must be contained in `blockers`.
    pub fn is_dominator_set(&self, blockers: &[VertexId], targets: &[VertexId]) -> bool {
        let n = self.len();
        let mut blocked = vec![false; n];
        for &b in blockers {
            blocked[b as usize] = true;
        }
        let mut target = vec![false; n];
        for &t in targets {
            target[t as usize] = true;
        }
        // BFS from all non-blocked inputs, never expanding through blocked
        // vertices; if we can stand on a target, the set fails to dominate.
        let mut seen = vec![false; n];
        let mut queue: Vec<VertexId> = Vec::new();
        for v in self.inputs() {
            if !blocked[v as usize] {
                if target[v as usize] {
                    return false;
                }
                seen[v as usize] = true;
                queue.push(v);
            }
        }
        let mut head = 0;
        while head < queue.len() {
            let v = queue[head];
            head += 1;
            for &w in &self.succs[v as usize] {
                let wi = w as usize;
                if seen[wi] || blocked[wi] {
                    continue;
                }
                if target[wi] {
                    return false;
                }
                seen[wi] = true;
                queue.push(w);
            }
        }
        true
    }

    /// The *frontier* dominator candidate of `targets`: external immediate
    /// predecessors of the set plus any inputs contained in it. For the MMM
    /// subcomputations of §5.1 this equals the minimal dominator set
    /// `α_r ∪ β_r ∪ Γ_r` (Eq. 5); for general CDAGs it is a valid (possibly
    /// non-minimal) dominator set.
    pub fn frontier_dominators(&self, targets: &[VertexId]) -> Vec<VertexId> {
        let n = self.len();
        let mut in_set = vec![false; n];
        for &t in targets {
            in_set[t as usize] = true;
        }
        let mut dom = vec![false; n];
        for &t in targets {
            if self.preds[t as usize].is_empty() {
                dom[t as usize] = true; // input inside the set dominates itself
            }
            for &u in &self.preds[t as usize] {
                if !in_set[u as usize] {
                    dom[u as usize] = true;
                }
            }
        }
        (0..n as VertexId).filter(|&v| dom[v as usize]).collect()
    }

    /// The minimum set `Min(V_i)`: vertices of `targets` with no children in
    /// `targets` (paper §4).
    pub fn minimum_set(&self, targets: &[VertexId]) -> Vec<VertexId> {
        let n = self.len();
        let mut in_set = vec![false; n];
        for &t in targets {
            in_set[t as usize] = true;
        }
        targets
            .iter()
            .copied()
            .filter(|&t| self.succs[t as usize].iter().all(|&c| !in_set[c as usize]))
            .collect()
    }

    /// Build the "path" CDAG `0 -> 1 -> … -> n-1` (useful in tests).
    pub fn path(n: usize) -> Self {
        let mut g = Cdag::new(n);
        for v in 1..n {
            g.add_edge((v - 1) as VertexId, v as VertexId);
        }
        g
    }

    /// Build a complete binary in-tree with `leaves` leaves: leaves feed
    /// internal sums up to a single root output (a reduction CDAG).
    ///
    /// # Panics
    /// Panics unless `leaves` is a power of two and at least 2.
    pub fn reduction_tree(leaves: usize) -> Self {
        assert!(leaves >= 2 && leaves.is_power_of_two(), "leaves must be a power of two >= 2");
        // Vertices: 0..leaves are the leaves, then levels of sums.
        let total = 2 * leaves - 1;
        let mut g = Cdag::new(total);
        let mut level: Vec<VertexId> = (0..leaves as VertexId).collect();
        let mut next_id = leaves as VertexId;
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len() / 2);
            for pair in level.chunks(2) {
                g.add_edge(pair[0], next_id);
                g.add_edge(pair[1], next_id);
                next.push(next_id);
                next_id += 1;
            }
            level = next;
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_len() {
        let g = Cdag::new(0);
        assert!(g.is_empty());
        let g = Cdag::new(3);
        assert_eq!(g.len(), 3);
        assert!(!g.is_empty());
    }

    #[test]
    fn path_inputs_outputs() {
        let g = Cdag::path(4);
        assert_eq!(g.inputs(), vec![0]);
        assert_eq!(g.outputs(), vec![3]);
        assert_eq!(g.preds(2), &[1]);
        assert_eq!(g.succs(1), &[2]);
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn duplicate_edge_panics() {
        let mut g = Cdag::new(2);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        let mut g = Cdag::new(1);
        g.add_edge(0, 0);
    }

    #[test]
    fn topo_order_respects_edges() {
        let mut g = Cdag::new(5);
        g.add_edge(0, 2);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g.add_edge(2, 4);
        let order = g.topo_order();
        let pos = |v: VertexId| order.iter().position(|&x| x == v).unwrap();
        assert!(pos(0) < pos(2));
        assert!(pos(1) < pos(2));
        assert!(pos(2) < pos(3));
        assert!(pos(2) < pos(4));
    }

    #[test]
    fn dominator_set_on_diamond() {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3 (diamond).
        let mut g = Cdag::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        // {0} dominates everything downstream.
        assert!(g.is_dominator_set(&[0], &[3]));
        // {1} alone does not block the path through 2.
        assert!(!g.is_dominator_set(&[1], &[3]));
        // {1, 2} does.
        assert!(g.is_dominator_set(&[1, 2], &[3]));
        // The target itself dominates itself.
        assert!(g.is_dominator_set(&[3], &[3]));
        // An input target must be included.
        assert!(!g.is_dominator_set(&[], &[0]));
        assert!(g.is_dominator_set(&[0], &[0]));
    }

    #[test]
    fn frontier_dominators_diamond() {
        let mut g = Cdag::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        assert_eq!(g.frontier_dominators(&[3]), vec![1, 2]);
        assert_eq!(g.frontier_dominators(&[1, 3]), vec![0, 2]);
        // The frontier is always a valid dominator set.
        for targets in [vec![3], vec![1, 3], vec![1, 2, 3], vec![0]] {
            let f = g.frontier_dominators(&targets);
            assert!(g.is_dominator_set(&f, &targets), "targets {targets:?}");
        }
    }

    #[test]
    fn minimum_set_examples() {
        let g = Cdag::path(4);
        assert_eq!(g.minimum_set(&[1, 2]), vec![2]);
        assert_eq!(g.minimum_set(&[1, 3]), vec![1, 3]);
        assert_eq!(g.minimum_set(&[3]), vec![3]);
    }

    #[test]
    fn reduction_tree_shape() {
        let g = Cdag::reduction_tree(4);
        assert_eq!(g.len(), 7);
        assert_eq!(g.inputs(), vec![0, 1, 2, 3]);
        assert_eq!(g.outputs(), vec![6]);
        // Root depends on the two level-1 sums.
        assert_eq!(g.preds(6), &[4, 5]);
    }

    #[test]
    fn reduction_tree_dominators() {
        let g = Cdag::reduction_tree(8);
        let root = g.outputs()[0];
        // The two children of the root dominate it.
        let kids = g.preds(root).to_vec();
        assert!(g.is_dominator_set(&kids, &[root]));
    }
}
