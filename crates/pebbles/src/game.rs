//! The red-blue pebble game engine (paper §2.2).
//!
//! A red pebble on a vertex means its value is in fast memory (at most `S`
//! red pebbles at a time); a blue pebble means it is in slow memory. The
//! allowed moves are:
//!
//! * **Load** — place a red pebble on a vertex holding a blue pebble;
//! * **Store** — place a blue pebble on a vertex holding a red pebble;
//! * **Compute** — place a red pebble on a non-input vertex whose parents all
//!   hold red pebbles;
//! * **RemoveRed / RemoveBlue** — free memory.
//!
//! Initially only inputs have blue pebbles; a *complete calculation* ends
//! with blue pebbles on all outputs. The engine validates arbitrary move
//! sequences and counts I/O (loads + stores), which is the quantity all of
//! the paper's bounds constrain.

use crate::cdag::{Cdag, VertexId};

/// One move of the red-blue pebble game.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Move {
    /// Place a red pebble on a vertex with a blue pebble (slow → fast).
    Load(VertexId),
    /// Place a blue pebble on a vertex with a red pebble (fast → slow).
    Store(VertexId),
    /// Place a red pebble on a vertex whose parents all have red pebbles.
    Compute(VertexId),
    /// Remove a red pebble.
    RemoveRed(VertexId),
    /// Remove a blue pebble.
    RemoveBlue(VertexId),
}

/// Why a move was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GameError {
    /// Load target has no blue pebble.
    LoadWithoutBlue(VertexId),
    /// Store target has no red pebble.
    StoreWithoutRed(VertexId),
    /// Compute target is an input (inputs are never "computed").
    ComputeOnInput(VertexId),
    /// Compute target has a parent without a red pebble.
    MissingRedParent { vertex: VertexId, parent: VertexId },
    /// Placing a red pebble would exceed the fast-memory capacity `S`.
    RedCapacityExceeded { capacity: usize },
    /// Removing a pebble that is not there.
    NoSuchPebble(VertexId),
    /// Vertex id out of range for the CDAG.
    BadVertex(VertexId),
}

impl std::fmt::Display for GameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GameError::LoadWithoutBlue(v) => write!(f, "load of {v}: no blue pebble"),
            GameError::StoreWithoutRed(v) => write!(f, "store of {v}: no red pebble"),
            GameError::ComputeOnInput(v) => write!(f, "compute of {v}: vertex is an input"),
            GameError::MissingRedParent { vertex, parent } => {
                write!(f, "compute of {vertex}: parent {parent} has no red pebble")
            }
            GameError::RedCapacityExceeded { capacity } => {
                write!(f, "red pebble capacity {capacity} exceeded")
            }
            GameError::NoSuchPebble(v) => write!(f, "remove at {v}: no such pebble"),
            GameError::BadVertex(v) => write!(f, "vertex {v} out of range"),
        }
    }
}

impl std::error::Error for GameError {}

/// A running (or finished) pebble-game execution over a CDAG.
#[derive(Debug, Clone)]
pub struct GameRun<'g> {
    graph: &'g Cdag,
    capacity: usize,
    red: Vec<bool>,
    blue: Vec<bool>,
    red_count: usize,
    loads: u64,
    stores: u64,
    peak_red: usize,
    moves_applied: u64,
}

impl<'g> GameRun<'g> {
    /// Start a game with fast-memory capacity `capacity` (the paper's `S`).
    /// Inputs receive their initial blue pebbles.
    pub fn new(graph: &'g Cdag, capacity: usize) -> Self {
        let mut blue = vec![false; graph.len()];
        for v in graph.inputs() {
            blue[v as usize] = true;
        }
        GameRun {
            graph,
            capacity,
            red: vec![false; graph.len()],
            blue,
            red_count: 0,
            loads: 0,
            stores: 0,
            peak_red: 0,
            moves_applied: 0,
        }
    }

    /// Fast-memory capacity `S`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of load moves so far.
    pub fn loads(&self) -> u64 {
        self.loads
    }

    /// Number of store moves so far.
    pub fn stores(&self) -> u64 {
        self.stores
    }

    /// Total I/O (loads + stores) — the cost `Q` of the schedule so far.
    pub fn io(&self) -> u64 {
        self.loads + self.stores
    }

    /// Maximum number of red pebbles that were ever simultaneously placed.
    pub fn peak_red(&self) -> usize {
        self.peak_red
    }

    /// Number of red pebbles currently placed.
    pub fn red_count(&self) -> usize {
        self.red_count
    }

    /// Total number of moves applied.
    pub fn moves_applied(&self) -> u64 {
        self.moves_applied
    }

    /// Does `v` currently hold a red pebble?
    pub fn has_red(&self, v: VertexId) -> bool {
        self.red[v as usize]
    }

    /// Does `v` currently hold a blue pebble?
    pub fn has_blue(&self, v: VertexId) -> bool {
        self.blue[v as usize]
    }

    fn place_red(&mut self, v: usize) -> Result<(), GameError> {
        if !self.red[v] {
            if self.red_count == self.capacity {
                return Err(GameError::RedCapacityExceeded {
                    capacity: self.capacity,
                });
            }
            self.red[v] = true;
            self.red_count += 1;
            self.peak_red = self.peak_red.max(self.red_count);
        }
        Ok(())
    }

    /// Apply one move, enforcing all rules of the game.
    pub fn apply(&mut self, mv: Move) -> Result<(), GameError> {
        let id = match mv {
            Move::Load(v) | Move::Store(v) | Move::Compute(v) | Move::RemoveRed(v) | Move::RemoveBlue(v) => v,
        };
        if id as usize >= self.graph.len() {
            return Err(GameError::BadVertex(id));
        }
        let v = id as usize;
        match mv {
            Move::Load(_) => {
                if !self.blue[v] {
                    return Err(GameError::LoadWithoutBlue(id));
                }
                self.place_red(v)?;
                self.loads += 1;
            }
            Move::Store(_) => {
                if !self.red[v] {
                    return Err(GameError::StoreWithoutRed(id));
                }
                self.blue[v] = true;
                self.stores += 1;
            }
            Move::Compute(_) => {
                if self.graph.preds(id).is_empty() {
                    return Err(GameError::ComputeOnInput(id));
                }
                for &u in self.graph.preds(id) {
                    if !self.red[u as usize] {
                        return Err(GameError::MissingRedParent {
                            vertex: id,
                            parent: u,
                        });
                    }
                }
                self.place_red(v)?;
            }
            Move::RemoveRed(_) => {
                if !self.red[v] {
                    return Err(GameError::NoSuchPebble(id));
                }
                self.red[v] = false;
                self.red_count -= 1;
            }
            Move::RemoveBlue(_) => {
                if !self.blue[v] {
                    return Err(GameError::NoSuchPebble(id));
                }
                self.blue[v] = false;
            }
        }
        self.moves_applied += 1;
        Ok(())
    }

    /// Apply a whole sequence, stopping at the first illegal move.
    pub fn apply_all(&mut self, moves: &[Move]) -> Result<(), GameError> {
        for &mv in moves {
            self.apply(mv)?;
        }
        Ok(())
    }

    /// True when every output of the CDAG holds a blue pebble — the terminal
    /// configuration of a complete calculation.
    pub fn is_complete(&self) -> bool {
        self.graph.outputs().iter().all(|&v| self.blue[v as usize])
    }
}

/// Validate a complete calculation: run `moves` from the initial
/// configuration and require the terminal configuration; returns the total
/// I/O on success.
pub fn validate_complete(graph: &Cdag, capacity: usize, moves: &[Move]) -> Result<u64, GameError> {
    let mut run = GameRun::new(graph, capacity);
    run.apply_all(moves)?;
    if run.is_complete() {
        Ok(run.io())
    } else {
        // Report the first un-stored output as the offending vertex.
        let missing = graph
            .outputs()
            .into_iter()
            .find(|&v| !run.has_blue(v))
            .expect("incomplete run must have an unpebbled output");
        Err(GameError::NoSuchPebble(missing))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdag::Cdag;

    fn diamond() -> Cdag {
        let mut g = Cdag::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        g
    }

    #[test]
    fn initial_configuration_has_blue_inputs() {
        let g = diamond();
        let run = GameRun::new(&g, 3);
        assert!(run.has_blue(0));
        assert!(!run.has_blue(1));
        assert!(!run.has_red(0));
        assert_eq!(run.io(), 0);
    }

    #[test]
    fn straight_line_pebbling_of_path() {
        let g = Cdag::path(3);
        let mut run = GameRun::new(&g, 2);
        run.apply_all(&[
            Move::Load(0),
            Move::Compute(1),
            Move::RemoveRed(0),
            Move::Compute(2),
            Move::Store(2),
        ])
        .unwrap();
        assert!(run.is_complete());
        assert_eq!(run.loads(), 1);
        assert_eq!(run.stores(), 1);
        assert_eq!(run.io(), 2);
        assert_eq!(run.peak_red(), 2);
    }

    #[test]
    fn load_requires_blue() {
        let g = Cdag::path(2);
        let mut run = GameRun::new(&g, 2);
        assert_eq!(run.apply(Move::Load(1)), Err(GameError::LoadWithoutBlue(1)));
    }

    #[test]
    fn store_requires_red() {
        let g = Cdag::path(2);
        let mut run = GameRun::new(&g, 2);
        assert_eq!(run.apply(Move::Store(1)), Err(GameError::StoreWithoutRed(1)));
    }

    #[test]
    fn compute_requires_all_red_parents() {
        let g = diamond();
        let mut run = GameRun::new(&g, 4);
        run.apply(Move::Load(0)).unwrap();
        run.apply(Move::Compute(1)).unwrap();
        let err = run.apply(Move::Compute(3)).unwrap_err();
        assert_eq!(err, GameError::MissingRedParent { vertex: 3, parent: 2 });
        run.apply(Move::Compute(2)).unwrap();
        run.apply(Move::Compute(3)).unwrap();
        assert_eq!(run.peak_red(), 4);
    }

    #[test]
    fn compute_on_input_rejected() {
        let g = diamond();
        let mut run = GameRun::new(&g, 2);
        assert_eq!(run.apply(Move::Compute(0)), Err(GameError::ComputeOnInput(0)));
    }

    #[test]
    fn capacity_is_enforced() {
        let g = diamond();
        let mut run = GameRun::new(&g, 1);
        run.apply(Move::Load(0)).unwrap();
        assert_eq!(run.apply(Move::Compute(1)), Err(GameError::RedCapacityExceeded { capacity: 1 }));
        // Freeing the red pebble makes room — but then 1 has no red parent.
        run.apply(Move::RemoveRed(0)).unwrap();
        assert!(matches!(run.apply(Move::Compute(1)), Err(GameError::MissingRedParent { .. })));
    }

    #[test]
    fn remove_missing_pebble_rejected() {
        let g = Cdag::path(2);
        let mut run = GameRun::new(&g, 2);
        assert_eq!(run.apply(Move::RemoveRed(0)), Err(GameError::NoSuchPebble(0)));
        assert_eq!(run.apply(Move::RemoveBlue(1)), Err(GameError::NoSuchPebble(1)));
        run.apply(Move::RemoveBlue(0)).unwrap(); // inputs start blue
        assert!(!run.has_blue(0));
    }

    #[test]
    fn bad_vertex_rejected() {
        let g = Cdag::path(2);
        let mut run = GameRun::new(&g, 2);
        assert_eq!(run.apply(Move::Load(9)), Err(GameError::BadVertex(9)));
    }

    #[test]
    fn reload_of_red_vertex_counts_io_but_not_capacity() {
        // Loading a vertex that is already red is legal (pointless) and must
        // not double-count capacity.
        let g = Cdag::path(2);
        let mut run = GameRun::new(&g, 1);
        run.apply(Move::Load(0)).unwrap();
        run.apply(Move::Load(0)).unwrap();
        assert_eq!(run.red_count(), 1);
        assert_eq!(run.loads(), 2);
    }

    #[test]
    fn validate_complete_happy_path() {
        let g = Cdag::path(3);
        let io = validate_complete(
            &g,
            2,
            &[
                Move::Load(0),
                Move::Compute(1),
                Move::RemoveRed(0),
                Move::Compute(2),
                Move::Store(2),
            ],
        )
        .unwrap();
        assert_eq!(io, 2);
    }

    #[test]
    fn validate_complete_rejects_unfinished() {
        let g = Cdag::path(3);
        let err = validate_complete(&g, 2, &[Move::Load(0), Move::Compute(1)]);
        assert!(err.is_err());
    }

    #[test]
    fn diamond_complete_with_three_reds() {
        let g = diamond();
        // S = 3 suffices: keep 0, compute 1 and 2, drop 0, compute 3.
        let moves = [
            Move::Load(0),
            Move::Compute(1),
            Move::Compute(2),
            Move::RemoveRed(0),
            Move::Compute(3),
            Move::Store(3),
        ];
        let io = validate_complete(&g, 3, &moves).unwrap();
        assert_eq!(io, 2);
        // S = 2 fails at the second compute.
        let mut run = GameRun::new(&g, 2);
        let res = run.apply_all(&moves);
        assert_eq!(res, Err(GameError::RedCapacityExceeded { capacity: 2 }));
    }

    #[test]
    fn reduction_tree_io_is_leaves_plus_root() {
        // Pebble a 4-leaf reduction tree with S = 4: load both children of
        // each sum, compute, free children. I/O = 4 loads + 1 store. (S = 3
        // does not suffice for this strategy: while computing the second sum
        // the first sum plus two leaves are already red.)
        let g = Cdag::reduction_tree(4);
        let moves = [
            Move::Load(0),
            Move::Load(1),
            Move::Compute(4),
            Move::RemoveRed(0),
            Move::RemoveRed(1),
            Move::Load(2),
            Move::Load(3),
            Move::Compute(5),
            Move::RemoveRed(2),
            Move::RemoveRed(3),
            Move::Compute(6),
            Move::Store(6),
        ];
        let io = validate_complete(&g, 4, &moves).unwrap();
        assert_eq!(io, 5);
        // And S = 3 indeed rejects this strategy at the second compute.
        let mut run = GameRun::new(&g, 3);
        assert_eq!(run.apply_all(&moves), Err(GameError::RedCapacityExceeded { capacity: 3 }));
    }
}
