//! Executable greedy MMM schedules (paper §5.2.7, Listing 1).
//!
//! [`tiled_moves`] emits a *complete* red-blue pebble game move sequence for
//! the tiled rank-1-update schedule: C is cut into `a × b` tiles; each tile
//! stays resident ("red") while the `k` A-column/B-row fragments stream
//! through fast memory. The generated sequence is validated move-by-move by
//! the [`crate::game`] engine, so the measured I/O of these schedules is the
//! I/O of a *real* execution, not a formula.

use crate::bounds;
use crate::cdag::VertexId;
use crate::game::Move;
use crate::mmm::MmmCdag;

/// Emit the complete move sequence of the tiled greedy schedule with C-tile
/// shape `a × b`.
///
/// Peak red-pebble usage is `a·b + a + b + 1` (tile partials + A fragment +
/// B fragment + the freshly computed partial before its predecessor is
/// freed), so the sequence is valid for any capacity `S ≥ a·b + a + b + 1`.
///
/// # Panics
/// Panics if `a` or `b` is zero.
pub fn tiled_moves(g: &MmmCdag, a: usize, b: usize) -> Vec<Move> {
    assert!(a > 0 && b > 0, "tile sizes must be positive");
    let (m, n, k) = (g.m, g.n, g.k);
    let mut moves = Vec::with_capacity(bounds::tiled_io(m, n, k, a, b) as usize * 2);
    let mut i0 = 0;
    while i0 < m {
        let i1 = (i0 + a).min(m);
        let mut j0 = 0;
        while j0 < n {
            let j1 = (j0 + b).min(n);
            // Stream the k layers through this C tile.
            for t in 0..k {
                // Load the A-column fragment and B-row fragment.
                for i in i0..i1 {
                    moves.push(Move::Load(g.a_id(i, t)));
                }
                for j in j0..j1 {
                    moves.push(Move::Load(g.b_id(t, j)));
                }
                // Update every partial in the tile, freeing its predecessor.
                for i in i0..i1 {
                    for j in j0..j1 {
                        moves.push(Move::Compute(g.c_id(i, j, t)));
                        if t > 0 {
                            moves.push(Move::RemoveRed(g.c_id(i, j, t - 1)));
                        }
                    }
                }
                // Free the streamed input fragments.
                for i in i0..i1 {
                    moves.push(Move::RemoveRed(g.a_id(i, t)));
                }
                for j in j0..j1 {
                    moves.push(Move::RemoveRed(g.b_id(t, j)));
                }
            }
            // Store the finished tile of C and release it.
            for i in i0..i1 {
                for j in j0..j1 {
                    moves.push(Move::Store(g.c_id(i, j, k - 1)));
                    moves.push(Move::RemoveRed(g.c_id(i, j, k - 1)));
                }
            }
            j0 = j1;
        }
        i0 = i1;
    }
    moves
}

/// Fast-memory capacity required by [`tiled_moves`] with tile `a × b`.
pub fn tiled_capacity(a: usize, b: usize) -> usize {
    a * b + a + b + 1
}

/// Convenience: generate the near-I/O-optimal schedule for capacity `s`
/// (tile chosen by [`bounds::best_engine_tile`]) and return
/// `(moves, tile_a, tile_b)`.
pub fn near_optimal_moves(g: &MmmCdag, s: usize) -> (Vec<Move>, usize, usize) {
    let (a, b) = bounds::best_engine_tile(s);
    (tiled_moves(g, a, b), a, b)
}

/// The X-partition induced by the tiled schedule: one part per
/// `(tile, k-layer)` subcomputation, in execution order. Feeding this to
/// [`crate::partition::validate_x_partition`] certifies the schedule's
/// partition structure (§5.2.2).
pub fn tiled_partition(g: &MmmCdag, a: usize, b: usize) -> Vec<Vec<VertexId>> {
    let (m, n, k) = (g.m, g.n, g.k);
    let mut parts = Vec::new();
    let mut i0 = 0;
    while i0 < m {
        let i1 = (i0 + a).min(m);
        let mut j0 = 0;
        while j0 < n {
            let j1 = (j0 + b).min(n);
            for t in 0..k {
                let t1: Vec<usize> = (i0..i1).collect();
                let t2: Vec<usize> = (j0..j1).collect();
                parts.push(g.brick(&t1, &t2, &[t]));
            }
            j0 = j1;
        }
        i0 = i1;
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::{theorem1_lower_bound, tiled_io};
    use crate::game::{validate_complete, GameRun};
    use crate::partition::validate_x_partition;

    #[test]
    fn tiled_schedule_is_a_complete_valid_pebbling() {
        let g = MmmCdag::new(4, 4, 3);
        let moves = tiled_moves(&g, 2, 2);
        let io = validate_complete(g.graph(), tiled_capacity(2, 2), &moves).unwrap();
        assert_eq!(io, tiled_io(4, 4, 3, 2, 2));
    }

    #[test]
    fn tiled_schedule_fails_below_required_capacity() {
        let g = MmmCdag::new(4, 4, 3);
        let moves = tiled_moves(&g, 2, 2);
        let mut run = GameRun::new(g.graph(), tiled_capacity(2, 2) - 1);
        assert!(run.apply_all(&moves).is_err());
    }

    #[test]
    fn peak_red_matches_capacity_formula() {
        for &(m, n, k, a, b) in &[(4, 4, 4, 2, 2), (5, 7, 3, 2, 3), (6, 6, 2, 3, 2)] {
            let g = MmmCdag::new(m, n, k);
            let moves = tiled_moves(&g, a, b);
            let mut run = GameRun::new(g.graph(), tiled_capacity(a, b));
            run.apply_all(&moves).unwrap();
            assert!(run.is_complete());
            assert_eq!(run.peak_red(), tiled_capacity(a, b), "({m},{n},{k}) tile ({a},{b})");
        }
    }

    #[test]
    fn measured_io_equals_formula_with_remainders() {
        // 5x7x3 with 2x3 tiles exercises remainder tiles in both dimensions.
        let g = MmmCdag::new(5, 7, 3);
        let moves = tiled_moves(&g, 2, 3);
        let io = validate_complete(g.graph(), tiled_capacity(2, 3), &moves).unwrap();
        assert_eq!(io, tiled_io(5, 7, 3, 2, 3));
    }

    #[test]
    fn measured_io_respects_theorem1() {
        for &(m, n, k, s) in &[(4, 4, 4, 9), (6, 6, 6, 12), (8, 5, 7, 16)] {
            let g = MmmCdag::new(m, n, k);
            let (moves, a, b) = near_optimal_moves(&g, s);
            let io = validate_complete(g.graph(), s, &moves).unwrap();
            let lb = theorem1_lower_bound(m, n, k, s);
            assert!(io as f64 >= lb, "measured {io} below Theorem 1 bound {lb} (tile {a}x{b})");
        }
    }

    #[test]
    fn ratio_to_bound_shrinks_with_memory() {
        // As S grows the tiled schedule approaches the lower bound: the
        // paper's sqrt(S)/(sqrt(S+1)-1) + engine slack. Tiles are chosen to
        // divide the dimensions so remainder-tile noise does not mask the
        // monotone trend.
        let (m, n, k) = (12, 12, 6);
        let g = MmmCdag::new(m, n, k);
        let mut prev_ratio = f64::INFINITY;
        for a in [1usize, 2, 3, 4, 6] {
            let s = tiled_capacity(a, a);
            let moves = tiled_moves(&g, a, a);
            let io = validate_complete(g.graph(), s, &moves).unwrap();
            let ratio = io as f64 / theorem1_lower_bound(m, n, k, s);
            assert!(ratio <= prev_ratio + 1e-9, "ratio not shrinking at tile {a} (S={s})");
            prev_ratio = ratio;
        }
        assert!(prev_ratio < 1.6, "final ratio {prev_ratio} too far from bound");
    }

    #[test]
    fn rank1_tile_is_worst_case() {
        // a = b = 1 degenerates to the naive schedule with mnk*2 loads.
        let g = MmmCdag::new(3, 3, 3);
        let moves = tiled_moves(&g, 1, 1);
        let io = validate_complete(g.graph(), tiled_capacity(1, 1), &moves).unwrap();
        assert_eq!(io, 2 * 27 + 9);
    }

    #[test]
    fn tiled_partition_is_valid_x_partition() {
        let g = MmmCdag::new(4, 4, 2);
        let parts = tiled_partition(&g, 2, 2);
        // Each part: 2x2x1 brick, Dom = alpha(2) + beta(2) + gamma(<=4) <= 8,
        // Min = 4.
        assert_eq!(parts.len(), 4 * 2);
        assert_eq!(validate_x_partition(g.graph(), &parts, 8), Ok(()));
    }

    #[test]
    fn tiled_partition_parts_have_expected_sizes() {
        let g = MmmCdag::new(5, 4, 3);
        let parts = tiled_partition(&g, 2, 2);
        let total: usize = parts.iter().map(Vec::len).sum();
        assert_eq!(total, 5 * 4 * 3, "parts must cover all C vertices");
        assert!(parts.iter().all(|p| p.len() <= 4));
    }

    #[test]
    fn move_count_scales_linearly() {
        let g = MmmCdag::new(4, 4, 4);
        let m1 = tiled_moves(&g, 2, 2).len();
        let g2 = MmmCdag::new(4, 4, 8);
        let m2 = tiled_moves(&g2, 2, 2).len();
        assert!(m2 > m1);
        // Doubling k roughly doubles the moves (stores stay constant).
        assert!((m2 as f64) < 2.2 * m1 as f64);
    }
}
