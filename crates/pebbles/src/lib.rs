//! # pebbles — red-blue pebble game & MMM I/O lower bounds
//!
//! This crate implements the theoretical half of the COSMA paper:
//!
//! * [`cdag`] — computational DAGs `G = (V, E)` (paper §2.2): generic storage,
//!   inputs/outputs, topological utilities, reachability.
//! * [`mmm`] — the classical matrix-multiplication CDAG with its `A`, `B`, `C`
//!   vertex families and the projections `φa`, `φb`, `φc` (§5.1).
//! * [`game`] — the red-blue pebble game of Hong & Kung (§2.2): an engine that
//!   validates move sequences under the `S`-red-pebble constraint and counts
//!   I/O (loads + stores).
//! * [`partition`] — `X`-partitions (§4): dominator and minimum sets, the
//!   validity conditions, and an exact *minimum* dominator-set computation via
//!   vertex-capacity max-flow (Menger's theorem) for cross-checking.
//! * [`greedy`] — executable greedy schedules (§5.2.7, Listing 1): generators
//!   that emit full pebble-game move sequences for tiled MMM, whose measured
//!   I/O attains the lower bound up to the paper's `√S/(√(S+1)−1)` factor.
//! * [`bounds`] — the closed-form results: Theorem 1 (`2mnk/√S + mn`),
//!   Theorem 2 (parallel), computational intensity (Lemma 4), the optimal
//!   `a_opt`/`b_opt` block shape (Eqs. 27–28) and X-partition parameters
//!   (Eqs. 24–25).
//! * [`optimal`] — an exhaustive Dijkstra-over-game-states pebbler for tiny
//!   CDAGs, used to certify that the bounds are tight where exhaustive search
//!   is feasible.

pub mod bounds;
pub mod cdag;
pub mod game;
pub mod greedy;
pub mod mmm;
pub mod optimal;
pub mod partition;

pub use bounds::{
    aopt_bopt, greedy_attainable_io, theorem1_lower_bound, theorem2_parallel_bound, tightness_factor,
};
pub use cdag::{Cdag, VertexId};
pub use game::{GameError, GameRun, Move};
pub use mmm::MmmCdag;
