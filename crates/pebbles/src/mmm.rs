//! The classical matrix-multiplication CDAG (paper §5.1).
//!
//! Vertices come in three families: elements of `A` (`m x k`), elements of
//! `B` (`k x n`), and the `m·n·k` *partial sums* of `C`. The `t`-th update of
//! `C(i, j)` is `C(i,j,t) = C(i,j,t-1) + A(i,t)·B(t,j)`, giving each `C`
//! vertex the three parents `φa`, `φb` and its predecessor partial sum.

use crate::cdag::{Cdag, VertexId};

/// Which matrix a CDAG vertex belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vertex {
    /// Element `A(i, t)`.
    A { i: usize, t: usize },
    /// Element `B(t, j)`.
    B { t: usize, j: usize },
    /// Partial sum `C(i, j, t)` (the `t`-th of `k` updates, `t` 0-based).
    C { i: usize, j: usize, t: usize },
}

/// The MMM CDAG for `C = A·B` with `A ∈ R^{m×k}`, `B ∈ R^{k×n}`.
#[derive(Debug, Clone)]
pub struct MmmCdag {
    /// Rows of A / C.
    pub m: usize,
    /// Columns of B / C.
    pub n: usize,
    /// Inner dimension.
    pub k: usize,
    graph: Cdag,
}

impl MmmCdag {
    /// Build the CDAG. Sizes must be positive and small enough that the
    /// `mk + kn + mnk` vertices fit in memory — this type exists for theory
    /// experiments, not production multiplications.
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    pub fn new(m: usize, n: usize, k: usize) -> Self {
        assert!(m > 0 && n > 0 && k > 0, "dimensions must be positive");
        let total = m * k + k * n + m * n * k;
        let mut graph = Cdag::new(total);
        let tmp = MmmCdag {
            m,
            n,
            k,
            graph: Cdag::new(0),
        };
        for i in 0..m {
            for j in 0..n {
                for t in 0..k {
                    let c = tmp.c_id(i, j, t);
                    graph.add_edge(tmp.a_id(i, t), c);
                    graph.add_edge(tmp.b_id(t, j), c);
                    if t > 0 {
                        graph.add_edge(tmp.c_id(i, j, t - 1), c);
                    }
                }
            }
        }
        MmmCdag { m, n, k, graph }
    }

    /// Vertex id of `A(i, t)`.
    #[inline]
    pub fn a_id(&self, i: usize, t: usize) -> VertexId {
        debug_assert!(i < self.m && t < self.k);
        (i * self.k + t) as VertexId
    }

    /// Vertex id of `B(t, j)`.
    #[inline]
    pub fn b_id(&self, t: usize, j: usize) -> VertexId {
        debug_assert!(t < self.k && j < self.n);
        (self.m * self.k + t * self.n + j) as VertexId
    }

    /// Vertex id of the partial sum `C(i, j, t)`.
    #[inline]
    pub fn c_id(&self, i: usize, j: usize, t: usize) -> VertexId {
        debug_assert!(i < self.m && j < self.n && t < self.k);
        (self.m * self.k + self.k * self.n + (i * self.n + j) * self.k + t) as VertexId
    }

    /// Decode a vertex id back into its family and coordinates.
    pub fn vertex(&self, v: VertexId) -> Vertex {
        let v = v as usize;
        let (mk, kn) = (self.m * self.k, self.k * self.n);
        if v < mk {
            Vertex::A {
                i: v / self.k,
                t: v % self.k,
            }
        } else if v < mk + kn {
            let r = v - mk;
            Vertex::B {
                t: r / self.n,
                j: r % self.n,
            }
        } else {
            let r = v - mk - kn;
            let t = r % self.k;
            let ij = r / self.k;
            Vertex::C {
                i: ij / self.n,
                j: ij % self.n,
                t,
            }
        }
    }

    /// Projection `φa` of a `C` vertex: the `A` element it consumes (§5.1).
    ///
    /// # Panics
    /// Panics when `v` is not a `C` vertex.
    pub fn phi_a(&self, v: VertexId) -> VertexId {
        match self.vertex(v) {
            Vertex::C { i, t, .. } => self.a_id(i, t),
            other => panic!("phi_a of non-C vertex {other:?}"),
        }
    }

    /// Projection `φb` of a `C` vertex: the `B` element it consumes.
    ///
    /// # Panics
    /// Panics when `v` is not a `C` vertex.
    pub fn phi_b(&self, v: VertexId) -> VertexId {
        match self.vertex(v) {
            Vertex::C { t, j, .. } => self.b_id(t, j),
            other => panic!("phi_b of non-C vertex {other:?}"),
        }
    }

    /// Projection `φc` of a `C` vertex: the `(i, j)` output coordinate. All
    /// `k` partial sums of one output element share this projection (Eq. 4).
    ///
    /// # Panics
    /// Panics when `v` is not a `C` vertex.
    pub fn phi_c(&self, v: VertexId) -> (usize, usize) {
        match self.vertex(v) {
            Vertex::C { i, j, .. } => (i, j),
            other => panic!("phi_c of non-C vertex {other:?}"),
        }
    }

    /// The underlying generic CDAG.
    pub fn graph(&self) -> &Cdag {
        &self.graph
    }

    /// Total number of vertices.
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// MMM CDAGs are never empty (dimensions are positive).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// All final-output vertices `C(i, j, k-1)`.
    pub fn output_ids(&self) -> Vec<VertexId> {
        let mut out = Vec::with_capacity(self.m * self.n);
        for i in 0..self.m {
            for j in 0..self.n {
                out.push(self.c_id(i, j, self.k - 1));
            }
        }
        out
    }

    /// The subcomputation `V_r` of §5.1.2 for index sets `T1 x T2 x T3`
    /// (rows, cols, k-layers): all partial-sum vertices with those
    /// coordinates.
    pub fn brick(&self, t1: &[usize], t2: &[usize], t3: &[usize]) -> Vec<VertexId> {
        let mut v = Vec::with_capacity(t1.len() * t2.len() * t3.len());
        for &i in t1 {
            for &j in t2 {
                for &t in t3 {
                    v.push(self.c_id(i, j, t));
                }
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_count() {
        let g = MmmCdag::new(2, 3, 4);
        assert_eq!(g.len(), 2 * 4 + 4 * 3 + 2 * 3 * 4);
    }

    #[test]
    fn id_decode_roundtrip() {
        let g = MmmCdag::new(3, 4, 2);
        for i in 0..3 {
            for t in 0..2 {
                assert_eq!(g.vertex(g.a_id(i, t)), Vertex::A { i, t });
            }
        }
        for t in 0..2 {
            for j in 0..4 {
                assert_eq!(g.vertex(g.b_id(t, j)), Vertex::B { t, j });
            }
        }
        for i in 0..3 {
            for j in 0..4 {
                for t in 0..2 {
                    assert_eq!(g.vertex(g.c_id(i, j, t)), Vertex::C { i, j, t });
                }
            }
        }
    }

    #[test]
    fn inputs_are_exactly_a_and_b() {
        let g = MmmCdag::new(2, 2, 2);
        let inputs = g.graph().inputs();
        assert_eq!(inputs.len(), 2 * 2 + 2 * 2);
        assert!(inputs
            .iter()
            .all(|&v| matches!(g.vertex(v), Vertex::A { .. } | Vertex::B { .. })));
    }

    #[test]
    fn outputs_are_last_partial_sums() {
        let g = MmmCdag::new(2, 3, 2);
        let outputs = g.graph().outputs();
        assert_eq!(outputs.len(), 2 * 3);
        for &v in &outputs {
            match g.vertex(v) {
                Vertex::C { t, .. } => assert_eq!(t, g.k - 1),
                other => panic!("unexpected output {other:?}"),
            }
        }
        assert_eq!(outputs, g.output_ids());
    }

    #[test]
    fn c_vertex_parents_match_definition() {
        let g = MmmCdag::new(3, 3, 3);
        // First layer: two parents (A and B elements).
        let c0 = g.c_id(1, 2, 0);
        let mut p = g.graph().preds(c0).to_vec();
        p.sort_unstable();
        let mut want = vec![g.a_id(1, 0), g.b_id(0, 2)];
        want.sort_unstable();
        assert_eq!(p, want);
        // Later layer: three parents including previous partial sum.
        let c2 = g.c_id(1, 2, 2);
        let mut p = g.graph().preds(c2).to_vec();
        p.sort_unstable();
        let mut want = vec![g.a_id(1, 2), g.b_id(2, 2), g.c_id(1, 2, 1)];
        want.sort_unstable();
        assert_eq!(p, want);
    }

    #[test]
    fn partial_sum_chain_has_single_child() {
        // Eq. 8 in the paper relies on C(i,j,t) having exactly one child
        // (the next partial sum) for t < k-1.
        let g = MmmCdag::new(2, 2, 4);
        for t in 0..3 {
            let v = g.c_id(0, 1, t);
            assert_eq!(g.graph().succs(v), &[g.c_id(0, 1, t + 1)]);
        }
        assert!(g.graph().succs(g.c_id(0, 1, 3)).is_empty());
    }

    #[test]
    fn projections() {
        let g = MmmCdag::new(4, 5, 6);
        let v = g.c_id(2, 3, 4);
        assert_eq!(g.phi_a(v), g.a_id(2, 4));
        assert_eq!(g.phi_b(v), g.b_id(4, 3));
        assert_eq!(g.phi_c(v), (2, 3));
        // Eq. 4: all partial updates of one element share phi_c.
        assert_eq!(g.phi_c(g.c_id(2, 3, 0)), g.phi_c(g.c_id(2, 3, 5)));
    }

    #[test]
    #[should_panic(expected = "phi_a of non-C vertex")]
    fn phi_a_rejects_inputs() {
        let g = MmmCdag::new(2, 2, 2);
        let _ = g.phi_a(g.a_id(0, 0));
    }

    #[test]
    fn brick_dominator_is_frontier() {
        // For a brick V_r, the minimal dominator is α ∪ β ∪ Γ (Eq. 5):
        // |Dom| = |T1||T3| + |T3||T2| + |T1||T2| when t3 starts past 0,
        // because Γ contributes the previous partial sums.
        let g = MmmCdag::new(3, 3, 3);
        let brick = g.brick(&[0, 1], &[1, 2], &[1, 2]);
        let dom = g.graph().frontier_dominators(&brick);
        assert!(g.graph().is_dominator_set(&dom, &brick));
        // α: A(i,t) for i in {0,1}, t in {1,2} -> 4 vertices
        // β: B(t,j) for t in {1,2}, j in {1,2} -> 4 vertices
        // Γ: C(i,j,0) for i in {0,1}, j in {1,2} -> 4 vertices
        assert_eq!(dom.len(), 12);
    }

    #[test]
    fn brick_at_k0_has_no_gamma() {
        let g = MmmCdag::new(3, 3, 3);
        let brick = g.brick(&[0, 1], &[1, 2], &[0]);
        let dom = g.graph().frontier_dominators(&brick);
        // α: 2, β: 2, Γ: none (t=0 partial sums have no C parent).
        assert_eq!(dom.len(), 4);
    }

    #[test]
    fn brick_minimum_set_is_top_layer() {
        let g = MmmCdag::new(2, 2, 4);
        let brick = g.brick(&[0, 1], &[0, 1], &[1, 2]);
        let min = g.graph().minimum_set(&brick);
        assert_eq!(min.len(), 4); // the t=2 layer, one per (i,j)
        for &v in &min {
            match g.vertex(v) {
                Vertex::C { t, .. } => assert_eq!(t, 2),
                other => panic!("unexpected {other:?}"),
            }
        }
    }
}
