//! Exhaustive optimal pebbler for tiny CDAGs.
//!
//! Optimal red-blue pebbling is PSPACE-complete (the paper cites Liu and
//! Gilbert et al.), so no polynomial algorithm exists; but for CDAGs of up to
//! 64 vertices we can run Dijkstra over game states `(red set, blue set)`
//! where the edge weight is the I/O cost of the move. This gives *certified
//! optimal* I/O counts that the tests compare against Theorem 1 and against
//! the greedy schedules — on the 2×2×1 MMM CDAG with `S = 4`, for example,
//! the optimum is exactly the bound `2mnk/√S + mn = 8`.
//!
//! Pruning relies on one observation: removing a red pebble is free and can
//! always be deferred until the capacity is actually needed, so the search
//! only considers removals immediately before placing a new red pebble at
//! full capacity.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use crate::cdag::{Cdag, VertexId};

/// Result of an exhaustive search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchResult {
    /// Certified minimum I/O of any complete calculation.
    Optimal(u64),
    /// No complete calculation exists with the given capacity (e.g. a vertex
    /// has more parents than `S − 1`).
    Infeasible,
    /// The state budget was exhausted before the search completed.
    BudgetExhausted,
}

/// Exhaustively find the minimum I/O of a complete calculation of `graph`
/// with fast-memory capacity `capacity`, visiting at most `state_budget`
/// distinct states.
///
/// # Panics
/// Panics if the CDAG has more than 64 vertices (states are bitmasks).
pub fn min_io_exhaustive(graph: &Cdag, capacity: usize, state_budget: usize) -> SearchResult {
    let n = graph.len();
    assert!(n <= 64, "exhaustive search requires <= 64 vertices");
    if n == 0 {
        return SearchResult::Optimal(0);
    }

    let full_goal: u64 = graph.outputs().iter().fold(0, |acc, &v| acc | (1 << v));
    let initial_blue: u64 = graph.inputs().iter().fold(0, |acc, &v| acc | (1 << v));
    // Precompute parent masks for compute-legality checks.
    let parent_mask: Vec<u64> = (0..n)
        .map(|v| graph.preds(v as VertexId).iter().fold(0u64, |acc, &u| acc | (1 << u)))
        .collect();
    let is_input: Vec<bool> = (0..n).map(|v| graph.preds(v as VertexId).is_empty()).collect();

    // Dijkstra over (red, blue) with cost = I/O.
    let mut dist: HashMap<(u64, u64), u64> = HashMap::new();
    let mut heap: BinaryHeap<Reverse<(u64, u64, u64)>> = BinaryHeap::new();
    dist.insert((0, initial_blue), 0);
    heap.push(Reverse((0, 0, initial_blue)));
    let mut visited = 0usize;

    while let Some(Reverse((cost, red, blue))) = heap.pop() {
        if let Some(&d) = dist.get(&(red, blue)) {
            if d < cost {
                continue;
            }
        }
        if blue & full_goal == full_goal {
            return SearchResult::Optimal(cost);
        }
        visited += 1;
        if visited > state_budget {
            return SearchResult::BudgetExhausted;
        }

        let red_count = red.count_ones() as usize;
        let push = |heap: &mut BinaryHeap<Reverse<(u64, u64, u64)>>,
                    dist: &mut HashMap<(u64, u64), u64>,
                    c: u64,
                    r: u64,
                    b: u64| {
            let e = dist.entry((r, b)).or_insert(u64::MAX);
            if c < *e {
                *e = c;
                heap.push(Reverse((c, r, b)));
            }
        };

        // Red placements (loads cost 1, computes cost 0), with an optional
        // single removal when at capacity.
        let placements: Vec<(usize, u64)> = (0..n)
            .filter_map(|v| {
                let bit = 1u64 << v;
                if red & bit != 0 {
                    return None; // already red
                }
                if blue & bit != 0 {
                    Some((v, 1)) // load
                } else if !is_input[v] && parent_mask[v] & red == parent_mask[v] {
                    Some((v, 0)) // compute
                } else {
                    None
                }
            })
            .collect();
        for (v, io) in placements {
            let bit = 1u64 << v;
            if red_count < capacity {
                push(&mut heap, &mut dist, cost + io, red | bit, blue);
            } else {
                // Must evict one red pebble first. A parent needed by this
                // compute cannot be evicted (the move would become illegal).
                let needed = if blue & bit != 0 { 0 } else { parent_mask[v] };
                let mut evictable = red & !needed;
                while evictable != 0 {
                    let e = evictable & evictable.wrapping_neg();
                    evictable ^= e;
                    push(&mut heap, &mut dist, cost + io, (red & !e) | bit, blue);
                }
            }
        }
        // Stores (cost 1) of red-not-blue vertices. Only outputs or vertices
        // with un-finished children can be worth storing; storing anything
        // else is never on an optimal path, but Dijkstra prunes by cost, so
        // we only apply the cheap "not already blue" filter.
        let mut candidates = red & !blue;
        while candidates != 0 {
            let e = candidates & candidates.wrapping_neg();
            candidates ^= e;
            push(&mut heap, &mut dist, cost + 1, red, blue | e);
        }
    }
    SearchResult::Infeasible
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::theorem1_lower_bound;
    use crate::game::validate_complete;
    use crate::greedy::{near_optimal_moves, tiled_capacity, tiled_moves};
    use crate::mmm::MmmCdag;

    const BUDGET: usize = 2_000_000;

    #[test]
    fn empty_graph_is_free() {
        let g = Cdag::new(0);
        assert_eq!(min_io_exhaustive(&g, 1, BUDGET), SearchResult::Optimal(0));
    }

    #[test]
    fn path_graph_optimum() {
        // Load input, compute along the chain, store output: I/O = 2.
        let g = Cdag::path(5);
        assert_eq!(min_io_exhaustive(&g, 2, BUDGET), SearchResult::Optimal(2));
    }

    #[test]
    fn path_graph_infeasible_with_one_pebble() {
        // Computing v needs its parent red AND a free slot for v.
        let g = Cdag::path(3);
        assert_eq!(min_io_exhaustive(&g, 1, BUDGET), SearchResult::Infeasible);
    }

    #[test]
    fn diamond_optimum() {
        let mut g = Cdag::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        // S = 3: load 0, compute 1 and 2, evict 0, compute 3, store: I/O 2.
        assert_eq!(min_io_exhaustive(&g, 3, BUDGET), SearchResult::Optimal(2));
        // S = 2: vertex 3 has two parents that must both be red plus a slot
        // for 3 itself -> infeasible.
        assert_eq!(min_io_exhaustive(&g, 2, BUDGET), SearchResult::Infeasible);
    }

    #[test]
    fn reduction_tree_optimum() {
        // 4 leaves with S = 4: 4 loads + 1 store.
        let g = Cdag::reduction_tree(4);
        assert_eq!(min_io_exhaustive(&g, 4, BUDGET), SearchResult::Optimal(5));
        // With S = 3 the first sum must round-trip through slow memory:
        // one extra store + one extra load.
        assert_eq!(min_io_exhaustive(&g, 3, BUDGET), SearchResult::Optimal(7));
    }

    #[test]
    fn mmm_1x1x1_optimum() {
        let g = MmmCdag::new(1, 1, 1);
        // Two loads + one store.
        assert_eq!(min_io_exhaustive(g.graph(), 3, BUDGET), SearchResult::Optimal(3));
    }

    #[test]
    fn mmm_1x1x2_optimum() {
        let g = MmmCdag::new(1, 1, 2);
        // Four input loads + one output store. S = 4 is needed: the second
        // partial sum has three parents (A, B, previous partial), all of
        // which must be red while it is placed.
        assert_eq!(min_io_exhaustive(g.graph(), 4, BUDGET), SearchResult::Optimal(5));
        assert_eq!(min_io_exhaustive(g.graph(), 3, BUDGET), SearchResult::Infeasible);
    }

    #[test]
    fn mmm_2x2x1_meets_theorem1_exactly() {
        // The paper's bound 2mnk/sqrt(S) + mn = 2*4/2 + 4 = 8 for S = 4 —
        // and exhaustive search certifies 8 is achievable and optimal.
        let g = MmmCdag::new(2, 2, 1);
        let lb = theorem1_lower_bound(2, 2, 1, 4);
        match min_io_exhaustive(g.graph(), 4, BUDGET) {
            SearchResult::Optimal(io) => {
                assert_eq!(io, 8);
                assert!(io as f64 >= lb);
            }
            other => panic!("search did not finish: {other:?}"),
        }
    }

    #[test]
    fn mmm_1x2x2_optimum_at_least_bound() {
        let g = MmmCdag::new(1, 2, 2);
        let lb = theorem1_lower_bound(1, 2, 2, 4);
        match min_io_exhaustive(g.graph(), 4, BUDGET) {
            SearchResult::Optimal(io) => {
                assert!(io as f64 >= lb, "optimal {io} below bound {lb}");
                // With S = 4 one partial sum must round-trip through slow
                // memory beyond the unavoidable 6 loads + 2 stores; the
                // 1x1-tiled greedy schedule costs 10, so 6 <= opt <= 10.
                assert!(io <= 10, "optimal {io} exceeds greedy cost");
            }
            other => panic!("search did not finish: {other:?}"),
        }
    }

    #[test]
    fn optimal_never_exceeds_greedy() {
        for &(m, n, k, s) in &[(2, 2, 1, 4), (1, 2, 2, 4), (2, 1, 2, 4), (2, 2, 2, 7)] {
            let g = MmmCdag::new(m, n, k);
            let (moves, _, _) = near_optimal_moves(&g, s);
            let greedy_io = validate_complete(g.graph(), s, &moves).unwrap();
            match min_io_exhaustive(g.graph(), s, BUDGET) {
                SearchResult::Optimal(opt) => {
                    assert!(opt <= greedy_io, "({m},{n},{k}) S={s}: optimal {opt} > greedy {greedy_io}");
                    assert!(
                        opt as f64 >= theorem1_lower_bound(m, n, k, s) - 1e-9 - (m * n) as f64,
                        "optimal far below bound"
                    );
                }
                SearchResult::BudgetExhausted => { /* acceptable for the largest case */ }
                SearchResult::Infeasible => panic!("greedy succeeded but search says infeasible"),
            }
        }
    }

    #[test]
    fn more_memory_never_hurts() {
        let g = MmmCdag::new(2, 2, 1);
        let io4 = match min_io_exhaustive(g.graph(), 4, BUDGET) {
            SearchResult::Optimal(x) => x,
            other => panic!("{other:?}"),
        };
        let io6 = match min_io_exhaustive(g.graph(), 6, BUDGET) {
            SearchResult::Optimal(x) => x,
            other => panic!("{other:?}"),
        };
        assert!(io6 <= io4);
        // With all 8 inputs + outputs resident: 4 loads + 4 stores still
        // needed (inputs must be read, outputs written).
        assert_eq!(io6, 8);
    }

    #[test]
    fn budget_exhaustion_reported() {
        let g = MmmCdag::new(2, 2, 2);
        // A budget of 10 states cannot finish this 16-vertex CDAG.
        assert_eq!(min_io_exhaustive(g.graph(), 6, 10), SearchResult::BudgetExhausted);
    }

    #[test]
    fn tiled_schedule_matches_optimal_on_tiny_case() {
        // 2x2x1 with S = 9 fits the whole problem: optimal = 4 loads + 4
        // stores = 8; the 2x2 tiled schedule also achieves 8.
        let g = MmmCdag::new(2, 2, 1);
        let moves = tiled_moves(&g, 2, 2);
        let greedy_io = validate_complete(g.graph(), tiled_capacity(2, 2), &moves).unwrap();
        match min_io_exhaustive(g.graph(), tiled_capacity(2, 2), BUDGET) {
            SearchResult::Optimal(opt) => assert_eq!(opt, greedy_io),
            other => panic!("{other:?}"),
        }
    }
}
