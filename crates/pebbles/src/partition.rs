//! `X`-partitions of a CDAG (paper §4).
//!
//! An `X`-partition is a series of subcomputations `V_1, …, V_h` that are
//! pairwise disjoint, cover the compute vertices of the CDAG, have no cyclic
//! dependencies between one another, and whose dominator and minimum sets
//! have size at most `X`. The paper's Lemma 2/3 turn the minimum number of
//! parts `H(X)` into an I/O lower bound.
//!
//! Besides the validity checker, this module computes *minimum* dominator-set
//! sizes exactly via vertex-capacity max-flow (Menger's theorem), which lets
//! tests certify that the frontier dominator used for MMM bricks (Eq. 5) is
//! indeed minimal.

use crate::cdag::{Cdag, VertexId};

/// Why a candidate partition is not a valid `X`-partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// A vertex appears in two different parts.
    Overlap(VertexId),
    /// A compute (non-input) vertex is not covered by any part.
    Uncovered(VertexId),
    /// The quotient graph of parts has a cycle involving this part index.
    CyclicDependency(usize),
    /// Part `part` has a dominator set larger than `X`.
    DominatorTooLarge { part: usize, size: usize },
    /// Part `part` has a minimum set larger than `X`.
    MinimumSetTooLarge { part: usize, size: usize },
}

/// Validate that `parts` forms an `X`-partition of `graph`.
///
/// Cover is required for all *compute* vertices (vertices with parents);
/// inputs may appear in parts but do not have to (the paper's MMM partitions
/// consist of `C` vertices only). Dominator sizes are measured with the
/// exact minimum dominator (max-flow), matching the definition.
pub fn validate_x_partition(graph: &Cdag, parts: &[Vec<VertexId>], x: usize) -> Result<(), PartitionError> {
    let n = graph.len();
    // Disjointness + cover.
    let mut owner: Vec<Option<usize>> = vec![None; n];
    for (pi, part) in parts.iter().enumerate() {
        for &v in part {
            let slot = &mut owner[v as usize];
            if slot.is_some() {
                return Err(PartitionError::Overlap(v));
            }
            *slot = Some(pi);
        }
    }
    for v in 0..n as VertexId {
        if !graph.preds(v).is_empty() && owner[v as usize].is_none() {
            return Err(PartitionError::Uncovered(v));
        }
    }
    // Acyclicity of the quotient graph.
    let h = parts.len();
    let mut indeg = vec![0usize; h];
    let mut qsuccs: Vec<Vec<usize>> = vec![Vec::new(); h];
    for v in 0..n as VertexId {
        let Some(pv) = owner[v as usize] else { continue };
        for &w in graph.succs(v) {
            if let Some(pw) = owner[w as usize] {
                if pv != pw && !qsuccs[pv].contains(&pw) {
                    qsuccs[pv].push(pw);
                    indeg[pw] += 1;
                }
            }
        }
    }
    let mut queue: Vec<usize> = (0..h).filter(|&i| indeg[i] == 0).collect();
    let mut seen = 0;
    let mut head = 0;
    while head < queue.len() {
        let i = queue[head];
        head += 1;
        seen += 1;
        for &j in &qsuccs[i] {
            indeg[j] -= 1;
            if indeg[j] == 0 {
                queue.push(j);
            }
        }
    }
    if seen != h {
        let bad = (0..h).find(|&i| indeg[i] > 0).expect("cycle must leave positive indegree");
        return Err(PartitionError::CyclicDependency(bad));
    }
    // Dominator and minimum set sizes.
    for (pi, part) in parts.iter().enumerate() {
        let dom = min_dominator_size(graph, part);
        if dom > x {
            return Err(PartitionError::DominatorTooLarge { part: pi, size: dom });
        }
        let min = graph.minimum_set(part).len();
        if min > x {
            return Err(PartitionError::MinimumSetTooLarge { part: pi, size: min });
        }
    }
    Ok(())
}

/// Exact minimum *external* dominator-set size of `targets` in `graph`.
///
/// The dominator set models the data that must enter fast memory before the
/// subcomputation `V_i` runs (Hong & Kung's counting argument), so its
/// members must be vertices *outside* `V_i` — with the exception of CDAG
/// inputs contained in `V_i`, which must be loaded and hence dominate
/// themselves. Under this definition the MMM bricks of §5.1 have minimal
/// dominator `α_r ∪ β_r ∪ Γ_r` exactly (Eq. 5).
///
/// By Menger's theorem the size equals the maximum number of vertex-disjoint
/// paths from the CDAG inputs to the target set, computed as max-flow on the
/// vertex-split graph: every cuttable vertex becomes an `in → out` arc of
/// capacity 1 (capacity ∞ for non-input target vertices, which may not be
/// cut); every CDAG edge `u → v` becomes `u_out → v_in` with capacity ∞; a
/// super source feeds every input's `in` node and every target's `out` node
/// drains to a super sink.
pub fn min_dominator_size(graph: &Cdag, targets: &[VertexId]) -> usize {
    if targets.is_empty() {
        return 0;
    }
    let n = graph.len();
    let mut in_target = vec![false; n];
    for &t in targets {
        in_target[t as usize] = true;
    }
    // Node numbering: v_in = 2v, v_out = 2v+1, source = 2n, sink = 2n+1.
    let source = 2 * n;
    let sink = 2 * n + 1;
    let mut flow = MaxFlow::new(2 * n + 2);
    const INF: i64 = i64::MAX / 4;
    for (v, &targeted) in in_target.iter().enumerate() {
        let cuttable = !targeted || graph.preds(v as VertexId).is_empty();
        flow.add_edge(2 * v, 2 * v + 1, if cuttable { 1 } else { INF });
        for &w in graph.succs(v as VertexId) {
            flow.add_edge(2 * v + 1, 2 * (w as usize), INF);
        }
    }
    for v in graph.inputs() {
        flow.add_edge(source, 2 * (v as usize), INF);
    }
    for &t in targets {
        flow.add_edge(2 * (t as usize) + 1, sink, INF);
    }
    flow.max_flow(source, sink) as usize
}

/// Dinic max-flow on a small graph (unit vertex capacities dominate, so the
/// classic `O(E·√V)` bound applies; our graphs have a few hundred vertices).
struct MaxFlow {
    // Edge list: to, capacity; paired edges i ^ 1 are reverse edges.
    to: Vec<usize>,
    cap: Vec<i64>,
    head: Vec<Vec<usize>>,
    level: Vec<i32>,
    iter: Vec<usize>,
}

impl MaxFlow {
    fn new(n: usize) -> Self {
        MaxFlow {
            to: Vec::new(),
            cap: Vec::new(),
            head: vec![Vec::new(); n],
            level: vec![-1; n],
            iter: vec![0; n],
        }
    }

    fn add_edge(&mut self, u: usize, v: usize, c: i64) {
        let e = self.to.len();
        self.to.push(v);
        self.cap.push(c);
        self.head[u].push(e);
        self.to.push(u);
        self.cap.push(0);
        self.head[v].push(e + 1);
    }

    fn bfs(&mut self, s: usize, t: usize) -> bool {
        self.level.fill(-1);
        self.level[s] = 0;
        let mut queue = vec![s];
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            for &e in &self.head[u] {
                let v = self.to[e];
                if self.cap[e] > 0 && self.level[v] < 0 {
                    self.level[v] = self.level[u] + 1;
                    queue.push(v);
                }
            }
        }
        self.level[t] >= 0
    }

    fn dfs(&mut self, u: usize, t: usize, f: i64) -> i64 {
        if u == t {
            return f;
        }
        while self.iter[u] < self.head[u].len() {
            let e = self.head[u][self.iter[u]];
            let v = self.to[e];
            if self.cap[e] > 0 && self.level[v] == self.level[u] + 1 {
                let d = self.dfs(v, t, f.min(self.cap[e]));
                if d > 0 {
                    self.cap[e] -= d;
                    self.cap[e ^ 1] += d;
                    return d;
                }
            }
            self.iter[u] += 1;
        }
        0
    }

    fn max_flow(&mut self, s: usize, t: usize) -> i64 {
        let mut total = 0;
        while self.bfs(s, t) {
            self.iter.fill(0);
            loop {
                let f = self.dfs(s, t, i64::MAX / 4);
                if f == 0 {
                    break;
                }
                total += f;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mmm::MmmCdag;

    fn diamond() -> Cdag {
        let mut g = Cdag::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        g
    }

    #[test]
    fn min_dominator_of_diamond_sink_is_one() {
        // Everything funnels through vertex 0, so one blocker suffices.
        let g = diamond();
        assert_eq!(min_dominator_size(&g, &[3]), 1);
        assert_eq!(min_dominator_size(&g, &[1, 2]), 1);
        assert_eq!(min_dominator_size(&g, &[0]), 1);
        assert_eq!(min_dominator_size(&g, &[]), 0);
    }

    #[test]
    fn min_dominator_two_independent_paths() {
        // Two parallel chains: 0->2, 1->3; dominating both ends needs 2.
        let mut g = Cdag::new(4);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        assert_eq!(min_dominator_size(&g, &[2, 3]), 2);
        assert_eq!(min_dominator_size(&g, &[2]), 1);
    }

    #[test]
    fn min_dominator_matches_frontier_on_mmm_bricks() {
        // Eq. 5: for MMM bricks the minimal dominator is α ∪ β ∪ Γ.
        let g = MmmCdag::new(3, 3, 3);
        for (t1, t2, t3) in [
            (vec![0, 1], vec![1, 2], vec![1, 2]),
            (vec![0], vec![0, 1, 2], vec![0]),
            (vec![0, 1, 2], vec![0, 1, 2], vec![2]),
        ] {
            let brick = g.brick(&t1, &t2, &t3);
            let frontier = g.graph().frontier_dominators(&brick);
            assert_eq!(
                min_dominator_size(g.graph(), &brick),
                frontier.len(),
                "brick {t1:?} x {t2:?} x {t3:?}"
            );
        }
    }

    #[test]
    fn reduction_tree_min_dominator_is_cut_width() {
        let g = Cdag::reduction_tree(8);
        let root = g.outputs()[0];
        // The cheapest external cut for the root is its two children.
        assert_eq!(min_dominator_size(&g, &[root]), 2);
        // Dominating all 4 level-1 sums (ids 8..12 for 8 leaves) requires
        // cutting all 8 leaves: the sums themselves are not external.
        let level1: Vec<VertexId> = vec![8, 9, 10, 11];
        assert_eq!(min_dominator_size(&g, &level1), 8);
        // If the part includes the root, its children become internal and the
        // cut moves further up: still the 8 leaves... but cutting the two
        // level-2 sums' own children (the 4 level-1 sums) is cheaper when
        // they are external. Root + level-2 sums: cut = 4 level-1 sums.
        assert_eq!(min_dominator_size(&g, &[12, 13, root]), 4);
    }

    #[test]
    fn valid_partition_of_path() {
        let g = Cdag::path(5);
        let parts = vec![vec![1, 2], vec![3, 4]];
        assert_eq!(validate_x_partition(&g, &parts, 2), Ok(()));
    }

    #[test]
    fn partition_overlap_detected() {
        let g = Cdag::path(4);
        let parts = vec![vec![1, 2], vec![2, 3]];
        assert_eq!(validate_x_partition(&g, &parts, 4), Err(PartitionError::Overlap(2)));
    }

    #[test]
    fn partition_uncovered_detected() {
        let g = Cdag::path(4);
        let parts = vec![vec![1, 2]];
        assert_eq!(validate_x_partition(&g, &parts, 4), Err(PartitionError::Uncovered(3)));
    }

    #[test]
    fn partition_cycle_detected() {
        // 0 -> 1 -> 2 -> 3 and 1 -> 4, 4 -> 3.
        // Parts {1, 3} and {2, 4} depend on each other cyclically.
        let mut g = Cdag::new(5);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g.add_edge(1, 4);
        g.add_edge(4, 3);
        let parts = vec![vec![1, 3], vec![2, 4]];
        assert!(matches!(validate_x_partition(&g, &parts, 5), Err(PartitionError::CyclicDependency(_))));
    }

    #[test]
    fn partition_dominator_size_enforced() {
        let g = Cdag::reduction_tree(4);
        // The whole internal layer {4, 5, 6}: external dominator = 4 leaves.
        let parts = vec![vec![4, 5, 6]];
        assert_eq!(validate_x_partition(&g, &parts, 4), Ok(()));
        assert_eq!(
            validate_x_partition(&g, &parts, 3),
            Err(PartitionError::DominatorTooLarge { part: 0, size: 4 })
        );
    }

    #[test]
    fn partition_minimum_set_enforced() {
        // One input fans out to two independent sinks: the dominator is tiny
        // ({0}) but the minimum set is both sinks.
        let mut g = Cdag::new(3);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        let parts = vec![vec![1, 2]];
        assert_eq!(
            validate_x_partition(&g, &parts, 1),
            Err(PartitionError::MinimumSetTooLarge { part: 0, size: 2 })
        );
        assert_eq!(validate_x_partition(&g, &parts, 2), Ok(()));
    }

    #[test]
    fn mmm_x_partition_from_bricks_is_valid() {
        // Partition the 2x2x2 MMM CDAG's C vertices into two k-slabs;
        // each slab is a valid subcomputation with dominator 4 + 4 + 4.
        let g = MmmCdag::new(2, 2, 2);
        let slab0 = g.brick(&[0, 1], &[0, 1], &[0]);
        let slab1 = g.brick(&[0, 1], &[0, 1], &[1]);
        // slab0 dominator: α(2x1)+β(1x2)... for 2x2: α = 2, β = 2, Γ = 0 -> 4.
        // slab1 dominator: α 2, β 2, Γ 4 -> 8.
        let parts = vec![slab0, slab1];
        assert_eq!(validate_x_partition(g.graph(), &parts, 8), Ok(()));
        assert!(matches!(
            validate_x_partition(g.graph(), &parts, 7),
            Err(PartitionError::DominatorTooLarge { part: 1, size: 8 })
        ));
    }
}
