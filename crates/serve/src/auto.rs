//! The cost-model auto-planner: pick the cheapest feasible algorithm.
//!
//! COSMA's grid fitting (paper fig. 5) chooses among grid candidates by
//! planned cost; the auto-planner generalizes that one level up — it runs a
//! request through *every* candidate algorithm of the
//! [`AlgorithmRegistry`], evaluates each structurally valid plan under the
//! α-β-γ cost model ([`DistPlan::simulate`]), and selects the strict argmin
//! of planned wall-clock time. Selection is fully deterministic: candidates
//! are tried in [`AlgoId::ALL`] order and ties go to the earliest candidate,
//! so the same request always picks the same algorithm (and the result is
//! reproducible by exhaustive enumeration — the property suite does exactly
//! that).

use std::sync::Arc;

use cosma::api::{AlgoId, AlgorithmRegistry, PlanError};
use cosma::plan::DistPlan;
use cosma::problem::MmmProblem;
use mpsim::cost::CostModel;

/// Which algorithms a request allows the auto-planner to consider.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlgoChoice {
    /// Every algorithm in the registry competes (cost-model argmin).
    Auto,
    /// Exactly this algorithm; the planner only checks feasibility.
    Fixed(AlgoId),
    /// A tenant-restricted subset competes (cost-model argmin within it) —
    /// e.g. a tenant that only trusts the square-grid classics.
    Among(Vec<AlgoId>),
}

impl AlgoChoice {
    /// The candidate ids in canonical [`AlgoId::ALL`] order (duplicates
    /// collapsed). The order is the tie-break order of the selection.
    pub fn candidates(&self) -> Vec<AlgoId> {
        match self {
            AlgoChoice::Auto => AlgoId::ALL.to_vec(),
            AlgoChoice::Fixed(id) => vec![*id],
            AlgoChoice::Among(ids) => AlgoId::ALL.iter().copied().filter(|id| ids.contains(id)).collect(),
        }
    }

    /// The candidate set as a bitmask over [`AlgoId::ALL`] positions — the
    /// canonical form a [`PlanKey`](crate::key::PlanKey) stores: two
    /// choices with the same mask are the same cache entry regardless of
    /// how the caller spelled them.
    pub fn mask(&self) -> u8 {
        let mut mask = 0u8;
        for (bit, id) in AlgoId::ALL.iter().enumerate() {
            if self.candidates().contains(id) {
                mask |= 1 << bit;
            }
        }
        mask
    }
}

/// One scored candidate of a [`Selection`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ranked {
    /// The algorithm.
    pub algo: AlgoId,
    /// Its planned wall-clock time under the α-β-γ model, in seconds.
    pub planned_time_s: f64,
}

/// The auto-planner's verdict for one request.
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    /// The winning algorithm (strict argmin of planned time; earliest
    /// [`AlgoId::ALL`] candidate on ties).
    pub algo: AlgoId,
    /// The winner's planned wall-clock seconds.
    pub planned_time_s: f64,
    /// The second-cheapest feasible candidate, when more than one was
    /// feasible — how contested the selection was.
    pub runner_up: Option<Ranked>,
}

/// A selection together with the winner's plan, ready to cache: everything
/// downstream execution needs, so a cache hit skips planning *and*
/// re-selection.
#[derive(Debug, Clone)]
pub struct Planned {
    /// The auto-planner's verdict.
    pub selection: Selection,
    /// The winner's validated plan.
    pub plan: Arc<DistPlan>,
}

/// The auto-planner: an [`AlgorithmRegistry`] plus the selection rule.
#[derive(Debug, Clone)]
pub struct AutoPlanner {
    registry: AlgorithmRegistry,
}

impl AutoPlanner {
    /// An auto-planner over `registry` (cheap: the registry is
    /// `Arc`-backed).
    pub fn new(registry: AlgorithmRegistry) -> Self {
        AutoPlanner { registry }
    }

    /// The registry the planner selects from.
    pub fn registry(&self) -> &AlgorithmRegistry {
        &self.registry
    }

    /// Plan `prob` with every candidate of `choice` and select the cheapest
    /// feasible one. Feasible means: registered, `supports()` passes, the
    /// planner returns a plan, and the plan's coverage validates — the same
    /// gauntlet `RunSession::plan` applies.
    ///
    /// # Errors
    /// When no candidate is feasible, the error of the *first* candidate in
    /// canonical order (deterministic, like the selection itself); an empty
    /// candidate set is [`PlanError::UnknownAlgorithm`].
    pub fn select(
        &self,
        prob: &MmmProblem,
        model: &CostModel,
        overlap: bool,
        choice: &AlgoChoice,
    ) -> Result<Planned, PlanError> {
        let mut feasible: Vec<(Ranked, DistPlan)> = Vec::new();
        let mut first_err: Option<PlanError> = None;
        for id in choice.candidates() {
            match self.plan_one(id, prob, model) {
                Ok(plan) => {
                    let planned_time_s = plan.simulate(model, overlap).time_s;
                    feasible.push((
                        Ranked {
                            algo: id,
                            planned_time_s,
                        },
                        plan,
                    ));
                }
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        let Some(winner_at) = argmin(&feasible) else {
            return Err(first_err.unwrap_or(PlanError::UnknownAlgorithm {
                name: "auto-planner: empty candidate set".to_string(),
            }));
        };
        let (winner, plan) = feasible.swap_remove(winner_at);
        let runner_up = argmin(&feasible).map(|i| feasible[i].0);
        Ok(Planned {
            selection: Selection {
                algo: winner.algo,
                planned_time_s: winner.planned_time_s,
                runner_up,
            },
            plan: Arc::new(plan),
        })
    }

    fn plan_one(&self, id: AlgoId, prob: &MmmProblem, model: &CostModel) -> Result<DistPlan, PlanError> {
        let algo = self.registry.by_id(id)?;
        algo.supports(prob)?;
        let plan = algo.plan(prob, model)?;
        plan.validate_coverage()?;
        Ok(plan)
    }
}

/// Index of the strict minimum planned time; the earliest entry wins ties.
fn argmin(scored: &[(Ranked, DistPlan)]) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (i, (ranked, _)) in scored.iter().enumerate() {
        match best {
            None => best = Some(i),
            Some(b) if ranked.planned_time_s < scored[b].0.planned_time_s => best = Some(i),
            Some(_) => {}
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planner() -> AutoPlanner {
        AutoPlanner::new(baselines::registry())
    }

    fn model() -> CostModel {
        CostModel::piz_daint_two_sided()
    }

    #[test]
    fn choice_candidates_are_canonical_order() {
        assert_eq!(AlgoChoice::Auto.candidates(), AlgoId::ALL.to_vec());
        assert_eq!(AlgoChoice::Fixed(AlgoId::Cannon).candidates(), vec![AlgoId::Cannon]);
        // Spelled backwards, still canonical.
        let among = AlgoChoice::Among(vec![AlgoId::Carma, AlgoId::Cosma]);
        assert_eq!(among.candidates(), vec![AlgoId::Cosma, AlgoId::Carma]);
    }

    #[test]
    fn choice_masks_are_spelling_independent() {
        assert_eq!(AlgoChoice::Auto.mask(), 0b11111);
        assert_eq!(AlgoChoice::Fixed(AlgoId::Cosma).mask(), 0b00001);
        let a = AlgoChoice::Among(vec![AlgoId::Carma, AlgoId::Summa]);
        let b = AlgoChoice::Among(vec![AlgoId::Summa, AlgoId::Carma, AlgoId::Summa]);
        assert_eq!(a.mask(), b.mask());
        assert_eq!(a.mask(), 0b10010);
    }

    #[test]
    fn auto_selection_is_the_exhaustive_argmin() {
        let prob = MmmProblem::new(96, 96, 96, 16, 1 << 14);
        let planned = planner().select(&prob, &model(), true, &AlgoChoice::Auto).unwrap();
        // Exhaustive re-derivation over the registry, in canonical order.
        let mut best: Option<(AlgoId, f64)> = None;
        for id in AlgoId::ALL {
            let Ok(plan) = planner().plan_one(id, &prob, &model()) else {
                continue;
            };
            let t = plan.simulate(&model(), true).time_s;
            if best.is_none_or(|(_, bt)| t < bt) {
                best = Some((id, t));
            }
        }
        let (algo, t) = best.unwrap();
        assert_eq!(planned.selection.algo, algo);
        assert_eq!(planned.selection.planned_time_s, t);
        assert_eq!(planned.plan.algo, algo);
        let ru = planned.selection.runner_up.expect("16 ranks: several feasible algorithms");
        assert!(ru.planned_time_s >= planned.selection.planned_time_s);
        assert_ne!(ru.algo, planned.selection.algo);
    }

    #[test]
    fn fixed_choice_has_no_runner_up() {
        let prob = MmmProblem::new(64, 64, 64, 16, 1 << 14);
        let planned = planner()
            .select(&prob, &model(), true, &AlgoChoice::Fixed(AlgoId::Cannon))
            .unwrap();
        assert_eq!(planned.selection.algo, AlgoId::Cannon);
        assert_eq!(planned.selection.runner_up, None);
    }

    #[test]
    fn among_restricts_the_competition() {
        let prob = MmmProblem::new(64, 64, 64, 16, 1 << 14);
        let choice = AlgoChoice::Among(vec![AlgoId::Summa, AlgoId::Cannon]);
        let planned = planner().select(&prob, &model(), true, &choice).unwrap();
        assert!(matches!(planned.selection.algo, AlgoId::Summa | AlgoId::Cannon));
        if let Some(ru) = planned.selection.runner_up {
            assert!(matches!(ru.algo, AlgoId::Summa | AlgoId::Cannon));
        }
    }

    #[test]
    fn infeasible_candidates_are_skipped_not_fatal() {
        // p = 6: Cannon needs a perfect square, CARMA a power of two — both
        // infeasible, yet Auto still selects among the rest.
        let prob = MmmProblem::new(48, 48, 48, 6, 1 << 14);
        let planned = planner().select(&prob, &model(), true, &AlgoChoice::Auto).unwrap();
        assert!(!matches!(planned.selection.algo, AlgoId::Cannon | AlgoId::Carma));
    }

    #[test]
    fn no_feasible_candidate_reports_the_first_error() {
        // Cannon alone at p = 6: the perfect-square requirement fails.
        let prob = MmmProblem::new(48, 48, 48, 6, 1 << 14);
        let err = planner()
            .select(&prob, &model(), true, &AlgoChoice::Fixed(AlgoId::Cannon))
            .unwrap_err();
        assert!(matches!(
            err,
            PlanError::UnsupportedRanks {
                algo: AlgoId::Cannon,
                ..
            }
        ));
        // Empty candidate set: typed, not a panic.
        let err = planner().select(&prob, &model(), true, &AlgoChoice::Among(vec![])).unwrap_err();
        assert!(matches!(err, PlanError::UnknownAlgorithm { .. }));
    }
}
