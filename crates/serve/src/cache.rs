//! The sharded, bounded, LRU plan cache.
//!
//! Keys are canonical [`PlanKey`]s; values are [`Planned`]s — the
//! auto-planner's [`Selection`](crate::auto::Selection) plus the winning
//! `Arc<DistPlan>`, so a hit
//! skips both planning *and* selection. The map is split into shards, each
//! behind its own `RwLock`: concurrent driver threads hitting different
//! shards never contend, and hits on the same shard share a read lock.
//! Recency is tracked with a lock-free global tick — a hit bumps the
//! entry's `last_used` atomically *under the read lock* — and eviction
//! (only on insert into a full shard) removes the least-recently-used entry
//! of that shard. Hit/miss/insert/eviction counters are atomic and
//! readable at any time via [`PlanCache::stats`].
//!
//! The cache is panic-hardened for the serving layer: every lock
//! acquisition recovers a poisoned guard (`unwrap_or_else(e.into_inner())`
//! — the map is only ever mutated through complete insert/remove
//! operations, so a panicking holder cannot leave a half-written entry),
//! and the planning closure runs *outside* any lock, so a panicking
//! planner can never poison a shard in the first place.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use cosma::api::PlanError;

use crate::auto::Planned;
use crate::key::PlanKey;

/// Counter snapshot of a [`PlanCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to plan.
    pub misses: u64,
    /// Entries inserted.
    pub inserts: u64,
    /// Entries evicted to make room (LRU within the full shard).
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Hits over lookups, in `[0, 1]`; 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    value: Arc<Planned>,
    last_used: AtomicU64,
}

type Shard = HashMap<PlanKey, Entry>;

/// A sharded `PlanKey → Arc<Planned>` map with bounded LRU shards and
/// atomic hit/miss/eviction counters. See the module docs for the locking
/// discipline.
pub struct PlanCache {
    shards: Vec<RwLock<Shard>>,
    per_shard_cap: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
}

impl PlanCache {
    /// A cache of at most `capacity` plans spread over `shards` shards
    /// (each shard holds at most `ceil(capacity / shards)` entries).
    ///
    /// # Panics
    /// Panics when `shards` or `capacity` is zero.
    pub fn new(shards: usize, capacity: usize) -> Self {
        assert!(shards > 0, "the plan cache needs at least one shard");
        assert!(capacity > 0, "the plan cache needs room for at least one plan");
        PlanCache {
            shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
            per_shard_cap: capacity.div_ceil(shards),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// A 16-shard cache of 1024 plans — roomy for a serving mix.
    pub fn with_default_shape() -> Self {
        PlanCache::new(16, 1024)
    }

    fn shard_of(&self, key: &PlanKey) -> &RwLock<Shard> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() % self.shards.len() as u64) as usize]
    }

    fn read(&self, key: &PlanKey) -> Option<Arc<Planned>> {
        let shard = self.shard_of(key).read().unwrap_or_else(|e| e.into_inner());
        shard.get(key).map(|entry| {
            entry
                .last_used
                .store(self.tick.fetch_add(1, Ordering::Relaxed), Ordering::Relaxed);
            entry.value.clone()
        })
    }

    /// Look up `key`, counting a hit or a miss.
    pub fn get(&self, key: &PlanKey) -> Option<Arc<Planned>> {
        match self.read(key) {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// The memoization entry point: return the cached plan for `key`, or
    /// run `plan` (outside any lock — planning is pure, so a concurrent
    /// duplicate is wasted work, never wrong) and cache its result. The
    /// boolean is `true` on a hit.
    ///
    /// # Errors
    /// `plan`'s error, verbatim; failures are not cached (the next request
    /// with the same key retries).
    pub fn get_or_try_insert_with(
        &self,
        key: PlanKey,
        plan: impl FnOnce() -> Result<Planned, PlanError>,
    ) -> Result<(Arc<Planned>, bool), PlanError> {
        if let Some(hit) = self.get(&key) {
            return Ok((hit, true));
        }
        let value = Arc::new(plan()?);
        let mut shard = self.shard_of(&key).write().unwrap_or_else(|e| e.into_inner());
        // A racing thread may have planned the same key meanwhile; its
        // entry is identical (planning is pure) — keep ours out.
        if let Some(existing) = shard.get(&key) {
            return Ok((existing.value.clone(), false));
        }
        if shard.len() >= self.per_shard_cap {
            let lru = shard
                .iter()
                .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                .map(|(k, _)| *k);
            if let Some(lru) = lru {
                shard.remove(&lru);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.insert(
            key,
            Entry {
                value: value.clone(),
                last_used: AtomicU64::new(self.tick.fetch_add(1, Ordering::Relaxed)),
            },
        );
        self.inserts.fetch_add(1, Ordering::Relaxed);
        Ok((value, false))
    }

    /// Current counter values and resident-entry count.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.read().unwrap_or_else(|e| e.into_inner()).len())
                .sum(),
        }
    }
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("shards", &self.shards.len())
            .field("per_shard_cap", &self.per_shard_cap)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auto::{AlgoChoice, AutoPlanner};
    use cosma::problem::MmmProblem;
    use mpsim::cost::CostModel;

    fn planned_for(p: usize) -> (PlanKey, Planned) {
        let prob = MmmProblem::new(64, 64, 64, p, 1 << 14);
        let model = CostModel::piz_daint_two_sided();
        let key = PlanKey::try_new(
            &prob,
            &model,
            true,
            None,
            &AlgoChoice::Auto,
            &mpsim::machine::Topology::Flat,
            mpsim::machine::Placement::Block,
        )
        .unwrap();
        let planned = AutoPlanner::new(baselines::registry())
            .select(&prob, &model, true, &AlgoChoice::Auto)
            .unwrap();
        (key, planned)
    }

    #[test]
    fn miss_then_hit_returns_the_identical_plan() {
        let cache = PlanCache::new(4, 64);
        let (key, planned) = planned_for(16);
        let (cold, hit) = cache.get_or_try_insert_with(key, || Ok(planned)).unwrap();
        assert!(!hit);
        let (warm, hit) = cache
            .get_or_try_insert_with(key, || panic!("must not replan on a hit"))
            .unwrap();
        assert!(hit);
        assert!(Arc::ptr_eq(&cold, &warm), "the very same allocation");
        assert_eq!(*cold.plan, *warm.plan, "bitwise-identical plan");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.inserts), (1, 1, 1));
        assert_eq!(stats.entries, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn planning_errors_are_not_cached() {
        let cache = PlanCache::new(1, 4);
        let (key, planned) = planned_for(16);
        let err = cache
            .get_or_try_insert_with(key, || {
                Err(PlanError::UnknownAlgorithm {
                    name: "transient".into(),
                })
            })
            .unwrap_err();
        assert!(matches!(err, PlanError::UnknownAlgorithm { .. }));
        assert_eq!(cache.stats().entries, 0);
        // The key is retried, not poisoned.
        let (_, hit) = cache.get_or_try_insert_with(key, || Ok(planned)).unwrap();
        assert!(!hit);
    }

    #[test]
    fn full_shard_evicts_the_least_recently_used() {
        // One shard of capacity 2: insert a, b; touch a; insert c → b out.
        let cache = PlanCache::new(1, 2);
        let keys: Vec<(PlanKey, Planned)> = [4, 8, 16].iter().map(|&p| planned_for(p)).collect();
        for (key, planned) in &keys[..2] {
            cache.get_or_try_insert_with(*key, || Ok(planned.clone())).unwrap();
        }
        assert!(cache.get(&keys[0].0).is_some(), "touch a");
        cache.get_or_try_insert_with(keys[2].0, || Ok(keys[2].1.clone())).unwrap();
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().entries, 2);
        assert!(cache.get(&keys[0].0).is_some(), "a survived");
        assert!(cache.get(&keys[1].0).is_none(), "b was the LRU");
        assert!(cache.get(&keys[2].0).is_some(), "c resident");
    }

    #[test]
    fn concurrent_same_key_lookups_converge_to_one_entry() {
        let cache = Arc::new(PlanCache::new(4, 64));
        let (key, planned) = planned_for(16);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let cache = cache.clone();
                let planned = planned.clone();
                s.spawn(move || {
                    let (got, _) = cache.get_or_try_insert_with(key, || Ok(planned)).unwrap();
                    assert_eq!(got.selection.algo, got.plan.algo);
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.entries, 1, "one resident entry regardless of racing");
        assert_eq!(stats.hits + stats.misses, 8);
    }

    #[test]
    fn panicking_planner_does_not_poison_the_cache() {
        // The planning closure runs outside any shard lock, so a worker
        // dying mid-plan must leave the cache fully serviceable — the same
        // key plans cleanly on the next request.
        let cache = PlanCache::new(2, 8);
        let (key, planned) = planned_for(16);
        let died = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.get_or_try_insert_with(key, || panic!("planner worker died"))
        }));
        assert!(died.is_err());
        let (got, hit) = cache.get_or_try_insert_with(key, || Ok(planned)).unwrap();
        assert!(!hit, "the dead attempt must not have cached anything");
        assert_eq!(got.selection.algo, got.plan.algo);
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = PlanCache::new(0, 4);
    }
}
