//! The multi-tenant execution driver.
//!
//! A [`Server`] owns the serving stack — an [`AutoPlanner`] over a shared
//! registry, a [`PlanCache`], and a [`SchedulerPool`] — plus a team of
//! driver threads consuming a job queue. Each [`JobRequest`] is an
//! independent SPMD world; many of them run concurrently:
//!
//! * **blocking backends** (threaded/sharded) execute over the *shared*
//!   [`SchedulerPool`], so the combined runnable ranks of all concurrent
//!   jobs — not each job's separately — respect one machine-wide worker
//!   cap;
//! * **event-backend** worlds are single-threaded discrete-event
//!   simulations, so the driver threads simply interleave them.
//!
//! The pipeline per job is admission → cached planning (auto-selection on
//! a miss) → execution → a [`JobResult`] carrying the [`Selection`], the
//! plan and the per-rank [`ExecReport`]. Every step is deterministic, so a
//! job's result is bitwise-identical to the same job run serially through
//! `RunSession` — concurrency changes throughput, never answers.

use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use cosma::api::{AlgorithmRegistry, ExecReport, PlanError, RunSession};
use cosma::plan::DistPlan;
use cosma::problem::MmmProblem;
use densemat::matrix::Matrix;
use mpsim::cost::CostModel;
use mpsim::exec::{ExecBackend, ExecError, SchedulerPool};
use mpsim::machine::{Placement, Topology};

use crate::auto::{AlgoChoice, AutoPlanner, Selection};
use crate::cache::{CacheStats, PlanCache};
use crate::key::PlanKey;

/// One tenant request: a problem, its inputs, and the per-request knobs.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// Caller-chosen id, echoed in the [`JobResult`].
    pub id: u64,
    /// The multiplication to run.
    pub prob: MmmProblem,
    /// Left operand (`m × k`).
    pub a: Matrix,
    /// Right operand (`k × n`).
    pub b: Matrix,
    /// Which algorithms may serve the request (default: all of them).
    pub choice: AlgoChoice,
    /// Cost model override (default: the Piz-Daint-like two-sided model).
    pub model: Option<CostModel>,
    /// Communication–computation overlap mode (default: on).
    pub overlap: bool,
    /// Enforced per-rank memory budget, if any.
    pub mem_budget: Option<u64>,
    /// Execution backend override (default: [`ExecBackend::auto`] for the
    /// problem's world size). On blocking backends the *shared* scheduler
    /// pool supplies the worker slots, so a `Sharded { workers }` count is
    /// superseded by the pool's.
    pub backend: Option<ExecBackend>,
    /// Network topology the job's machine is measured under (default:
    /// [`Topology::Flat`]). Part of the plan-cache key: cached plans never
    /// cross machine shapes.
    pub topology: Topology,
    /// Rank→node placement under [`topology`](Self::topology) (default:
    /// [`Placement::Block`]).
    pub placement: Placement,
}

impl JobRequest {
    /// A job with default knobs: auto algorithm selection, default cost
    /// model, overlap on, auto backend.
    pub fn new(id: u64, prob: MmmProblem, a: Matrix, b: Matrix) -> Self {
        JobRequest {
            id,
            prob,
            a,
            b,
            choice: AlgoChoice::Auto,
            model: None,
            overlap: true,
            mem_budget: None,
            backend: None,
            topology: Topology::Flat,
            placement: Placement::Block,
        }
    }

    /// Restrict the algorithm choice.
    pub fn choice(mut self, choice: AlgoChoice) -> Self {
        self.choice = choice;
        self
    }

    /// Pin the execution backend.
    pub fn backend(mut self, backend: ExecBackend) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Measure under `topology`'s contention model (event backend only —
    /// word counters and results are topology-independent).
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Choose the rank→node placement for the job's topology.
    pub fn placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }
}

/// What a successfully served job produced.
#[derive(Debug, Clone)]
pub struct JobOutput {
    /// The auto-planner's verdict (memoized across identical requests).
    pub selection: Selection,
    /// The executed plan (shared with the cache entry).
    pub plan: Arc<DistPlan>,
    /// The assembled product and per-rank measured statistics.
    pub report: ExecReport,
    /// Whether planning was answered from the cache.
    pub cache_hit: bool,
    /// The backend the world executed on.
    pub backend: ExecBackend,
}

/// The server's answer to one [`JobRequest`].
#[derive(Debug)]
pub struct JobResult {
    /// The request's id.
    pub id: u64,
    /// The served output, or the typed planning/execution failure.
    pub outcome: Result<JobOutput, PlanError>,
}

/// Sizing knobs of a [`Server`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Driver threads consuming the job queue (concurrent jobs in flight).
    pub drivers: usize,
    /// Runnable-rank slots of the shared [`SchedulerPool`].
    pub pool_workers: usize,
    /// Plan-cache shard count.
    pub cache_shards: usize,
    /// Plan-cache capacity (plans, across all shards).
    pub cache_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(8);
        ServerConfig {
            drivers: cores.div_ceil(2).max(2),
            pool_workers: cores,
            cache_shards: 16,
            cache_capacity: 1024,
        }
    }
}

struct Shared {
    planner: AutoPlanner,
    cache: PlanCache,
    pool: SchedulerPool,
}

/// The serving front door: submit [`JobRequest`]s, receive [`JobResult`]s.
///
/// ```
/// use cosma::problem::MmmProblem;
/// use densemat::matrix::Matrix;
/// use serve::{JobRequest, Server, ServerConfig};
///
/// let config = ServerConfig { drivers: 1, ..ServerConfig::default() };
/// let server = Server::new(baselines::registry(), config).unwrap();
/// let prob = MmmProblem::new(32, 32, 32, 4, 1 << 12);
/// let a = Matrix::deterministic(prob.m, prob.k, 1);
/// let b = Matrix::deterministic(prob.k, prob.n, 2);
/// let results = server.run_batch(vec![
///     JobRequest::new(0, prob, a.clone(), b.clone()),
///     JobRequest::new(1, prob, a, b), // same key: plans once
/// ]);
/// assert!(results.iter().all(|r| r.outcome.is_ok()));
/// assert_eq!(server.cache_stats().hits, 1);
/// ```
pub struct Server {
    shared: Arc<Shared>,
    jobs_tx: Option<Sender<JobRequest>>,
    results_rx: Mutex<Receiver<JobResult>>,
    drivers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Spawn a server over `registry` with `config.drivers` driver threads.
    ///
    /// # Errors
    /// [`ExecError::NoWorkers`] when `config.pool_workers` is zero.
    ///
    /// # Panics
    /// Panics when `config.drivers`, `config.cache_shards` or
    /// `config.cache_capacity` is zero.
    pub fn new(registry: AlgorithmRegistry, config: ServerConfig) -> Result<Self, ExecError> {
        assert!(config.drivers > 0, "the server needs at least one driver thread");
        let shared = Arc::new(Shared {
            planner: AutoPlanner::new(registry),
            cache: PlanCache::new(config.cache_shards, config.cache_capacity),
            pool: SchedulerPool::new(config.pool_workers)?,
        });
        let (jobs_tx, jobs_rx) = mpsc::channel::<JobRequest>();
        let (results_tx, results_rx) = mpsc::channel::<JobResult>();
        let jobs_rx = Arc::new(Mutex::new(jobs_rx));
        let drivers = (0..config.drivers)
            .map(|i| {
                let shared = shared.clone();
                let jobs_rx = jobs_rx.clone();
                let results_tx = results_tx.clone();
                std::thread::Builder::new()
                    .name(format!("serve-driver-{i}"))
                    .spawn(move || loop {
                        // Hold the queue lock only for the dequeue; waiting
                        // drivers queue up on the mutex, which is the same
                        // as waiting for a job.
                        let job = match jobs_rx.lock().unwrap_or_else(|e| e.into_inner()).recv() {
                            Ok(job) => job,
                            Err(_) => break, // queue closed: server shut down
                        };
                        let result = serve_job(&shared, job);
                        if results_tx.send(result).is_err() {
                            break; // receiver gone: server dropped mid-flight
                        }
                    })
                    .expect("spawn serve driver")
            })
            .collect();
        Ok(Server {
            shared,
            jobs_tx: Some(jobs_tx),
            results_rx: Mutex::new(results_rx),
            drivers,
        })
    }

    /// Enqueue a job; some driver thread will pick it up. Results arrive in
    /// *completion* order via [`recv`](Self::recv), not submission order.
    pub fn submit(&self, job: JobRequest) {
        self.jobs_tx
            .as_ref()
            .expect("server accepts jobs until shutdown")
            .send(job)
            .expect("driver threads outlive the server handle");
    }

    /// Block for the next finished job. `None` only after
    /// [`shutdown`](Self::shutdown) semantics kick in (never while the
    /// server can still produce results).
    pub fn recv(&self) -> Option<JobResult> {
        self.results_rx.lock().unwrap_or_else(|e| e.into_inner()).recv().ok()
    }

    /// Submit `jobs` and collect exactly one result per job, returned in
    /// ascending id order (execution itself is concurrent and completes in
    /// arbitrary order).
    pub fn run_batch(&self, jobs: Vec<JobRequest>) -> Vec<JobResult> {
        let n = jobs.len();
        for job in jobs {
            self.submit(job);
        }
        let mut results: Vec<JobResult> = (0..n)
            .map(|_| self.recv().expect("drivers return one result per job"))
            .collect();
        results.sort_by_key(|r| r.id);
        results
    }

    /// Serve one job synchronously on the caller's thread (same pipeline,
    /// no queue) — the serial reference path.
    pub fn run_sync(&self, job: JobRequest) -> JobResult {
        serve_job(&self.shared, job)
    }

    /// Plan-cache counters at this instant.
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// The shared scheduler pool (e.g. to co-schedule work outside the
    /// server under the same worker cap).
    pub fn pool(&self) -> &SchedulerPool {
        &self.shared.pool
    }

    /// Stop accepting jobs, drain the driver threads, and report the final
    /// cache counters. Undelivered results are discarded.
    pub fn shutdown(mut self) -> CacheStats {
        self.close();
        self.shared.cache.stats()
    }

    fn close(&mut self) {
        drop(self.jobs_tx.take()); // closes the queue: drivers drain and exit
        for h in self.drivers.drain(..) {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.close();
    }
}

/// The serving pipeline for one job: cached planning, then execution.
fn serve_job(shared: &Shared, job: JobRequest) -> JobResult {
    let id = job.id;
    let outcome = (|| {
        let model = job.model.unwrap_or_else(CostModel::piz_daint_two_sided);
        let key = PlanKey::try_new(
            &job.prob,
            &model,
            job.overlap,
            job.mem_budget,
            &job.choice,
            &job.topology,
            job.placement,
        )?;
        let (planned, cache_hit) = shared.cache.get_or_try_insert_with(key, || {
            shared.planner.select(&job.prob, &model, job.overlap, &job.choice)
        })?;
        let backend = job.backend.unwrap_or_else(|| ExecBackend::auto(job.prob.p));
        let mut session = RunSession::new(job.prob)
            .registry(shared.planner.registry().clone())
            .algorithm(planned.selection.algo)
            .machine(model)
            .overlap(job.overlap)
            .topology(job.topology.clone())
            .placement(job.placement)
            .exec_backend(backend);
        if let Some(words) = job.mem_budget {
            session = session.mem_budget(words);
        }
        let report = match backend {
            // An event world is one single-threaded simulation; driver
            // threads interleave many of them.
            ExecBackend::Event { .. } => session.execute_planned(&planned.plan, &job.a, &job.b)?,
            // Blocking worlds take their runnable slots from the shared
            // pool, so concurrent jobs respect one machine-wide cap.
            ExecBackend::Threaded | ExecBackend::Sharded { .. } => {
                session.execute_planned_pooled(&planned.plan, &shared.pool, &job.a, &job.b)?
            }
        };
        Ok(JobOutput {
            selection: planned.selection.clone(),
            plan: planned.plan.clone(),
            report,
            cache_hit,
            backend,
        })
    })();
    JobResult { id, outcome }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosma::api::AlgoId;

    fn small_config() -> ServerConfig {
        ServerConfig {
            drivers: 3,
            pool_workers: 4,
            cache_shards: 4,
            cache_capacity: 64,
        }
    }

    fn job(id: u64, p: usize, seed: u64) -> JobRequest {
        let prob = MmmProblem::new(24, 20, 28, p, 1 << 12);
        let a = Matrix::deterministic(prob.m, prob.k, seed);
        let b = Matrix::deterministic(prob.k, prob.n, seed + 1);
        JobRequest::new(id, prob, a, b)
    }

    #[test]
    fn batch_results_match_sync_runs_bitwise() {
        let server = Server::new(baselines::registry(), small_config()).unwrap();
        let jobs: Vec<JobRequest> = (0..12).map(|i| job(i, [4, 6, 8][i as usize % 3], i)).collect();
        let results = server.run_batch(jobs.clone());
        assert_eq!(results.len(), jobs.len());
        for (job, result) in jobs.into_iter().zip(results) {
            assert_eq!(job.id, result.id);
            let concurrent = result.outcome.unwrap();
            let serial = server.run_sync(job).outcome.unwrap();
            assert_eq!(concurrent.report.c, serial.report.c, "bitwise product");
            assert_eq!(concurrent.report.stats, serial.report.stats);
            assert_eq!(concurrent.selection, serial.selection);
            assert_eq!(*concurrent.plan, *serial.plan);
        }
    }

    #[test]
    fn repeat_keys_hit_the_cache() {
        let server = Server::new(baselines::registry(), small_config()).unwrap();
        // 9 jobs over 3 distinct keys (ids differ, keys repeat).
        let jobs: Vec<JobRequest> = (0..9).map(|i| job(i, [4, 6, 8][i as usize % 3], i % 3)).collect();
        let results = server.run_batch(jobs);
        assert!(results.iter().all(|r| r.outcome.is_ok()));
        let stats = server.shutdown();
        assert_eq!(stats.inserts, 3);
        assert_eq!(stats.hits + stats.misses, 9);
        assert!(stats.hits >= 6, "at least the 6 repeats hit; got {stats:?}");
    }

    #[test]
    fn infeasible_job_fails_typed_while_others_succeed() {
        let server = Server::new(baselines::registry(), small_config()).unwrap();
        // p = 6 cannot serve Cannon (not a perfect square).
        let bad = job(0, 6, 0).choice(AlgoChoice::Fixed(AlgoId::Cannon));
        let good = job(1, 6, 1);
        let results = server.run_batch(vec![bad, good]);
        assert!(matches!(
            results[0].outcome,
            Err(PlanError::UnsupportedRanks {
                algo: AlgoId::Cannon,
                ..
            })
        ));
        let out = results[1].outcome.as_ref().unwrap();
        assert!(!matches!(out.selection.algo, AlgoId::Cannon | AlgoId::Carma));
    }

    #[test]
    fn event_and_blocking_jobs_interleave_and_agree() {
        let server = Server::new(baselines::registry(), small_config()).unwrap();
        let blocking = job(0, 8, 3);
        let event = job(1, 8, 3).backend(ExecBackend::event());
        let results = server.run_batch(vec![blocking, event]);
        let a = results[0].outcome.as_ref().unwrap();
        let b = results[1].outcome.as_ref().unwrap();
        assert_eq!(a.backend, ExecBackend::Threaded, "auto for p = 8");
        assert_eq!(b.backend, ExecBackend::event());
        assert_eq!(a.report.c, b.report.c, "backends agree bitwise");
        // Counters agree too; only the event backend measures virtual time.
        for (x, y) in a.report.stats.iter().zip(&b.report.stats) {
            assert_eq!(x.sans_time(), y.sans_time());
        }
    }

    #[test]
    fn mem_budget_violations_surface_per_job() {
        let server = Server::new(baselines::registry(), small_config()).unwrap();
        let mut strict = job(0, 4, 0);
        strict.mem_budget = Some(1);
        let results = server.run_batch(vec![strict]);
        assert!(matches!(
            results[0].outcome,
            Err(PlanError::Execution {
                source: ExecError::MemBudgetExceeded { .. }
            })
        ));
    }
}
